// Benchmark harness: one benchmark per table and figure of the paper.
// Each benchmark runs a scaled-down version of the campaign that
// regenerates the artifact (the cmd/ tools run the full versions) and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// doubles as a smoke reproduction of the whole study.
package gpurel

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/core"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/fit"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/mem"
	"gpurel/internal/microbench"
	"gpurel/internal/profiler"
	"gpurel/internal/sim"
	"gpurel/internal/stats"
	"gpurel/internal/suite"
)

// --- Table I ---

func benchProfileSuite(b *testing.B, dev *device.Device) {
	entries := suite.ForDevice(dev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := profiler.Profile(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable1_Kepler(b *testing.B) { benchProfileSuite(b, device.K40c()) }
func BenchmarkTable1_Volta(b *testing.B)  { benchProfileSuite(b, device.V100()) }

// --- Figure 1 ---

func BenchmarkFig1_InstructionMix(b *testing.B) {
	dev := device.K40c()
	r, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var fma float64
	for i := 0; i < b.N; i++ {
		cp, err := profiler.Profile(r)
		if err != nil {
			b.Fatal(err)
		}
		fma = cp.Mix[isa.ClassFMA]
	}
	b.ReportMetric(100*fma, "FMA%")
}

// --- Figure 3 ---

func benchMicroBeam(b *testing.B, dev *device.Device, micro string) {
	var build kernels.Builder
	for _, m := range microbench.Catalog(dev) {
		if m.Name == micro {
			build = m.Build
		}
	}
	if build == nil {
		b.Fatalf("no micro %s", micro)
	}
	r, err := kernels.NewRunner(micro, build, dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var fitRate float64
	for i := 0; i < b.N; i++ {
		res, err := beam.Run(beam.Config{ECC: micro != "RF", Trials: 60, Seed: uint64(i)}, r)
		if err != nil {
			b.Fatal(err)
		}
		fitRate = res.SDCFIT.Rate
	}
	b.ReportMetric(fitRate, "SDC-FIT-au")
}

func BenchmarkFig3_Micro_FADD_Kepler(b *testing.B) { benchMicroBeam(b, device.K40c(), "FADD") }
func BenchmarkFig3_Micro_IMAD_Kepler(b *testing.B) { benchMicroBeam(b, device.K40c(), "IMAD") }
func BenchmarkFig3_Micro_RF_Kepler(b *testing.B)   { benchMicroBeam(b, device.K40c(), "RF") }
func BenchmarkFig3_Micro_LDST_Kepler(b *testing.B) { benchMicroBeam(b, device.K40c(), "LDST") }
func BenchmarkFig3_Micro_HMMA_Volta(b *testing.B)  { benchMicroBeam(b, device.V100(), "HMMA") }
func BenchmarkFig3_Micro_DFMA_Volta(b *testing.B)  { benchMicroBeam(b, device.V100(), "DFMA") }

// --- Figure 4 ---

func BenchmarkFig4_AVF_SASSIFI(b *testing.B) {
	dev := device.K40c()
	b.ResetTimer()
	var avf float64
	for i := 0; i < b.N; i++ {
		res, err := faultinj.Run(faultinj.Config{
			Tool: faultinj.Sassifi, FaultsPerClass: 15, Seed: uint64(i),
		}, "FMXM", kernels.MxMBuilder(isa.F32), dev)
		if err != nil {
			b.Fatal(err)
		}
		avf = res.SDCAVF.P
	}
	b.ReportMetric(avf, "SDC-AVF")
}

func BenchmarkFig4_AVF_NVBitFI(b *testing.B) {
	dev := device.V100()
	b.ResetTimer()
	var avf float64
	for i := 0; i < b.N; i++ {
		res, err := faultinj.Run(faultinj.Config{
			Tool: faultinj.NVBitFI, TotalFaults: 60, Seed: uint64(i),
		}, "FGEMM", kernels.GEMMBuilder(isa.F32), dev)
		if err != nil {
			b.Fatal(err)
		}
		avf = res.SDCAVF.P
	}
	b.ReportMetric(avf, "SDC-AVF")
}

// --- Figure 5 ---

func benchCodeBeam(b *testing.B, ecc bool) {
	dev := device.K40c()
	r, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var fitRate float64
	for i := 0; i < b.N; i++ {
		res, err := beam.Run(beam.Config{ECC: ecc, Trials: 60, Seed: uint64(i)}, r)
		if err != nil {
			b.Fatal(err)
		}
		fitRate = res.SDCFIT.Rate
	}
	b.ReportMetric(fitRate, "SDC-FIT-au")
}

func BenchmarkFig5_CodeFIT_ECCOff(b *testing.B) { benchCodeBeam(b, false) }
func BenchmarkFig5_CodeFIT_ECCOn(b *testing.B)  { benchCodeBeam(b, true) }

// --- Figure 6 + §VII-B ---

// fig6Inputs builds the prediction inputs once (profiling + injection +
// micro beams for one code), so the benchmark isolates the model itself.
func fig6Inputs(b *testing.B) (*profiler.CodeProfile, *faultinj.Result, *fit.UnitFITs) {
	b.Helper()
	dev := device.K40c()
	r, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := profiler.Profile(r)
	if err != nil {
		b.Fatal(err)
	}
	avf, err := faultinj.Run(faultinj.Config{
		Tool: faultinj.Sassifi, FaultsPerClass: 15, Seed: 1,
	}, "FMXM", kernels.MxMBuilder(isa.F32), dev)
	if err != nil {
		b.Fatal(err)
	}
	micro := map[string]*beam.Result{}
	phi := map[string]float64{}
	var rfBytes int
	for _, m := range microbench.Catalog(dev) {
		mr, err := kernels.NewRunner(m.Name, m.Build, dev, asm.O2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := beam.Run(beam.Config{ECC: m.Name != "RF", Trials: 40, Seed: 2}, mr)
		if err != nil {
			b.Fatal(err)
		}
		micro[m.Name] = res
		mp, err := profiler.Profile(mr)
		if err != nil {
			b.Fatal(err)
		}
		phi[m.Name] = mp.Phi()
		if m.Name == "RF" {
			l := mr.Instance().Launches[0]
			rfBytes = l.GridX * l.GridY * l.BlockThreads * l.Prog.NumRegs * 4
		}
	}
	units, err := fit.FromMicroResults(dev.Name, micro, nil, phi, nil, rfBytes)
	if err != nil {
		b.Fatal(err)
	}
	return cp, avf, units
}

func BenchmarkFig6_Prediction(b *testing.B) {
	cp, avf, units := fig6Inputs(b)
	b.ResetTimer()
	var pred float64
	for i := 0; i < b.N; i++ {
		p := fit.Predict(cp, avf, units, false)
		pred = p.SDCFIT
	}
	b.ReportMetric(pred, "pred-SDC-FIT-au")
}

func BenchmarkDUE_Underestimation(b *testing.B) {
	cp, avf, units := fig6Inputs(b)
	dev := device.K40c()
	r, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	beamRes, err := beam.Run(beam.Config{ECC: true, Trials: 80, Seed: 4}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		p := fit.Predict(cp, avf, units, true)
		if p.DUEFIT > 0 {
			ratio = beamRes.DUEFIT.Rate / p.DUEFIT
		}
	}
	b.ReportMetric(ratio, "beam/pred-DUE")
}

// --- §V-B: MMA vs software MxM ---

func BenchmarkMMAvsSoftwareMxM(b *testing.B) {
	dev := device.V100()
	sw, err := kernels.NewRunner("HMXM", kernels.MxMBuilder(isa.F16), dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	tc, err := kernels.NewRunner("HGEMM-MMA", kernels.GEMMMMABuilder(true), dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		swRes, err := beam.Run(beam.Config{ECC: true, Trials: 60, Seed: uint64(i)}, sw)
		if err != nil {
			b.Fatal(err)
		}
		tcRes, err := beam.Run(beam.Config{ECC: true, Trials: 60, Seed: uint64(i)}, tc)
		if err != nil {
			b.Fatal(err)
		}
		if tcRes.SDCFIT.Rate > 0 {
			ratio = swRes.SDCFIT.Rate / tcRes.SDCFIT.Rate
		}
	}
	b.ReportMetric(ratio, "sw/tc-FIT")
}

// --- substrate benchmarks: raw simulator throughput ---

func BenchmarkSimGoldenMxM(b *testing.B) {
	dev := device.K40c()
	r, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	var lane uint64
	for _, p := range r.GoldenProfiles() {
		lane += p.LaneOps
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32), dev, asm.O2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lane), "lane-ops/run")
}

func BenchmarkSimGoldenYOLOv3(b *testing.B) {
	dev := device.K40c()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernels.NewRunner("FYOLOV3", kernels.YOLOBuilder(true, isa.F32), dev, asm.O2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimProfileTimeline quantifies the golden-run cost of the
// residency telemetry: the same launch sequence simulated with and
// without Config.SampleTimeline, reported as sampled-vs-bare overhead.
// The bench CI tier watches this next to the BenchmarkSimPerFault*
// baselines — fault replays never sample, so those must not move, and
// the golden-run overhead is expected to stay under ~10%.
func BenchmarkSimProfileTimeline(b *testing.B) {
	dev := device.K40c()
	run := func(sample bool) {
		inst, err := kernels.MxMBuilder(isa.F32)(dev, asm.O2)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range inst.Launches {
			res, err := sim.Run(sim.Config{
				Device: dev, Program: l.Prog,
				GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
				SampleTimeline: sample,
			}, inst.Global)
			if err != nil || res.Outcome != sim.OutcomeOK {
				b.Fatalf("golden run failed: %v %v", err, res.DUEReason)
			}
		}
	}
	for _, mode := range []struct {
		name   string
		sample bool
	}{{"sampled", true}, {"bare", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(mode.sample)
			}
		})
	}
}

// --- substrate benchmarks: per-fault injection throughput ---

// benchPerFault measures the marginal cost of one injected fault under
// the checkpointed engine: a golden runner is built once, then each
// iteration restores the nearest golden image (sub-launch or launch
// boundary), simulates the faulted suffix, and cuts off as soon as the
// state rejoins golden. Triggers cycle through the first fifty filtered
// lane-ops — the definition BENCH_v0.json and the CI gate track — so the
// metric prices the early-fault replay the sub-launch rejoin cutoff was
// built for.
func benchPerFault(b *testing.B, name string, build kernels.Builder) {
	dev := device.K40c()
	r, err := kernels.NewRunner(name, build, dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	nl := len(r.GoldenProfiles())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := &sim.FaultPlan{Kind: sim.FaultValueBit, TriggerIndex: uint64(i % 50), Bit: i % 32}
		if _, err := r.RunWithFault(plan, i%nl); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "faults/s")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/fault")
	}
}

// benchPerFaultUniform is the campaign-representative variant: triggers
// are sampled uniformly over the golden dynamic lane-op stream with a
// fixed-seed RNG — the same distribution the injection campaigns draw
// from — so the metric prices the fault mix a real campaign pays for
// (mid-launch triggers, SDC-heavy suffixes), not just early replays.
func benchPerFaultUniform(b *testing.B, name string, build kernels.Builder) {
	dev := device.K40c()
	r, err := kernels.NewRunner(name, build, dev, asm.O2)
	if err != nil {
		b.Fatal(err)
	}
	ops := r.LaunchLaneOps(func(op isa.Op) bool { return !op.IsControl() })
	var total uint64
	for _, n := range ops {
		total += n
	}
	rng := stats.NewRNG(0xb7e151628aed2a6a, 0x9e3779b97f4a7c15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := uint64(rng.Int64N(int64(total)))
		launch := 0
		for launch < len(ops)-1 && t >= ops[launch] {
			t -= ops[launch]
			launch++
		}
		plan := &sim.FaultPlan{Kind: sim.FaultValueBit, TriggerIndex: t, Bit: rng.IntN(32)}
		if _, err := r.RunWithFault(plan, launch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "faults/s")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/fault")
	}
}

func BenchmarkSimPerFaultFMXM(b *testing.B) {
	benchPerFault(b, "FMXM", kernels.MxMBuilder(isa.F32))
}

func BenchmarkSimPerFaultYOLOv3(b *testing.B) {
	benchPerFault(b, "FYOLOV3", kernels.YOLOBuilder(true, isa.F32))
}

func BenchmarkSimPerFaultFMXMUniform(b *testing.B) {
	benchPerFaultUniform(b, "FMXM", kernels.MxMBuilder(isa.F32))
}

func BenchmarkSimPerFaultYOLOv3Uniform(b *testing.B) {
	benchPerFaultUniform(b, "FYOLOV3", kernels.YOLOBuilder(true, isa.F32))
}

// BenchmarkSimSnapshotRestore isolates the memory-checkpoint substrate:
// one restore + one full-region word diff per iteration over a
// workload-sized device memory.
func BenchmarkSimSnapshotRestore(b *testing.B) {
	g := mem.NewGlobal(1 << 22)
	if _, err := g.Alloc(1 << 20); err != nil {
		b.Fatal(err)
	}
	snap := g.Snapshot()
	b.SetBytes(int64(g.AllocatedBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FlipBit(uint64(i) * 977)
		g.Restore(snap)
		if !g.EqualSnapshot(snap) {
			b.Fatal("restore did not converge")
		}
	}
}

func BenchmarkStudyTiny(b *testing.B) {
	if testing.Short() {
		b.Skip("study benchmark is heavy")
	}
	for i := 0; i < b.N; i++ {
		_, err := core.RunDevice(device.V100(), core.Options{
			MicroTrials: 20, CodeTrials: 15,
			SassifiPerClass: 5, NVBitFITotal: 20, MicroAVFFaults: 10,
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
