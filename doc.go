// Package gpurel is a pure-Go reproduction of "Demystifying GPU
// Reliability: Comparing and Combining Beam Experiments, Fault
// Simulation, and Profiling" (IPDPS 2021).
//
// The root package only anchors the module documentation and the
// benchmark harness (bench_test.go), which regenerates every table and
// figure of the paper; the implementation lives under internal/:
//
//	internal/isa         SASS-like instruction set
//	internal/asm         kernel builder + two-generation compiler backend
//	internal/device      Kepler K40c / Volta V100 models + silicon sensitivity
//	internal/mem, ecc    memory substrate and SECDED
//	internal/sim         SIMT architectural simulator with fault hooks
//	internal/kernels     the 15 workloads of Table I
//	internal/cnn         YOLOv2/v3-mini substrate
//	internal/microbench  the §V micro-benchmarks
//	internal/profiler    Table I / Figure 1 metrics
//	internal/faultinj    SASSIFI / NVBitFI analogues (Figure 4)
//	internal/beam        neutron-beam Monte Carlo (Figures 3, 5)
//	internal/fit         Equation 1-4 prediction + Figure 6
//	internal/core        study orchestration
//	internal/report      table/figure renderers
//
// See README.md, DESIGN.md, and EXPERIMENTS.md.
package gpurel
