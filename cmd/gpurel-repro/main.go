// Command gpurel-repro regenerates every table and figure of the paper
// in one run: the full two-device study (Volta first, so its NVBitFI
// AVFs can proxy for Kepler's library codes), written as text and CSV
// artifacts under -out.
//
//	gpurel-repro -out out -trials 350 -faults 500
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gpurel/internal/core"
	"gpurel/internal/pprofutil"
	"gpurel/internal/report"
)

func main() {
	outDir := flag.String("out", "out", "output directory")
	trials := flag.Int("trials", 350, "beam trials per configuration")
	faults := flag.Int("faults", 500, "injection faults per code")
	workers := flag.Int("workers", 0, "study parallelism across and within campaigns (0: one worker per CPU)")
	seed := flag.Uint64("seed", 1, "study seed")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	fromDir := flag.String("from", "", "re-render artifacts from a directory of saved study_*.json files instead of running campaigns")
	pprofutil.AddFlags()
	flag.Parse()
	if err := pprofutil.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer pprofutil.Stop()

	if *fromDir != "" {
		kepler, err := core.LoadDeviceStudy(filepath.Join(*fromDir, "study_kepler.json"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		volta, err := core.LoadDeviceStudy(filepath.Join(*fromDir, "study_volta.json"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		study := &core.Study{Kepler: kepler, Volta: volta}
		writeAll(*outDir, study)
		fmt.Printf("re-rendered artifacts from %s into %s\n", *fromDir, *outDir)
		return
	}

	opts := core.Options{
		MicroTrials:     *trials,
		CodeTrials:      *trials,
		SassifiPerClass: *faults / 4,
		NVBitFITotal:    *faults,
		Workers:         *workers,
		Seed:            *seed,
	}
	if !*quiet {
		opts.Progress = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}
	start := time.Now()
	study, err := core.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	writeAll(*outDir, study)
	for _, ds := range report.Devices(study) {
		devTag := "kepler"
		if ds.Dev.Name != "Tesla K40c" {
			devTag = "volta"
		}
		if err := ds.SaveJSON(filepath.Join(*outDir, "study_"+devTag+".json")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("study complete in %s; artifacts in %s\n",
		time.Since(start).Round(time.Second), *outDir)

	// Print the headline summary inline.
	var b strings.Builder
	for _, ds := range report.Devices(study) {
		b.WriteString(report.Figure6(ds, false))
		b.WriteString(report.DUETable(ds, false))
		b.WriteString("\n")
	}
	fmt.Print(b.String())
}

// writeAll renders every table and figure, text and CSV, per device.
func writeAll(outDir string, study *core.Study) {
	type artifact struct {
		name   string
		render func(*core.DeviceStudy, bool) string
	}
	artifacts := []artifact{
		{"table1", report.TableI},
		{"fig1", report.Figure1},
		{"fig3", report.Figure3},
		{"fig4", report.Figure4},
		{"fig5", report.Figure5},
		{"fig6", report.Figure6},
		{"hidden", report.HiddenDUE},
		{"residency", report.ResidencyTable},
		{"due_gap", report.DUEGapTable},
		{"due", report.DUETable},
		{"crossval", report.CrossValTable},
		{"bitband", report.StudyBitBand},
		{"opt", report.OptTable},
		{"opt_pressure", report.OptPressureTable},
		{"patterns", report.PatternsTable},
		{"patterns_twolevel", report.TwoLevelTable},
		{"due_modes", report.DUEModesTable},
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, ds := range report.Devices(study) {
		devTag := "kepler"
		if ds.Dev.Name != "Tesla K40c" {
			devTag = "volta"
		}
		for _, a := range artifacts {
			write(outDir, fmt.Sprintf("%s_%s.txt", a.name, devTag), a.render(ds, false))
			write(outDir, fmt.Sprintf("%s_%s.csv", a.name, devTag), a.render(ds, true))
		}
		write(outDir, fmt.Sprintf("full_%s.txt", devTag), report.Full(ds, false))
	}
}

func write(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
