// Command gpurel-beam runs simulated neutron-beam campaigns:
//
//	gpurel-beam -fig3                 micro-benchmark FIT rates (Figure 3)
//	gpurel-beam -fig5                 workload FIT rates, ECC on/off (Figure 5)
//	gpurel-beam -code FMXM -ecc=false one specific configuration
//
// Trials scale the statistics; the defaults keep a full figure under a
// few minutes of CPU time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/core"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/microbench"
	"gpurel/internal/pprofutil"
	"gpurel/internal/report"
	"gpurel/internal/suite"
)

func main() {
	devName := flag.String("device", "kepler", "device: kepler or volta")
	fig3 := flag.Bool("fig3", false, "run the micro-benchmark campaigns (Figure 3)")
	fig5 := flag.Bool("fig5", false, "run the workload campaigns (Figure 5)")
	code := flag.String("code", "", "run a single workload")
	ecc := flag.Bool("ecc", true, "ECC state for -code")
	trials := flag.Int("trials", 350, "beam trials per configuration")
	workers := flag.Int("workers", 0, "campaign parallelism (0: one worker per CPU)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	csv := flag.Bool("csv", false, "emit CSV")
	pprofutil.AddFlags()
	flag.Parse()
	if err := pprofutil.Start(); err != nil {
		fail(err)
	}
	defer pprofutil.Stop()

	dev, err := pickDevice(*devName)
	if err != nil {
		fail(err)
	}
	ds := &core.DeviceStudy{
		Dev:       dev,
		MicroBeam: map[string]*beam.Result{},
		Beam:      map[core.BeamKey]*beam.Result{},
	}

	start := time.Now()
	totalTrials := 0
	switch {
	case *fig3:
		for _, m := range microbench.Catalog(dev) {
			r, err := kernels.NewRunner(m.Name, m.Build, dev, asm.O2)
			if err != nil {
				fail(err)
			}
			res, err := beam.Run(beam.Config{ECC: m.Name != "RF", Trials: *trials, Workers: *workers, Seed: *seed}, r)
			if err != nil {
				fail(err)
			}
			ds.MicroBeam[m.Name] = res
			totalTrials += res.Trials
			restores, rejoins := r.ReplayStats()
			fmt.Fprintf(os.Stderr, "done %s (sub-launch restores %d, rejoins %d)\n",
				m.Name, restores, rejoins)
		}
		summary(totalTrials, start)
		fmt.Print(report.Figure3(ds, *csv))
	case *fig5:
		entries := suite.ForDevice(dev)
		for _, key := range core.BeamConfigs(dev, entries) {
			e, err := suite.Find(entries, key.Code)
			if err != nil {
				fail(err)
			}
			r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
			if err != nil {
				fail(err)
			}
			res, err := beam.Run(beam.Config{ECC: key.ECC, Trials: *trials, Workers: *workers, Seed: *seed}, r)
			if err != nil {
				fail(err)
			}
			ds.Beam[key] = res
			totalTrials += res.Trials
			restores, rejoins := r.ReplayStats()
			fmt.Fprintf(os.Stderr, "done %s ecc=%v (sub-launch restores %d, rejoins %d)\n",
				key.Code, key.ECC, restores, rejoins)
		}
		// Figure 5 normalizes against the micro floor; run the cheapest
		// reference micro for the normalization constant.
		ref, err := kernels.NewRunner("FADD", microbench.ArithBuilder(refOp(dev)), dev, asm.O2)
		if err != nil {
			fail(err)
		}
		refRes, err := beam.Run(beam.Config{ECC: true, Trials: *trials, Workers: *workers, Seed: *seed}, ref)
		if err != nil {
			fail(err)
		}
		ds.MicroBeam["REF"] = refRes
		totalTrials += refRes.Trials
		summary(totalTrials, start)
		fmt.Print(report.Figure5(ds, *csv))
	case *code != "":
		entries := suite.ForDevice(dev)
		e, err := suite.Find(entries, *code)
		if err != nil {
			fail(err)
		}
		r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
		if err != nil {
			fail(err)
		}
		res, err := beam.Run(beam.Config{ECC: *ecc, Trials: *trials, Workers: *workers, Seed: *seed}, r)
		if err != nil {
			fail(err)
		}
		summary(res.Trials, start)
		restores, rejoins := r.ReplayStats()
		fmt.Fprintf(os.Stderr, "sub-launch replay: %d restores, %d rejoins\n", restores, rejoins)
		fmt.Printf("%s on %s, ECC %v: SDC FIT %.4f [%.4f, %.4f] a.u. (%d events), DUE FIT %.4f (%d events), %d trials\n",
			res.Name, res.Device, res.ECC,
			res.SDCFIT.Rate, res.SDCFIT.CI.Lower, res.SDCFIT.CI.Upper, res.SDC,
			res.DUEFIT.Rate, res.DUE, res.Trials)
		for src := beam.Source(0); src < beam.SrcCount; src++ {
			s := res.BySource[src]
			fmt.Printf("  %-16s strikes %4d  SDC %3d  DUE %3d\n", src, s.Strikes, s.SDC, s.DUE)
		}
	default:
		fail(fmt.Errorf("pick one of -fig3, -fig5, or -code NAME"))
	}
}

// summary prints the wall-clock/throughput line every campaign mode
// ends with.
func summary(trials int, start time.Time) {
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "campaign total: %d trials in %s (%.0f trials/s)\n",
		trials, elapsed.Round(time.Millisecond), float64(trials)/elapsed.Seconds())
}

// refOp is the normalization micro-benchmark of Figure 5: FADD on
// Kepler, HFMA on Volta (the devices' lowest DUE micros in the paper).
func refOp(dev *device.Device) isa.Op {
	if dev.Arch == device.Kepler {
		return isa.OpFADD
	}
	return isa.OpHFMA
}

func pickDevice(name string) (*device.Device, error) {
	switch name {
	case "kepler", "k40c":
		return device.K40c(), nil
	case "volta", "v100":
		return device.V100(), nil
	default:
		return nil, fmt.Errorf("unknown device %q", name)
	}
}

func fail(err error) {
	pprofutil.Stop() // flush any in-flight profiles before exiting
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
