// Command gpurel-profile characterizes the Table I workloads on a
// simulated GPU the way nvprof / Nsight Compute characterize them on
// real silicon: shared memory, registers per thread, issued IPC, and
// achieved occupancy (Table I), plus the dynamic instruction-class mix
// (Figure 1).
//
// Usage:
//
//	gpurel-profile [-device kepler|volta] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"gpurel/internal/asm"
	"gpurel/internal/core"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"gpurel/internal/profiler"
	"gpurel/internal/report"
	"gpurel/internal/suite"
)

func main() {
	devName := flag.String("device", "kepler", "device to profile: kepler or volta")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	dev, err := pickDevice(*devName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ds := &core.DeviceStudy{Dev: dev, Profiles: map[string]*profiler.CodeProfile{}}
	for _, e := range suite.ForDevice(dev) {
		r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		cp, err := profiler.Profile(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		ds.Profiles[e.Name] = cp
	}
	fmt.Print(report.TableI(ds, *csv))
	fmt.Println()
	fmt.Print(report.Figure1(ds, *csv))
}

func pickDevice(name string) (*device.Device, error) {
	switch name {
	case "kepler", "k40c":
		return device.K40c(), nil
	case "volta", "v100":
		return device.V100(), nil
	default:
		return nil, fmt.Errorf("unknown device %q (want kepler or volta)", name)
	}
}
