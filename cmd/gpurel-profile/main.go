// Command gpurel-profile characterizes the Table I workloads on a
// simulated GPU the way nvprof / Nsight Compute characterize them on
// real silicon: shared memory, registers per thread, issued IPC, and
// achieved occupancy (Table I), plus the dynamic instruction-class mix
// (Figure 1). With -residency it adds the golden-run residency
// telemetry (execution-weighted hidden-structure occupancies and the
// measured strike shares they imply); with -timeline CODE it dumps one
// workload's per-launch bucket timelines.
//
// Usage:
//
//	gpurel-profile [-device kepler|volta] [-csv] [-residency] [-timeline CODE]
package main

import (
	"flag"
	"fmt"
	"os"

	"gpurel/internal/analysis"
	"gpurel/internal/asm"
	"gpurel/internal/core"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/kernels"
	"gpurel/internal/profiler"
	"gpurel/internal/report"
	"gpurel/internal/suite"
)

func main() {
	devName := flag.String("device", "kepler", "device to profile: kepler or volta")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	residency := flag.Bool("residency", false, "also render the measured residency telemetry table")
	timeline := flag.String("timeline", "", "dump the per-launch residency timelines of one workload and exit")
	flag.Parse()

	dev, err := pickDevice(*devName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *timeline != "" {
		os.Exit(dumpTimeline(dev, *timeline))
	}
	ds := &core.DeviceStudy{
		Dev:            dev,
		Profiles:       map[string]*profiler.CodeProfile{},
		MeasuredHidden: map[string]*analysis.HiddenEstimate{},
	}
	for _, e := range suite.ForDevice(dev) {
		r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		cp, err := profiler.Profile(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		ds.Profiles[e.Name] = cp
		if *residency {
			ds.MeasuredHidden[e.Name] = faultinj.MeasuredHidden(r)
		}
	}
	fmt.Print(report.TableI(ds, *csv))
	fmt.Println()
	fmt.Print(report.Figure1(ds, *csv))
	if *residency {
		fmt.Println()
		fmt.Print(report.ResidencyTable(ds, *csv))
	}
}

// dumpTimeline prints every launch's bucket series for one workload:
// the raw telemetry the residency aggregates are computed from.
func dumpTimeline(dev *device.Device, code string) int {
	e, err := suite.Find(suite.ForDevice(dev), code)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for li, p := range r.GoldenProfiles() {
		tl := p.Timeline
		fmt.Printf("launch %d: %d cycles, bucket width %d\n", li, p.Cycles, tl.BucketWidth)
		fmt.Printf("  %6s  %8s  %10s  %12s  %10s  %8s  %10s  %10s\n",
			"bucket", "cycles", "SM cycles", "warp cycles", "issued", "ctrl", "load res", "div res")
		for bi, b := range tl.Buckets {
			if b.Cycles == 0 {
				continue
			}
			fmt.Printf("  %6d  %8d  %10d  %12d  %10d  %8d  %10d  %10d\n",
				bi, b.Cycles, b.SMCycles, b.ActiveWarpCycles, b.Issued,
				b.CtrlOps, b.LoadResidency, b.DivResidency)
		}
	}
	return 0
}

func pickDevice(name string) (*device.Device, error) {
	switch name {
	case "kepler", "k40c":
		return device.K40c(), nil
	case "volta", "v100":
		return device.V100(), nil
	default:
		return nil, fmt.Errorf("unknown device %q (want kepler or volta)", name)
	}
}
