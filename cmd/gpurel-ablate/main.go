// Command gpurel-ablate quantifies what each term of the prediction
// model contributes by re-running the Figure-6 comparison for one code
// with individual terms disabled: Equation 4's phi factor, the
// full-utilization normalization, the §V-A de-masking, and Equation 3's
// memory term.
//
//	gpurel-ablate -device kepler -code FMXM -ecc=false
//
// With -opt-matrix it instead ablates the compiler: the full
// optimization matrix (O0/O1/O2 plus unroll, copy-propagation, and
// spill knobs) is injected and statically explained for the chosen
// workload, and the sweep table is printed.
//
//	gpurel-ablate -device kepler -code NW -opt-matrix
package main

import (
	"flag"
	"fmt"
	"os"

	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/fit"
	"gpurel/internal/kernels"
	"gpurel/internal/microbench"
	"gpurel/internal/profiler"
	"gpurel/internal/report"
	"gpurel/internal/stats"
	"gpurel/internal/suite"
)

func main() {
	devName := flag.String("device", "kepler", "device: kepler or volta")
	code := flag.String("code", "FMXM", "workload")
	ecc := flag.Bool("ecc", false, "ECC state")
	trials := flag.Int("trials", 300, "beam trials")
	faults := flag.Int("faults", 400, "injection faults")
	seed := flag.Uint64("seed", 1, "seed")
	optMatrix := flag.Bool("opt-matrix", false, "sweep the optimization matrix for the workload instead of ablating model terms")
	csv := flag.Bool("csv", false, "with -opt-matrix: emit CSV instead of the aligned table")
	flag.Parse()

	var dev *device.Device
	switch *devName {
	case "kepler", "k40c":
		dev = device.K40c()
	case "volta", "v100":
		dev = device.V100()
	default:
		fail(fmt.Errorf("unknown device %q", *devName))
	}
	e, err := suite.Find(suite.ForDevice(dev), *code)
	if err != nil {
		fail(err)
	}

	if *optMatrix {
		m, err := faultinj.RunOptMatrix(faultinj.OptMatrixConfig{
			Faults: *faults, Seed: *seed,
		}, e.Name, e.Build, dev, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(report.OptMatrixSweep([]*faultinj.OptMatrix{m}, *csv))
		if !m.OrderingAgrees() {
			_, d := m.OrderingAgreement(faultinj.OptOrderingEps)
			fail(fmt.Errorf("opt-matrix: static ordering contradicts injection on %s (%d discordant pairs)", e.Name, d))
		}
		return
	}

	// Gather the inputs: profile, AVF, micro-benchmark unit FITs, beam.
	runner, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
	if err != nil {
		fail(err)
	}
	cp, err := profiler.Profile(runner)
	if err != nil {
		fail(err)
	}
	tool := faultinj.NVBitFI
	if dev.Arch == device.Kepler {
		tool = faultinj.Sassifi
	}
	avf, err := faultinj.Run(faultinj.Config{
		Tool: tool, FaultsPerClass: *faults / 4, TotalFaults: *faults, Seed: *seed,
	}, e.Name, e.Build, dev)
	if err != nil {
		fail(err)
	}
	micro := map[string]*beam.Result{}
	phi := map[string]float64{}
	var rfBytes int
	for _, m := range microbench.Catalog(dev) {
		mr, err := kernels.NewRunner(m.Name, m.Build, dev, asm.O2)
		if err != nil {
			fail(err)
		}
		res, err := beam.Run(beam.Config{ECC: m.Name != "RF", Trials: *trials, Seed: *seed}, mr)
		if err != nil {
			fail(err)
		}
		micro[m.Name] = res
		if mp, err := profiler.Profile(mr); err == nil {
			phi[m.Name] = mp.Phi()
		}
		if m.Name == "RF" {
			l := mr.Instance().Launches[0]
			rfBytes = l.GridX * l.GridY * l.BlockThreads * l.Prog.NumRegs * 4
		}
		fmt.Fprintf(os.Stderr, "micro %s done\n", m.Name)
	}
	units, err := fit.FromMicroResults(dev.Name, micro, nil, phi, nil, rfBytes)
	if err != nil {
		fail(err)
	}
	beamRes, err := beam.Run(beam.Config{ECC: *ecc, Trials: *trials, Seed: *seed}, runner)
	if err != nil {
		fail(err)
	}

	fmt.Printf("ablation study: %s on %s, ECC %v (beam SDC FIT %.4f a.u.)\n\n",
		e.Name, dev.Name, *ecc, beamRes.SDCFIT.Rate)
	fmt.Printf("%-28s  %12s  %10s\n", "model variant", "predicted", "ratio")
	fmt.Printf("%-28s  %12s  %10s\n", "----------------------------", "------------", "----------")
	rows := []struct {
		name string
		ab   fit.Ablation
	}{
		{"full model (Eq. 1-4)", fit.Ablation{}},
		{"without phi (Eq. 4)", fit.Ablation{NoPhi: true}},
		{"without micro-phi norm", fit.Ablation{NoMicroPhiNorm: true}},
		{"without de-masking (§V-A)", fit.Ablation{NoDemask: true}},
		{"without memory term (Eq. 3)", fit.Ablation{NoMemTerm: true}},
	}
	for _, r := range rows {
		p := fit.PredictAblated(cp, avf, units, *ecc, r.ab)
		fmt.Printf("%-28s  %12.4f  %+9.1fx\n",
			r.name, p.SDCFIT, stats.SignedRatio(beamRes.SDCFIT.Rate, p.SDCFIT))
	}
	fmt.Println("\nratio is beam/prediction (+x: beam higher; -x: prediction higher)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
