// Command gpurel-sassdump disassembles the kernels of a workload the way
// nvdisasm dumps SASS, for both compiler generations side by side — the
// quickest way to see the codegen differences that drive the
// SASSIFI-versus-NVBitFI AVF gap (§VI).
//
//	gpurel-sassdump -device kepler -code FMXM
//	gpurel-sassdump -device volta -code HGEMM-MMA -opt O2
package main

import (
	"flag"
	"fmt"
	"os"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/suite"
)

func main() {
	devName := flag.String("device", "kepler", "device: kepler or volta")
	code := flag.String("code", "FMXM", "workload to disassemble")
	optName := flag.String("opt", "both", "compiler pipeline: O1, O2, or both")
	flag.Parse()

	var dev *device.Device
	switch *devName {
	case "kepler", "k40c":
		dev = device.K40c()
	case "volta", "v100":
		dev = device.V100()
	case "titanv":
		dev = device.TitanV()
	default:
		fail(fmt.Errorf("unknown device %q", *devName))
	}
	e, err := suite.Find(suite.ForDevice(dev), *code)
	if err != nil {
		fail(err)
	}

	var opts []asm.OptLevel
	switch *optName {
	case "O1":
		opts = []asm.OptLevel{asm.O1}
	case "O2":
		opts = []asm.OptLevel{asm.O2}
	default:
		opts = []asm.OptLevel{asm.O1, asm.O2}
	}
	for _, opt := range opts {
		inst, err := e.Build(dev, opt)
		if err != nil {
			fail(err)
		}
		fmt.Printf("// %s on %s, pipeline %s (%d kernel launches)\n\n",
			e.Name, dev.Name, opt, len(inst.Launches))
		seen := map[string]bool{}
		for _, l := range inst.Launches {
			if seen[l.Prog.Name] {
				continue
			}
			seen[l.Prog.Name] = true
			fmt.Printf("// kernel %s: %d instructions, %d regs/thread, %dB shared, grid %dx%d x %d threads\n",
				l.Prog.Name, len(l.Prog.Instrs), l.Prog.NumRegs, l.Prog.SharedMem,
				l.GridX, l.GridY, l.BlockThreads)
			fmt.Print(l.Prog.Disassemble())
			fmt.Println()
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
