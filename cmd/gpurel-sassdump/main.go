// Command gpurel-sassdump disassembles the kernels of a workload the way
// nvdisasm dumps SASS, for both compiler generations side by side — the
// quickest way to see the codegen differences that drive the
// SASSIFI-versus-NVBitFI AVF gap (§VI).
//
//	gpurel-sassdump -device kepler -code FMXM
//	gpurel-sassdump -device volta -code HGEMM-MMA -opt O2
//	gpurel-sassdump -device kepler -code BFS -bits   annotate widths + known bits
package main

import (
	"flag"
	"fmt"
	"os"

	"gpurel/internal/analysis"
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"gpurel/internal/suite"
)

func main() {
	devName := flag.String("device", "kepler", "device: kepler or volta")
	code := flag.String("code", "FMXM", "workload to disassemble")
	optName := flag.String("opt", "both", "configuration: any asm.ParseOptLevel string (O0, O2+u4, O2+spill, ...), \"both\" (O1+O2), or \"matrix\" (the full set)")
	bits := flag.Bool("bits", false, "annotate each instruction with destination/operand widths and the known-bits/range facts the analyzer derives")
	flag.Parse()

	var dev *device.Device
	switch *devName {
	case "kepler", "k40c":
		dev = device.K40c()
	case "volta", "v100":
		dev = device.V100()
	case "titanv":
		dev = device.TitanV()
	default:
		fail(fmt.Errorf("unknown device %q", *devName))
	}
	e, err := suite.Find(suite.ForDevice(dev), *code)
	if err != nil {
		fail(err)
	}

	var opts []asm.OptLevel
	switch *optName {
	case "both":
		opts = []asm.OptLevel{asm.O1, asm.O2}
	case "matrix":
		opts = asm.MatrixConfigs()
	default:
		opt, err := asm.ParseOptLevel(*optName)
		if err != nil {
			fail(err)
		}
		opts = []asm.OptLevel{opt}
	}
	for _, opt := range opts {
		inst, err := e.Build(dev, opt)
		if err != nil {
			fail(err)
		}
		fmt.Printf("// %s on %s, pipeline %s (%d kernel launches)\n\n",
			e.Name, dev.Name, opt, len(inst.Launches))
		seen := map[string]bool{}
		for _, l := range inst.Launches {
			if seen[l.Prog.Name] {
				continue
			}
			seen[l.Prog.Name] = true
			fmt.Printf("// kernel %s: %d instructions, %d regs/thread, %dB shared, grid %dx%d x %d threads\n",
				l.Prog.Name, len(l.Prog.Instrs), l.Prog.NumRegs, l.Prog.SharedMem,
				l.GridX, l.GridY, l.BlockThreads)
			if *bits {
				dumpBits(l)
			} else {
				fmt.Print(l.Prog.Disassemble())
			}
			fmt.Println()
		}
	}
}

// dumpBits prints the disassembly with each value-producing instruction
// annotated by its destination width, any architecturally-narrow source
// reads, the known-bits and range facts the forward pass derives under
// this launch's geometry, and the mean bit-resolved ACE fractions.
func dumpBits(l kernels.Launch) {
	p := l.Prog
	r := analysis.AnalyzeLaunch(p, &analysis.Bounds{
		GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
	})
	fmt.Printf("\t.text.%s:\n", p.Name)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		fmt.Printf("  /*%04d*/  %s\n", i, in.String())
		if in.DstRegs() == 0 {
			continue
		}
		v := &r.ACEVec[i]
		ann := fmt.Sprintf("dst %db", in.DstBits())
		for slot := 0; slot < 3; slot++ {
			if w := in.SrcValueBits(slot); w != 32 {
				ann += fmt.Sprintf("  src%d %db", slot, w)
			}
		}
		f := r.Facts[i]
		if f.KB.KnownCount() > 0 {
			ann += "  kb " + f.KB.String()
		}
		if !f.R.IsFull() {
			ann += "  r " + f.R.String()
		}
		ann += fmt.Sprintf("  sdc %.3f due %.3f", v.MeanSDC(), v.MeanDUE())
		if v.Dead() {
			ann += "  dead"
		}
		fmt.Printf("            // %s\n", ann)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
