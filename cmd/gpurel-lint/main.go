// Command gpurel-lint runs the static dataflow analyzer over the
// built-in kernels and micro-benchmarks: a lint gate for the SASS-like
// IR (dead stores, use-before-def, unreachable blocks, SSY hazards) and
// an injection-free static AVF estimator, cross-validatable against the
// fault injectors.
//
//	gpurel-lint                                 lint everything, both pipelines
//	gpurel-lint -device kepler -code FMXM -v    one workload, show warnings
//	gpurel-lint -json                           machine-readable report
//	gpurel-lint -selftest                       prove the detectors fire
//	gpurel-lint -device kepler -cross-validate  static vs injection AVF table
//	gpurel-lint -cross-validate -beam-trials 0 -crossval-gate
//	                                            agreement gate (CI): exit 1 on
//	                                            any out-of-tolerance workload
//	gpurel-lint -opt-gate                       optimization-matrix ordering
//	                                            gate (CI): exit 1 when static
//	                                            and injection AVF orderings
//	                                            disagree on any matrix
//	gpurel-lint -due-modes                      static vs injection DUE-mode
//	                                            share table per workload
//	gpurel-lint -duemode-gate                   DUE-mode agreement gate (CI):
//	                                            exit 1 when any measurable
//	                                            workload's mode shares leave
//	                                            the L-inf tolerance
//	gpurel-lint -twolevel-gate                  two-level estimator gate (CI):
//	                                            exit 1 when any workload's
//	                                            two-level SDC AVF leaves the
//	                                            tolerance band or spends more
//	                                            than 1/5 the exhaustive trials
//
// Exit status is 1 when any Error-severity finding exists (warnings do
// not gate), 2 on usage or build failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gpurel/internal/analysis"
	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/core"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/microbench"
	"gpurel/internal/report"
	"gpurel/internal/suite"
)

type jsonFinding struct {
	Severity string `json:"severity"`
	Kind     string `json:"kind"`
	Instr    int    `json:"instr"`
	Msg      string `json:"msg"`
}

type progReport struct {
	Device   string  `json:"device"`
	Workload string  `json:"workload"`
	Program  string  `json:"program"`
	Opt      string  `json:"opt"`
	Sites    int     `json:"sites"`
	SDC      float64 `json:"static_sdc"`
	DUE      float64 `json:"static_due"`
	Dead     float64 `json:"dead_fraction"`

	Errors   []jsonFinding `json:"errors"`
	Warnings []jsonFinding `json:"warnings"`
}

func main() {
	devName := flag.String("device", "all", "device: kepler, volta, or all")
	optName := flag.String("opt", "both", "configuration: an asm.ParseOptLevel string (O0, O1, O2, O2+u4, O2+spill, ...), \"both\" (O1+O2), or \"matrix\" (the full set)")
	code := flag.String("code", "", "lint a single workload (default: all, plus micro-benchmarks)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	verbose := flag.Bool("v", false, "list warnings (errors are always listed)")
	selftest := flag.Bool("selftest", false, "run the detectors on seeded-defect fixtures and exit")
	crossVal := flag.Bool("cross-validate", false, "compare static AVF against an NVBitFI campaign, and the static hidden-DUE model against a beam campaign, per workload")
	faults := flag.Int("faults", 400, "campaign size for -cross-validate")
	beamTrials := flag.Int("beam-trials", 2000, "beam trials per workload for the hidden-DUE table of -cross-validate (0 skips the hidden table)")
	seed := flag.Uint64("seed", 7, "campaign seed for -cross-validate")
	csv := flag.Bool("csv", false, "emit the -cross-validate tables as CSV")
	measuredGate := flag.Bool("measured-gate", false, "with -cross-validate: exit 1 unless every measured-residency hidden estimate agrees with the beam within the tighter tolerance")
	crossvalGate := flag.Bool("crossval-gate", false, "with -cross-validate: exit 1 unless every workload's bit-resolved static AVF agrees with injection within the tolerance")
	optGate := flag.Bool("opt-gate", false, "run the optimization-matrix sweep and exit 1 unless the static AVF ordering matches injection's on every matrix")
	twoLevelGate := flag.Bool("twolevel-gate", false, "run the two-level estimator against exhaustive NVBitFI campaigns and exit 1 on any out-of-tolerance workload or a speedup below 5x")
	dueModes := flag.Bool("due-modes", false, "compare the static DUE-mode shares against an NVBitFI campaign's typed-DUE ledger, per workload")
	dueModeGate := flag.Bool("duemode-gate", false, "like -due-modes, and exit 1 unless every measurable workload agrees within faultinj.DUEModeTolerance")
	flag.Parse()

	if *selftest {
		os.Exit(runSelftest())
	}

	devs, err := pickDevices(*devName)
	if err != nil {
		fail(err)
	}
	opts, err := pickOpts(*optName)
	if err != nil {
		fail(err)
	}

	if *optGate {
		os.Exit(runOptGate(devs, *code, *faults, *seed, *csv))
	}

	if *twoLevelGate {
		os.Exit(runTwoLevelGate(devs, *code, *faults, *seed, *csv))
	}

	if *dueModes || *dueModeGate {
		os.Exit(runDUEModes(devs, *code, *faults, *seed, *csv, *dueModeGate))
	}

	if *crossVal {
		os.Exit(runCrossValidate(devs, *code, *faults, *beamTrials, *seed, *csv, *measuredGate, *crossvalGate))
	}

	var reports []progReport
	for _, dev := range devs {
		entries := suite.ForDevice(dev)
		if *code != "" {
			e, err := suite.Find(entries, *code)
			if err != nil {
				fail(err)
			}
			entries = []suite.Entry{e}
		}
		for _, opt := range opts {
			for _, e := range entries {
				inst, err := e.Build(dev, opt)
				if err != nil {
					fail(fmt.Errorf("building %s on %s: %w", e.Name, dev.Name, err))
				}
				seen := map[string]bool{}
				for _, l := range inst.Launches {
					if seen[l.Prog.Name] {
						continue
					}
					seen[l.Prog.Name] = true
					reports = append(reports, analyzeProg(dev.Name, e.Name, opt.String(), l.Prog))
				}
			}
			if *code == "" {
				for _, m := range microbench.Catalog(dev) {
					inst, err := m.Build(dev, opt)
					if err != nil {
						fail(fmt.Errorf("building micro %s on %s: %w", m.Name, dev.Name, err))
					}
					for _, l := range inst.Launches {
						reports = append(reports, analyzeProg(dev.Name, "micro:"+m.Name, opt.String(), l.Prog))
					}
				}
			}
		}
	}

	errorCount := 0
	for i := range reports {
		errorCount += len(reports[i].Errors)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail(err)
		}
	} else {
		printText(reports, *verbose)
	}
	if errorCount > 0 {
		os.Exit(1)
	}
}

func analyzeProg(dev, workload, opt string, p *isa.Program) progReport {
	r := analysis.Analyze(p)
	est := r.Estimate(nil, nil)
	pr := progReport{
		Device: dev, Workload: workload, Program: p.Name, Opt: opt,
		Sites: est.Sites, SDC: est.SDC, DUE: est.DUE, Dead: est.DeadFraction,
		Errors:   []jsonFinding{},
		Warnings: []jsonFinding{},
	}
	for _, f := range r.Errors() {
		pr.Errors = append(pr.Errors, jsonFinding{f.Sev.String(), f.Kind, f.Instr, f.Msg})
	}
	for _, f := range r.Warnings() {
		pr.Warnings = append(pr.Warnings, jsonFinding{f.Sev.String(), f.Kind, f.Instr, f.Msg})
	}
	return pr
}

func printText(reports []progReport, verbose bool) {
	warnTotal, errTotal := 0, 0
	for _, pr := range reports {
		fmt.Printf("%-7s %-8s %-18s %-16s sites=%-3d sdc=%.3f due=%.3f dead=%.3f warn=%d err=%d\n",
			pr.Device, pr.Opt, pr.Workload, pr.Program,
			pr.Sites, pr.SDC, pr.DUE, pr.Dead, len(pr.Warnings), len(pr.Errors))
		for _, f := range pr.Errors {
			fmt.Printf("  error[%s] /*%04d*/ %s\n", f.Kind, f.Instr, f.Msg)
		}
		if verbose {
			for _, f := range pr.Warnings {
				fmt.Printf("  warn[%s] /*%04d*/ %s\n", f.Kind, f.Instr, f.Msg)
			}
		}
		warnTotal += len(pr.Warnings)
		errTotal += len(pr.Errors)
	}
	fmt.Printf("%d programs, %d errors, %d warnings\n", len(reports), errTotal, warnTotal)
}

// runSelftest seeds one program with a dead store and one with a
// use-before-def read, and verifies the analyzer flags exactly those.
// These fixtures are hand-assembled: the Builder's own verify gate
// would refuse to emit some of them.
func runSelftest() int {
	mk := func(op isa.Op, dst isa.Reg, srcs ...isa.Reg) isa.Instr {
		in := isa.Instr{Op: op, Pred: isa.PT, DstP: isa.PT, Dst: dst,
			Srcs: [3]isa.Operand{isa.R(isa.RZ), isa.R(isa.RZ), isa.R(isa.RZ)}}
		for i, s := range srcs {
			in.Srcs[i] = isa.R(s)
		}
		return in
	}
	stg := mk(isa.OpSTG, isa.RZ, 4)
	stg.Srcs[1] = isa.Imm(0)
	stg.Srcs[2] = isa.R(2)
	seeded := &isa.Program{Name: "selftest", Instrs: []isa.Instr{
		mk(isa.OpMOV32I, 0),
		mk(isa.OpIMUL, 1, 0, 0), // dead store: R1 never read
		mk(isa.OpIADD, 2, 3, 0), // use-before-def: R3 never written
		mk(isa.OpMOV32I, 4),     // address
		stg,
		mk(isa.OpEXIT, isa.RZ),
	}}
	r := analysis.Analyze(seeded)
	ok := true
	expect := func(found bool, what string) {
		if found {
			fmt.Printf("selftest: detected %s\n", what)
		} else {
			fmt.Printf("selftest: FAILED to detect %s\n", what)
			ok = false
		}
	}
	hasKind := func(fs []analysis.Finding, kind string) bool {
		for _, f := range fs {
			if f.Kind == kind {
				return true
			}
		}
		return false
	}
	expect(hasKind(r.Warnings(), analysis.KindDeadStore), "the seeded dead store")
	expect(hasKind(r.Errors(), analysis.KindUseBeforeDef), "the seeded use-before-def")
	if !ok {
		return 1
	}
	fmt.Println("selftest: ok")
	return 0
}

func runCrossValidate(devs []*device.Device, code string, faults, beamTrials int, seed uint64, csv, measuredGate, crossvalGate bool) int {
	var cvs []*faultinj.CrossValidation
	var hcvs []*faultinj.HiddenCrossValidation
	for _, dev := range devs {
		all := suite.ForDevice(dev)
		var entries []suite.Entry
		if code != "" {
			e, err := suite.Find(all, code)
			if err != nil {
				fail(err)
			}
			entries = []suite.Entry{e}
		} else {
			// Default to the validated set; value-masking-dominated
			// workloads (see faultinj.CrossValKernels) need -code.
			for _, name := range faultinj.CrossValKernels {
				if e, err := suite.Find(all, name); err == nil {
					entries = append(entries, e)
				}
			}
		}
		cfg := faultinj.Config{Tool: faultinj.NVBitFI, TotalFaults: faults, Seed: seed}
		for _, e := range entries {
			cv, err := faultinj.CrossValidate(cfg, e.Name, e.Build, dev)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skip %s on %s: %v\n", e.Name, dev.Name, err)
				continue
			}
			cvs = append(cvs, cv)
			fmt.Fprintf(os.Stderr, "done %s on %s\n", e.Name, dev.Name)
		}

		// Hidden-resource DUE: static model vs a beam campaign's hidden
		// strike ledger. ECC stays on so storage strikes short-circuit
		// and the campaign cost is dominated by the strikes of interest.
		if beamTrials <= 0 {
			continue
		}
		var hiddenEntries []suite.Entry
		if code != "" {
			hiddenEntries = entries
		} else {
			for _, name := range faultinj.HiddenCrossValKernels {
				if e, err := suite.Find(all, name); err == nil {
					hiddenEntries = append(hiddenEntries, e)
				}
			}
		}
		bcfg := beam.Config{ECC: true, Trials: beamTrials, Seed: seed}
		for _, e := range hiddenEntries {
			r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skip hidden %s on %s: %v\n", e.Name, dev.Name, err)
				continue
			}
			hcv, err := faultinj.CrossValidateHidden(bcfg, r)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skip hidden %s on %s: %v\n", e.Name, dev.Name, err)
				continue
			}
			hcvs = append(hcvs, hcv)
			fmt.Fprintf(os.Stderr, "done hidden %s on %s\n", e.Name, dev.Name)
		}
	}
	fmt.Print(report.CrossValidation(cvs, csv))
	fmt.Println()
	fmt.Print(report.BitBandTable(cvs, csv))
	if beamTrials > 0 {
		fmt.Println()
		fmt.Print(report.HiddenCrossValidation(hcvs, csv))
	}
	if crossvalGate {
		for _, cv := range cvs {
			if !cv.Agrees() {
				fmt.Fprintf(os.Stderr, "crossval-gate: %s on %s outside ±%.2f (delta %+.3f)\n",
					cv.Name, cv.Device, faultinj.CrossValTolerance, cv.Delta())
				return 1
			}
		}
	}
	if measuredGate {
		for _, hcv := range hcvs {
			if !hcv.MeasuredAgrees() {
				fmt.Fprintf(os.Stderr, "measured-gate: %s on %s outside ±%.2f (delta %+.3f)\n",
					hcv.Name, hcv.Device, faultinj.MeasuredCrossValTolerance, hcv.MeasuredDelta())
				return 1
			}
		}
	}
	return 0
}

// runDUEModes runs, per device and cross-validation workload, an
// NVBitFI campaign and the static DUE-mode estimator, and renders both
// share distributions side by side. With gate set it exits 1 when any
// measurable workload's L-infinity delta leaves
// faultinj.DUEModeTolerance.
func runDUEModes(devs []*device.Device, code string, faults int, seed uint64, csv, gate bool) int {
	var cvs []*faultinj.DUEModeCrossVal
	for _, dev := range devs {
		all := suite.ForDevice(dev)
		var entries []suite.Entry
		if code != "" {
			e, err := suite.Find(all, code)
			if err != nil {
				fail(err)
			}
			entries = []suite.Entry{e}
		} else {
			for _, name := range faultinj.CrossValKernels {
				if e, err := suite.Find(all, name); err == nil {
					entries = append(entries, e)
				}
			}
		}
		cfg := faultinj.Config{Tool: faultinj.NVBitFI, TotalFaults: faults, Seed: seed}
		for _, e := range entries {
			cv, err := faultinj.CrossValidateDUEModes(cfg, e.Name, e.Build, dev)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skip %s on %s: %v\n", e.Name, dev.Name, err)
				continue
			}
			cvs = append(cvs, cv)
			fmt.Fprintf(os.Stderr, "done %s on %s: delta %.3f over %d typed DUEs\n",
				e.Name, dev.Name, cv.Delta(), cv.DynamicDUEs)
		}
	}
	fmt.Print(report.DUEModeCrossValidation(cvs, csv))
	if gate {
		bad := 0
		for _, cv := range cvs {
			if !cv.Agrees() {
				fmt.Fprintf(os.Stderr, "duemode-gate: %s on %s outside %.2f (L-inf delta %.3f over %d typed DUEs)\n",
					cv.Name, cv.Device, faultinj.DUEModeTolerance, cv.Delta(), cv.DynamicDUEs)
				bad++
			}
		}
		if bad > 0 {
			return 1
		}
	}
	return 0
}

func pickDevices(name string) ([]*device.Device, error) {
	switch name {
	case "kepler", "k40c":
		return []*device.Device{device.K40c()}, nil
	case "volta", "v100":
		return []*device.Device{device.V100()}, nil
	case "all":
		return []*device.Device{device.K40c(), device.V100()}, nil
	default:
		return nil, fmt.Errorf("unknown device %q", name)
	}
}

// pickOpts resolves the -opt flag: the legacy aliases, "matrix" for the
// full configuration set, or any asm.ParseOptLevel configuration string
// (O0, O2+u4, O2-cp+spill, ...).
func pickOpts(name string) ([]asm.OptLevel, error) {
	switch name {
	case "both":
		return []asm.OptLevel{asm.O1, asm.O2}, nil
	case "matrix":
		return asm.MatrixConfigs(), nil
	}
	opt, err := asm.ParseOptLevel(name)
	if err != nil {
		return nil, fmt.Errorf("unknown pipeline %q (want a configuration like O0/O2+u4/O2+spill, \"both\", or \"matrix\"): %w", name, err)
	}
	return []asm.OptLevel{opt}, nil
}

// runOptGate runs the optimization-matrix sweep over the cross-
// validation workloads of each device and gates on ordering agreement:
// the static per-configuration AVF ordering must not contradict the
// injection campaign's on any matrix (no discordant pair at the
// documented tie width, faultinj.OptOrderingEps).
func runOptGate(devs []*device.Device, code string, faults int, seed uint64, csv bool) int {
	var ms []*faultinj.OptMatrix
	bad := 0
	for _, dev := range devs {
		all := suite.ForDevice(dev)
		var entries []suite.Entry
		if code != "" {
			e, err := suite.Find(all, code)
			if err != nil {
				fail(err)
			}
			entries = []suite.Entry{e}
		} else {
			for _, name := range faultinj.CrossValKernels {
				if e, err := suite.Find(all, name); err == nil {
					entries = append(entries, e)
				}
			}
		}
		for _, e := range entries {
			m, err := faultinj.RunOptMatrix(faultinj.OptMatrixConfig{
				Faults: faults, Seed: seed,
			}, e.Name, e.Build, dev, nil)
			if err != nil {
				fail(err)
			}
			ms = append(ms, m)
			c, d := m.OrderingAgreement(faultinj.OptOrderingEps)
			fmt.Fprintf(os.Stderr, "done %s on %s: %d concordant, %d discordant\n",
				e.Name, dev.Name, c, d)
			if !m.OrderingAgrees() {
				fmt.Fprintf(os.Stderr, "opt-gate: %s on %s: static ordering contradicts injection (%d discordant pairs at eps %.2f)\n",
					m.Name, m.Device, d, faultinj.OptOrderingEps)
				bad++
			}
		}
	}
	fmt.Print(report.OptMatrixSweep(ms, csv))
	if bad > 0 {
		return 1
	}
	return 0
}

// runTwoLevelGate runs, per device and cross-validation workload, both
// the exhaustive NVBitFI campaign and the two-level estimate on a shared
// runner, and gates on the estimator's two promises: the SDC AVF within
// faultinj.TwoLevelTolerance of the exhaustive result, at five or more
// times fewer simulations.
func runTwoLevelGate(devs []*device.Device, code string, faults int, seed uint64, csv bool) int {
	bad := 0
	ds := make(map[*device.Device]*core.DeviceStudy)
	for _, dev := range devs {
		all := suite.ForDevice(dev)
		var entries []suite.Entry
		if code != "" {
			e, err := suite.Find(all, code)
			if err != nil {
				fail(err)
			}
			entries = []suite.Entry{e}
		} else {
			for _, name := range faultinj.CrossValKernels {
				if e, err := suite.Find(all, name); err == nil {
					entries = append(entries, e)
				}
			}
		}
		study := &core.DeviceStudy{
			Dev:      dev,
			AVF:      map[faultinj.Tool]map[string]*faultinj.Result{faultinj.NVBitFI: {}},
			TwoLevel: map[string]*faultinj.TwoLevelResult{},
		}
		ds[dev] = study
		for _, e := range entries {
			runner, err := kernels.NewRunner(e.Name, e.Build, dev, faultinj.NVBitFI.OptLevel())
			if err != nil {
				fail(err)
			}
			exact, err := faultinj.RunWithRunner(faultinj.Config{
				Tool: faultinj.NVBitFI, TotalFaults: faults, Seed: seed,
			}, runner)
			if err != nil {
				fail(err)
			}
			tl, err := faultinj.TwoLevelEstimateWithRunner(faultinj.TwoLevelConfig{
				Tool: faultinj.NVBitFI, Seed: seed,
			}, runner)
			if err != nil {
				fail(err)
			}
			study.AVF[faultinj.NVBitFI][e.Name] = exact
			study.TwoLevel[e.Name] = tl
			fmt.Fprintf(os.Stderr, "done %s on %s: exact %.3f, two-level %.3f (%d vs %d trials)\n",
				e.Name, dev.Name, exact.SDCAVF.P, tl.SDCAVF, exact.Injected, tl.Trials)
			if !tl.Agrees(exact) {
				fmt.Fprintf(os.Stderr, "twolevel-gate: %s on %s outside ±%.2f (delta %+.3f)\n",
					e.Name, dev.Name, faultinj.TwoLevelTolerance, tl.Delta(exact))
				bad++
			}
			if tl.Speedup(exact) < 5 {
				fmt.Fprintf(os.Stderr, "twolevel-gate: %s on %s speedup %.1fx below 5x (%d vs %d trials)\n",
					e.Name, dev.Name, tl.Speedup(exact), tl.Trials, exact.Injected)
				bad++
			}
		}
	}
	for _, dev := range devs {
		fmt.Print(report.TwoLevelTable(ds[dev], csv))
		fmt.Println()
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
