// Command gpurel-inject runs architecture-level fault-injection
// campaigns in the style of SASSIFI and NVBitFI and reports the AVFs of
// Figure 4.
//
//	gpurel-inject -device kepler -tool sassifi            all codes
//	gpurel-inject -device volta -code FGEMM -faults 2000  one code
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gpurel/internal/core"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/pprofutil"
	"gpurel/internal/report"
	"gpurel/internal/suite"
)

func main() {
	devName := flag.String("device", "kepler", "device: kepler or volta")
	toolName := flag.String("tool", "nvbitfi", "injector: sassifi or nvbitfi")
	code := flag.String("code", "", "inject into a single workload (default: all)")
	faults := flag.Int("faults", 500, "NVBitFI total faults / SASSIFI faults per class (quarter of total)")
	workers := flag.Int("workers", 0, "campaign parallelism (0: one worker per CPU)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	csv := flag.Bool("csv", false, "emit CSV")
	pprofutil.AddFlags()
	flag.Parse()
	if err := pprofutil.Start(); err != nil {
		fail(err)
	}
	defer pprofutil.Stop()

	dev, err := pickDevice(*devName)
	if err != nil {
		fail(err)
	}
	tool := faultinj.NVBitFI
	if *toolName == "sassifi" {
		tool = faultinj.Sassifi
	}
	cfg := faultinj.Config{
		Tool:           tool,
		FaultsPerClass: *faults / 4,
		TotalFaults:    *faults,
		Workers:        *workers,
		Seed:           *seed,
	}

	entries := suite.ForDevice(dev)
	if *code != "" {
		e, err := suite.Find(entries, *code)
		if err != nil {
			fail(err)
		}
		entries = []suite.Entry{e}
	}
	ds := &core.DeviceStudy{
		Dev: dev,
		AVF: map[faultinj.Tool]map[string]*faultinj.Result{tool: {}},
	}
	start := time.Now()
	totalFaults := 0
	for _, e := range entries {
		codeStart := time.Now()
		// Build the runner here (rather than through faultinj.Run) so the
		// sub-launch replay statistics are visible after the campaign.
		runner, err := kernels.NewRunner(e.Name, e.Build, dev, cfg.Tool.OptLevel())
		if err != nil {
			fmt.Fprintf(os.Stderr, "skip %s: %v\n", e.Name, err)
			continue
		}
		res, err := faultinj.RunWithRunner(cfg, runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skip %s: %v\n", e.Name, err)
			continue
		}
		ds.AVF[tool][e.Name] = res
		totalFaults += res.Injected
		el := time.Since(codeStart)
		restores, rejoins := runner.ReplayStats()
		fmt.Fprintf(os.Stderr, "done %s: %d faults in %s (%.0f faults/s; sub-launch restores %d, rejoins %d)\n",
			e.Name, res.Injected, el.Round(time.Millisecond), float64(res.Injected)/el.Seconds(),
			restores, rejoins)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "campaign total: %d faults in %s (%.0f faults/s)\n",
		totalFaults, elapsed.Round(time.Millisecond), float64(totalFaults)/elapsed.Seconds())
	fmt.Print(report.Figure4(ds, *csv))

	// Per-class detail for single-code runs.
	if *code != "" {
		if res, ok := ds.AVF[tool][*code]; ok {
			classes := make([]isa.Class, 0, len(res.PerClass))
			for c := range res.PerClass {
				classes = append(classes, c)
			}
			sort.Slice(classes, func(i, j int) bool {
				return classes[i].String() < classes[j].String()
			})
			fmt.Println("\nper-class AVFs:")
			for _, c := range classes {
				ca := res.PerClass[c]
				fmt.Printf("  %-7s n=%-5d SDC %.3f DUE %.3f\n",
					c.String(), ca.Injected, ca.SDCAVF.P, ca.DUEAVF.P)
			}
		}
	}
}

func pickDevice(name string) (*device.Device, error) {
	switch name {
	case "kepler", "k40c":
		return device.K40c(), nil
	case "volta", "v100":
		return device.V100(), nil
	default:
		return nil, fmt.Errorf("unknown device %q", name)
	}
}

func fail(err error) {
	pprofutil.Stop() // flush any in-flight profiles before exiting
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
