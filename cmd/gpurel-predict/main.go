// Command gpurel-predict runs the complete single-device study —
// micro-benchmark beam, profiling, injection, workload beam — and then
// applies the Equation 1-4 prediction model, printing the Figure 6
// comparison and the §VII-B DUE analysis.
//
// A Kepler run needs the Volta NVBitFI AVFs for its library codes, so
// -device kepler implies the Volta injection campaigns too (§III-D).
package main

import (
	"flag"
	"fmt"
	"os"

	"gpurel/internal/core"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/report"
	"gpurel/internal/suite"
)

func main() {
	devName := flag.String("device", "kepler", "device: kepler or volta")
	trials := flag.Int("trials", 350, "beam trials per configuration")
	faults := flag.Int("faults", 500, "injection faults per code")
	seed := flag.Uint64("seed", 1, "study seed")
	csv := flag.Bool("csv", false, "emit CSV")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	opts := core.Options{
		MicroTrials:     *trials,
		CodeTrials:      *trials,
		SassifiPerClass: *faults / 4,
		NVBitFITotal:    *faults,
		Seed:            *seed,
	}
	if !*quiet {
		opts.Progress = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}

	dev, err := pickDevice(*devName)
	if err != nil {
		fail(err)
	}
	ds, err := core.RunDevice(dev, opts)
	if err != nil {
		fail(err)
	}
	var voltaAVF map[string]*faultinj.Result
	if dev.Arch == device.Kepler {
		// Library codes on Kepler take their AVF from Volta NVBitFI
		// campaigns over the proxy workloads (§III-D).
		voltaAVF = map[string]*faultinj.Result{}
		vdev := device.V100()
		for _, e := range suite.Volta() {
			if e.Name != "FGEMM" && e.Name != "FYOLOV3" && e.Name != "FGEMM-MMA" {
				continue
			}
			res, err := faultinj.Run(faultinj.Config{
				Tool: faultinj.NVBitFI, TotalFaults: *faults, Seed: *seed,
			}, e.Name, e.Build, vdev)
			if err != nil {
				fail(err)
			}
			voltaAVF[e.Name] = res
			opts.Progress("volta proxy AVF %s: SDC %.3f", e.Name, res.SDCAVF.P)
		}
	}
	if err := ds.Finalize(voltaAVF); err != nil {
		fail(err)
	}
	fmt.Print(report.Figure6(ds, *csv))
	fmt.Println()
	fmt.Print(report.HiddenDUE(ds, *csv))
	fmt.Println()
	fmt.Print(report.DUEGapTable(ds, *csv))
	fmt.Println()
	fmt.Print(report.DUETable(ds, *csv))
}

func pickDevice(name string) (*device.Device, error) {
	switch name {
	case "kepler", "k40c":
		return device.K40c(), nil
	case "volta", "v100":
		return device.V100(), nil
	default:
		return nil, fmt.Errorf("unknown device %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
