// Command gpurel-serve runs the campaign daemon: an HTTP/JSON service
// that executes sharded, adaptively-stopped fault-injection campaigns
// against the paper's workload suite (internal/serve, DESIGN.md §14).
//
//	gpurel-serve -addr 127.0.0.1:8397
//	curl -d '{"code":"FMXM","device":"volta","target_width":0.2,"seed":1}' \
//	     http://127.0.0.1:8397/campaigns
//	curl http://127.0.0.1:8397/campaigns/c000001/stream     # SSE progress
//	curl http://127.0.0.1:8397/campaigns/c000001/counts     # final tallies
//
// Long campaigns pause (POST /campaigns/{id}/pause), checkpoint to the
// spool directory, and resume — across daemon restarts — with final
// counts byte-identical to an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"gpurel/internal/kernels"
	"gpurel/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8397", "listen address")
	workers := flag.Int("workers", 0, "global concurrent-trial bound (0: one per CPU)")
	cacheBytes := flag.Int64("cache-bytes", serve.DefaultCacheBytes,
		fmt.Sprintf("runner-cache budget in bytes (default 4x the %d-byte per-runner image budget)",
			kernels.ImageBudgetBytes))
	spool := flag.String("spool", "", "campaign checkpoint directory (default: fresh temp dir)")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof (operator profiling surface)")
	quiet := flag.Bool("quiet", false, "suppress per-campaign log lines")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	srv, err := serve.New(serve.Options{
		SimWorkers:  *workers,
		CacheBytes:  *cacheBytes,
		SpoolDir:    *spool,
		EnablePprof: *pprofFlag,
		Logf:        logf,
	})
	if err != nil {
		fail(err)
	}

	// Bind before announcing, so wrappers (scripts/check.sh serve, the
	// loadgen's retry loop) can treat the announcement line as "ready".
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("gpurel-serve listening on http://%s (spool %s)\n", ln.Addr(), srv.SpoolDir())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpurel-serve:", err)
	os.Exit(1)
}
