// Command benchdiff turns `go test -bench` output into a committed JSON
// snapshot and gates later runs against it.
//
//	go test -run='^$' -bench=BenchmarkSimPerFault . | go run ./tools/benchdiff emit >BENCH_v0.json
//	go run ./tools/benchdiff compare -band 2.0 BENCH_v0.json bench-new.json
//
// emit parses benchmark result lines (ns/op plus any ReportMetric
// columns such as faults/s and ns/fault) from stdin and writes the
// snapshot JSON to stdout. compare reads two snapshots and fails when
// any benchmark present in the base regresses beyond the tolerance
// band: new ns/op > base ns/op * (1 + band).
//
// The band is deliberately wide by default. Committed snapshots are
// taken on one machine while CI re-times on whatever runner it gets, so
// a tight band would gate on hardware, not on code. The default 2.0
// (fail only past 3x the committed time) still catches the class of
// regression that motivated the gate — algorithmic slowdowns of the
// fault-replay path — while riding out runner-to-runner spread. Teams
// timing on fixed hardware can tighten it with -band.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements in a snapshot.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the committed benchmark baseline (BENCH_v0.json).
type Snapshot struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   123   4567 ns/op   89.0 extra/unit ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: map[string]Result{}}
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q on %s", fields[i], m[1])
			}
			if fields[i+1] == "ns/op" {
				res.NsPerOp = v
			} else {
				res.Metrics[fields[i+1]] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		// With -count=N the same benchmark reports N times; keep the
		// fastest. Minimum-of-N is the standard noise damper when the
		// machine is shared: contention only ever adds time.
		if prev, ok := snap.Benchmarks[m[1]]; ok && prev.NsPerOp <= res.NsPerOp {
			continue
		}
		snap.Benchmarks[m[1]] = res
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark result lines found")
	}
	return snap, nil
}

func load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	return &s, nil
}

func emit(args []string) int {
	note := ""
	for i := 0; i < len(args); i++ {
		if args[i] == "-note" && i+1 < len(args) {
			note = args[i+1]
			i++
		}
	}
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	snap.Note = note
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return 0
}

func compare(args []string) int {
	band := 2.0
	paths := []string{}
	for i := 0; i < len(args); i++ {
		if args[i] == "-band" && i+1 < len(args) {
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "benchdiff: bad -band %q\n", args[i+1])
				return 2
			}
			band = v
			i++
			continue
		}
		paths = append(paths, args[i])
	}
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff compare [-band f] base.json new.json")
		return 2
	}
	base, err := load(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cur, err := load(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "ratio")
	for _, name := range names {
		b := base.Benchmarks[name]
		n, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("%-40s %14.0f %14s %8s  MISSING\n", name, b.NsPerOp, "-", "-")
			failed = true
			continue
		}
		ratio := n.NsPerOp / b.NsPerOp
		verdict := "ok"
		if n.NsPerOp > b.NsPerOp*(1+band) {
			verdict = fmt.Sprintf("REGRESSION (band %.2f)", band)
			failed = true
		}
		fmt.Printf("%-40s %14.0f %14.0f %7.2fx  %s\n", name, b.NsPerOp, n.NsPerOp, ratio, verdict)
	}
	if failed {
		fmt.Println("benchdiff: FAIL")
		return 1
	}
	fmt.Println("benchdiff: ok")
	return 0
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff {emit [-note s] | compare [-band f] base.json new.json}")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "emit":
		os.Exit(emit(os.Args[2:]))
	case "compare":
		os.Exit(compare(os.Args[2:]))
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: unknown mode %q\n", os.Args[1])
		os.Exit(2)
	}
}
