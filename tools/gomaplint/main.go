// Command gomaplint runs the repository's determinism checks
// (internal/lintgo) over a module tree — nondeterministic map
// iteration feeding writers, plus wall-clock and ambient-rand use in
// the deterministic campaign packages — and exits nonzero on any
// finding. It exists so the full check tier and CI can gate on it:
//
//	go run ./tools/gomaplint .
package main

import (
	"flag"
	"fmt"
	"os"

	"gpurel/internal/lintgo"
)

func main() {
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	findings, err := lintgo.CheckTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gomaplint: %d determinism finding(s)\n", len(findings))
		os.Exit(1)
	}
}
