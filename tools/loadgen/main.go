// Command loadgen soaks a running gpurel-serve daemon with concurrent
// fault-injection campaigns and gates on the service's two promises:
//
//   - determinism: duplicate requests (same code/device/seed/width)
//     must land on byte-identical final /counts bodies no matter how
//     the daemon interleaved their trials;
//
//   - adaptive savings: every CrossValKernel must reach its target CI
//     width in fewer total trials than the fixed-count Wilson baseline
//     sized for the same guarantee.
//
//     go run ./tools/loadgen -addr 127.0.0.1:8397 -campaigns 200 -out serve-soak.txt
//
// The report (savings table per kernel, create/completion latency
// percentiles, throughput, a /metrics scrape) goes to -out; exit status
// is nonzero if any campaign fails, any determinism group diverges, or
// any kernel fails to beat its baseline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/patterns"
	"gpurel/internal/serve"
	"gpurel/internal/suite"
)

// campaignRun is one submitted campaign's observed lifecycle.
type campaignRun struct {
	kernel     string
	group      int           // determinism group: same group => identical request
	req        serve.Request // the exact request this run submits
	id         string
	createLat  time.Duration
	totalLat   time.Duration // create -> terminal state
	status     serve.Status
	countsBody []byte
	err        error
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8397", "gpurel-serve address")
	campaigns := flag.Int("campaigns", 200, "total campaigns to push (all in flight at once)")
	dup := flag.Int("dup", 4, "identical campaigns per determinism group")
	width := flag.Float64("width", 0.15, "target Wilson CI width for every campaign")
	seed := flag.Uint64("seed", 1, "base seed; each determinism group gets base+group")
	out := flag.String("out", "serve-soak.txt", "report path (\"-\" for stdout)")
	wait := flag.Duration("wait", 30*time.Second, "how long to retry until the daemon is healthy")
	timeout := flag.Duration("timeout", 15*time.Minute, "overall soak deadline")
	flag.Parse()

	base := "http://" + *addr
	if err := waitHealthy(base, *wait); err != nil {
		fatal(err)
	}

	templates := kernelTemplates(*width)
	if len(templates) == 0 {
		fatal(fmt.Errorf("no runnable CrossValKernels found"))
	}

	// Build the campaign list: round-robin over kernels, grouped into
	// determinism groups of -dup identical requests. Group g of kernel
	// k uses seed base+g, so groups are disjoint sampling universes
	// while members of one group must agree bit-for-bit.
	runs := make([]*campaignRun, 0, *campaigns)
	for i := 0; len(runs) < *campaigns; i++ {
		tpl := templates[i%len(templates)]
		group := i / len(templates)
		req := tpl.req
		req.Seed = *seed + uint64(group)
		for d := 0; d < *dup && len(runs) < *campaigns; d++ {
			runs = append(runs, &campaignRun{kernel: req.Code, group: group, req: req})
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	deadline := start.Add(*timeout)
	var wg sync.WaitGroup
	for _, run := range runs {
		wg.Add(1)
		go func(run *campaignRun) {
			defer wg.Done()
			run.err = drive(client, base, run.req, run, deadline)
		}(run)
	}
	wg.Wait()
	wall := time.Since(start)

	metricsBody, _ := fetch(client, base+"/metrics")

	report, failures := render(runs, wall, metricsBody)
	if *out == "-" {
		fmt.Print(report)
	} else if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fatal(err)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d failure(s); see report\n", failures)
		if *out != "-" {
			fmt.Fprint(os.Stderr, report)
		}
		os.Exit(1)
	}
	fmt.Printf("loadgen: %d campaigns ok in %s (report: %s)\n", len(runs), wall.Round(time.Millisecond), *out)
}

// template pairs a request prototype with nothing else; the device is
// already resolved to whichever suite carries the kernel.
type template struct{ req serve.Request }

// kernelTemplates resolves each CrossValKernel to a device whose suite
// carries it (Volta preferred, Kepler fallback — NW and friends are
// Kepler-suite-only).
func kernelTemplates(width float64) []template {
	volta := suite.ForDevice(device.V100())
	kepler := suite.ForDevice(device.K40c())
	var out []template
	for _, name := range faultinj.CrossValKernels {
		// Batch 8 keeps round-boundary overshoot (at most batch-1
		// trials past the stopping point per class) small relative to
		// the per-class baseline, so the savings table reflects the
		// stopping rule rather than scheduling quantization.
		req := serve.Request{Code: name, TargetWidth: width, Workers: 4, Batch: 8}
		if _, err := suite.Find(volta, name); err == nil {
			req.Device = "volta"
		} else if _, err := suite.Find(kepler, name); err == nil {
			req.Device = "kepler"
		} else {
			continue
		}
		out = append(out, template{req: req})
	}
	return out
}

// drive runs one campaign end to end: create, poll to a terminal
// state, fetch the canonical counts body.
func drive(client *http.Client, base string, req serve.Request, run *campaignRun, deadline time.Time) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	t0 := time.Now()
	resp, err := client.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	run.createLat = time.Since(t0)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("create: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var st serve.Status
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("create response: %v", err)
	}
	run.id = st.ID

	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("campaign %s: soak deadline exceeded in state %q", run.id, st.State)
		}
		data, err := fetch(client, base+"/campaigns/"+run.id)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
		if st.Done() {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	run.totalLat = time.Since(t0)
	run.status = st
	if st.State != serve.StateDone {
		return fmt.Errorf("campaign %s failed: %s", run.id, st.Error)
	}
	counts, err := fetch(client, base+"/campaigns/"+run.id+"/counts")
	if err != nil {
		return err
	}
	run.countsBody = counts
	return nil
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return data, nil
}

func waitHealthy(base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %s (last error: %v)", base, wait, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// render builds the soak report and returns it plus the failure count.
func render(runs []*campaignRun, wall time.Duration, metrics []byte) (string, int) {
	var b strings.Builder
	failures := 0
	fmt.Fprintf(&b, "gpurel-serve soak: %d campaigns, wall %s, %.1f campaigns/sec\n\n",
		len(runs), wall.Round(time.Millisecond), float64(len(runs))/wall.Seconds())

	// Campaign failures.
	for _, r := range runs {
		if r.err != nil {
			failures++
			fmt.Fprintf(&b, "FAIL %-10s group %d: %v\n", r.kernel, r.group, r.err)
		}
	}
	if failures > 0 {
		fmt.Fprintf(&b, "\n")
	}

	// Determinism groups: every member must produce identical counts.
	type key struct {
		kernel string
		group  int
	}
	groups := map[key][][]byte{}
	for _, r := range runs {
		if r.err == nil {
			k := key{r.kernel, r.group}
			groups[k] = append(groups[k], r.countsBody)
		}
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kernel != keys[j].kernel {
			return keys[i].kernel < keys[j].kernel
		}
		return keys[i].group < keys[j].group
	})
	checked, diverged := 0, 0
	for _, k := range keys {
		bodies := groups[k]
		if len(bodies) < 2 {
			continue
		}
		checked++
		for _, body := range bodies[1:] {
			if !bytes.Equal(body, bodies[0]) {
				diverged++
				failures++
				fmt.Fprintf(&b, "DETERMINISM FAIL %s group %d: counts bodies differ\n  %s\n  %s\n",
					k.kernel, k.group, bodies[0], body)
				break
			}
		}
	}
	fmt.Fprintf(&b, "determinism: %d duplicate groups compared, %d diverged\n\n", checked, diverged)

	// Adaptive-savings table per CrossValKernel: total trials spent vs
	// the fixed-count Wilson baseline for the same width guarantee.
	// The hard per-kernel gate is that adaptive stopping actually
	// engaged — every class reached the target width without hitting
	// the trial cap. The savings gate is aggregate: a kernel whose
	// SDC rate sits at exactly 1/2 legitimately needs the worst-case
	// trial count, so per-kernel savings are reported, not enforced.
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s %8s\n",
		"kernel", "campaigns", "trials", "baseline", "saved", "saved%")
	perKernel := map[string]*struct{ n, trials, baseline int }{}
	var kernels []string
	for _, r := range runs {
		if r.err != nil {
			continue
		}
		agg := perKernel[r.kernel]
		if agg == nil {
			agg = &struct{ n, trials, baseline int }{}
			perKernel[r.kernel] = agg
			kernels = append(kernels, r.kernel)
		}
		agg.n++
		agg.trials += r.status.Trials
		agg.baseline += r.status.BaselineTrials
		for _, cs := range r.status.Classes {
			if cs.CapHit {
				failures++
				fmt.Fprintf(&b, "ADAPTIVE FAIL %s %s: class %s hit the trial cap before the target width\n",
					r.kernel, r.id, cs.Class)
			} else if cs.SDCWidth > r.req.TargetWidth || cs.DUEWidth > r.req.TargetWidth {
				failures++
				fmt.Fprintf(&b, "ADAPTIVE FAIL %s %s: class %s stopped at widths %.3f/%.3f above %g\n",
					r.kernel, r.id, cs.Class, cs.SDCWidth, cs.DUEWidth, r.req.TargetWidth)
			}
		}
	}
	sort.Strings(kernels)
	total, totalBase := 0, 0
	for _, k := range kernels {
		agg := perKernel[k]
		saved := agg.baseline - agg.trials
		pct := 100 * float64(saved) / float64(agg.baseline)
		fmt.Fprintf(&b, "%-12s %9d %9d %9d %9d %7.1f%%\n",
			k, agg.n, agg.trials, agg.baseline, saved, pct)
		total += agg.trials
		totalBase += agg.baseline
	}
	if totalBase > 0 {
		fmt.Fprintf(&b, "%-12s %9s %9d %9d %9d %7.1f%%\n",
			"TOTAL", "", total, totalBase, totalBase-total,
			100*float64(totalBase-total)/float64(totalBase))
		if total >= totalBase {
			failures++
			fmt.Fprintf(&b, "ADAPTIVE FAIL: aggregate %d trials did not beat the fixed baseline %d\n",
				total, totalBase)
		}
	}

	// SDC pattern rollup: aggregate the per-class pattern ledgers from
	// one representative counts body per determinism group (members are
	// byte-identical, so any member stands for the group). A kernel with
	// SDCs but a fully Unclassified ledger would mean the taxonomy is
	// not riding through the service — worth seeing in the soak report
	// even though it is not a gate.
	patTotals := map[string]*patterns.Ledger{}
	seenGroup := map[key]bool{}
	for _, r := range runs {
		if r.err != nil {
			continue
		}
		k := key{r.kernel, r.group}
		if seenGroup[k] {
			continue
		}
		seenGroup[k] = true
		var counts serve.Counts
		if json.Unmarshal(r.countsBody, &counts) != nil {
			continue
		}
		led := patTotals[r.kernel]
		if led == nil {
			led = &patterns.Ledger{}
			patTotals[r.kernel] = led
		}
		for _, cc := range counts.Classes {
			led.Merge(cc.Patterns)
		}
	}
	patKernels := make([]string, 0, len(patTotals))
	for k := range patTotals {
		patKernels = append(patKernels, k)
	}
	sort.Strings(patKernels)
	fmt.Fprintf(&b, "\n%-12s %6s %7s %8s %8s %6s %10s %9s %10s %7s\n",
		"patterns", "sdc", "single", "same-row", "same-col", "block", "scattered", "critical", "tolerable", "uncls")
	for _, k := range patKernels {
		l := patTotals[k]
		fmt.Fprintf(&b, "%-12s %6d %7d %8d %8d %6d %10d %9d %10d %7d\n",
			k, l.SDCs(), l.Single, l.SameRow, l.SameCol, l.Block, l.Scattered,
			l.Critical, l.Tolerable, l.Unclassified)
	}

	// Latency percentiles.
	fmt.Fprintf(&b, "\n%-12s %10s %10s %10s\n", "latency", "p50", "p90", "p99")
	for _, row := range []struct {
		name string
		get  func(*campaignRun) time.Duration
	}{
		{"create", func(r *campaignRun) time.Duration { return r.createLat }},
		{"complete", func(r *campaignRun) time.Duration { return r.totalLat }},
	} {
		var lats []time.Duration
		for _, r := range runs {
			if r.err == nil {
				lats = append(lats, row.get(r))
			}
		}
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", row.name,
			pct(lats, 50), pct(lats, 90), pct(lats, 99))
	}

	if len(metrics) > 0 {
		fmt.Fprintf(&b, "\n-- /metrics --\n%s", metrics)
	}
	return b.String(), failures
}

func pct(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx].Round(100 * time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
