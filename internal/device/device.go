// Package device describes the simulated GPUs: the Kepler-class Tesla K40c
// and the Volta-class Tesla V100 studied in the paper. A Device carries
//
//   - the architectural parameters the SIMT simulator needs (SM count,
//     schedulers, functional-unit mix, latency and issue-throughput tables,
//     occupancy limits), and
//   - the silicon sensitivity model (per-resource neutron cross-sections),
//     which is the hidden ground truth of the simulated world. Only the
//     beam campaign reads it; the fault injectors and the FIT predictor
//     observe outcomes, exactly like the paper's instruments.
package device

import (
	"fmt"

	"gpurel/internal/isa"
)

// Arch identifies a GPU micro-architecture generation.
type Arch uint8

// Architectures studied by the paper.
const (
	Kepler Arch = iota
	Volta
)

// String returns the architecture name.
func (a Arch) String() string {
	if a == Kepler {
		return "Kepler"
	}
	return "Volta"
}

// Unit identifies a functional-unit pool inside an SM.
type Unit uint8

// Functional-unit pools.
const (
	UnitFP32 Unit = iota
	UnitFP64
	UnitFP16
	UnitINT
	UnitSFU
	UnitLDST
	UnitTensor
	UnitCount
)

// String returns a short pool name.
func (u Unit) String() string {
	return [...]string{"FP32", "FP64", "FP16", "INT", "SFU", "LDST", "TENSOR"}[u]
}

// Device is a simulated GPU model.
type Device struct {
	Name    string
	Arch    Arch
	Process string // fabrication node, e.g. "28nm planar", "16nm FinFET"

	NumSMs            int
	WarpSize          int
	SchedulersPerSM   int // each picks one warp per cycle
	IssuePerScheduler int // instructions dual-issued from the selected warp

	MaxWarpsPerSM    int
	MaxBlocksPerSM   int
	RegistersPerSM   int // 32-bit registers
	SharedMemPerSM   int // bytes
	MaxRegsPerThread int

	// UnitsPerSM is the number of lanes in each functional-unit pool.
	UnitsPerSM [UnitCount]int

	// SharedINTFP marks architectures (Kepler) where integer operations
	// execute on the FP32 cores instead of a dedicated INT pool.
	SharedINTFP bool

	HasFP16   bool
	HasTensor bool

	// GlobalMemBytes is the simulated global-memory capacity.
	GlobalMemBytes int

	Silicon *SiliconModel
}

// CapacityScale divides the per-SM residency capacities (warps,
// registers, shared memory, blocks) of both device models. Workload
// inputs are scaled down ~1/8 from the paper's so that 50,000-run
// campaigns fit a CPU budget (DESIGN.md §5); scaling the residency
// capacities by the same factor keeps the occupancy and IPC regimes of
// Table I intact (a register-hungry GEMM still pins occupancy near 1/8,
// a small stencil still saturates its SM). Functional-unit mixes, SM
// counts, warp size, scheduler structure, and latencies stay authentic.
const CapacityScale = 8

// K40c returns the Kepler-generation Tesla K40c model: 15 SMs with 192
// FP32 cores each (2,880 CUDA cores), integer math sharing the FP32
// datapath, SECDED ECC on register file / shared memory / caches, 28 nm
// planar CMOS. Per-SM residency capacities are divided by CapacityScale.
func K40c() *Device {
	d := &Device{
		Name:              "Tesla K40c",
		Arch:              Kepler,
		Process:           "28nm planar CMOS",
		NumSMs:            15,
		WarpSize:          32,
		SchedulersPerSM:   4,
		IssuePerScheduler: 2,
		MaxWarpsPerSM:     64 / CapacityScale,
		MaxBlocksPerSM:    16 / CapacityScale * 2, // 4: small blocks still co-resident
		RegistersPerSM:    65536 / CapacityScale,
		SharedMemPerSM:    48 * 1024 / CapacityScale,
		MaxRegsPerThread:  255,
		SharedINTFP:       true,
		HasFP16:           false,
		HasTensor:         false,
		GlobalMemBytes:    1 << 30,
	}
	d.UnitsPerSM = [UnitCount]int{
		UnitFP32:   192,
		UnitFP64:   64,
		UnitFP16:   0,
		UnitINT:    160, // shares the FP32 datapath at reduced efficiency
		UnitSFU:    32,
		UnitLDST:   32,
		UnitTensor: 0,
	}
	d.Silicon = keplerSilicon()
	return d
}

// V100 returns the Volta-generation Tesla V100 model: 80 SMs, each with 64
// FP32 + 64 INT32 + 32 FP64 cores and 8 tensor cores, dedicated FP16
// throughput, 16 nm FinFET.
func V100() *Device {
	d := &Device{
		Name:              "Tesla V100",
		Arch:              Volta,
		Process:           "16nm FinFET",
		NumSMs:            80,
		WarpSize:          32,
		SchedulersPerSM:   4,
		IssuePerScheduler: 1, // Volta schedulers single-issue per cycle
		MaxWarpsPerSM:     64 / CapacityScale,
		MaxBlocksPerSM:    32 / CapacityScale,
		RegistersPerSM:    65536 / CapacityScale,
		SharedMemPerSM:    96 * 1024 / CapacityScale,
		MaxRegsPerThread:  255,
		SharedINTFP:       false,
		HasFP16:           true,
		HasTensor:         true,
		GlobalMemBytes:    1 << 30,
	}
	d.UnitsPerSM = [UnitCount]int{
		UnitFP32:   64,
		UnitFP64:   32,
		UnitFP16:   64, // FP16 executes on the FP32 cores at 2x rate
		UnitINT:    64,
		UnitSFU:    16,
		UnitLDST:   32,
		UnitTensor: 8,
	}
	d.Silicon = voltaSilicon()
	return d
}

// TitanV returns the Titan V, the paper's second Volta board (§III-A):
// the same GV100 silicon as the Tesla V100 with 80 SMs enabled and a
// smaller frame buffer. It shares the V100's silicon sensitivity model;
// the paper treats the two interchangeably for the Volta results.
func TitanV() *Device {
	d := V100()
	d.Name = "Titan V"
	d.GlobalMemBytes = 3 << 28 // 12 GB class board, scaled like the rest
	return d
}

// UnitFor maps an opcode to the functional-unit pool that executes it.
func (d *Device) UnitFor(op isa.Op) Unit {
	switch op {
	case isa.OpFADD, isa.OpFMUL, isa.OpFFMA, isa.OpFSETP,
		isa.OpF2F, isa.OpF2I, isa.OpI2F:
		return UnitFP32
	case isa.OpDADD, isa.OpDMUL, isa.OpDFMA, isa.OpDSETP:
		return UnitFP64
	case isa.OpHADD, isa.OpHMUL, isa.OpHFMA, isa.OpHSETP:
		if d.HasFP16 {
			return UnitFP16
		}
		return UnitFP32
	case isa.OpIADD, isa.OpIMUL, isa.OpIMAD, isa.OpIMNMX,
		isa.OpISETP, isa.OpLOP, isa.OpSHF:
		if d.SharedINTFP {
			return UnitFP32
		}
		return UnitINT
	case isa.OpMUFU:
		return UnitSFU
	case isa.OpHMMA, isa.OpFMMA:
		return UnitTensor
	case isa.OpLDG, isa.OpSTG, isa.OpLDS, isa.OpSTS, isa.OpRED:
		return UnitLDST
	default:
		// Moves, control flow, S2R, barriers: issue through the integer /
		// dispatch path.
		if d.SharedINTFP {
			return UnitFP32
		}
		return UnitINT
	}
}

// Latency returns the result latency of the opcode in cycles: the number
// of cycles before a dependent instruction may issue.
func (d *Device) Latency(op isa.Op) int {
	kepler := d.Arch == Kepler
	switch op {
	case isa.OpLDG, isa.OpSTG, isa.OpRED:
		// Effective cache-resident latency: the scaled workloads fit the
		// L1/L2 the way the paper's full-size inputs mostly do, so the
		// model charges a cached latency rather than a DRAM round trip.
		if kepler {
			return 80
		}
		return 60
	case isa.OpLDS, isa.OpSTS:
		if kepler {
			return 26
		}
		return 20
	case isa.OpDADD, isa.OpDMUL, isa.OpDFMA, isa.OpDSETP:
		if kepler {
			return 10
		}
		return 8
	case isa.OpMUFU:
		return 16
	case isa.OpHMMA, isa.OpFMMA:
		return 16
	case isa.OpBAR:
		return 4
	case isa.OpIMUL, isa.OpIMAD:
		if kepler {
			return 9
		}
		return 5
	default:
		if kepler {
			return 9
		}
		return 4
	}
}

// IssueSlots returns how many warp-instructions of the given unit an SM can
// issue per cycle (the quantized throughput of the pool).
func (d *Device) IssueSlots(u Unit) int {
	n := d.UnitsPerSM[u] / d.WarpSize
	if u == UnitTensor && d.UnitsPerSM[u] > 0 {
		// The 8 tensor cores of a Volta SM jointly retire one warp-wide
		// MMA per cycle.
		return 1
	}
	if n < 1 && d.UnitsPerSM[u] > 0 {
		n = 1
	}
	return n
}

// Occupancy describes the residency of one kernel launch on this device.
type Occupancy struct {
	BlocksPerSM      int
	WarpsPerBlock    int
	ActiveWarpsPerSM int
	TheoreticalOcc   float64 // active warps / max warps
	LimitedBy        string
}

// OccupancyFor computes block residency per SM for a launch of the given
// block size (threads), register and shared-memory footprint, mirroring
// the CUDA occupancy calculator.
func (d *Device) OccupancyFor(threadsPerBlock, regsPerThread, sharedPerBlock int) (Occupancy, error) {
	if threadsPerBlock <= 0 {
		return Occupancy{}, fmt.Errorf("device: non-positive block size %d", threadsPerBlock)
	}
	if regsPerThread > d.MaxRegsPerThread {
		return Occupancy{}, fmt.Errorf("device: %d registers/thread exceeds limit %d",
			regsPerThread, d.MaxRegsPerThread)
	}
	if sharedPerBlock > d.SharedMemPerSM {
		return Occupancy{}, fmt.Errorf("device: %dB shared/block exceeds SM capacity %dB",
			sharedPerBlock, d.SharedMemPerSM)
	}
	warpsPerBlock := (threadsPerBlock + d.WarpSize - 1) / d.WarpSize

	limit := d.MaxBlocksPerSM
	limitedBy := "blocks"
	if byWarps := d.MaxWarpsPerSM / warpsPerBlock; byWarps < limit {
		limit, limitedBy = byWarps, "warps"
	}
	if regsPerThread > 0 {
		regsPerBlock := regsPerThread * warpsPerBlock * d.WarpSize
		if byRegs := d.RegistersPerSM / regsPerBlock; byRegs < limit {
			limit, limitedBy = byRegs, "registers"
		}
	}
	if sharedPerBlock > 0 {
		if byShared := d.SharedMemPerSM / sharedPerBlock; byShared < limit {
			limit, limitedBy = byShared, "shared memory"
		}
	}
	if limit < 1 {
		return Occupancy{}, fmt.Errorf("device: block (%d threads, %d regs, %dB shared) cannot fit on an SM",
			threadsPerBlock, regsPerThread, sharedPerBlock)
	}
	active := limit * warpsPerBlock
	return Occupancy{
		BlocksPerSM:      limit,
		WarpsPerBlock:    warpsPerBlock,
		ActiveWarpsPerSM: active,
		TheoreticalOcc:   float64(active) / float64(d.MaxWarpsPerSM),
		LimitedBy:        limitedBy,
	}, nil
}
