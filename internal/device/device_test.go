package device

import (
	"testing"

	"gpurel/internal/isa"
)

func TestK40cParameters(t *testing.T) {
	d := K40c()
	if d.NumSMs != 15 {
		t.Errorf("K40c SMs = %d, want 15", d.NumSMs)
	}
	if got := d.NumSMs * d.UnitsPerSM[UnitFP32]; got != 2880 {
		t.Errorf("K40c CUDA cores = %d, want 2880", got)
	}
	if !d.SharedINTFP {
		t.Error("Kepler integer math must share the FP32 datapath")
	}
	if d.HasTensor || d.HasFP16 {
		t.Error("Kepler has no tensor cores or FP16 units")
	}
}

func TestV100Parameters(t *testing.T) {
	d := V100()
	if d.NumSMs != 80 {
		t.Errorf("V100 SMs = %d, want 80", d.NumSMs)
	}
	if d.UnitsPerSM[UnitFP32] != 64 || d.UnitsPerSM[UnitINT] != 64 ||
		d.UnitsPerSM[UnitFP64] != 32 || d.UnitsPerSM[UnitTensor] != 8 {
		t.Errorf("V100 unit mix wrong: %v (paper: 64 FP32, 64 INT32, 32 FP64, 8 tensor per SM)", d.UnitsPerSM)
	}
	if !d.HasTensor || !d.HasFP16 {
		t.Error("Volta must expose FP16 and tensor cores")
	}
}

func TestUnitForMapping(t *testing.T) {
	k, v := K40c(), V100()
	if k.UnitFor(isa.OpIADD) != UnitFP32 {
		t.Error("Kepler IADD should execute on FP32 cores")
	}
	if v.UnitFor(isa.OpIADD) != UnitINT {
		t.Error("Volta IADD should execute on dedicated INT cores")
	}
	if v.UnitFor(isa.OpHFMA) != UnitFP16 {
		t.Error("Volta HFMA should use the FP16 path")
	}
	if v.UnitFor(isa.OpHMMA) != UnitTensor {
		t.Error("HMMA should use the tensor cores")
	}
	if k.UnitFor(isa.OpLDG) != UnitLDST || v.UnitFor(isa.OpMUFU) != UnitSFU {
		t.Error("LDST/SFU mapping wrong")
	}
	if v.UnitFor(isa.OpDFMA) != UnitFP64 {
		t.Error("DFMA should use the FP64 pool")
	}
}

func TestLatencyOrdering(t *testing.T) {
	for _, d := range []*Device{K40c(), V100()} {
		if d.Latency(isa.OpLDG) <= d.Latency(isa.OpLDS) {
			t.Errorf("%s: global latency must exceed shared", d.Name)
		}
		if d.Latency(isa.OpLDS) <= d.Latency(isa.OpFADD) {
			t.Errorf("%s: shared latency must exceed ALU", d.Name)
		}
		if d.Latency(isa.OpDFMA) < d.Latency(isa.OpFFMA) {
			t.Errorf("%s: FP64 latency must not be below FP32", d.Name)
		}
	}
	if V100().Latency(isa.OpFADD) >= K40c().Latency(isa.OpFADD) {
		t.Error("Volta ALU latency should be below Kepler's")
	}
}

func TestIssueSlots(t *testing.T) {
	k, v := K40c(), V100()
	if got := k.IssueSlots(UnitFP32); got != 6 {
		t.Errorf("Kepler FP32 slots = %d, want 6 (192/32)", got)
	}
	if got := v.IssueSlots(UnitFP32); got != 2 {
		t.Errorf("Volta FP32 slots = %d, want 2 (64/32)", got)
	}
	if got := v.IssueSlots(UnitFP64); got != 1 {
		t.Errorf("Volta FP64 slots = %d, want 1", got)
	}
	if got := v.IssueSlots(UnitTensor); got != 1 {
		t.Errorf("tensor slots = %d, want 1", got)
	}
	if got := k.IssueSlots(UnitTensor); got != 0 {
		t.Errorf("Kepler tensor slots = %d, want 0", got)
	}
}

func TestOccupancyFullBlocks(t *testing.T) {
	d := K40c()
	occ, err := d.OccupancyFor(256, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 256 threads * 32 regs = 8192 regs/block = the whole (scaled) file;
	// one 8-warp block fills the SM: full occupancy.
	if occ.BlocksPerSM != 1 || occ.ActiveWarpsPerSM != d.MaxWarpsPerSM {
		t.Fatalf("occupancy = %+v, want 1 block / %d warps", occ, d.MaxWarpsPerSM)
	}
	if occ.TheoreticalOcc != 1.0 {
		t.Fatalf("theoretical occupancy = %g, want 1", occ.TheoreticalOcc)
	}
}

func TestOccupancyRegisterLimited(t *testing.T) {
	d := V100()
	occ, err := d.OccupancyFor(32, 255, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 32 * 255 = 8160 regs/block -> 1 block/SM, 1 warp of 8 -> 12.5%,
	// the regime of the register-hungry GEMM kernels in Table I.
	if occ.BlocksPerSM != 1 || occ.LimitedBy != "registers" {
		t.Fatalf("occupancy = %+v, want register-limited single block", occ)
	}
	if occ.TheoreticalOcc != 0.125 {
		t.Fatalf("occ = %g, want 0.125", occ.TheoreticalOcc)
	}
}

func TestOccupancySharedLimited(t *testing.T) {
	d := K40c()
	occ, err := d.OccupancyFor(64, 16, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 3 || occ.LimitedBy != "shared memory" {
		t.Fatalf("occupancy = %+v, want 3 blocks limited by shared memory", occ)
	}
}

func TestOccupancyErrors(t *testing.T) {
	d := K40c()
	if _, err := d.OccupancyFor(0, 10, 0); err == nil {
		t.Error("zero block size should fail")
	}
	if _, err := d.OccupancyFor(128, 300, 0); err == nil {
		t.Error("register overflow should fail")
	}
	if _, err := d.OccupancyFor(128, 10, 1<<20); err == nil {
		t.Error("shared overflow should fail")
	}
}

func TestSiliconOrderings(t *testing.T) {
	k := keplerSilicon()
	// Kepler: INT ~4x FP32 (shared datapath inefficiency).
	if r := k.Sigma(isa.OpIADD) / k.Sigma(isa.OpFADD); r < 3.5 || r > 4.5 {
		t.Errorf("Kepler IADD/FADD sigma ratio = %g, want ~4", r)
	}
	// IMUL ~30% above IADD, IMAD above IMUL.
	if r := k.Sigma(isa.OpIMUL) / k.Sigma(isa.OpIADD); r < 1.2 || r > 1.4 {
		t.Errorf("IMUL/IADD = %g, want ~1.3", r)
	}
	if k.Sigma(isa.OpIMAD) <= k.Sigma(isa.OpIMUL) {
		t.Error("IMAD must exceed IMUL")
	}

	v := voltaSilicon()
	// Precision ordering within each operator.
	for _, tri := range [][3]isa.Op{
		{isa.OpHADD, isa.OpFADD, isa.OpDADD},
		{isa.OpHMUL, isa.OpFMUL, isa.OpDMUL},
		{isa.OpHFMA, isa.OpFFMA, isa.OpDFMA},
	} {
		if !(v.Sigma(tri[0]) < v.Sigma(tri[1]) && v.Sigma(tri[1]) < v.Sigma(tri[2])) {
			t.Errorf("Volta precision ordering violated for %v", tri)
		}
	}
	// FMA > MUL > ADD within a precision.
	if !(v.Sigma(isa.OpFFMA) > v.Sigma(isa.OpFMUL) && v.Sigma(isa.OpFMUL) > v.Sigma(isa.OpFADD)) {
		t.Error("Volta operator-complexity ordering violated")
	}
	// Tensor core: 16 MACs of array held busy per retired lane-op, at
	// ~9x (HMMA) / ~12x (FMMA) a scalar FMA's per-MAC sensitivity.
	if r := v.Sigma(isa.OpHMMA) / v.Sigma(isa.OpFFMA); r < 16*8 || r > 16*10 {
		t.Errorf("HMMA/FFMA = %g, want ~144", r)
	}
	if r := v.Sigma(isa.OpFMMA) / v.Sigma(isa.OpHMMA); r < 1.2 || r > 1.5 {
		t.Errorf("FMMA/HMMA = %g, want ~1.33", r)
	}
	// Process node: Kepler RF ~10x Volta RF per bit.
	if r := k.RFBitSigma / v.RFBitSigma; r < 8 || r > 12 {
		t.Errorf("Kepler/Volta RF bit sigma = %g, want ~10", r)
	}
}

func TestSiliconDefaults(t *testing.T) {
	k := keplerSilicon()
	if k.Sigma(isa.OpMOV) != k.DefaultOpSigma {
		t.Error("unlisted opcode should fall back to default sigma")
	}
	if k.MBUProb != 0.02 {
		t.Errorf("MBU probability = %g, want 0.02 (paper §V-A)", k.MBUProb)
	}
	for h := HiddenResource(0); h < HiddenCount; h++ {
		s := k.Hidden[h]
		if s.PSDC+s.PDUE > 1 {
			t.Errorf("%s outcome probabilities exceed 1", h)
		}
		if s.PDUE < s.PSDC {
			t.Errorf("%s: hidden-resource strikes must be DUE-dominated", h)
		}
	}
}
