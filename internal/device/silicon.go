package device

import "gpurel/internal/isa"

// The silicon sensitivity model is the ground truth of the simulated
// world: it plays the role of the physics that a neutron beam probes.
// Cross-sections are expressed in arbitrary area-time units (a.u.),
// matching the paper's presentation, which normalizes all FIT rates to
// hide business-sensitive absolute values:
//
//   - OpSigma: strike cross-section per dynamic lane-operation. The
//     probability that the functional-unit lane executing one dynamic
//     thread-level operation is struck during that operation is
//     flux * OpSigma[op].
//   - *BitSigma: strike cross-section per stored bit per cycle, for the
//     register file, shared memory, and global (DRAM) memory.
//   - Hidden: resources that architecture-level fault injection cannot
//     reach (warp scheduler state, instruction fetch/decode pipeline and
//     i-cache, the memory-management/LDST queue path, and the host
//     interface). Strikes there mostly produce DUEs; they are visible to
//     the beam campaign only. This asymmetry is what generates the
//     paper's headline result that fault simulation underestimates the
//     DUE rate by orders of magnitude (§VII-B).
//
// The relative values below encode the ordering the paper measures in
// Figure 3 (per-unit sensitivities grow with operator complexity and
// precision; Kepler integer ops on the shared FP32 datapath are ~4x the
// FP32 ones; tensor-core MMA is roughly an order of magnitude above FMA;
// the 28nm Kepler register file is ~10x more sensitive per bit than the
// 16nm FinFET Volta one). They are inputs to the reproduction, standing
// in for the silicon the paper irradiated.

// OpStrikeEffect describes how a functional-unit strike manifests.
type OpStrikeEffect uint8

// Strike manifestation channels for functional-unit strikes.
const (
	EffectValue    OpStrikeEffect = iota // corrupts the instruction's destination value
	EffectAddress                        // corrupts the effective address (memory ops)
	EffectPipeline                       // corrupts pipeline control state: direct DUE risk
)

// HiddenResource is a fault site invisible to SASS-level injectors.
type HiddenResource uint8

// Hidden resources.
const (
	HiddenScheduler HiddenResource = iota // warp scheduler / dispatch state
	HiddenInstrPipe                       // fetch, decode, i-cache, instruction buffers
	HiddenMemPath                         // MMU, LDST queues, interconnect
	HiddenHostIface                       // host synchronization, copy engines
	HiddenCount
)

// String names the hidden resource.
func (h HiddenResource) String() string {
	return [...]string{"scheduler", "instr-pipe", "mem-path", "host-iface"}[h]
}

// HiddenSensitivity is the sensitivity and outcome profile of a hidden
// resource. Strikes scale with active-warp-cycles (per-warp state) plus a
// per-SM-cycle floor (per-SM structures are exposed whenever the SM is
// powered). Because these faults corrupt management state rather than
// data, their outcome distribution is fixed: mostly DUE, occasionally an
// SDC (e.g. a skipped instruction), otherwise masked.
type HiddenSensitivity struct {
	SigmaPerWarpCycle float64
	SigmaPerSMCycle   float64
	PSDC              float64
	PDUE              float64
}

// SiliconModel is the per-device sensitivity ground truth.
type SiliconModel struct {
	// OpSigma maps opcodes to per-lane-operation strike cross-sections.
	OpSigma map[isa.Op]float64
	// DefaultOpSigma covers opcodes without an explicit entry (the
	// "OTHERS" class: moves, compares, control flow).
	DefaultOpSigma float64

	// Per-bit-per-cycle storage cross-sections.
	RFBitSigma     float64
	SharedBitSigma float64
	GlobalBitSigma float64

	// MBUProb is the fraction of SRAM storage strikes (register file,
	// shared memory) that upset multiple bits in one ECC word (the paper
	// anticipates ~2% for the RF, §V-A). SECDED corrects single-bit
	// upsets and converts MBUs into DUEs.
	MBUProb float64
	// DRAMDetectedProb is the fraction of DRAM strikes that end in a DUE
	// under ECC. It folds together multi-cell upsets along rows and
	// bursts (far more common in DRAM than SRAM MBUs) and the
	// ECC-machinery interrupts the paper lists among the DUE causes
	// (§VII-B: "interrupts triggered by ECC"). It is why codes with
	// heavy global-memory traffic (NW, GEMM) see their DUE rate *rise*
	// when ECC is enabled (§VI).
	DRAMDetectedProb float64

	// Value/Address/Pipeline split for functional-unit strikes.
	PEffectAddress  float64 // for memory ops: strike lands in address path
	PEffectPipeline float64 // any op: strike latches into pipeline control
	// PLDSTDataECC is the fraction of LDST *data-path* strikes that the
	// end-to-end ECC corrects when ECC is enabled: the memory data path
	// is SECDED-covered, the address path is not, which is why the LDST
	// micro-benchmark is DUE-dominated (~7x, §V-B).
	PLDSTDataECC float64

	Hidden [HiddenCount]HiddenSensitivity
}

// Sigma returns the strike cross-section for one dynamic lane-operation.
func (m *SiliconModel) Sigma(op isa.Op) float64 {
	if s, ok := m.OpSigma[op]; ok {
		return s
	}
	return m.DefaultOpSigma
}

// keplerSilicon builds the K40c ground truth. Integer operations execute
// on the FP32 datapath with poor efficiency, giving them ~4x the FP32
// cross-section (§V-B); IMUL is ~30% above IADD and IMAD above both,
// following operator complexity. The 28nm planar register file is an
// order of magnitude more sensitive per bit than Volta's.
func keplerSilicon() *SiliconModel {
	const fp32 = 0.005 // per-lane-op exposure; a busy FADD micro-benchmark lands near 5 a.u. (Fig. 3)
	return &SiliconModel{
		OpSigma: map[isa.Op]float64{
			isa.OpFADD: fp32,
			isa.OpFMUL: 1.05 * fp32,
			isa.OpFFMA: 1.25 * fp32,
			isa.OpDADD: 1.9 * fp32, // FP64 pipe: wider datapath
			isa.OpDMUL: 2.3 * fp32,
			isa.OpDFMA: 2.8 * fp32,
			isa.OpIADD: 4.0 * fp32,
			isa.OpIMUL: 5.2 * fp32, // ~30% above IADD
			isa.OpIMAD: 5.8 * fp32, // multiply and accumulate
			isa.OpLOP:  3.6 * fp32,
			isa.OpSHF:  3.8 * fp32,
			isa.OpMUFU: 2.0 * fp32,
			isa.OpLDG:  2.6 * fp32, // LDST unit: address + data path
			isa.OpSTG:  2.6 * fp32,
			isa.OpLDS:  1.4 * fp32,
			isa.OpSTS:  1.4 * fp32,
			isa.OpRED:  2.8 * fp32,
		},
		DefaultOpSigma:   0.35 * fp32,
		RFBitSigma:       1.9e-5, // per bit-cycle; 28nm planar SRAM (~160 a.u./MB, Fig. 3)
		SharedBitSigma:   1.9e-5,
		GlobalBitSigma:   4.0e-6, // DRAM cells are ~5x less sensitive per bit
		MBUProb:          0.02,
		DRAMDetectedProb: 0.25,
		PEffectAddress:   0.70, // LDST strikes mostly corrupt the address operand path
		PEffectPipeline:  0.04,
		PLDSTDataECC:     0.85,
		Hidden: [HiddenCount]HiddenSensitivity{
			HiddenScheduler: {SigmaPerWarpCycle: 2.5e-3, SigmaPerSMCycle: 6.0e-3, PSDC: 0.06, PDUE: 0.80},
			HiddenInstrPipe: {SigmaPerWarpCycle: 2.0e-3, SigmaPerSMCycle: 5.0e-3, PSDC: 0.10, PDUE: 0.75},
			HiddenMemPath:   {SigmaPerWarpCycle: 1.2e-3, SigmaPerSMCycle: 4.0e-3, PSDC: 0.04, PDUE: 0.85},
			HiddenHostIface: {SigmaPerWarpCycle: 0, SigmaPerSMCycle: 2.5e-3, PSDC: 0.01, PDUE: 0.90},
		},
	}
}

// voltaSilicon builds the V100 ground truth. Sensitivity grows with
// operand precision (higher precision -> larger functional unit, §VI);
// FMA > MUL > ADD within a precision; the tensor core is roughly an order
// of magnitude above scalar FMA (HMMA ~9x FFMA, FMMA ~12x, §V-B); the
// 16nm FinFET storage is ~10x less sensitive per bit than Kepler's 28nm.
func voltaSilicon() *SiliconModel {
	const base = 0.004 // one HADD lane-op; the FinFET units are smaller targets
	return &SiliconModel{
		OpSigma: map[isa.Op]float64{
			isa.OpHADD: base,
			isa.OpHMUL: 1.25 * base,
			isa.OpHFMA: 1.55 * base,
			isa.OpFADD: 1.8 * base,
			isa.OpFMUL: 2.1 * base,
			isa.OpFFMA: 2.6 * base,
			isa.OpDADD: 2.9 * base,
			isa.OpDMUL: 3.4 * base,
			isa.OpDFMA: 4.2 * base,
			isa.OpIADD: 2.0 * base, // dedicated INT32 cores
			isa.OpIMUL: 2.5 * base,
			isa.OpIMAD: 2.8 * base,
			isa.OpLOP:  1.8 * base,
			isa.OpSHF:  1.9 * base,
			isa.OpMUFU: 2.2 * base,
			// A warp-wide MMA retires one lane-op per thread while holding
			// the whole 16x16x16 tensor-core array busy for its full
			// latency: the area-time exposure per retired lane-op is the
			// array's MAC count (16) times the per-MAC sensitivity (~9x a
			// scalar FMA for HMMA, ~12x for FMMA with its cast datapath),
			// which makes the fully-busy MMA micro-benchmark land ~9-12x
			// above the FFMA one, as in Figure 3.
			isa.OpHMMA: 16 * 9.0 * 2.6 * base,
			isa.OpFMMA: 16 * 12.0 * 2.6 * base,
			isa.OpLDG:  2.4 * base,
			isa.OpSTG:  2.4 * base,
			isa.OpLDS:  1.3 * base,
			isa.OpSTS:  1.3 * base,
			isa.OpRED:  2.6 * base,
		},
		DefaultOpSigma:   0.3 * base,
		RFBitSigma:       1.9e-6, // 16nm FinFET: ~10x below Kepler's 28nm
		SharedBitSigma:   1.9e-6,
		GlobalBitSigma:   0.8e-6,
		MBUProb:          0.02,
		DRAMDetectedProb: 0.25,
		PEffectAddress:   0.70,
		PEffectPipeline:  0.04,
		PLDSTDataECC:     0.85,
		Hidden: [HiddenCount]HiddenSensitivity{
			HiddenScheduler: {SigmaPerWarpCycle: 1.5e-3, SigmaPerSMCycle: 3.5e-3, PSDC: 0.06, PDUE: 0.80},
			HiddenInstrPipe: {SigmaPerWarpCycle: 1.2e-3, SigmaPerSMCycle: 3.0e-3, PSDC: 0.10, PDUE: 0.75},
			HiddenMemPath:   {SigmaPerWarpCycle: 0.7e-3, SigmaPerSMCycle: 2.4e-3, PSDC: 0.04, PDUE: 0.85},
			HiddenHostIface: {SigmaPerWarpCycle: 0, SigmaPerSMCycle: 1.5e-3, PSDC: 0.01, PDUE: 0.90},
		},
	}
}
