// Package ecc implements the SECDED (single-error-correction,
// double-error-detection) code that protects the register file, shared
// memory, and caches of the simulated GPUs, mirroring the SECDED ECC the
// K40c and V100 expose to the user (paper §III-A).
//
// Words are 32 bits wide and protected by a Hamming(39,32) code: six
// Hamming check bits plus one overall parity bit. A single flipped bit
// (data or check) is corrected transparently; two flipped bits raise a
// detected-uncorrectable error, which the GPU turns into a DUE.
package ecc

import "math/bits"

// CheckBits is the number of redundancy bits per 32-bit word.
const CheckBits = 7

// Codeword is a 32-bit data word plus its 7 SECDED check bits.
type Codeword struct {
	Data  uint32
	Check uint8 // bits 0..5: Hamming syndrome bits, bit 6: overall parity
}

// hammingMasks[i] selects the data bits covered by Hamming check bit i.
// Data bit d (0-based) occupies codeword position pos(d): the d-th
// position that is not a power of two, in the classic Hamming layout.
var hammingMasks [6]uint32

// positions[d] is the 1-based Hamming position of data bit d.
var positions [32]uint32

func init() {
	pos := uint32(1)
	for d := 0; d < 32; d++ {
		pos++
		for pos&(pos-1) == 0 { // skip power-of-two positions (check bits)
			pos++
		}
		positions[d] = pos
		for c := 0; c < 6; c++ {
			if pos&(1<<c) != 0 {
				hammingMasks[c] |= 1 << d
			}
		}
	}
}

// Encode computes the SECDED codeword for a 32-bit data word.
func Encode(data uint32) Codeword {
	var check uint8
	for c := 0; c < 6; c++ {
		if bits.OnesCount32(data&hammingMasks[c])&1 == 1 {
			check |= 1 << c
		}
	}
	// Overall parity covers data plus the six Hamming bits.
	p := bits.OnesCount32(data) + bits.OnesCount8(check&0x3f)
	if p&1 == 1 {
		check |= 1 << 6
	}
	return Codeword{Data: data, Check: check}
}

// Result classifies a decode.
type Result uint8

// Decode outcomes.
const (
	OK        Result = iota // no error
	Corrected               // single-bit error corrected
	Detected                // double-bit error detected, uncorrectable (DUE)
)

// String names the decode outcome.
func (r Result) String() string {
	return [...]string{"ok", "corrected", "detected-uncorrectable"}[r]
}

// Decode checks and, when possible, corrects a codeword. It returns the
// (possibly corrected) data word and the classification. Triple and
// heavier faults are beyond the code's guarantees, as in real SECDED.
func Decode(w Codeword) (uint32, Result) {
	ref := Encode(w.Data)
	syndrome := (w.Check ^ ref.Check) & 0x3f
	// Encode leaves the whole codeword (data + all 7 check bits) with even
	// parity, so an odd population count means an odd number of flips.
	parityErr := (bits.OnesCount32(w.Data)+bits.OnesCount8(w.Check))&1 == 1

	switch {
	case syndrome == 0 && !parityErr:
		return w.Data, OK
	case syndrome == 0 && parityErr:
		// The overall parity bit itself flipped.
		return w.Data, Corrected
	case parityErr:
		// Odd number of flips: a single-bit error at the position the
		// syndrome points to. Power-of-two positions are check bits.
		pos := uint32(syndrome)
		if pos&(pos-1) == 0 {
			return w.Data, Corrected // a Hamming check bit flipped
		}
		for d := 0; d < 32; d++ {
			if positions[d] == pos {
				return w.Data ^ (1 << d), Corrected
			}
		}
		// Syndrome points outside the codeword: alias of a multi-bit flip.
		return w.Data, Detected
	default:
		// Non-zero syndrome with even parity: double-bit error.
		return w.Data, Detected
	}
}

// FlipDataBit returns the codeword with data bit b flipped, modeling a
// particle strike on a storage cell.
func (w Codeword) FlipDataBit(b int) Codeword {
	w.Data ^= 1 << (b & 31)
	return w
}

// FlipCheckBit returns the codeword with check bit b flipped.
func (w Codeword) FlipCheckBit(b int) Codeword {
	w.Check ^= 1 << (b % CheckBits)
	return w
}
