package ecc

import (
	"testing"
	"testing/quick"
)

func TestCleanDecode(t *testing.T) {
	for _, d := range []uint32{0, 1, 0xffffffff, 0xdeadbeef, 0x80000000} {
		w := Encode(d)
		got, res := Decode(w)
		if got != d || res != OK {
			t.Errorf("Decode(Encode(0x%08x)) = 0x%08x, %v", d, got, res)
		}
	}
}

func TestSingleBitCorrection(t *testing.T) {
	// Property: every single data-bit flip is corrected to the original.
	f := func(d uint32, b uint8) bool {
		w := Encode(d).FlipDataBit(int(b % 32))
		got, res := Decode(w)
		return got == d && res == Corrected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckBitCorrection(t *testing.T) {
	f := func(d uint32, b uint8) bool {
		w := Encode(d).FlipCheckBit(int(b) % CheckBits)
		got, res := Decode(w)
		return got == d && res == Corrected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleBitDetection(t *testing.T) {
	// Property: any two distinct data-bit flips are detected, never
	// silently miscorrected to a wrong "corrected" answer.
	f := func(d uint32, b1, b2 uint8) bool {
		i, j := int(b1%32), int(b2%32)
		if i == j {
			return true
		}
		w := Encode(d).FlipDataBit(i).FlipDataBit(j)
		_, res := Decode(w)
		return res == Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDataPlusCheckDouble(t *testing.T) {
	// One data bit plus one Hamming check bit must also be detected.
	for d := 0; d < 32; d++ {
		for c := 0; c < 6; c++ {
			w := Encode(0x12345678).FlipDataBit(d).FlipCheckBit(c)
			_, res := Decode(w)
			if res != Detected {
				t.Fatalf("data bit %d + check bit %d: got %v, want detected", d, c, res)
			}
		}
	}
}

func TestExhaustiveSingleBitForOneWord(t *testing.T) {
	const d = 0xa5a5c3c3
	for b := 0; b < 32; b++ {
		got, res := Decode(Encode(d).FlipDataBit(b))
		if got != d || res != Corrected {
			t.Fatalf("bit %d: got 0x%08x/%v", b, got, res)
		}
	}
}

func TestHammingMaskCoverage(t *testing.T) {
	// Every data bit must be covered by at least two Hamming checks
	// (positions that are not powers of two have >= 2 set bits).
	for d := 0; d < 32; d++ {
		covered := 0
		for c := 0; c < 6; c++ {
			if hammingMasks[c]&(1<<d) != 0 {
				covered++
			}
		}
		if covered < 2 {
			t.Fatalf("data bit %d covered by %d checks", d, covered)
		}
	}
}

func TestResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" {
		t.Error("bad result names")
	}
}
