package stats

import (
	"fmt"
	"math"
)

// RateEstimate is a counting-rate estimate with an exact Poisson 95%
// confidence interval: events per unit of exposure (fluence for beam
// experiments, device-hours for field rates).
type RateEstimate struct {
	Events   int
	Exposure float64 // e.g. particles/cm^2, or hours
	Rate     float64 // Events / Exposure
	CI       PoissonCI
}

// NewRateEstimate computes the rate and its exact Poisson 95% CI.
// It panics if exposure is not positive.
func NewRateEstimate(events int, exposure float64) RateEstimate {
	if exposure <= 0 {
		panic(fmt.Sprintf("stats: exposure must be positive, got %g", exposure))
	}
	ci := PoissonCI95(events)
	return RateEstimate{
		Events:   events,
		Exposure: exposure,
		Rate:     float64(events) / exposure,
		CI:       PoissonCI{Lower: ci.Lower / exposure, Upper: ci.Upper / exposure},
	}
}

// RelativeHalfWidth returns the half-width of the CI relative to the rate,
// a convenient "is this statistically solid" check. Returns +Inf when the
// rate is zero.
func (e RateEstimate) RelativeHalfWidth() float64 {
	if e.Rate == 0 {
		return math.Inf(1)
	}
	return (e.CI.Upper - e.CI.Lower) / 2 / e.Rate
}

// Scale converts the estimate to a different exposure unit by multiplying
// rate and bounds by f (e.g. cross-section in cm^2 -> FIT via flux*1e9h).
func (e RateEstimate) Scale(f float64) RateEstimate {
	return RateEstimate{
		Events:   e.Events,
		Exposure: e.Exposure / f,
		Rate:     e.Rate * f,
		CI:       PoissonCI{Lower: e.CI.Lower * f, Upper: e.CI.Upper * f},
	}
}

// Proportion is a binomial proportion estimate with a Wilson 95% interval,
// used for AVFs (observed errors / injected faults). The paper sizes its
// injection campaigns so that 95% confidence intervals are below 5% (§III-D).
type Proportion struct {
	Successes int
	Trials    int
	P         float64
	Lower     float64
	Upper     float64
}

// NewProportion computes a binomial proportion with a Wilson score 95%
// interval. It panics if trials <= 0 or successes is out of range.
func NewProportion(successes, trials int) Proportion {
	if trials <= 0 {
		panic(fmt.Sprintf("stats: trials must be positive, got %d", trials))
	}
	if successes < 0 || successes > trials {
		panic(fmt.Sprintf("stats: successes %d out of range [0,%d]", successes, trials))
	}
	iv := Wilson(successes, trials)
	return Proportion{
		Successes: successes,
		Trials:    trials,
		P:         float64(successes) / float64(trials),
		Lower:     iv.Lower,
		Upper:     iv.Upper,
	}
}

// HalfWidth returns the half-width of the Wilson interval.
func (p Proportion) HalfWidth() float64 { return (p.Upper - p.Lower) / 2 }

// SignedRatio implements the paper's Figure 6 plotting convention: given a
// measured value and a predicted value, it returns measured/predicted when
// the measurement is at least the prediction, and the negative inverse
// (-predicted/measured) otherwise. A value of +1 or -1 means exact
// agreement; +12 means the beam measured 12x the prediction; -7 means the
// prediction was 7x the measurement.
func SignedRatio(measured, predicted float64) float64 {
	switch {
	case measured <= 0 && predicted <= 0:
		return 1
	case predicted <= 0:
		return math.Inf(1)
	case measured <= 0:
		return math.Inf(-1)
	case measured >= predicted:
		return measured / predicted
	default:
		return -predicted / measured
	}
}

// GeomMeanAbsSigned returns the geometric mean of |signed ratios| with the
// sign of the (log-domain) average, matching how the paper summarizes
// "average difference" across codes in §VII-A.
func GeomMeanAbsSigned(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratios {
		if r == 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			continue
		}
		l := math.Log(math.Abs(r))
		if r < 0 {
			l = -l
		}
		sum += l
	}
	m := sum / float64(len(ratios))
	g := math.Exp(math.Abs(m))
	if m < 0 {
		return -g
	}
	return g
}

// Normalize divides every value by the reference and returns the result in
// "arbitrary units", the presentation used by Figures 3 and 5. It panics if
// ref is zero.
func Normalize(values []float64, ref float64) []float64 {
	if ref == 0 {
		panic("stats: normalization reference is zero")
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v / ref
	}
	return out
}
