package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(1, 2)
	b := NewRNG(1, 2)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7, 9)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d identical draws of 1000", same)
	}
}

func TestPoissonMeanVariance(t *testing.T) {
	r := NewRNG(3, 4)
	for _, mean := range []float64{0.5, 3, 12, 80, 400} {
		n := 20000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(r.Poisson(mean))
			sum += x
			sumsq += x * x
		}
		m := sum / float64(n)
		v := sumsq/float64(n) - m*m
		if math.Abs(m-mean) > 4*math.Sqrt(mean/float64(n))+0.05 {
			t.Errorf("Poisson(%g): sample mean %g too far from mean", mean, m)
		}
		if math.Abs(v-mean) > 0.15*mean+0.2 {
			t.Errorf("Poisson(%g): sample variance %g too far from mean", mean, v)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := NewRNG(1, 1)
	for i := 0; i < 10; i++ {
		if r.Poisson(0) != 0 {
			t.Fatal("Poisson(0) must be 0")
		}
		if r.Poisson(-1) != 0 {
			t.Fatal("Poisson(negative) must be 0")
		}
	}
}

func TestChooseRespectsWeights(t *testing.T) {
	r := NewRNG(5, 6)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 40000
	for i := 0; i < n; i++ {
		counts[r.Choose(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio off: got %g, want ~3", ratio)
	}
}

func TestChoosePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	NewRNG(1, 1).Choose([]float64{0, 0})
}

func TestPoissonCI95KnownValues(t *testing.T) {
	// Reference values from standard exact Poisson CI tables (Garwood).
	cases := []struct {
		k      int
		lo, hi float64
	}{
		{0, 0, 3.6889},
		{1, 0.0253, 5.5716},
		{5, 1.6235, 11.6683},
		{10, 4.7954, 18.3904},
		{100, 81.3639, 121.627},
	}
	for _, c := range cases {
		ci := PoissonCI95(c.k)
		if math.Abs(ci.Lower-c.lo) > 0.01*math.Max(1, c.lo) {
			t.Errorf("k=%d lower: got %.4f want %.4f", c.k, ci.Lower, c.lo)
		}
		if math.Abs(ci.Upper-c.hi) > 0.01*c.hi {
			t.Errorf("k=%d upper: got %.4f want %.4f", c.k, ci.Upper, c.hi)
		}
	}
}

func TestPoissonCICoversCount(t *testing.T) {
	// Property: for any count, lower <= count <= upper, and intervals widen
	// monotonically with the count.
	f := func(k uint8) bool {
		n := int(k)
		ci := PoissonCI95(n)
		return ci.Lower <= float64(n) && float64(n) <= ci.Upper && ci.Lower >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonCIMonotone(t *testing.T) {
	prev := PoissonCI95(0)
	for k := 1; k < 300; k++ {
		ci := PoissonCI95(k)
		if ci.Lower < prev.Lower || ci.Upper < prev.Upper {
			t.Fatalf("CI not monotone at k=%d: %+v then %+v", k, prev, ci)
		}
		prev = ci
	}
}

func TestRegGammaPBoundaries(t *testing.T) {
	if got := RegGammaP(3, 0); got != 0 {
		t.Fatalf("P(3,0) = %g, want 0", got)
	}
	if got := RegGammaP(1, 1); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("P(1,1) = %g, want 1-e^-1", got)
	}
	// P(a, x) -> 1 for large x.
	if got := RegGammaP(5, 1000); got < 1-1e-10 {
		t.Fatalf("P(5,1000) = %g, want ~1", got)
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.1, 0.3, 0.5} {
		a := NormalQuantile(p)
		b := NormalQuantile(1 - p)
		if math.Abs(a+b) > 1e-8 {
			t.Errorf("quantile not symmetric at p=%g: %g vs %g", p, a, b)
		}
	}
	if math.Abs(NormalQuantile(0.975)-1.959964) > 1e-5 {
		t.Errorf("q(0.975) = %g", NormalQuantile(0.975))
	}
}

func TestRateEstimate(t *testing.T) {
	e := NewRateEstimate(50, 1e10)
	if e.Rate != 5e-9 {
		t.Fatalf("rate = %g", e.Rate)
	}
	if e.CI.Lower >= e.Rate || e.CI.Upper <= e.Rate {
		t.Fatalf("CI %+v does not bracket rate %g", e.CI, e.Rate)
	}
	s := e.Scale(1e9)
	if math.Abs(s.Rate-5) > 1e-12 {
		t.Fatalf("scaled rate = %g, want 5", s.Rate)
	}
}

func TestRateEstimatePanicsOnZeroExposure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRateEstimate(1, 0)
}

func TestProportionWilson(t *testing.T) {
	p := NewProportion(500, 1000)
	if math.Abs(p.P-0.5) > 1e-12 {
		t.Fatalf("p = %g", p.P)
	}
	if p.HalfWidth() > 0.035 || p.HalfWidth() < 0.025 {
		t.Fatalf("half-width = %g, want ~0.031", p.HalfWidth())
	}
	// Paper's criterion: campaigns sized so 95% CI < 5%.
	big := NewProportion(2000, 10000)
	if big.HalfWidth() > 0.05 {
		t.Fatalf("10k-trial campaign CI half-width %g exceeds 5%%", big.HalfWidth())
	}
}

func TestProportionBounds(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int(n)%5000 + 1
		succ := int(s) % (trials + 1)
		p := NewProportion(succ, trials)
		return p.Lower >= 0 && p.Upper <= 1 && p.Lower <= p.P && p.P <= p.Upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedRatioConvention(t *testing.T) {
	cases := []struct {
		meas, pred, want float64
	}{
		{12, 1, 12}, // beam 12x higher -> +12
		{1, 7, -7},  // prediction 7x higher -> -7
		{5, 5, 1},   // exact agreement
		{0, 0, 1},   // degenerate
	}
	for _, c := range cases {
		if got := SignedRatio(c.meas, c.pred); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SignedRatio(%g,%g) = %g, want %g", c.meas, c.pred, got, c.want)
		}
	}
	if !math.IsInf(SignedRatio(1, 0), 1) {
		t.Error("zero prediction should give +Inf")
	}
}

func TestSignedRatioNeverInUnitInterval(t *testing.T) {
	f := func(a, b uint16) bool {
		m := float64(a)/100 + 0.01
		p := float64(b)/100 + 0.01
		r := SignedRatio(m, p)
		return math.Abs(r) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeomMeanAbsSigned(t *testing.T) {
	// Symmetric over/under-estimates cancel.
	g := GeomMeanAbsSigned([]float64{4, -4})
	if math.Abs(g-1) > 1e-9 {
		t.Fatalf("got %g, want 1", g)
	}
	g = GeomMeanAbsSigned([]float64{2, 8})
	if math.Abs(g-4) > 1e-9 {
		t.Fatalf("got %g, want 4", g)
	}
	g = GeomMeanAbsSigned([]float64{-2, -8})
	if math.Abs(g+4) > 1e-9 {
		t.Fatalf("got %g, want -4", g)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 2)
	want := []float64{1, 2, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("normalize[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(11, 13)
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if m := sum / float64(n); math.Abs(m-0.5) > 0.02 {
		t.Fatalf("Exponential(2) mean %g, want 0.5", m)
	}
}

func TestRelativeHalfWidth(t *testing.T) {
	e := NewRateEstimate(100, 1000)
	w := e.RelativeHalfWidth()
	// Poisson with 100 events: ~±20% relative half-width.
	if w < 0.15 || w > 0.25 {
		t.Fatalf("relative half-width %g, want ~0.2", w)
	}
	zero := NewRateEstimate(0, 1000)
	if !math.IsInf(zero.RelativeHalfWidth(), 1) {
		t.Fatal("zero-event estimate has undefined relative width")
	}
}

func TestGeomMeanSkipsDegenerate(t *testing.T) {
	// Infinities and zeros are excluded from the log-domain mean but the
	// divisor still counts them (conservative shrink toward 1).
	g := GeomMeanAbsSigned([]float64{4, math.Inf(1), 0})
	if math.IsInf(g, 0) || math.IsNaN(g) {
		t.Fatalf("degenerate entries must not poison the mean: %g", g)
	}
	if GeomMeanAbsSigned(nil) != 0 {
		t.Fatal("empty input yields 0")
	}
}

func TestPoissonCIAlphaWidens(t *testing.T) {
	narrow := PoissonCIAlpha(50, 0.32) // ~68%
	wide := PoissonCIAlpha(50, 0.01)   // 99%
	if wide.Upper-wide.Lower <= narrow.Upper-narrow.Lower {
		t.Fatal("lower alpha must widen the interval")
	}
}
