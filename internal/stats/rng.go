// Package stats provides the statistical substrate shared by every
// experimental methodology in this repository: deterministic random number
// generation, Poisson counting statistics with exact confidence intervals,
// histograms, and normalization helpers.
//
// All stochastic components in the simulator, the fault injectors, and the
// beam campaigns draw exclusively from *stats.RNG so that every experiment
// is reproducible from a seed.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random source (PCG) used by every
// stochastic component in the repository. It wraps math/rand/v2 with the
// distributions the reliability campaigns need.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator seeded with the two given words.
func NewRNG(seed1, seed2 uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed1, seed2))}
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent state and the label, so campaigns
// can fan out work without correlating streams.
func (r *RNG) Split(label uint64) *RNG {
	s1 := r.src.Uint64() ^ (label * 0x9e3779b97f4a7c15)
	s2 := r.src.Uint64() ^ (label*0xbf58476d1ce4e5b9 + 1)
	return NewRNG(s1, s2)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.src.Uint32() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// Poisson samples a Poisson-distributed count with the given mean.
// For small means it uses Knuth's product method; for large means it uses
// the PTRS transformed-rejection method of Hörmann (1993), which is exact
// and O(1).
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		return r.poissonKnuth(mean)
	default:
		return r.poissonPTRS(mean)
	}
}

func (r *RNG) poissonKnuth(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's transformed rejection with squeeze.
func (r *RNG) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lhs := math.Log(v * invAlpha / (a/(us*us) + b))
		rhs := -mean + k*math.Log(mean) - logGamma(k+1)
		if lhs <= rhs {
			return int(k)
		}
	}
}

// Exponential samples an exponential variate with the given rate (events
// per unit). It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential requires rate > 0")
	}
	return r.src.ExpFloat64() / rate
}

// Choose returns an index in [0, len(weights)) sampled proportionally to
// the weights. Zero-weight entries are never chosen. It panics if the
// weights sum to a non-positive value.
func (r *RNG) Choose(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: Choose requires positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("stats: unreachable")
}

// Shuffle permutes the integers [0, n) and returns them.
func (r *RNG) Shuffle(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.src.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
