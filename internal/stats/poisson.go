package stats

import (
	"fmt"
	"math"
)

// PoissonCI is a two-sided confidence interval for a Poisson rate
// parameter, in the same units as the observed count.
type PoissonCI struct {
	Lower float64
	Upper float64
}

// PoissonCI95 returns the exact (Garwood) two-sided 95% confidence interval
// for the mean of a Poisson distribution given an observed count. The bounds
// are the classic chi-square quantile expressions,
//
//	lower = chi2(0.025, 2k)/2,  upper = chi2(0.975, 2k+2)/2,
//
// computed via the inverse regularized incomplete gamma function. For k = 0
// the lower bound is 0.
//
// The paper reports all beam-measured FIT rates with 95% confidence
// intervals assuming a Poisson distribution (§VI); this is that estimator.
func PoissonCI95(count int) PoissonCI {
	return PoissonCIAlpha(count, 0.05)
}

// PoissonCIAlpha returns the exact two-sided (1-alpha) confidence interval
// for a Poisson mean given an observed count.
func PoissonCIAlpha(count int, alpha float64) PoissonCI {
	if count < 0 {
		panic(fmt.Sprintf("stats: negative Poisson count %d", count))
	}
	k := float64(count)
	var lo float64
	if count > 0 {
		lo = gammaInvP(k, alpha/2)
	}
	hi := gammaInvP(k+1, 1-alpha/2)
	return PoissonCI{Lower: lo, Upper: hi}
}

// gammaInvP inverts the regularized lower incomplete gamma function
// P(a, x) = p for x, i.e. returns the p-quantile of a Gamma(a, 1)
// distribution. Uses a Wilson–Hilferty starting guess refined by
// bisection-safeguarded Newton iterations.
func gammaInvP(a, p float64) float64 {
	if a <= 0 {
		panic("stats: gammaInvP requires a > 0")
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Wilson–Hilferty approximation for the initial guess.
	g := normalQuantile(p)
	t := 1 - 1/(9*a) + g/(3*math.Sqrt(a))
	x := a * t * t * t
	if x <= 0 {
		x = 1e-8
	}
	lo, hi := 0.0, math.Max(2*x, 10*a+20)
	for regGammaP(a, hi) < p {
		lo = hi
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		f := regGammaP(a, x) - p
		if math.Abs(f) < 1e-12 {
			break
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step using the gamma density.
		d := math.Exp((a-1)*math.Log(x) - x - logGamma(a))
		var nx float64
		if d > 0 {
			nx = x - f/d
		}
		if d <= 0 || nx <= lo || nx >= hi {
			nx = (lo + hi) / 2
		}
		if math.Abs(nx-x) < 1e-14*math.Max(1, x) {
			x = nx
			break
		}
		x = nx
	}
	return x
}

// regGammaP computes the regularized lower incomplete gamma function
// P(a, x) via the series expansion for x < a+1 and the continued fraction
// for the complement otherwise (Numerical Recipes style).
func regGammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		panic("stats: regGammaP domain error")
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-logGamma(a))
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-logGamma(a)) * h
}

// normalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (relative error
// below 1.15e-9 over the full domain), sufficient as a Newton seed and for
// normal-approximation intervals.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalQuantile exposes the standard normal quantile function.
func NormalQuantile(p float64) float64 { return normalQuantile(p) }

// RegGammaP exposes the regularized lower incomplete gamma function.
func RegGammaP(a, x float64) float64 { return regGammaP(a, x) }
