package stats

import "math"

// wilsonZ is the 97.5% normal quantile: the z of every 95% Wilson score
// interval in the repository.
const wilsonZ = 1.959963984540054

// Interval is a binomial confidence interval on [0, 1].
type Interval struct {
	Lower float64
	Upper float64
}

// Width returns the full interval width, Upper - Lower. The adaptive
// campaign engine (internal/serve) stops an instruction class once this
// falls below the request's target; the rule is well-behaved because
// the width never grows as trials accumulate at a stable observed
// proportion (TestWilsonWidthMonotonicity).
func (i Interval) Width() float64 { return i.Upper - i.Lower }

// Wilson returns the Wilson score 95% interval for a binomial
// proportion of successes out of trials.
//
// Unlike NewProportion it tolerates trials == 0, returning the vacuous
// [0, 1] interval: an adaptive campaign that has not run a class yet
// has width 1 and can never satisfy a sub-1 stopping target by
// accident. It panics only on a genuinely malformed count (negative, or
// successes > trials).
func Wilson(successes, trials int) Interval {
	if trials == 0 && successes == 0 {
		return Interval{Lower: 0, Upper: 1}
	}
	if trials < 0 || successes < 0 || successes > trials {
		panic("stats: Wilson counts out of range")
	}
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + wilsonZ*wilsonZ/n
	center := (p + wilsonZ*wilsonZ/(2*n)) / denom
	half := wilsonZ * math.Sqrt(p*(1-p)/n+wilsonZ*wilsonZ/(4*n*n)) / denom
	return Interval{
		Lower: math.Max(0, center-half),
		Upper: math.Min(1, center+half),
	}
}

// WorstCaseTrials returns the smallest trial count whose Wilson 95%
// interval is no wider than width even at the least favorable observed
// proportion (successes = trials/2, where the interval is widest). It
// is the fixed, non-adaptive campaign size a per-class width target
// implies, and therefore the baseline the adaptive engine's savings are
// measured against. It panics if width is not in (0, 1].
func WorstCaseTrials(width float64) int {
	if width <= 0 || width > 1 {
		panic("stats: WorstCaseTrials width out of (0, 1]")
	}
	// The closed-form n = z^2 (1 - w^2) / w^2 solves the p = 1/2 Wilson
	// width equation exactly for even n; search the neighborhood to
	// absorb the odd-n floor of successes = n/2.
	guess := int(wilsonZ * wilsonZ * (1 - width*width) / (width * width))
	n := guess - 2
	if n < 1 {
		n = 1
	}
	for Wilson(n/2, n).Width() > width {
		n++
	}
	return n
}
