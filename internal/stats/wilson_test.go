package stats

import (
	"math"
	"testing"
)

func TestWilsonZeroTrials(t *testing.T) {
	iv := Wilson(0, 0)
	if iv.Lower != 0 || iv.Upper != 1 {
		t.Fatalf("Wilson(0,0) = [%g, %g], want the vacuous [0, 1]", iv.Lower, iv.Upper)
	}
	if iv.Width() != 1 {
		t.Fatalf("Wilson(0,0).Width() = %g, want 1", iv.Width())
	}
}

func TestWilsonZeroSuccesses(t *testing.T) {
	iv := Wilson(0, 50)
	if iv.Lower != 0 {
		t.Fatalf("Wilson(0,50).Lower = %g, want exactly 0", iv.Lower)
	}
	// The upper bound must stay strictly positive: zero observed
	// events never proves a zero rate.
	if iv.Upper <= 0 || iv.Upper >= 0.2 {
		t.Fatalf("Wilson(0,50).Upper = %g, want in (0, 0.2)", iv.Upper)
	}
}

func TestWilsonAllSuccesses(t *testing.T) {
	iv := Wilson(50, 50)
	if iv.Upper != 1 {
		t.Fatalf("Wilson(50,50).Upper = %g, want exactly 1", iv.Upper)
	}
	if iv.Lower <= 0.8 || iv.Lower >= 1 {
		t.Fatalf("Wilson(50,50).Lower = %g, want in (0.8, 1)", iv.Lower)
	}
	// Symmetry with the zero-successes case.
	z := Wilson(0, 50)
	if d := math.Abs((1 - iv.Lower) - z.Upper); d > 1e-12 {
		t.Fatalf("Wilson(n,n) and Wilson(0,n) not mirror images: delta %g", d)
	}
}

func TestWilsonSingleTrial(t *testing.T) {
	for _, s := range []int{0, 1} {
		iv := Wilson(s, 1)
		if iv.Lower < 0 || iv.Upper > 1 || iv.Lower >= iv.Upper {
			t.Fatalf("Wilson(%d,1) = [%g, %g], want a proper sub-interval of [0,1]",
				s, iv.Lower, iv.Upper)
		}
		// One trial decides almost nothing: the interval must still
		// cover most of [0, 1].
		if iv.Width() < 0.7 {
			t.Fatalf("Wilson(%d,1).Width() = %g, implausibly tight for n=1", s, iv.Width())
		}
	}
}

func TestWilsonMatchesProportion(t *testing.T) {
	// NewProportion is the historical implementation; the shared helper
	// must reproduce it bit-for-bit.
	for _, c := range []struct{ s, n int }{{0, 7}, {3, 7}, {7, 7}, {120, 450}, {1, 1}} {
		iv := Wilson(c.s, c.n)
		p := NewProportion(c.s, c.n)
		if iv.Lower != p.Lower || iv.Upper != p.Upper {
			t.Fatalf("Wilson(%d,%d) = [%g,%g], NewProportion = [%g,%g]",
				c.s, c.n, iv.Lower, iv.Upper, p.Lower, p.Upper)
		}
	}
}

// TestWilsonWidthMonotonicity pins the property the adaptive early-stop
// rule depends on: at a stable observed proportion, accumulating trials
// never widens the interval — so once a class's width crosses below the
// target, running the scheduled remainder of its batch cannot un-stop
// it, and the round-boundary stop decision is stable.
func TestWilsonWidthMonotonicity(t *testing.T) {
	for _, num := range []int{0, 1, 2, 5, 9, 10} {
		den := 10
		prev := math.Inf(1)
		for n := den; n <= 10240; n *= 2 {
			w := Wilson(n*num/den, n).Width()
			if w > prev+1e-12 {
				t.Fatalf("width grew at p=%d/%d: n=%d width %g > previous %g",
					num, den, n, w, prev)
			}
			prev = w
		}
	}
}

// TestWilsonWorstCaseAtHalf pins the second half of the rule: at fixed
// n, no observed proportion yields a wider interval than p = 1/2, which
// is what makes WorstCaseTrials a sound fixed-count baseline.
func TestWilsonWorstCaseAtHalf(t *testing.T) {
	for _, n := range []int{2, 10, 61, 384} {
		worst := Wilson(n/2, n).Width()
		for s := 0; s <= n; s++ {
			if w := Wilson(s, n).Width(); w > worst+1e-12 {
				t.Fatalf("n=%d: width at s=%d (%g) exceeds width at n/2 (%g)", n, s, w, worst)
			}
		}
	}
}

func TestWorstCaseTrials(t *testing.T) {
	for _, width := range []float64{0.5, 0.25, 0.1, 0.05} {
		n := WorstCaseTrials(width)
		if got := Wilson(n/2, n).Width(); got > width {
			t.Fatalf("WorstCaseTrials(%g) = %d but width there is %g", width, n, got)
		}
		if n > 1 {
			m := n - 1
			if got := Wilson(m/2, m).Width(); got <= width {
				t.Fatalf("WorstCaseTrials(%g) = %d is not minimal: n-1 already has width %g",
					width, n, got)
			}
		}
	}
	// Spot-check the classical scale: a 0.05-wide interval needs a few
	// thousand trials (z^2/w^2 ~ 1537 at full width... the full width
	// here is Upper-Lower, so w=0.05 means ±0.025).
	if n := WorstCaseTrials(0.05); n < 1000 || n > 10000 {
		t.Fatalf("WorstCaseTrials(0.05) = %d, outside the plausible band", n)
	}
}
