package beam

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

// Exposure-model unit tests: the strike-rate budget must scale with the
// resources a code actually uses.

func lambdaOf(t *testing.T, name string, b kernels.Builder, dev *device.Device) float64 {
	t.Helper()
	r, err := kernels.NewRunner(name, b, dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{ECC: true, Trials: 1, Seed: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	return res.LambdaPerCycle
}

func TestExposureScalesWithParallelism(t *testing.T) {
	dev := device.K40c()
	// MxM keeps most of the device busy; CCL barely does. Per cycle, the
	// parallel code must expose more silicon (§III-C: "if the additional
	// ADDs are executed in parallel ... the FIT rate is expected to
	// double").
	mxm := lambdaOf(t, "FMXM", kernels.MxMBuilder(isa.F32), dev)
	ccl := lambdaOf(t, "CCL", kernels.CCLBuilder(), dev)
	if mxm <= ccl {
		t.Fatalf("MxM lambda/cycle %.3f should exceed CCL's %.3f", mxm, ccl)
	}
}

func TestExposureGrowsWithPrecision(t *testing.T) {
	dev := device.V100()
	h := lambdaOf(t, "HMXM", kernels.MxMBuilder(isa.F16), dev)
	f := lambdaOf(t, "FMXM", kernels.MxMBuilder(isa.F32), dev)
	d := lambdaOf(t, "DMXM", kernels.MxMBuilder(isa.F64), dev)
	if !(h < f && f < d) {
		t.Fatalf("per-cycle exposure must grow with precision: H %.3f F %.3f D %.3f", h, f, d)
	}
}

func TestZeroTrialsDefaulted(t *testing.T) {
	dev := device.K40c()
	r, err := kernels.NewRunner("CCL", kernels.CCLBuilder(), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{ECC: true, Trials: 0, Seed: 1, Workers: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 400 {
		t.Fatalf("zero trials should default to 400, got %d", res.Trials)
	}
}

func TestFITConfidenceIntervalsBracketRate(t *testing.T) {
	dev := device.K40c()
	r, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{ECC: false, Trials: 200, Seed: 5}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC == 0 {
		t.Skip("no events to bracket")
	}
	if res.SDCFIT.CI.Lower > res.SDCFIT.Rate || res.SDCFIT.CI.Upper < res.SDCFIT.Rate {
		t.Fatalf("CI %+v does not bracket %.4f", res.SDCFIT.CI, res.SDCFIT.Rate)
	}
	if res.SDCFIT.CI.Lower <= 0 {
		t.Fatal("with observed events the lower bound must be positive")
	}
}
