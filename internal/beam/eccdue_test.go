package beam

import (
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"testing"
)

func TestECCRaisesDUEForGlobalHeavyCodes(t *testing.T) {
	dev := device.K40c()
	r, err := kernels.NewRunner("NW", kernels.NWBuilder(), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := Run(Config{ECC: false, Trials: 400, Seed: 31}, r)
	on, _ := Run(Config{ECC: true, Trials: 400, Seed: 31}, r)
	t.Logf("NW DUE: off %.3f on %.3f (%.1fx)", off.DUEFIT.Rate, on.DUEFIT.Rate, on.DUEFIT.Rate/off.DUEFIT.Rate)
	for s := Source(0); s < SrcCount; s++ {
		t.Logf("  off %-16s strikes %3d SDC %3d DUE %3d | on strikes %3d SDC %3d DUE %3d",
			s, off.BySource[s].Strikes, off.BySource[s].SDC, off.BySource[s].DUE,
			on.BySource[s].Strikes, on.BySource[s].SDC, on.BySource[s].DUE)
	}
	if on.DUEFIT.Rate <= off.DUEFIT.Rate {
		t.Errorf("NW DUE should rise with ECC (paper §VI)")
	}
}
