package beam

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

func runBeam(t *testing.T, name string, b kernels.Builder, dev *device.Device, ecc bool, trials int) *Result {
	t.Helper()
	r, err := kernels.NewRunner(name, b, dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{ECC: ecc, Trials: trials, Seed: 9}, r)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBeamMxMECCOffVsOn(t *testing.T) {
	dev := device.K40c()
	off := runBeam(t, "FMXM", kernels.MxMBuilder(isa.F32), dev, false, 250)
	on := runBeam(t, "FMXM", kernels.MxMBuilder(isa.F32), dev, true, 250)
	if off.SDC == 0 {
		t.Fatal("ECC-off beam should observe SDCs")
	}
	if on.SDCFIT.Rate >= off.SDCFIT.Rate {
		t.Fatalf("ECC must reduce the SDC FIT: off=%g on=%g", off.SDCFIT.Rate, on.SDCFIT.Rate)
	}
	if off.Trials != 250 || on.Trials != 250 {
		t.Fatal("trial bookkeeping wrong")
	}
	// Counts must be consistent.
	var strikes int
	for _, s := range off.BySource {
		strikes += s.Strikes
	}
	if strikes != off.Trials {
		t.Fatalf("strikes %d != trials %d", strikes, off.Trials)
	}
}

func TestBeamDeterminism(t *testing.T) {
	dev := device.K40c()
	a := runBeam(t, "CCL", kernels.CCLBuilder(), dev, false, 80)
	b := runBeam(t, "CCL", kernels.CCLBuilder(), dev, false, 80)
	if a.SDC != b.SDC || a.DUE != b.DUE {
		t.Fatalf("beam campaign not deterministic: %d/%d vs %d/%d", a.SDC, a.DUE, b.SDC, b.DUE)
	}
}

func TestHiddenStrikesAreDUEDominated(t *testing.T) {
	dev := device.K40c()
	res := runBeam(t, "FLAVA", kernels.LavaBuilder(isa.F32), dev, true, 300)
	h := res.BySource[SrcHidden]
	if h.Strikes == 0 {
		t.Fatal("hidden resources should receive strikes")
	}
	if h.DUE <= h.SDC {
		t.Fatalf("hidden strikes must be DUE-dominated: %d DUE vs %d SDC", h.DUE, h.SDC)
	}
}
