package beam

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
)

// TestHiddenLedgerConsistency checks the per-resource hidden-strike
// ledger against the coarse BySource bucket it refines: strike, SDC,
// and DUE counts must tie out exactly, and the derived fractions must
// be well-formed probabilities.
func TestHiddenLedgerConsistency(t *testing.T) {
	r, err := kernels.NewRunner("NW", kernels.NWBuilder(), device.K40c(), asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{ECC: true, Trials: 1500, Seed: 9}, r)
	if err != nil {
		t.Fatal(err)
	}
	var strikes, sdc, due int
	for h := device.HiddenResource(0); h < device.HiddenCount; h++ {
		strikes += res.ByHidden[h].Strikes
		sdc += res.ByHidden[h].SDC
		due += res.ByHidden[h].DUE
	}
	src := res.BySource[SrcHidden]
	if strikes != src.Strikes || sdc != src.SDC || due != src.DUE {
		t.Errorf("ByHidden totals (%d, %d, %d) != BySource[SrcHidden] (%d, %d, %d)",
			strikes, sdc, due, src.Strikes, src.SDC, src.DUE)
	}
	if res.HiddenStrikes() == 0 {
		t.Fatal("1500-trial campaign sampled no hidden strikes; the importance sampler is broken")
	}
	if f := res.HiddenDUEFraction(); f <= 0 || f > 1 {
		t.Errorf("HiddenDUEFraction = %.3f, want in (0, 1]", f)
	}
	var shareSum float64
	for h := device.HiddenResource(0); h < device.HiddenCount; h++ {
		s := res.HiddenShare(h)
		if s < 0 || s > 1 {
			t.Errorf("HiddenShare(%v) = %.3f, want in [0, 1]", h, s)
		}
		shareSum += s
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("hidden shares sum to %.6f, want 1", shareSum)
	}
}

// TestHiddenLedgerDeterministicAcrossWorkers pins that the new ledger
// follows the split-RNG scheme: worker count must not change it.
func TestHiddenLedgerDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) Result {
		r, err := kernels.NewRunner("CCL", kernels.CCLBuilder(), device.K40c(), asm.O2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{ECC: true, Trials: 600, Workers: workers, Seed: 21}, r)
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	a, b := run(1), run(4)
	if a.ByHidden != b.ByHidden {
		t.Errorf("hidden ledger differs across worker counts:\n 1: %+v\n 4: %+v", a.ByHidden, b.ByHidden)
	}
}
