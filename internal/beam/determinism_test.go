package beam

import (
	"reflect"
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// TestBeamDeterministicAcrossWorkers locks in the split-RNG scheme: each
// trial draws from its own RNG split off the master by trial index, so
// the campaign result must be bit-identical whether trials run on one
// worker or eight. The golden residency timelines must come out
// identical too: a campaign must neither perturb them nor depend on the
// worker count.
func TestBeamDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full campaigns")
	}
	dev := device.K40c()
	run := func(workers int) (*Result, []sim.Timeline) {
		r, err := kernels.NewRunner("FHOTSPOT", kernels.HotspotBuilder(isa.F32), dev, asm.O2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{ECC: false, Trials: 80, Workers: workers, Seed: 31337}, r)
		if err != nil {
			t.Fatal(err)
		}
		var tls []sim.Timeline
		for _, p := range r.GoldenProfiles() {
			tls = append(tls, p.Timeline)
		}
		return res, tls
	}
	a, atl := run(1)
	b, btl := run(8)
	if a.SDC != b.SDC || a.DUE != b.DUE {
		t.Fatalf("workers=1 gave SDC/DUE %d/%d, workers=8 gave %d/%d",
			a.SDC, a.DUE, b.SDC, b.DUE)
	}
	if a.BySource != b.BySource {
		t.Fatalf("per-source breakdown differs across worker counts:\n1: %+v\n8: %+v",
			a.BySource, b.BySource)
	}
	if a.SDCFIT.Rate != b.SDCFIT.Rate || a.DUEFIT.Rate != b.DUEFIT.Rate {
		t.Fatalf("FIT rates differ across worker counts: %v/%v vs %v/%v",
			a.SDCFIT.Rate, a.DUEFIT.Rate, b.SDCFIT.Rate, b.DUEFIT.Rate)
	}
	if len(atl) == 0 || len(atl[0].Buckets) == 0 {
		t.Fatal("golden profiles must carry residency timelines")
	}
	if !reflect.DeepEqual(atl, btl) {
		t.Fatal("golden residency timelines differ across worker counts")
	}
}
