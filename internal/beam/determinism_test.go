package beam

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

// TestBeamDeterministicAcrossWorkers locks in the split-RNG scheme: each
// trial draws from its own RNG split off the master by trial index, so
// the campaign result must be bit-identical whether trials run on one
// worker or eight.
func TestBeamDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full campaigns")
	}
	dev := device.K40c()
	r, err := kernels.NewRunner("FHOTSPOT", kernels.HotspotBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := Run(Config{ECC: false, Trials: 80, Workers: workers, Seed: 31337}, r)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.SDC != b.SDC || a.DUE != b.DUE {
		t.Fatalf("workers=1 gave SDC/DUE %d/%d, workers=8 gave %d/%d",
			a.SDC, a.DUE, b.SDC, b.DUE)
	}
	if a.BySource != b.BySource {
		t.Fatalf("per-source breakdown differs across worker counts:\n1: %+v\n8: %+v",
			a.BySource, b.BySource)
	}
	if a.SDCFIT.Rate != b.SDCFIT.Rate || a.DUEFIT.Rate != b.DUEFIT.Rate {
		t.Fatalf("FIT rates differ across worker counts: %v/%v vs %v/%v",
			a.SDCFIT.Rate, a.DUEFIT.Rate, b.SDCFIT.Rate, b.DUEFIT.Rate)
	}
}
