package beam

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/microbench"
)

// These integration tests assert the Figure-3 *shapes* of the paper
// emerge from the beam campaign over the micro-benchmarks: the relative
// orderings the reproduction is accountable for (DESIGN.md §4).

func microFIT(t *testing.T, dev *device.Device, name string, trials int) (sdc, due float64) {
	t.Helper()
	var build kernels.Builder
	for _, m := range microbench.Catalog(dev) {
		if m.Name == name {
			build = m.Build
			break
		}
	}
	if build == nil {
		t.Fatalf("no micro %q on %s", name, dev.Name)
	}
	r, err := kernels.NewRunner(name, build, dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{ECC: name != "RF", Trials: trials, Seed: 17}, r)
	if err != nil {
		t.Fatal(err)
	}
	return res.SDCFIT.Rate, res.DUEFIT.Rate
}

func TestFig3ShapeKeplerIntegerVsFloat(t *testing.T) {
	if testing.Short() {
		t.Skip("beam shape test")
	}
	dev := device.K40c()
	fadd, _ := microFIT(t, dev, "FADD", 250)
	iadd, _ := microFIT(t, dev, "IADD", 250)
	imul, _ := microFIT(t, dev, "IMUL", 250)
	imad, _ := microFIT(t, dev, "IMAD", 250)
	// §V-B: Kepler integer micro FITs ~4x the FP32 ones.
	if r := iadd / fadd; r < 2 || r > 8 {
		t.Errorf("IADD/FADD = %.1f, expected ~4x (Kepler shared datapath)", r)
	}
	// Operator complexity ordering: IMAD > IMUL > IADD.
	if !(imad > imul && imul > iadd) {
		t.Errorf("integer complexity ordering violated: IADD %.2f IMUL %.2f IMAD %.2f",
			iadd, imul, imad)
	}
}

func TestFig3ShapeLDSTIsDUEDominated(t *testing.T) {
	if testing.Short() {
		t.Skip("beam shape test")
	}
	sdc, due := microFIT(t, device.K40c(), "LDST", 300)
	// §V-B: LDST is the only micro whose DUE rate exceeds its SDC rate
	// (~7x in the paper), because the critical operand is an address.
	if due <= sdc {
		t.Errorf("LDST must be DUE-dominated: SDC %.2f DUE %.2f", sdc, due)
	}
	if r := due / maxF(sdc, 1e-9); r < 1.5 {
		t.Errorf("LDST DUE/SDC = %.1f, expected well above 1 (paper: ~7x)", r)
	}
}

func TestFig3ShapeRFDominatesWhenECCOff(t *testing.T) {
	if testing.Short() {
		t.Skip("beam shape test")
	}
	dev := device.K40c()
	rf, _ := microFIT(t, dev, "RF", 250)
	fadd, _ := microFIT(t, dev, "FADD", 250)
	// Fig. 3: the unprotected register file dwarfs any functional unit.
	if rf < 5*fadd {
		t.Errorf("RF (ECC off) FIT %.2f should dwarf FADD's %.2f", rf, fadd)
	}
}

func TestFig3ShapeVoltaPrecisionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("beam shape test")
	}
	dev := device.V100()
	hfma, _ := microFIT(t, dev, "HFMA", 250)
	ffma, _ := microFIT(t, dev, "FFMA", 250)
	dfma, _ := microFIT(t, dev, "DFMA", 250)
	if !(hfma < ffma && ffma < dfma) {
		t.Errorf("Volta precision ordering violated: HFMA %.2f FFMA %.2f DFMA %.2f",
			hfma, ffma, dfma)
	}
	hmma, _ := microFIT(t, dev, "HMMA", 250)
	// §V-B: tensor-core FIT roughly an order of magnitude above FMA.
	if r := hmma / ffma; r < 3 {
		t.Errorf("HMMA/FFMA = %.1f, expected >> 1 (paper: ~9x)", r)
	}
}

func TestFig5ShapeECCCutsSDC(t *testing.T) {
	if testing.Short() {
		t.Skip("beam shape test")
	}
	dev := device.K40c()
	r, err := kernels.NewRunner("FGEMM", kernels.GEMMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Config{ECC: false, Trials: 300, Seed: 23}, r)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(Config{ECC: true, Trials: 300, Seed: 23}, r)
	if err != nil {
		t.Fatal(err)
	}
	// §VI: ECC reduces the SDC FIT rate dramatically (up to 21x for
	// K40c); require at least a strong reduction here.
	if on.SDCFIT.Rate*3 > off.SDCFIT.Rate {
		t.Errorf("ECC should cut GEMM's SDC sharply: off %.3f on %.3f",
			off.SDCFIT.Rate, on.SDCFIT.Rate)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
