// Package beam simulates accelerated neutron-beam experiments in the
// style of the paper's ChipIR / LANSCE campaigns (§III-C). The silicon
// sensitivity model of internal/device is the hidden ground truth: it
// assigns strike cross-sections to every functional unit, storage bit,
// and hidden management resource. A campaign repeatedly executes the
// workload with one sampled strike per trial (importance sampling — at
// natural flux at most one fault occurs per execution, §IV-A), counts
// silent data corruptions and detected unrecoverable errors, and reports
// FIT rates in arbitrary units with Poisson-style 95% confidence
// intervals, exactly the estimator structure of beam counting
// experiments (errors / fluence).
//
// ECC changes the fate of storage strikes only: SECDED corrects single-
// bit upsets and converts multi-bit upsets into DUEs; logic, pipeline,
// and hidden-resource strikes are unaffected, which is why the paper
// sees the DUE rate *rise* with ECC enabled for memory-hungry codes.
package beam

import (
	"fmt"
	"runtime"
	"sync"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/patterns"
	"gpurel/internal/sim"
	"gpurel/internal/stats"
)

// Source categorizes strike sites for the campaign breakdown.
type Source uint8

// Strike-site categories.
const (
	SrcFU     Source = iota // functional-unit strike during an operation
	SrcRF                   // register-file storage bit
	SrcShared               // shared-memory storage bit
	SrcGlobal               // device-memory (DRAM) storage bit
	SrcHidden               // scheduler / instruction pipe / mem path / host
	SrcCount
)

// String names the category.
func (s Source) String() string {
	return [...]string{"functional-units", "register-file", "shared-memory", "global-memory", "hidden"}[s]
}

// Config sizes a campaign.
type Config struct {
	ECC     bool
	Trials  int // strike trials (the paper runs >= 72 beam-hours per code)
	Workers int
	Seed    uint64
}

// Result is the outcome of one beam campaign.
type Result struct {
	Name   string
	Device string
	ECC    bool
	Trials int

	// LambdaPerCycle is the total expected strike rate per cycle in
	// arbitrary units (flux folded in); FIT values derive from it.
	LambdaPerCycle float64

	SDC int
	DUE int

	// SDCFIT / DUEFIT are failure rates in arbitrary units (events per
	// unit exposure) with 95% CIs.
	SDCFIT stats.RateEstimate
	DUEFIT stats.RateEstimate

	// BySource counts SDC/DUE outcomes per strike-site category.
	BySource [SrcCount]struct{ Strikes, SDC, DUE int }

	// ByHidden breaks the SrcHidden strikes down by management resource
	// (§VII-B): the per-resource ledger the static hidden-DUE model of
	// internal/analysis cross-validates against.
	ByHidden [device.HiddenCount]struct{ Strikes, SDC, DUE int }

	// Patterns is the campaign's SDC pattern ledger. Strikes resolved
	// without simulation (ECC-intercepted storage strikes, hidden-
	// resource draws) have no output diff; their SDCs count as
	// Unclassified.
	Patterns patterns.Ledger

	// DUEModes is the campaign's typed-DUE ledger. Strikes resolved
	// without simulation (ECC-intercepted storage strikes, hidden-
	// resource DUE draws) carry no typed mechanism; they count as
	// Unattributed.
	DUEModes patterns.DUELedger
}

// HiddenStrikes returns the total hidden-resource strike count.
func (r *Result) HiddenStrikes() int { return r.BySource[SrcHidden].Strikes }

// HiddenDUEFraction returns the measured P(DUE | hidden strike), or 0
// when the campaign sampled no hidden strikes.
func (r *Result) HiddenDUEFraction() float64 {
	if s := r.BySource[SrcHidden]; s.Strikes > 0 {
		return float64(s.DUE) / float64(s.Strikes)
	}
	return 0
}

// HiddenShare returns the fraction of hidden strikes that landed in one
// resource, or 0 when the campaign sampled no hidden strikes.
func (r *Result) HiddenShare(h device.HiddenResource) float64 {
	if s := r.BySource[SrcHidden]; s.Strikes > 0 {
		return float64(r.ByHidden[h].Strikes) / float64(s.Strikes)
	}
	return 0
}

// exposure captures the strike-rate budget of one launch.
type exposure struct {
	launch int

	opLambda  map[isa.Op]float64
	opTotal   float64
	rfLambda  float64
	shLambda  float64
	glLambda  float64
	hidLambda [device.HiddenCount]float64
	hidTotal  float64
	total     float64

	laneOps      uint64
	perOp        map[isa.Op]uint64
	gridBlocks   int
	blockThreads int
	numRegs      int
	sharedBytes  int
}

// Run executes a beam campaign against one workload.
func Run(cfg Config, r *kernels.Runner) (*Result, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 400
	}
	inst := r.Instance()
	sil := r.Dev.Silicon
	allocBits := float64(inst.Global.AllocatedBytes()) * 8

	profiles := r.GoldenProfiles()
	exposures := make([]exposure, len(profiles))
	var lambdaTotal, cyclesTotal float64
	for i, p := range profiles {
		l := inst.Launches[i]
		ex := exposure{
			launch:       i,
			opLambda:     make(map[isa.Op]float64),
			perOp:        p.PerOpLane,
			laneOps:      p.LaneOps,
			gridBlocks:   l.GridX * l.GridY,
			blockThreads: l.BlockThreads,
			numRegs:      maxInt(l.Prog.NumRegs, 1),
			sharedBytes:  l.Prog.SharedMem,
		}
		// Iterate opcodes in numeric order: summing in map order would
		// make opTotal (and every derived rate) wobble by a ULP per run.
		for op := isa.Op(0); int(op) < isa.OpCount; op++ {
			n, ok := p.PerOpLane[op]
			if !ok {
				continue
			}
			lam := sil.Sigma(op) * float64(n)
			ex.opLambda[op] = lam
			ex.opTotal += lam
		}
		warpsPerBlock := (l.BlockThreads + 31) / 32
		rfBitCycles := float64(p.ActiveWarpCycles) * 32 * float64(ex.numRegs) * 32
		ex.rfLambda = sil.RFBitSigma * rfBitCycles
		shBitCycles := float64(p.ActiveWarpCycles) / float64(warpsPerBlock) * float64(ex.sharedBytes) * 8
		ex.shLambda = sil.SharedBitSigma * shBitCycles
		ex.glLambda = sil.GlobalBitSigma * allocBits * float64(p.Cycles)
		for h := device.HiddenResource(0); h < device.HiddenCount; h++ {
			s := sil.Hidden[h]
			lam := s.SigmaPerWarpCycle*float64(p.ActiveWarpCycles) +
				s.SigmaPerSMCycle*float64(p.SMCycles)
			ex.hidLambda[h] = lam
			ex.hidTotal += lam
		}
		ex.total = ex.opTotal + ex.rfLambda + ex.shLambda + ex.glLambda + ex.hidTotal
		exposures[i] = ex
		lambdaTotal += ex.total
		cyclesTotal += float64(p.Cycles)
	}
	if lambdaTotal <= 0 {
		return nil, fmt.Errorf("beam: %s exposes no strike surface", r.Name)
	}

	res := &Result{
		Name: r.Name, Device: r.Dev.Name, ECC: cfg.ECC, Trials: cfg.Trials,
		LambdaPerCycle: lambdaTotal / cyclesTotal,
	}

	outs := make([]trialOut, cfg.Trials)
	master := stats.NewRNG(0xbea3, cfg.Seed)
	rngs := make([]*stats.RNG, cfg.Trials)
	for i := range rngs {
		rngs[i] = master.Split(uint64(i))
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out, err := runTrial(cfg, r, sil, exposures, lambdaTotal, allocBits, rngs[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("beam: %s trial %d: %w", r.Name, i, err)
					}
					mu.Unlock()
					continue
				}
				outs[i] = out
			}
		}()
	}
	for i := 0; i < cfg.Trials; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		// An infrastructure error is not a beam observation; abort the
		// campaign instead of biasing any channel.
		return nil, firstErr
	}

	geo := inst.Output
	for _, o := range outs {
		res.BySource[o.src].Strikes++
		if o.src == SrcHidden {
			res.ByHidden[o.hid].Strikes++
		}
		ob := patterns.Observe(o.rec, geo)
		res.Patterns.Count(ob)
		res.DUEModes.Count(ob)
		switch o.rec.Outcome {
		case kernels.SDC:
			res.SDC++
			res.BySource[o.src].SDC++
			if o.src == SrcHidden {
				res.ByHidden[o.hid].SDC++
			}
		case kernels.DUE:
			res.DUE++
			res.BySource[o.src].DUE++
			if o.src == SrcHidden {
				res.ByHidden[o.hid].DUE++
			}
		}
	}
	// FIT in arbitrary units: (strikes per cycle) * P(channel | strike).
	// Exposure is expressed so that Rate = lambdaPerCycle * events/trials.
	exposureAU := float64(cfg.Trials) / res.LambdaPerCycle
	res.SDCFIT = stats.NewRateEstimate(res.SDC, exposureAU)
	res.DUEFIT = stats.NewRateEstimate(res.DUE, exposureAU)
	return res, nil
}

// trialOut is the classified record of one strike trial; hid is
// meaningful only when src == SrcHidden.
type trialOut struct {
	src Source
	hid device.HiddenResource
	rec kernels.TrialRecord
}

// runTrial samples one strike and classifies its outcome. A non-nil
// error is an infrastructure failure, not a classification.
func runTrial(cfg Config, r *kernels.Runner, sil *device.SiliconModel,
	exposures []exposure, lambdaTotal, allocBits float64, rng *stats.RNG) (trialOut, error) {

	// Pick the launch, then the site category within it.
	x := rng.Float64() * lambdaTotal
	var ex *exposure
	for i := range exposures {
		if x < exposures[i].total || i == len(exposures)-1 {
			ex = &exposures[i]
			break
		}
		x -= exposures[i].total
	}

	switch {
	case x < ex.opTotal:
		rec, err := fuStrike(r, sil, ex, rng, cfg.ECC)
		return trialOut{src: SrcFU, rec: rec}, err
	case x < ex.opTotal+ex.rfLambda:
		rec, err := storageStrike(cfg, r, sil, ex, rng, SrcRF, allocBits)
		return trialOut{src: SrcRF, rec: rec}, err
	case x < ex.opTotal+ex.rfLambda+ex.shLambda:
		rec, err := storageStrike(cfg, r, sil, ex, rng, SrcShared, allocBits)
		return trialOut{src: SrcShared, rec: rec}, err
	case x < ex.opTotal+ex.rfLambda+ex.shLambda+ex.glLambda:
		rec, err := storageStrike(cfg, r, sil, ex, rng, SrcGlobal, allocBits)
		return trialOut{src: SrcGlobal, rec: rec}, err
	default:
		h, rec := hiddenStrike(sil, ex, rng)
		return trialOut{src: SrcHidden, hid: h, rec: rec}, nil
	}
}

// fuStrike corrupts the operation executing in the struck functional
// unit: usually its output value, sometimes its effective address
// (memory ops), occasionally a pipeline latch that suppresses the
// instruction.
func fuStrike(r *kernels.Runner, sil *device.SiliconModel, ex *exposure, rng *stats.RNG, ecc bool) (kernels.TrialRecord, error) {
	// Sample the dynamic operation proportional to sigma * count.
	x := rng.Float64() * ex.opTotal
	var op isa.Op
	for o := isa.Op(0); int(o) < isa.OpCount; o++ {
		lam, ok := ex.opLambda[o]
		if !ok {
			continue
		}
		if x < lam {
			op = o
			break
		}
		x -= lam
		op = o
	}
	kind := sim.FaultValueBit
	roll := rng.Float64()
	switch {
	case op.IsMemory() && roll < sil.PEffectAddress:
		kind = sim.FaultAddrBit
	case roll >= 1-sil.PEffectPipeline:
		kind = sim.FaultSkip
	}
	// The memory data path is end-to-end ECC-covered when ECC is on;
	// the address path is not (§V-B).
	if kind == sim.FaultValueBit && op.IsMemory() && ecc && rng.Bool(sil.PLDSTDataECC) {
		return kernels.TrialRecord{Outcome: kernels.Masked}, nil
	}
	opFilter := func(target isa.Op) func(isa.Op) bool {
		return func(o isa.Op) bool { return o == target }
	}(op)
	plan := &sim.FaultPlan{
		Kind:         kind,
		Filter:       opFilter,
		TriggerIndex: uint64(rng.Int64N(int64(ex.perOp[op]))),
		Bit:          rng.IntN(64),
	}
	return r.RunTrialWithFault(plan, ex.launch)
}

// storageStrike flips one bit of the register file, shared memory, or
// global memory. Under SECDED ECC the flip is corrected (masked) unless
// it is a multi-bit upset, which becomes a detected unrecoverable error.
func storageStrike(cfg Config, r *kernels.Runner, sil *device.SiliconModel,
	ex *exposure, rng *stats.RNG, src Source, allocBits float64) (kernels.TrialRecord, error) {
	if cfg.ECC {
		p := sil.MBUProb
		if src == SrcGlobal {
			p = sil.DRAMDetectedProb // DRAM multi-cell upsets and bursts
		}
		if rng.Bool(p) {
			return kernels.TrialRecord{Outcome: kernels.DUE}, nil // detected uncorrectable
		}
		return kernels.TrialRecord{Outcome: kernels.Masked}, nil // corrected SBU
	}
	plan := &sim.FaultPlan{
		TriggerIndex: uint64(rng.Int64N(int64(maxU64(ex.laneOps, 1)))),
		Bit:          rng.IntN(64),
	}
	switch src {
	case SrcRF:
		plan.Kind = sim.FaultRFBit
		plan.Block = rng.IntN(ex.gridBlocks)
		plan.Thread = rng.IntN(ex.blockThreads)
		plan.Reg = rng.IntN(ex.numRegs)
	case SrcShared:
		plan.Kind = sim.FaultSharedBit
		plan.Block = rng.IntN(ex.gridBlocks)
		plan.BitIdx = rng.Uint64() % uint64(maxInt(ex.sharedBytes*8, 1))
	case SrcGlobal:
		plan.Kind = sim.FaultGlobalBit
		plan.BitIdx = rng.Uint64() % uint64(maxInt(int(allocBits), 1))
	}
	return r.RunTrialWithFault(plan, ex.launch)
}

// hiddenStrike resolves a strike on management hardware the SASS-level
// simulator cannot express; the outcome distribution comes from the
// silicon model. These are the events that make architecture-level
// fault simulation underestimate the DUE rate by orders of magnitude
// (§VII-B).
func hiddenStrike(sil *device.SiliconModel, ex *exposure, rng *stats.RNG) (device.HiddenResource, kernels.TrialRecord) {
	x := rng.Float64() * ex.hidTotal
	h := device.HiddenScheduler
	for hr := device.HiddenResource(0); hr < device.HiddenCount; hr++ {
		if x < ex.hidLambda[hr] {
			h = hr
			break
		}
		x -= ex.hidLambda[hr]
		h = hr
	}
	s := sil.Hidden[h]
	roll := rng.Float64()
	switch {
	case roll < s.PDUE:
		return h, kernels.TrialRecord{Outcome: kernels.DUE}
	case roll < s.PDUE+s.PSDC:
		return h, kernels.TrialRecord{Outcome: kernels.SDC}
	default:
		return h, kernels.TrialRecord{Outcome: kernels.Masked}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
