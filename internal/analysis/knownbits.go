package analysis

import (
	"math/bits"
	"strings"
)

// KnownBits is a three-valued abstraction of a value window of up to 64
// bits: every bit is proven-zero, proven-one, or unknown. Zeros and
// Ones are disjoint masks over the low Width bits; a bit set in neither
// is unknown. The lattice top (no knowledge) has both masks empty; meet
// intersects knowledge, and the transfer functions in bitflow.go only
// ever derive facts that hold on every execution, so any fixpoint —
// including an iteration cap — is sound.
type KnownBits struct {
	Zeros uint64
	Ones  uint64
	Width int
}

// kbWindowMask returns the valid-bit mask for a window width.
func kbWindowMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// kbTop is the no-knowledge element.
func kbTop(w int) KnownBits { return KnownBits{Width: w} }

// kbConst is the all-known element for a concrete value.
func kbConst(v uint64, w int) KnownBits {
	m := kbWindowMask(w)
	return KnownBits{Zeros: ^v & m, Ones: v & m, Width: w}
}

// Known returns the mask of bits with a proven value.
func (k KnownBits) Known() uint64 { return k.Zeros | k.Ones }

// IsConst reports whether every bit in the window is proven.
func (k KnownBits) IsConst() bool { return k.Known() == kbWindowMask(k.Width) }

// Const returns the proven value; meaningful when IsConst.
func (k KnownBits) Const() uint64 { return k.Ones }

// ZeroAt reports whether bit b is proven zero.
func (k KnownBits) ZeroAt(b int) bool { return b < 64 && k.Zeros>>uint(b)&1 == 1 }

// OneAt reports whether bit b is proven one.
func (k KnownBits) OneAt(b int) bool { return b < 64 && k.Ones>>uint(b)&1 == 1 }

// KnownCount returns how many bits of the window are proven.
func (k KnownBits) KnownCount() int { return bits.OnesCount64(k.Known()) }

// String renders the window MSB-first: '0'/'1' for proven bits, '?' for
// unknown, with a '_' separator every 8 bits for readability.
func (k KnownBits) String() string {
	var b strings.Builder
	for i := k.Width - 1; i >= 0; i-- {
		switch {
		case k.ZeroAt(i):
			b.WriteByte('0')
		case k.OneAt(i):
			b.WriteByte('1')
		default:
			b.WriteByte('?')
		}
		if i > 0 && i%8 == 0 {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// kbMeet intersects knowledge from two facts for the same value (e.g.
// two definitions reaching one use).
func kbMeet(a, b KnownBits) KnownBits {
	return KnownBits{Zeros: a.Zeros & b.Zeros, Ones: a.Ones & b.Ones, Width: a.Width}
}

// kbAnd/kbOr/kbXor are the bitwise transfers.
func kbAnd(a, b KnownBits) KnownBits {
	return KnownBits{
		Zeros: (a.Zeros | b.Zeros) & kbWindowMask(a.Width),
		Ones:  a.Ones & b.Ones,
		Width: a.Width,
	}
}

func kbOr(a, b KnownBits) KnownBits {
	return KnownBits{
		Zeros: a.Zeros & b.Zeros,
		Ones:  (a.Ones | b.Ones) & kbWindowMask(a.Width),
		Width: a.Width,
	}
}

func kbXor(a, b KnownBits) KnownBits {
	known := a.Known() & b.Known()
	v := (a.Ones ^ b.Ones) & known
	return KnownBits{Zeros: known &^ v, Ones: v, Width: a.Width}
}

// kbShl/kbShr shift by a known constant amount; vacated bits are proven
// zero (shifts are logical in the IR).
func kbShl(a KnownBits, n int) KnownBits {
	m := kbWindowMask(a.Width)
	fill := (uint64(1) << uint(n)) - 1
	return KnownBits{
		Zeros: (a.Zeros<<uint(n) | fill) & m,
		Ones:  a.Ones << uint(n) & m,
		Width: a.Width,
	}
}

func kbShr(a KnownBits, n int) KnownBits {
	m := kbWindowMask(a.Width)
	fill := ^(m >> uint(n)) & m
	return KnownBits{
		Zeros: (a.Zeros&m)>>uint(n) | fill,
		Ones:  (a.Ones & m) >> uint(n),
		Width: a.Width,
	}
}

// kbAdd propagates the low-order run of bits where both operands and
// the incoming carry are proven; the first unknown bit poisons every
// higher position through the carry chain.
func kbAdd(a, b KnownBits) KnownBits {
	out := kbTop(a.Width)
	carry := uint64(0)
	for i := 0; i < a.Width && i < 64; i++ {
		if a.Known()>>uint(i)&1 == 0 || b.Known()>>uint(i)&1 == 0 {
			break
		}
		av := a.Ones >> uint(i) & 1
		bv := b.Ones >> uint(i) & 1
		s := av + bv + carry
		if s&1 == 1 {
			out.Ones |= 1 << uint(i)
		} else {
			out.Zeros |= 1 << uint(i)
		}
		carry = s >> 1
	}
	return out
}

// kbNeg is two's-complement negation: exact for constants, otherwise
// unknown (negation flips an unbounded prefix of bits).
func kbNeg(a KnownBits) KnownBits {
	if a.IsConst() {
		return kbConst(-a.Const(), a.Width)
	}
	return kbTop(a.Width)
}

// kbMul folds constants and otherwise keeps the provable trailing-zero
// run (the product has at least tz(a)+tz(b) trailing zeros).
func kbMul(a, b KnownBits) KnownBits {
	if a.IsConst() && b.IsConst() {
		return kbConst(a.Const()*b.Const(), a.Width)
	}
	if (a.IsConst() && a.Const() == 0) || (b.IsConst() && b.Const() == 0) {
		return kbConst(0, a.Width)
	}
	tz := kbTrailingZeros(a) + kbTrailingZeros(b)
	if tz > a.Width {
		tz = a.Width
	}
	out := kbTop(a.Width)
	out.Zeros = (uint64(1) << uint(tz)) - 1
	return out
}

// kbTrailingZeros counts the proven-zero run at the bottom of the
// window.
func kbTrailingZeros(a KnownBits) int {
	n := 0
	for n < a.Width && a.ZeroAt(n) {
		n++
	}
	return n
}

// kbExtract32 slices the 32-bit register `part` out of a wider window.
func kbExtract32(a KnownBits, part int) KnownBits {
	if a.Width <= 32 {
		if part == 0 {
			return a
		}
		return kbTop(32)
	}
	sh := uint(32 * part)
	if sh >= 64 {
		return kbTop(32)
	}
	return KnownBits{
		Zeros: a.Zeros >> sh & 0xffffffff,
		Ones:  a.Ones >> sh & 0xffffffff,
		Width: 32,
	}
}

// kbConcat64 assembles a 64-bit window from two 32-bit register facts.
func kbConcat64(lo, hi KnownBits) KnownBits {
	return KnownBits{
		Zeros: lo.Zeros&0xffffffff | hi.Zeros<<32,
		Ones:  lo.Ones&0xffffffff | hi.Ones<<32,
		Width: 64,
	}
}
