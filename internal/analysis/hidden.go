package analysis

import "gpurel/internal/isa"

// Static DUE modeling for hidden resources (§VII follow-on). The ACE
// estimator in avf.go covers faults in architectural register dataflow —
// the population the injectors reach. The paper's headline negative
// result is that most beam DUEs originate elsewhere: the warp scheduler,
// the fetch/decode pipeline, and the MMU/LDST queue path. None of those
// structures appear in the IR, but the *pressure a kernel puts on them*
// does, and this file derives three static proxies for it:
//
//   - Fetch exposure: fetch-stream discontinuities per executed
//     instruction, from CFG shape weighted by block execution counts.
//     Short blocks and branch-dense loops keep the fetch/decode path and
//     branch redirect logic busy; straight-line code barely touches it.
//   - Divergence depth: the mean SSY-region nesting depth over executed
//     instructions. Deep SSY/SYNC nesting means more live reconvergence-
//     stack state per warp, the scheduler-side storage a strike corrupts.
//   - Load pressure: the mass of outstanding-load state, from the
//     def-use span lengths of LD-family opcodes. A load whose first use
//     is far from its issue point holds an LDST-queue/MSHR entry (and an
//     MMU translation in flight) for longer.
//
// The proxies modulate a per-resource exposure prior calibrated against
// the companion NSREC 2021 beam study's DUE attribution (scheduler >
// instruction pipeline > memory path >> host interface), and each
// resource carries a conditional DUE probability: management-state
// corruption mostly hangs or faults the kernel rather than silently
// corrupting data. The combined estimate is a static P(DUE | hidden
// strike) that internal/faultinj cross-validates against internal/beam's
// per-resource strike ledger, and that internal/fit feeds back into the
// Eq. 1-4 prediction as the DUE correction term the injectors cannot
// supply.
//
// Like the ACE model, this is a structural estimate, not a measurement:
// it sees the shape of the code, never the runtime occupancy of the
// hidden structures themselves. See DESIGN.md for what that does and
// does not allow it to claim.

// Per-resource exposure priors. The base shares mirror the relative
// per-warp-cycle strike budgets of the §VII-B breakdown (arbitrary
// units; only ratios matter), and the modulation gains set how strongly
// each static proxy can shift its resource's share.
const (
	hiddenBaseScheduler = 0.42
	hiddenBaseInstrPipe = 0.34
	hiddenBaseMemPath   = 0.22
	hiddenBaseHostIface = 0.02

	hiddenGainDivergence = 0.5 // scheduler share grows with SSY depth
	hiddenGainFetch      = 0.5 // instr-pipe share grows with fetch exposure
	hiddenGainLoad       = 1.5 // mem-path share grows with load pressure
)

// Conditional DUE probabilities per hidden resource: corrupted
// management state rarely produces a silently wrong answer — it hangs
// the warp, derails fetch, or faults a translation. Calibrated to the
// NSREC 2021 outcome attribution.
const (
	hiddenDUEScheduler = 0.80
	hiddenDUEInstrPipe = 0.75
	hiddenDUEMemPath   = 0.85
	hiddenDUEHostIface = 0.90
)

// NominalHiddenDUE is the suite-typical P(DUE | hidden strike) implied
// by the priors alone (all proxies at their neutral point). Consumers
// that calibrate an absolute rate against a measured reference divide
// the per-kernel estimate by this to obtain a relative correction.
const NominalHiddenDUE = hiddenBaseScheduler*hiddenDUEScheduler +
	hiddenBaseInstrPipe*hiddenDUEInstrPipe +
	hiddenBaseMemPath*hiddenDUEMemPath +
	hiddenBaseHostIface*hiddenDUEHostIface

// HiddenEstimate is the hidden-resource DUE model of one kernel (or,
// via CombineHidden, one multi-launch workload). The static path fills
// the three proxies from code structure; the measured path
// (WithResidency) replaces them with runtime occupancies from the
// simulator's residency telemetry and additionally yields an absolute
// exposure the fit layer can calibrate against.
type HiddenEstimate struct {
	Name string

	// The three proxies: structural on the static path, measured
	// occupancies on the WithResidency path.
	FetchExposure   float64 // fetch discontinuities per executed instruction
	DivergenceDepth float64 // mean SSY nesting depth over executed instructions
	LoadPressure    float64 // outstanding-load mass per executed instruction

	// Shares is the estimated distribution of hidden-resource strikes
	// over {scheduler, instr-pipe, mem-path, host-iface}; it sums to 1.
	SchedulerShare float64
	InstrPipeShare float64
	MemPathShare   float64
	HostIfaceShare float64

	// DUE is the combined P(DUE | hidden strike): the share-weighted
	// conditional DUE probability. This is the DUE AVF of the
	// hidden-resource population, the counterpart of Estimate.DUE for
	// the architectural one.
	DUE float64

	// Measured marks an estimate produced by WithResidency; Exposure is
	// then the modeled hidden strike surface per device cycle (model
	// a.u., normalized to the scheduler's per-warp-cycle sensitivity).
	// Static estimates leave both at their zero values: the static path
	// has no absolute scale, only the Phi-relative one.
	Measured bool
	Exposure float64
}

// DUEExposure is the DUE-weighted hidden exposure per device cycle of a
// measured estimate: the model's expected hidden DUE surface, the
// quantity fit.ApplyMeasuredDUE calibrates across workloads. Zero for
// static estimates.
func (h *HiddenEstimate) DUEExposure() float64 { return h.Exposure * h.DUE }

// hiddenShareWeight applies one proxy's modulation to its base share.
func hiddenShareWeight(base, gain, proxy float64) float64 {
	return base * (1 + gain*proxy)
}

// finishHidden derives shares and the combined DUE from the raw proxies.
func (h *HiddenEstimate) finishHidden() {
	ws := hiddenShareWeight(hiddenBaseScheduler, hiddenGainDivergence, h.DivergenceDepth)
	wi := hiddenShareWeight(hiddenBaseInstrPipe, hiddenGainFetch, h.FetchExposure)
	wm := hiddenShareWeight(hiddenBaseMemPath, hiddenGainLoad, h.LoadPressure)
	wh := hiddenBaseHostIface
	total := ws + wi + wm + wh
	h.SchedulerShare = ws / total
	h.InstrPipeShare = wi / total
	h.MemPathShare = wm / total
	h.HostIfaceShare = wh / total
	h.DUE = h.SchedulerShare*hiddenDUEScheduler +
		h.InstrPipeShare*hiddenDUEInstrPipe +
		h.MemPathShare*hiddenDUEMemPath +
		h.HostIfaceShare*hiddenDUEHostIface
}

// HiddenEstimate computes the hidden-resource DUE model over one
// analyzed program. weights gives per-instruction execution weights
// (nil: uniform static weighting); use OpWeights to weight by a dynamic
// profile, exactly as Estimate does for the ACE model.
func (r *Result) HiddenEstimate(weights []float64) *HiddenEstimate {
	h := &HiddenEstimate{Name: r.Prog.Name}
	n := len(r.Prog.Instrs)
	if n == 0 {
		h.finishHidden()
		return h
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	var totalW float64
	for i := 0; i < n; i++ {
		if w(i) > 0 {
			totalW += w(i)
		}
	}
	if totalW <= 0 {
		h.finishHidden()
		return h
	}

	// Fetch exposure: every block entry is a fetch-line discontinuity,
	// and a block whose terminator redirects the stream (taken branch,
	// SYNC jump to the reconvergence point) costs a second one. A
	// block's execution count is its mean per-instruction weight.
	var fetch float64
	for _, b := range r.CFG.Blocks {
		var bw float64
		for i := b.Start; i < b.End; i++ {
			if w(i) > 0 {
				bw += w(i)
			}
		}
		execs := bw / float64(b.End-b.Start)
		cost := 1.0
		switch r.Prog.Instrs[b.Last()].Op {
		case isa.OpBRA, isa.OpSYNC:
			cost = 2.0
		}
		fetch += execs * cost
	}
	h.FetchExposure = fetch / totalW

	// Divergence depth: the number of enclosing SSY regions per
	// instruction, weighted by execution count. An SSY at s with
	// reconvergence target t covers the instructions strictly inside
	// (s, t): the region a warp may traverse divergent, holding a
	// reconvergence-stack entry the whole time.
	depth := make([]int, n)
	for s := 0; s < n; s++ {
		in := &r.Prog.Instrs[s]
		if in.Op != isa.OpSSY || in.Target <= s {
			continue
		}
		end := in.Target
		if end > n {
			end = n
		}
		for i := s + 1; i < end; i++ {
			depth[i]++
		}
	}
	var div float64
	for i := 0; i < n; i++ {
		if w(i) > 0 {
			div += w(i) * float64(depth[i])
		}
	}
	h.DivergenceDepth = div / totalW

	// Load pressure: each LD-family definition holds queue state from
	// issue until its furthest consumer; the def-use span, normalized by
	// program length, approximates that residency. A span that wraps
	// backward (loop-carried use) covers the remainder of the iteration
	// plus the prefix of the next.
	var load float64
	for i := 0; i < n; i++ {
		if !r.Prog.Instrs[i].Op.IsLoad() || w(i) <= 0 {
			continue
		}
		span := 0
		for _, e := range r.DefUse.Out[i] {
			d := e.Use - i
			if d <= 0 {
				d = n - i + e.Use
			}
			if d > span {
				span = d
			}
		}
		load += w(i) * float64(span) / float64(n)
	}
	h.LoadPressure = load / totalW

	h.finishHidden()
	return h
}

// StaticHiddenAVF analyzes the program and returns its uniform-weight
// hidden-resource DUE estimate.
func StaticHiddenAVF(p *isa.Program) *HiddenEstimate {
	return Analyze(p).HiddenEstimate(nil)
}

// CombineHidden merges per-launch hidden estimates into one workload
// estimate, weighting each launch by its share of the hidden strike
// surface (callers typically use active-warp-cycles, the quantity the
// per-warp hidden state scales with). Proxies, shares, and the DUE all
// combine as weighted means; a zero total weight yields the neutral
// prior.
func CombineHidden(name string, ests []*HiddenEstimate, weights []float64) *HiddenEstimate {
	h := &HiddenEstimate{Name: name}
	var totalW float64
	for i, e := range ests {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w <= 0 {
			continue
		}
		totalW += w
		h.FetchExposure += w * e.FetchExposure
		h.DivergenceDepth += w * e.DivergenceDepth
		h.LoadPressure += w * e.LoadPressure
	}
	if totalW > 0 {
		h.FetchExposure /= totalW
		h.DivergenceDepth /= totalW
		h.LoadPressure /= totalW
	}
	h.finishHidden()
	return h
}

// Measured-residency hidden model. The static path above guesses how
// full the hidden structures run from code shape; the measured path
// reads the occupancies straight from the simulator's residency
// telemetry (sim.Residency). Per-warp hidden state (scheduler slots,
// reconvergence stacks, per-warp i-buffer entries) scales with resident
// warps per SM-cycle; per-SM structures (dispatch logic, i-cache, MMU
// front end, host interface) are exposed whenever the SM is powered.
// The per-resource sensitivities below encode that split, normalized to
// the scheduler's per-warp term, and are calibrated against the NSREC
// 2021 beam attribution the exposure priors came from.
const (
	residWarpScheduler = 1.0
	residWarpInstrPipe = 0.8
	residWarpMemPath   = 0.5
	residWarpHostIface = 0.0

	residSMScheduler = 2.4
	residSMInstrPipe = 2.0
	residSMMemPath   = 1.6
	residSMHostIface = 1.0

	// Modulation gains for the measured proxies. They are deliberately
	// small: with the occupancies measured, the proxies only fine-tune
	// how busy each structure is per resident warp, they no longer carry
	// the whole estimate as on the static path.
	measGainDivergence = 0.15 // scheduler: live reconvergence entries per issue
	measGainFetch      = 0.15 // instr-pipe: fetch redirects per issue
	measGainLoad       = 0.15 // mem-path: saturated LDST-queue depth per warp
)

// MeasuredResidency carries the runtime hidden-structure occupancies
// measured by the simulator (see sim.Residency; kept as plain floats so
// analysis does not depend on the simulator package).
type MeasuredResidency struct {
	WarpsPerSMCycle  float64 // resident warps per active SM-cycle
	SMCyclesPerCycle float64 // active SMs per device cycle
	SchedUtil        float64 // issued warp-instructions per scheduler slot
	FetchRate        float64 // fetch redirects per issued warp-instruction
	DivDepth         float64 // live divergence entries per issued warp-instruction
	LoadDepth        float64 // outstanding loads per active warp-cycle
}

// WithResidency returns a copy of the estimate with the three static
// proxies replaced by their measured counterparts and the strike shares
// rebuilt from the measured occupancies. The static receiver is kept as
// the fallback: callers that lack telemetry keep using the structural
// estimate unchanged.
func (h *HiddenEstimate) WithResidency(m MeasuredResidency) *HiddenEstimate {
	out := *h
	out.Measured = true
	out.FetchExposure = m.FetchRate
	out.DivergenceDepth = m.DivDepth
	// Outstanding loads per warp are unbounded in principle; saturate so
	// the proxy stays a [0,1) occupancy like the other two.
	out.LoadPressure = m.LoadDepth / (1 + m.LoadDepth)

	w := m.WarpsPerSMCycle
	ws := (residWarpScheduler*w + residSMScheduler) * (1 + measGainDivergence*out.DivergenceDepth)
	wi := (residWarpInstrPipe*w + residSMInstrPipe) * (1 + measGainFetch*out.FetchExposure)
	wm := (residWarpMemPath*w + residSMMemPath) * (1 + measGainLoad*out.LoadPressure)
	wh := residWarpHostIface*w + residSMHostIface
	total := ws + wi + wm + wh
	out.SchedulerShare = ws / total
	out.InstrPipeShare = wi / total
	out.MemPathShare = wm / total
	out.HostIfaceShare = wh / total
	out.DUE = out.SchedulerShare*hiddenDUEScheduler +
		out.InstrPipeShare*hiddenDUEInstrPipe +
		out.MemPathShare*hiddenDUEMemPath +
		out.HostIfaceShare*hiddenDUEHostIface
	out.Exposure = total * m.SMCyclesPerCycle
	return &out
}

// MeasuredHiddenEstimate builds a measured estimate directly from a
// residency measurement, without a static baseline.
func MeasuredHiddenEstimate(name string, m MeasuredResidency) *HiddenEstimate {
	return (&HiddenEstimate{Name: name}).WithResidency(m)
}
