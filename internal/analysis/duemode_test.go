package analysis

import (
	"testing"

	"gpurel/internal/isa"
)

// provenTripProg: a loop whose counter is masked into [0,7] and compared
// against 1<<26 — the range lattice proves flips in bits 0..25 of the
// counter cannot cross the threshold, so only the top bits carry hang
// exposure.
func provenTripProg() *isa.Program {
	return prog("proventrip",
		movi(rr(1)),        // 0: address (const 0, window-proven)
		ldgT(rr(2), rr(1)), // 1: loop input (outside the loop: memory-free body)
		lopT(isa.LopAND, rr(3), rr(2), isa.Imm(7)), // 2: loop: counter in [0,7]
		isetpImm(pp(1), isa.CmpLT, rr(3), 1<<26),   // 3: trip-count compare
		braIf(pp(1), false, 2),                     // 4: backedge
		stg(rr(1), rr(3)),                          // 5
		exit(),                                     // 6
	)
}

func TestDUEModeProvenTripCount(t *testing.T) {
	r := Analyze(provenTripProg())
	ctr := &r.DUEModeVec[2]
	for b := 0; b < 26; b++ {
		if got := ctr.Ch[ModeHang][b]; got != 0 {
			t.Errorf("counter bit %d: hang = %g, want 0 (range-proven flip-immune)", b, got)
		}
	}
	for b := 26; b < 32; b++ {
		if got := ctr.Ch[ModeHang][b]; got <= 0 {
			t.Errorf("counter bit %d: hang = %g, want > 0 (flip can cross the threshold)", b, got)
		}
	}
	// The trip-count predicate itself is pure hang exposure: its whole
	// DUE mass routes through the backedge guard.
	pv := &r.DUEModeVec[3]
	if pv.Width != 1 {
		t.Fatalf("predicate width = %d, want 1", pv.Width)
	}
	due := r.ACEVec[3].DUE[0]
	if due <= 0 || pv.Ch[ModeHang][0] != due {
		t.Errorf("predicate hang = %g, want the full DUE mass %g", pv.Ch[ModeHang][0], due)
	}
	for _, m := range []DUEModeK{ModeIllegalAddress, ModeSyncError, ModeUnattributed} {
		if got := pv.Ch[m][0]; got != 0 {
			t.Errorf("predicate %s = %g, want 0", m, got)
		}
	}
	// The compare is against a constant, so the loop is statically
	// bounded and must not be flagged unbounded.
	for _, f := range r.Findings {
		if f.Kind == KindUnboundedLoopExposure {
			t.Errorf("bounded loop flagged: %s", f.Msg)
		}
	}
}

// TestDUEModeBackedgeMemoryConversion pins the memory-body backedge
// split: a trip-count guard whose loop body touches memory routes most
// of its DUE to illegal-address (overrun iterations die on an
// out-of-bounds access), keeping only BackedgeMemHangFrac as hang.
func TestDUEModeBackedgeMemoryConversion(t *testing.T) {
	r := Analyze(prog("membody",
		movi(rr(1)),        // 0: address
		ldgT(rr(2), rr(1)), // 1: loop body: memory access
		lopT(isa.LopAND, rr(3), rr(2), isa.Imm(7)), // 2
		isetpImm(pp(1), isa.CmpLT, rr(3), 1<<26),   // 3
		braIf(pp(1), false, 1),                     // 4: backedge over the load
		exit(),                                     // 5
	))
	pv := &r.DUEModeVec[3]
	due := r.ACEVec[3].DUE[0]
	const tol = 1e-12
	if due <= 0 {
		t.Fatal("trip-count predicate carries no DUE mass")
	}
	if got, want := pv.Ch[ModeHang][0], BackedgeMemHangFrac*due; abs(got-want) > tol {
		t.Errorf("memory-body backedge hang = %g, want %g", got, want)
	}
	if got, want := pv.Ch[ModeIllegalAddress][0], (1-BackedgeMemHangFrac)*due; abs(got-want) > tol {
		t.Errorf("memory-body backedge illegal-address = %g, want %g", got, want)
	}
}

func TestDUEModeUnboundedLoopFinding(t *testing.T) {
	r := Analyze(prog("unbounded",
		movi(rr(1)),                // 0: address
		ldgT(rr(2), rr(1)),         // 1: loop body: bound (unknown)
		ldgT(rr(3), rr(1)),         // 2: counter (unknown)
		isetp(pp(1), rr(3), rr(2)), // 3: neither side bounded
		braIf(pp(1), false, 1),     // 4: backedge
		exit(),                     // 5
	))
	var hit bool
	for _, f := range r.Findings {
		if f.Kind == KindUnboundedLoopExposure {
			hit = true
			if f.Instr != 4 {
				t.Errorf("finding anchored at %d, want the backedge at 4", f.Instr)
			}
		}
	}
	if !hit {
		t.Error("statically unbounded loop not flagged unbounded-loop-exposure")
	}
}

func TestDUEModeAddressWindowProof(t *testing.T) {
	r := Analyze(prog("addrwindow",
		movi(rr(1)),               // 0: proven-window address (const 0)
		ldgT(rr(2), rr(1)),        // 1
		iadd(rr(4), rr(2), rr(2)), // 2: unproven address value
		ldgT(rr(5), rr(4)),        // 3
		stg(rr(1), rr(5)),         // 4
		exit(),                    // 5
	))
	proven, unproven := &r.DUEModeVec[0], &r.DUEModeVec[2]
	for b := 0; b < AddrPageBits; b++ {
		if got := proven.Ch[ModeIllegalAddress][b]; got != 0 {
			t.Errorf("proven address bit %d: illegal-address = %g, want 0 (in-window containment)", b, got)
		}
		if got := unproven.Ch[ModeIllegalAddress][b]; got <= 0 {
			t.Errorf("unproven address bit %d: illegal-address = %g, want > 0", b, got)
		}
	}
	for b := AddrPageBits; b < 32; b++ {
		if got := proven.Ch[ModeIllegalAddress][b]; got <= 0 {
			t.Errorf("address high bit %d: illegal-address = %g, want > 0 (high bits always escape)", b, got)
		}
	}
	// Lint: only the unproven chain is unguarded.
	var at []int
	for _, f := range r.Findings {
		if f.Kind == KindUnguardedAddressArith {
			at = append(at, f.Instr)
		}
	}
	if len(at) != 1 || at[0] != 2 {
		t.Errorf("unguarded-address-arith at %v, want exactly [2]", at)
	}
}

func TestDUEModeSyncDivergence(t *testing.T) {
	r := Analyze(prog("diamond",
		movi(rr(0)),                 // 0: value
		movi(rr(1)),                 // 1: address
		isetp(pp(0), rr(0), isa.RZ), // 2
		ssy(8),                      // 3
		braIf(pp(0), true, 7),       // 4: divergent branch in SSY region
		iadd(rr(2), rr(0), rr(0)),   // 5
		bra(8),                      // 6
		imul(rr(2), rr(0), rr(0)),   // 7
		stg(rr(1), rr(2)),           // 8: reconvergence
		exit(),                      // 9
	))
	pv := &r.DUEModeVec[2]
	due := r.ACEVec[2].DUE[0]
	if due <= 0 || pv.Ch[ModeSyncError][0] != due {
		t.Errorf("divergent-branch predicate sync-error = %g, want the full DUE mass %g",
			pv.Ch[ModeSyncError][0], due)
	}
	if got := pv.Ch[ModeHang][0]; got != 0 {
		t.Errorf("divergent-branch predicate hang = %g, want 0", got)
	}
}

func TestDUEModeGuardedBarrier(t *testing.T) {
	r := Analyze(prog("guardedbar",
		movi(rr(1)),                          // 0: address
		ldgT(rr(2), rr(1)),                   // 1
		isetp(pp(1), rr(2), isa.RZ),          // 2: barrier participation guard
		guard(raw(isa.OpBAR, isa.RZ), pp(1)), // 3
		stg(rr(1), rr(2)),                    // 4
		exit(),                               // 5
	))
	pv := &r.DUEModeVec[2]
	due := r.ACEVec[2].DUE[0]
	if due <= 0 || pv.Ch[ModeSyncError][0] != due {
		t.Errorf("BAR-guard predicate sync-error = %g, want the full DUE mass %g",
			pv.Ch[ModeSyncError][0], due)
	}
	var hit bool
	for _, f := range r.Findings {
		if f.Kind == KindSyncFragileRegion && f.Instr == 2 {
			hit = true
		}
	}
	if !hit {
		t.Error("predicate gating BAR not flagged sync-fragile-region")
	}
}

func TestDUEModeFullyMaskedSite(t *testing.T) {
	r := Analyze(prog("masked",
		movi(rr(1)),        // 0: address
		ldgT(rr(2), rr(1)), // 1: every bit provably masked
		lopT(isa.LopAND, rr(3), rr(2), isa.Imm(0)), // 2: AND 0 kills the value
		stg(rr(1), rr(3)),                          // 3
		exit(),                                     // 4
	))
	v := &r.DUEModeVec[1]
	for m := DUEModeK(0); m < ModeCount; m++ {
		for b := 0; b < 64; b++ {
			if got := v.Ch[m][b]; got != 0 {
				t.Errorf("masked site bit %d: %s = %g, want 0", b, m, got)
			}
		}
	}
}

// TestDUEModePartition asserts the core invariant: per site per bit, the
// four mode channels partition the authoritative DUE probability
// exactly, and the aggregate DUEModeEstimate mass equals the scalar
// estimate's DUE for identical weights and filter.
func TestDUEModePartition(t *testing.T) {
	progs := []*isa.Program{
		provenTripProg(),
		prog("diamondloop",
			movi(rr(1)),        // 0: address
			ldgT(rr(2), rr(1)), // 1
			isetp(pp(0), rr(2), isa.RZ),
			ssy(7),
			braIf(pp(0), true, 6),
			iadd(rr(3), rr(2), rr(2)),
			stg(rr(1), rr(3)),          // 6+7 merged below
			isetp(pp(1), rr(3), rr(2)), // unbounded trip
			braIf(pp(1), false, 1),
			exit(),
		),
	}
	const tol = 1e-9
	for _, p := range progs {
		r := Analyze(p)
		for i := range p.Instrs {
			v, a := &r.DUEModeVec[i], &r.ACEVec[i]
			if v.Width != a.Width {
				t.Fatalf("%s[%d]: mode width %d != ACE width %d", p.Name, i, v.Width, a.Width)
			}
			for b := 0; b < v.Width; b++ {
				var sum float64
				for m := DUEModeK(0); m < ModeCount; m++ {
					sum += v.Ch[m][b]
				}
				if d := sum - a.DUE[b]; d > tol || d < -tol {
					t.Errorf("%s[%d] bit %d: mode channels sum to %g, DUE = %g", p.Name, i, b, sum, a.DUE[b])
				}
			}
		}
		est := r.Estimate(nil, nil)
		mest := r.DUEModeEstimate(nil, nil)
		if d := mest.DUEMass - est.DUE; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: DUEModeEstimate mass %g != Estimate DUE %g", p.Name, mest.DUEMass, est.DUE)
		}
		if mest.Sites != est.Sites {
			t.Errorf("%s: mode estimate over %d sites, scalar over %d", p.Name, mest.Sites, est.Sites)
		}
		var shares float64
		for m := DUEModeK(0); m < ModeCount; m++ {
			shares += mest.Share(m)
		}
		if mest.DUEMass > 0 && (shares < 1-1e-9 || shares > 1+1e-9) {
			t.Errorf("%s: mode shares sum to %g, want 1", p.Name, shares)
		}
	}
}
