package analysis

import (
	"fmt"
	"math"
	"math/bits"

	"gpurel/internal/isa"
)

// ValueRange is a conservative signed interval for the 32-bit integer
// interpretation of a value: on every execution the value, read as
// int32, lies in [Lo, Hi]. Operations that may wrap the int32 domain
// widen to the full range rather than model modular arithmetic — the
// interval is only ever used to prove comparisons and address shapes,
// so "full" is always a sound answer. 64-bit windows (F64 bit patterns,
// register pairs) carry the full range.
type ValueRange struct {
	Lo, Hi int64
}

// rFull is the no-knowledge interval.
func rFull() ValueRange { return ValueRange{math.MinInt32, math.MaxInt32} }

// rConst is the singleton interval.
func rConst(v int64) ValueRange { return ValueRange{v, v} }

// rBound clamps an interval into the int32 domain, widening to full on
// inversion (callers construct Lo<=Hi, so inversion means overflow).
func rBound(lo, hi int64) ValueRange {
	if lo > hi || lo < math.MinInt32 || hi > math.MaxInt32 {
		return rFull()
	}
	return ValueRange{lo, hi}
}

// IsFull reports the no-knowledge interval.
func (r ValueRange) IsFull() bool {
	return r.Lo <= math.MinInt32 && r.Hi >= math.MaxInt32
}

// Const returns the singleton value, if the interval is one point.
func (r ValueRange) Const() (int64, bool) { return r.Lo, r.Lo == r.Hi }

// String renders the interval compactly.
func (r ValueRange) String() string {
	if r.IsFull() {
		return "[*]"
	}
	return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi)
}

// rUnion is the interval hull (meet over reaching definitions).
func rUnion(a, b ValueRange) ValueRange {
	return ValueRange{Lo: min(a.Lo, b.Lo), Hi: max(a.Hi, b.Hi)}
}

// rIntersect tightens one interval with another known-sound bound.
func rIntersect(a, b ValueRange) ValueRange {
	lo, hi := max(a.Lo, b.Lo), min(a.Hi, b.Hi)
	if lo > hi {
		// Contradictory facts can only arise on dead paths; keep the
		// tighter of the two rather than inventing an empty interval.
		return a
	}
	return ValueRange{lo, hi}
}

// rAdd/rNeg/rMul/rMin/rMax are the arithmetic transfers, widening to
// full whenever the int32 domain may wrap.
func rAdd(a, b ValueRange) ValueRange { return rBound(a.Lo+b.Lo, a.Hi+b.Hi) }

func rNeg(a ValueRange) ValueRange { return rBound(-a.Hi, -a.Lo) }

func rMul(a, b ValueRange) ValueRange {
	if a.IsFull() || b.IsFull() {
		return rFull()
	}
	p := [4]int64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		lo, hi = min(lo, v), max(hi, v)
	}
	return rBound(lo, hi)
}

func rMin(a, b ValueRange) ValueRange {
	return ValueRange{Lo: min(a.Lo, b.Lo), Hi: min(a.Hi, b.Hi)}
}

func rMax(a, b ValueRange) ValueRange {
	return ValueRange{Lo: max(a.Lo, b.Lo), Hi: max(a.Hi, b.Hi)}
}

// rShl multiplies by a power of two; rShr is the logical right shift
// (non-negative intervals shift exactly; a possibly-negative value
// reinterpreted as uint32 lands in [0, 2^(32-n))).
func rShl(a ValueRange, n int) ValueRange {
	if a.IsFull() || n >= 31 {
		return rFull()
	}
	return rBound(a.Lo<<uint(n), a.Hi<<uint(n))
}

func rShr(a ValueRange, n int) ValueRange {
	if n == 0 {
		return a
	}
	if a.Lo >= 0 && !a.IsFull() {
		return ValueRange{a.Lo >> uint(n), a.Hi >> uint(n)}
	}
	return ValueRange{0, int64(1)<<uint(32-n) - 1}
}

// rExpand widens an interval by ±delta: the hull of a value and that
// value with one bit of weight delta flipped.
func rExpand(a ValueRange, delta int64) ValueRange {
	return ValueRange{Lo: max(a.Lo-delta, math.MinInt32-1<<31), Hi: min(a.Hi+delta, math.MaxInt32+1<<31)}
}

// rFromKB converts a 32-bit known-bits fact to an interval: with the
// sign bit proven zero, the value is non-negative and bounded by the
// proven masks.
func rFromKB(k KnownBits) ValueRange {
	if k.Width != 32 || !k.ZeroAt(31) {
		return rFull()
	}
	return ValueRange{Lo: int64(k.Ones), Hi: int64(^k.Zeros & 0xffffffff)}
}

// kbFromRange converts a non-negative interval to proven high zeros:
// every bit at or above the bit-length of Hi is zero.
func kbFromRange(r ValueRange, w int) KnownBits {
	if w != 32 || r.Lo < 0 || r.Hi > math.MaxInt32 {
		return kbTop(w)
	}
	n := bits.Len64(uint64(r.Hi))
	out := kbTop(32)
	out.Zeros = ^(uint64(1)<<uint(n) - 1) & 0xffffffff
	return out
}

// cmpAlways evaluates a comparison over two intervals: (outcome, true)
// when the result is the same for every pair of values, else (_, false).
func cmpAlways(cmp isa.CmpOp, a, b ValueRange) (bool, bool) {
	switch cmp {
	case isa.CmpLT:
		if a.Hi < b.Lo {
			return true, true
		}
		if a.Lo >= b.Hi {
			return false, true
		}
	case isa.CmpLE:
		if a.Hi <= b.Lo {
			return true, true
		}
		if a.Lo > b.Hi {
			return false, true
		}
	case isa.CmpGT:
		if a.Lo > b.Hi {
			return true, true
		}
		if a.Hi <= b.Lo {
			return false, true
		}
	case isa.CmpGE:
		if a.Lo >= b.Hi {
			return true, true
		}
		if a.Hi < b.Lo {
			return false, true
		}
	case isa.CmpEQ:
		if av, ok := a.Const(); ok {
			if bv, ok2 := b.Const(); ok2 && av == bv {
				return true, true
			}
		}
		if a.Hi < b.Lo || a.Lo > b.Hi {
			return false, true
		}
	case isa.CmpNE:
		if a.Hi < b.Lo || a.Lo > b.Hi {
			return true, true
		}
		if av, ok := a.Const(); ok {
			if bv, ok2 := b.Const(); ok2 && av == bv {
				return false, true
			}
		}
	}
	return false, false
}
