package analysis_test

import (
	"testing"

	"gpurel/internal/analysis"
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/microbench"
	"gpurel/internal/suite"
)

// buildDeadTemps emits a kernel with author-level dead code: a dead
// multiply chain plus enough rewritable arithmetic that the legacy
// pipeline's every-4th-instruction move insertion lands on dead values
// too. The O2 pipeline's DCE strips all of it; the legacy pipeline
// keeps it and adds scratch moves on top — the codegen difference the
// paper blames for the SASSIFI-vs-NVBitFI AVF gap (§VI).
func buildDeadTemps(t *testing.T, opt asm.OptLevel) *isa.Program {
	t.Helper()
	b := asm.New("deadtemps", opt)
	x := b.R()
	d1 := b.R()
	d2 := b.R()
	d3 := b.R()
	out := b.R()
	b.MovImm(x, 7)
	b.IMul(d1, isa.R(x), isa.R(x))       // dead
	b.IMul(d2, isa.R(x), isa.R(d1))      // dead, feeds only d3
	b.IAdd(d3, isa.R(d2), isa.ImmInt(3)) // dead
	b.IAdd(out, isa.R(x), isa.ImmInt(1))
	addr := b.R()
	b.MovImm(addr, 0x80)
	b.Stg(addr, 0, out)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build O%d: %v", opt, err)
	}
	return p
}

// TestLegacyDeadFractionExceedsO2 is the static §VI check: the same
// source built by the legacy pipeline must show a measurably higher
// architecturally-dead fraction than the O2 pipeline.
func TestLegacyDeadFractionExceedsO2(t *testing.T) {
	legacy := analysis.DeadFraction(buildDeadTemps(t, asm.O1))
	modern := analysis.DeadFraction(buildDeadTemps(t, asm.O2))
	if modern != 0 {
		t.Errorf("O2 dead fraction = %.3f, want 0 (DCE strips the dead chain)", modern)
	}
	if legacy < modern+0.2 {
		t.Errorf("legacy dead fraction %.3f not measurably above O2's %.3f", legacy, modern)
	}
}

// TestLegacyMovesFlaggedDead checks the lint view of the same effect:
// the legacy build carries dead-store warnings, the O2 build none, and
// neither build has errors.
func TestLegacyMovesFlaggedDead(t *testing.T) {
	r1 := analysis.Analyze(buildDeadTemps(t, asm.O1))
	r2 := analysis.Analyze(buildDeadTemps(t, asm.O2))
	if errs := r1.Errors(); len(errs) != 0 {
		t.Errorf("legacy build has errors: %v", errs)
	}
	if errs := r2.Errors(); len(errs) != 0 {
		t.Errorf("O2 build has errors: %v", errs)
	}
	if len(r1.Warnings()) == 0 {
		t.Errorf("legacy build shows no dead-store warnings; want at least one")
	}
	if warns := r2.Warnings(); len(warns) != 0 {
		t.Errorf("O2 build warnings = %v, want none", warns)
	}
}

// TestRoundTripSuiteClean is the build -> analyze -> verify round trip
// over every built-in kernel and microbenchmark at both pipelines: if
// insertLegacyMoves or the O2 passes ever shifted a branch target or
// label, the analyzer would surface it as an unreachable block, a
// fall-off-the-end path, a use-before-def, or a split pair.
func TestRoundTripSuiteClean(t *testing.T) {
	for _, dev := range []*device.Device{device.K40c(), device.TitanV()} {
		for _, opt := range []asm.OptLevel{asm.O1, asm.O2} {
			for _, e := range suite.ForDevice(dev) {
				inst, err := e.Build(dev, opt)
				if err != nil {
					t.Fatalf("%s/%s O%d: %v", dev.Name, e.Name, opt, err)
				}
				seen := map[string]bool{}
				for _, l := range inst.Launches {
					if seen[l.Prog.Name] {
						continue
					}
					seen[l.Prog.Name] = true
					if errs := analysis.Analyze(l.Prog).Errors(); len(errs) != 0 {
						t.Errorf("%s/%s O%d %s: %v", dev.Name, e.Name, opt, l.Prog.Name, errs)
					}
				}
			}
			for _, m := range microbench.Catalog(dev) {
				inst, err := m.Build(dev, opt)
				if err != nil {
					t.Fatalf("%s/micro %s O%d: %v", dev.Name, m.Name, opt, err)
				}
				for _, l := range inst.Launches {
					if errs := analysis.Analyze(l.Prog).Errors(); len(errs) != 0 {
						t.Errorf("%s/micro %s O%d: %v", dev.Name, m.Name, opt, errs)
					}
				}
			}
		}
	}
}
