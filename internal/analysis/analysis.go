// Package analysis is a static dataflow analyzer for the SASS-like IR of
// internal/isa. It constructs a basic-block control-flow graph from the
// BRA/SSY/SYNC/EXIT terminators, runs backward liveness and reaching-
// definition (def-use) analysis over the general-purpose and predicate
// register files — handling F64 register pairs, wide loads/stores, and
// MMA fragments via DstRegs/SrcRegSpans — and from those computes
// per-instruction ACE (Architecturally Correct Execution) fractions: the
// analytically-derived probability that a bit flipped in an
// instruction's destination reaches program output.
//
// Three consumers build on the analyzer:
//
//   - StaticAVF / Result.Estimate produce injection-free AVF estimates
//     that internal/fit's Eq. 1-4 predictor accepts as a drop-in
//     replacement for injection-derived AVFs, and that internal/faultinj
//     cross-validates against dynamic campaigns.
//   - Result.Findings is a lint report: dead stores, unreachable blocks,
//     use-before-def registers, and SSY divergence-without-reconvergence
//     hazards. internal/asm's verifier rejects the Error-severity subset
//     at build time; cmd/gpurel-lint reports everything.
//   - DeadFraction measures the architecturally-dead share of a program,
//     the static analogue of the ~18% SASSIFI-vs-NVBitFI AVF gap the
//     paper attributes to toolchain codegen differences (§VI).
//
// The analyzer is purely architectural: it sees register dataflow, not
// memory contents, scheduler state, or pipeline latches. Faults in
// structures it cannot see (the §VII DUE sources) are out of scope and
// tracked as ROADMAP follow-on work.
package analysis

import "gpurel/internal/isa"

// Result bundles every product of one analyzer run over a program.
type Result struct {
	Prog *isa.Program
	CFG  *CFG

	// LiveOut / PredLiveOut give, per instruction, the registers whose
	// values may still be read on some path after it executes.
	LiveOut     []RegSet
	PredLiveOut []PredSet

	// ACE holds the scalar per-instruction ACE fractions (see ace.go),
	// kept as the legacy/fallback estimator the bit-resolved model is
	// compared against.
	ACE []InstrACE

	// ACEVec holds the bit-resolved ACE vectors (see bitflow.go).
	ACEVec []ACEVector

	// DUEModeVec holds the per-bit DUE-mode split of each ACEVec entry's
	// DUE channel (see duemode.go).
	DUEModeVec []DUEModeVec

	// Facts / PredFacts are the forward known-bits/range facts per
	// definition and the proven SETP outcomes.
	Facts     []ValueFact
	PredFacts []PredFact

	// Bounds is the launch geometry the forward pass was seeded with
	// (nil when analyzed without one).
	Bounds *Bounds

	// DefUse holds the def-use edges the ACE propagation walked.
	DefUse *DefUse

	// Findings is the lint report, in instruction order.
	Findings []Finding

	bf *bitflow
}

// Analyze runs the full pipeline — CFG, liveness, reaching definitions,
// known-bits/range abstract interpretation, scalar and bit-resolved ACE
// propagation, lint — over one program, without launch-geometry seeding.
func Analyze(p *isa.Program) *Result { return AnalyzeLaunch(p, nil) }

// AnalyzeLaunch is Analyze with the forward pass seeded from a launch
// geometry: thread-index special registers get the bounds the geometry
// implies, which tightens the ranges behind guard compares and masks.
func AnalyzeLaunch(p *isa.Program, bounds *Bounds) *Result {
	r := &Result{Prog: p, Bounds: bounds}
	r.CFG = BuildCFG(p)
	r.LiveOut, r.PredLiveOut = liveness(p, r.CFG)
	r.DefUse = buildDefUse(p, r.CFG)
	r.ACE = propagateACE(p, r.DefUse)
	r.bf = newBitflow(p, r.DefUse, bounds)
	r.bf.forward()
	r.Facts, r.PredFacts = r.bf.facts, r.bf.preds
	r.ACEVec = r.bf.propagateVec()
	r.DUEModeVec = r.bf.propagateModes(r.ACEVec)
	r.Findings = lint(r)
	return r
}

// Errors returns the Error-severity findings.
func (r *Result) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Sev == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Warnings returns the Warn-severity findings.
func (r *Result) Warnings() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Sev == SevWarn {
			out = append(out, f)
		}
	}
	return out
}
