package analysis

import (
	"fmt"

	"gpurel/internal/isa"
)

// Severity grades a lint finding.
type Severity uint8

// Severities. Errors are the subset the assembler's verifier rejects at
// build time; warnings are reported by cmd/gpurel-lint.
const (
	SevWarn Severity = iota
	SevError
)

// String names the severity.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Finding kinds.
const (
	KindDeadStore    = "dead-store"
	KindDeadLoad     = "dead-load"
	KindDeadPred     = "dead-pred"
	KindUnreachable  = "unreachable"
	KindUseBeforeDef = "use-before-def"
	KindFallOffEnd   = "fall-off-end"
	KindSSYNoBranch  = "ssy-no-divergent-branch"
	KindSSYBackward  = "ssy-backward-target"
	KindSSYPastEnd   = "ssy-target-past-end"
	KindSyncNoRegion = "sync-outside-ssy-region"
	KindPairSplitBra = "branch-splits-pair"
	// Bit-level findings (see bitflow.go).
	KindConstResult     = "constant-result"
	KindDeadBitSpan     = "dead-bit-span"
	KindRangeDeadBranch = "range-dead-branch"
	// Optimization-matrix findings (see optFindings below): static
	// reliability-hostile codegen shapes the matrix makes measurable.
	KindLongLiveRange = "long-live-range"
	KindSpillExposure = "spill-exposure"
	KindUnrollACEMass = "unroll-ace-inflation"
	// DUE-mode exposure findings (see dueModeFindings below): sites
	// whose flips provably reach one of the typed DUE mechanisms.
	KindUnboundedLoopExposure = "unbounded-loop-exposure"
	KindUnguardedAddressArith = "unguarded-address-arith"
	KindSyncFragileRegion     = "sync-fragile-region"
)

// Finding is one lint diagnostic, anchored to an instruction index.
type Finding struct {
	Sev   Severity `json:"severity"`
	Kind  string   `json:"kind"`
	Instr int      `json:"instr"`
	Msg   string   `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s[%s] /*%04d*/ %s", f.Sev, f.Kind, f.Instr, f.Msg)
}

// lint assembles the full report for an analyzed program.
func lint(r *Result) []Finding {
	p := r.Prog
	var out []Finding

	out = append(out, ControlHazards(p)...)

	for _, id := range r.CFG.FallsOff {
		b := r.CFG.Blocks[id]
		if !r.CFG.Reachable[id] {
			continue
		}
		out = append(out, Finding{
			Sev: SevError, Kind: KindFallOffEnd, Instr: b.Last(),
			Msg: fmt.Sprintf("control flow reaches past the last instruction (block %d): instruction-fetch DUE", id),
		})
	}

	for _, b := range r.CFG.Blocks {
		if !r.CFG.Reachable[b.ID] {
			out = append(out, Finding{
				Sev: SevError, Kind: KindUnreachable, Instr: b.Start,
				Msg: fmt.Sprintf("block %d (instructions %d..%d) is unreachable", b.ID, b.Start, b.End-1),
			})
		}
	}

	for _, u := range r.DefUse.Uninit {
		var what string
		if u.IsPred {
			what = u.Pred.String()
		} else {
			what = u.Reg.String()
		}
		out = append(out, Finding{
			Sev: SevError, Kind: KindUseBeforeDef, Instr: u.Instr,
			Msg: fmt.Sprintf("%s may be read before any definition: %s", what, p.Instrs[u.Instr].String()),
		})
	}

	// Dead writes: liveness-based, flow-sensitive. Only side-effect-free
	// results qualify; a dead load is split out because removing one
	// also removes a potential address DUE (a real behavioural change).
	for _, b := range r.CFG.Blocks {
		if !r.CFG.Reachable[b.ID] {
			continue // already reported as unreachable
		}
		for i := b.Start; i < b.End; i++ {
			in := &p.Instrs[i]
			if n := in.DstRegs(); n > 0 {
				live := false
				for k := 0; k < n; k++ {
					if r.LiveOut[i].Has(in.Dst + isa.Reg(k)) {
						live = true
						break
					}
				}
				if !live {
					kind := KindDeadStore
					if in.Op == isa.OpLDG || in.Op == isa.OpLDS {
						kind = KindDeadLoad
					}
					out = append(out, Finding{
						Sev: SevWarn, Kind: kind, Instr: i,
						Msg: fmt.Sprintf("result %s is never read: %s", in.Dst, in.String()),
					})
				}
			}
			if pr, ok := in.WritesPredReg(); ok && !r.PredLiveOut[i].Has(pr) {
				out = append(out, Finding{
					Sev: SevWarn, Kind: KindDeadPred, Instr: i,
					Msg: fmt.Sprintf("predicate %s is never read: %s", pr, in.String()),
				})
			}
		}
	}
	out = append(out, bitFindings(r)...)
	out = append(out, optFindings(r)...)
	out = append(out, dueModeFindings(r)...)
	return out
}

// dueModeFindings reports the sites whose DUE exposure is dominated by
// one of the typed mechanisms, each anchored to the mode propagation's
// proofs rather than to opcode pattern-matching: a trip-count value the
// range lattice could not prove flip-immune on the way to a loop
// backedge, an address chain whose flips can carry the effective
// address outside the statically proven window, and values or
// predicates feeding the reconvergence machinery.
// dueModeFindings reports DUE-mode exposures the prover tried and
// failed to discharge. Each finding anchors to a failed proof rather
// than to raw mode mass, so ordinary shapes — a counted loop, a
// constant-window address, a divergent diamond — stay clean:
//
//   - unbounded-loop-exposure: a conditional backedge whose guard
//     compare has no range knowledge on either side. The trip count is
//     statically unbounded, so every flip in the condition chain is
//     hang exposure; a compare against any bounded operand suppresses
//     the finding.
//   - unguarded-address-arith: an address-feeding value whose low-bit
//     band still carries illegal-address mass — the page-window
//     containment proof (duemode.go) failed, where a proven window
//     zeroes the band exactly.
//   - sync-fragile-region: a predicate that directly gates BAR/SYNC
//     participation (a divergent barrier is a guaranteed sync DUE in
//     the simulator), or a value whose transitive sync-error exposure
//     exceeds the one-compare trickle bound.
func dueModeFindings(r *Result) []Finding {
	if r.DUEModeVec == nil || r.bf == nil {
		return nil
	}
	p := r.Prog
	var out []Finding
	flaggedBackedge := make(map[int]bool)
	for _, blk := range r.CFG.Blocks {
		if !r.CFG.Reachable[blk.ID] {
			continue
		}
		for i := blk.Start; i < blk.End; i++ {
			in := &p.Instrs[i]
			if in.Op == isa.OpISETP {
				for _, e := range r.DefUse.Out[i] {
					use := &p.Instrs[e.Use]
					if e.Kind != EdgeBranchGuard || use.Op != isa.OpBRA || use.Target > e.Use || flaggedBackedge[e.Use] {
						continue
					}
					if r.bf.operandFact(i, 0).R != rFull() || r.bf.operandFact(i, 1).R != rFull() {
						continue // some range knowledge bounds the trip count
					}
					flaggedBackedge[e.Use] = true
					out = append(out, Finding{
						Sev: SevWarn, Kind: KindUnboundedLoopExposure, Instr: e.Use,
						Msg: fmt.Sprintf("backedge guard at %d proves no trip-count bound; flips in its condition chain hang (%.0f%% exposure): %s",
							i, 100*r.DUEModeVec[i].Mean(ModeHang), in.String()),
					})
				}
			}
			if _, ok := in.WritesPredReg(); ok {
				for _, e := range r.DefUse.Out[i] {
					use := &p.Instrs[e.Use]
					if e.Kind == EdgeBranchGuard && (use.Op == isa.OpBAR || use.Op == isa.OpSYNC) {
						out = append(out, Finding{
							Sev: SevWarn, Kind: KindSyncFragileRegion, Instr: i,
							Msg: fmt.Sprintf("predicate gates %s participation at %d; a flipped guard diverges the barrier (%.0f%% sync-error exposure): %s",
								use.Op, e.Use, 100*r.DUEModeVec[i].Mean(ModeSyncError), in.String()),
						})
						break
					}
				}
			}
			v := &r.DUEModeVec[i]
			if v.Width < 32 || r.ACEVec[i].Dead() {
				continue
			}
			feedsAddr := false
			for _, e := range r.DefUse.Out[i] {
				if e.Kind == EdgeAddr {
					feedsAddr = true
					break
				}
			}
			if feedsAddr {
				var low float64
				for b := 0; b < AddrPageBits; b++ {
					low += v.Ch[ModeIllegalAddress][b]
				}
				low /= AddrPageBits
				if low >= AddrExposureMin {
					out = append(out, Finding{
						Sev: SevWarn, Kind: KindUnguardedAddressArith, Instr: i,
						Msg: fmt.Sprintf("address low bits lack an in-window containment proof (%.0f%% low-band illegal-address exposure): %s",
							100*low, in.String()),
					})
				}
			}
			if s := v.Mean(ModeSyncError); s >= SyncExposureMin {
				out = append(out, Finding{
					Sev: SevWarn, Kind: KindSyncFragileRegion, Instr: i,
					Msg: fmt.Sprintf("flips here corrupt reconvergence or barrier participation (%.0f%% mean sync-error exposure): %s",
						100*s, in.String()),
				})
			}
		}
	}
	return out
}

// optFindings reports the reliability-hostile codegen shapes the
// optimization matrix varies: values resident in the register file for
// long stretches, spill round trips that park live values in shared
// memory, and unrolled bodies that replicate live (ACE-carrying)
// computation. Each is anchored to a proven static property — a def-use
// span, an STS→LDS window, a tandem repeat with its summed ACE mass —
// not to a heuristic about intent.
func optFindings(r *Result) []Finding {
	p := r.Prog
	var out []Finding

	for i := range p.Instrs {
		if p.Instrs[i].DstRegs() == 0 || !r.reachable(i) {
			continue
		}
		if span := r.liveSpan(i); span >= LongLiveRangeMin {
			out = append(out, Finding{
				Sev: SevWarn, Kind: KindLongLiveRange, Instr: i,
				Msg: fmt.Sprintf("value is register-resident for %d instructions before its last use (threshold %d): %s",
					span, LongLiveRangeMin, p.Instrs[i].String()),
			})
		}
	}

	for _, sp := range spillPairs(r) {
		if gap := sp.load - sp.store; gap >= SpillExposureMin {
			out = append(out, Finding{
				Sev: SevWarn, Kind: KindSpillExposure, Instr: sp.store,
				Msg: fmt.Sprintf("%s spills through shared memory for %d instructions (reload at %d): exposure moves to the memory window",
					sp.reg, gap, sp.load),
			})
		}
	}

	out = append(out, unrollFindings(r)...)
	return out
}

// unrollFindings detects tandem-repeated instruction bodies — the
// static footprint of an unrolled loop — and reports the ones whose
// repeated region carries enough unmasked ACE mass to matter. Each
// extra body copy is that many more live destination bits for a fault
// to land in, the mechanism behind unrolling's cross-section cost.
func unrollFindings(r *Result) []Finding {
	p := r.Prog
	var out []Finding
	for _, blk := range r.CFG.Blocks {
		if !r.CFG.Reachable[blk.ID] {
			continue
		}
		for i := blk.Start; i < blk.End; {
			q, k := tandemRepeat(p, i, blk.End)
			if k < 2 {
				i++
				continue
			}
			var mass float64
			for j := i; j < i+q*k; j++ {
				v := &r.ACEVec[j]
				for b := 0; b < v.Width; b++ {
					mass += v.Unmasked(b)
				}
			}
			if mass >= UnrollACEMassMin {
				out = append(out, Finding{
					Sev: SevWarn, Kind: KindUnrollACEMass, Instr: i,
					Msg: fmt.Sprintf("%d copies of a %d-instruction body (instructions %d..%d) carry %.0f unmasked ACE bits: unrolling replicated live computation",
						k, q, i, i+q*k-1, mass),
				})
			}
			i += q * k
		}
	}
	return out
}

// tandemRepeat finds the smallest period q >= UnrollBodyMin such that
// the opcode sequence starting at i repeats consecutively within
// [i, end), returning the period and repeat count (k < 2: no repeat).
// Opcode equality plus matching immediate-vs-register operand shape
// keeps address arithmetic runs from matching accidentally.
func tandemRepeat(p *isa.Program, i, end int) (q, k int) {
	for q = UnrollBodyMin; i+2*q <= end; q++ {
		k = 1
		for i+(k+1)*q <= end && sameBody(p, i, i+k*q, q) {
			k++
		}
		if k >= 2 {
			return q, k
		}
	}
	return 0, 1
}

// sameBody compares two instruction windows by opcode and operand
// shape.
func sameBody(p *isa.Program, a, b, n int) bool {
	for j := 0; j < n; j++ {
		x, y := &p.Instrs[a+j], &p.Instrs[b+j]
		if x.Op != y.Op {
			return false
		}
		for s := range x.Srcs {
			if x.Srcs[s].IsImm != y.Srcs[s].IsImm {
				return false
			}
		}
	}
	return true
}

// bitFindings reports what the bit-level analysis proved: instructions
// computing provably-constant results, live results with long provably
// dead bit spans, and conditional branches whose guard is provably
// constant under the derived value ranges.
func bitFindings(r *Result) []Finding {
	if r.bf == nil {
		return nil
	}
	p := r.Prog
	var out []Finding
	for _, b := range r.CFG.Blocks {
		if !r.CFG.Reachable[b.ID] {
			continue
		}
		for i := b.Start; i < b.End; i++ {
			in := &p.Instrs[i]
			v := &r.ACEVec[i]

			// Constant results: every destination bit proven, on a
			// value something actually consumes (dead ones are already
			// dead-store findings) and an opcode that computes (moves
			// and S2R reads are constant by construction, not by
			// simplifiable dataflow). Folding a computation whose inputs
			// are all constant is routine address setup, not a masking
			// insight — the finding requires a non-constant input.
			switch in.Op {
			case isa.OpMOV, isa.OpMOV32I, isa.OpS2R:
			default:
				if in.DstRegs() > 0 && r.Facts[i].KB.IsConst() && !v.Dead() && !r.bf.allSrcConst(i) {
					out = append(out, Finding{
						Sev: SevWarn, Kind: KindConstResult, Instr: i,
						Msg: fmt.Sprintf("result is provably constant 0x%x: %s",
							r.Facts[i].KB.Const(), in.String()),
					})
				}
			}

			// Dead bit spans: a live destination with a long contiguous
			// run of provably-masked bits. Half-precision producers are
			// exempt — their architecturally-narrow high half is by
			// design, not a finding.
			if v.Width >= 32 && !v.Dead() && in.Op.TypeOf() != isa.F16 {
				if start, length := v.LongestDeadSpan(); length >= DeadBitSpanMin {
					out = append(out, Finding{
						Sev: SevWarn, Kind: KindDeadBitSpan, Instr: i,
						Msg: fmt.Sprintf("destination bits %d..%d (%d of %d) are provably masked: %s",
							start, start+length-1, length, v.Width, in.String()),
					})
				}
			}

			// Range-dead branch arms: a conditional branch whose guard
			// the forward pass proved constant through an actual range
			// argument (a constant-vs-constant compare is just folding).
			if in.Op == isa.OpBRA && !in.Unconditional() {
				if taken, nontriv, known := r.bf.branchAlways(i); known && nontriv {
					arm := "fall-through"
					if !taken {
						arm = "taken"
					}
					out = append(out, Finding{
						Sev: SevWarn, Kind: KindRangeDeadBranch, Instr: i,
						Msg: fmt.Sprintf("guard is provably %v under derived ranges; the %s arm is unreachable from here: %s",
							taken, arm, in.String()),
					})
				}
			}
		}
	}
	return out
}

// ControlHazards performs the whole-program control-flow checks that do
// not need dataflow: SSY/reconvergence pairing, SYNC region coverage,
// and branch targets that split a multi-register initialization
// sequence. internal/asm's verifier rejects these at build time.
func ControlHazards(p *isa.Program) []Finding {
	var out []Finding
	n := len(p.Instrs)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case isa.OpSSY:
			switch {
			case in.Target <= i:
				out = append(out, Finding{
					Sev: SevError, Kind: KindSSYBackward, Instr: i,
					Msg: fmt.Sprintf("SSY reconvergence target %d does not follow the SSY", in.Target),
				})
			case in.Target >= n:
				out = append(out, Finding{
					Sev: SevError, Kind: KindSSYPastEnd, Instr: i,
					Msg: fmt.Sprintf("SSY reconvergence target %d is past the last instruction", in.Target),
				})
			default:
				// The engine hands pendingReconv to the next BRA; an SSY
				// with no conditional branch before its reconvergence
				// point leaves a stale pending target for an unrelated
				// later branch to consume.
				matched := false
				for j := i + 1; j < in.Target; j++ {
					if p.Instrs[j].Op == isa.OpBRA && !p.Instrs[j].Unconditional() {
						matched = true
						break
					}
				}
				if !matched {
					out = append(out, Finding{
						Sev: SevError, Kind: KindSSYNoBranch, Instr: i,
						Msg: fmt.Sprintf("SSY at %d has no divergent branch before its reconvergence point %d", i, in.Target),
					})
				}
			}
		case isa.OpSYNC:
			covered := false
			for j := i - 1; j >= 0; j-- {
				if p.Instrs[j].Op == isa.OpSSY && p.Instrs[j].Target > i {
					covered = true
					break
				}
			}
			if !covered {
				out = append(out, Finding{
					Sev: SevError, Kind: KindSyncNoRegion, Instr: i,
					Msg: fmt.Sprintf("SYNC at %d is outside every SSY region: the engine faults", i),
				})
			}
		}
	}
	out = append(out, pairSplitHazards(p)...)
	return out
}

// pairSplitHazards flags branch targets that land inside a contiguous
// initialization run of a register span some instruction consumes whole
// (an F64 pair or MMA fragment): jumping mid-run executes only part of
// the initialization and leaves the rest of the span stale.
func pairSplitHazards(p *isa.Program) []Finding {
	n := len(p.Instrs)
	if n == 0 {
		return nil
	}

	// Multi-register source spans consumed anywhere in the program.
	type span struct {
		base isa.Reg
		cnt  int
	}
	consumed := make(map[span]bool)
	for i := range p.Instrs {
		for _, s := range srcSpans(&p.Instrs[i]) {
			if s.N >= 2 {
				consumed[span{s.Base, s.N}] = true
			}
		}
	}
	if len(consumed) == 0 {
		return nil
	}

	// Branch targets, with the branch that jumps there.
	targets := make(map[int][]int)
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.OpBRA && p.Instrs[i].Target >= 0 && p.Instrs[i].Target < n {
			targets[p.Instrs[i].Target] = append(targets[p.Instrs[i].Target], i)
		}
	}
	if len(targets) == 0 {
		return nil
	}

	var out []Finding
	// Maximal runs of unconditional single-register writes to
	// consecutive ascending registers.
	for i := 0; i < n; {
		if !singleRegWrite(&p.Instrs[i]) {
			i++
			continue
		}
		j := i + 1
		for j < n && singleRegWrite(&p.Instrs[j]) &&
			p.Instrs[j].Dst == p.Instrs[j-1].Dst+1 {
			j++
		}
		runBase := p.Instrs[i].Dst
		runLen := j - i
		if runLen >= 2 {
			for sp := range consumed {
				if sp.base < runBase || int(sp.base)+sp.cnt > int(runBase)+runLen {
					continue
				}
				subStart := i + int(sp.base-runBase)
				subEnd := subStart + sp.cnt - 1
				for t := subStart + 1; t <= subEnd; t++ {
					for _, bra := range targets[t] {
						out = append(out, Finding{
							Sev: SevError, Kind: KindPairSplitBra, Instr: bra,
							Msg: fmt.Sprintf("branch at %d targets %d, splitting the initialization of %s..%s consumed as a %d-register span",
								bra, t, sp.base, sp.base+isa.Reg(sp.cnt-1), sp.cnt),
						})
					}
				}
			}
		}
		i = j
	}
	return out
}

// singleRegWrite reports an unconditional write of exactly one GPR.
func singleRegWrite(in *isa.Instr) bool {
	return in.Unconditional() && in.DstRegs() == 1
}
