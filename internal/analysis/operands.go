package analysis

import "gpurel/internal/isa"

// UseKind classifies the role a source register span plays in its
// consumer, which determines the ACE transfer applied along the def-use
// edge (see ace.go).
type UseKind uint8

// Source roles.
const (
	UseData     UseKind = iota // value operand of arithmetic, moves, MMA
	UseAddr                    // address operand of a memory operation
	UseStoreVal                // value stored to memory (STG/STS/RED)
	UseCmp                     // SETP comparison source
)

// SrcSpan is one source register span with its role. It mirrors
// isa.Instr.SrcRegSpans — same spans, same order — so liveness and the
// simulator agree on what an instruction reads. Slot records which
// Instr.Srcs operand the span came from, which the bit-level analysis
// needs to pair a register with the other operands of its consumer.
type SrcSpan struct {
	Base isa.Reg
	N    int
	Kind UseKind
	Slot int8
}

// srcSpans lists the instruction's source register spans with roles.
func srcSpans(in *isa.Instr) []SrcSpan {
	var spans []SrcSpan
	add := func(r isa.Reg, n int, k UseKind, slot int) {
		if r != isa.RZ {
			spans = append(spans, SrcSpan{Base: r, N: n, Kind: k, Slot: int8(slot)})
		}
	}
	switch in.Op {
	case isa.OpHMMA:
		add(in.Srcs[0].Reg, 4, UseData, 0)
		add(in.Srcs[1].Reg, 4, UseData, 1)
		add(in.Srcs[2].Reg, 8, UseData, 2)
	case isa.OpFMMA:
		add(in.Srcs[0].Reg, 8, UseData, 0)
		add(in.Srcs[1].Reg, 8, UseData, 1)
		add(in.Srcs[2].Reg, 8, UseData, 2)
	case isa.OpDADD, isa.OpDMUL, isa.OpDFMA, isa.OpDSETP:
		kind := UseData
		if in.Op == isa.OpDSETP {
			kind = UseCmp
		}
		for i, s := range in.Srcs {
			if !s.IsImm && (i < 2 || in.Op == isa.OpDFMA) {
				add(s.Reg, 2, kind, i)
			}
		}
	case isa.OpSTG, isa.OpSTS:
		add(in.Srcs[0].Reg, 1, UseAddr, 0)
		n := 1
		if in.Wide {
			n = 2
		}
		add(in.Srcs[2].Reg, n, UseStoreVal, 2)
	case isa.OpLDG, isa.OpLDS, isa.OpRED:
		add(in.Srcs[0].Reg, 1, UseAddr, 0)
		if in.Op == isa.OpRED {
			add(in.Srcs[2].Reg, 1, UseStoreVal, 2)
		}
	case isa.OpF2F:
		n := 1
		if in.CvtFrom == isa.F64 {
			n = 2
		}
		if !in.Srcs[0].IsImm {
			add(in.Srcs[0].Reg, n, UseData, 0)
		}
	default:
		kind := UseData
		switch in.Op {
		case isa.OpISETP, isa.OpFSETP, isa.OpHSETP:
			kind = UseCmp
		}
		for i := 0; i < isa.NumSrcs(in.Op); i++ {
			if !in.Srcs[i].IsImm {
				add(in.Srcs[i].Reg, 1, kind, i)
			}
		}
	}
	return spans
}

// instrUses collects the GPR and predicate registers the instruction
// reads: its source spans, its guard predicate, and SEL's condition.
func instrUses(in *isa.Instr) (RegSet, PredSet) {
	var g RegSet
	var p PredSet
	for _, s := range srcSpans(in) {
		g.AddSpan(s.Base, s.N)
	}
	for _, pr := range in.ReadsPredRegs(nil) {
		p.Add(pr)
	}
	return g, p
}

// instrDefs collects the GPR and predicate registers the instruction
// writes. Whether a def also kills (for liveness) depends on the guard:
// a predicated write may not execute, so it never kills.
func instrDefs(in *isa.Instr) (RegSet, PredSet) {
	var g RegSet
	var p PredSet
	if n := in.DstRegs(); n > 0 {
		g.AddSpan(in.Dst, n)
	}
	if pr, ok := in.WritesPredReg(); ok {
		p.Add(pr)
	}
	return g, p
}
