package analysis

import (
	"math"
	"testing"

	"gpurel/internal/isa"
)

func sts(addr isa.Reg, off uint32, val isa.Reg) isa.Instr {
	in := raw(isa.OpSTS, isa.RZ, addr)
	in.Srcs[1] = isa.Imm(off)
	in.Srcs[2] = isa.R(val)
	return in
}

func lds(dst, addr isa.Reg, off uint32) isa.Instr {
	in := raw(isa.OpLDS, dst, addr)
	in.Srcs[1] = isa.Imm(off)
	return in
}

func hasKind(fs []Finding, kind string) bool {
	for _, f := range fs {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

func TestExplainStraightLine(t *testing.T) {
	p := prog("explain",
		movi(rr(0)),                        // 0: span 1 (used at 1)
		wide(raw(isa.OpLDG, rr(2), rr(0))), // 1: R2,R3; span 1 (used at 2)
		dadd(rr(4), rr(2), rr(2)),          // 2: R4,R5; span 2 (used at 4)
		movi(rr(6)),                        // 3: span 1 (used at 4)
		wide(stg(rr(6), rr(4))),            // 4
		exit(),
	)
	r := Analyze(p)
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	e := r.Explain(nil)
	if e.Instrs != 6 {
		t.Errorf("Instrs = %d, want 6", e.Instrs)
	}
	if e.MaxLiveRange != 2 {
		t.Errorf("MaxLiveRange = %d, want 2 (DADD def to wide store)", e.MaxLiveRange)
	}
	if want := 1.25; math.Abs(e.MeanLiveRange-want) > 1e-9 {
		t.Errorf("MeanLiveRange = %g, want %g", e.MeanLiveRange, want)
	}
	// Peak pressure is after instruction 3: R4, R5, and the address R6.
	if e.MaxPressure != 3 {
		t.Errorf("MaxPressure = %d, want 3", e.MaxPressure)
	}
	if e.SpillPairs != 0 || e.SpillExposure != 0 {
		t.Errorf("spill metrics nonzero on spill-free code: %+v", e)
	}
	if e.ACEMass <= 0 {
		t.Errorf("ACEMass = %g, want > 0 (a stored value is unmasked)", e.ACEMass)
	}
}

// A definition whose only consumer sits at a smaller index is
// loop-carried: its residency spans the back edge, wrapping around the
// program end.
func TestLiveSpanWraparound(t *testing.T) {
	p := prog("wrap",
		movi(rr(2)),                 // 0: initial def (first-iteration use at 1)
		iadd(rr(0), rr(2), rr(2)),   // 1: loop head, consumes R2
		movi(rr(2)),                 // 2: loop def, reaches 1 via the back edge
		isetp(pp(0), rr(0), isa.RZ), // 3
		braIf(pp(0), false, 1),      // 4
		movi(rr(1)),                 // 5: address
		stg(rr(1), rr(0)),           // 6
		exit(),                      // 7
	)
	r := Analyze(p)
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	// def at 2, use at 1: d = n - i + use = 8 - 2 + 1 = 7.
	if got := r.liveSpan(2); got != 7 {
		t.Errorf("loop-carried liveSpan = %d, want 7", got)
	}
	if got := r.liveSpan(0); got != 1 {
		t.Errorf("straight-line liveSpan = %d, want 1", got)
	}
}

func TestSpillPairDetection(t *testing.T) {
	base := func(middle ...isa.Instr) *isa.Program {
		instrs := []isa.Instr{
			movi(rr(0)), // 0: shared address
			movi(rr(1)), // 1: value
			sts(rr(0), 0, rr(1)),
		}
		instrs = append(instrs, middle...)
		instrs = append(instrs,
			lds(rr(1), rr(0), 0),
			movi(rr(2)), // global address
			stg(rr(2), rr(1)),
			exit(),
		)
		return prog("spill", instrs...)
	}

	r := Analyze(base(iadd(rr(3), rr(1), rr(1)), stg(rr(0), rr(3))))
	pairs := spillPairs(r)
	if len(pairs) != 1 {
		t.Fatalf("got %d spill pairs, want 1", len(pairs))
	}
	if pairs[0].store != 2 || pairs[0].load != 5 || pairs[0].reg != rr(1) {
		t.Errorf("pair = %+v, want store 2, load 5, R1", pairs[0])
	}
	e := r.Explain(nil)
	if e.SpillPairs != 1 || e.SpillExposure != 3 || e.MeanSpillGap != 3 {
		t.Errorf("spill metrics = %+v, want 1 pair, exposure 3, gap 3", e)
	}

	// Rewriting the address register between store and reload loses the
	// trail: no pair.
	if ps := spillPairs(Analyze(base(movi(rr(0))))); len(ps) != 0 {
		t.Errorf("address rewrite still matched: %+v", ps)
	}
	// Overwriting the slot before the reload: no pair.
	if ps := spillPairs(Analyze(base(sts(rr(0), 0, rr(2))))); len(ps) != 0 {
		t.Errorf("overwritten slot still matched: %+v", ps)
	}
	// A reload at a different offset is a tile exchange, not a spill.
	off := base()
	off.Instrs[3] = lds(rr(1), rr(0), 4)
	if ps := spillPairs(Analyze(off)); len(ps) != 0 {
		t.Errorf("different offset still matched: %+v", ps)
	}
}

func TestLongLiveRangeFinding(t *testing.T) {
	build := func(fillers int) *isa.Program {
		instrs := []isa.Instr{movi(rr(0)), movi(rr(1))}
		for i := 0; i < fillers; i++ {
			instrs = append(instrs, iadd(rr(1), rr(1), rr(1)))
		}
		instrs = append(instrs,
			iadd(rr(3), rr(0), rr(1)), // furthest use of the R0 def
			movi(rr(2)),
			stg(rr(2), rr(3)),
			exit(),
		)
		return prog("liverange", instrs...)
	}
	// 28 fillers: R0 defined at 0, consumed at 30 — span 30 >= 28.
	r := Analyze(build(28))
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !hasKind(r.Warnings(), KindLongLiveRange) {
		t.Errorf("span 30 not flagged (threshold %d)", LongLiveRangeMin)
	}
	// 25 fillers: span 27, just under the threshold.
	if hasKind(Analyze(build(25)).Warnings(), KindLongLiveRange) {
		t.Errorf("span 27 flagged below threshold %d", LongLiveRangeMin)
	}
}

func TestSpillExposureFinding(t *testing.T) {
	p := prog("spillwarn",
		movi(rr(0)),
		movi(rr(1)),
		sts(rr(0), 0, rr(1)),
		iadd(rr(3), rr(1), rr(1)),
		stg(rr(0), rr(3)),
		lds(rr(1), rr(0), 0), // gap 3 >= SpillExposureMin
		movi(rr(2)),
		stg(rr(2), rr(1)),
		exit(),
	)
	r := Analyze(p)
	if !hasKind(r.Warnings(), KindSpillExposure) {
		t.Errorf("spill gap 3 not flagged (threshold %d)", SpillExposureMin)
	}
	// Immediate reload (gap 1) stays under the threshold.
	q := prog("spilltight",
		movi(rr(0)),
		movi(rr(1)),
		sts(rr(0), 0, rr(1)),
		lds(rr(1), rr(0), 0),
		movi(rr(2)),
		stg(rr(2), rr(1)),
		exit(),
	)
	if hasKind(Analyze(q).Warnings(), KindSpillExposure) {
		t.Errorf("gap 1 flagged below threshold %d", SpillExposureMin)
	}
}

func TestUnrollACEMassFinding(t *testing.T) {
	// Four copies of a live three-instruction body: each copy's stored
	// value keeps ~64 destination bits unmasked, so the repeated region
	// carries well over UnrollACEMassMin.
	var instrs []isa.Instr
	instrs = append(instrs, movi(rr(0))) // shared global address
	for i := 0; i < 4; i++ {
		instrs = append(instrs,
			movi(rr(1)),
			iadd(rr(2), rr(1), rr(1)),
			stg(rr(0), rr(2)),
		)
	}
	instrs = append(instrs, exit())
	r := Analyze(prog("unrolled", instrs...))
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !hasKind(r.Warnings(), KindUnrollACEMass) {
		t.Errorf("4x live unrolled body not flagged (threshold %.0f)", UnrollACEMassMin)
	}
	// Two copies of a two-instruction body: under UnrollBodyMin, no
	// tandem repeat regardless of mass.
	short := prog("shortbody",
		movi(rr(0)),
		movi(rr(1)),
		stg(rr(0), rr(1)),
		movi(rr(1)),
		stg(rr(0), rr(1)),
		exit(),
	)
	if hasKind(Analyze(short).Warnings(), KindUnrollACEMass) {
		t.Errorf("2-instruction body flagged below UnrollBodyMin %d", UnrollBodyMin)
	}
}
