package analysis

import (
	"math"
	"testing"

	"gpurel/internal/isa"
)

// Extra constructors for the bit-level tests. The shared helpers in
// analysis_test.go build constant-valued programs; these produce
// genuinely unknown values (loads) and immediate operands.

func ldgT(dst, addr isa.Reg) isa.Instr {
	in := raw(isa.OpLDG, dst, addr)
	in.Srcs[1] = isa.Imm(0)
	return in
}

func lopT(logic isa.LogicOp, dst, a isa.Reg, b isa.Operand) isa.Instr {
	in := raw(isa.OpLOP, dst, a)
	in.Logic = logic
	in.Srcs[1] = b
	return in
}

func s2rT(dst isa.Reg, sr isa.SpecialReg) isa.Instr {
	in := raw(isa.OpS2R, dst)
	in.SReg = sr
	return in
}

func isetpImm(p isa.PredReg, cmp isa.CmpOp, a isa.Reg, imm int32) isa.Instr {
	in := raw(isa.OpISETP, isa.RZ, a)
	in.DstP = p
	in.Cmp = cmp
	in.Srcs[1] = isa.Imm(uint32(imm))
	return in
}

// TestKnownBits exercises the lattice primitives directly.
func TestKnownBits(t *testing.T) {
	c := kbConst(0xf0, 32)
	if !c.IsConst() || c.Const() != 0xf0 {
		t.Fatalf("kbConst(0xf0) = %s, want constant 0xf0", c)
	}
	a := kbTop(32)
	and := kbAnd(a, c)
	if !and.ZeroAt(0) || !and.ZeroAt(8) || and.ZeroAt(4) {
		t.Errorf("top AND 0xf0 = %s: want zeros outside bits 4..7 only", and)
	}
	sh := kbShl(c, 4)
	if !sh.IsConst() || sh.Const() != 0xf00 {
		t.Errorf("0xf0 << 4 = %s, want constant 0xf00", sh)
	}
	add := kbAdd(kbConst(0x10, 32), kbConst(0x22, 32))
	if !add.IsConst() || add.Const() != 0x32 {
		t.Errorf("0x10 + 0x22 = %s, want constant 0x32", add)
	}
	m := kbMeet(kbConst(3, 32), kbConst(1, 32))
	if !m.OneAt(0) || m.OneAt(1) || m.ZeroAt(1) || m.ZeroAt(0) {
		t.Errorf("meet(3,1) = %s: bit 0 stays one, bit 1 becomes unknown", m)
	}
}

// TestValueRange exercises the interval primitives.
func TestValueRange(t *testing.T) {
	a := ValueRange{0, 255}
	if got := rAdd(a, rConst(1)); got.Lo != 1 || got.Hi != 256 {
		t.Errorf("[0,255]+1 = %s", got)
	}
	if got := rMul(a, rConst(4)); got.Lo != 0 || got.Hi != 1020 {
		t.Errorf("[0,255]*4 = %s", got)
	}
	if got := rShr(ValueRange{-1, 5}, 4); got.Lo != 0 || got.Hi != int64(1)<<28-1 {
		t.Errorf("possibly-negative >>4 = %s, want [0,2^28-1]", got)
	}
	if got := rAdd(rFull(), rConst(1)); !got.IsFull() {
		t.Errorf("full+1 = %s, want full (wrap widens)", got)
	}
	if always, known := cmpAlways(isa.CmpLT, a, rConst(1024)); !known || !always {
		t.Errorf("[0,255] < 1024 should be provably true")
	}
	if _, known := cmpAlways(isa.CmpLT, a, rConst(100)); known {
		t.Errorf("[0,255] < 100 should be unknown")
	}
	if always, known := cmpAlways(isa.CmpGE, rConst(7), rConst(7)); !known || !always {
		t.Errorf("7 >= 7 should be provably true")
	}
}

// TestBandOf pins the width-relative band layout the cross-validation
// compares at.
func TestBandOf(t *testing.T) {
	cases := []struct {
		bit, width int
		want       BitBand
	}{
		{0, 32, BandLow}, {9, 32, BandLow},
		{10, 32, BandMid}, {19, 32, BandMid},
		{20, 32, BandHigh}, {30, 32, BandHigh},
		{31, 32, BandSign},
		{0, 64, BandLow}, {63, 64, BandSign},
		{0, 1, BandSign},
	}
	for _, c := range cases {
		if got := BandOf(c.bit, c.width); got != c.want {
			t.Errorf("BandOf(%d,%d) = %s, want %s", c.bit, c.width, got, c.want)
		}
	}
}

// TestForwardFactsLaunchGeometry checks the S2R seeding and transfer
// through the canonical global-index idiom.
func TestForwardFactsLaunchGeometry(t *testing.T) {
	p := prog("gidx",
		s2rT(rr(0), isa.SrTidX),                       // 0: [0,255]
		s2rT(rr(1), isa.SrCtaidX),                     // 1: [0,3]
		s2rT(rr(2), isa.SrNtidX),                      // 2: 256
		raw(isa.OpIMAD, rr(3), rr(1), rr(2)),          // 3: ctaid*ntid+R0? srcs: R1,R2,RZ
		iadd(rr(4), rr(3), rr(0)),                     // 4: global index
		lopT(isa.LopAND, rr(5), rr(4), isa.Imm(0xff)), // 5
		stg(rr(5), rr(4)),                             // 6: keep things live
		exit(),                                        // 7
	)
	r := AnalyzeLaunch(p, &Bounds{GridX: 4, GridY: 1, BlockThreads: 256})
	if f := r.Facts[0].R; f.Lo != 0 || f.Hi != 255 {
		t.Errorf("tid range = %s, want [0,255]", f)
	}
	if f := r.Facts[2]; !f.KB.IsConst() || f.KB.Const() != 256 {
		t.Errorf("ntid = %s, want constant 256", f.KB)
	}
	if f := r.Facts[4].R; f.Lo != 0 || f.Hi != 1023 {
		t.Errorf("global index range = %s, want [0,1023]", f)
	}
	if f := r.Facts[5]; !f.KB.ZeroAt(8) || f.R.Hi != 0xff {
		t.Errorf("masked index = kb %s r %s, want high bits zero, Hi 255", f.KB, f.R)
	}
	// Without bounds the specials stay non-negative but unbounded.
	r = Analyze(p)
	if f := r.Facts[0].R; f.Lo != 0 || f.Hi == 255 {
		t.Errorf("unbounded tid range = %s, want [0, large]", f)
	}
}

// TestKnownBitsProofKillsInstruction is the live-to-dead satellite: a
// loaded value consumed only through AND with a proven-zero mask is
// architecturally dead under the bit model while the scalar model keeps
// a generic pass factor for it — and the whole-program AVF moves
// accordingly.
func TestKnownBitsProofKillsInstruction(t *testing.T) {
	p := prog("andzero",
		movi(rr(1)),                              // 0: address
		ldgT(rr(0), rr(1)),                       // 1: unknown value
		movi(rr(2)),                              // 2: zero mask
		lopT(isa.LopAND, rr(3), rr(0), isa.R(2)), // 3: R3 = R0 & 0 = 0
		stg(rr(1), rr(3)),                        // 4: stored (live)
		exit(),                                   // 5
	)
	r := Analyze(p)

	// Scalar: the load's value reaches the store through the AND at the
	// generic and/or pass factor — far from dead.
	if sc := r.ACE[1]; sc.Unmasked() < 0.4 {
		t.Fatalf("scalar ACE of the masked load = %.3f, want ~PassAndOr*store", sc.Unmasked())
	}
	// Bit-resolved: every bit of the load is ANDed with a proven zero.
	if v := &r.ACEVec[1]; !v.Dead() {
		t.Fatalf("bit ACE of the masked load = %.3f, want 0 (proven masked)", v.MeanSDC()+v.MeanDUE())
	}
	// The AND's own result is provably constant but still stored, so it
	// stays live in both models.
	if r.ACEVec[3].Dead() || r.ACE[3].Dead() {
		t.Fatalf("stored AND result must stay live")
	}

	// Whole-program AVF: the bit estimator sees the dead site, the
	// scalar one does not.
	bit, scalar := r.Estimate(nil, nil), r.ScalarEstimate(nil, nil)
	if bit.Unmasked() >= scalar.Unmasked() {
		t.Errorf("bit AVF %.3f should sit below scalar %.3f once the load is proven dead",
			bit.Unmasked(), scalar.Unmasked())
	}
	if bit.DeadFraction <= scalar.DeadFraction {
		t.Errorf("bit DeadFraction %.3f should exceed scalar %.3f",
			bit.DeadFraction, scalar.DeadFraction)
	}

	// The proof surfaces as a constant-result finding on the AND (its
	// value input is not constant, its output is).
	found := false
	for _, f := range r.Warnings() {
		if f.Kind == KindConstResult && f.Instr == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("want a %s finding on the AND, got %v", KindConstResult, kinds(r.Warnings()))
	}
}

// TestDeadBitSpanFinding: masking a load down to its low byte leaves a
// provable 24-bit dead span in the load's destination.
func TestDeadBitSpanFinding(t *testing.T) {
	p := prog("lowbyte",
		movi(rr(1)),        // 0: address
		ldgT(rr(0), rr(1)), // 1
		lopT(isa.LopAND, rr(2), rr(0), isa.Imm(0xff)), // 2
		stg(rr(1), rr(2)), // 3
		exit(),            // 4
	)
	r := Analyze(p)
	v := &r.ACEVec[1]
	if start, length := v.LongestDeadSpan(); start != 8 || length != 24 {
		t.Fatalf("dead span = (%d,%d), want bits 8..31", start, length)
	}
	found := false
	for _, f := range r.Warnings() {
		if f.Kind == KindDeadBitSpan && f.Instr == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("want a %s finding on the load, got %v", KindDeadBitSpan, kinds(r.Warnings()))
	}
}

// TestRangeDeadBranchFinding: a guard proven by launch-geometry ranges
// (not constant folding) flags the dead arm.
func TestRangeDeadBranchFinding(t *testing.T) {
	p := prog("guard",
		s2rT(rr(0), isa.SrTidX),                 // 0
		movi(rr(1)),                             // 1: address
		isetpImm(pp(0), isa.CmpLT, rr(0), 1024), // 2: always true for 256 threads
		ssy(7),                                  // 3
		braIf(pp(0), true, 6),                   // 4: @!P0 never taken
		stg(rr(1), rr(0)),                       // 5
		sync(),                                  // 6
		exit(),                                  // 7
	)
	r := AnalyzeLaunch(p, &Bounds{GridX: 1, GridY: 1, BlockThreads: 256})
	found := false
	for _, f := range r.Warnings() {
		if f.Kind == KindRangeDeadBranch && f.Instr == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("want a %s finding on the guard branch, got %v", KindRangeDeadBranch, kinds(r.Warnings()))
	}
	// Without launch bounds the compare is not provable: no finding.
	r = Analyze(p)
	for _, f := range r.Warnings() {
		if f.Kind == KindRangeDeadBranch {
			t.Errorf("unbounded analysis proved the guard: %s", f.Msg)
		}
	}
}

// TestEstimateNilWeightsUniformParity: a uniform OpWeights profile (one
// lane-op per static site) must reproduce the nil-weights estimate
// exactly, bands included.
func TestEstimateNilWeightsUniformParity(t *testing.T) {
	p := prog("parity",
		movi(rr(1)),
		ldgT(rr(0), rr(1)),
		iadd(rr(2), rr(0), rr(0)),
		imul(rr(3), rr(2), rr(2)),
		lopT(isa.LopAND, rr(4), rr(3), isa.Imm(0xffff)),
		stg(rr(1), rr(4)),
		exit(),
	)
	r := Analyze(p)
	perOp := make(map[isa.Op]uint64)
	for i := range p.Instrs {
		perOp[p.Instrs[i].Op]++
	}
	a := r.Estimate(nil, nil)
	b := r.Estimate(r.OpWeights(perOp), nil)
	if a.Sites != b.Sites {
		t.Fatalf("sites %d vs %d", a.Sites, b.Sites)
	}
	near := func(x, y float64) bool { return math.Abs(x-y) < 1e-12 }
	if !near(a.SDC, b.SDC) || !near(a.DUE, b.DUE) || !near(a.DeadFraction, b.DeadFraction) {
		t.Errorf("uniform-weight estimate diverges: (%.6f,%.6f,%.6f) vs (%.6f,%.6f,%.6f)",
			a.SDC, a.DUE, a.DeadFraction, b.SDC, b.DUE, b.DeadFraction)
	}
	for k := range a.Band {
		if !near(a.Band[k].SDC, b.Band[k].SDC) || !near(a.Band[k].DUE, b.Band[k].DUE) {
			t.Errorf("band %s diverges: (%.6f,%.6f) vs (%.6f,%.6f)",
				BitBand(k), a.Band[k].SDC, a.Band[k].DUE, b.Band[k].SDC, b.Band[k].DUE)
		}
	}
	for b64 := 0; b64 < 64; b64++ {
		if !near(a.BitSDC[b64], b.BitSDC[b64]) || !near(a.BitDUE[b64], b.BitDUE[b64]) {
			t.Errorf("bit %d profile diverges", b64)
		}
	}
}

// TestScalarEstimateMatchesLegacyACE pins that ScalarEstimate is the
// PR-1 estimator: its site values are exactly the scalar ACE fractions.
func TestScalarEstimateMatchesLegacyACE(t *testing.T) {
	p := prog("legacy",
		movi(rr(1)),
		ldgT(rr(0), rr(1)),
		iadd(rr(2), rr(0), rr(0)),
		stg(rr(1), rr(2)),
		exit(),
	)
	r := Analyze(p)
	est := r.ScalarEstimate(nil, nil)
	if !est.Scalar {
		t.Fatalf("ScalarEstimate must mark itself Scalar")
	}
	var sdc, due float64
	n := 0
	for i := range p.Instrs {
		if !p.Instrs[i].Op.WritesGPR() {
			continue
		}
		sdc += r.ACE[i].SDC
		due += r.ACE[i].DUE
		n++
	}
	if math.Abs(est.SDC-sdc/float64(n)) > 1e-12 || math.Abs(est.DUE-due/float64(n)) > 1e-12 {
		t.Errorf("scalar estimate (%.6f,%.6f) != mean ACE (%.6f,%.6f)",
			est.SDC, est.DUE, sdc/float64(n), due/float64(n))
	}
	if est.BitWeight[0] != 0 {
		t.Errorf("scalar estimate must not fill the bit profile")
	}
}
