package analysis

import "gpurel/internal/isa"

// The optimization-matrix explainer: static per-configuration metrics
// that account for *why* one compilation of a kernel is more or less
// vulnerable than another. Each metric names a mechanism the paper's
// §VI cross-section-vs-optimization discussion appeals to — register
// residency time (live-range length), allocator pressure, spill-window
// memory exposure, and raw ACE mass — so the opt_* artifact tables can
// pair every measured AVF with the static quantity that explains its
// movement across the matrix.

// OptExplain summarizes one compiled program for the optimization
// matrix. All weighted quantities use the same per-instruction weights
// as Result.Estimate (nil: uniform static weighting).
type OptExplain struct {
	// Instrs / Regs are raw program size: instruction count and
	// architectural register demand.
	Instrs int `json:"instrs"`
	Regs   int `json:"regs"`

	// MeanLiveRange / MaxLiveRange measure register residency: the
	// def-to-furthest-use distance (in instructions, loop-carried uses
	// wrapping around the program) averaged / maximized over GPR
	// definitions that have at least one consumer. Longer residency is
	// a longer window in which a register-file upset lands on a live
	// value.
	MeanLiveRange float64 `json:"mean_live_range"`
	MaxLiveRange  int     `json:"max_live_range"`

	// MeanPressure / MaxPressure are the live-register counts after
	// each reachable instruction: how much of the register file holds
	// architecturally-live state at once.
	MeanPressure float64 `json:"mean_pressure"`
	MaxPressure  int     `json:"max_pressure"`

	// SpillPairs counts STS→LDS round trips (same address register,
	// same offset, value reloaded into the stored register) — the
	// signature the register-pressure matrix variant emits.
	// SpillExposure is the summed instruction distance of those
	// windows: the cumulative time the spilled values sit in (ECC- or
	// parity-protected, but addressably vulnerable) shared memory
	// instead of the register file. MeanSpillGap = exposure / pairs.
	SpillPairs    int     `json:"spill_pairs"`
	SpillExposure int     `json:"spill_exposure"`
	MeanSpillGap  float64 `json:"mean_spill_gap"`

	// ACEMass is the weighted total of unmasked destination bits:
	// Σ_site w(site) × Σ_bit (SDC+DUE). Unlike the AVF (a mean), the
	// mass grows when unrolling replicates live computation — the
	// static face of the paper's larger-code-larger-cross-section
	// observation. DeadBitMass is the same sum over provably-dead bits.
	ACEMass     float64 `json:"ace_mass"`
	DeadBitMass float64 `json:"dead_bit_mass"`
}

// Explain computes the matrix explainer metrics for an analyzed
// program. weights gives per-instruction site weights (nil: uniform),
// matching Result.Estimate's convention.
func (r *Result) Explain(weights []float64) *OptExplain {
	e := &OptExplain{
		Instrs: len(r.Prog.Instrs),
		Regs:   r.Prog.NumRegs,
	}

	var spanSum, spanN int
	for i := range r.Prog.Instrs {
		if r.Prog.Instrs[i].DstRegs() == 0 || !r.reachable(i) {
			continue
		}
		if s := r.liveSpan(i); s > 0 {
			spanSum += s
			spanN++
			if s > e.MaxLiveRange {
				e.MaxLiveRange = s
			}
		}
	}
	if spanN > 0 {
		e.MeanLiveRange = float64(spanSum) / float64(spanN)
	}

	var pressSum, pressN int
	for i := range r.Prog.Instrs {
		if !r.reachable(i) {
			continue
		}
		p := r.LiveOut[i].Count()
		pressSum += p
		pressN++
		if p > e.MaxPressure {
			e.MaxPressure = p
		}
	}
	if pressN > 0 {
		e.MeanPressure = float64(pressSum) / float64(pressN)
	}

	for _, sp := range spillPairs(r) {
		e.SpillPairs++
		e.SpillExposure += sp.load - sp.store
	}
	if e.SpillPairs > 0 {
		e.MeanSpillGap = float64(e.SpillExposure) / float64(e.SpillPairs)
	}

	for i := range r.Prog.Instrs {
		if r.Prog.Instrs[i].DstRegs() == 0 || !r.reachable(i) {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w <= 0 {
			continue
		}
		v := &r.ACEVec[i]
		for b := 0; b < v.Width; b++ {
			if u := v.Unmasked(b); u > aceEps {
				e.ACEMass += w * u
			} else {
				e.DeadBitMass += w
			}
		}
	}
	return e
}

// reachable reports whether instruction i sits in a reachable block.
func (r *Result) reachable(i int) bool {
	b := r.CFG.BlockOf[i]
	return b >= 0 && r.CFG.Reachable[b]
}

// liveSpan returns the distance from definition i to its furthest
// consumer, in instructions. A use at a smaller index than the
// definition is loop-carried: the value survives the back edge, so the
// span wraps around the program end (len - i + use).
func (r *Result) liveSpan(i int) int {
	span := 0
	n := len(r.Prog.Instrs)
	for _, e := range r.DefUse.Out[i] {
		d := e.Use - i
		if d <= 0 {
			d = n - i + e.Use
		}
		if d > span {
			span = d
		}
	}
	return span
}

// spillPair is one STS→LDS shared-memory round trip.
type spillPair struct {
	store, load int
	reg         isa.Reg
}

// spillPairs finds shared-memory round trips: an STS whose stored value
// is later reloaded by an LDS in the same block through the same
// address register and offset, back into the stored register, with no
// intervening rewrite of the address register. Cross-thread tile
// exchanges (the legitimate use of shared memory) address the reload
// differently and do not match.
func spillPairs(r *Result) []spillPair {
	p := r.Prog
	var out []spillPair
	for _, b := range r.CFG.Blocks {
		if !r.CFG.Reachable[b.ID] {
			continue
		}
		for i := b.Start; i < b.End; i++ {
			st := &p.Instrs[i]
			if st.Op != isa.OpSTS || st.Srcs[0].IsImm || !st.Srcs[1].IsImm {
				continue
			}
			addr, off, val := st.Srcs[0].Reg, st.Srcs[1].Imm, st.Srcs[2].Reg
			for j := i + 1; j < b.End; j++ {
				ld := &p.Instrs[j]
				if writesReg(&p.Instrs[j], addr) && ld.Op != isa.OpLDS {
					break // address register rewritten: trail lost
				}
				if ld.Op == isa.OpSTS && !ld.Srcs[0].IsImm &&
					ld.Srcs[0].Reg == addr && ld.Srcs[1].IsImm && ld.Srcs[1].Imm == off {
					break // slot overwritten before any reload
				}
				if ld.Op == isa.OpLDS && !ld.Srcs[0].IsImm &&
					ld.Srcs[0].Reg == addr && ld.Srcs[1].IsImm && ld.Srcs[1].Imm == off &&
					ld.Dst == val {
					out = append(out, spillPair{store: i, load: j, reg: val})
					break
				}
			}
		}
	}
	return out
}

// writesReg reports whether the instruction writes the register.
func writesReg(in *isa.Instr, r isa.Reg) bool {
	n := isa.Reg(in.DstRegs())
	return n > 0 && r >= in.Dst && r < in.Dst+n
}
