package analysis

import "gpurel/internal/isa"

// Backward liveness over the GPR and predicate files. The analysis is a
// may-analysis: a register is live after instruction i when some path
// from i reads it before every path overwrites it. Predicated writes do
// not kill — the guard may be false at runtime — which keeps the dead-
// store detector sound for predicated code.

// liveness returns the per-instruction live-out sets.
func liveness(p *isa.Program, cfg *CFG) ([]RegSet, []PredSet) {
	n := len(p.Instrs)
	liveOut := make([]RegSet, n)
	predOut := make([]PredSet, n)
	if n == 0 {
		return liveOut, predOut
	}

	nb := len(cfg.Blocks)
	// Block summaries: use = upward-exposed reads, def = strong kills.
	useG := make([]RegSet, nb)
	useP := make([]PredSet, nb)
	defG := make([]RegSet, nb)
	defP := make([]PredSet, nb)
	for _, b := range cfg.Blocks {
		for i := b.End - 1; i >= b.Start; i-- {
			in := &p.Instrs[i]
			ug, up := instrUses(in)
			if in.Unconditional() {
				dg, dp := instrDefs(in)
				defG[b.ID].Union(&dg)
				defP[b.ID].Union(dp)
				useG[b.ID].Subtract(&dg)
				useP[b.ID] &^= dp
			}
			useG[b.ID].Union(&ug)
			useP[b.ID].Union(up)
		}
	}

	// Fixpoint: liveIn[b] = use[b] ∪ (liveOut[b] − def[b]).
	inG := make([]RegSet, nb)
	inP := make([]PredSet, nb)
	outG := make([]RegSet, nb)
	outP := make([]PredSet, nb)
	changed := true
	for changed {
		changed = false
		for id := nb - 1; id >= 0; id-- {
			b := cfg.Blocks[id]
			var og RegSet
			var op PredSet
			for _, s := range b.Succs {
				og.Union(&inG[s])
				op.Union(inP[s])
			}
			outG[id] = og
			outP[id] = op
			ig := og
			ig.Subtract(&defG[id])
			ig.Union(&useG[id])
			ip := op &^ defP[id]
			ip |= useP[id]
			if ig != inG[id] || ip != inP[id] {
				inG[id] = ig
				inP[id] = ip
				changed = true
			}
		}
	}

	// Per-instruction live-out by walking each block backward.
	for _, b := range cfg.Blocks {
		lg := outG[b.ID]
		lp := outP[b.ID]
		for i := b.End - 1; i >= b.Start; i-- {
			liveOut[i] = lg
			predOut[i] = lp
			in := &p.Instrs[i]
			if in.Unconditional() {
				dg, dp := instrDefs(in)
				lg.Subtract(&dg)
				lp &^= dp
			}
			ug, up := instrUses(in)
			lg.Union(&ug)
			lp |= up
		}
	}
	return liveOut, predOut
}
