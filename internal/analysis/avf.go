package analysis

import "gpurel/internal/isa"

// Static AVF estimation: aggregate per-instruction ACE fractions into
// the same shape the fault injectors measure dynamically — whole-program
// and per-instruction-class SDC/DUE AVFs — without running a single
// injection. The estimate for a site population is the weighted mean ACE
// over it (Mukherjee-style: AVF = sum of ACE bits / total bits).

// ClassEstimate aggregates one instruction class.
type ClassEstimate struct {
	Class  isa.Class
	Sites  int     // static instructions
	Weight float64 // total site weight (dynamic lane-ops when weighted)
	SDC    float64
	DUE    float64
}

// Unmasked returns the class's total propagation probability.
func (c *ClassEstimate) Unmasked() float64 { return c.SDC + c.DUE }

// Estimate is a whole-program static AVF.
type Estimate struct {
	Name  string
	Sites int
	// SDC / DUE are the weighted-mean ACE fractions over the site
	// population: the static counterparts of the injectors' SDC and DUE
	// AVFs.
	SDC float64
	DUE float64
	// DeadFraction is the weight share of sites whose result is
	// architecturally dead (ACE = 0): faults there are always masked.
	DeadFraction float64
	PerClass     map[isa.Class]*ClassEstimate
}

// Unmasked returns the whole-program propagation probability.
func (e *Estimate) Unmasked() float64 { return e.SDC + e.DUE }

// Estimate aggregates the analysis into a static AVF over the sites
// matching filter (nil: every GPR-writing opcode, the NVBitFI-style
// injection population). weights gives per-instruction site weights
// (nil: uniform static weighting); use OpWeights to weight by a dynamic
// profile.
func (r *Result) Estimate(weights []float64, filter func(isa.Op) bool) *Estimate {
	est := &Estimate{Name: r.Prog.Name, PerClass: make(map[isa.Class]*ClassEstimate)}
	var totalW, sdcW, dueW, deadW float64
	for i := range r.Prog.Instrs {
		in := &r.Prog.Instrs[i]
		if filter == nil {
			if !in.Op.WritesGPR() {
				continue
			}
		} else if !filter(in.Op) {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w <= 0 {
			continue
		}
		est.Sites++
		a := r.ACE[i]
		totalW += w
		sdcW += w * a.SDC
		dueW += w * a.DUE
		if a.Dead() {
			deadW += w
		}
		ce := est.PerClass[in.Op.ClassOf()]
		if ce == nil {
			ce = &ClassEstimate{Class: in.Op.ClassOf()}
			est.PerClass[in.Op.ClassOf()] = ce
		}
		ce.Sites++
		ce.Weight += w
		ce.SDC += w * a.SDC
		ce.DUE += w * a.DUE
	}
	if totalW > 0 {
		est.SDC = sdcW / totalW
		est.DUE = dueW / totalW
		est.DeadFraction = deadW / totalW
	}
	for _, ce := range est.PerClass {
		if ce.Weight > 0 {
			ce.SDC /= ce.Weight
			ce.DUE /= ce.Weight
		}
	}
	return est
}

// OpWeights spreads a dynamic per-opcode lane-op profile uniformly over
// the static instances of each opcode, approximating per-site dynamic
// execution counts. Sites whose opcode never executed get weight 0.
func (r *Result) OpWeights(perOp map[isa.Op]uint64) []float64 {
	static := make(map[isa.Op]int)
	for i := range r.Prog.Instrs {
		static[r.Prog.Instrs[i].Op]++
	}
	w := make([]float64, len(r.Prog.Instrs))
	for i := range r.Prog.Instrs {
		op := r.Prog.Instrs[i].Op
		if c := static[op]; c > 0 {
			w[i] = float64(perOp[op]) / float64(c)
		}
	}
	return w
}

// StaticAVF analyzes the program and returns its uniform-weight static
// AVF over the GPR-writing site population.
func StaticAVF(p *isa.Program) *Estimate {
	return Analyze(p).Estimate(nil, nil)
}

// DeadFraction analyzes the program and returns the fraction of its
// GPR-writing instructions whose results are architecturally dead — the
// §VI metric separating the two compiler pipelines.
func DeadFraction(p *isa.Program) float64 {
	return Analyze(p).Estimate(nil, nil).DeadFraction
}
