package analysis

import "gpurel/internal/isa"

// Static AVF estimation: aggregate per-instruction ACE fractions into
// the same shape the fault injectors measure dynamically — whole-program
// and per-instruction-class SDC/DUE AVFs — without running a single
// injection. The estimate for a site population is the weighted mean ACE
// over it (Mukherjee-style: AVF = sum of ACE bits / total bits).

// ClassEstimate aggregates one instruction class.
type ClassEstimate struct {
	Class  isa.Class
	Sites  int     // static instructions
	Weight float64 // total site weight (dynamic lane-ops when weighted)
	SDC    float64
	DUE    float64
}

// Unmasked returns the class's total propagation probability.
func (c *ClassEstimate) Unmasked() float64 { return c.SDC + c.DUE }

// BandEstimate aggregates one bit band (see BandOf): the weighted-mean
// per-bit ACE over every (site, bit) pair whose bit position falls in
// the band, with Weight the accumulated population share.
type BandEstimate struct {
	SDC    float64
	DUE    float64
	Weight float64
}

// Unmasked returns the band's total propagation probability.
func (b *BandEstimate) Unmasked() float64 { return b.SDC + b.DUE }

// Estimate is a whole-program static AVF.
type Estimate struct {
	Name  string
	Sites int
	// SDC / DUE are the weighted-mean ACE fractions over the site
	// population: the static counterparts of the injectors' SDC and DUE
	// AVFs. The bit-resolved estimator averages each site's per-bit
	// vector over its destination width, matching an injector that
	// flips a uniformly random destination bit.
	SDC float64
	DUE float64
	// DeadFraction is the weight share of sites whose result is
	// architecturally dead (ACE = 0): faults there are always masked.
	DeadFraction float64
	// BitSDC/BitDUE/BitWeight are the bit-position AVF profiles of the
	// bit-resolved estimator: per bit position, the weighted-mean ACE
	// over the sites whose destination window covers that bit, with
	// BitWeight the covering population weight. Zero for Scalar
	// estimates.
	BitSDC    [64]float64
	BitDUE    [64]float64
	BitWeight [64]float64
	// Band buckets the same profile into width-relative bands, the
	// granularity the injection cross-validation compares at.
	Band [BandCount]BandEstimate
	// Scalar marks an estimate produced by the legacy scalar model
	// (Result.ScalarEstimate) rather than the ACE vectors.
	Scalar   bool
	PerClass map[isa.Class]*ClassEstimate
}

// Unmasked returns the whole-program propagation probability.
func (e *Estimate) Unmasked() float64 { return e.SDC + e.DUE }

// Estimate aggregates the analysis into a bit-resolved static AVF over
// the sites matching filter (nil: every GPR-writing opcode, the
// NVBitFI-style injection population). weights gives per-instruction
// site weights (nil: uniform static weighting); use OpWeights to weight
// by a dynamic profile.
func (r *Result) Estimate(weights []float64, filter func(isa.Op) bool) *Estimate {
	return r.estimate(weights, filter, false)
}

// ScalarEstimate aggregates the legacy scalar ACE fractions instead of
// the bit vectors — the PR-1 estimator, kept for comparison so the
// bit-resolved model's residual against injection can be asserted to
// tighten (see faultinj's cross-validation).
func (r *Result) ScalarEstimate(weights []float64, filter func(isa.Op) bool) *Estimate {
	return r.estimate(weights, filter, true)
}

func (r *Result) estimate(weights []float64, filter func(isa.Op) bool, scalar bool) *Estimate {
	est := &Estimate{Name: r.Prog.Name, Scalar: scalar, PerClass: make(map[isa.Class]*ClassEstimate)}
	var totalW, sdcW, dueW, deadW float64
	for i := range r.Prog.Instrs {
		in := &r.Prog.Instrs[i]
		if filter == nil {
			if !in.Op.WritesGPR() {
				continue
			}
		} else if !filter(in.Op) {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w <= 0 {
			continue
		}
		est.Sites++
		totalW += w
		var siteSDC, siteDUE float64
		var dead bool
		if scalar {
			a := r.ACE[i]
			siteSDC, siteDUE, dead = a.SDC, a.DUE, a.Dead()
		} else {
			v := &r.ACEVec[i]
			siteSDC, siteDUE, dead = v.MeanSDC(), v.MeanDUE(), v.Dead()
			if width := v.Width; width > 0 {
				bw := w / float64(width)
				for b := 0; b < width; b++ {
					est.BitSDC[b] += w * v.SDC[b]
					est.BitDUE[b] += w * v.DUE[b]
					est.BitWeight[b] += w
					band := &est.Band[BandOf(b, width)]
					band.SDC += bw * v.SDC[b]
					band.DUE += bw * v.DUE[b]
					band.Weight += bw
				}
			}
		}
		sdcW += w * siteSDC
		dueW += w * siteDUE
		if dead {
			deadW += w
		}
		ce := est.PerClass[in.Op.ClassOf()]
		if ce == nil {
			ce = &ClassEstimate{Class: in.Op.ClassOf()}
			est.PerClass[in.Op.ClassOf()] = ce
		}
		ce.Sites++
		ce.Weight += w
		ce.SDC += w * siteSDC
		ce.DUE += w * siteDUE
	}
	if totalW > 0 {
		est.SDC = sdcW / totalW
		est.DUE = dueW / totalW
		est.DeadFraction = deadW / totalW
	}
	for b := 0; b < 64; b++ {
		if est.BitWeight[b] > 0 {
			est.BitSDC[b] /= est.BitWeight[b]
			est.BitDUE[b] /= est.BitWeight[b]
		}
	}
	for k := range est.Band {
		if est.Band[k].Weight > 0 {
			est.Band[k].SDC /= est.Band[k].Weight
			est.Band[k].DUE /= est.Band[k].Weight
		}
	}
	for _, ce := range est.PerClass {
		if ce.Weight > 0 {
			ce.SDC /= ce.Weight
			ce.DUE /= ce.Weight
		}
	}
	return est
}

// OpWeights spreads a dynamic per-opcode lane-op profile uniformly over
// the static instances of each opcode, approximating per-site dynamic
// execution counts. Sites whose opcode never executed get weight 0.
func (r *Result) OpWeights(perOp map[isa.Op]uint64) []float64 {
	static := make(map[isa.Op]int)
	for i := range r.Prog.Instrs {
		static[r.Prog.Instrs[i].Op]++
	}
	w := make([]float64, len(r.Prog.Instrs))
	for i := range r.Prog.Instrs {
		op := r.Prog.Instrs[i].Op
		if c := static[op]; c > 0 {
			w[i] = float64(perOp[op]) / float64(c)
		}
	}
	return w
}

// StaticAVF analyzes the program and returns its uniform-weight static
// AVF over the GPR-writing site population.
func StaticAVF(p *isa.Program) *Estimate {
	return Analyze(p).Estimate(nil, nil)
}

// DeadFraction analyzes the program and returns the fraction of its
// GPR-writing instructions whose results are architecturally dead — the
// §VI metric separating the two compiler pipelines.
func DeadFraction(p *isa.Program) float64 {
	return Analyze(p).Estimate(nil, nil).DeadFraction
}
