package analysis

// Central tuning table for the ACE transfer model. Every masking weight
// the analyzer uses lives here — the scalar (legacy) pass factors that
// ace.go applies per opcode, the terminal sink weights shared by both
// estimators, and the bit-resolved knobs bitflow.go applies when a
// per-bit fact cannot be *proven* from the known-bits/range lattices.
//
// The scalar factors are calibrated against the paper's §VI injection
// campaigns (see faultinj.CrossValTolerance); the bit-resolved tables
// are shaped so their width-mean stays close to the scalar factor for
// the same opcode, which keeps the two estimators comparable while the
// per-bit structure redistributes vulnerability across bit positions.

// Terminal sink weights: where a corrupted value meets architectural
// output directly. SDC/DUE pairs; per channel, probability the flip is
// architecturally visible there.
const (
	// SinkStoreSDC: a value stored to global memory (STG/RED) is
	// architectural output.
	SinkStoreSDC = 1.0
	// SinkSharedStoreSDC: shared memory round-trips back through LDS
	// before it can reach output; memory is not tracked, so attenuate.
	SinkSharedStoreSDC = 0.8
	// SinkAddrSDC/DUE: a flipped address bit reads/writes the wrong
	// location: wrong data (SDC) or out-of-bounds (DUE), cf. the
	// simulator's address-fault semantics.
	SinkAddrSDC = 0.45
	SinkAddrDUE = 0.45
	// SinkBranchSDC/DUE: a flipped branch guard takes the wrong path:
	// wrong-output SDC or livelock/fetch-overrun DUE in comparable
	// measure.
	SinkBranchSDC = 0.4
	SinkBranchDUE = 0.4
)

// Scalar pass factors: the attenuation applied when a value flows
// through a consuming instruction into that instruction's own
// destination — the fraction of input-bit flips expected to survive
// into the result. ace.go applies these per opcode; bitflow.go falls
// back to them (or to the bit tables below) for unproven operands.
const (
	// PassCmp: a single input bit rarely crosses the comparison
	// threshold — strong logical masking before the predicate.
	PassCmp = 0.3
	// PassGuard: flipping the guard toggles whether the consumer writes
	// at all; its (stale or spurious) result is wrong where used.
	PassGuard = 0.8
	// PassSelCond: SEL picks the other input — wrong half the time.
	PassSelCond = 0.5
	PassMove    = 1.0
	// PassSel: each SEL input is selected about half the time.
	PassSel  = 0.5
	PassIAdd = 1.0
	PassXor  = 1.0
	// PassAndOr: AND/OR mask roughly half the input bits (scalar guess;
	// bitflow proves the exact mask when the other operand is known).
	PassAndOr = 0.5
	// PassShift: bits shifted out are lost (bitflow proves which when
	// the shift amount is a known constant).
	PassShift = 0.7
	// PassMinMax: only the selected operand survives.
	PassMinMax = 0.5
	PassIMul   = 0.8
	// PassFAdd: alignment/rounding mask low-order FP bits.
	PassFAdd = 0.75
	PassFMul = 0.7
	// PassHAdd/HMul: FP16 reads 16 of 32 register bits, then rounds.
	// bitflow derives the same 0.375 = 0.5 (structural low half) x 0.75
	// (rounding) from isa.SrcValueBits plus the 16-bit FP profile.
	PassHAdd = 0.375
	PassHMul = 0.35
	// PassMMA: wide dot-products propagate most input faults.
	PassMMA = 0.8
	// PassMufu: transcendentals compress their domain.
	PassMufu = 0.5
	// PassCvt: width conversion truncates or renormalizes.
	PassCvt     = 0.6
	PassDefault = 0.8
)

// Bit-resolved address-sink split. Low-order address bits move an
// access within its (page-aligned) allocation — wrong data, SDC-leaning
// — while high-order bits throw it out of bounds — DUE-leaning. The
// width-mean of the split stays near the scalar SinkAddr pair.
const (
	// AddrPageBits: address bits below this index stay inside a
	// 4 KiB-page-sized region around the intended location.
	AddrPageBits = 12
	AddrLowSDC   = 0.55
	AddrLowDUE   = 0.35
	AddrHighSDC  = 0.35
	AddrHighDUE  = 0.55
)

// Floating-point per-bit propagation profile, by region of the IEEE
// layout: low mantissa bits are absorbed by alignment/rounding, high
// mantissa bits mostly survive, exponent bits rescale the whole value,
// and the sign bit flips it outright. fpBitFactor maps a bit position
// to its region for 16/32/64-bit formats; the profile width-means sit
// near PassFAdd so the scalar and bit estimators stay comparable.
const (
	FPMantLowFactor  = 0.55
	FPMantHighFactor = 0.8
	FPExpFactor      = 0.95
	FPSignFactor     = 0.9
	// FPMulScale derates multiplies relative to adds, matching the
	// PassFMul / PassFAdd ratio.
	FPMulScale = 0.93
)

// fpBitFactor returns the per-bit FP propagation base factor for a
// value of the given IEEE width (16, 32, or 64). Bits outside the
// format fall back to the low-mantissa factor.
func fpBitFactor(width, bit int) float64 {
	var mantLow, exp, sign int
	switch width {
	case 16:
		mantLow, exp, sign = 5, 10, 15 // 1-5-10
	case 64:
		mantLow, exp, sign = 29, 52, 63 // 1-11-52
	default:
		mantLow, exp, sign = 12, 23, 31 // 1-8-23
	}
	switch {
	case bit == sign:
		return FPSignFactor
	case bit >= exp:
		return FPExpFactor
	case bit >= mantLow:
		return FPMantHighFactor
	case bit >= 0:
		return FPMantLowFactor
	}
	return FPMantLowFactor
}

// Integer per-bit propagation profile. Value-bit injections into the
// low-order bits of integer data are disproportionately masked
// downstream — a flipped sub-word bit of an address still lands in the
// same element after scaling and bounds clamping, and low key bits
// rarely change a compare outcome — so integer ALU consumers (add,
// multiply-add, min/max, select) attenuate the lowest IntLowBits of the
// value they read. Copies, logic ops, and stores stay exact: a copied
// or stored bit propagates architecturally bit-for-bit. This is the
// integer analogue of the FP mantissa profile, and the principal place
// the bit-resolved estimator departs from the scalar one on
// integer-dominated kernels (the departure the injection
// cross-validation checks is in the measured direction).
const (
	IntLowBits      = 8
	IntLowBitFactor = 0.85
)

// intBitFactor returns the per-bit integer attenuation for a flipped
// bit at the given position of the consumed value window.
func intBitFactor(bit int) float64 {
	if bit < IntLowBits {
		return IntLowBitFactor
	}
	return 1
}

// Narrowing-conversion bit factors: input bits the conversion drops are
// mostly absorbed by rounding; surviving bits carry through strongly.
const (
	CvtDropFactor = 0.2
	CvtKeepFactor = 0.85
)

// DUE-mode routing knobs (see duemode.go). The terminal DUE sinks above
// carry a mechanism: address sinks are illegal-address, backedge and
// EXIT guards are hangs, barrier/reconvergence guards are sync errors.
// Only the forward-branch guard is mechanically ambiguous.
const (
	// BranchForwardHangFrac: the share of a forward (non-backedge,
	// non-divergent) branch guard's DUE sink attributed to hangs — the
	// wrong path can overrun the program end — with the remainder left
	// unattributed. Backedges and divergent-region branches are routed
	// whole, so only this split is a guess rather than a proof.
	BranchForwardHangFrac = 0.5

	// BackedgeMemHangFrac: the hang share of a backedge guard whose loop
	// body touches memory. Overrun iterations index past the proven
	// bound and die on the out-of-bounds access long before MaxCycles,
	// so most of the trip-count DUE converts to illegal-address — the
	// conversion the injection campaigns measure (mode cross-validation,
	// faultinj.DUEModeTolerance). Memory-free loop bodies route whole to
	// hang: they have nothing to fault on but the watchdog.
	BackedgeMemHangFrac = 0.3
)

// DUE-mode exposure lint thresholds (see dueModeFindings in lint.go).
// Both findings anchor to a *failed proof*, not to raw exposure —
// ordinary address setup and counted loops stay clean because their
// proofs succeed — so the thresholds only separate a failed proof's
// residual exposure from transitive trickle.
const (
	// AddrExposureMin flags address-feeding sites whose page-window
	// containment proof failed (unguarded-address-arith): the mean
	// illegal-address mass over the low AddrPageBits band, which a
	// successful containment proof drives to exactly 0 and a failed one
	// leaves near AddrLowDUE.
	AddrExposureMin = 0.15
	// SyncExposureMin flags value sites whose flips reach the
	// reconvergence machinery transitively (sync-fragile-region) with
	// more than trickle strength. A value one unproven compare away
	// from a divergent-region branch carries PassCmp * SinkBranchDUE =
	// 0.12 — below the bar; direct multi-path chains exceed it.
	SyncExposureMin = 0.2
)

// DeadBitSpanMin is the smallest contiguous run of provably-masked
// destination bits the dead-bit-span lint reports. Shorter runs are
// routine (rounding slack, small masks) and would drown the report.
const DeadBitSpanMin = 12

// Optimization-matrix lint thresholds (see optFindings in lint.go and
// the explainer metrics in explain.go).
const (
	// LongLiveRangeMin is the smallest def-to-furthest-use distance
	// (instructions, loop-carried uses wrapping) the long-live-range
	// lint reports. Spans below it are ordinary expression temporaries;
	// above it the value's register-file residency dominates its
	// exposure, the effect the matrix's O0/O1 rows make measurable.
	LongLiveRangeMin = 28

	// SpillExposureMin is the smallest STS→LDS round-trip window the
	// spill-exposure lint reports. The spill variant's own windows are
	// always at least this long.
	SpillExposureMin = 2

	// UnrollBodyMin / UnrollACEMassMin gate the unroll-inflation lint:
	// a tandem-repeated opcode sequence of at least UnrollBodyMin
	// instructions, repeated at least twice, whose total unmasked ACE
	// mass (summed over every bit of every repeated instruction) is at
	// least UnrollACEMassMin bits. Smaller repeats are address setup;
	// lighter ones replicate mostly-dead code and do not inflate the
	// vulnerable surface.
	UnrollBodyMin    = 3
	UnrollACEMassMin = 96.0
)
