package analysis

import (
	"math/bits"

	"gpurel/internal/isa"
)

// RegSet is a dense bitset over the 256 general-purpose register names.
// RZ (255) is representable but never added: it reads as zero and
// ignores writes, so it carries no dataflow.
type RegSet [4]uint64

// Add inserts one register.
func (s *RegSet) Add(r isa.Reg) {
	if r == isa.RZ {
		return
	}
	s[r>>6] |= 1 << (r & 63)
}

// AddSpan inserts the n consecutive registers starting at base.
func (s *RegSet) AddSpan(base isa.Reg, n int) {
	for i := 0; i < n; i++ {
		s.Add(base + isa.Reg(i))
	}
}

// Remove deletes one register.
func (s *RegSet) Remove(r isa.Reg) {
	s[r>>6] &^= 1 << (r & 63)
}

// Has reports membership.
func (s *RegSet) Has(r isa.Reg) bool {
	return s[r>>6]&(1<<(r&63)) != 0
}

// Union merges o into s, reporting whether s changed.
func (s *RegSet) Union(o *RegSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | o[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Subtract removes o's members from s.
func (s *RegSet) Subtract(o *RegSet) {
	for i := range s {
		s[i] &^= o[i]
	}
}

// Empty reports whether the set has no members.
func (s *RegSet) Empty() bool {
	return s[0]|s[1]|s[2]|s[3] == 0
}

// Count returns the number of members — the register pressure when the
// set is a liveness frontier.
func (s *RegSet) Count() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) +
		bits.OnesCount64(s[2]) + bits.OnesCount64(s[3])
}

// PredSet is a bitset over the 8 predicate register names. PT (7) is
// never added, for the same reason RZ is not.
type PredSet uint8

// Add inserts one predicate register.
func (s *PredSet) Add(p isa.PredReg) {
	if p == isa.PT {
		return
	}
	*s |= 1 << p
}

// Remove deletes one predicate register.
func (s *PredSet) Remove(p isa.PredReg) { *s &^= 1 << p }

// Has reports membership.
func (s PredSet) Has(p isa.PredReg) bool { return s&(1<<p) != 0 }

// Union merges o into s, reporting whether s changed.
func (s *PredSet) Union(o PredSet) bool {
	n := *s | o
	changed := n != *s
	*s = n
	return changed
}
