package analysis

import (
	"math"
	"testing"

	"gpurel/internal/isa"
)

func ldg(dst, addr isa.Reg) isa.Instr { return raw(isa.OpLDG, dst, addr) }

func near(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func checkShares(t *testing.T, h *HiddenEstimate) {
	t.Helper()
	sum := h.SchedulerShare + h.InstrPipeShare + h.MemPathShare + h.HostIfaceShare
	if !near(sum, 1) {
		t.Errorf("%s: shares sum to %.12f, want 1", h.Name, sum)
	}
	if h.DUE <= 0 || h.DUE >= 1 {
		t.Errorf("%s: DUE = %.6f, want a probability strictly inside (0,1)", h.Name, h.DUE)
	}
}

// TestHiddenNeutralPrior pins the prior-only estimate: an empty program
// has no proxies, so shares are the base shares and the DUE is the
// documented nominal value consumers divide by.
func TestHiddenNeutralPrior(t *testing.T) {
	h := StaticHiddenAVF(prog("empty"))
	if h.FetchExposure != 0 || h.DivergenceDepth != 0 || h.LoadPressure != 0 {
		t.Fatalf("empty program proxies = (%.3f, %.3f, %.3f), want zeros",
			h.FetchExposure, h.DivergenceDepth, h.LoadPressure)
	}
	if !near(h.DUE, NominalHiddenDUE) {
		t.Errorf("neutral DUE = %.9f, want NominalHiddenDUE = %.9f", h.DUE, NominalHiddenDUE)
	}
	if !near(NominalHiddenDUE, 0.796) {
		t.Errorf("NominalHiddenDUE = %.9f, want 0.796", NominalHiddenDUE)
	}
	checkShares(t, h)
}

// TestHiddenProxiesStraightLine pins the proxies on a single basic
// block: one fetch-line entry over five instructions, no SSY regions,
// no loads.
func TestHiddenProxiesStraightLine(t *testing.T) {
	h := StaticHiddenAVF(prog("straight",
		movi(rr(0)),
		movi(rr(1)),
		iadd(rr(2), rr(0), rr(0)),
		stg(rr(1), rr(2)),
		exit(),
	))
	if !near(h.FetchExposure, 1.0/5) {
		t.Errorf("FetchExposure = %.6f, want 0.2 (one block entry / 5 instrs)", h.FetchExposure)
	}
	if h.DivergenceDepth != 0 || h.LoadPressure != 0 {
		t.Errorf("divergence/load = (%.6f, %.6f), want zeros", h.DivergenceDepth, h.LoadPressure)
	}
	// Fetch pressure shifts share toward the instruction pipe, the
	// resource with the lowest conditional DUE probability.
	if h.DUE >= NominalHiddenDUE {
		t.Errorf("DUE = %.6f, want below the neutral prior %.6f", h.DUE, NominalHiddenDUE)
	}
	checkShares(t, h)
}

// TestHiddenProxiesDiamond pins fetch exposure and divergence depth on
// the canonical SSY diamond (same program as TestCFGShapes): four
// blocks, two of which end in stream-redirecting terminators, and one
// SSY region covering instructions 4..7.
func TestHiddenProxiesDiamond(t *testing.T) {
	diamond := prog("diamond",
		movi(rr(0)), movi(rr(1)), isetp(pp(0), rr(0), isa.RZ),
		ssy(8), braIf(pp(0), true, 7),
		iadd(rr(2), rr(0), rr(0)), bra(8),
		imul(rr(2), rr(0), rr(0)),
		stg(rr(1), rr(2)), exit(),
	)
	h := StaticHiddenAVF(diamond)
	// Blocks [0..4] (BRA, cost 2), [5..6] (BRA, cost 2), [7] (cost 1),
	// [8..9] (cost 1): 6 discontinuities over 10 instructions.
	if !near(h.FetchExposure, 0.6) {
		t.Errorf("FetchExposure = %.6f, want 0.6", h.FetchExposure)
	}
	// The SSY at 3 targets 8: instructions 4..7 sit at depth 1.
	if !near(h.DivergenceDepth, 0.4) {
		t.Errorf("DivergenceDepth = %.6f, want 0.4", h.DivergenceDepth)
	}
	if h.LoadPressure != 0 {
		t.Errorf("LoadPressure = %.6f, want 0", h.LoadPressure)
	}
	checkShares(t, h)

	// Dynamic weighting: zeroing the else leg (instruction 7) drops its
	// block and its share of the SSY region.
	w := []float64{1, 1, 1, 1, 1, 1, 1, 0, 1, 1}
	hw := Analyze(diamond).HiddenEstimate(w)
	if !near(hw.FetchExposure, 5.0/9) {
		t.Errorf("weighted FetchExposure = %.6f, want 5/9", hw.FetchExposure)
	}
	if !near(hw.DivergenceDepth, 3.0/9) {
		t.Errorf("weighted DivergenceDepth = %.6f, want 1/3", hw.DivergenceDepth)
	}
	checkShares(t, hw)
}

// TestHiddenLoadPressure pins the def-use span model: a forward span
// held over two instructions, and a loop-carried span that wraps to the
// next iteration.
func TestHiddenLoadPressure(t *testing.T) {
	forward := prog("forward",
		movi(rr(0)),               // 0: address
		ldg(rr(2), rr(0)),         // 1: load, furthest use at 3
		movi(rr(3)),               // 2: second address
		iadd(rr(4), rr(2), rr(2)), // 3
		stg(rr(3), rr(4)),         // 4
		exit(),                    // 5
	)
	h := StaticHiddenAVF(forward)
	// One load with span 2 over n=6 instructions, uniform weights:
	// (2/6)/6 = 1/18.
	if !near(h.LoadPressure, 1.0/18) {
		t.Errorf("forward LoadPressure = %.6f, want 1/18", h.LoadPressure)
	}
	if !near(h.FetchExposure, 1.0/6) {
		t.Errorf("forward FetchExposure = %.6f, want 1/6", h.FetchExposure)
	}
	checkShares(t, h)

	carried := prog("carried",
		movi(rr(0)),                 // 0: address
		movi(rr(2)),                 // 1: initial value
		iadd(rr(3), rr(2), rr(2)),   // 2: body leader, consumes the load
		ldg(rr(2), rr(0)),           // 3: load for the next iteration
		isetp(pp(0), rr(3), isa.RZ), // 4
		braIf(pp(0), false, 2),      // 5: back edge
		stg(rr(0), rr(3)),           // 6
		exit(),                      // 7
	)
	h = StaticHiddenAVF(carried)
	// The load at 3 reaches the use at 2 across the back edge: span
	// wraps as n-3+2 = 7 over n=8, so (7/8)/8 = 7/64.
	if !near(h.LoadPressure, 7.0/64) {
		t.Errorf("carried LoadPressure = %.6f, want 7/64", h.LoadPressure)
	}
	checkShares(t, h)

	// Monotonicity: the same loop with the load replaced by an ALU op
	// has identical fetch/divergence proxies but no outstanding-load
	// mass, so its memory-path share and combined DUE must be lower
	// (mem path carries the highest PDUE of the modulated resources).
	noload := prog("carried-noload",
		movi(rr(0)),
		movi(rr(2)),
		iadd(rr(3), rr(2), rr(2)),
		iadd(rr(2), rr(0), rr(0)),
		isetp(pp(0), rr(3), isa.RZ),
		braIf(pp(0), false, 2),
		stg(rr(0), rr(3)),
		exit(),
	)
	hn := StaticHiddenAVF(noload)
	if hn.LoadPressure != 0 {
		t.Fatalf("no-load variant LoadPressure = %.6f, want 0", hn.LoadPressure)
	}
	if !near(hn.FetchExposure, h.FetchExposure) || !near(hn.DivergenceDepth, h.DivergenceDepth) {
		t.Fatalf("variants differ outside load pressure: fetch %.6f vs %.6f, div %.6f vs %.6f",
			hn.FetchExposure, h.FetchExposure, hn.DivergenceDepth, h.DivergenceDepth)
	}
	if h.MemPathShare <= hn.MemPathShare || h.DUE <= hn.DUE {
		t.Errorf("load pressure did not raise mem-path share/DUE: (%.6f, %.6f) vs (%.6f, %.6f)",
			h.MemPathShare, h.DUE, hn.MemPathShare, hn.DUE)
	}
}

// TestCombineHidden checks the workload-level merge: proxies combine as
// weighted means and the result is re-finished, so it equals a direct
// estimate built from the blended proxies.
func TestCombineHidden(t *testing.T) {
	a := &HiddenEstimate{Name: "a", FetchExposure: 0.2, DivergenceDepth: 0.0, LoadPressure: 0.08}
	b := &HiddenEstimate{Name: "b", FetchExposure: 0.6, DivergenceDepth: 0.4, LoadPressure: 0.0}
	a.finishHidden()
	b.finishHidden()
	c := CombineHidden("ab", []*HiddenEstimate{a, b}, []float64{1, 3})
	if !near(c.FetchExposure, 0.5) || !near(c.DivergenceDepth, 0.3) || !near(c.LoadPressure, 0.02) {
		t.Errorf("combined proxies = (%.6f, %.6f, %.6f), want (0.5, 0.3, 0.02)",
			c.FetchExposure, c.DivergenceDepth, c.LoadPressure)
	}
	want := &HiddenEstimate{FetchExposure: 0.5, DivergenceDepth: 0.3, LoadPressure: 0.02}
	want.finishHidden()
	if !near(c.DUE, want.DUE) {
		t.Errorf("combined DUE = %.9f, want %.9f (finish of blended proxies)", c.DUE, want.DUE)
	}
	checkShares(t, c)

	// Zero total weight falls back to the neutral prior.
	z := CombineHidden("z", []*HiddenEstimate{a, b}, []float64{0, 0})
	if !near(z.DUE, NominalHiddenDUE) {
		t.Errorf("zero-weight combine DUE = %.6f, want neutral %.6f", z.DUE, NominalHiddenDUE)
	}
}

// TestWithResidencyShares pins the measured-model arithmetic on a hand
// computation: warps=10, no modulating activity, so the weights are the
// raw sensitivity lines and the shares follow directly.
func TestWithResidencyShares(t *testing.T) {
	m := MeasuredResidency{WarpsPerSMCycle: 10, SMCyclesPerCycle: 2}
	h := MeasuredHiddenEstimate("flat", m)
	if !h.Measured {
		t.Fatal("WithResidency must mark the estimate as measured")
	}
	// ws=1.0*10+2.4=12.4, wi=0.8*10+2.0=10, wm=0.5*10+1.6=6.6, wh=1.0.
	total := 12.4 + 10.0 + 6.6 + 1.0
	if !near(h.SchedulerShare, 12.4/total) || !near(h.InstrPipeShare, 10.0/total) ||
		!near(h.MemPathShare, 6.6/total) || !near(h.HostIfaceShare, 1.0/total) {
		t.Errorf("shares = (%.6f, %.6f, %.6f, %.6f), want raw sensitivity ratios",
			h.SchedulerShare, h.InstrPipeShare, h.MemPathShare, h.HostIfaceShare)
	}
	if !near(h.Exposure, total*2) {
		t.Errorf("exposure = %.6f, want total weight x SM residency = %.6f", h.Exposure, total*2)
	}
	if !near(h.DUEExposure(), h.Exposure*h.DUE) {
		t.Errorf("DUEExposure = %.6f, want Exposure*DUE", h.DUEExposure())
	}
	checkShares(t, h)
}

// TestWithResidencyModulation pins the proxy fine-tuning: divergence
// raises the scheduler share, load depth saturates into [0,1) and
// raises the mem path, and the static receiver is left untouched.
func TestWithResidencyModulation(t *testing.T) {
	static := &HiddenEstimate{Name: "s", FetchExposure: 0.3, DivergenceDepth: 0.1, LoadPressure: 0.2}
	static.finishHidden()
	staticDUE := static.DUE

	flat := static.WithResidency(MeasuredResidency{WarpsPerSMCycle: 4, SMCyclesPerCycle: 1})
	div := static.WithResidency(MeasuredResidency{WarpsPerSMCycle: 4, SMCyclesPerCycle: 1, DivDepth: 2})
	if div.SchedulerShare <= flat.SchedulerShare {
		t.Errorf("divergence residency did not raise the scheduler share: %.6f vs %.6f",
			div.SchedulerShare, flat.SchedulerShare)
	}
	load := static.WithResidency(MeasuredResidency{WarpsPerSMCycle: 4, SMCyclesPerCycle: 1, LoadDepth: 3})
	if !near(load.LoadPressure, 3.0/4.0) {
		t.Errorf("load depth 3 must saturate to 0.75, got %.6f", load.LoadPressure)
	}
	if load.MemPathShare <= flat.MemPathShare {
		t.Errorf("load residency did not raise the mem-path share: %.6f vs %.6f",
			load.MemPathShare, flat.MemPathShare)
	}
	if static.Measured || !near(static.DUE, staticDUE) {
		t.Fatal("WithResidency mutated its static receiver")
	}
	checkShares(t, flat)
	checkShares(t, div)
	checkShares(t, load)
}

// TestWithResidencyZeroIsFinite pins that an all-zero measurement (a
// workload whose telemetry never sampled) still yields finite shares:
// the per-SM sensitivity floor keeps the total weight positive.
func TestWithResidencyZeroIsFinite(t *testing.T) {
	h := MeasuredHiddenEstimate("zero", MeasuredResidency{})
	checkShares(t, h)
	if h.Exposure != 0 {
		t.Errorf("zero SM residency must zero the exposure, got %.6f", h.Exposure)
	}
	if math.IsNaN(h.DUE) || math.IsInf(h.DUE, 0) {
		t.Fatalf("DUE = %v", h.DUE)
	}
}
