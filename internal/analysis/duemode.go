package analysis

import "gpurel/internal/isa"

// Static DUE-mode classification: a second backward pass over the
// def-use graph that splits every site's per-bit DUE probability
// (ACEVector.DUE, the authoritative total from propagateVec) across the
// simulator's typed DUE mechanisms — how a flipped bit kills the
// kernel, not just whether it does.
//
// Terminal sinks route by mechanism: a flipped address bit that can
// leave the statically proven valid range is an illegal-address DUE
// (low bits whose page-window containment is proven contribute
// nothing); a flipped predicate feeding a loop backedge or an EXIT is a
// hang; one feeding BAR/SYNC/SSY — or a branch inside an SSY divergence
// region — is a sync error. Transitive edges reuse the exact per-opcode
// stencil of the SDC/DUE pass (dataStencil), so a mode's mass
// attenuates through dataflow precisely as its parent DUE mass does.
// Per bit the four channels are renormalized to sum to the authoritative
// DUE[b]; DUE mass whose every routed channel is provably zero falls
// into the Unattributed residual rather than being silently dropped.
//
// Soundness mirrors propagateVec: the channels start at zero and the
// per-channel noisy-or is bounded and monotone within an iteration, so
// the capped fixpoint cannot attribute more mass than DUE[b] — the
// renormalization step makes the partition exact at every iteration.

// DUEModeK indexes the static mode channels, in the display order of
// sim.DUEModes(). The analysis package deliberately does not import the
// simulator; faultinj bridges the two taxonomies when cross-validating.
type DUEModeK uint8

// Static DUE-mode channels.
const (
	ModeHang DUEModeK = iota
	ModeIllegalAddress
	ModeSyncError
	ModeUnattributed
	// ModeCount is the number of channels.
	ModeCount
)

// String names the channel with the simulator's DUEMode spelling.
func (m DUEModeK) String() string {
	switch m {
	case ModeHang:
		return "hang"
	case ModeIllegalAddress:
		return "illegal-address"
	case ModeSyncError:
		return "sync-error"
	}
	return "unattributed"
}

// DUEModeVec is the per-bit DUE-mode split of one definition: for every
// destination bit, Ch[m][b] is the share of ACEVector.DUE[b] attributed
// to mode m. The four channels sum to the site's DUE channel exactly.
type DUEModeVec struct {
	Width int
	Ch    [ModeCount][64]float64
}

// at reads one channel bit, zero outside the window.
func (v *DUEModeVec) at(m DUEModeK, idx int) float64 {
	if idx < 0 || idx >= v.Width {
		return 0
	}
	return v.Ch[m][idx]
}

// Mean averages one channel over the window.
func (v *DUEModeVec) Mean(m DUEModeK) float64 {
	if v.Width == 0 {
		return 0
	}
	var s float64
	for b := 0; b < v.Width; b++ {
		s += v.Ch[m][b]
	}
	return s / float64(v.Width)
}

// meanFrom averages one channel over bits >= from (the multiply-spread
// shape, mirroring dataContrib's meanFrom).
func (v *DUEModeVec) meanFrom(m DUEModeK, from int) float64 {
	if v.Width == 0 {
		return 0
	}
	if from >= v.Width {
		from = v.Width - 1
	}
	var s float64
	for b := from; b < v.Width; b++ {
		s += v.Ch[m][b]
	}
	return s / float64(v.Width-from)
}

// divRegions marks the instructions that lie strictly inside an SSY
// divergence region (after the SSY, before its reconvergence target) —
// the span where a corrupted branch predicate derails reconvergence
// instead of merely redirecting control flow.
func divRegions(p *isa.Program) []bool {
	in := make([]bool, len(p.Instrs))
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		if ins.Op != isa.OpSSY || ins.Target <= i || ins.Target > len(p.Instrs) {
			continue
		}
		for j := i + 1; j < ins.Target; j++ {
			in[j] = true
		}
	}
	return in
}

// backedgeBodyMem marks, per conditional backedge BRA, whether its loop
// body touches memory. A corrupted trip count in such a loop mostly
// dies as an illegal address, not a hang: the overrun iterations run
// the body with indices past the proven bound, and the out-of-bounds
// access kills the kernel long before the watchdog would (the dominant
// DUE conversion the injection campaigns observe). A memory-free body
// can only spin.
func backedgeBodyMem(p *isa.Program) []bool {
	mem := make([]bool, len(p.Instrs))
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		if ins.Op != isa.OpBRA || ins.Target > i || ins.Target < 0 {
			continue
		}
		for j := ins.Target; j <= i; j++ {
			if p.Instrs[j].Op.IsMemory() {
				mem[i] = true
				break
			}
		}
	}
	return mem
}

// propagateModes runs the mode-split fixpoint over the authoritative
// DUE vectors.
func (bf *bitflow) propagateModes(vec []ACEVector) []DUEModeVec {
	p := bf.p
	n := len(p.Instrs)
	mv := make([]DUEModeVec, n)
	for i := range mv {
		mv[i].Width = vec[i].Width
	}
	inDiv := divRegions(p)
	bodyMem := backedgeBodyMem(p)
	const eps = 1e-9
	var miss [ModeCount][64]float64
	for iter := 0; iter < 400; iter++ {
		changed := false
		for i := n - 1; i >= 0; i-- {
			w := mv[i].Width
			if w == 0 {
				continue
			}
			for m := range miss {
				for b := 0; b < w; b++ {
					miss[m][b] = 1
				}
			}
			for _, e := range bf.du.Out[i] {
				bf.modeEdgeContrib(i, e, mv, inDiv, bodyMem, w, &miss)
			}
			for b := 0; b < w; b++ {
				var raw [ModeCount]float64
				var tot float64
				for m := range raw {
					raw[m] = 1 - miss[m][b]
					tot += raw[m]
				}
				due := vec[i].DUE[b]
				var next [ModeCount]float64
				if tot > 0 {
					for m := range raw {
						next[m] = due * (raw[m] / tot)
					}
				} else if due > 0 {
					// No routed channel claims this bit's DUE mass (every
					// mechanism proof fired, or the site only reaches DUE
					// through edges the router cannot type): residual.
					next[ModeUnattributed] = due
				}
				for m := range next {
					if abs(next[m]-mv[i].Ch[m][b]) > eps {
						changed = true
					}
					mv[i].Ch[m][b] = next[m]
				}
			}
		}
		if !changed {
			break
		}
	}
	return mv
}

// modeEdgeContrib folds one def-use edge into the per-mode miss
// products, mirroring edgeContrib's DUE-channel routing.
func (bf *bitflow) modeEdgeContrib(i int, e UseEdge, mv []DUEModeVec, inDiv, bodyMem []bool,
	w int, miss *[ModeCount][64]float64) {
	useIn := &bf.p.Instrs[e.Use]
	lo := 32 * int(e.DefReg)
	if w == 1 {
		lo = 0
	}
	if lo >= w {
		return
	}
	hi := min(lo+32, w)
	apply := func(m DUEModeK, b int, d float64) {
		miss[m][b] *= 1 - d
	}

	switch e.Kind {
	case EdgeStoreVal:
		return // stored data reaches output, never a DUE
	case EdgeAddr:
		// The illegal-address sink, with the page-window containment
		// proof: flipping a bit below AddrPageBits only permutes the
		// address inside its 2^AddrPageBits-aligned window, so when the
		// address value's proven range already fits one window starting
		// at 0, the flipped access provably stays in bounds and the bit
		// carries no illegal-address exposure. High bits always can
		// escape; unproven low bits keep the heuristic low-bit weight.
		provable := w == 32 && e.DefReg == 0 && e.UseReg == 0
		var own ValueRange
		if provable {
			own = bf.facts[i].R
		}
		for b := lo; b < hi; b++ {
			rb := b - lo
			if rb < AddrPageBits {
				if provable && own.Lo >= 0 && own.Hi < int64(1)<<AddrPageBits {
					continue
				}
				apply(ModeIllegalAddress, b, AddrLowDUE)
			} else {
				apply(ModeIllegalAddress, b, AddrHighDUE)
			}
		}
		return
	}

	uv := &mv[e.Use]
	switch e.Kind {
	case EdgeBranchGuard:
		branchModeContrib(e, useIn, inDiv, bodyMem, apply)
		return
	case EdgeGuard:
		for m := DUEModeK(0); m < ModeCount; m++ {
			apply(m, 0, PassGuard*uv.Mean(m))
		}
		return
	case EdgeSelCond:
		for m := DUEModeK(0); m < ModeCount; m++ {
			apply(m, 0, PassSelCond*uv.Mean(m))
		}
		return
	case EdgeCmp:
		bf.cmpModeContrib(i, e, useIn, uv, w, lo, hi, apply)
		return
	}
	bf.dataModeContrib(e, useIn, uv, lo, hi, apply)
}

// branchModeContrib routes the branch-guard DUE sink (SinkBranchDUE at
// the predicate's single bit) to the mechanism the guarded control
// instruction can actually reach when its predicate flips.
func branchModeContrib(e UseEdge, useIn *isa.Instr, inDiv, bodyMem []bool,
	apply func(DUEModeK, int, float64)) {
	switch useIn.Op {
	case isa.OpEXIT:
		// A thread that spuriously skips (or takes) its EXIT stalls the
		// grid: the scheduler deadlocks or the watchdog fires.
		apply(ModeHang, 0, SinkBranchDUE)
	case isa.OpBAR, isa.OpSYNC, isa.OpSSY:
		// Flipping participation in a barrier, a reconvergence SYNC, or
		// the SSY that arms it corrupts the divergence machinery.
		apply(ModeSyncError, 0, SinkBranchDUE)
	case isa.OpBRA:
		switch {
		case useIn.Target <= e.Use && bodyMem[e.Use]:
			// A backedge guard is the loop's trip-count condition. When
			// the body touches memory, overrun iterations mostly die on an
			// out-of-bounds access before the watchdog can fire; only the
			// memory-free fraction of failures spins to a hang.
			apply(ModeHang, 0, BackedgeMemHangFrac*SinkBranchDUE)
			apply(ModeIllegalAddress, 0, (1-BackedgeMemHangFrac)*SinkBranchDUE)
		case useIn.Target <= e.Use:
			// A memory-free loop body has nothing to fault on: the wrong
			// trip decision can only spin the loop past its bound.
			apply(ModeHang, 0, SinkBranchDUE)
		case inDiv[e.Use]:
			// A divergent branch inside an SSY region repartitions the
			// warp against the armed reconvergence point.
			apply(ModeSyncError, 0, SinkBranchDUE)
		default:
			// A forward branch outside any divergence region: the wrong
			// path can overrun the program (hang) or fail in ways the
			// router cannot type statically.
			apply(ModeHang, 0, BranchForwardHangFrac*SinkBranchDUE)
			apply(ModeUnattributed, 0, (1-BranchForwardHangFrac)*SinkBranchDUE)
		}
	default:
		apply(ModeUnattributed, 0, SinkBranchDUE)
	}
}

// cmpModeContrib mirrors cmpContrib for the mode channels: bits whose
// flip provably cannot move the operand across the comparison threshold
// contribute to no mode (this is the trip-count range proof — a fully
// proven band of a loop counter carries zero hang exposure), and
// unproven bits attenuate the predicate's own mode split by PassCmp.
func (bf *bitflow) cmpModeContrib(i int, e UseEdge, useIn *isa.Instr, uv *DUEModeVec,
	w, lo, hi int, apply func(DUEModeK, int, float64)) {
	vb := useIn.SrcValueBits(int(e.Slot))
	provable := useIn.Op == isa.OpISETP && w == 32 && e.DefReg == 0 && e.UseReg == 0
	var own, other ValueRange
	if provable {
		own = bf.facts[i].R
		other = bf.operandFact(e.Use, 1-int(e.Slot)).R
	}
	for b := lo; b < hi; b++ {
		rb := b - lo
		if rb >= vb {
			continue
		}
		if provable {
			delta := int64(1) << uint(rb)
			expanded := rExpand(own, delta)
			var known bool
			if int(e.Slot) == 0 {
				_, known = cmpAlways(useIn.Cmp, expanded, other)
			} else {
				_, known = cmpAlways(useIn.Cmp, other, expanded)
			}
			if known {
				continue
			}
		}
		for m := DUEModeK(0); m < ModeCount; m++ {
			apply(m, b, PassCmp*uv.Ch[m][0])
		}
	}
}

// dataModeContrib applies the shared per-opcode stencil (dataStencil)
// to the mode channels, so mode mass flows through arithmetic exactly
// as the parent DUE mass does.
func (bf *bitflow) dataModeContrib(e UseEdge, useIn *isa.Instr, uv *DUEModeVec,
	lo, hi int, apply func(DUEModeK, int, float64)) {
	vb := useIn.SrcValueBits(int(e.Slot))
	slot := int(e.Slot)
	inv := bf.edgeInvariantsOf(e, useIn)
	var meanM [ModeCount]float64
	for m := range meanM {
		meanM[m] = uv.Mean(DUEModeK(m))
	}
	for b := lo; b < hi; b++ {
		rb := b - lo
		if rb >= vb {
			continue
		}
		ub := 32*int(e.UseReg) + rb
		st := dataStencil(useIn, slot, ub, uv.Width, inv)
		for m := DUEModeK(0); m < ModeCount; m++ {
			var d float64
			switch st.kind {
			case stMean:
				d = st.f * meanM[m]
			case stMeanFrom:
				d = st.f * uv.meanFrom(m, st.idx)
			default:
				d = st.f * uv.at(m, st.idx)
			}
			apply(m, b, d)
		}
	}
}

// DUEModeEstimate is a whole-program static DUE-mode distribution over
// a site population: the weighted-mean per-mode DUE mass, in the same
// aggregation scheme as Estimate. The four mode fields sum to DUEMass
// (which equals Estimate.DUE for the same weights and filter), and
// Shares normalizes them into the distribution the injection ledgers
// are cross-validated against.
type DUEModeEstimate struct {
	Name  string `json:"name"`
	Sites int    `json:"sites"`

	// Weight is the total site weight behind the means — the combining
	// weight when multi-launch estimates are merged (faultinj).
	Weight float64 `json:"weight"`

	// DUEMass is the weighted-mean total DUE probability of the
	// population — the denominator of the mode shares.
	DUEMass float64 `json:"due_mass"`

	Hang           float64 `json:"hang"`
	IllegalAddress float64 `json:"illegal_address"`
	SyncError      float64 `json:"sync_error"`
	Unattributed   float64 `json:"unattributed"`
}

// Share returns one mode's fraction of the population's DUE mass (0
// when the population carries no DUE mass at all).
func (e *DUEModeEstimate) Share(m DUEModeK) float64 {
	if e.DUEMass <= 0 {
		return 0
	}
	switch m {
	case ModeHang:
		return e.Hang / e.DUEMass
	case ModeIllegalAddress:
		return e.IllegalAddress / e.DUEMass
	case ModeSyncError:
		return e.SyncError / e.DUEMass
	}
	return e.Unattributed / e.DUEMass
}

// Mass returns one mode's absolute weighted-mean DUE mass.
func (e *DUEModeEstimate) Mass(m DUEModeK) float64 {
	switch m {
	case ModeHang:
		return e.Hang
	case ModeIllegalAddress:
		return e.IllegalAddress
	case ModeSyncError:
		return e.SyncError
	}
	return e.Unattributed
}

// addMass accumulates w-weighted mode mass.
func (e *DUEModeEstimate) addMass(m DUEModeK, v float64) {
	switch m {
	case ModeHang:
		e.Hang += v
	case ModeIllegalAddress:
		e.IllegalAddress += v
	case ModeSyncError:
		e.SyncError += v
	default:
		e.Unattributed += v
	}
}

// DUEModeEstimate aggregates the mode vectors over the sites matching
// filter (nil: every GPR-writing opcode), weighted like Estimate.
func (r *Result) DUEModeEstimate(weights []float64, filter func(isa.Op) bool) *DUEModeEstimate {
	est := &DUEModeEstimate{Name: r.Prog.Name}
	var totalW float64
	for i := range r.Prog.Instrs {
		in := &r.Prog.Instrs[i]
		if filter == nil {
			if !in.Op.WritesGPR() {
				continue
			}
		} else if !filter(in.Op) {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w <= 0 {
			continue
		}
		est.Sites++
		totalW += w
		v := &r.DUEModeVec[i]
		for m := DUEModeK(0); m < ModeCount; m++ {
			est.addMass(m, w*v.Mean(m))
		}
	}
	if totalW > 0 {
		est.Hang /= totalW
		est.IllegalAddress /= totalW
		est.SyncError /= totalW
		est.Unattributed /= totalW
	}
	est.Weight = totalW
	est.DUEMass = est.Hang + est.IllegalAddress + est.SyncError + est.Unattributed
	return est
}
