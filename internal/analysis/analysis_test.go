package analysis

import (
	"testing"

	"gpurel/internal/isa"
)

// Hand-built instruction constructors. Every instruction defaults to an
// unconditional guard (PT) and RZ sources so that tests only read the
// registers they name.

func rr(n int) isa.Reg     { return isa.Reg(n) }
func pp(n int) isa.PredReg { return isa.PredReg(n) }

func raw(op isa.Op, dst isa.Reg, srcs ...isa.Reg) isa.Instr {
	in := isa.Instr{Op: op, Pred: isa.PT, DstP: isa.PT, Dst: dst,
		Srcs: [3]isa.Operand{isa.R(isa.RZ), isa.R(isa.RZ), isa.R(isa.RZ)}}
	for i, s := range srcs {
		in.Srcs[i] = isa.R(s)
	}
	return in
}

func movi(dst isa.Reg) isa.Instr       { return raw(isa.OpMOV32I, dst) }
func iadd(dst, a, b isa.Reg) isa.Instr { return raw(isa.OpIADD, dst, a, b) }
func imul(dst, a, b isa.Reg) isa.Instr { return raw(isa.OpIMUL, dst, a, b) }
func dadd(dst, a, b isa.Reg) isa.Instr { return raw(isa.OpDADD, dst, a, b) }
func exit() isa.Instr                  { return raw(isa.OpEXIT, isa.RZ) }
func sync() isa.Instr                  { return raw(isa.OpSYNC, isa.RZ) }

func stg(addr, val isa.Reg) isa.Instr {
	in := raw(isa.OpSTG, isa.RZ, addr)
	in.Srcs[1] = isa.Imm(0) // address offset
	in.Srcs[2] = isa.R(val)
	return in
}

func isetp(p isa.PredReg, a, b isa.Reg) isa.Instr {
	in := raw(isa.OpISETP, isa.RZ, a, b)
	in.DstP = p
	in.Cmp = isa.CmpLT
	return in
}

func bra(target int) isa.Instr {
	in := raw(isa.OpBRA, isa.RZ)
	in.Target = target
	return in
}

func braIf(p isa.PredReg, neg bool, target int) isa.Instr {
	in := bra(target)
	in.Pred, in.PredNeg = p, neg
	return in
}

func ssy(target int) isa.Instr {
	in := raw(isa.OpSSY, isa.RZ)
	in.Target = target
	return in
}

func guard(in isa.Instr, p isa.PredReg) isa.Instr {
	in.Pred = p
	return in
}

func wide(in isa.Instr) isa.Instr {
	in.Wide = true
	return in
}

func prog(name string, instrs ...isa.Instr) *isa.Program {
	return &isa.Program{Name: name, Instrs: instrs}
}

// kinds extracts the finding kinds at one severity, in report order.
func kinds(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Kind)
	}
	return out
}

func sameKinds(got []Finding, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i, f := range got {
		if f.Kind != want[i] {
			return false
		}
	}
	return true
}

// TestLintFindings drives the lint checks through small hand-built
// programs covering every diagnostic kind, plus clean shapes
// (straight-line, diamond, loop) that must produce nothing.
func TestLintFindings(t *testing.T) {
	cases := []struct {
		name      string
		prog      *isa.Program
		wantErrs  []string
		wantWarns []string
	}{
		{
			name: "straight-line dead chain",
			prog: prog("straight",
				movi(rr(0)),
				movi(rr(1)),
				iadd(rr(2), rr(0), rr(1)),
				exit(),
			),
			// R2 is never read. The operand moves die transitively too,
			// but liveness-based lint reports only the root cause; the
			// chain shows up in ACE/DeadFraction (TestACEPropagation).
			wantWarns: []string{KindDeadStore},
		},
		{
			name: "diamond is clean",
			prog: prog("diamond",
				movi(rr(0)),                 // 0: value
				movi(rr(1)),                 // 1: address
				isetp(pp(0), rr(0), isa.RZ), // 2
				ssy(8),                      // 3
				braIf(pp(0), true, 7),       // 4: @!P0 -> else
				iadd(rr(2), rr(0), rr(0)),   // 5: then
				bra(8),                      // 6
				imul(rr(2), rr(0), rr(0)),   // 7: else
				stg(rr(1), rr(2)),           // 8: join
				exit(),                      // 9
			),
		},
		{
			name: "counted loop is clean",
			prog: prog("loop",
				movi(rr(0)),                // i
				movi(rr(1)),                // acc
				movi(rr(2)),                // limit
				movi(rr(3)),                // out address
				iadd(rr(1), rr(1), rr(0)),  // 4: body
				iadd(rr(0), rr(0), isa.RZ), // 5: i++
				isetp(pp(0), rr(0), rr(2)), // 6
				braIf(pp(0), false, 4),     // 7
				stg(rr(3), rr(1)),          // 8
				exit(),                     // 9
			),
		},
		{
			name: "seeded dead store and use-before-def",
			prog: prog("seeded",
				movi(rr(0)),
				imul(rr(1), rr(0), rr(0)), // 1: dead
				iadd(rr(2), rr(3), rr(0)), // 2: R3 never written
				movi(rr(4)),               // 3: address
				stg(rr(4), rr(2)),         // 4
				exit(),
			),
			wantErrs:  []string{KindUseBeforeDef},
			wantWarns: []string{KindDeadStore},
		},
		{
			name: "guarded init is not use-before-def",
			prog: prog("guardedinit",
				isetp(pp(0), isa.RZ, isa.RZ),
				guard(movi(rr(5)), pp(0)), // predicated init
				movi(rr(1)),               // address
				stg(rr(1), rr(5)),         // optimistic: no finding
				exit(),
			),
		},
		{
			name: "unreachable block",
			prog: prog("unreach",
				movi(rr(0)),
				exit(),
				movi(rr(1)), // 2: unreachable — its dead store is not re-reported
				exit(),
			),
			wantErrs:  []string{KindUnreachable},
			wantWarns: []string{KindDeadStore}, // instruction 0 only
		},
		{
			name: "falls off the end",
			prog: prog("falloff",
				movi(rr(0)),
				isetp(pp(0), rr(0), isa.RZ),
				guard(exit(), pp(0)), // 2: conditional EXIT
				movi(rr(1)),          // 3: then nothing
			),
			wantErrs:  []string{KindFallOffEnd},
			wantWarns: []string{KindDeadStore},
		},
		{
			name: "ssy without divergent branch",
			prog: prog("ssynobra",
				ssy(2),
				movi(rr(0)),
				exit(),
			),
			wantErrs:  []string{KindSSYNoBranch},
			wantWarns: []string{KindDeadStore},
		},
		{
			name: "ssy backward target",
			prog: prog("ssyback",
				movi(rr(0)),
				ssy(0),
				exit(),
			),
			wantErrs:  []string{KindSSYBackward},
			wantWarns: []string{KindDeadStore},
		},
		{
			name: "sync outside every ssy region",
			prog: prog("syncfree",
				movi(rr(0)),
				sync(),
				exit(),
			),
			wantErrs:  []string{KindSyncNoRegion},
			wantWarns: []string{KindDeadStore},
		},
		{
			name: "branch splits an f64 pair initialization",
			prog: prog("pairsplit",
				movi(rr(0)),
				isetp(pp(0), rr(0), isa.RZ),
				movi(rr(2)),               // 2: pair lo
				movi(rr(3)),               // 3: pair hi
				dadd(rr(4), rr(2), rr(2)), // 4: consumes (R2,R3)
				braIf(pp(0), false, 3),    // 5: jumps between the halves
				movi(rr(6)),               // 6: address
				wide(stg(rr(6), rr(4))),   // 7
				exit(),
			),
			wantErrs: []string{KindPairSplitBra},
		},
		{
			name: "branch to the start of a pair run is fine",
			prog: prog("pairok",
				movi(rr(0)),
				isetp(pp(0), rr(0), isa.RZ),
				movi(rr(2)),
				movi(rr(3)),
				dadd(rr(4), rr(2), rr(2)),
				braIf(pp(0), false, 2), // re-runs the whole init
				movi(rr(6)),
				wide(stg(rr(6), rr(4))),
				exit(),
			),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Analyze(tc.prog)
			if errs := r.Errors(); !sameKinds(errs, tc.wantErrs) {
				t.Errorf("errors: got %v, want %v\n%v", kinds(errs), tc.wantErrs, errs)
			}
			if warns := r.Warnings(); !sameKinds(warns, tc.wantWarns) {
				t.Errorf("warnings: got %v, want %v\n%v", kinds(warns), tc.wantWarns, warns)
			}
		})
	}
}

// TestCFGShapes pins the block partition and edges for the three
// canonical shapes.
func TestCFGShapes(t *testing.T) {
	diamond := prog("diamond",
		movi(rr(0)), movi(rr(1)), isetp(pp(0), rr(0), isa.RZ),
		ssy(8), braIf(pp(0), true, 7),
		iadd(rr(2), rr(0), rr(0)), bra(8),
		imul(rr(2), rr(0), rr(0)),
		stg(rr(1), rr(2)), exit(),
	)
	cfg := BuildCFG(diamond)
	if len(cfg.Blocks) != 4 {
		t.Fatalf("diamond blocks = %d, want 4", len(cfg.Blocks))
	}
	wantSuccs := [][]int{{2, 1}, {3}, {3}, nil}
	for i, b := range cfg.Blocks {
		if len(b.Succs) != len(wantSuccs[i]) {
			t.Errorf("block %d succs = %v, want %v", i, b.Succs, wantSuccs[i])
			continue
		}
		for j, s := range wantSuccs[i] {
			if b.Succs[j] != s {
				t.Errorf("block %d succs = %v, want %v", i, b.Succs, wantSuccs[i])
			}
		}
	}

	loop := prog("loop",
		movi(rr(0)), movi(rr(1)),
		iadd(rr(1), rr(1), rr(0)), // 2: loop leader
		isetp(pp(0), rr(1), rr(0)),
		braIf(pp(0), false, 2),
		stg(rr(0), rr(1)), exit(),
	)
	cfg = BuildCFG(loop)
	if len(cfg.Blocks) != 3 {
		t.Fatalf("loop blocks = %d, want 3", len(cfg.Blocks))
	}
	b1 := cfg.Blocks[1]
	if len(b1.Succs) != 2 || b1.Succs[0] != 1 || b1.Succs[1] != 2 {
		t.Errorf("loop block 1 succs = %v, want [1 2] (back edge + exit)", b1.Succs)
	}

	straight := prog("straight", movi(rr(0)), stg(isa.RZ, rr(0)), exit())
	cfg = BuildCFG(straight)
	if len(cfg.Blocks) != 1 || len(cfg.Blocks[0].Succs) != 0 {
		t.Errorf("straight-line CFG: blocks=%d succs=%v, want one terminal block",
			len(cfg.Blocks), cfg.Blocks[0].Succs)
	}
}

// TestLivenessSpans checks that multi-register values (F64 pairs via
// wide loads and stores) are tracked register-by-register.
func TestLivenessSpans(t *testing.T) {
	p := prog("pairs",
		movi(rr(0)),                        // 0: address
		wide(raw(isa.OpLDG, rr(2), rr(0))), // 1: loads R2,R3
		dadd(rr(4), rr(2), rr(2)),          // 2: reads R2,R3; writes R4,R5
		movi(rr(6)),                        // 3: address
		wide(stg(rr(6), rr(4))),            // 4: stores R4,R5
		exit(),
	)
	r := Analyze(p)
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if warns := r.Warnings(); len(warns) != 0 {
		t.Fatalf("unexpected warnings: %v", warns)
	}
	for _, reg := range []isa.Reg{rr(2), rr(3)} {
		if !r.LiveOut[1].Has(reg) {
			t.Errorf("%s not live out of the wide load", reg)
		}
	}
	for _, reg := range []isa.Reg{rr(4), rr(5)} {
		if !r.LiveOut[2].Has(reg) {
			t.Errorf("%s not live out of the DADD", reg)
		}
	}
}

// TestPredicatedWritesDontKill checks the may-liveness rule: a guarded
// redefinition keeps the original definition live, and both definitions
// reach the use.
func TestPredicatedWritesDontKill(t *testing.T) {
	p := prog("predkill",
		movi(rr(0)),                 // 0
		isetp(pp(0), rr(0), isa.RZ), // 1
		guard(movi(rr(0)), pp(0)),   // 2: guarded redefinition
		movi(rr(1)),                 // 3: address
		stg(rr(1), rr(0)),           // 4
		exit(),
	)
	r := Analyze(p)
	if len(r.Findings) != 0 {
		t.Fatalf("unexpected findings: %v", r.Findings)
	}
	if !r.LiveOut[0].Has(rr(0)) {
		t.Errorf("R0 from instruction 0 killed by the predicated write at 2")
	}
	for _, def := range []int{0, 2} {
		found := false
		for _, e := range r.DefUse.Out[def] {
			if e.Use == 4 && e.Kind == EdgeStoreVal {
				found = true
			}
		}
		if !found {
			t.Errorf("definition %d does not reach the store: %v", def, r.DefUse.Out[def])
		}
	}
}

// TestACEPropagation checks the two ends of the spectrum: a value stored
// to global memory is fully ACE; a transitively dead chain is ACE 0.
func TestACEPropagation(t *testing.T) {
	live := prog("live",
		movi(rr(0)),               // 0: feeds the store value via IADD
		movi(rr(1)),               // 1: address
		iadd(rr(2), rr(0), rr(0)), // 2
		stg(rr(1), rr(2)),         // 3
		exit(),
	)
	r := Analyze(live)
	if got := r.ACE[2]; got.SDC < 0.999 {
		t.Errorf("stored IADD result SDC = %.3f, want 1.0", got.SDC)
	}
	if r.ACE[1].DUE <= 0 {
		t.Errorf("address register DUE = %.3f, want > 0", r.ACE[1].DUE)
	}
	if r.ACE[0].Unmasked() <= 0 || r.ACE[0].Unmasked() > r.ACE[2].Unmasked() {
		t.Errorf("operand ACE %.3f should be positive and at most consumer ACE %.3f",
			r.ACE[0].Unmasked(), r.ACE[2].Unmasked())
	}

	dead := prog("dead",
		movi(rr(0)),
		iadd(rr(2), rr(0), rr(0)),
		imul(rr(3), rr(2), rr(2)),
		exit(),
	)
	r = Analyze(dead)
	for i := 0; i < 3; i++ {
		if !r.ACE[i].Dead() {
			t.Errorf("instruction %d of a dead chain has ACE %.3f, want 0",
				i, r.ACE[i].Unmasked())
		}
	}
	if est := r.Estimate(nil, nil); est.DeadFraction < 0.999 {
		t.Errorf("dead chain DeadFraction = %.3f, want 1.0", est.DeadFraction)
	}
}

// TestEstimateWeighting checks OpWeights spreads dynamic counts over
// static sites and that zero-weight sites drop out.
func TestEstimateWeighting(t *testing.T) {
	p := prog("weights",
		movi(rr(0)),
		movi(rr(1)),
		iadd(rr(2), rr(0), rr(0)),
		imul(rr(3), rr(2), rr(2)), // dead
		stg(rr(1), rr(2)),
		exit(),
	)
	r := Analyze(p)
	w := r.OpWeights(map[isa.Op]uint64{
		isa.OpMOV32I: 10, // 5 per static site
		isa.OpIADD:   7,
		// IMUL never executed: weight 0
	})
	if w[0] != 5 || w[1] != 5 || w[2] != 7 || w[3] != 0 {
		t.Fatalf("weights = %v, want [5 5 7 0 ...]", w)
	}
	est := r.Estimate(w, nil)
	if est.Sites != 3 {
		t.Errorf("weighted sites = %d, want 3 (zero-weight IMUL dropped)", est.Sites)
	}
	if est.DeadFraction != 0 {
		t.Errorf("DeadFraction = %.3f, want 0 once the dead site has no weight", est.DeadFraction)
	}
	uniform := r.Estimate(nil, nil)
	if uniform.Sites != 4 || uniform.DeadFraction <= 0 {
		t.Errorf("uniform estimate sites=%d dead=%.3f, want 4 sites with a dead share",
			uniform.Sites, uniform.DeadFraction)
	}
}
