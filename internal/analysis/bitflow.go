package analysis

import (
	"gpurel/internal/isa"
)

// Bit-level dataflow: a forward abstract interpretation computing, per
// definition, a known-bits lattice (knownbits.go) and a conservative
// value range (range.go), seeded from immediates, RZ, and the launch
// geometry behind the S2R special registers; then a backward ACE pass
// that carries a 64-bit vector per value instead of ace.go's scalar.
//
// The forward facts turn several of the scalar model's per-opcode
// guesses into proofs: a bit ANDed with a proven zero is masked exactly,
// a bit shifted out by a proven constant amount is masked exactly, a bit
// dropped by a narrowing conversion or an FP16 operand read is masked
// structurally, and a bit whose flip provably cannot move an ISETP
// operand across the comparison threshold (under the derived ranges)
// cannot reach the predicate. Everything unproven falls back to the
// scalar factors in tuning.go, redistributed per bit position with the
// IEEE-layout profile for FP consumers — so the bit estimator's
// width-mean stays comparable to the scalar estimator while the per-bit
// structure matches the bit-position dependence the injectors measure.
//
// Both passes are sound at every iteration: the forward lattice starts
// at top (no knowledge) and only monotonically strengthens, and the
// backward noisy-or is the same bounded monotone combine as ace.go, so
// the iteration caps cannot produce unsound facts.

// Bounds carries the launch geometry used to seed S2R special-register
// facts. A nil Bounds (or zero fields) seeds only the geometry-free
// facts (TID.Y = 0, NTID.Y = 1, LANEID < 32, non-negativity).
type Bounds struct {
	GridX, GridY, BlockThreads int
}

// ValueFact is the forward abstract value of one definition: proven
// bits of the destination window plus a signed interval for its 32-bit
// integer interpretation.
type ValueFact struct {
	KB KnownBits
	R  ValueRange
}

func topFact(w int) ValueFact { return ValueFact{KB: kbTop(w), R: rFull()} }

func constFact32(v uint32) ValueFact {
	return ValueFact{KB: kbConst(uint64(v), 32), R: rConst(int64(int32(v)))}
}

func meetFact(a, b ValueFact) ValueFact {
	return ValueFact{KB: kbMeet(a.KB, b.KB), R: rUnion(a.R, b.R)}
}

func factEq(a, b ValueFact) bool { return a.KB == b.KB && a.R == b.R }

// refineFact closes the known-bits/range pair under their mutual
// implications: a non-negative interval proves high zeros, and a
// proven-zero sign bit bounds the interval.
func refineFact(f ValueFact) ValueFact {
	if f.KB.Width != 32 {
		return f
	}
	f.KB = kbMeetRefine(f.KB, kbFromRange(f.R, 32))
	f.R = rIntersect(f.R, rFromKB(f.KB))
	if c, ok := f.R.Const(); ok {
		f.KB = kbConst(uint64(uint32(int32(c))), 32)
	}
	return f
}

// kbMeetRefine unions knowledge from two facts proven for the *same*
// value (unlike kbMeet, which intersects facts from different paths).
func kbMeetRefine(a, b KnownBits) KnownBits {
	return KnownBits{Zeros: a.Zeros | b.Zeros, Ones: a.Ones | b.Ones, Width: a.Width}
}

// PredFact is the forward abstract value of a SETP-defined predicate.
type PredFact uint8

// Predicate facts.
const (
	PredUnknown PredFact = iota
	PredTrue
	PredFalse
)

func predMeet(a, b PredFact) PredFact {
	if a == b {
		return a
	}
	return PredUnknown
}

// ACEVector is the bit-resolved ACE estimate for one definition: per
// destination bit, the probability that flipping exactly that bit
// silently corrupts output (SDC) or derails the run (DUE). Width is the
// modeled window: 32 for single registers, 64 for pairs, 64 for MMA
// accumulators (matching the injectors' 64-bit flip window), 1 for
// predicates, 0 for instructions that define nothing.
type ACEVector struct {
	Width int
	SDC   [64]float64
	DUE   [64]float64
}

// Unmasked returns SDC+DUE for one bit.
func (v *ACEVector) Unmasked(b int) float64 { return v.SDC[b] + v.DUE[b] }

// MeanSDC / MeanDUE average the channel over the window.
func (v *ACEVector) MeanSDC() float64 { return v.mean(&v.SDC) }

// MeanDUE averages the DUE channel over the window.
func (v *ACEVector) MeanDUE() float64 { return v.mean(&v.DUE) }

func (v *ACEVector) mean(ch *[64]float64) float64 {
	if v.Width == 0 {
		return 0
	}
	var s float64
	for b := 0; b < v.Width; b++ {
		s += ch[b]
	}
	return s / float64(v.Width)
}

// Dead reports whether every bit of the window is provably masked.
func (v *ACEVector) Dead() bool {
	for b := 0; b < v.Width; b++ {
		if v.Unmasked(b) > aceEps {
			return false
		}
	}
	return true
}

// DeadBits counts the provably-masked bits of the window.
func (v *ACEVector) DeadBits() int {
	n := 0
	for b := 0; b < v.Width; b++ {
		if v.Unmasked(b) <= aceEps {
			n++
		}
	}
	return n
}

// LongestDeadSpan returns the start and length of the longest
// contiguous run of provably-masked bits.
func (v *ACEVector) LongestDeadSpan() (start, length int) {
	best, bestAt, run, runAt := 0, 0, 0, 0
	for b := 0; b < v.Width; b++ {
		if v.Unmasked(b) <= aceEps {
			if run == 0 {
				runAt = b
			}
			run++
			if run > best {
				best, bestAt = run, runAt
			}
		} else {
			run = 0
		}
	}
	return bestAt, best
}

const aceEps = 1e-12

// BitBand buckets a bit position relative to its destination width, for
// the static-vs-injection agreement tables: the low/mid/high thirds of
// the non-sign bits, plus the sign (top) bit.
type BitBand uint8

// Bit bands.
const (
	BandLow BitBand = iota
	BandMid
	BandHigh
	BandSign
	// BandCount is the number of bands.
	BandCount = 4
)

// String names the band.
func (b BitBand) String() string {
	switch b {
	case BandLow:
		return "low"
	case BandMid:
		return "mid"
	case BandHigh:
		return "high"
	case BandSign:
		return "sign"
	}
	return "?"
}

// MarshalText encodes the band name (used for JSON map keys).
func (b BitBand) MarshalText() ([]byte, error) { return []byte(b.String()), nil }

// UnmarshalText decodes a band name.
func (b *BitBand) UnmarshalText(text []byte) error {
	switch string(text) {
	case "mid":
		*b = BandMid
	case "high":
		*b = BandHigh
	case "sign":
		*b = BandSign
	default:
		*b = BandLow
	}
	return nil
}

// BandOf maps a bit position within a destination of the given width to
// its band: the top bit is the sign band, and the remaining width-1
// bits split into equal low/mid/high thirds (the high third takes any
// remainder).
func BandOf(bit, width int) BitBand {
	if width <= 1 || bit >= width-1 {
		return BandSign
	}
	third := (width - 1) / 3
	if third == 0 {
		return BandHigh
	}
	switch {
	case bit < third:
		return BandLow
	case bit < 2*third:
		return BandMid
	default:
		return BandHigh
	}
}

// inEdge is a def-use edge seen from the consumer side.
type inEdge struct {
	Def    int32
	Kind   EdgeKind
	Slot   int8
	DefReg int8
	UseReg int8
}

// bitflow bundles the shared state of the forward and backward passes.
type bitflow struct {
	p      *isa.Program
	du     *DefUse
	bounds *Bounds

	in      [][]inEdge // per consumer, incoming def edges
	uninitG map[uint32]bool
	uninitP map[uint32]bool

	facts []ValueFact
	preds []PredFact
	// predNontriv marks proven SETP outcomes whose proof needed range
	// reasoning on a non-constant operand — the findings worth
	// reporting, as opposed to folding a compare of two constants.
	predNontriv []bool
}

func newBitflow(p *isa.Program, du *DefUse, bounds *Bounds) *bitflow {
	n := len(p.Instrs)
	bf := &bitflow{
		p: p, du: du, bounds: bounds,
		in:          make([][]inEdge, n),
		uninitG:     map[uint32]bool{},
		uninitP:     map[uint32]bool{},
		facts:       make([]ValueFact, n),
		preds:       make([]PredFact, n),
		predNontriv: make([]bool, n),
	}
	for def := range du.Out {
		for _, e := range du.Out[def] {
			bf.in[e.Use] = append(bf.in[e.Use], inEdge{
				Def: int32(def), Kind: e.Kind, Slot: e.Slot,
				DefReg: e.DefReg, UseReg: e.UseReg,
			})
		}
	}
	for _, u := range du.Uninit {
		if u.IsPred {
			bf.uninitP[uint32(u.Instr)<<4|uint32(u.Pred)] = true
		} else {
			bf.uninitG[uint32(u.Instr)<<9|uint32(u.Reg)] = true
		}
	}
	for i := range p.Instrs {
		bf.facts[i] = topFact(bf.widthOf(i))
	}
	return bf
}

// widthOf returns the modeled destination window width of instruction i.
func (bf *bitflow) widthOf(i int) int {
	in := &bf.p.Instrs[i]
	if n := in.DstRegs(); n > 0 {
		if n >= 2 {
			return 64 // pairs; MMA is modeled by its first-64-bit window
		}
		return 32
	}
	if _, ok := in.WritesPredReg(); ok {
		return 1
	}
	return 0
}

// regFact evaluates the fact of one 32-bit register read by consumer u
// at operand slot/register-offset j.
func (bf *bitflow) regFact(u, slot, j int, r isa.Reg) ValueFact {
	if r == isa.RZ {
		return constFact32(0)
	}
	if bf.uninitG[uint32(u)<<9|uint32(r)] {
		return topFact(32)
	}
	have := false
	var acc ValueFact
	for _, e := range bf.in[u] {
		if int(e.Slot) != slot || int(e.UseReg) != j || e.Kind == EdgeGuard ||
			e.Kind == EdgeBranchGuard || e.Kind == EdgeSelCond {
			continue
		}
		f := bf.extract32(bf.facts[e.Def], int(e.DefReg))
		if !have {
			acc, have = f, true
		} else {
			acc = meetFact(acc, f)
		}
	}
	if !have {
		return topFact(32)
	}
	return acc
}

// extract32 slices the register-`part` fact out of a definition's
// window fact.
func (bf *bitflow) extract32(f ValueFact, part int) ValueFact {
	if f.KB.Width == 32 && part == 0 {
		return f
	}
	return ValueFact{KB: kbExtract32(f.KB, part), R: rFull()}
}

// operandFact evaluates the 32-bit fact of operand slot of consumer u,
// applying the integer negation modifier when asked.
func (bf *bitflow) operandFact(u, slot int) ValueFact {
	in := &bf.p.Instrs[u]
	op := in.Srcs[slot]
	if op.IsImm {
		return constFact32(op.Imm)
	}
	return refineFact(bf.regFact(u, slot, 0, op.Reg))
}

func (bf *bitflow) operandFactNeg(u, slot int) ValueFact {
	f := bf.operandFact(u, slot)
	if !bf.p.Instrs[u].Neg[slot] {
		return f
	}
	return refineFact(ValueFact{KB: kbNeg(f.KB), R: rNeg(f.R)})
}

// predFactOf evaluates a predicate read of consumer u with the given
// edge kinds (guard vs SEL condition).
func (bf *bitflow) predFactOf(u int, pr isa.PredReg, selCond bool) PredFact {
	if pr == isa.PT {
		return PredTrue
	}
	if bf.uninitP[uint32(u)<<4|uint32(pr)] {
		return PredUnknown
	}
	have := false
	acc := PredUnknown
	for _, e := range bf.in[u] {
		isCond := e.Kind == EdgeSelCond
		if e.Slot != -1 || isCond != selCond {
			continue
		}
		if e.Kind != EdgeSelCond && e.Kind != EdgeGuard && e.Kind != EdgeBranchGuard {
			continue
		}
		f := bf.preds[e.Def]
		if !have {
			acc, have = f, true
		} else {
			acc = predMeet(acc, f)
		}
	}
	if !have {
		return PredUnknown
	}
	return acc
}

// branchAlways evaluates a conditional branch guard: (taken,
// nontrivial, proven), where nontrivial reports that at least one
// contributing SETP proof involved a non-constant operand range.
func (bf *bitflow) branchAlways(i int) (taken, nontrivial, known bool) {
	in := &bf.p.Instrs[i]
	gf := bf.predFactOf(i, in.Pred, false)
	if gf == PredUnknown {
		return false, false, false
	}
	for _, e := range bf.in[i] {
		if e.Slot == -1 && e.Kind == EdgeBranchGuard && bf.predNontriv[e.Def] {
			nontrivial = true
		}
	}
	return (gf == PredTrue) != in.PredNeg, nontrivial, true
}

// allSrcConst reports whether every register value instruction i reads
// is itself proven constant — in which case a constant result is plain
// constant folding, not a masking insight worth a finding.
func (bf *bitflow) allSrcConst(i int) bool {
	in := &bf.p.Instrs[i]
	for _, sp := range srcSpans(in) {
		for j := 0; j < sp.N; j++ {
			f := refineFact(bf.regFact(i, int(sp.Slot), j, sp.Base+isa.Reg(j)))
			if !f.KB.IsConst() {
				return false
			}
		}
	}
	return true
}

// seedS2R builds the launch-geometry fact for a special register.
func (bf *bitflow) seedS2R(sr isa.SpecialReg) ValueFact {
	nonneg := ValueFact{KB: kbTop(32), R: ValueRange{0, int64(^uint32(0) >> 1)}}
	b := bf.bounds
	switch sr {
	case isa.SrTidY:
		return constFact32(0)
	case isa.SrNtidY:
		return constFact32(1)
	case isa.SrLaneID:
		return refineFact(ValueFact{KB: kbTop(32), R: ValueRange{0, 31}})
	case isa.SrTidX:
		if b != nil && b.BlockThreads > 0 {
			return refineFact(ValueFact{KB: kbTop(32), R: ValueRange{0, int64(b.BlockThreads) - 1}})
		}
	case isa.SrNtidX:
		if b != nil && b.BlockThreads > 0 {
			return constFact32(uint32(b.BlockThreads))
		}
	case isa.SrCtaidX:
		if b != nil && b.GridX > 0 {
			return refineFact(ValueFact{KB: kbTop(32), R: ValueRange{0, int64(b.GridX) - 1}})
		}
	case isa.SrCtaidY:
		if b != nil && b.GridY > 0 {
			return refineFact(ValueFact{KB: kbTop(32), R: ValueRange{0, int64(b.GridY) - 1}})
		}
	case isa.SrNctaidX:
		if b != nil && b.GridX > 0 {
			return constFact32(uint32(b.GridX))
		}
	case isa.SrNctaidY:
		if b != nil && b.GridY > 0 {
			return constFact32(uint32(b.GridY))
		}
	case isa.SrWarpID:
		if b != nil && b.BlockThreads > 0 {
			return refineFact(ValueFact{KB: kbTop(32), R: ValueRange{0, int64((b.BlockThreads+31)/32) - 1}})
		}
	}
	return refineFact(nonneg)
}

// transfer computes instruction i's destination fact and (for SETP) its
// predicate fact from the current operand facts.
func (bf *bitflow) transfer(i int) (ValueFact, PredFact) {
	in := &bf.p.Instrs[i]
	w := bf.widthOf(i)
	pf := PredUnknown
	if w == 0 {
		return topFact(0), pf
	}

	out := topFact(w)
	switch in.Op {
	case isa.OpMOV, isa.OpMOV32I:
		out = bf.operandFact(i, 0)
	case isa.OpS2R:
		out = bf.seedS2R(in.SReg)
	case isa.OpSEL:
		cond := bf.predFactOf(i, in.DstP, true)
		switch cond {
		case PredTrue:
			out = bf.operandFact(i, 0)
		case PredFalse:
			out = bf.operandFact(i, 1)
		default:
			out = meetFact(bf.operandFact(i, 0), bf.operandFact(i, 1))
		}
	case isa.OpIADD:
		a, b := bf.operandFactNeg(i, 0), bf.operandFactNeg(i, 1)
		out = ValueFact{KB: kbAdd(a.KB, b.KB), R: rAdd(a.R, b.R)}
	case isa.OpIMUL:
		a, b := bf.operandFactNeg(i, 0), bf.operandFactNeg(i, 1)
		out = ValueFact{KB: kbMul(a.KB, b.KB), R: rMul(a.R, b.R)}
	case isa.OpIMAD:
		a, b := bf.operandFactNeg(i, 0), bf.operandFactNeg(i, 1)
		c := bf.operandFactNeg(i, 2)
		m := ValueFact{KB: kbMul(a.KB, b.KB), R: rMul(a.R, b.R)}
		out = ValueFact{KB: kbAdd(m.KB, c.KB), R: rAdd(m.R, c.R)}
	case isa.OpIMNMX:
		a, b := bf.operandFact(i, 0), bf.operandFact(i, 1)
		out.KB = kbMeet(a.KB, b.KB)
		if in.Cmp == isa.CmpLT {
			out.R = rMin(a.R, b.R)
		} else {
			out.R = rMax(a.R, b.R)
		}
	case isa.OpLOP:
		a, b := bf.operandFact(i, 0), bf.operandFact(i, 1)
		switch in.Logic {
		case isa.LopAND:
			out.KB = kbAnd(a.KB, b.KB)
		case isa.LopOR:
			out.KB = kbOr(a.KB, b.KB)
		case isa.LopXOR:
			out.KB = kbXor(a.KB, b.KB)
		}
		out.R = rFull()
	case isa.OpSHF:
		a, amt := bf.operandFact(i, 0), bf.operandFact(i, 1)
		if amt.KB.IsConst() {
			k := int(amt.KB.Const() & 31)
			if in.Shift == isa.ShiftL {
				out = ValueFact{KB: kbShl(a.KB, k), R: rShl(a.R, k)}
			} else {
				out = ValueFact{KB: kbShr(a.KB, k), R: rShr(a.R, k)}
			}
		} else if in.Shift == isa.ShiftR && a.R.Lo >= 0 {
			// Unknown amount (possibly 0): a logical right shift of a
			// non-negative value can only shrink it.
			out.R = ValueRange{0, a.R.Hi}
		}
	case isa.OpHADD, isa.OpHMUL, isa.OpHFMA:
		// F16 results land in the low half; the high half is forced 0.
		out.KB = KnownBits{Zeros: 0xffff0000, Width: 32}
		out.R = ValueRange{0, 0xffff}
	case isa.OpF2F:
		if in.CvtTo == isa.F16 {
			out.KB = KnownBits{Zeros: 0xffff0000, Width: 32}
			out.R = ValueRange{0, 0xffff}
		}
	case isa.OpISETP:
		a, b := bf.operandFact(i, 0), bf.operandFact(i, 1)
		if always, known := cmpAlways(in.Cmp, a.R, b.R); known {
			if always {
				pf = PredTrue
			} else {
				pf = PredFalse
			}
			_, ac := a.R.Const()
			_, bc := b.R.Const()
			bf.predNontriv[i] = !(ac && bc)
		}
		return topFact(w), pf
	}
	if out.KB.Width == 32 {
		out = refineFact(out)
	}
	return out, pf
}

// forward runs the abstract interpretation to a fixpoint (or the sweep
// cap; every intermediate state is sound).
func (bf *bitflow) forward() {
	n := len(bf.p.Instrs)
	for sweep := 0; sweep < 64; sweep++ {
		changed := false
		for i := 0; i < n; i++ {
			f, pf := bf.transfer(i)
			if !factEq(f, bf.facts[i]) || pf != bf.preds[i] {
				bf.facts[i], bf.preds[i] = f, pf
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// propagateVec iterates the backward per-bit transfer to a fixpoint:
// ace.go's noisy-or combine, carried independently per destination bit,
// with the forward facts deciding which bits an edge can actually move.
func (bf *bitflow) propagateVec() []ACEVector {
	p := bf.p
	n := len(p.Instrs)
	vec := make([]ACEVector, n)
	for i := range vec {
		vec[i].Width = bf.widthOf(i)
	}
	const eps = 1e-9
	var missSDC, missDUE [64]float64
	for iter := 0; iter < 400; iter++ {
		changed := false
		for i := n - 1; i >= 0; i-- {
			w := vec[i].Width
			if w == 0 {
				continue
			}
			for b := 0; b < w; b++ {
				missSDC[b], missDUE[b] = 1, 1
			}
			for _, e := range bf.du.Out[i] {
				bf.edgeContrib(i, e, vec, w, &missSDC, &missDUE)
			}
			for b := 0; b < w; b++ {
				sdc, due := 1-missSDC[b], 1-missDUE[b]
				if t := sdc + due; t > 1 {
					sdc /= t
					due /= t
				}
				if abs(sdc-vec[i].SDC[b]) > eps || abs(due-vec[i].DUE[b]) > eps {
					changed = true
				}
				vec[i].SDC[b], vec[i].DUE[b] = sdc, due
			}
		}
		if !changed {
			break
		}
	}
	return vec
}

// edgeContrib folds one def-use edge of definition i into the per-bit
// miss products.
func (bf *bitflow) edgeContrib(i int, e UseEdge, vec []ACEVector, w int, missSDC, missDUE *[64]float64) {
	useIn := &bf.p.Instrs[e.Use]
	lo := 32 * int(e.DefReg)
	if w == 1 {
		lo = 0 // predicate definitions occupy the single bit 0
	}
	if lo >= w {
		return // beyond the modeled window (MMA tail fragments)
	}
	hi := min(lo+32, w)
	apply := func(b int, s, d float64) {
		missSDC[b] *= 1 - s
		missDUE[b] *= 1 - d
	}

	switch e.Kind {
	case EdgeStoreVal:
		s := SinkStoreSDC
		if useIn.Op == isa.OpSTS {
			s = SinkSharedStoreSDC
		}
		for b := lo; b < hi; b++ {
			missSDC[b] *= 1 - s
		}
		return
	case EdgeAddr:
		for b := lo; b < hi; b++ {
			if b-lo < AddrPageBits {
				apply(b, AddrLowSDC, AddrLowDUE)
			} else {
				apply(b, AddrHighSDC, AddrHighDUE)
			}
		}
		return
	}

	uv := &vec[e.Use]
	meanS, meanD := uv.MeanSDC(), uv.MeanDUE()
	switch e.Kind {
	case EdgeBranchGuard:
		apply(0, SinkBranchSDC, SinkBranchDUE)
		return
	case EdgeGuard:
		apply(0, PassGuard*meanS, PassGuard*meanD)
		return
	case EdgeSelCond:
		apply(0, PassSelCond*meanS, PassSelCond*meanD)
		return
	case EdgeCmp:
		bf.cmpContrib(i, e, useIn, uv, w, lo, hi, apply)
		return
	}
	bf.dataContrib(i, e, useIn, uv, lo, hi, meanS, meanD, apply)
}

// cmpContrib handles a comparison source: a flip is provably masked
// when, under the derived ranges, it cannot move the operand across the
// comparison threshold; otherwise the scalar compare factor applies.
func (bf *bitflow) cmpContrib(i int, e UseEdge, useIn *isa.Instr, uv *ACEVector,
	w, lo, hi int, apply func(int, float64, float64)) {
	vb := useIn.SrcValueBits(int(e.Slot))
	// Range reasoning is sound only for a single-register integer value
	// read directly (ISETP reads are never negated).
	provable := useIn.Op == isa.OpISETP && w == 32 && e.DefReg == 0 && e.UseReg == 0
	var own, other ValueRange
	if provable {
		own = bf.facts[i].R
		other = bf.operandFact(e.Use, 1-int(e.Slot)).R
	}
	s0, d0 := uv.SDC[0], uv.DUE[0]
	for b := lo; b < hi; b++ {
		rb := b - lo
		if rb >= vb {
			continue // register bits the comparison never reads
		}
		if provable {
			delta := int64(1) << uint(rb)
			expanded := rExpand(own, delta)
			var known bool
			if int(e.Slot) == 0 {
				_, known = cmpAlways(useIn.Cmp, expanded, other)
			} else {
				_, known = cmpAlways(useIn.Cmp, other, expanded)
			}
			if known {
				continue // the flip cannot change the predicate
			}
		}
		apply(b, PassCmp*s0, PassCmp*d0)
	}
}

// stencilKind says how one data-edge bit reads the consumer's vector.
type stencilKind uint8

const (
	stExact    stencilKind = iota // channel[idx] (out of range: 0)
	stMeanFrom                    // mean of the channel over bits >= idx
	stMean                        // mean of the channel over the window
)

// bitStencil is the per-bit transfer of one data edge: where the
// flipped bit lands in the consumer's vector and with what pass factor.
// It is channel-agnostic — dataContrib applies it to the SDC and DUE
// channels, and the DUE-mode propagation (duemode.go) applies the same
// stencil to the per-mode channels, so the two backward passes cannot
// drift apart per opcode.
type bitStencil struct {
	kind stencilKind
	f    float64
	idx  int
}

// edgeInvariants holds the per-edge forward facts the stencil needs,
// hoisted out of the bit loop.
type edgeInvariants struct {
	otherKB    KnownBits
	shiftK     int
	shiftKnown bool
}

func (bf *bitflow) edgeInvariantsOf(e UseEdge, useIn *isa.Instr) edgeInvariants {
	var inv edgeInvariants
	switch useIn.Op {
	case isa.OpLOP:
		inv.otherKB = bf.operandFact(e.Use, 1-int(e.Slot)).KB
	case isa.OpSHF:
		if amt := bf.operandFact(e.Use, 1).KB; amt.IsConst() {
			inv.shiftK, inv.shiftKnown = int(amt.Const()&31), true
		}
	}
	return inv
}

// dataStencil computes the transfer stencil for one consumed bit: the
// per-opcode factor tables of tuning.go plus the known-bits/shift-amount
// proofs, exactly as the original inline switch applied them.
func dataStencil(useIn *isa.Instr, slot, ub, uw int, inv edgeInvariants) bitStencil {
	switch useIn.Op {
	case isa.OpMOV, isa.OpMOV32I:
		return bitStencil{stExact, PassMove, ub}
	case isa.OpSEL:
		return bitStencil{stExact, PassSel * intBitFactor(ub), ub}
	case isa.OpIADD:
		return bitStencil{stExact, PassIAdd * intBitFactor(ub), ub}
	case isa.OpIMAD:
		if slot == 2 {
			// The addend is bit-aligned (same-bit shape), but its
			// pass factor matches the scalar model's single IMAD
			// factor so the two estimators stay mean-calibrated.
			return bitStencil{stExact, PassIMul * intBitFactor(ub), ub}
		}
		return bitStencil{stMeanFrom, PassIMul * intBitFactor(ub), ub}
	case isa.OpIMUL:
		return bitStencil{stMeanFrom, PassIMul * intBitFactor(ub), ub}
	case isa.OpIMNMX:
		return bitStencil{stExact, PassMinMax * intBitFactor(ub), ub}
	case isa.OpLOP:
		var f float64
		switch {
		case useIn.Logic == isa.LopXOR:
			f = PassXor
		case useIn.Logic == isa.LopAND && inv.otherKB.ZeroAt(ub):
			f = 0 // proven masked
		case useIn.Logic == isa.LopAND && inv.otherKB.OneAt(ub):
			f = 1 // proven pass-through
		case useIn.Logic == isa.LopOR && inv.otherKB.OneAt(ub):
			f = 0 // proven masked
		case useIn.Logic == isa.LopOR && inv.otherKB.ZeroAt(ub):
			f = 1
		default:
			f = PassAndOr
		}
		return bitStencil{stExact, f, ub}
	case isa.OpSHF:
		switch {
		case slot == 1: // flipping the shift amount
			return bitStencil{stMean, PassShift, 0}
		case inv.shiftKnown:
			ob := ub + inv.shiftK
			if useIn.Shift == isa.ShiftR {
				ob = ub - inv.shiftK
			}
			return bitStencil{stExact, 1, ob} // exact relocation; out of range = shifted out
		default:
			return bitStencil{stMean, PassShift, 0}
		}
	case isa.OpFADD, isa.OpFFMA:
		return bitStencil{stExact, fpBitFactor(32, ub), ub}
	case isa.OpFMUL:
		return bitStencil{stExact, FPMulScale * fpBitFactor(32, ub), ub}
	case isa.OpDADD, isa.OpDFMA:
		return bitStencil{stExact, fpBitFactor(64, ub), ub}
	case isa.OpDMUL:
		return bitStencil{stExact, FPMulScale * fpBitFactor(64, ub), ub}
	case isa.OpHADD, isa.OpHFMA:
		return bitStencil{stExact, fpBitFactor(16, ub), ub}
	case isa.OpHMUL:
		return bitStencil{stExact, FPMulScale * fpBitFactor(16, ub), ub}
	case isa.OpHMMA, isa.OpFMMA:
		return bitStencil{stMean, PassMMA, 0}
	case isa.OpMUFU:
		return bitStencil{stMean, PassMufu, 0}
	case isa.OpF2F:
		inB, outB := useIn.CvtFrom.Bits(), useIn.CvtTo.Bits()
		switch {
		case inB > outB: // narrowing: dropped bits mostly round away
			drop := inB - outB
			if ub < drop {
				return bitStencil{stMean, CvtDropFactor, 0}
			}
			return bitStencil{stExact, CvtKeepFactor, ub - drop}
		case inB < outB: // widening: align the sign/exponent region
			return bitStencil{stExact, CvtKeepFactor, ub + outB - inB}
		default:
			return bitStencil{stExact, PassCvt, ub}
		}
	case isa.OpF2I, isa.OpI2F:
		return bitStencil{stMean, PassCvt, 0}
	}
	return bitStencil{stExact, PassDefault, min(ub, max(uw-1, 0))}
}

// dataContrib handles a value operand: per def bit, the probability the
// flip survives into the consumer's destination, times the consumer's
// own per-bit ACE at the bits it can land in.
func (bf *bitflow) dataContrib(i int, e UseEdge, useIn *isa.Instr, uv *ACEVector,
	lo, hi int, meanS, meanD float64, apply func(int, float64, float64)) {
	uw := uv.Width
	atS := func(idx int) float64 {
		if idx < 0 || idx >= uw {
			return 0
		}
		return uv.SDC[idx]
	}
	atD := func(idx int) float64 {
		if idx < 0 || idx >= uw {
			return 0
		}
		return uv.DUE[idx]
	}
	// meanFrom averages the consumer's vector over bits >= from: a
	// multiply spreads an input bit over the output bits at or above it.
	meanFrom := func(ch *[64]float64, from int) float64 {
		if uw == 0 {
			return 0
		}
		if from >= uw {
			from = uw - 1
		}
		var s float64
		for b := from; b < uw; b++ {
			s += ch[b]
		}
		return s / float64(uw-from)
	}

	vb := useIn.SrcValueBits(int(e.Slot))
	slot := int(e.Slot)
	inv := bf.edgeInvariantsOf(e, useIn)

	for b := lo; b < hi; b++ {
		rb := b - lo
		if rb >= vb {
			continue // the consumer never reads these register bits
		}
		ub := 32*int(e.UseReg) + rb
		st := dataStencil(useIn, slot, ub, uw, inv)
		var s, d float64
		switch st.kind {
		case stMean:
			s, d = st.f*meanS, st.f*meanD
		case stMeanFrom:
			s, d = st.f*meanFrom(&uv.SDC, st.idx), st.f*meanFrom(&uv.DUE, st.idx)
		default:
			s, d = st.f*atS(st.idx), st.f*atD(st.idx)
		}
		apply(b, s, d)
	}
}
