package analysis

import "gpurel/internal/isa"

// ACE (Architecturally Correct Execution) bit estimation. For every
// instruction that defines a value (a GPR span or a predicate), the
// analyzer estimates the probability that a single bit flipped in that
// value changes architectural output — split into an SDC channel (the
// corruption reaches stored output silently) and a DUE channel (the
// corruption derails addressing or control and crashes/hangs the run).
//
// The estimate propagates backward along def-use chains: a value is ACE
// to the extent its consumers are, attenuated by a per-consumer logical-
// masking factor (an AND masks half the bits, a MUFU compresses its
// input, an FP16 consumer reads only 16 of 32 bits, ...). Sinks are the
// memory system (stored values, addresses) and control flow (branch
// guards). Contributions combine as independent paths (noisy-or), in
// the spirit of the two-level SDC model of Hari et al. and classic
// ACE/AVF analysis: static AVF = sum over sites of ACE fraction.
//
// A value nothing consumes has ACE 0: it is architecturally dead, and —
// transitively — so is everything that only feeds dead values. This is
// the static counterpart of the dead/ineffectual-code difference the
// paper blames for the SASSIFI-vs-NVBitFI AVF gap (§VI).

// InstrACE is the per-instruction ACE estimate.
type InstrACE struct {
	// SDC / DUE estimate the probability that a destination bit flip
	// silently corrupts output / crashes-hangs the run. SDC+DUE <= 1.
	SDC float64
	DUE float64
}

// Unmasked returns the total probability the flip is not masked.
func (a InstrACE) Unmasked() float64 { return a.SDC + a.DUE }

// Dead reports whether the instruction's result is architecturally dead.
func (a InstrACE) Dead() bool { return a.SDC+a.DUE < 1e-12 }

// Terminal sink weights (sdc, due): where a corrupted value meets
// architectural output directly.
func sinkWeights(kind EdgeKind, useOp isa.Op) (float64, float64, bool) {
	switch kind {
	case EdgeStoreVal:
		if useOp == isa.OpSTS {
			// Shared memory round-trips back through LDS before it can
			// reach output; memory is not tracked, so attenuate.
			return 0.8, 0, true
		}
		return 1.0, 0, true // STG/RED write architectural output
	case EdgeAddr:
		// A flipped address bit reads/writes the wrong location: wrong
		// data (SDC) or out-of-bounds (DUE), cf. the simulator's
		// address-fault semantics.
		return 0.45, 0.45, true
	case EdgeBranchGuard:
		// A flipped branch guard takes the wrong path: wrong-output SDC
		// or livelock/fetch-overrun DUE in comparable measure.
		return 0.4, 0.4, true
	}
	return 0, 0, false
}

// passFactor returns the attenuation applied when a value flows through
// the consuming instruction into that instruction's own destination:
// the fraction of input-bit flips expected to survive into the result.
func passFactor(in *isa.Instr, kind EdgeKind) float64 {
	switch kind {
	case EdgeCmp:
		// A single input bit rarely crosses the comparison threshold:
		// strong logical masking before the predicate.
		return 0.3
	case EdgeGuard:
		// Flipping the guard toggles whether the consumer writes at
		// all: its (stale or spurious) result is wrong where used.
		return 0.8
	case EdgeSelCond:
		return 0.5 // SEL picks the other input: wrong half the time
	}
	switch in.Op {
	case isa.OpMOV, isa.OpMOV32I:
		return 1.0
	case isa.OpSEL:
		return 0.5 // each input is selected about half the time
	case isa.OpIADD:
		return 1.0
	case isa.OpLOP:
		if in.Logic == isa.LopXOR {
			return 1.0
		}
		return 0.5 // AND/OR mask roughly half the input bits
	case isa.OpSHF:
		return 0.7 // bits shifted out are lost
	case isa.OpIMNMX:
		return 0.5 // only the selected operand survives
	case isa.OpIMUL, isa.OpIMAD:
		return 0.8
	case isa.OpFADD, isa.OpDADD, isa.OpFFMA, isa.OpDFMA:
		return 0.75 // alignment/rounding mask low-order bits
	case isa.OpFMUL, isa.OpDMUL:
		return 0.7
	case isa.OpHADD, isa.OpHFMA:
		return 0.375 // FP16 reads 16 of 32 register bits, then rounds
	case isa.OpHMUL:
		return 0.35
	case isa.OpHMMA, isa.OpFMMA:
		return 0.8 // wide dot-products propagate most input faults
	case isa.OpMUFU:
		return 0.5 // transcendentals compress their domain
	case isa.OpF2F, isa.OpF2I, isa.OpI2F:
		return 0.6 // width conversion truncates or renormalizes
	default:
		return 0.8
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// propagateACE iterates the backward transfer to a fixpoint. The
// combine is noisy-or over def-use edges, which is monotone and bounded,
// so the sweep converges; the epsilon cut bounds the loop count on
// cyclic (loop-carried) chains.
func propagateACE(p *isa.Program, du *DefUse) []InstrACE {
	n := len(p.Instrs)
	ace := make([]InstrACE, n)
	const eps = 1e-9
	for iter := 0; iter < 1000; iter++ {
		changed := false
		for i := n - 1; i >= 0; i-- {
			var missSDC, missDUE float64 = 1, 1
			for _, e := range du.Out[i] {
				useIn := &p.Instrs[e.Use]
				if s, d, terminal := sinkWeights(e.Kind, useIn.Op); terminal {
					missSDC *= 1 - s
					missDUE *= 1 - d
					continue
				}
				f := passFactor(useIn, e.Kind)
				missSDC *= 1 - f*ace[e.Use].SDC
				missDUE *= 1 - f*ace[e.Use].DUE
			}
			sdc, due := 1-missSDC, 1-missDUE
			if t := sdc + due; t > 1 {
				sdc /= t
				due /= t
			}
			if abs(sdc-ace[i].SDC) > eps || abs(due-ace[i].DUE) > eps {
				changed = true
			}
			ace[i] = InstrACE{SDC: sdc, DUE: due}
		}
		if !changed {
			break
		}
	}
	return ace
}
