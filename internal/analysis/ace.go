package analysis

import "gpurel/internal/isa"

// ACE (Architecturally Correct Execution) bit estimation. For every
// instruction that defines a value (a GPR span or a predicate), the
// analyzer estimates the probability that a single bit flipped in that
// value changes architectural output — split into an SDC channel (the
// corruption reaches stored output silently) and a DUE channel (the
// corruption derails addressing or control and crashes/hangs the run).
//
// The estimate propagates backward along def-use chains: a value is ACE
// to the extent its consumers are, attenuated by a per-consumer logical-
// masking factor (an AND masks half the bits, a MUFU compresses its
// input, an FP16 consumer reads only 16 of 32 bits, ...). Sinks are the
// memory system (stored values, addresses) and control flow (branch
// guards). Contributions combine as independent paths (noisy-or), in
// the spirit of the two-level SDC model of Hari et al. and classic
// ACE/AVF analysis: static AVF = sum over sites of ACE fraction.
//
// A value nothing consumes has ACE 0: it is architecturally dead, and —
// transitively — so is everything that only feeds dead values. This is
// the static counterpart of the dead/ineffectual-code difference the
// paper blames for the SASSIFI-vs-NVBitFI AVF gap (§VI).

// InstrACE is the per-instruction ACE estimate.
type InstrACE struct {
	// SDC / DUE estimate the probability that a destination bit flip
	// silently corrupts output / crashes-hangs the run. SDC+DUE <= 1.
	SDC float64
	DUE float64
}

// Unmasked returns the total probability the flip is not masked.
func (a InstrACE) Unmasked() float64 { return a.SDC + a.DUE }

// Dead reports whether the instruction's result is architecturally dead.
func (a InstrACE) Dead() bool { return a.SDC+a.DUE < 1e-12 }

// Terminal sink weights (sdc, due): where a corrupted value meets
// architectural output directly. The weights live in tuning.go.
func sinkWeights(kind EdgeKind, useOp isa.Op) (float64, float64, bool) {
	switch kind {
	case EdgeStoreVal:
		if useOp == isa.OpSTS {
			return SinkSharedStoreSDC, 0, true
		}
		return SinkStoreSDC, 0, true // STG/RED write architectural output
	case EdgeAddr:
		return SinkAddrSDC, SinkAddrDUE, true
	case EdgeBranchGuard:
		return SinkBranchSDC, SinkBranchDUE, true
	}
	return 0, 0, false
}

// passFactor returns the attenuation applied when a value flows through
// the consuming instruction into that instruction's own destination:
// the fraction of input-bit flips expected to survive into the result.
// The per-opcode factors live in tuning.go; bitflow.go uses the same
// table as its fallback for unproven operands.
func passFactor(in *isa.Instr, kind EdgeKind) float64 {
	switch kind {
	case EdgeCmp:
		return PassCmp
	case EdgeGuard:
		return PassGuard
	case EdgeSelCond:
		return PassSelCond
	}
	switch in.Op {
	case isa.OpMOV, isa.OpMOV32I:
		return PassMove
	case isa.OpSEL:
		return PassSel
	case isa.OpIADD:
		return PassIAdd
	case isa.OpLOP:
		if in.Logic == isa.LopXOR {
			return PassXor
		}
		return PassAndOr
	case isa.OpSHF:
		return PassShift
	case isa.OpIMNMX:
		return PassMinMax
	case isa.OpIMUL, isa.OpIMAD:
		return PassIMul
	case isa.OpFADD, isa.OpDADD, isa.OpFFMA, isa.OpDFMA:
		return PassFAdd
	case isa.OpFMUL, isa.OpDMUL:
		return PassFMul
	case isa.OpHADD, isa.OpHFMA:
		return PassHAdd
	case isa.OpHMUL:
		return PassHMul
	case isa.OpHMMA, isa.OpFMMA:
		return PassMMA
	case isa.OpMUFU:
		return PassMufu
	case isa.OpF2F, isa.OpF2I, isa.OpI2F:
		return PassCvt
	default:
		return PassDefault
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// propagateACE iterates the backward transfer to a fixpoint. The
// combine is noisy-or over def-use edges, which is monotone and bounded,
// so the sweep converges; the epsilon cut bounds the loop count on
// cyclic (loop-carried) chains.
func propagateACE(p *isa.Program, du *DefUse) []InstrACE {
	n := len(p.Instrs)
	ace := make([]InstrACE, n)
	const eps = 1e-9
	// The def-use edges are bit-resolved (one per operand slot and
	// register offset, for bitflow.go); the scalar model works at
	// whole-value granularity, so collapse them back to one edge per
	// (consumer, role) to keep the estimate independent of operand
	// arity and span width.
	type coarseKey struct {
		use  int
		kind EdgeKind
	}
	coarse := make([][]UseEdge, n)
	seen := make(map[coarseKey]bool)
	for i := range du.Out {
		clear(seen)
		for _, e := range du.Out[i] {
			k := coarseKey{e.Use, e.Kind}
			if seen[k] {
				continue
			}
			seen[k] = true
			coarse[i] = append(coarse[i], e)
		}
	}
	for iter := 0; iter < 1000; iter++ {
		changed := false
		for i := n - 1; i >= 0; i-- {
			var missSDC, missDUE float64 = 1, 1
			for _, e := range coarse[i] {
				useIn := &p.Instrs[e.Use]
				if s, d, terminal := sinkWeights(e.Kind, useIn.Op); terminal {
					missSDC *= 1 - s
					missDUE *= 1 - d
					continue
				}
				f := passFactor(useIn, e.Kind)
				missSDC *= 1 - f*ace[e.Use].SDC
				missDUE *= 1 - f*ace[e.Use].DUE
			}
			sdc, due := 1-missSDC, 1-missDUE
			if t := sdc + due; t > 1 {
				sdc /= t
				due /= t
			}
			if abs(sdc-ace[i].SDC) > eps || abs(due-ace[i].DUE) > eps {
				changed = true
			}
			ace[i] = InstrACE{SDC: sdc, DUE: due}
		}
		if !changed {
			break
		}
	}
	return ace
}
