package analysis

import "gpurel/internal/isa"

// Reaching definitions over the CFG, yielding def-use chains: for every
// instruction that defines a register (GPR span or predicate), the set
// of instructions that may consume that value, annotated with the role
// the value plays at the consumer. The ACE propagation walks these edges
// backward; the use-before-def lint reads the entry pseudo-definition.

// EdgeKind classifies one def-use edge for the ACE transfer model.
type EdgeKind uint8

// Def-use edge kinds.
const (
	EdgeData        EdgeKind = iota // value operand of arithmetic/moves/MMA
	EdgeAddr                        // address of a memory operation
	EdgeStoreVal                    // value stored to memory
	EdgeCmp                         // SETP comparison source
	EdgeGuard                       // predicate guarding a non-control instruction
	EdgeBranchGuard                 // predicate guarding BRA/EXIT
	EdgeSelCond                     // predicate selecting a SEL input
)

// UseEdge is one consumer of a definition, resolved to 32-bit register
// granularity: which operand slot of the consumer reads the value, and
// which register of the definition's destination span lands in which
// register of the consumer's source span. The scalar ACE propagation
// collapses edges back to (Use, Kind); the bit-level analysis needs the
// full resolution to map destination bits onto operand bits.
type UseEdge struct {
	Use    int // consuming instruction index
	Kind   EdgeKind
	Slot   int8 // consumer operand index (Instr.Srcs), -1 for predicates
	DefReg int8 // register offset within the definition's dest span
	UseReg int8 // register offset within the consumer's source span
}

// UninitUse records a register read that the entry pseudo-definition may
// reach: on some path the register is read before any instruction
// writes it.
type UninitUse struct {
	Instr  int
	Reg    isa.Reg // meaningful when !IsPred
	IsPred bool
	Pred   isa.PredReg
}

// DefUse is the def-use chain graph.
type DefUse struct {
	// Out[i] lists the uses of instruction i's definitions.
	Out [][]UseEdge
	// Uninit lists possibly-uninitialized reads, in instruction order.
	Uninit []UninitUse
}

// duState is the dataflow value: per register, the definition sites that
// may have produced its current value, plus the entry pseudo-definition
// tracked as an "uninitialized" bit. Slices are copy-on-write: transfer
// functions always allocate fresh slices.
type duState struct {
	g       [256][]int32
	p       [8][]int32
	uninitG RegSet
	uninitP PredSet
}

func (s *duState) clone() duState {
	c := *s
	return c // slice headers are shared; mutations replace headers
}

// unionSets merges sorted unique b into sorted unique a, returning a new
// slice when anything was added.
func unionSets(a, b []int32) ([]int32, bool) {
	if len(b) == 0 {
		return a, false
	}
	if len(a) == 0 {
		return b, true
	}
	merged := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	added := false
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			merged = append(merged, b[j])
			added = true
			j++
		case j == len(b):
			merged = append(merged, a[i])
			i++
		case a[i] < b[j]:
			merged = append(merged, a[i])
			i++
		case a[i] > b[j]:
			merged = append(merged, b[j])
			added = true
			j++
		default:
			merged = append(merged, a[i])
			i++
			j++
		}
	}
	if !added {
		return a, false
	}
	return merged, true
}

// meet folds src into dst, reporting change.
func (s *duState) meet(src *duState) bool {
	changed := false
	for r := range s.g {
		if merged, ch := unionSets(s.g[r], src.g[r]); ch {
			s.g[r] = merged
			changed = true
		}
	}
	for r := range s.p {
		if merged, ch := unionSets(s.p[r], src.p[r]); ch {
			s.p[r] = merged
			changed = true
		}
	}
	if s.uninitG.Union(&src.uninitG) {
		changed = true
	}
	if s.uninitP.Union(src.uninitP) {
		changed = true
	}
	return changed
}

// step applies one instruction's definitions. A predicated definition
// merges with the incumbent defs (the write may not happen); it still
// clears the uninitialized bit, the documented optimistic choice that
// keeps guarded-initialization patterns from being flagged.
func (s *duState) step(i int, in *isa.Instr) {
	uncond := in.Unconditional()
	if n := in.DstRegs(); n > 0 {
		for k := 0; k < n; k++ {
			r := in.Dst + isa.Reg(k)
			if r == isa.RZ {
				continue
			}
			if uncond {
				s.g[r] = []int32{int32(i)}
			} else {
				s.g[r], _ = unionSets(s.g[r], []int32{int32(i)})
			}
			s.uninitG.Remove(r)
		}
	}
	if pr, ok := in.WritesPredReg(); ok {
		if uncond {
			s.p[pr] = []int32{int32(i)}
		} else {
			s.p[pr], _ = unionSets(s.p[pr], []int32{int32(i)})
		}
		s.uninitP.Remove(pr)
	}
}

// buildDefUse runs the reaching-definition fixpoint and collects the
// def-use edges and possibly-uninitialized reads.
func buildDefUse(p *isa.Program, cfg *CFG) *DefUse {
	n := len(p.Instrs)
	du := &DefUse{Out: make([][]UseEdge, n)}
	if n == 0 {
		return du
	}

	in := make([]duState, len(cfg.Blocks))
	// Entry: every register may hold the uninitialized pseudo-value.
	for r := isa.Reg(0); r < isa.Reg(isa.NumGPR); r++ {
		in[0].uninitG.Add(r)
	}
	for pr := isa.PredReg(0); pr < isa.PredReg(isa.NumPred); pr++ {
		in[0].uninitP.Add(pr)
	}

	changed := true
	for changed {
		changed = false
		for _, b := range cfg.Blocks {
			st := in[b.ID].clone()
			for i := b.Start; i < b.End; i++ {
				st.step(i, &p.Instrs[i])
			}
			for _, s := range b.Succs {
				if in[s].meet(&st) {
					changed = true
				}
			}
		}
	}

	// Edge collection over reachable blocks.
	type edgeKey struct {
		def    int32
		use    int
		kind   EdgeKind
		slot   int8
		defReg int8
		useReg int8
	}
	seen := make(map[edgeKey]bool)
	addEdge := func(def int32, use int, kind EdgeKind, slot, defReg, useReg int8) {
		k := edgeKey{def, use, kind, slot, defReg, useReg}
		if seen[k] {
			return
		}
		seen[k] = true
		du.Out[def] = append(du.Out[def], UseEdge{
			Use: use, Kind: kind, Slot: slot, DefReg: defReg, UseReg: useReg,
		})
	}
	uninitSeen := make(map[edgeKey]bool)
	for _, b := range cfg.Blocks {
		if !cfg.Reachable[b.ID] {
			continue
		}
		st := in[b.ID].clone()
		for i := b.Start; i < b.End; i++ {
			inst := &p.Instrs[i]
			for _, span := range srcSpans(inst) {
				kind := EdgeData
				switch span.Kind {
				case UseAddr:
					kind = EdgeAddr
				case UseStoreVal:
					kind = EdgeStoreVal
				case UseCmp:
					kind = EdgeCmp
				}
				for k := 0; k < span.N; k++ {
					r := span.Base + isa.Reg(k)
					if r == isa.RZ {
						continue
					}
					for _, d := range st.g[r] {
						defReg := int8(r - p.Instrs[d].Dst)
						addEdge(d, i, kind, span.Slot, defReg, int8(k))
					}
					if st.uninitG.Has(r) {
						uk := edgeKey{def: int32(r), use: i, kind: 0}
						if !uninitSeen[uk] {
							uninitSeen[uk] = true
							du.Uninit = append(du.Uninit, UninitUse{Instr: i, Reg: r})
						}
					}
				}
			}
			for _, pr := range inst.ReadsPredRegs(nil) {
				kind := EdgeGuard
				if inst.Op == isa.OpSEL && pr == inst.DstP {
					kind = EdgeSelCond
				} else if inst.Op.IsControl() {
					kind = EdgeBranchGuard
				}
				for _, d := range st.p[pr] {
					addEdge(d, i, kind, -1, 0, 0)
				}
				if st.uninitP.Has(pr) {
					uk := edgeKey{def: int32(pr), use: i, kind: 1}
					if !uninitSeen[uk] {
						uninitSeen[uk] = true
						du.Uninit = append(du.Uninit, UninitUse{Instr: i, IsPred: true, Pred: pr})
					}
				}
			}
			st.step(i, inst)
		}
	}
	return du
}
