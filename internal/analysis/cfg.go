package analysis

import "gpurel/internal/isa"

// Block is one basic block: the half-open instruction range [Start, End)
// with no internal control transfers and no internal branch targets.
type Block struct {
	ID         int
	Start, End int
	Succs      []int
	Preds      []int
}

// Last returns the index of the block's final instruction.
func (b *Block) Last() int { return b.End - 1 }

// CFG is the basic-block control-flow graph of one program, built from
// the BRA/SSY/SYNC/EXIT terminators with the same semantics the SIMT
// engine executes: a predicated BRA may split the warp (both successors),
// an unconditional EXIT retires it (no successors), and SYNC jumps to the
// reconvergence point declared by the innermost enclosing SSY.
type CFG struct {
	Prog    *isa.Program
	Blocks  []*Block
	BlockOf []int // instruction index -> block ID

	// SyncTarget maps each SYNC instruction to the reconvergence target
	// of the innermost SSY whose region covers it, or -1 when no SSY
	// region covers it (a lint error: the engine would fault).
	SyncTarget map[int]int

	// FallsOff lists blocks whose control flow can reach the index one
	// past the last instruction — an instruction-fetch DUE at runtime.
	FallsOff []int

	// Reachable marks blocks reachable from the entry block.
	Reachable []bool
}

// BuildCFG partitions the program into basic blocks and wires the edges.
func BuildCFG(p *isa.Program) *CFG {
	n := len(p.Instrs)
	cfg := &CFG{Prog: p, BlockOf: make([]int, n), SyncTarget: make(map[int]int)}
	if n == 0 {
		return cfg
	}

	// Leaders: entry, every branch/SSY target, every post-terminator slot.
	leader := make([]bool, n)
	leader[0] = true
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.HasTarget() && in.Target >= 0 && in.Target < n {
			leader[in.Target] = true
		}
		if in.EndsBlock() && i+1 < n {
			leader[i+1] = true
		}
	}

	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		b := &Block{ID: len(cfg.Blocks), Start: i, End: j}
		cfg.Blocks = append(cfg.Blocks, b)
		for k := i; k < j; k++ {
			cfg.BlockOf[k] = b.ID
		}
		i = j
	}

	// SYNC reconvergence: the innermost SSY whose [ssy, target) range
	// covers the SYNC supplies the target, mirroring the engine's
	// pendingReconv/rpc hand-off.
	for i := range p.Instrs {
		if p.Instrs[i].Op != isa.OpSYNC {
			continue
		}
		cfg.SyncTarget[i] = -1
		for j := i - 1; j >= 0; j-- {
			in := &p.Instrs[j]
			if in.Op == isa.OpSSY && in.Target > i {
				cfg.SyncTarget[i] = in.Target
				break
			}
		}
	}

	edge := func(from *Block, to int) {
		if to >= n {
			cfg.FallsOff = append(cfg.FallsOff, from.ID)
			return
		}
		tb := cfg.BlockOf[to]
		for _, s := range from.Succs {
			if s == tb {
				return
			}
		}
		from.Succs = append(from.Succs, tb)
		cfg.Blocks[tb].Preds = append(cfg.Blocks[tb].Preds, from.ID)
	}

	for _, b := range cfg.Blocks {
		last := &p.Instrs[b.Last()]
		switch {
		case last.Op == isa.OpBRA:
			if last.Target >= 0 {
				edge(b, last.Target)
			}
			if !last.Unconditional() {
				edge(b, b.End)
			}
		case last.Op == isa.OpEXIT:
			if !last.Unconditional() {
				edge(b, b.End)
			}
		case last.Op == isa.OpSYNC:
			if t := cfg.SyncTarget[b.Last()]; t >= 0 {
				edge(b, t)
			} else {
				// Unknown reconvergence: assume fall-through so the rest
				// of the analysis stays conservative; lint flags it.
				edge(b, b.End)
			}
		default:
			edge(b, b.End)
		}
	}

	cfg.Reachable = make([]bool, len(cfg.Blocks))
	stack := []int{0}
	cfg.Reachable[0] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cfg.Blocks[id].Succs {
			if !cfg.Reachable[s] {
				cfg.Reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	return cfg
}
