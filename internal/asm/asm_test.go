package asm

import (
	"strings"
	"testing"

	"gpurel/internal/isa"
)

func TestRegisterAllocation(t *testing.T) {
	b := New("k", O1)
	r0 := b.R()
	r1 := b.R()
	if r0 != 0 || r1 != 1 {
		t.Fatalf("bump allocation broken: %v %v", r0, r1)
	}
	b.R() // r2
	pair := b.RPair()
	if pair%2 != 0 {
		t.Fatalf("pair not even-aligned: %v", pair)
	}
	frag := b.RVec(8, 8)
	if frag%8 != 0 {
		t.Fatalf("fragment not 8-aligned: %v", frag)
	}
}

func TestPredicateReuse(t *testing.T) {
	b := New("k", O1)
	for i := 0; i < 20; i++ {
		p := b.P()
		b.ReleaseP(p)
	}
	b.MovImm(b.R(), 1)
	b.Exit()
	if _, err := b.Build(); err != nil {
		t.Fatalf("predicate reuse failed: %v", err)
	}
}

func TestPredicateExhaustion(t *testing.T) {
	b := New("k", O1)
	for i := 0; i < isa.NumPred; i++ {
		b.P()
	}
	b.P() // eighth: must fail
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "predicate") {
		t.Fatalf("expected predicate exhaustion, got %v", err)
	}
}

func TestStickyError(t *testing.T) {
	b := New("k", O1)
	b.Label("x")
	b.Label("x") // duplicate
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("want duplicate-label error, got %v", err)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := New("k", O1)
	b.Bra("nowhere")
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("want undefined-label error, got %v", err)
	}
}

func TestMissingExit(t *testing.T) {
	b := New("k", O1)
	b.MovImm(b.R(), 1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no EXIT") {
		t.Fatalf("want missing-exit error, got %v", err)
	}
}

func TestGuardApplied(t *testing.T) {
	b := New("k", O1)
	p := b.P()
	r := b.R()
	b.Guarded(p, true, func() {
		b.IAdd(r, isa.R(r), isa.ImmInt(1))
	})
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := prog.Instrs[0]
	if in.Pred != p || !in.PredNeg {
		t.Fatalf("guard not applied: %+v", in)
	}
	if prog.Instrs[1].Pred != isa.PT {
		t.Fatal("guard leaked past Guarded region")
	}
}

func TestSharedAllocationAligned(t *testing.T) {
	b := New("k", O1)
	a := b.AllocShared(12)
	c := b.AllocShared(4)
	if a != 0 || c != 16 {
		t.Fatalf("shared allocation offsets: %d, %d (want 0, 16)", a, c)
	}
	if b.SharedBytes() != 20 {
		t.Fatalf("shared footprint = %d", b.SharedBytes())
	}
}

func TestBranchResolution(t *testing.T) {
	b := New("k", O1)
	r := b.R()
	b.MovImm(r, 0)
	b.Label("loop")
	b.IAdd(r, isa.R(r), isa.ImmInt(1))
	p := b.P()
	b.ISetp(p, isa.CmpLT, isa.R(r), isa.ImmInt(10))
	b.BraIf(p, false, "loop")
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bra := prog.Instrs[3]
	if bra.Op != isa.OpBRA || bra.Target != 1 {
		t.Fatalf("branch target = %d, want 1", bra.Target)
	}
}

// buildWithTemps emits a kernel with a dead temporary and a copy chain so
// the O2 passes have work to do: out = (x+1) via a redundant MOV, plus a
// dead multiply.
func buildWithTemps(opt OptLevel) *isa.Program {
	b := New("k", opt)
	x := b.R()
	tmp := b.R()
	cpy := b.R()
	dead := b.R()
	out := b.R()
	b.MovImm(x, 41)
	b.IAdd(tmp, isa.R(x), isa.ImmInt(1))
	b.Mov(cpy, isa.R(tmp))           // copy: O2 propagates through it
	b.IMul(dead, isa.R(x), isa.R(x)) // dead: nothing reads it
	b.IAdd(out, isa.R(cpy), isa.ImmInt(0))
	addr := b.R()
	b.MovImm(addr, 0x100)
	b.Stg(addr, 0, out)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func TestO2RemovesDeadCode(t *testing.T) {
	p1 := buildWithTemps(O1)
	p2 := buildWithTemps(O2)
	if len(p2.Instrs) >= len(p1.Instrs) {
		t.Fatalf("O2 (%d instrs) should be shorter than O1 (%d)", len(p2.Instrs), len(p1.Instrs))
	}
	for i := range p2.Instrs {
		if p2.Instrs[i].Op == isa.OpIMUL {
			t.Fatal("dead IMUL survived O2 DCE")
		}
	}
	// Copy propagation rewires the consumer to tmp and DCE removes the MOV.
	for i := range p2.Instrs {
		if p2.Instrs[i].Op == isa.OpMOV {
			t.Fatal("copy MOV survived O2")
		}
	}
}

func TestO2KeepsStoresAndControl(t *testing.T) {
	p2 := buildWithTemps(O2)
	var hasStg, hasExit bool
	for i := range p2.Instrs {
		switch p2.Instrs[i].Op {
		case isa.OpSTG:
			hasStg = true
		case isa.OpEXIT:
			hasExit = true
		}
	}
	if !hasStg || !hasExit {
		t.Fatal("O2 removed side-effecting instructions")
	}
}

func TestDCEPreservesLabelsAcrossCompaction(t *testing.T) {
	b := New("k", O2)
	x := b.R()
	dead := b.R()
	b.MovImm(x, 0)
	b.IMul(dead, isa.R(x), isa.R(x)) // dead, before the loop label
	b.Label("loop")
	b.IAdd(x, isa.R(x), isa.ImmInt(1))
	p := b.P()
	b.ISetp(p, isa.CmpLT, isa.R(x), isa.ImmInt(3))
	b.BraIf(p, false, "loop")
	addr := b.R()
	b.MovImm(addr, 0x100)
	b.Stg(addr, 0, x)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Find the backward branch and check it targets the IADD.
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == isa.OpBRA {
			if prog.Instrs[prog.Instrs[i].Target].Op != isa.OpIADD {
				t.Fatalf("branch target drifted after DCE: targets %s",
					prog.Instrs[prog.Instrs[i].Target].Op)
			}
			return
		}
	}
	t.Fatal("no branch found")
}

func TestForCounterUnrollOnlyAtO2(t *testing.T) {
	build := func(opt OptLevel) *isa.Program {
		b := New("k", opt)
		acc := b.R()
		i := b.R()
		b.MovImm(acc, 0)
		b.ForCounter(i, 0, 8, LoopOpts{Unroll: 4}, func() {
			b.IAdd(acc, isa.R(acc), isa.R(i))
		})
		addr := b.R()
		b.MovImm(addr, 0x100)
		b.Stg(addr, 0, acc)
		b.Exit()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	countOp := func(p *isa.Program, op isa.Op) int {
		n := 0
		for i := range p.Instrs {
			if p.Instrs[i].Op == op {
				n++
			}
		}
		return n
	}
	p1, p2 := build(O1), build(O2)
	// O1: one IADD body + one counter increment; O2: four of each.
	if countOp(p1, isa.OpISETP) != 1 || countOp(p2, isa.OpISETP) != 1 {
		t.Fatal("loop test should appear once")
	}
	if countOp(p2, isa.OpIADD) != 4*countOp(p1, isa.OpIADD) {
		t.Fatalf("O2 unroll factor wrong: O1 has %d IADDs, O2 has %d",
			countOp(p1, isa.OpIADD), countOp(p2, isa.OpIADD))
	}
}

func TestForCounterEmptyAndStep(t *testing.T) {
	b := New("k", O1)
	i := b.R()
	b.ForCounter(i, 5, 5, LoopOpts{}, func() { t.Fatal("body of empty loop emitted") })
	b.ForCounter(i, 0, 10, LoopOpts{Step: 3}, func() {})
	b.Exit()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestIfElseStructure(t *testing.T) {
	b := New("k", O1)
	p := b.P()
	r := b.R()
	b.MovImm(r, 0)
	b.ISetp(p, isa.CmpGT, isa.R(r), isa.ImmInt(5))
	b.IfElse(p, false,
		func() { b.IAdd(r, isa.R(r), isa.ImmInt(1)) },
		func() { b.IAdd(r, isa.R(r), isa.ImmInt(2)) })
	addr := b.R()
	b.MovImm(addr, 0x100)
	b.Stg(addr, 0, r)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Expect exactly one SSY and two BRAs (conditional + join jump).
	var ssy, bra int
	for i := range prog.Instrs {
		switch prog.Instrs[i].Op {
		case isa.OpSSY:
			ssy++
		case isa.OpBRA:
			bra++
		}
	}
	if ssy != 1 || bra != 2 {
		t.Fatalf("IfElse shape: %d SSY, %d BRA (want 1, 2)\n%s", ssy, bra, prog.Disassemble())
	}
}

func TestVerifyCatchesMisalignedF64(t *testing.T) {
	b := New("k", O1)
	b.R() // R0, so next pair request would be R2... build misaligned manually
	bad := isa.Reg(1)
	b.DAdd(bad, 2, 4)
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "pair-aligned") {
		t.Fatalf("want pair-alignment error, got %v", err)
	}
}

func TestOptLevelString(t *testing.T) {
	if O1.String() != "O1" || O2.String() != "O2" {
		t.Fatal("bad OptLevel names")
	}
}
