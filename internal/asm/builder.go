// Package asm is the kernel authoring and compilation layer: a builder
// API for emitting SASS-like instructions, structured control-flow helpers
// that generate correct SSY-based divergence management, and an optimizing
// backend organized as a configurable matrix. Three base pipelines:
//
//   - O0 (naive): no passes at all; the emitted instructions are the
//     program, temporaries and loop tests included.
//   - O1 ("CUDA 7.0-era", the SASSIFI toolchain): the legacy backend's
//     MOV-heavy register allocation, no optimization.
//   - O2 ("CUDA 10.1-era", the NVBitFI toolchain): block-local copy
//     propagation, global dead-code elimination, and unrolling of loops
//     the author marked unrollable.
//
// Orthogonal knobs perturb a base pipeline (see OptLevel): an unroll
// factor override applied to every counted loop, copy propagation
// forced on or off, and a register-pressure variant that spills
// long-lived values through shared memory.
//
// The paper observes that the same source compiled by two toolchains
// yields different SASS and hence different AVFs (§VI); compiling every
// workload through the matrix reproduces and dissects that mechanism.
package asm

import (
	"fmt"

	"gpurel/internal/isa"
)

// Builder accumulates instructions for one kernel. Errors stick: the
// first problem is reported by Build and later calls are no-ops, so
// kernel authors do not need to check every emission.
type Builder struct {
	name string
	opt  OptLevel

	instrs  []isa.Instr
	targets map[int]string // instruction index -> label it branches to
	labels  map[string]int // label -> instruction index it precedes

	nextReg   int
	nextPred  int
	freePreds []isa.PredReg
	shared    int

	guard    isa.PredReg
	guardNeg bool

	err error
}

// New creates a builder for a kernel compiled at the given level.
func New(name string, opt OptLevel) *Builder {
	return &Builder{
		name:    name,
		opt:     opt,
		targets: make(map[int]string),
		labels:  make(map[string]int),
		guard:   isa.PT,
	}
}

// Opt returns the builder's optimization level, so kernel sources can
// consult it (e.g. to pick a tile shape) the way real kernels use
// __CUDA_ARCH__.
func (b *Builder) Opt() OptLevel { return b.opt }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm(%s): %s", b.name, fmt.Sprintf(format, args...))
	}
}

// R allocates the next free general-purpose register.
func (b *Builder) R() isa.Reg {
	if b.nextReg >= isa.NumGPR {
		b.fail("out of registers")
		return 0
	}
	r := isa.Reg(b.nextReg)
	b.nextReg++
	return r
}

// RPair allocates an even-aligned register pair (for FP64 values) and
// returns the base register.
func (b *Builder) RPair() isa.Reg { return b.RVec(2, 2) }

// RVec allocates n consecutive registers with the given alignment and
// returns the base. MMA fragments use RVec(4, 4) and RVec(8, 8).
func (b *Builder) RVec(n, align int) isa.Reg {
	for b.nextReg%align != 0 {
		b.nextReg++
	}
	if b.nextReg+n > isa.NumGPR {
		b.fail("out of registers allocating %d-vector", n)
		return 0
	}
	r := isa.Reg(b.nextReg)
	b.nextReg += n
	return r
}

// P allocates a predicate register, reusing ones returned via ReleaseP.
func (b *Builder) P() isa.PredReg {
	if n := len(b.freePreds); n > 0 {
		p := b.freePreds[n-1]
		b.freePreds = b.freePreds[:n-1]
		return p
	}
	if b.nextPred >= isa.NumPred {
		b.fail("out of predicate registers")
		return 0
	}
	p := isa.PredReg(b.nextPred)
	b.nextPred++
	return p
}

// AllocShared reserves bytes of shared memory (8-byte aligned) and
// returns the base offset within the block's shared region.
func (b *Builder) AllocShared(bytes int) uint32 {
	base := (b.shared + 7) &^ 7
	b.shared = base + bytes
	return uint32(base)
}

// SharedBytes returns the shared-memory footprint per block.
func (b *Builder) SharedBytes() int { return b.shared }

// Guarded emits the instructions produced by fn under guard predicate p:
// they execute only in threads where p holds (or !p when neg is set).
// Guards nest by composition only through distinct predicates.
func (b *Builder) Guarded(p isa.PredReg, neg bool, fn func()) {
	if b.guard != isa.PT {
		b.fail("nested Guarded regions are not supported; compute a combined predicate")
		return
	}
	b.guard, b.guardNeg = p, neg
	fn()
	b.guard, b.guardNeg = isa.PT, false
}

// emit appends one instruction under the current guard.
func (b *Builder) emit(in isa.Instr) {
	in.Pred, in.PredNeg = b.guard, b.guardNeg
	b.emitPred(in)
}

// emitPred appends one instruction with an explicit guard, bypassing the
// builder's current guard (used by BraIf and the control-flow helpers).
func (b *Builder) emitPred(in isa.Instr) {
	if b.err != nil {
		return
	}
	if !usesDstP(in.Op) {
		in.DstP = isa.PT
	}
	b.instrs = append(b.instrs, in)
}

// usesDstP reports whether the opcode's DstP field is meaningful (SETP
// writes it; SEL reads it as the select condition).
func usesDstP(op isa.Op) bool {
	switch op {
	case isa.OpISETP, isa.OpFSETP, isa.OpDSETP, isa.OpHSETP, isa.OpSEL:
		return true
	}
	return false
}

// Label defines a branch target at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.instrs)
}

// uniqueLabel generates an internal label.
func (b *Builder) uniqueLabel(prefix string) string {
	return fmt.Sprintf(".%s_%d", prefix, len(b.instrs))
}

// Build resolves labels, runs the backend pipeline for the builder's
// optimization level, verifies the program, and returns it.
func (b *Builder) Build() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.opt.Base() >= O2 {
		if b.opt.CopyProp() {
			b.copyPropagate()
		}
		b.eliminateDeadCode()
	} else {
		if b.opt.Base() == O1 {
			b.insertLegacyMoves()
		}
		if b.opt.CopyProp() {
			b.copyPropagate()
		}
	}
	if b.opt.Spill() {
		b.spillToShared()
	}
	if err := b.resolve(); err != nil {
		return nil, err
	}
	p := &isa.Program{
		Name:      b.name,
		Instrs:    b.instrs,
		SharedMem: b.shared,
	}
	p.NumRegs = p.MaxReg()
	if err := verify(p); err != nil {
		return nil, err
	}
	return p, nil
}

// resolve rewrites symbolic branch targets into absolute indices.
func (b *Builder) resolve() error {
	for idx, label := range b.targets {
		t, ok := b.labels[label]
		if !ok {
			return fmt.Errorf("asm(%s): undefined label %q", b.name, label)
		}
		b.instrs[idx].Target = t
	}
	return nil
}
