package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// OptLevel selects the backend pipeline and its orthogonal knobs. The
// low two bits carry the base level (O0/O1/O2); the remaining bits are
// knobs that perturb the base pipeline, so one value names one point of
// the optimization matrix:
//
//	O2.WithUnroll(2)      // unroll every even-trip counted loop by 2
//	O2.WithoutCopyProp()  // O2 with copy propagation disabled
//	O1.WithCopyProp()     // legacy codegen plus forced copy propagation
//	O2.WithSpill()        // O2 plus shared-memory spilling of long-lived values
//
// The encoding keeps OptLevel a comparable scalar: kernel builders,
// runner caches, and campaign configs key on it unchanged.
type OptLevel uint16

// Base optimization levels.
const (
	O0 OptLevel = 0 // naive: no copy-prop, no DCE, no unrolling, no legacy moves
	O1 OptLevel = 1 // legacy toolchain: extra MOV temporaries, no optimization
	O2 OptLevel = 2 // modern toolchain: copy-prop + DCE + unrolling
)

// Knob encoding. Bits 2-5 hold an unroll-factor override (0: none;
// 1: force-rolled; 2..15: unroll every counted loop whose trip count
// divides by the factor). Bit 6 disables copy propagation at O2; bit 7
// forces it on below O2; bit 8 enables the shared-memory spill pass.
const (
	baseMask    OptLevel = 0x0003
	unrollShift          = 2
	unrollMask  OptLevel = 0xF << unrollShift
	flagNoCP    OptLevel = 1 << 6
	flagForceCP OptLevel = 1 << 7
	flagSpill   OptLevel = 1 << 8
)

// Base returns the base level with every knob stripped.
func (o OptLevel) Base() OptLevel { return o & baseMask }

// UnrollOverride returns the loop-unroll factor override, or 0 when the
// base pipeline's own policy applies. A factor of 1 forces loops rolled
// even at O2.
func (o OptLevel) UnrollOverride() int { return int(o&unrollMask) >> unrollShift }

// CopyProp reports whether the pipeline runs copy propagation: on by
// default at O2 (unless disabled), off below O2 (unless forced).
func (o OptLevel) CopyProp() bool {
	if o&flagForceCP != 0 {
		return true
	}
	return o.Base() >= O2 && o&flagNoCP == 0
}

// Spill reports whether the shared-memory spill pass runs.
func (o OptLevel) Spill() bool { return o&flagSpill != 0 }

// WithUnroll returns the level with an unroll-factor override in 1..15
// (factor 0 clears the override; factors above 15 saturate).
func (o OptLevel) WithUnroll(factor int) OptLevel {
	if factor < 0 {
		factor = 0
	}
	if factor > 15 {
		factor = 15
	}
	return o&^unrollMask | OptLevel(factor)<<unrollShift
}

// WithoutCopyProp returns the level with copy propagation disabled.
func (o OptLevel) WithoutCopyProp() OptLevel { return o&^flagForceCP | flagNoCP }

// WithCopyProp returns the level with copy propagation forced on.
func (o OptLevel) WithCopyProp() OptLevel { return o&^flagNoCP | flagForceCP }

// WithSpill returns the level with the shared-memory spill pass enabled.
func (o OptLevel) WithSpill() OptLevel { return o | flagSpill }

// String names the configuration: the base level followed by its knobs,
// e.g. "O2", "O0", "O2-cp", "O1+cp", "O2+u4", "O2+u2+spill". The output
// round-trips through ParseOptLevel.
func (o OptLevel) String() string {
	var sb strings.Builder
	switch o.Base() {
	case O0:
		sb.WriteString("O0")
	case O1:
		sb.WriteString("O1")
	default:
		sb.WriteString("O2")
	}
	if o&flagNoCP != 0 {
		sb.WriteString("-cp")
	}
	if o&flagForceCP != 0 {
		sb.WriteString("+cp")
	}
	if u := o.UnrollOverride(); u > 0 {
		fmt.Fprintf(&sb, "+u%d", u)
	}
	if o.Spill() {
		sb.WriteString("+spill")
	}
	return sb.String()
}

// ParseOptLevel parses a configuration name produced by String (or typed
// on a CLI): a base level "O0"/"O1"/"O2" followed by optional knobs
// "-cp", "+cp", "+uN", "+spill" in any order. Plain "0"/"1"/"2" are
// accepted as base aliases for backward-compatible flags.
func ParseOptLevel(s string) (OptLevel, error) {
	var o OptLevel
	rest := s
	switch {
	case strings.HasPrefix(rest, "O0"), strings.HasPrefix(rest, "o0"):
		o, rest = O0, rest[2:]
	case strings.HasPrefix(rest, "O1"), strings.HasPrefix(rest, "o1"):
		o, rest = O1, rest[2:]
	case strings.HasPrefix(rest, "O2"), strings.HasPrefix(rest, "o2"):
		o, rest = O2, rest[2:]
	case strings.HasPrefix(rest, "0"):
		o, rest = O0, rest[1:]
	case strings.HasPrefix(rest, "1"):
		o, rest = O1, rest[1:]
	case strings.HasPrefix(rest, "2"):
		o, rest = O2, rest[1:]
	default:
		return 0, fmt.Errorf("asm: opt level %q: want a base of O0, O1, or O2", s)
	}
	for rest != "" {
		sign := rest[0]
		if sign != '+' && sign != '-' {
			return 0, fmt.Errorf("asm: opt level %q: knobs must start with '+' or '-'", s)
		}
		rest = rest[1:]
		end := strings.IndexAny(rest, "+-")
		if end < 0 {
			end = len(rest)
		}
		knob := rest[:end]
		rest = rest[end:]
		switch {
		case knob == "cp" && sign == '-':
			o = o.WithoutCopyProp()
		case knob == "cp" && sign == '+':
			o = o.WithCopyProp()
		case knob == "spill" && sign == '+':
			o = o.WithSpill()
		case strings.HasPrefix(knob, "u") && sign == '+':
			f, err := strconv.Atoi(knob[1:])
			if err != nil || f < 1 || f > 15 {
				return 0, fmt.Errorf("asm: opt level %q: unroll factor must be 1..15", s)
			}
			o = o.WithUnroll(f)
		default:
			return 0, fmt.Errorf("asm: opt level %q: unknown knob %q", s, string(sign)+knob)
		}
	}
	return o, nil
}

// MatrixConfigs returns the canonical optimization matrix swept by the
// per-configuration reliability study: the three base levels plus one
// variant per orthogonal knob. Every configuration is buildable for
// every kernel (knobs that do not apply — an unroll override on a
// loop whose trip count does not divide, a spill pass that finds no
// long-lived value — degrade to the base pipeline).
func MatrixConfigs() []OptLevel {
	return []OptLevel{
		O0,
		O1,
		O2.WithoutCopyProp(),
		O2,
		O2.WithUnroll(2),
		O2.WithUnroll(4),
		O2.WithSpill(),
	}
}
