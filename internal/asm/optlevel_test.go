package asm

import (
	"testing"

	"gpurel/internal/isa"
)

func TestOptLevelStringParseRoundTrip(t *testing.T) {
	cases := append(MatrixConfigs(),
		O1.WithCopyProp(),
		O2.WithUnroll(1),
		O2.WithUnroll(2).WithSpill(),
		O0.WithSpill(),
		O2.WithoutCopyProp().WithUnroll(4).WithSpill(),
	)
	seen := map[string]bool{}
	for _, o := range cases {
		s := o.String()
		if seen[s] {
			t.Errorf("duplicate name %q in config set", s)
		}
		seen[s] = true
		got, err := ParseOptLevel(s)
		if err != nil {
			t.Errorf("ParseOptLevel(%q): %v", s, err)
			continue
		}
		if got != o {
			t.Errorf("round trip %q: got %#x, want %#x", s, got, o)
		}
	}
}

func TestParseOptLevelAliasesAndErrors(t *testing.T) {
	for in, want := range map[string]OptLevel{
		"1": O1, "2": O2, "o2+spill": O2.WithSpill(), "O2+u4": O2.WithUnroll(4),
	} {
		got, err := ParseOptLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseOptLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "O3", "O2+u0", "O2+u16", "O2-spill", "O2+x", "O2spill"} {
		if _, err := ParseOptLevel(in); err == nil {
			t.Errorf("ParseOptLevel(%q) should fail", in)
		}
	}
}

func TestOptLevelKnobAccessors(t *testing.T) {
	if !O2.CopyProp() || O1.CopyProp() || O0.CopyProp() {
		t.Fatal("base copy-prop defaults wrong")
	}
	if O2.WithoutCopyProp().CopyProp() || !O1.WithCopyProp().CopyProp() {
		t.Fatal("copy-prop knobs ignored")
	}
	if O2.WithUnroll(4).Base() != O2 || O2.WithUnroll(4).UnrollOverride() != 4 {
		t.Fatal("unroll override encoding wrong")
	}
	if O2.WithUnroll(4).WithUnroll(0).UnrollOverride() != 0 {
		t.Fatal("unroll override should clear")
	}
	if !O0.WithSpill().Spill() || O0.WithSpill().Base() != O0 {
		t.Fatal("spill knob encoding wrong")
	}
}

// TestO0EmitsVerbatim: the naive pipeline must neither insert legacy
// moves nor remove the dead multiply or the copy MOV.
func TestO0EmitsVerbatim(t *testing.T) {
	p0 := buildWithTemps(O0)
	var movs, imuls int
	for i := range p0.Instrs {
		switch p0.Instrs[i].Op {
		case isa.OpMOV:
			movs++
		case isa.OpIMUL:
			imuls++
		}
	}
	if movs != 1 || imuls != 1 {
		t.Fatalf("O0 altered the program: %d MOVs, %d IMULs (want 1, 1)", movs, imuls)
	}
	// O1's legacy moves dilute a program with enough rewritable results
	// (one MOV per four); O0 must not.
	chain := func(opt OptLevel) int {
		b := New("k", opt)
		r := b.R()
		addr := b.R()
		b.MovImm(r, 1)
		for i := 0; i < 8; i++ {
			b.IAdd(r, isa.R(r), isa.ImmInt(1))
		}
		b.MovImm(addr, 0x100)
		b.Stg(addr, 0, r)
		b.Exit()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return len(p.Instrs)
	}
	if chain(O1) <= chain(O0) {
		t.Fatal("O1 should be longer than O0 (legacy move dilution)")
	}
}

// TestCopyPropKnob: O2 without copy propagation keeps the copy MOV alive
// (its destination is still read), while DCE still removes the dead
// multiply; O1 with forced copy propagation rewires the consumer but
// keeps the now-dead MOV (no DCE below O2).
func TestCopyPropKnob(t *testing.T) {
	noCP := buildWithTemps(O2.WithoutCopyProp())
	var movs, imuls int
	for i := range noCP.Instrs {
		switch noCP.Instrs[i].Op {
		case isa.OpMOV:
			movs++
		case isa.OpIMUL:
			imuls++
		}
	}
	if movs != 1 {
		t.Fatalf("O2-cp: copy MOV count %d, want 1", movs)
	}
	if imuls != 0 {
		t.Fatal("O2-cp: DCE should still remove the dead IMUL")
	}

	forced := buildWithTemps(O1.WithCopyProp())
	// The consumer IADD must read the producer's register, not the copy.
	var movDst isa.Reg = isa.RZ
	for i := range forced.Instrs {
		if forced.Instrs[i].Op == isa.OpMOV {
			movDst = forced.Instrs[i].Dst
		}
	}
	for i := range forced.Instrs {
		in := &forced.Instrs[i]
		if in.Op == isa.OpIADD && in.Srcs[0].Reg == movDst && !in.Srcs[0].IsImm {
			t.Fatal("O1+cp: consumer still reads the copy destination")
		}
	}
}

func TestUnrollOverride(t *testing.T) {
	build := func(opt OptLevel, mark int) *isa.Program {
		b := New("k", opt)
		acc := b.R()
		i := b.R()
		b.MovImm(acc, 0)
		b.ForCounter(i, 0, 8, LoopOpts{Unroll: mark}, func() {
			b.IAdd(acc, isa.R(acc), isa.R(i))
		})
		addr := b.R()
		b.MovImm(addr, 0x100)
		b.Stg(addr, 0, acc)
		b.Exit()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	bodies := func(p *isa.Program) int {
		n := 0
		for i := range p.Instrs {
			if p.Instrs[i].Op == isa.OpIADD && !p.Instrs[i].Srcs[1].IsImm {
				n++
			}
		}
		return n
	}
	// Override replaces the author's factor on a marked loop...
	if got := bodies(build(O2.WithUnroll(2), 4)); got != 2 {
		t.Errorf("O2+u2 over Unroll:4 mark: %d bodies, want 2", got)
	}
	// ... unrolls unmarked loops ...
	if got := bodies(build(O2.WithUnroll(4), 0)); got != 4 {
		t.Errorf("O2+u4 over unmarked loop: %d bodies, want 4", got)
	}
	// ... forces marked loops rolled at factor 1 ...
	if got := bodies(build(O2.WithUnroll(1), 4)); got != 1 {
		t.Errorf("O2+u1 over Unroll:4 mark: %d bodies, want 1", got)
	}
	// ... is ignored when the trip count does not divide ...
	if got := bodies(build(O2.WithUnroll(3), 0)); got != 1 {
		t.Errorf("O2+u3 over trip 8: %d bodies, want 1", got)
	}
	// ... and applies below O2 as well (an explicit matrix knob).
	if got := bodies(build(O0.WithUnroll(2), 0)); got != 2 {
		t.Errorf("O0+u2: %d bodies, want 2", got)
	}
}

// buildSpillCandidate emits a kernel with a value defined well before its
// only use, separated by independent instructions within one block.
func buildSpillCandidate(opt OptLevel) *isa.Program {
	b := New("k", opt)
	long := b.R()
	a := b.R()
	c := b.R()
	addr := b.R()
	b.MovImm(a, 7)
	b.IAdd(long, isa.R(a), isa.ImmInt(1)) // spill candidate
	b.IMul(a, isa.R(a), isa.R(a))
	b.IAdd(c, isa.R(a), isa.ImmInt(2))
	b.IMul(c, isa.R(c), isa.R(a))
	b.IAdd(c, isa.R(c), isa.R(long)) // first use of long
	b.MovImm(addr, 0x100)
	b.Stg(addr, 0, c)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func TestSpillPass(t *testing.T) {
	base := buildSpillCandidate(O0)
	sp := buildSpillCandidate(O0.WithSpill())

	var sts, lds []int
	for i := range sp.Instrs {
		switch sp.Instrs[i].Op {
		case isa.OpSTS:
			sts = append(sts, i)
		case isa.OpLDS:
			lds = append(lds, i)
		}
	}
	if len(sts) != 1 || len(lds) != 1 {
		t.Fatalf("spill variant has %d STS / %d LDS, want 1 / 1\n%s",
			len(sts), len(lds), sp.Disassemble())
	}
	if lds[0] <= sts[0] {
		t.Fatal("reload precedes store")
	}
	// The spilled register must be architecturally dead between store and
	// reload: no instruction in the window may read it.
	spilled := sp.Instrs[sts[0]].Srcs[2].Reg
	for i := sts[0] + 1; i < lds[0]; i++ {
		if readsReg(&sp.Instrs[i], spilled) {
			t.Fatalf("spilled register read inside the memory-resident window at %d", i)
		}
	}
	if sp.SharedMem != base.SharedMem+4*spillSlotThreads {
		t.Fatalf("spill slot not allocated: shared %d -> %d", base.SharedMem, sp.SharedMem)
	}
	if sp.NumRegs != base.NumRegs+1 {
		t.Fatalf("spill address register not allocated: regs %d -> %d", base.NumRegs, sp.NumRegs)
	}

	// A program with no long-lived value is left untouched.
	short := func(opt OptLevel) *isa.Program {
		b := New("k", opt)
		r := b.R()
		addr := b.R()
		b.MovImm(r, 1)
		b.IAdd(r, isa.R(r), isa.ImmInt(1))
		b.MovImm(addr, 0x100)
		b.Stg(addr, 0, r)
		b.Exit()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if p := short(O0.WithSpill()); p.SharedMem != short(O0).SharedMem || len(p.Instrs) != len(short(O0).Instrs) {
		t.Fatal("spill pass touched a program with no candidates")
	}
}

// TestSpillPreservesBranchTargets: spilling across label bookkeeping must
// keep a loop's backward branch pointed at its body.
func TestSpillPreservesBranchTargets(t *testing.T) {
	b := New("k", O0.WithSpill())
	x := b.R()
	long := b.R()
	acc := b.R()
	b.MovImm(x, 0)
	b.IAdd(long, isa.R(x), isa.ImmInt(9)) // candidate defined before the loop
	b.MovImm(acc, 0)
	i := b.R()
	b.ForCounter(i, 0, 3, LoopOpts{}, func() {
		b.IAdd(acc, isa.R(acc), isa.R(i))
	})
	b.IAdd(acc, isa.R(acc), isa.R(long))
	addr := b.R()
	b.MovImm(addr, 0x100)
	b.Stg(addr, 0, acc)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.OpBRA {
			tgt := p.Instrs[i].Target
			if tgt < 0 || tgt >= len(p.Instrs) || p.Instrs[tgt].Op != isa.OpIADD {
				t.Fatalf("loop branch target drifted after spill:\n%s", p.Disassemble())
			}
		}
	}
}
