package asm

import (
	"strings"
	"testing"

	"gpurel/internal/isa"
)

// vIns builds one instruction with an unconditional guard and RZ
// sources, for hand-assembling invalid programs the Builder would
// refuse to produce.
func vIns(op isa.Op, dst isa.Reg, srcs ...isa.Reg) isa.Instr {
	in := isa.Instr{Op: op, Pred: isa.PT, DstP: isa.PT, Dst: dst,
		Srcs: [3]isa.Operand{isa.R(isa.RZ), isa.R(isa.RZ), isa.R(isa.RZ)}}
	for i, s := range srcs {
		in.Srcs[i] = isa.R(s)
	}
	return in
}

func TestVerifyRejectsSSYWithoutDivergentBranch(t *testing.T) {
	ssy := vIns(isa.OpSSY, isa.RZ)
	ssy.Target = 2
	p := &isa.Program{Name: "badssy", Instrs: []isa.Instr{
		ssy,
		vIns(isa.OpMOV32I, 0),
		vIns(isa.OpEXIT, isa.RZ),
	}}
	err := verify(p)
	if err == nil || !strings.Contains(err.Error(), "no divergent branch") {
		t.Fatalf("verify = %v, want SSY-without-divergent-branch rejection", err)
	}
}

func TestVerifyRejectsBackwardSSY(t *testing.T) {
	ssy := vIns(isa.OpSSY, isa.RZ)
	ssy.Target = 0
	p := &isa.Program{Name: "backssy", Instrs: []isa.Instr{
		vIns(isa.OpMOV32I, 0),
		ssy,
		vIns(isa.OpEXIT, isa.RZ),
	}}
	err := verify(p)
	if err == nil || !strings.Contains(err.Error(), "does not follow") {
		t.Fatalf("verify = %v, want backward-SSY rejection", err)
	}
}

func TestVerifyRejectsPairSplitBranch(t *testing.T) {
	setp := vIns(isa.OpISETP, isa.RZ, 0, isa.RZ)
	setp.DstP = 0
	setp.Cmp = isa.CmpLT
	bra := vIns(isa.OpBRA, isa.RZ)
	bra.Target = 3 // lands between the two halves of the (R2,R3) pair init
	bra.Pred = 0
	p := &isa.Program{Name: "pairsplit", Instrs: []isa.Instr{
		vIns(isa.OpMOV32I, 0),
		setp,
		vIns(isa.OpMOV32I, 2),
		vIns(isa.OpMOV32I, 3),
		vIns(isa.OpDADD, 4, 2, 2),
		bra,
		vIns(isa.OpEXIT, isa.RZ),
	}}
	err := verify(p)
	if err == nil || !strings.Contains(err.Error(), "splitting") {
		t.Fatalf("verify = %v, want pair-split rejection", err)
	}
}

func TestVerifyAcceptsBranchToPairRunStart(t *testing.T) {
	setp := vIns(isa.OpISETP, isa.RZ, 0, isa.RZ)
	setp.DstP = 0
	setp.Cmp = isa.CmpLT
	bra := vIns(isa.OpBRA, isa.RZ)
	bra.Target = 2 // re-runs the whole pair initialization: fine
	bra.Pred = 0
	p := &isa.Program{Name: "pairok", Instrs: []isa.Instr{
		vIns(isa.OpMOV32I, 0),
		setp,
		vIns(isa.OpMOV32I, 2),
		vIns(isa.OpMOV32I, 3),
		vIns(isa.OpDADD, 4, 2, 2),
		bra,
		vIns(isa.OpEXIT, isa.RZ),
	}}
	if err := verify(p); err != nil {
		t.Fatalf("verify rejected a branch to the start of a pair run: %v", err)
	}
}

func TestVerifyRejectsUncoveredSync(t *testing.T) {
	p := &isa.Program{Name: "badsync", Instrs: []isa.Instr{
		vIns(isa.OpMOV32I, 0),
		vIns(isa.OpSYNC, isa.RZ),
		vIns(isa.OpEXIT, isa.RZ),
	}}
	err := verify(p)
	if err == nil || !strings.Contains(err.Error(), "SSY region") {
		t.Fatalf("verify = %v, want uncovered-SYNC rejection", err)
	}
}

// TestLegacyMovesPreserveBranchTargets is the build -> analyze -> verify
// round trip for the legacy pipeline's bookkeeping: insertLegacyMoves
// grows the instruction stream mid-loop, and the backward branch must
// still land on the first body instruction. The body's leading MOV32I
// carries a magic immediate so the target is identifiable after the
// rewrite.
func TestLegacyMovesPreserveBranchTargets(t *testing.T) {
	const magic = 0xBEEF
	build := func(opt OptLevel) *isa.Program {
		b := New("looplabels", opt)
		i := b.R()
		acc := b.R()
		mark := b.R()
		b.MovImm(acc, 0)
		b.ForCounter(i, 0, 8, LoopOpts{}, func() {
			b.MovImm(mark, magic) // first body instruction
			b.IAdd(acc, isa.R(acc), isa.R(mark))
			b.IMul(acc, isa.R(acc), isa.R(i))
			b.IAdd(acc, isa.R(acc), isa.ImmInt(1))
			b.IMul(acc, isa.R(acc), isa.R(mark))
			b.IAdd(acc, isa.R(acc), isa.R(i))
		})
		addr := b.R()
		b.MovImm(addr, 0x40)
		b.Stg(addr, 0, acc)
		b.Exit()
		p, err := b.Build()
		if err != nil {
			t.Fatalf("build O%d: %v", opt, err)
		}
		return p
	}
	for _, opt := range []OptLevel{O1, O2} {
		p := build(opt)
		found := false
		for idx := range p.Instrs {
			in := &p.Instrs[idx]
			if in.Op != isa.OpBRA || in.Target > idx {
				continue
			}
			found = true
			tgt := &p.Instrs[in.Target]
			if tgt.Op != isa.OpMOV32I || tgt.Srcs[0].Imm != magic {
				t.Errorf("O%d: backward branch at %d lands on %s, want the magic MOV32I",
					opt, idx, tgt.String())
			}
		}
		if !found {
			t.Fatalf("O%d: no backward branch in the built loop", opt)
		}
	}
}
