package asm

import "gpurel/internal/isa"

// Structured control flow. The helpers emit the SSY-based divergence
// management the simulator's PDOM reconvergence stack expects, so kernel
// authors never hand-write reconvergence points.

// If executes then() in threads where p holds (or !p when neg). The warp
// reconverges at the end of the body.
func (b *Builder) If(p isa.PredReg, neg bool, then func()) {
	join := b.uniqueLabel("join")
	b.SSY(join)
	b.BraIf(p, !neg, join) // threads failing the condition skip the body
	then()
	b.Label(join)
}

// IfElse executes then() where the condition holds and els() elsewhere,
// reconverging afterwards.
func (b *Builder) IfElse(p isa.PredReg, neg bool, then, els func()) {
	elseL := b.uniqueLabel("else")
	join := b.uniqueLabel("join")
	b.SSY(join)
	b.BraIf(p, !neg, elseL)
	then()
	b.Bra(join)
	b.Label(elseL)
	els()
	b.Label(join)
}

// LoopOpts tunes ForCounter code generation.
type LoopOpts struct {
	// Step is the counter increment (default 1).
	Step int32
	// Unroll marks the loop as unrollable by this factor. The O2 backend
	// unrolls when the trip count divides evenly; the O0/O1 backends
	// ignore the hint, mirroring older compilers' conservative codegen.
	// An OptLevel unroll override (OptLevel.WithUnroll) replaces the
	// author's factor on every counted loop.
	Unroll int
}

// ForCounter emits a counted, warp-uniform loop: for i = start; i < end;
// i += step. The counter register i is live inside body. The loop's
// predicate register is allocated and released internally.
func (b *Builder) ForCounter(i isa.Reg, start, end int32, opts LoopOpts, body func()) {
	step := opts.Step
	if step == 0 {
		step = 1
	}
	if step < 0 {
		b.fail("ForCounter requires a positive step")
		return
	}
	if end <= start {
		return // statically empty loop
	}
	trip := int((end - start + step - 1) / step)

	b.MovImmInt(i, start)
	loop := b.uniqueLabel("loop")
	b.Label(loop)

	factor := 1
	if b.opt.Base() >= O2 && opts.Unroll > 1 {
		factor = opts.Unroll
	}
	if u := b.opt.UnrollOverride(); u > 0 {
		// The matrix override replaces the per-loop policy wholesale:
		// factor 1 forces even author-marked loops rolled, larger
		// factors unroll every counted loop they divide.
		factor = u
	}
	unroll := 1
	if factor > 1 && trip%factor == 0 {
		unroll = factor
	}
	for u := 0; u < unroll; u++ {
		body()
		b.IAdd(i, isa.R(i), isa.ImmInt(step))
	}

	p := b.P()
	b.ISetp(p, isa.CmpLT, isa.R(i), isa.ImmInt(end))
	b.BraIf(p, false, loop)
	b.ReleaseP(p)
}

// ReleaseP returns a predicate register to the allocator so sequences of
// loops do not exhaust the seven predicates.
func (b *Builder) ReleaseP(p isa.PredReg) {
	b.freePreds = append(b.freePreds, p)
}
