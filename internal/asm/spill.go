package asm

import "gpurel/internal/isa"

// The register-pressure variant (OptLevel.WithSpill): long-lived values
// are stored to a per-thread shared-memory slot right after definition
// and reloaded right before their next use, so the register is
// architecturally dead in between and the value sits in memory instead.
// This models what a register allocator under pressure does — and moves
// the value's soft-error exposure from the (per-bit-checked) register
// file into a memory residency window, the mechanism behind the paper's
// observation that resource placement, not just instruction count,
// drives cross sections.

const (
	// spillSlotThreads sizes the per-thread spill slot array. Every
	// built-in workload launches blocks of at most 256 threads; a block
	// exceeding this would store past the slot and DUE in the golden
	// run, failing loudly at build time rather than corrupting state.
	spillSlotThreads = 256

	// spillMinGap is the minimum def-to-use distance (in instructions)
	// worth spilling across. Shorter windows are kept in registers,
	// as any allocator would. At 3, eight of the nine CrossValKernels
	// have at least one spill site.
	spillMinGap = 3
)

// spillToShared rewrites the program so that every eligible long-lived
// single-register value is spilled through shared memory: STS after the
// defining instruction, LDS immediately before the next use. Candidates
// are unpredicated single-register definitions whose first subsequent
// read is at least spillMinGap instructions later within the same basic
// block, with no intervening redefinition; spill windows do not overlap,
// so one slot per thread suffices. When no candidate exists the program
// is left untouched (no prologue, no shared allocation).
func (b *Builder) spillToShared() {
	if len(b.instrs) == 0 || b.nextReg >= isa.NumGPR {
		return
	}
	leaders := b.blockLeaders()

	type pair struct{ def, use int }
	var pairs []pair
	next := 0 // first index allowed to start a new spill window
	for i := 0; i < len(b.instrs); i++ {
		if i < next || !spillable(&b.instrs[i]) {
			continue
		}
		dst := b.instrs[i].Dst
		use := -1
		for j := i + 1; j < len(b.instrs) && !leaders[j]; j++ {
			if readsReg(&b.instrs[j], dst) {
				use = j
				break
			}
			if writesReg(&b.instrs[j], dst) {
				break // redefined before any read: nothing to spill
			}
		}
		if use < 0 || use-i < spillMinGap {
			continue
		}
		pairs = append(pairs, pair{def: i, use: use})
		next = use + 1
	}
	if len(pairs) == 0 {
		return
	}

	addr := isa.Reg(b.nextReg)
	b.nextReg++
	slot := b.AllocShared(4 * spillSlotThreads)

	stsAfter := make(map[int]isa.Reg, len(pairs))
	ldsBefore := make(map[int]isa.Reg, len(pairs))
	for _, p := range pairs {
		stsAfter[p.def] = b.instrs[p.def].Dst
		ldsBefore[p.use] = b.instrs[p.def].Dst
	}

	// Prologue: addr = tid.x * 4, the thread's byte offset into the slot.
	out := make([]isa.Instr, 0, len(b.instrs)+2*len(pairs)+2)
	out = append(out,
		isa.Instr{Op: isa.OpS2R, Pred: isa.PT, DstP: isa.PT, Dst: addr, SReg: isa.SrTidX},
		isa.Instr{Op: isa.OpSHF, Shift: isa.ShiftL, Pred: isa.PT, DstP: isa.PT, Dst: addr,
			Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(2)}},
	)

	newIdx := make([]int, len(b.instrs)+1)
	targets := make(map[int]string, len(b.targets))
	for idx := range b.instrs {
		if r, ok := ldsBefore[idx]; ok {
			// The use is never a block leader (the window is intra-block),
			// so no label or branch target can point between reload and use.
			out = append(out, isa.Instr{Op: isa.OpLDS, Pred: isa.PT, DstP: isa.PT, Dst: r,
				Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(slot)}})
		}
		newIdx[idx] = len(out)
		if label, ok := b.targets[idx]; ok {
			targets[len(out)] = label
		}
		out = append(out, b.instrs[idx])
		if r, ok := stsAfter[idx]; ok {
			out = append(out, isa.Instr{Op: isa.OpSTS, Pred: isa.PT, DstP: isa.PT,
				Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(slot), isa.R(r)}})
		}
	}
	newIdx[len(b.instrs)] = len(out)
	for label, idx := range b.labels {
		b.labels[label] = newIdx[idx]
	}
	b.instrs = out
	b.targets = targets
}

// spillable reports whether the instruction defines a value the spill
// pass may route through memory: an unpredicated single-register write
// by a plain arithmetic/logic op, a select, or a global load. Loads from
// shared are excluded so reloads are never themselves spilled.
func spillable(in *isa.Instr) bool {
	if in.Pred != isa.PT {
		return false
	}
	switch in.Op {
	case isa.OpFADD, isa.OpFMUL, isa.OpFFMA,
		isa.OpIADD, isa.OpIMUL, isa.OpIMAD,
		isa.OpLOP, isa.OpSHF, isa.OpIMNMX,
		isa.OpSEL, isa.OpLDG, isa.OpS2R:
		return in.Dst != isa.RZ && in.DstRegs() == 1
	}
	return false
}

// readsReg reports whether the instruction reads the register,
// predicated or not (a conditional read still needs the value present).
func readsReg(in *isa.Instr, r isa.Reg) bool {
	for _, span := range in.SrcRegSpans() {
		if r >= span[0] && r < span[0]+span[1] {
			return true
		}
	}
	return false
}

// writesReg reports whether the instruction writes the register,
// predicated or not (a conditional write still invalidates the window).
func writesReg(in *isa.Instr, r isa.Reg) bool {
	n := isa.Reg(in.DstRegs())
	return n > 0 && r >= in.Dst && r < in.Dst+n
}
