package asm

import (
	"math"

	"gpurel/internal/isa"
)

// This file holds the instruction emitters. Naming follows the SASS
// mnemonics; operands use isa.R / isa.Imm / isa.ImmInt constructors.

// --- moves and special registers ---

// Mov copies a register or immediate into dst.
func (b *Builder) Mov(dst isa.Reg, src isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpMOV, Dst: dst, Srcs: [3]isa.Operand{src}})
}

// MovImm loads a raw 32-bit immediate.
func (b *Builder) MovImm(dst isa.Reg, v uint32) {
	b.emit(isa.Instr{Op: isa.OpMOV32I, Dst: dst, Srcs: [3]isa.Operand{isa.Imm(v)}})
}

// MovImmInt loads a signed integer immediate.
func (b *Builder) MovImmInt(dst isa.Reg, v int32) { b.MovImm(dst, uint32(v)) }

// MovImmF32 loads a float32 immediate.
func (b *Builder) MovImmF32(dst isa.Reg, v float32) { b.MovImm(dst, math.Float32bits(v)) }

// MovImmF16 loads a binary16 immediate into the low half of dst.
func (b *Builder) MovImmF16(dst isa.Reg, v float32) {
	b.MovImm(dst, uint32(isa.F32ToF16(v)))
}

// MovImmF64 loads a float64 immediate into the pair (dst, dst+1).
func (b *Builder) MovImmF64(dst isa.Reg, v float64) {
	bits := math.Float64bits(v)
	b.MovImm(dst, uint32(bits))
	b.MovImm(dst+1, uint32(bits>>32))
}

// S2R reads a special register (thread/block indices and dimensions).
func (b *Builder) S2R(dst isa.Reg, sr isa.SpecialReg) {
	b.emit(isa.Instr{Op: isa.OpS2R, Dst: dst, SReg: sr})
}

// Sel writes a if p else c: dst = p ? a : c.
func (b *Builder) Sel(dst isa.Reg, p isa.PredReg, a, c isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpSEL, Dst: dst, DstP: p, Srcs: [3]isa.Operand{a, c}})
}

// --- FP32 ---

// FAdd emits dst = a + b in FP32.
func (b *Builder) FAdd(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpFADD, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// FSub emits dst = a - b in FP32.
func (b *Builder) FSub(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpFADD, Dst: dst, Srcs: [3]isa.Operand{a, s}, Neg: [3]bool{false, true}})
}

// FMul emits dst = a * b in FP32.
func (b *Builder) FMul(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpFMUL, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// FFma emits dst = a*b + c fused in FP32.
func (b *Builder) FFma(dst isa.Reg, a, s, c isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpFFMA, Dst: dst, Srcs: [3]isa.Operand{a, s, c}})
}

// FSetp compares FP32 values into predicate p.
func (b *Builder) FSetp(p isa.PredReg, cmp isa.CmpOp, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpFSETP, Dst: isa.RZ, DstP: p, Cmp: cmp, Srcs: [3]isa.Operand{a, s}})
}

// --- FP64 (register pairs) ---

// DAdd emits dst = a + b in FP64 over register pairs.
func (b *Builder) DAdd(dst, a, s isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpDADD, Dst: dst, Srcs: [3]isa.Operand{isa.R(a), isa.R(s)}})
}

// DSub emits dst = a - b in FP64.
func (b *Builder) DSub(dst, a, s isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpDADD, Dst: dst, Srcs: [3]isa.Operand{isa.R(a), isa.R(s)}, Neg: [3]bool{false, true}})
}

// DMul emits dst = a * b in FP64.
func (b *Builder) DMul(dst, a, s isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpDMUL, Dst: dst, Srcs: [3]isa.Operand{isa.R(a), isa.R(s)}})
}

// DFma emits dst = a*b + c fused in FP64.
func (b *Builder) DFma(dst, a, s, c isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpDFMA, Dst: dst, Srcs: [3]isa.Operand{isa.R(a), isa.R(s), isa.R(c)}})
}

// DSetp compares FP64 pairs into predicate p.
func (b *Builder) DSetp(p isa.PredReg, cmp isa.CmpOp, a, s isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpDSETP, Dst: isa.RZ, DstP: p, Cmp: cmp, Srcs: [3]isa.Operand{isa.R(a), isa.R(s)}})
}

// --- FP16 (low half of a register) ---

// HAdd emits dst = a + b in FP16.
func (b *Builder) HAdd(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpHADD, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// HSub emits dst = a - b in FP16.
func (b *Builder) HSub(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpHADD, Dst: dst, Srcs: [3]isa.Operand{a, s}, Neg: [3]bool{false, true}})
}

// HMul emits dst = a * b in FP16.
func (b *Builder) HMul(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpHMUL, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// HFma emits dst = a*b + c in FP16.
func (b *Builder) HFma(dst isa.Reg, a, s, c isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpHFMA, Dst: dst, Srcs: [3]isa.Operand{a, s, c}})
}

// HSetp compares FP16 values into predicate p.
func (b *Builder) HSetp(p isa.PredReg, cmp isa.CmpOp, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpHSETP, Dst: isa.RZ, DstP: p, Cmp: cmp, Srcs: [3]isa.Operand{a, s}})
}

// --- integer ---

// IAdd emits dst = a + b.
func (b *Builder) IAdd(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpIADD, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// ISub emits dst = a - b.
func (b *Builder) ISub(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpIADD, Dst: dst, Srcs: [3]isa.Operand{a, s}, Neg: [3]bool{false, true}})
}

// IMul emits dst = a * b (low 32 bits).
func (b *Builder) IMul(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpIMUL, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// IMad emits dst = a*b + c.
func (b *Builder) IMad(dst isa.Reg, a, s, c isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpIMAD, Dst: dst, Srcs: [3]isa.Operand{a, s, c}})
}

// IMin emits dst = min(a, b) (signed).
func (b *Builder) IMin(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpIMNMX, Dst: dst, Cmp: isa.CmpLT, Srcs: [3]isa.Operand{a, s}})
}

// IMax emits dst = max(a, b) (signed).
func (b *Builder) IMax(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpIMNMX, Dst: dst, Cmp: isa.CmpGT, Srcs: [3]isa.Operand{a, s}})
}

// ISetp compares integers into predicate p.
func (b *Builder) ISetp(p isa.PredReg, cmp isa.CmpOp, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpISETP, Dst: isa.RZ, DstP: p, Cmp: cmp, Srcs: [3]isa.Operand{a, s}})
}

// And emits dst = a & b.
func (b *Builder) And(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpLOP, Logic: isa.LopAND, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// Or emits dst = a | b.
func (b *Builder) Or(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpLOP, Logic: isa.LopOR, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// Xor emits dst = a ^ b.
func (b *Builder) Xor(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpLOP, Logic: isa.LopXOR, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// Shl emits dst = a << b.
func (b *Builder) Shl(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpSHF, Shift: isa.ShiftL, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// Shr emits dst = a >> b (logical).
func (b *Builder) Shr(dst isa.Reg, a, s isa.Operand) {
	b.emit(isa.Instr{Op: isa.OpSHF, Shift: isa.ShiftR, Dst: dst, Srcs: [3]isa.Operand{a, s}})
}

// --- conversions and transcendentals ---

// F2F converts between floating-point widths.
func (b *Builder) F2F(dst isa.Reg, src isa.Reg, from, to isa.DType) {
	b.emit(isa.Instr{Op: isa.OpF2F, Dst: dst, CvtFrom: from, CvtTo: to, Srcs: [3]isa.Operand{isa.R(src)}})
}

// F2I converts FP32 to I32 (truncating).
func (b *Builder) F2I(dst isa.Reg, src isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpF2I, Dst: dst, CvtFrom: isa.F32, CvtTo: isa.I32, Srcs: [3]isa.Operand{isa.R(src)}})
}

// I2F converts I32 to FP32.
func (b *Builder) I2F(dst isa.Reg, src isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpI2F, Dst: dst, CvtFrom: isa.I32, CvtTo: isa.F32, Srcs: [3]isa.Operand{isa.R(src)}})
}

// Mufu emits a transcendental (SFU) operation.
func (b *Builder) Mufu(f isa.MufuFunc, dst isa.Reg, src isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpMUFU, Mufu: f, Dst: dst, Srcs: [3]isa.Operand{isa.R(src)}})
}

// --- tensor core ---

// HMMA emits a warp-wide 16x16x16 MMA with FP16 A/B fragments (4 regs
// each per thread) and FP32 accumulator (8 regs per thread): d = a*b + c.
func (b *Builder) HMMA(d, a, s, c isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpHMMA, Dst: d, Srcs: [3]isa.Operand{isa.R(a), isa.R(s), isa.R(c)}})
}

// FMMA emits a warp-wide 16x16x16 MMA with FP32 A/B fragments (8 regs
// each per thread) cast to FP16 on the tensor core, FP32 accumulate.
func (b *Builder) FMMA(d, a, s, c isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFMMA, Dst: d, Srcs: [3]isa.Operand{isa.R(a), isa.R(s), isa.R(c)}})
}

// --- memory ---

// Ldg loads a 32-bit word from global memory at [addr + off].
func (b *Builder) Ldg(dst isa.Reg, addr isa.Reg, off uint32) {
	b.emit(isa.Instr{Op: isa.OpLDG, Dst: dst, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off)}})
}

// LdgWide loads a 64-bit value into the pair (dst, dst+1).
func (b *Builder) LdgWide(dst isa.Reg, addr isa.Reg, off uint32) {
	b.emit(isa.Instr{Op: isa.OpLDG, Wide: true, Dst: dst, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off)}})
}

// Stg stores a 32-bit word to global memory at [addr + off].
func (b *Builder) Stg(addr isa.Reg, off uint32, val isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpSTG, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off), isa.R(val)}})
}

// StgWide stores the pair (val, val+1) as a 64-bit value.
func (b *Builder) StgWide(addr isa.Reg, off uint32, val isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpSTG, Wide: true, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off), isa.R(val)}})
}

// Lds loads a 32-bit word from shared memory.
func (b *Builder) Lds(dst isa.Reg, addr isa.Reg, off uint32) {
	b.emit(isa.Instr{Op: isa.OpLDS, Dst: dst, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off)}})
}

// LdsWide loads a 64-bit value from shared memory into a pair.
func (b *Builder) LdsWide(dst isa.Reg, addr isa.Reg, off uint32) {
	b.emit(isa.Instr{Op: isa.OpLDS, Wide: true, Dst: dst, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off)}})
}

// Sts stores a 32-bit word to shared memory.
func (b *Builder) Sts(addr isa.Reg, off uint32, val isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpSTS, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off), isa.R(val)}})
}

// StsWide stores a 64-bit pair to shared memory.
func (b *Builder) StsWide(addr isa.Reg, off uint32, val isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpSTS, Wide: true, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off), isa.R(val)}})
}

// RedAdd emits an atomic integer add to global memory.
func (b *Builder) RedAdd(addr isa.Reg, off uint32, val isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpRED, Srcs: [3]isa.Operand{isa.R(addr), isa.Imm(off), isa.R(val)}})
}

// --- control ---

// Bar emits a block-wide barrier.
func (b *Builder) Bar() { b.emit(isa.Instr{Op: isa.OpBAR}) }

// Exit emits the kernel terminator.
func (b *Builder) Exit() { b.emit(isa.Instr{Op: isa.OpEXIT}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Instr{Op: isa.OpNOP}) }

// Bra emits an unconditional branch to the label.
func (b *Builder) Bra(label string) {
	if b.err != nil {
		return
	}
	b.targets[len(b.instrs)] = label
	b.emitPred(isa.Instr{Op: isa.OpBRA, Pred: isa.PT})
}

// BraIf emits a branch taken in threads where p (or !p when neg) holds.
// A warp-divergent backward branch reconverges at its fall-through.
func (b *Builder) BraIf(p isa.PredReg, neg bool, label string) {
	if b.err != nil {
		return
	}
	b.targets[len(b.instrs)] = label
	b.emitPred(isa.Instr{Op: isa.OpBRA, Pred: p, PredNeg: neg})
}

// SSY declares the reconvergence point for the next divergent branch.
func (b *Builder) SSY(label string) {
	if b.err != nil {
		return
	}
	b.targets[len(b.instrs)] = label
	b.emitPred(isa.Instr{Op: isa.OpSSY, Pred: isa.PT})
}

// Sync emits a jump-to-reconvergence for the active threads.
func (b *Builder) Sync() { b.emit(isa.Instr{Op: isa.OpSYNC}) }
