package asm

import (
	"fmt"

	"gpurel/internal/analysis"
	"gpurel/internal/isa"
)

// verify performs static checks on a built program: branch targets in
// range, register operands within the file, F64 pair alignment, MMA
// fragment alignment, the presence of a terminator, and — via the
// whole-program control-flow checks of internal/analysis — SSY
// reconvergence pairing and branch targets that split a multi-register
// initialization. It is the last gate before a program reaches the
// simulator.
func verify(p *isa.Program) error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("asm(%s): empty program", p.Name)
	}
	hasExit := false
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == isa.OpEXIT {
			hasExit = true
		}
		if in.Op == isa.OpBRA || in.Op == isa.OpSSY {
			if in.Target < 0 || in.Target > len(p.Instrs) {
				return fmt.Errorf("asm(%s): instruction %d: branch target %d out of range",
					p.Name, i, in.Target)
			}
		}
		if n := in.DstRegs(); n > 0 {
			if int(in.Dst)+n > isa.NumGPR {
				return fmt.Errorf("asm(%s): instruction %d: destination %s+%d exceeds register file",
					p.Name, i, in.Dst, n)
			}
		}
		for _, span := range in.SrcRegSpans() {
			if int(span[0])+int(span[1]) > isa.NumGPR {
				return fmt.Errorf("asm(%s): instruction %d: source %s+%d exceeds register file",
					p.Name, i, span[0], span[1])
			}
		}
		switch in.Op {
		case isa.OpDADD, isa.OpDMUL, isa.OpDFMA:
			if in.Dst%2 != 0 {
				return fmt.Errorf("asm(%s): instruction %d: F64 destination %s not pair-aligned",
					p.Name, i, in.Dst)
			}
			for s := 0; s < 3; s++ {
				if !in.Srcs[s].IsImm && in.Srcs[s].Reg != isa.RZ && in.Srcs[s].Reg%2 != 0 &&
					(s < 2 || in.Op == isa.OpDFMA) {
					return fmt.Errorf("asm(%s): instruction %d: F64 source %s not pair-aligned",
						p.Name, i, in.Srcs[s].Reg)
				}
			}
		case isa.OpHMMA:
			if in.Srcs[0].Reg%4 != 0 || in.Srcs[1].Reg%4 != 0 ||
				in.Srcs[2].Reg%4 != 0 || in.Dst%4 != 0 {
				return fmt.Errorf("asm(%s): instruction %d: HMMA fragments must be 4-aligned", p.Name, i)
			}
		case isa.OpFMMA:
			if in.Srcs[0].Reg%4 != 0 || in.Srcs[1].Reg%4 != 0 ||
				in.Srcs[2].Reg%4 != 0 || in.Dst%4 != 0 {
				return fmt.Errorf("asm(%s): instruction %d: FMMA fragments must be 4-aligned", p.Name, i)
			}
		}
	}
	if !hasExit {
		return fmt.Errorf("asm(%s): program has no EXIT", p.Name)
	}
	if hazards := analysis.ControlHazards(p); len(hazards) > 0 {
		return fmt.Errorf("asm(%s): instruction %d: %s", p.Name, hazards[0].Instr, hazards[0].Msg)
	}
	return nil
}
