package asm

import "gpurel/internal/isa"

// Backend optimization passes for the O2 ("CUDA 10.1-era") pipeline.
// Both passes run before label resolution, on the symbolic program, and
// keep the label and branch-target maps consistent.
//
// The paper attributes the ~18% average AVF difference between SASSIFI
// (old toolchain) and NVBitFI (new toolchain) to exactly this kind of
// codegen difference: optimized code has fewer dead or ineffectual
// instructions, so a randomly placed fault is more likely to land on a
// value that reaches the output (§VI).

// insertLegacyMoves models the older ("CUDA 7.0-era") backend's register
// allocation, which routes noticeably more results through MOV
// temporaries than modern nvcc. Every fourth rewritable arithmetic
// result is written to a scratch register and copied to its real
// destination. The extra architecturally-dead MOV sites dilute the
// fault-injection site population, which is precisely why the paper
// measures SASSIFI AVFs ~18% below NVBitFI's on the same sources (§VI).
func (b *Builder) insertLegacyMoves() {
	if b.nextReg >= isa.NumGPR-1 {
		return
	}
	tmp := isa.Reg(b.nextReg)
	b.nextReg++
	out := make([]isa.Instr, 0, len(b.instrs)+len(b.instrs)/4)
	newIdx := make([]int, len(b.instrs)+1)
	targets := make(map[int]string, len(b.targets))
	count := 0
	for idx := range b.instrs {
		in := b.instrs[idx]
		newIdx[idx] = len(out)
		if label, ok := b.targets[idx]; ok {
			targets[len(out)] = label
		}
		if legacyRewritable(&in) {
			count++
			if count%4 == 0 {
				mov := isa.Instr{
					Op: isa.OpMOV, Pred: in.Pred, PredNeg: in.PredNeg,
					DstP: isa.PT, Dst: in.Dst,
					Srcs: [3]isa.Operand{{Reg: tmp}},
				}
				in.Dst = tmp
				out = append(out, in, mov)
				continue
			}
		}
		out = append(out, in)
	}
	newIdx[len(b.instrs)] = len(out)
	for label, i := range b.labels {
		b.labels[label] = newIdx[i]
	}
	b.instrs = out
	b.targets = targets
}

func legacyRewritable(in *isa.Instr) bool {
	switch in.Op {
	case isa.OpFADD, isa.OpFMUL, isa.OpFFMA,
		isa.OpHADD, isa.OpHMUL, isa.OpHFMA,
		isa.OpIADD, isa.OpIMUL, isa.OpIMAD,
		isa.OpLOP, isa.OpSHF, isa.OpIMNMX:
		return in.Dst != isa.RZ && in.DstRegs() == 1
	}
	return false
}

// blockLeaders returns a set of instruction indices that start a basic
// block: entry, every label position, and every branch successor.
func (b *Builder) blockLeaders() map[int]bool {
	leaders := map[int]bool{0: true}
	for _, idx := range b.labels {
		leaders[idx] = true
	}
	for i := range b.instrs {
		if b.instrs[i].Op.IsControl() {
			leaders[i+1] = true
		}
	}
	return leaders
}

// copyPropagate rewrites register sources through unpredicated MOVs
// within each basic block, exposing the moves to dead-code elimination.
func (b *Builder) copyPropagate() {
	leaders := b.blockLeaders()
	cp := make(map[isa.Reg]isa.Reg)

	resolve := func(r isa.Reg) isa.Reg {
		if s, ok := cp[r]; ok {
			return s
		}
		return r
	}
	invalidate := func(base isa.Reg, n int) {
		for r := base; r < base+isa.Reg(n); r++ {
			delete(cp, r)
			for k, v := range cp {
				if v == r {
					delete(cp, k)
				}
			}
		}
	}

	for i := range b.instrs {
		if leaders[i] {
			clear(cp)
		}
		in := &b.instrs[i]

		// Rewrite single-register sources. Multi-register reads (F64
		// pairs, MMA fragments, wide store data) stay untouched: a MOV
		// only captures one 32-bit register.
		switch in.Op {
		case isa.OpDADD, isa.OpDMUL, isa.OpDFMA, isa.OpDSETP,
			isa.OpHMMA, isa.OpFMMA, isa.OpF2F:
			// all sources may be multi-register: skip
		case isa.OpSTG, isa.OpSTS:
			in.Srcs[0].Reg = resolve(in.Srcs[0].Reg) // address is single
			if !in.Wide {
				in.Srcs[2].Reg = resolve(in.Srcs[2].Reg)
			}
		default:
			for s := range in.Srcs {
				if !in.Srcs[s].IsImm {
					in.Srcs[s].Reg = resolve(in.Srcs[s].Reg)
				}
			}
		}

		// Writes invalidate mappings, predicated or not.
		if n := in.DstRegs(); n > 0 {
			invalidate(in.Dst, n)
		}

		// Record plain unpredicated register-to-register moves.
		if in.Op == isa.OpMOV && in.Pred == isa.PT && !in.Srcs[0].IsImm &&
			in.Dst != isa.RZ && in.Srcs[0].Reg != in.Dst {
			cp[in.Dst] = in.Srcs[0].Reg
		}
	}
}

// eliminateDeadCode removes instructions whose only effect is writing
// registers that no instruction ever reads (including loads: a dead load
// disappears, together with any DUE its address could have raised — a
// real behavioural consequence of compiler optimization). It iterates to
// a fixpoint and then compacts the program, updating labels and branch
// targets.
func (b *Builder) eliminateDeadCode() {
	for {
		read := make(map[isa.Reg]bool)
		for i := range b.instrs {
			for _, span := range b.instrs[i].SrcRegSpans() {
				for r := span[0]; r < span[0]+span[1]; r++ {
					read[r] = true
				}
			}
		}
		removedAny := false
		keep := make([]bool, len(b.instrs))
		for i := range b.instrs {
			keep[i] = true
			in := &b.instrs[i]
			if in.Op.IsControl() || in.Op == isa.OpSTG || in.Op == isa.OpSTS ||
				in.Op == isa.OpRED || in.Op == isa.OpNOP {
				continue
			}
			if isSetp(in.Op) {
				// Predicate liveness is not tracked: predicate writers stay.
				continue
			}
			n := in.DstRegs()
			if n == 0 && in.Dst == isa.RZ && in.Op.WritesGPR() {
				// Pure write to RZ: architecturally a no-op.
				keep[i] = false
				removedAny = true
				continue
			}
			if n == 0 {
				continue
			}
			dead := true
			for r := in.Dst; r < in.Dst+isa.Reg(n); r++ {
				if read[r] {
					dead = false
					break
				}
			}
			if dead {
				keep[i] = false
				removedAny = true
			}
		}
		if !removedAny {
			return
		}
		b.compact(keep)
	}
}

func isSetp(op isa.Op) bool {
	switch op {
	case isa.OpISETP, isa.OpFSETP, isa.OpDSETP, isa.OpHSETP:
		return true
	}
	return false
}

// compact removes instructions marked false in keep, remapping labels and
// branch-target bookkeeping.
func (b *Builder) compact(keep []bool) {
	newIdx := make([]int, len(b.instrs)+1)
	n := 0
	for i := range b.instrs {
		newIdx[i] = n
		if keep[i] {
			n++
		}
	}
	newIdx[len(b.instrs)] = n

	instrs := make([]isa.Instr, 0, n)
	targets := make(map[int]string, len(b.targets))
	for i := range b.instrs {
		if !keep[i] {
			continue
		}
		if label, ok := b.targets[i]; ok {
			targets[len(instrs)] = label
		}
		instrs = append(instrs, b.instrs[i])
	}
	for label, idx := range b.labels {
		b.labels[label] = newIdx[idx]
	}
	b.instrs = instrs
	b.targets = targets
}
