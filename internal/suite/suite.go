// Package suite catalogs the paper's workload matrix (Table I): which
// codes run on which architecture, in which precision variants, and
// which of them use "proprietary library" kernels (CUBLAS GEMM, cuDNN-
// backed YOLO) that the Kepler-era SASSIFI toolchain cannot instrument
// (§III-D).
package suite

import (
	"fmt"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

// Entry is one workload configuration of Table I.
type Entry struct {
	Name  string
	Build kernels.Builder
	// Library marks codes built on NVIDIA proprietary libraries: on
	// Kepler neither injector can instrument them, so the predictor
	// substitutes the Volta NVBitFI AVF (§III-D, §VII).
	Library bool
	// FP16 marks half-precision codes, which NVBitFI cannot inject into
	// (§VI); the predictor substitutes the FP32 variant's AVF.
	FP16 bool
	// AVFProxy names the variant whose AVF substitutes for this one when
	// direct injection is impossible (empty: inject directly).
	AVFProxy string
}

// Kepler returns the Table I workload set for the K40c.
func Kepler() []Entry {
	return []Entry{
		{Name: "CCL", Build: kernels.CCLBuilder()},
		{Name: "BFS", Build: kernels.BFSBuilder()},
		{Name: "FLAVA", Build: kernels.LavaBuilder(isa.F32)},
		{Name: "FHOTSPOT", Build: kernels.HotspotBuilder(isa.F32)},
		{Name: "FGAUSSIAN", Build: kernels.GaussianBuilder()},
		{Name: "FLUD", Build: kernels.LUDBuilder()},
		{Name: "NW", Build: kernels.NWBuilder()},
		{Name: "FMXM", Build: kernels.MxMBuilder(isa.F32)},
		{Name: "FGEMM", Build: kernels.GEMMBuilder(isa.F32), Library: true, AVFProxy: "FGEMM"},
		{Name: "MERGESORT", Build: kernels.MergesortBuilder()},
		{Name: "QUICKSORT", Build: kernels.QuicksortBuilder()},
		{Name: "FYOLOV2", Build: kernels.YOLOBuilder(false, isa.F32), Library: true, AVFProxy: "FYOLOV3"},
		{Name: "FYOLOV3", Build: kernels.YOLOBuilder(true, isa.F32), Library: true, AVFProxy: "FYOLOV3"},
	}
}

// Volta returns the Table I workload set for the V100.
func Volta() []Entry {
	return []Entry{
		{Name: "HLAVA", Build: kernels.LavaBuilder(isa.F16), FP16: true, AVFProxy: "FLAVA"},
		{Name: "FLAVA", Build: kernels.LavaBuilder(isa.F32)},
		{Name: "DLAVA", Build: kernels.LavaBuilder(isa.F64)},
		{Name: "HHOTSPOT", Build: kernels.HotspotBuilder(isa.F16), FP16: true, AVFProxy: "FHOTSPOT"},
		{Name: "FHOTSPOT", Build: kernels.HotspotBuilder(isa.F32)},
		{Name: "DHOTSPOT", Build: kernels.HotspotBuilder(isa.F64)},
		{Name: "HMXM", Build: kernels.MxMBuilder(isa.F16), FP16: true, AVFProxy: "FMXM"},
		{Name: "FMXM", Build: kernels.MxMBuilder(isa.F32)},
		{Name: "DMXM", Build: kernels.MxMBuilder(isa.F64)},
		{Name: "HGEMM", Build: kernels.GEMMBuilder(isa.F16), Library: true, FP16: true, AVFProxy: "FGEMM"},
		{Name: "FGEMM", Build: kernels.GEMMBuilder(isa.F32), Library: true},
		{Name: "DGEMM", Build: kernels.GEMMBuilder(isa.F64), Library: true},
		{Name: "HGEMM-MMA", Build: kernels.GEMMMMABuilder(true), Library: true, FP16: true, AVFProxy: "FGEMM-MMA"},
		{Name: "FGEMM-MMA", Build: kernels.GEMMMMABuilder(false), Library: true},
		{Name: "HYOLOV3", Build: kernels.YOLOBuilder(true, isa.F16), Library: true, FP16: true, AVFProxy: "FYOLOV3"},
		{Name: "FYOLOV3", Build: kernels.YOLOBuilder(true, isa.F32), Library: true},
	}
}

// ForDevice returns the workload set for the given device.
func ForDevice(dev *device.Device) []Entry {
	if dev.Arch == device.Kepler {
		return Kepler()
	}
	return Volta()
}

// Find returns the entry with the given name.
func Find(entries []Entry, name string) (Entry, error) {
	for _, e := range entries {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("suite: no workload %q", name)
}
