package suite

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
)

func TestTableIMatrix(t *testing.T) {
	k := Kepler()
	if len(k) != 13 {
		t.Fatalf("Kepler suite has %d codes, Table I lists 13", len(k))
	}
	v := Volta()
	if len(v) != 16 {
		t.Fatalf("Volta suite has %d variants, Table I lists 16", len(v))
	}
}

func TestLibraryAndFP16Flags(t *testing.T) {
	k := Kepler()
	for _, name := range []string{"FGEMM", "FYOLOV2", "FYOLOV3"} {
		e, err := Find(k, name)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Library {
			t.Errorf("%s must be a library code (CUBLAS / cuDNN)", name)
		}
	}
	v := Volta()
	for _, name := range []string{"HLAVA", "HHOTSPOT", "HMXM", "HGEMM", "HGEMM-MMA", "HYOLOV3"} {
		e, err := Find(v, name)
		if err != nil {
			t.Fatal(err)
		}
		if !e.FP16 {
			t.Errorf("%s must be flagged FP16", name)
		}
		if e.AVFProxy == "" {
			t.Errorf("%s needs an FP32 AVF proxy (NVBitFI cannot inject half)", name)
		}
	}
}

func TestEveryEntryBuilds(t *testing.T) {
	for _, dev := range []*device.Device{device.K40c(), device.V100()} {
		for _, e := range ForDevice(dev) {
			if _, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2); err != nil {
				t.Errorf("%s on %s: %v", e.Name, dev.Name, err)
			}
		}
	}
}

func TestProxiesResolveWithinSuite(t *testing.T) {
	v := Volta()
	for _, e := range v {
		if e.AVFProxy == "" {
			continue
		}
		if _, err := Find(v, e.AVFProxy); err != nil {
			t.Errorf("%s proxy %q not in the Volta suite", e.Name, e.AVFProxy)
		}
	}
}

func TestFindUnknown(t *testing.T) {
	if _, err := Find(Kepler(), "NOPE"); err == nil {
		t.Fatal("unknown workload must error")
	}
}
