package cnn

import (
	"math"
	"testing"
)

func exactArith() Arith {
	return Arith{
		FMA:   func(a, b, c float64) float64 { return a*b + c },
		Add:   func(a, b float64) float64 { return a + b },
		Mul:   func(a, b float64) float64 { return a * b },
		Round: func(v float64) float64 { return v },
	}
}

func TestSpecDims(t *testing.T) {
	v2 := V2Mini()
	dims := v2.Dims()
	if dims[0] != [3]int{8, 16, 16} {
		t.Fatalf("layer0 dims %v", dims[0])
	}
	last := dims[len(dims)-1]
	if last != [3]int{8, 4, 4} {
		t.Fatalf("head dims %v, want 8x4x4", last)
	}
	v3 := V3Mini()
	if len(v3.Layers) <= len(v2.Layers) {
		t.Fatal("v3 must be deeper than v2")
	}
	if v3.Tol >= v2.Tol {
		t.Fatal("the more accurate v3 must have the stricter tolerance (§VI)")
	}
}

func TestIm2ColIdentity1x1EquivalentGEMM(t *testing.T) {
	// A 1x1 "im2col" is the identity: conv via GEMM on the raw map must
	// equal a direct channel mix.
	c, h, w := 3, 4, 4
	in := make([]float64, c*h*w)
	for i := range in {
		in[i] = float64(i) * 0.1
	}
	col := Im2Col(in, c, h, w, 1)
	for i := range in {
		if col[i] != in[i] {
			t.Fatalf("1x1 im2col must be identity at %d", i)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	c, h, w := 1, 3, 3
	in := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	col := Im2Col(in, c, h, w, 3)
	n := h * w
	// kidx 0 is (dy=0, dx=0) = top-left neighbour: for output (0,0) that
	// samples (-1,-1): zero padding.
	if col[0*n+0] != 0 {
		t.Fatalf("corner should read padding, got %g", col[0])
	}
	// kidx 4 is the center tap: identical to the input.
	for i := 0; i < n; i++ {
		if col[4*n+i] != in[i] {
			t.Fatalf("center tap mismatch at %d", i)
		}
	}
	// kidx 8 (dy=2, dx=2) for output (0,0) samples (1,1) = 5.
	if col[8*n+0] != 5 {
		t.Fatalf("bottom-right tap = %g, want 5", col[8*n+0])
	}
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	for _, spec := range []Spec{V2Mini(), V3Mini()} {
		w := GenerateWeights(spec, func(v float64) float64 { return v })
		in := GenerateInput(spec, func(v float64) float64 { return v })
		o1, err := Forward(spec, w, in, exactArith())
		if err != nil {
			t.Fatal(err)
		}
		o2, err := Forward(spec, w, in, exactArith())
		if err != nil {
			t.Fatal(err)
		}
		dims := spec.Dims()
		for li := range o1 {
			want := dims[li][0] * dims[li][1] * dims[li][2]
			if len(o1[li]) != want {
				t.Fatalf("%s layer %d: %d values, want %d", spec.Name, li, len(o1[li]), want)
			}
			for i := range o1[li] {
				if o1[li][i] != o2[li][i] {
					t.Fatal("forward pass not deterministic")
				}
			}
		}
	}
}

func TestResidualAddsEarlierLayer(t *testing.T) {
	spec := V3Mini()
	w := GenerateWeights(spec, func(v float64) float64 { return v })
	in := GenerateInput(spec, func(v float64) float64 { return v })
	outs, err := Forward(spec, w, in, exactArith())
	if err != nil {
		t.Fatal(err)
	}
	// Layer 6 is Residual(From: 3): outs[6] = outs[5] + outs[3].
	for i := range outs[6] {
		want := outs[5][i] + outs[3][i]
		if math.Abs(outs[6][i]-want) > 1e-12 {
			t.Fatalf("residual mismatch at %d: %g vs %g", i, outs[6][i], want)
		}
	}
}

func TestLeakyReLUApplied(t *testing.T) {
	spec := V2Mini()
	w := GenerateWeights(spec, func(v float64) float64 { return v })
	in := GenerateInput(spec, func(v float64) float64 { return v })
	outs, err := Forward(spec, w, in, exactArith())
	if err != nil {
		t.Fatal(err)
	}
	// Leaky layers never output values below slope*min: check that any
	// negative value is "small" relative to the positives, i.e. the 0.1
	// slope was applied (a pure conv would have symmetric magnitudes).
	var neg, pos float64
	for _, v := range outs[0] {
		if v < neg {
			neg = v
		}
		if v > pos {
			pos = v
		}
	}
	if neg == 0 {
		t.Skip("no negative activations in layer 0")
	}
	if -neg > pos {
		t.Fatalf("leaky ReLU missing: min %g vs max %g", neg, pos)
	}
}

func TestDecodeAndCompare(t *testing.T) {
	classes, cells := 3, 4
	head := make([]float64, (5+classes)*cells)
	head[0*cells+1] = 0.8 // cell 1 fires
	head[5*cells+1] = 0.1 // class 0
	head[6*cells+1] = 0.9 // class 1 wins
	head[1*cells+1] = 0.5 // box x

	d := Decode(head, classes, cells)
	if len(d) != 1 || d[0].Cell != 1 || d[0].Class != 1 {
		t.Fatalf("decode = %+v", d)
	}

	// Identical decodes compare equal.
	if !SameDetections(d, Decode(head, classes, cells), 0.001) {
		t.Fatal("identical outputs must compare equal")
	}
	// Box drift within tolerance is accepted, beyond it rejected.
	head2 := append([]float64(nil), head...)
	head2[1*cells+1] += 0.0005
	if !SameDetections(d, Decode(head2, classes, cells), 0.001) {
		t.Fatal("sub-tolerance drift must be accepted")
	}
	head2[1*cells+1] += 0.1
	if SameDetections(d, Decode(head2, classes, cells), 0.001) {
		t.Fatal("super-tolerance drift must be rejected")
	}
	// A lost detection is always an error.
	head3 := append([]float64(nil), head...)
	head3[0*cells+1] = -0.1
	if SameDetections(d, Decode(head3, classes, cells), 10) {
		t.Fatal("missing detection must be rejected even at huge tolerance")
	}
	// A class flip is always an error.
	head4 := append([]float64(nil), head...)
	head4[5*cells+1] = 2
	if SameDetections(d, Decode(head4, classes, cells), 10) {
		t.Fatal("class flip must be rejected")
	}
}

func TestWeightsDeterministic(t *testing.T) {
	spec := V2Mini()
	w1 := GenerateWeights(spec, func(v float64) float64 { return v })
	w2 := GenerateWeights(spec, func(v float64) float64 { return v })
	for li := range w1.Filters {
		for i := range w1.Filters[li] {
			if w1.Filters[li][i] != w2.Filters[li][i] {
				t.Fatal("weights not deterministic")
			}
		}
	}
}
