package cnn

import "math"

// Detection is one decoded object: the grid cell that fired, its class,
// its raw box parameters, and the raw objectness score.
type Detection struct {
	Cell  int
	Class int
	Box   [4]float64
	Obj   float64
}

// headChannels returns the channel layout of the detection head:
// [objectness, x, y, w, h, class scores...].
func headChannels(classes int) int { return 5 + classes }

// Decode interprets a detection-head feature map (CHW over an SxS grid)
// into detections: cells whose raw objectness is positive (equivalent to
// sigmoid(obj) > 0.5) fire, classified by the arg-max class score.
func Decode(head []float64, classes, cells int) []Detection {
	ch := headChannels(classes)
	_ = ch
	var out []Detection
	for cell := 0; cell < cells; cell++ {
		obj := head[0*cells+cell]
		if obj <= 0 {
			continue
		}
		best, bestV := 0, math.Inf(-1)
		for c := 0; c < classes; c++ {
			v := head[(5+c)*cells+cell]
			if v > bestV {
				best, bestV = c, v
			}
		}
		d := Detection{Cell: cell, Class: best, Obj: obj}
		for i := 0; i < 4; i++ {
			d.Box[i] = head[(1+i)*cells+cell]
		}
		out = append(out, d)
	}
	return out
}

// SameDetections implements the tolerance-aware SDC criterion: two
// outputs are equivalent when they fire on the same cells with the same
// classes and their box parameters and objectness differ by at most tol.
// Any missing, spurious, or re-classified detection is an error.
func SameDetections(golden, test []Detection, tol float64) bool {
	if len(golden) != len(test) {
		return false
	}
	for i := range golden {
		g, t := golden[i], test[i]
		if g.Cell != t.Cell || g.Class != t.Class {
			return false
		}
		if math.Abs(g.Obj-t.Obj) > tol {
			return false
		}
		for b := 0; b < 4; b++ {
			if math.Abs(g.Box[b]-t.Box[b]) > tol {
				return false
			}
		}
	}
	return true
}
