// Package cnn is the convolutional-network substrate behind the YOLOv2
// and YOLOv3 workloads: network specifications, deterministic weight
// generation, a precision-parameterized host reference forward pass
// (convolution lowered to im2col + GEMM exactly like the device code),
// and the detection decoding plus tolerance-aware comparison that
// implements the paper's CNN error criterion — "some faults that
// propagate to the output are not considered errors since they do not
// modify the classification result" (§VI).
package cnn

import (
	"fmt"

	"gpurel/internal/stats"
)

// LayerKind discriminates the layer types of the mini networks.
type LayerKind uint8

// Layer kinds.
const (
	Conv     LayerKind = iota // KxK convolution, pad (K-1)/2, optional leaky ReLU
	MaxPool                   // 2x2, stride 2
	Residual                  // elementwise add with an earlier layer's output
)

// Layer is one network layer.
type Layer struct {
	Kind  LayerKind
	InC   int
	OutC  int
	K     int  // kernel size for Conv (1 or 3)
	Leaky bool // apply leaky ReLU (slope 0.1) after bias
	From  int  // Residual: index of the earlier layer to add
}

// Spec is a network specification plus its detection-head geometry.
type Spec struct {
	Name    string
	InC     int
	InH     int
	InW     int
	Layers  []Layer
	Classes int
	// Tol is the output tolerance of the detection comparison. The
	// paper observes that a less accurate network tolerates larger
	// output perturbations, so YOLOv2-mini carries a larger tolerance
	// than YOLOv3-mini (§VI).
	Tol float64
}

// V2Mini is the YOLOv2-style network: a straight convolutional trunk.
func V2Mini() Spec {
	return Spec{
		Name: "YOLOV2", InC: 3, InH: 16, InW: 16, Classes: 3, Tol: 0.05,
		Layers: []Layer{
			{Kind: Conv, InC: 3, OutC: 8, K: 3, Leaky: true},
			{Kind: MaxPool, InC: 8, OutC: 8},
			{Kind: Conv, InC: 8, OutC: 16, K: 3, Leaky: true},
			{Kind: MaxPool, InC: 16, OutC: 16},
			{Kind: Conv, InC: 16, OutC: 16, K: 3, Leaky: true},
			{Kind: Conv, InC: 16, OutC: 16, K: 1, Leaky: true},
			{Kind: Conv, InC: 16, OutC: 16, K: 3, Leaky: true},
			{Kind: Conv, InC: 16, OutC: 8, K: 1}, // detection head, linear
		},
	}
}

// V3Mini is the YOLOv3-style network: deeper, with two residual blocks,
// more accurate, and therefore stricter about output deviations.
func V3Mini() Spec {
	return Spec{
		Name: "YOLOV3", InC: 3, InH: 16, InW: 16, Classes: 3, Tol: 0.005,
		Layers: []Layer{
			{Kind: Conv, InC: 3, OutC: 8, K: 3, Leaky: true},   // 0
			{Kind: MaxPool, InC: 8, OutC: 8},                   // 1
			{Kind: Conv, InC: 8, OutC: 16, K: 3, Leaky: true},  // 2
			{Kind: MaxPool, InC: 16, OutC: 16},                 // 3
			{Kind: Conv, InC: 16, OutC: 8, K: 1, Leaky: true},  // 4
			{Kind: Conv, InC: 8, OutC: 16, K: 3, Leaky: true},  // 5
			{Kind: Residual, InC: 16, OutC: 16, From: 3},       // 6
			{Kind: Conv, InC: 16, OutC: 8, K: 1, Leaky: true},  // 7
			{Kind: Conv, InC: 8, OutC: 16, K: 3, Leaky: true},  // 8
			{Kind: Residual, InC: 16, OutC: 16, From: 6},       // 9
			{Kind: Conv, InC: 16, OutC: 16, K: 3, Leaky: true}, // 10
			{Kind: Conv, InC: 16, OutC: 8, K: 1},               // 11: head
		},
	}
}

// Dims returns the (C, H, W) shape of each layer's output.
func (s Spec) Dims() [][3]int {
	h, w := s.InH, s.InW
	out := make([][3]int, len(s.Layers))
	for i, l := range s.Layers {
		if l.Kind == MaxPool {
			h, w = h/2, w/2
		}
		out[i] = [3]int{l.OutC, h, w}
	}
	return out
}

// Weights holds the convolution filters and biases of a network, laid
// out as the device consumes them: W[m][kidx] with kidx = ci*K*K + dy*K
// + dx, biases per output channel.
type Weights struct {
	Filters [][]float64 // per conv layer: OutC x (InC*K*K), row-major
	Biases  [][]float64 // per conv layer: OutC
}

// GenerateWeights produces the deterministic parameters of the network.
// round quantizes each value to the working precision.
func GenerateWeights(s Spec, round func(float64) float64) Weights {
	r := stats.NewRNG(0xcafe, uint64(len(s.Layers)))
	var w Weights
	for _, l := range s.Layers {
		if l.Kind != Conv {
			w.Filters = append(w.Filters, nil)
			w.Biases = append(w.Biases, nil)
			continue
		}
		k := l.InC * l.K * l.K
		scale := 1.2 / float64(k)
		f := make([]float64, l.OutC*k)
		for i := range f {
			f[i] = round((r.Float64()*2 - 1) * scale * 3)
		}
		bs := make([]float64, l.OutC)
		for i := range bs {
			bs[i] = round((r.Float64()*2 - 1) * 0.1)
		}
		w.Filters = append(w.Filters, f)
		w.Biases = append(w.Biases, bs)
	}
	return w
}

// GenerateInput produces the deterministic input image (CHW).
func GenerateInput(s Spec, round func(float64) float64) []float64 {
	r := stats.NewRNG(0x1396, 7)
	in := make([]float64, s.InC*s.InH*s.InW)
	for i := range in {
		in[i] = round(r.Float64())
	}
	return in
}

// Arith is the exact arithmetic of the working precision; the host
// forward pass uses it so its results match the device bit-for-bit.
type Arith struct {
	FMA   func(a, b, c float64) float64
	Add   func(a, b float64) float64
	Mul   func(a, b float64) float64
	Round func(v float64) float64
}

// Forward runs the reference forward pass and returns every layer's
// output (CHW), using im2col + GEMM with ascending-k accumulation, the
// same operation order as the device kernels.
func Forward(s Spec, w Weights, input []float64, a Arith) ([][]float64, error) {
	dims := s.Dims()
	outs := make([][]float64, len(s.Layers))
	cur := input
	curC, curH, curW := s.InC, s.InH, s.InW
	for li, l := range s.Layers {
		switch l.Kind {
		case Conv:
			if l.InC != curC {
				return nil, fmt.Errorf("cnn: layer %d input channels %d != %d", li, l.InC, curC)
			}
			col := Im2Col(cur, curC, curH, curW, l.K)
			n := curH * curW
			k := l.InC * l.K * l.K
			out := make([]float64, l.OutC*n)
			for m := 0; m < l.OutC; m++ {
				for x := 0; x < n; x++ {
					var acc float64
					for kk := 0; kk < k; kk++ {
						acc = a.FMA(w.Filters[li][m*k+kk], col[kk*n+x], acc)
					}
					v := a.Add(acc, w.Biases[li][m])
					if l.Leaky && v < 0 {
						v = a.Mul(v, a.Round(0.1))
					}
					out[m*n+x] = v
				}
			}
			cur, curC = out, l.OutC
		case MaxPool:
			oh, ow := curH/2, curW/2
			out := make([]float64, curC*oh*ow)
			for c := 0; c < curC; c++ {
				for y := 0; y < oh; y++ {
					for x := 0; x < ow; x++ {
						v := cur[c*curH*curW+2*y*curW+2*x]
						for _, d := range [3][2]int{{0, 1}, {1, 0}, {1, 1}} {
							u := cur[c*curH*curW+(2*y+d[0])*curW+2*x+d[1]]
							if u > v {
								v = u
							}
						}
						out[c*oh*ow+y*ow+x] = v
					}
				}
			}
			cur, curH, curW = out, oh, ow
		case Residual:
			prev := outs[l.From]
			out := make([]float64, len(cur))
			for i := range cur {
				out[i] = a.Add(cur[i], prev[i])
			}
			cur = out
		}
		outs[li] = cur
		if dims[li] != [3]int{curC, curH, curW} {
			return nil, fmt.Errorf("cnn: layer %d dims mismatch", li)
		}
	}
	return outs, nil
}

// Im2Col lowers a CHW feature map to the (InC*K*K) x (H*W) matrix used
// by the GEMM formulation of convolution, with zero padding (K-1)/2.
func Im2Col(in []float64, c, h, w, k int) []float64 {
	pad := (k - 1) / 2
	n := h * w
	col := make([]float64, c*k*k*n)
	kidx := 0
	for ci := 0; ci < c; ci++ {
		for dy := 0; dy < k; dy++ {
			for dx := 0; dx < k; dx++ {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						sy, sx := y+dy-pad, x+dx-pad
						var v float64
						if sy >= 0 && sy < h && sx >= 0 && sx < w {
							v = in[ci*n+sy*w+sx]
						}
						col[kidx*n+y*w+x] = v
					}
				}
				kidx++
			}
		}
	}
	return col
}
