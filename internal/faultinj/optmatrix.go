package faultinj

import (
	"fmt"
	"math"

	"gpurel/internal/analysis"
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
)

// The compiler-optimization reliability matrix (§VI's
// cross-section-vs-optimization axis, made systematic): one workload
// compiled at every configuration of the asm matrix — O0/O1/O2 base
// pipelines crossed with the unroll, copy-propagation, and
// spill-through-shared knobs — each cell carrying a full NVBitFI-style
// injection campaign, the bit-resolved static AVF estimate, and the
// static explainer metrics that account for the movement. The injector
// is held fixed across cells (AllowAnyOpt) so every AVF delta is
// attributable to codegen, not tool semantics.

// OptCell is one (workload, optimization configuration) cell.
type OptCell struct {
	Opt     asm.OptLevel
	Dynamic *Result              // injection campaign at this configuration
	Static  *analysis.Estimate   // bit-resolved static AVF
	Explain *analysis.OptExplain // static "why" metrics

	// PredSDCFIT / PredDUEFIT are the Eq. 1-4 FIT predictions driven by
	// this cell's dynamic campaign AVFs, filled by the caller when unit
	// FITs are available (internal/fit owns the model; zero otherwise).
	PredSDCFIT float64
	PredDUEFIT float64
}

// StaticUnmasked is the cell's static propagation estimate.
func (c *OptCell) StaticUnmasked() float64 { return c.Static.Unmasked() }

// DynamicUnmasked is the cell's measured propagation fraction.
func (c *OptCell) DynamicUnmasked() float64 { return c.Dynamic.UnmaskedAVF() }

// OptMatrix is the full matrix for one workload on one device.
type OptMatrix struct {
	Name   string
	Device string
	Tool   Tool
	Cells  []*OptCell // in configuration order
}

// OptMatrixConfig sizes a matrix campaign.
type OptMatrixConfig struct {
	// Faults is the per-cell NVBitFI-style sample size (0: 1000).
	Faults int
	// Workers bounds per-cell campaign parallelism (0: GOMAXPROCS).
	Workers int
	// Seed makes the matrix reproducible; each cell derives its own
	// stream from it and the cell's configuration.
	Seed uint64
	// Configs lists the configurations to run (nil: asm.MatrixConfigs).
	Configs []asm.OptLevel
}

// RunnerFor builds (or fetches from a cache) the runner for one
// workload at one configuration. RunOptMatrix accepts one so callers
// with a runner cache (internal/core) pay each golden run once.
type RunnerFor func(name string, build kernels.Builder, dev *device.Device, opt asm.OptLevel) (*kernels.Runner, error)

// RunOptMatrix runs the optimization matrix for one workload: per
// configuration, a fixed-injector NVBitFI campaign plus the static
// estimate and explainer. runnerFor may be nil (kernels.NewRunner).
func RunOptMatrix(mc OptMatrixConfig, name string, build kernels.Builder, dev *device.Device, runnerFor RunnerFor) (*OptMatrix, error) {
	if runnerFor == nil {
		runnerFor = kernels.NewRunner
	}
	configs := mc.Configs
	if len(configs) == 0 {
		configs = asm.MatrixConfigs()
	}
	m := &OptMatrix{Name: name, Device: dev.Name, Tool: NVBitFI}
	for _, opt := range configs {
		r, err := runnerFor(name, build, dev, opt)
		if err != nil {
			return nil, fmt.Errorf("faultinj: matrix %s/%s at %s: %w", dev.Name, name, opt, err)
		}
		cell, err := runOptCell(mc, r)
		if err != nil {
			return nil, err
		}
		m.Cells = append(m.Cells, cell)
	}
	return m, nil
}

// runOptCell runs one cell against an already-built runner.
func runOptCell(mc OptMatrixConfig, r *kernels.Runner) (*OptCell, error) {
	// Per-cell seed: distinct deterministic stream per configuration, so
	// adding or removing one configuration does not shift the others.
	seed := mc.Seed*0x9E3779B9 + uint64(r.Opt)
	dyn, err := RunWithRunner(Config{
		Tool: NVBitFI, TotalFaults: mc.Faults,
		Workers: mc.Workers, Seed: seed, AllowAnyOpt: true,
	}, r)
	if err != nil {
		return nil, fmt.Errorf("faultinj: matrix %s/%s at %s: %w", r.Dev.Name, r.Name, r.Opt, err)
	}
	st, err := StaticEstimate(r, NVBitFI)
	if err != nil {
		return nil, fmt.Errorf("faultinj: matrix %s/%s at %s: %w", r.Dev.Name, r.Name, r.Opt, err)
	}
	return &OptCell{Opt: r.Opt, Dynamic: dyn, Static: st, Explain: ExplainRunner(r)}, nil
}

// ExplainRunner aggregates the static explainer over a runner's
// distinct programs. Counts (instructions, spill pairs, exposure, ACE
// mass) sum across programs; residency and pressure means weight each
// program by its instruction count; maxima and register demand take
// the worst program. Launch repetition is ignored — the explainer
// describes the code, not the schedule.
func ExplainRunner(r *kernels.Runner) *analysis.OptExplain {
	agg := &analysis.OptExplain{}
	seen := map[string]bool{}
	var wInstr float64
	for _, l := range r.Instance().Launches {
		if seen[l.Prog.Name] {
			continue
		}
		seen[l.Prog.Name] = true
		e := analysis.AnalyzeLaunch(l.Prog, &analysis.Bounds{
			GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
		}).Explain(nil)
		w := float64(e.Instrs)
		wInstr += w
		agg.Instrs += e.Instrs
		if e.Regs > agg.Regs {
			agg.Regs = e.Regs
		}
		agg.MeanLiveRange += w * e.MeanLiveRange
		if e.MaxLiveRange > agg.MaxLiveRange {
			agg.MaxLiveRange = e.MaxLiveRange
		}
		agg.MeanPressure += w * e.MeanPressure
		if e.MaxPressure > agg.MaxPressure {
			agg.MaxPressure = e.MaxPressure
		}
		agg.SpillPairs += e.SpillPairs
		agg.SpillExposure += e.SpillExposure
		agg.ACEMass += e.ACEMass
		agg.DeadBitMass += e.DeadBitMass
	}
	if wInstr > 0 {
		agg.MeanLiveRange /= wInstr
		agg.MeanPressure /= wInstr
	}
	if agg.SpillPairs > 0 {
		agg.MeanSpillGap = float64(agg.SpillExposure) / float64(agg.SpillPairs)
	}
	return agg
}

// OptOrderingEps is the tie width, in absolute unmasked-AVF terms, for
// the static-vs-injection ordering comparison. Matrix configurations
// whose AVFs differ by less than this — in either view — are treated as
// tied: several knobs (copy-propagation on code with no copies to
// propagate, unrolling a kernel with no counted loops) legitimately
// change nothing, and a pair should only count as "decided" when its
// movement clears campaign sampling noise. At the default 160
// faults/cell, the standard error of a pairwise AVF difference is
// ~0.056 near AVF 0.5, so 0.08 (~1.5 sigma) keeps noise-level
// movements out of the verdict; empirically, every CrossValKernels
// matrix on both devices holds zero discordant pairs at this width
// across independent campaign seeds, while a noise-level band (0.04)
// flips CCL's spill column seed to seed.
const OptOrderingEps = 0.08

// OrderingAgreement compares the static and dynamic orderings of the
// matrix cells pairwise with epsilon ties: a pair is concordant when
// both views order it the same way (or both call it a tie), discordant
// when they order it oppositely, and excluded when one view ties and
// the other does not (the tie half carries no ordering information at
// this resolution).
func (m *OptMatrix) OrderingAgreement(eps float64) (concordant, discordant int) {
	for i := 0; i < len(m.Cells); i++ {
		for j := i + 1; j < len(m.Cells); j++ {
			ds := m.Cells[i].StaticUnmasked() - m.Cells[j].StaticUnmasked()
			dd := m.Cells[i].DynamicUnmasked() - m.Cells[j].DynamicUnmasked()
			sTie, dTie := math.Abs(ds) <= eps, math.Abs(dd) <= eps
			switch {
			case sTie && dTie:
				concordant++
			case sTie != dTie:
				// excluded
			case (ds > 0) == (dd > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	return concordant, discordant
}

// OrderingTau is the Kendall-style agreement score over the decided
// pairs: (concordant - discordant) / (concordant + discordant), 1 when
// every decided pair agrees. A matrix with no decided pairs scores 1
// (nothing contradicts).
func (m *OptMatrix) OrderingTau(eps float64) float64 {
	c, d := m.OrderingAgreement(eps)
	if c+d == 0 {
		return 1
	}
	return float64(c-d) / float64(c+d)
}

// OrderingAgrees is the matrix cross-validation gate: the static
// explainer must reproduce the injection campaign's per-configuration
// AVF ordering with no discordant pair at the documented tie width.
func (m *OptMatrix) OrderingAgrees() bool {
	_, d := m.OrderingAgreement(OptOrderingEps)
	return d == 0
}
