package faultinj

import (
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

func TestToolProperties(t *testing.T) {
	if Sassifi.OptLevel() == NVBitFI.OptLevel() {
		t.Fatal("the two tools must use different compiler pipelines")
	}
	if Sassifi.String() != "SASSIFI" || NVBitFI.String() != "NVBitFI" {
		t.Fatal("bad tool names")
	}
}

func TestNVBitFICannotInjectHalf(t *testing.T) {
	for _, op := range []isa.Op{isa.OpHADD, isa.OpHMUL, isa.OpHFMA, isa.OpHMMA} {
		if opInjectable(NVBitFI, op) {
			t.Errorf("NVBitFI must not inject into %s", op)
		}
		if !opInjectable(Sassifi, op) {
			t.Errorf("SASSIFI instruction-output mode covers %s", op)
		}
	}
	if opInjectable(NVBitFI, isa.OpSTG) {
		t.Error("NVBitFI only injects into GPR-writing instructions")
	}
	if !opInjectable(NVBitFI, isa.OpLDG) || !opInjectable(NVBitFI, isa.OpFADD) {
		t.Error("NVBitFI must inject into loads and float ops")
	}
}

func TestSassifiRejectsVolta(t *testing.T) {
	_, err := Run(Config{Tool: Sassifi, FaultsPerClass: 1},
		"FMXM", kernels.MxMBuilder(isa.F32), device.V100())
	if err == nil {
		t.Fatal("SASSIFI must reject Volta devices")
	}
}

func TestCampaignMxM(t *testing.T) {
	cfg := Config{Tool: NVBitFI, TotalFaults: 60, Seed: 1}
	res, err := Run(cfg, "FMXM", kernels.MxMBuilder(isa.F32), device.K40c())
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected < 55 {
		t.Fatalf("injected %d, want ~60", res.Injected)
	}
	if res.SDC+res.DUE+res.Masked != res.Injected {
		t.Fatal("outcome counts do not add up")
	}
	// MxM is the highest-AVF code in the paper: a fault in its dynamic
	// stream should propagate often.
	if res.SDCAVF.P < 0.2 {
		t.Fatalf("FMXM SDC AVF = %.2f, expected substantial propagation", res.SDCAVF.P)
	}
	for _, ca := range res.PerClass {
		if ca.SDC+ca.DUE+ca.Masked != ca.Injected {
			t.Fatal("per-class counts inconsistent")
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := Config{Tool: NVBitFI, TotalFaults: 30, Seed: 42, Workers: 2}
	r1, err := Run(cfg, "CCL", kernels.CCLBuilder(), device.K40c())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, "CCL", kernels.CCLBuilder(), device.K40c())
	if err != nil {
		t.Fatal(err)
	}
	if r1.SDC != r2.SDC || r1.DUE != r2.DUE || r1.Masked != r2.Masked {
		t.Fatalf("campaign not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestSassifiCampaignModes(t *testing.T) {
	cfg := Config{Tool: Sassifi, FaultsPerClass: 20, Seed: 3}
	res, err := Run(cfg, "FMXM", kernels.MxMBuilder(isa.F32), device.K40c())
	if err != nil {
		t.Fatal(err)
	}
	if res.PerMode[ModeIOV] == 0 || res.PerMode[ModeIOA] == 0 || res.PerMode[ModePred] == 0 {
		t.Fatalf("SASSIFI should exercise IOV, IOA and predicate modes: %+v", res.PerMode)
	}
}
