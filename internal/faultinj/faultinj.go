// Package faultinj implements the two architecture-level fault
// injection frameworks the paper uses (§III-D):
//
//   - Sassifi, modeled on SASSIFI: instruments code compiled by the
//     legacy ("CUDA 7.0-era", asm.O1) backend; injects bit flips into
//     instruction output values per instruction class, into destination
//     register indices (IOA), and into predicate registers; cannot
//     instrument proprietary-library kernels on Kepler.
//   - NVBitFI, modeled on NVBitFI: instruments code compiled by the
//     modern ("CUDA 10.1-era", asm.O2) backend; injects only into the
//     outputs of instructions that write general-purpose registers;
//     supports proprietary libraries on Volta; cannot inject into
//     half-precision instructions.
//
// Both classify every injection as Masked, SDC, or DUE by comparing the
// run against the golden output, and report AVFs (observed errors /
// injected faults) with Wilson 95% intervals, the statistics behind
// Figure 4 and the AVF(INST_i) terms of the prediction model (Eq. 2).
package faultinj

import (
	"fmt"
	"runtime"
	"sync"

	"gpurel/internal/analysis"
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/patterns"
	"gpurel/internal/sim"
	"gpurel/internal/stats"
)

// Tool identifies the injector frontend.
type Tool uint8

// The two injector frontends.
const (
	Sassifi Tool = iota
	NVBitFI
)

// String names the tool.
func (t Tool) String() string {
	if t == Sassifi {
		return "SASSIFI"
	}
	return "NVBitFI"
}

// OptLevel returns the compiler pipeline the tool's toolchain implies.
func (t Tool) OptLevel() asm.OptLevel {
	if t == Sassifi {
		return asm.O1
	}
	return asm.O2
}

// Mode is an injection mode.
type Mode uint8

// Injection modes.
const (
	ModeIOV  Mode = iota // instruction output value, single bit flip
	ModeIOA              // instruction output address (register index)
	ModePred             // predicate register flip
	ModeGPR              // stored general-purpose-register bit flip
)

// String names the mode.
func (m Mode) String() string {
	return [...]string{"IOV", "IOA", "PRED", "GPR"}[m]
}

// Tally accumulates trial outcomes plus their SDC pattern ledger — the
// one shape the whole-campaign, per-class, per-mode, and per-band
// aggregations share (each used to repeat the counters and the
// proportion finalization). Count folds one observed trial in; Finalize
// computes the Wilson proportions once counting ends.
type Tally struct {
	Injected int
	SDC      int
	DUE      int
	Masked   int

	// SDCAVF / DUEAVF are Wilson 95% proportions over Injected.
	SDCAVF stats.Proportion
	DUEAVF stats.Proportion

	// Patterns is the SDC pattern ledger of the tallied trials.
	Patterns patterns.Ledger

	// DUEModes is the typed-DUE ledger of the tallied trials.
	DUEModes patterns.DUELedger
}

// Count folds one observed trial into the tally.
func (t *Tally) Count(ob patterns.Observation) {
	t.Injected++
	switch ob.Outcome {
	case kernels.SDC:
		t.SDC++
	case kernels.DUE:
		t.DUE++
	default:
		t.Masked++
	}
	t.Patterns.Count(ob)
	t.DUEModes.Count(ob)
}

// Finalize computes the Wilson proportions from the counters.
func (t *Tally) Finalize() {
	t.SDCAVF = stats.NewProportion(t.SDC, t.Injected)
	t.DUEAVF = stats.NewProportion(t.DUE, t.Injected)
}

// ModeAVF is the per-mode outcome of a campaign; the GPR mode's SDC AVF
// is the AVF(MEM) term of Equation 3.
type ModeAVF struct {
	Tally
}

// Config sizes a campaign.
type Config struct {
	Tool Tool
	// FaultsPerClass is the SASSIFI-style sample size per instruction
	// class (the paper uses 1,000; campaigns here default to smaller,
	// documented sizes so the full study fits a CPU budget).
	FaultsPerClass int
	// TotalFaults is the NVBitFI-style total sample size (the paper
	// uses >= 4,000 per code).
	TotalFaults int
	// Workers bounds campaign parallelism (0: GOMAXPROCS).
	Workers int
	// Seed makes the campaign reproducible.
	Seed uint64
	// AllowAnyOpt permits injecting into a runner built at any compiler
	// configuration, not just the tool's native pipeline. The
	// optimization-matrix campaigns set it: the point there is holding
	// the injector fixed (NVBitFI site semantics) while the codegen
	// varies, so the AVF movement is attributable to the code alone.
	AllowAnyOpt bool
}

// BandAVF is the per-bit-band outcome of the campaign's value-bit
// injections. Each fired trial is attributed to the width-relative band
// (analysis.BandOf) of the bit the simulator actually flipped — the
// dynamic counterpart of the static estimator's Band profile. Trials
// whose trigger was never reached carry no bit and are excluded.
type BandAVF struct {
	Tally
}

// ClassAVF is the per-instruction-class outcome of a campaign: the
// AVF(INST_i) terms of Equation 2.
type ClassAVF struct {
	Class isa.Class
	Tally
}

// Result is a whole-campaign outcome for one workload. Its embedded
// Tally holds the dynamically weighted whole-application counters and
// AVFs plotted in Figure 4, plus the campaign's SDC pattern ledger.
type Result struct {
	Name   string
	Tool   Tool
	Device string
	Tally

	PerClass map[isa.Class]*ClassAVF
	PerMode  map[Mode]int
	ByMode   map[Mode]*ModeAVF
	ByBand   map[analysis.BitBand]*BandAVF
}

// injectableClasses lists the classes SASSIFI campaigns stratify over.
var injectableClasses = []isa.Class{
	isa.ClassADD, isa.ClassMUL, isa.ClassFMA, isa.ClassINT,
	isa.ClassMMA, isa.ClassLDST,
}

// classFilter returns the lane-op filter for one class under a tool,
// honoring NVBitFI's inability to instrument FP16 instructions and its
// restriction to GPR-writing instructions.
func classFilter(tool Tool, class isa.Class) func(isa.Op) bool {
	return func(op isa.Op) bool {
		if op.ClassOf() != class {
			return false
		}
		return opInjectable(tool, op)
	}
}

func opInjectable(tool Tool, op isa.Op) bool {
	if tool == NVBitFI {
		if !op.WritesGPR() {
			return false
		}
		switch op {
		case isa.OpHADD, isa.OpHMUL, isa.OpHFMA, isa.OpHMMA:
			return false // NVBitFI: no half-precision injection (§VI)
		}
	}
	return true
}

// Run executes an injection campaign against one workload, building the
// runner (and paying its golden run) first.
func Run(cfg Config, name string, build kernels.Builder, dev *device.Device) (*Result, error) {
	if cfg.Tool == Sassifi && dev.Arch != device.Kepler {
		return nil, fmt.Errorf("faultinj: SASSIFI supports Kepler/Maxwell only, not %s", dev.Name)
	}
	runner, err := kernels.NewRunner(name, build, dev, cfg.Tool.OptLevel())
	if err != nil {
		return nil, err
	}
	return RunWithRunner(cfg, runner)
}

// RunWithRunner executes an injection campaign against an already-built
// runner, reusing its cached instance, golden profiles, and launch-
// boundary snapshots. The runner must have been built with the compiler
// pipeline the tool's toolchain implies (Tool.OptLevel), unless
// cfg.AllowAnyOpt relaxes the pairing for matrix campaigns.
func RunWithRunner(cfg Config, runner *kernels.Runner) (*Result, error) {
	dev := runner.Dev
	name := runner.Name
	if cfg.Tool == Sassifi && dev.Arch != device.Kepler {
		return nil, fmt.Errorf("faultinj: SASSIFI supports Kepler/Maxwell only, not %s", dev.Name)
	}
	if !cfg.AllowAnyOpt && runner.Opt != cfg.Tool.OptLevel() {
		return nil, fmt.Errorf("faultinj: %s runner built at %s, %s injects at %s (set AllowAnyOpt for matrix campaigns)",
			name, runner.Opt, cfg.Tool, cfg.Tool.OptLevel())
	}
	rng := stats.NewRNG(0x1437, cfg.Seed)

	plans := buildPlans(cfg, runner, rng)
	if len(plans) == 0 {
		return nil, fmt.Errorf("faultinj: %s has no injectable instructions under %s", name, cfg.Tool)
	}

	res := &Result{
		Name: name, Tool: cfg.Tool, Device: dev.Name,
		PerClass: make(map[isa.Class]*ClassAVF),
		PerMode:  make(map[Mode]int),
		ByMode:   make(map[Mode]*ModeAVF),
		ByBand:   make(map[analysis.BitBand]*BandAVF),
	}
	records, err := runPlans(cfg, runner, plans)
	if err != nil {
		return nil, err
	}
	geo := runner.Instance().Output
	for i, p := range plans {
		// Classify once; every tally the trial lands in shares the
		// observation.
		ob := patterns.Observe(records[i], geo)
		res.PerMode[p.mode]++
		ca := res.PerClass[p.class]
		if ca == nil {
			ca = &ClassAVF{Class: p.class}
			res.PerClass[p.class] = ca
		}
		ma := res.ByMode[p.mode]
		if ma == nil {
			ma = &ModeAVF{}
			res.ByMode[p.mode] = ma
		}
		res.Count(ob)
		ca.Count(ob)
		ma.Count(ob)
		if p.fault.Kind == sim.FaultValueBit && p.fault.FiredWidth > 0 {
			band := analysis.BandOf(p.fault.FiredBit, p.fault.FiredWidth)
			ba := res.ByBand[band]
			if ba == nil {
				ba = &BandAVF{}
				res.ByBand[band] = ba
			}
			ba.Count(ob)
		}
	}
	res.Finalize()
	for _, ca := range res.PerClass {
		ca.Finalize()
	}
	for _, ma := range res.ByMode {
		ma.Finalize()
	}
	for _, ba := range res.ByBand {
		ba.Finalize()
	}
	return res, nil
}

// plan is one scheduled injection.
type plan struct {
	fault  *sim.FaultPlan
	launch int
	mode   Mode
	class  isa.Class
}

// buildPlans samples the campaign's fault plans from the golden dynamic
// instruction streams.
func buildPlans(cfg Config, r *kernels.Runner, rng *stats.RNG) []plan {
	var plans []plan
	switch cfg.Tool {
	case Sassifi:
		n := cfg.FaultsPerClass
		if n <= 0 {
			n = 250
		}
		// Stratified IOV sampling per instruction class.
		for _, class := range injectableClasses {
			filter := classFilter(Sassifi, class)
			perLaunch := r.LaunchLaneOps(filter)
			var total uint64
			for _, c := range perLaunch {
				total += c
			}
			if total == 0 {
				continue
			}
			for i := 0; i < n; i++ {
				launch, idx := sampleSite(rng, perLaunch, total)
				plans = append(plans, plan{
					fault: &sim.FaultPlan{
						Kind: sim.FaultValueBit, Filter: filter,
						TriggerIndex: idx, Bit: rng.IntN(64),
					},
					launch: launch, mode: ModeIOV, class: class,
				})
			}
		}
		// IOA: destination-register corruption over all GPR writers.
		gprFilter := func(op isa.Op) bool { return op.WritesGPR() }
		plans = append(plans, samplePlans(cfg, r, rng, n, gprFilter, sim.FaultRegIndex, ModeIOA)...)
		// Predicate-register flips on compare instructions.
		setpFilter := func(op isa.Op) bool {
			switch op {
			case isa.OpISETP, isa.OpFSETP, isa.OpDSETP, isa.OpHSETP:
				return true
			}
			return false
		}
		plans = append(plans, samplePlans(cfg, r, rng, n, setpFilter, sim.FaultPredBit, ModePred)...)
		// Stored-register bit flips (the AVF(MEM) term of Eq. 3).
		plans = append(plans, gprPlans(r, rng, n)...)

	case NVBitFI:
		n := cfg.TotalFaults
		if n <= 0 {
			n = 1000
		}
		filter := func(op isa.Op) bool { return opInjectable(NVBitFI, op) }
		plans = samplePlans(cfg, r, rng, n, filter, sim.FaultValueBit, ModeIOV)
	}
	return plans
}

// samplePlans draws n dynamically-weighted injection sites matching the
// filter. The class recorded per plan is resolved at classification time
// from the filter population; for whole-population sampling the class of
// the triggered op is unknown ahead of the run, so plans carry the class
// of the dominant constituent. To keep per-class AVFs exact, sampling is
// done per class with dynamic weights instead.
func samplePlans(cfg Config, r *kernels.Runner, rng *stats.RNG, n int, filter func(isa.Op) bool, kind sim.FaultKind, mode Mode) []plan {
	// Split the population by class so each plan knows its class.
	classOps := make(map[isa.Class]uint64)
	for op, cnt := range opCounts(r) {
		if filter(op) {
			classOps[op.ClassOf()] += cnt
		}
	}
	var total uint64
	for _, c := range classOps {
		total += c
	}
	if total == 0 {
		return nil
	}
	// Deterministic class order: map iteration would randomize the RNG
	// consumption sequence across runs.
	var classes []isa.Class
	for c := isa.Class(0); c < isa.ClassCount; c++ {
		if classOps[c] > 0 {
			classes = append(classes, c)
		}
	}
	var plans []plan
	for _, class := range classes {
		cnt := classOps[class]
		share := int(float64(n)*float64(cnt)/float64(total) + 0.5)
		if share == 0 && cnt > 0 {
			share = 1
		}
		cf := func(class isa.Class) func(isa.Op) bool {
			return func(op isa.Op) bool { return filter(op) && op.ClassOf() == class }
		}(class)
		perLaunch := r.LaunchLaneOps(cf)
		var ct uint64
		for _, c := range perLaunch {
			ct += c
		}
		if ct == 0 {
			continue
		}
		for i := 0; i < share; i++ {
			launch, idx := sampleSite(rng, perLaunch, ct)
			plans = append(plans, plan{
				fault: &sim.FaultPlan{
					Kind: kind, Filter: cf,
					TriggerIndex: idx, Bit: rng.IntN(64),
				},
				launch: launch, mode: mode, class: class,
			})
		}
	}
	return plans
}

// gprPlans samples register-file storage flips: a random bit of a random
// allocated register of a random resident thread, at a random point of a
// launch chosen proportionally to its dynamic length.
func gprPlans(r *kernels.Runner, rng *stats.RNG, n int) []plan {
	inst := r.Instance()
	perLaunch := r.LaunchLaneOps(nil)
	var total uint64
	for _, c := range perLaunch {
		total += c
	}
	if total == 0 {
		return nil
	}
	var plans []plan
	for i := 0; i < n; i++ {
		launch, idx := sampleSite(rng, perLaunch, total)
		l := inst.Launches[launch]
		regs := l.Prog.NumRegs
		if regs < 1 {
			regs = 1
		}
		plans = append(plans, plan{
			fault: &sim.FaultPlan{
				Kind:         sim.FaultRFBit,
				TriggerIndex: idx,
				Block:        rng.IntN(l.GridX * l.GridY),
				Thread:       rng.IntN(l.BlockThreads),
				Reg:          rng.IntN(regs),
				Bit:          rng.IntN(32),
			},
			launch: launch, mode: ModeGPR, class: isa.ClassOTHERS,
		})
	}
	return plans
}

func opCounts(r *kernels.Runner) map[isa.Op]uint64 {
	out := make(map[isa.Op]uint64)
	for _, p := range r.GoldenProfiles() {
		for op, n := range p.PerOpLane {
			out[op] += n
		}
	}
	return out
}

// sampleSite picks (launch, index-within-launch) uniformly over the
// filtered dynamic stream.
func sampleSite(rng *stats.RNG, perLaunch []uint64, total uint64) (int, uint64) {
	x := uint64(rng.Int64N(int64(total)))
	for l, c := range perLaunch {
		if x < c {
			return l, x
		}
		x -= c
	}
	return len(perLaunch) - 1, perLaunch[len(perLaunch)-1] - 1
}

// runPlans executes the plans with a bounded worker pool. An
// infrastructure error (build or simulator failure, as opposed to a
// simulated crash, which classifies as DUE) aborts the campaign: it must
// surface to the caller rather than be counted as any outcome.
func runPlans(cfg Config, r *kernels.Runner, plans []plan) ([]kernels.TrialRecord, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	records := make([]kernels.TrialRecord, len(plans))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				rec, err := r.RunTrialWithFault(plans[i].fault, plans[i].launch)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("faultinj: %s plan %d (%s): %w",
							r.Name, i, plans[i].mode, err)
					}
					mu.Unlock()
					continue
				}
				records[i] = rec
			}
		}()
	}
	for i := range plans {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return records, nil
}
