package faultinj

import (
	"reflect"
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// TestCampaignDeterministicAcrossWorkers locks in the split-RNG scheme:
// plan sampling consumes one serial RNG before any worker starts, and
// every plan's outcome is a pure function of the plan, so the campaign
// result must be bit-identical whether trials run on one worker or
// eight.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full campaigns")
	}
	dev := device.K40c()
	run := func(workers int) *Result {
		res, err := Run(Config{
			Tool: Sassifi, FaultsPerClass: 12, Workers: workers, Seed: 99,
		}, "FMXM", kernels.MxMBuilder(isa.F32), dev)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.Injected != b.Injected || a.SDC != b.SDC || a.DUE != b.DUE || a.Masked != b.Masked {
		t.Fatalf("workers=1 gave SDC/DUE/Masked %d/%d/%d of %d, workers=8 gave %d/%d/%d of %d",
			a.SDC, a.DUE, a.Masked, a.Injected, b.SDC, b.DUE, b.Masked, b.Injected)
	}
	if !reflect.DeepEqual(a.PerClass, b.PerClass) {
		t.Fatalf("per-class AVFs differ across worker counts:\n1: %+v\n8: %+v", a.PerClass, b.PerClass)
	}
	if !reflect.DeepEqual(a.ByMode, b.ByMode) {
		t.Fatalf("per-mode AVFs differ across worker counts:\n1: %+v\n8: %+v", a.ByMode, b.ByMode)
	}
	if a.Patterns != b.Patterns {
		t.Fatalf("pattern ledgers differ across worker counts:\n1: %+v\n8: %+v", a.Patterns, b.Patterns)
	}
	if a.Patterns.SDCs() != a.SDC {
		t.Fatalf("pattern ledger absorbed %d SDCs, campaign counted %d", a.Patterns.SDCs(), a.SDC)
	}
}

// TestNVBitFIDeterministicAcrossWorkers covers the same property for the
// NVBitFI frontend on a multi-launch workload, where plan launch
// assignment also has to be order-independent.
func TestNVBitFIDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full campaigns")
	}
	dev := device.V100()
	run := func(workers int) *Result {
		res, err := Run(Config{
			Tool: NVBitFI, TotalFaults: 60, Workers: workers, Seed: 4242,
		}, "FHOTSPOT", kernels.HotspotBuilder(isa.F32), dev)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.SDC != b.SDC || a.DUE != b.DUE || a.Masked != b.Masked || a.Injected != b.Injected {
		t.Fatalf("workers=1 gave SDC/DUE/Masked %d/%d/%d of %d, workers=8 gave %d/%d/%d of %d",
			a.SDC, a.DUE, a.Masked, a.Injected, b.SDC, b.DUE, b.Masked, b.Injected)
	}
	if a.Patterns != b.Patterns {
		t.Fatalf("pattern ledgers differ across worker counts:\n1: %+v\n8: %+v", a.Patterns, b.Patterns)
	}
}

// TestGoldenTimelinesRepeatable pins the other half of the telemetry
// determinism contract: two independently built runners produce byte-
// identical golden residency timelines (the golden run is serial and
// samples without consuming campaign RNG).
func TestGoldenTimelinesRepeatable(t *testing.T) {
	dev := device.V100()
	build := func() []sim.Timeline {
		r, err := kernels.NewRunner("FHOTSPOT", kernels.HotspotBuilder(isa.F32), dev, asm.O2)
		if err != nil {
			t.Fatal(err)
		}
		var tls []sim.Timeline
		for _, p := range r.GoldenProfiles() {
			tls = append(tls, p.Timeline)
		}
		return tls
	}
	a, b := build(), build()
	if len(a) == 0 || len(a[0].Buckets) == 0 {
		t.Fatal("golden profiles must carry residency timelines")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("golden residency timelines differ across repeated builds")
	}
}
