package faultinj

import (
	"reflect"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/suite"
)

func runMatrix(t *testing.T, dev *device.Device, code string, mc OptMatrixConfig) *OptMatrix {
	t.Helper()
	e, err := suite.Find(suite.ForDevice(dev), code)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunOptMatrix(mc, e.Name, e.Build, dev, nil)
	if err != nil {
		t.Fatalf("%s on %s: %v", code, dev.Name, err)
	}
	return m
}

// TestMatrixOrderingAgreement is the cross-validation gate of the
// optimization matrix: at the study's default campaign size, the static
// per-configuration AVF ordering must not contradict the injection
// campaign's on any tested matrix (ties within OptOrderingEps are
// allowed; opposite-sign movements are not). gpurel-lint -opt-gate runs
// the same check over the full CrossValKernels set.
func TestMatrixOrderingAgreement(t *testing.T) {
	cases := []struct {
		dev  *device.Device
		code string
	}{
		{device.K40c(), "FMXM"},
		{device.K40c(), "NW"},
		{device.V100(), "FHOTSPOT"},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, c := range cases {
		m := runMatrix(t, c.dev, c.code, OptMatrixConfig{Faults: 160, Seed: 1})
		if len(m.Cells) < 6 {
			t.Fatalf("%s on %s: %d matrix cells, want >= 6", c.code, c.dev.Name, len(m.Cells))
		}
		if !m.OrderingAgrees() {
			con, dis := m.OrderingAgreement(OptOrderingEps)
			t.Errorf("%s on %s: static ordering contradicts injection: %d concordant, %d discordant (tau %.2f)",
				c.code, c.dev.Name, con, dis, m.OrderingTau(OptOrderingEps))
		}
		for _, cell := range m.Cells {
			if cell.Explain == nil || cell.Static == nil || cell.Dynamic == nil {
				t.Fatalf("%s on %s at %s: incomplete cell", c.code, c.dev.Name, cell.Opt)
			}
		}
	}
}

// TestMatrixWorkerIndependence pins the determinism contract the
// matrix artifacts rely on: campaign randomness is consumed entirely at
// single-threaded plan-build time, so the worker count must not change
// a single outcome.
func TestMatrixWorkerIndependence(t *testing.T) {
	dev := device.K40c()
	m1 := runMatrix(t, dev, "CCL", OptMatrixConfig{Faults: 80, Seed: 7, Workers: 1})
	m4 := runMatrix(t, dev, "CCL", OptMatrixConfig{Faults: 80, Seed: 7, Workers: 4})
	if len(m1.Cells) != len(m4.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(m1.Cells), len(m4.Cells))
	}
	for i := range m1.Cells {
		a, b := m1.Cells[i], m4.Cells[i]
		if a.Opt != b.Opt {
			t.Fatalf("cell %d: config %s vs %s", i, a.Opt, b.Opt)
		}
		if !reflect.DeepEqual(a.Dynamic, b.Dynamic) {
			t.Errorf("%s: injection outcomes depend on the worker count", a.Opt)
		}
		if !reflect.DeepEqual(a.Explain, b.Explain) || !reflect.DeepEqual(a.Static, b.Static) {
			t.Errorf("%s: static side depends on the worker count", a.Opt)
		}
	}
}
