package faultinj

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"gpurel/internal/suite"
)

// TestMatrixGoldenEquivalence asserts that every matrix configuration of
// every CrossValKernels workload is semantics-preserving: the golden run
// of each configuration must leave bit-identical device memory. The
// runner itself additionally requires each golden run to pass the
// workload's own output comparator, so a configuration that "passes" by
// corrupting and then fixing memory cannot slip through.
func TestMatrixGoldenEquivalence(t *testing.T) {
	for _, dev := range []*device.Device{device.K40c(), device.V100()} {
		entries := suite.ForDevice(dev)
		names := CrossValKernels
		if testing.Short() {
			names = names[:3]
		}
		for _, name := range names {
			e, err := suite.Find(entries, name)
			if err != nil {
				continue // not in this device's suite
			}
			ref, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
			if err != nil {
				t.Fatalf("%s/%s at O2: %v", dev.Name, e.Name, err)
			}
			want := ref.Instance().Global.Snapshot()
			for _, opt := range asm.MatrixConfigs() {
				if opt == asm.O2 {
					continue
				}
				r, err := kernels.NewRunner(e.Name, e.Build, dev, opt)
				if err != nil {
					t.Errorf("%s/%s at %s: %v", dev.Name, e.Name, opt, err)
					continue
				}
				if !r.Instance().Global.EqualSnapshot(want) {
					t.Errorf("%s/%s at %s: golden memory differs from O2",
						dev.Name, e.Name, opt)
				}
			}
		}
	}
}
