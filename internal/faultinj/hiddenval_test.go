package faultinj

import (
	"testing"

	"gpurel/internal/analysis"
	"gpurel/internal/asm"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/suite"
)

// TestHiddenCrossValAgreement checks that the static hidden-resource
// DUE model and the beam campaign's hidden-strike ledger agree within
// HiddenCrossValTolerance on the pinned kernel list. Campaigns run with
// ECC on: storage strikes then short-circuit, so 2000 trials stay cheap
// while drawing enough hidden strikes for the fraction to be meaningful.
func TestHiddenCrossValAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("five 2000-trial campaigns; skipped in -short (the race tier)")
	}
	dev := device.K40c()
	cfg := beam.Config{ECC: true, Trials: 2000, Seed: 11}
	for _, name := range HiddenCrossValKernels {
		e, err := suite.Find(suite.Kepler(), name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cv, err := CrossValidateHidden(cfg, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !cv.Agrees() {
			t.Errorf("%s: static P(DUE|hidden) %.3f vs beam %.3f (delta %+.3f) outside tolerance %.2f",
				name, cv.StaticDUEGivenStrike(), cv.BeamDUEGivenStrike(), cv.Delta(), HiddenCrossValTolerance)
		}
		if !cv.MeasuredAgrees() {
			t.Errorf("%s: measured P(DUE|hidden) %.3f vs beam %.3f (delta %+.3f) outside tolerance %.2f",
				name, cv.MeasuredDUEGivenStrike(), cv.BeamDUEGivenStrike(), cv.MeasuredDelta(), MeasuredCrossValTolerance)
		}
		t.Logf("%s: static %+.3f measured %+.3f (beam %.3f, %d hidden strikes)",
			name, cv.Delta(), cv.MeasuredDelta(), cv.BeamDUEGivenStrike(), cv.Beam.HiddenStrikes())
		if got := cv.Beam.HiddenStrikes(); got < 30 {
			t.Errorf("%s: only %d hidden strikes; the pinned list promises a usable sample", name, got)
		}
		sum := 0.0
		for h := device.HiddenResource(0); h < device.HiddenCount; h++ {
			sum += cv.StaticShare(h)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: static shares sum to %.6f, want 1", name, sum)
		}
	}
}

// TestHiddenCrossValVoidWithoutStrikes pins the Agrees contract: a
// campaign that sampled no hidden strikes is void, not validated.
func TestHiddenCrossValVoidWithoutStrikes(t *testing.T) {
	cv := &HiddenCrossValidation{
		Static: analysis.StaticHiddenAVF(&isa.Program{Name: "void"}),
		Beam:   &beam.Result{},
	}
	if cv.Agrees() {
		t.Error("cross-validation with zero hidden strikes must not count as agreement")
	}
}

// TestStaticHiddenDeterministic pins that the static hidden path has no
// dependence on campaign or map-iteration state.
func TestStaticHiddenDeterministic(t *testing.T) {
	dev := device.V100()
	e, err := suite.Find(suite.Volta(), "FMXM")
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		r, err := kernels.NewRunner(e.Name, e.Build, dev, asm.O2)
		if err != nil {
			t.Fatal(err)
		}
		return StaticHidden(r).DUE
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("static hidden DUE not deterministic: %.9f vs %.9f", a, b)
	}
}
