package faultinj

import (
	"fmt"
	"sort"

	"gpurel/internal/analysis"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

// Cross-validation of the static ACE-based AVF estimator
// (internal/analysis) against a dynamic injection campaign: both views
// of the same question — what fraction of faults in instruction
// destinations reaches architectural output — over the same injectable
// site population, dynamically weighted by the same golden profile.

// CrossValTolerance is the documented agreement bound between the
// static unmasked estimate and the dynamic unmasked AVF, in absolute
// AVF terms. The static model sees register dataflow but neither values
// nor memory, so it cannot reproduce value-dependent masking (a flipped
// low-order mantissa bit that rounds away, a comparison that does not
// cross its threshold); campaign sampling noise adds a few points on
// top. Measured deltas across the built-in Kepler kernels at 400-fault
// NVBitFI campaigns sit inside +/- 0.27 (see TestCrossValidateAgreement);
// the bound leaves a little headroom for small-sample campaigns.
const CrossValTolerance = 0.30

// CrossValKernels lists the built-in workloads over which
// CrossValTolerance is validated. The remaining suite entries exceed
// the bound for a structural reason, not a tuning one: the NN-inference
// kernels (FGEMM, FYOLOV2, FYOLOV3) and FLUD mask most injected faults
// through operand values — ReLU clamps, saturating accumulations,
// threshold compares — which a value-blind dataflow model cannot
// observe, so their dynamic unmasked AVF sits far below any static
// ACE estimate.
var CrossValKernels = []string{
	"FMXM", "NW", "BFS", "CCL", "FHOTSPOT",
	"FGAUSSIAN", "FLAVA", "MERGESORT", "QUICKSORT",
}

// UnmaskedAVF returns the campaign's overall propagation probability:
// the fraction of injected faults that were not masked.
func (r *Result) UnmaskedAVF() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.SDC+r.DUE) / float64(r.Injected)
}

// StaticEstimate computes the injection-free static AVF over the site
// population the tool would inject into, weighting each static site by
// the golden dynamic profile (lane-ops of its opcode spread over the
// opcode's static instances). The estimator is the bit-resolved one:
// each launch is analyzed with its own launch geometry as range-seeding
// bounds, and the per-bit-position and per-band profiles are combined
// across launches alongside the scalar aggregates. Multi-launch
// workloads combine per-launch estimates weighted by each launch's
// injectable lane-ops.
func StaticEstimate(r *kernels.Runner, tool Tool) (*analysis.Estimate, error) {
	return staticEstimate(r, tool, false)
}

// StaticEstimateScalar is StaticEstimate with the legacy scalar ACE
// estimator, kept so the bit-resolved model's residual against
// injection can be compared against the scalar baseline.
func StaticEstimateScalar(r *kernels.Runner, tool Tool) (*analysis.Estimate, error) {
	return staticEstimate(r, tool, true)
}

func staticEstimate(r *kernels.Runner, tool Tool, scalar bool) (*analysis.Estimate, error) {
	filter := func(op isa.Op) bool { return opInjectable(tool, op) }
	inst := r.Instance()
	profiles := r.GoldenProfiles()
	if len(profiles) != len(inst.Launches) {
		return nil, fmt.Errorf("faultinj: %s: %d golden profiles for %d launches",
			r.Name, len(profiles), len(inst.Launches))
	}

	combined := &analysis.Estimate{Name: r.Name, Scalar: scalar, PerClass: make(map[isa.Class]*analysis.ClassEstimate)}
	var tw, sdcW, dueW, deadW float64
	for i, l := range inst.Launches {
		a := analysis.AnalyzeLaunch(l.Prog, &analysis.Bounds{
			GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
		})
		w := a.OpWeights(profiles[i].PerOpLane)
		var e *analysis.Estimate
		if scalar {
			e = a.ScalarEstimate(w, filter)
		} else {
			e = a.Estimate(w, filter)
		}
		// Sum weights in sorted class order: float accumulation over a
		// map range is iteration-order dependent at the ULP level, which
		// is enough to drift the byte-stable study artifacts.
		classes := make([]isa.Class, 0, len(e.PerClass))
		for class := range e.PerClass {
			classes = append(classes, class)
		}
		sort.Slice(classes, func(a, b int) bool { return classes[a] < classes[b] })
		var lw float64
		for _, class := range classes {
			lw += e.PerClass[class].Weight
		}
		if lw == 0 {
			continue
		}
		combined.Sites += e.Sites
		tw += lw
		sdcW += lw * e.SDC
		dueW += lw * e.DUE
		deadW += lw * e.DeadFraction
		for b := 0; b < 64; b++ {
			combined.BitSDC[b] += e.BitWeight[b] * e.BitSDC[b]
			combined.BitDUE[b] += e.BitWeight[b] * e.BitDUE[b]
			combined.BitWeight[b] += e.BitWeight[b]
		}
		for k := range combined.Band {
			combined.Band[k].SDC += e.Band[k].Weight * e.Band[k].SDC
			combined.Band[k].DUE += e.Band[k].Weight * e.Band[k].DUE
			combined.Band[k].Weight += e.Band[k].Weight
		}
		for class, ce := range e.PerClass {
			cc := combined.PerClass[class]
			if cc == nil {
				cc = &analysis.ClassEstimate{Class: class}
				combined.PerClass[class] = cc
			}
			cc.Sites += ce.Sites
			cc.Weight += ce.Weight
			cc.SDC += ce.Weight * ce.SDC
			cc.DUE += ce.Weight * ce.DUE
		}
	}
	if tw == 0 {
		return nil, fmt.Errorf("faultinj: %s has no injectable lane-ops under %s", r.Name, tool)
	}
	combined.SDC = sdcW / tw
	combined.DUE = dueW / tw
	combined.DeadFraction = deadW / tw
	for b := 0; b < 64; b++ {
		if combined.BitWeight[b] > 0 {
			combined.BitSDC[b] /= combined.BitWeight[b]
			combined.BitDUE[b] /= combined.BitWeight[b]
		}
	}
	for k := range combined.Band {
		if combined.Band[k].Weight > 0 {
			combined.Band[k].SDC /= combined.Band[k].Weight
			combined.Band[k].DUE /= combined.Band[k].Weight
		}
	}
	for _, cc := range combined.PerClass {
		if cc.Weight > 0 {
			cc.SDC /= cc.Weight
			cc.DUE /= cc.Weight
		}
	}
	return combined, nil
}

// CrossValidation pairs the two AVF views of one workload, carrying
// both static estimators (bit-resolved and legacy scalar) so their
// residuals against the same campaign can be compared.
type CrossValidation struct {
	Name    string
	Tool    Tool
	Device  string
	Static  *analysis.Estimate // bit-resolved estimator
	Scalar  *analysis.Estimate // legacy scalar estimator
	Dynamic *Result
}

// BandAgreement is one row of the per-bit-band static-vs-injection
// agreement table: the static unmasked estimate for the band against
// the measured unmasked AVF of the fired trials whose flipped bit fell
// in it.
type BandAgreement struct {
	Band     analysis.BitBand
	Static   float64
	Dynamic  float64
	Injected int // fired value-bit trials attributed to the band
}

// Delta is static minus dynamic for the band.
func (b *BandAgreement) Delta() float64 { return b.Static - b.Dynamic }

// BandTable builds the per-band agreement table. Bands with no static
// weight and no fired trials still appear, zero-valued, so the table
// shape is stable.
func (c *CrossValidation) BandTable() []BandAgreement {
	out := make([]BandAgreement, analysis.BandCount)
	for k := range out {
		band := analysis.BitBand(k)
		out[k].Band = band
		out[k].Static = c.Static.Band[k].Unmasked()
		if ba := c.Dynamic.ByBand[band]; ba != nil {
			out[k].Injected = ba.Injected
			if ba.Injected > 0 {
				out[k].Dynamic = float64(ba.SDC+ba.DUE) / float64(ba.Injected)
			}
		}
	}
	return out
}

// StaticUnmasked is the static propagation estimate (SDC + DUE).
func (c *CrossValidation) StaticUnmasked() float64 { return c.Static.Unmasked() }

// DynamicUnmasked is the campaign's measured propagation fraction.
func (c *CrossValidation) DynamicUnmasked() float64 { return c.Dynamic.UnmaskedAVF() }

// Delta is static minus dynamic unmasked AVF; |Delta| within
// CrossValTolerance counts as agreement.
func (c *CrossValidation) Delta() float64 { return c.StaticUnmasked() - c.DynamicUnmasked() }

// Agrees reports whether the two views agree within the tolerance.
func (c *CrossValidation) Agrees() bool {
	d := c.Delta()
	if d < 0 {
		d = -d
	}
	return d <= CrossValTolerance
}

// CrossValidate runs a dynamic campaign and the static estimator over
// one workload and pairs the results.
func CrossValidate(cfg Config, name string, build kernels.Builder, dev *device.Device) (*CrossValidation, error) {
	dyn, err := Run(cfg, name, build, dev)
	if err != nil {
		return nil, err
	}
	runner, err := kernels.NewRunner(name, build, dev, cfg.Tool.OptLevel())
	if err != nil {
		return nil, err
	}
	st, err := StaticEstimate(runner, cfg.Tool)
	if err != nil {
		return nil, err
	}
	sc, err := StaticEstimateScalar(runner, cfg.Tool)
	if err != nil {
		return nil, err
	}
	return &CrossValidation{
		Name: name, Tool: cfg.Tool, Device: dev.Name,
		Static: st, Scalar: sc, Dynamic: dyn,
	}, nil
}
