package faultinj

import (
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"gpurel/internal/suite"
)

// TestDUEModeCrossVal checks, over every cross-validation workload on
// both devices, that the static DUE-mode distribution and the typed DUE
// ledger of an NVBitFI campaign agree within DUEModeTolerance (L-inf
// over the four mode shares), skipping campaigns with too few DUEs to
// measure a distribution.
func TestDUEModeCrossVal(t *testing.T) {
	if testing.Short() {
		t.Skip("per-kernel 400-fault campaigns on two devices; skipped in -short")
	}
	devices := []struct {
		dev     *device.Device
		entries []suite.Entry
	}{
		{device.K40c(), suite.Kepler()},
		{device.V100(), suite.Volta()},
	}
	cfg := Config{Tool: NVBitFI, TotalFaults: 400, Seed: 7}
	checked := 0
	for _, d := range devices {
		for _, name := range CrossValKernels {
			e, err := suite.Find(d.entries, name)
			if err != nil {
				continue // kernel not in this device's suite
			}
			cv, err := CrossValidateDUEModes(cfg, e.Name, e.Build, d.dev)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, d.dev.Name, err)
			}
			t.Logf("%-10s %-5s dyn(n=%3d) h %.2f i %.2f s %.2f u %.2f | static h %.2f i %.2f s %.2f u %.2f | L-inf %.3f",
				name, d.dev.Name, cv.DynamicDUEs,
				cv.DynamicMix.Hang, cv.DynamicMix.IllegalAddress, cv.DynamicMix.SyncError, cv.DynamicMix.Unattributed,
				cv.StaticMix.Hang, cv.StaticMix.IllegalAddress, cv.StaticMix.SyncError, cv.StaticMix.Unattributed,
				cv.Delta())
			if cv.Static.Sites == 0 || cv.Static.DUEMass <= 0 {
				t.Errorf("%s on %s: degenerate static mode estimate (%d sites, mass %g)",
					name, d.dev.Name, cv.Static.Sites, cv.Static.DUEMass)
			}
			if !cv.Measurable() {
				continue
			}
			checked++
			if !cv.Agrees() {
				t.Errorf("%s on %s: static vs injected DUE-mode L-inf %.3f outside tolerance %.2f",
					name, d.dev.Name, cv.Delta(), DUEModeTolerance)
			}
		}
	}
	if checked == 0 {
		t.Error("no campaign produced enough DUEs to test the mode distribution")
	}
}

// TestDUEModeLedgerWorkerDeterminism pins that the typed-DUE ledger a
// campaign tallies is independent of its worker count.
func TestDUEModeLedgerWorkerDeterminism(t *testing.T) {
	dev := device.K40c()
	e, err := suite.Find(suite.Kepler(), "BFS")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (Tally, error) {
		r, err := kernels.NewRunner(e.Name, e.Build, dev, NVBitFI.OptLevel())
		if err != nil {
			return Tally{}, err
		}
		res, err := RunWithRunner(Config{
			Tool: NVBitFI, TotalFaults: 120, Workers: workers, Seed: 99,
		}, r)
		if err != nil {
			return Tally{}, err
		}
		return res.Tally, nil
	}
	a, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.DUEModes != b.DUEModes {
		t.Errorf("DUE-mode ledger depends on worker count: 1 worker %+v, 7 workers %+v",
			a.DUEModes, b.DUEModes)
	}
	if a.DUEModes.DUEs() != a.DUE {
		t.Errorf("ledger absorbed %d DUEs, campaign counted %d", a.DUEModes.DUEs(), a.DUE)
	}
}

// TestStaticDUEModesDeterministic pins the static mode estimate as a
// pure function of the workload.
func TestStaticDUEModesDeterministic(t *testing.T) {
	dev := device.K40c()
	e, err := suite.Find(suite.Kepler(), "FMXM")
	if err != nil {
		t.Fatal(err)
	}
	run := func() [4]float64 {
		r, err := kernels.NewRunner(e.Name, e.Build, dev, NVBitFI.OptLevel())
		if err != nil {
			t.Fatal(err)
		}
		st, err := StaticDUEModes(r, NVBitFI)
		if err != nil {
			t.Fatal(err)
		}
		return [4]float64{st.Hang, st.IllegalAddress, st.SyncError, st.Unattributed}
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("static DUE modes not deterministic: %v vs %v", a, b)
	}
}
