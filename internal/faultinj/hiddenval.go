package faultinj

import (
	"gpurel/internal/analysis"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
)

// Cross-validation of the static hidden-resource DUE model
// (internal/analysis) against the beam campaign's per-resource strike
// ledger (internal/beam): both estimate P(DUE | strike in a hidden
// management resource) — the quantity the architecture-level injectors
// cannot measure at all, and the reason they underestimate the DUE rate
// by orders of magnitude (§VII-B). The comparison mirrors the SDC-side
// CrossValidation above: one scalar per workload, a documented
// tolerance, and a pinned kernel list the tolerance is validated on.

// HiddenCrossValTolerance is the documented agreement bound between the
// static P(DUE | hidden strike) and the beam-measured hidden DUE
// fraction, in absolute probability. The static model modulates a
// calibrated per-resource prior by code structure; the beam fraction
// carries binomial sampling noise over the campaign's hidden strikes
// (a few hundred at the validated trial counts). Measured deltas across
// the pinned kernels sit well inside +/- 0.15.
const HiddenCrossValTolerance = 0.15

// HiddenCrossValKernels lists the built-in workloads over which
// HiddenCrossValTolerance is validated (see TestHiddenCrossValAgreement).
// They are chosen for hidden-strike sample size: at the validated trial
// count each draws >= 50 hidden strikes, keeping the binomial noise on
// the beam side of the comparison a small fraction of the tolerance.
var HiddenCrossValKernels = []string{"FMXM", "CCL", "FLUD", "MERGESORT", "QUICKSORT"}

// StaticHidden computes the workload's static hidden-resource DUE
// estimate: per-launch analyses weighted by each launch's active-warp-
// cycles, the exposure the per-warp hidden state (reconvergence stacks,
// scheduler slots) scales with. Instruction weights within a launch
// come from the golden dynamic profile, as in StaticEstimate.
func StaticHidden(r *kernels.Runner) *analysis.HiddenEstimate {
	inst := r.Instance()
	profiles := r.GoldenProfiles()
	ests := make([]*analysis.HiddenEstimate, 0, len(inst.Launches))
	weights := make([]float64, 0, len(inst.Launches))
	for i, l := range inst.Launches {
		a := analysis.Analyze(l.Prog)
		var w []float64
		lw := 1.0
		if i < len(profiles) {
			w = a.OpWeights(profiles[i].PerOpLane)
			lw = float64(profiles[i].ActiveWarpCycles)
		}
		ests = append(ests, a.HiddenEstimate(w))
		weights = append(weights, lw)
	}
	return analysis.CombineHidden(r.Name, ests, weights)
}

// HiddenCrossValidation pairs the two hidden-DUE views of one workload.
type HiddenCrossValidation struct {
	Name   string
	Device string
	Static *analysis.HiddenEstimate
	Beam   *beam.Result
}

// StaticDUEGivenStrike is the model's P(DUE | hidden strike).
func (c *HiddenCrossValidation) StaticDUEGivenStrike() float64 { return c.Static.DUE }

// BeamDUEGivenStrike is the campaign's measured hidden DUE fraction.
func (c *HiddenCrossValidation) BeamDUEGivenStrike() float64 { return c.Beam.HiddenDUEFraction() }

// StaticShare returns the model's strike share for one hidden resource.
func (c *HiddenCrossValidation) StaticShare(h device.HiddenResource) float64 {
	switch h {
	case device.HiddenScheduler:
		return c.Static.SchedulerShare
	case device.HiddenInstrPipe:
		return c.Static.InstrPipeShare
	case device.HiddenMemPath:
		return c.Static.MemPathShare
	default:
		return c.Static.HostIfaceShare
	}
}

// Delta is static minus beam P(DUE | hidden strike); |Delta| within
// HiddenCrossValTolerance counts as agreement.
func (c *HiddenCrossValidation) Delta() float64 {
	return c.StaticDUEGivenStrike() - c.BeamDUEGivenStrike()
}

// Agrees reports whether the two views agree within the tolerance. A
// campaign that sampled no hidden strikes cannot disagree with anything
// and reports false: the comparison is void, not validated.
func (c *HiddenCrossValidation) Agrees() bool {
	if c.Beam.HiddenStrikes() == 0 {
		return false
	}
	d := c.Delta()
	if d < 0 {
		d = -d
	}
	return d <= HiddenCrossValTolerance
}

// CrossValidateHidden runs a beam campaign and the static hidden-DUE
// model over one already-built runner and pairs the results.
func CrossValidateHidden(cfg beam.Config, r *kernels.Runner) (*HiddenCrossValidation, error) {
	b, err := beam.Run(cfg, r)
	if err != nil {
		return nil, err
	}
	return &HiddenCrossValidation{
		Name: r.Name, Device: r.Dev.Name,
		Static: StaticHidden(r), Beam: b,
	}, nil
}
