package faultinj

import (
	"gpurel/internal/analysis"
	"gpurel/internal/beam"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// Cross-validation of the static hidden-resource DUE model
// (internal/analysis) against the beam campaign's per-resource strike
// ledger (internal/beam): both estimate P(DUE | strike in a hidden
// management resource) — the quantity the architecture-level injectors
// cannot measure at all, and the reason they underestimate the DUE rate
// by orders of magnitude (§VII-B). The comparison mirrors the SDC-side
// CrossValidation above: one scalar per workload, a documented
// tolerance, and a pinned kernel list the tolerance is validated on.

// HiddenCrossValTolerance is the documented agreement bound between the
// static P(DUE | hidden strike) and the beam-measured hidden DUE
// fraction, in absolute probability. The static model modulates a
// calibrated per-resource prior by code structure; the beam fraction
// carries binomial sampling noise over the campaign's hidden strikes
// (a few hundred at the validated trial counts). Measured deltas across
// the pinned kernels sit well inside +/- 0.15.
const HiddenCrossValTolerance = 0.15

// MeasuredCrossValTolerance is the agreement bound for the measured-
// residency hidden model (MeasuredHidden). With the occupancies read
// from the golden run's residency telemetry instead of guessed from
// code shape, the model error shrinks to the modulation terms and the
// beam side's binomial noise, so the bound tightens from the static
// ±0.15 to ±0.10 over the same pinned kernel list.
const MeasuredCrossValTolerance = 0.10

// HiddenCrossValKernels lists the built-in workloads over which
// HiddenCrossValTolerance is validated (see TestHiddenCrossValAgreement).
// They are chosen for hidden-strike sample size: at the validated trial
// count each draws >= 50 hidden strikes, keeping the binomial noise on
// the beam side of the comparison a small fraction of the tolerance.
var HiddenCrossValKernels = []string{"FMXM", "CCL", "FLUD", "MERGESORT", "QUICKSORT"}

// StaticHidden computes the workload's static hidden-resource DUE
// estimate: per-launch analyses weighted by each launch's active-warp-
// cycles, the exposure the per-warp hidden state (reconvergence stacks,
// scheduler slots) scales with. Instruction weights within a launch
// come from the golden dynamic profile, as in StaticEstimate.
func StaticHidden(r *kernels.Runner) *analysis.HiddenEstimate {
	inst := r.Instance()
	profiles := r.GoldenProfiles()
	ests := make([]*analysis.HiddenEstimate, 0, len(inst.Launches))
	weights := make([]float64, 0, len(inst.Launches))
	for i, l := range inst.Launches {
		a := analysis.Analyze(l.Prog)
		var w []float64
		lw := 1.0
		if i < len(profiles) {
			w = a.OpWeights(profiles[i].PerOpLane)
			lw = float64(profiles[i].ActiveWarpCycles)
		}
		ests = append(ests, a.HiddenEstimate(w))
		weights = append(weights, lw)
	}
	return analysis.CombineHidden(r.Name, ests, weights)
}

// MeasuredHidden computes the workload's measured-residency hidden DUE
// estimate: the golden run's residency telemetry, aggregated over all
// launches (counters summed, so launches weigh in by their execution
// share), replaces the static proxies via analysis.WithResidency. The
// static estimate remains available as the fallback for consumers
// without telemetry.
func MeasuredHidden(r *kernels.Runner) *analysis.HiddenEstimate {
	agg := sim.Aggregate(r.GoldenProfiles())
	res := agg.Residency(r.Dev)
	return StaticHidden(r).WithResidency(analysis.MeasuredResidency{
		WarpsPerSMCycle:  res.WarpsPerSMCycle,
		SMCyclesPerCycle: res.SMCyclesPerCycle,
		SchedUtil:        res.SchedUtil,
		FetchRate:        res.FetchRate,
		DivDepth:         res.DivDepth,
		LoadDepth:        res.LoadDepth,
	})
}

// HiddenCrossValidation pairs the hidden-DUE views of one workload:
// the static model, the measured-residency model, and the beam ledger.
type HiddenCrossValidation struct {
	Name     string
	Device   string
	Static   *analysis.HiddenEstimate
	Measured *analysis.HiddenEstimate
	Beam     *beam.Result
}

// StaticDUEGivenStrike is the model's P(DUE | hidden strike).
func (c *HiddenCrossValidation) StaticDUEGivenStrike() float64 { return c.Static.DUE }

// BeamDUEGivenStrike is the campaign's measured hidden DUE fraction.
func (c *HiddenCrossValidation) BeamDUEGivenStrike() float64 { return c.Beam.HiddenDUEFraction() }

// StaticShare returns the model's strike share for one hidden resource.
func (c *HiddenCrossValidation) StaticShare(h device.HiddenResource) float64 {
	switch h {
	case device.HiddenScheduler:
		return c.Static.SchedulerShare
	case device.HiddenInstrPipe:
		return c.Static.InstrPipeShare
	case device.HiddenMemPath:
		return c.Static.MemPathShare
	default:
		return c.Static.HostIfaceShare
	}
}

// MeasuredDUEGivenStrike is the measured-residency model's P(DUE |
// hidden strike), or 0 when the validation ran without telemetry.
func (c *HiddenCrossValidation) MeasuredDUEGivenStrike() float64 {
	if c.Measured == nil {
		return 0
	}
	return c.Measured.DUE
}

// Delta is static minus beam P(DUE | hidden strike); |Delta| within
// HiddenCrossValTolerance counts as agreement.
func (c *HiddenCrossValidation) Delta() float64 {
	return c.StaticDUEGivenStrike() - c.BeamDUEGivenStrike()
}

// MeasuredDelta is measured minus beam P(DUE | hidden strike).
func (c *HiddenCrossValidation) MeasuredDelta() float64 {
	return c.MeasuredDUEGivenStrike() - c.BeamDUEGivenStrike()
}

// Agrees reports whether the two views agree within the tolerance. A
// campaign that sampled no hidden strikes cannot disagree with anything
// and reports false: the comparison is void, not validated.
func (c *HiddenCrossValidation) Agrees() bool {
	if c.Beam.HiddenStrikes() == 0 {
		return false
	}
	d := c.Delta()
	if d < 0 {
		d = -d
	}
	return d <= HiddenCrossValTolerance
}

// MeasuredAgrees reports whether the measured-residency model agrees
// with the beam within the tighter MeasuredCrossValTolerance. Like
// Agrees, a strike-free campaign is void, not validated; so is a
// validation that carries no measured estimate.
func (c *HiddenCrossValidation) MeasuredAgrees() bool {
	if c.Measured == nil || c.Beam.HiddenStrikes() == 0 {
		return false
	}
	d := c.MeasuredDelta()
	if d < 0 {
		d = -d
	}
	return d <= MeasuredCrossValTolerance
}

// CrossValidateHidden runs a beam campaign and both hidden-DUE models
// (static and measured-residency) over one already-built runner and
// pairs the results.
func CrossValidateHidden(cfg beam.Config, r *kernels.Runner) (*HiddenCrossValidation, error) {
	b, err := beam.Run(cfg, r)
	if err != nil {
		return nil, err
	}
	return &HiddenCrossValidation{
		Name: r.Name, Device: r.Dev.Name,
		Static: StaticHidden(r), Measured: MeasuredHidden(r), Beam: b,
	}, nil
}
