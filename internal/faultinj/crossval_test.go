package faultinj

import (
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"gpurel/internal/suite"
)

// TestCrossValidateAgreement checks that the static ACE-based AVF
// estimate and a dynamic NVBitFI campaign agree within the documented
// tolerance on several kernels. The four kernels cover a compute-dense
// matrix multiply, a dependency-chained DP kernel, a divergent graph
// kernel, and an iterative label-propagation kernel.
func TestCrossValidateAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("four 400-fault campaigns; skipped in -short (the race tier)")
	}
	dev := device.K40c()
	cfg := Config{Tool: NVBitFI, TotalFaults: 400, Seed: 7}
	for _, name := range []string{"FMXM", "NW", "BFS", "CCL"} {
		e, err := suite.Find(suite.Kepler(), name)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := CrossValidate(cfg, e.Name, e.Build, dev)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !cv.Agrees() {
			t.Errorf("%s: static unmasked %.3f vs dynamic %.3f (delta %+.3f) outside tolerance %.2f",
				name, cv.StaticUnmasked(), cv.DynamicUnmasked(), cv.Delta(), CrossValTolerance)
		}
		if cv.Static.Sites == 0 || cv.Dynamic.Injected == 0 {
			t.Errorf("%s: degenerate cross-validation: %d static sites, %d injections",
				name, cv.Static.Sites, cv.Dynamic.Injected)
		}
	}
}

// TestStaticEstimateDeterministic pins that the static path has no
// hidden dependence on campaign state: two estimates of the same
// workload are identical.
func TestStaticEstimateDeterministic(t *testing.T) {
	dev := device.K40c()
	e, err := suite.Find(suite.Kepler(), "FMXM")
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		runner, err := kernels.NewRunner(e.Name, e.Build, dev, NVBitFI.OptLevel())
		if err != nil {
			t.Fatal(err)
		}
		est, err := StaticEstimate(runner, NVBitFI)
		if err != nil {
			t.Fatal(err)
		}
		return est.Unmasked()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("static estimate not deterministic: %.6f vs %.6f", a, b)
	}
}
