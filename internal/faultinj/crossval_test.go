package faultinj

import (
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"gpurel/internal/suite"
)

// TestCrossValidateAgreement checks, over every workload in
// CrossValKernels, that the bit-resolved static AVF estimate and a
// dynamic NVBitFI campaign agree within the documented tolerance, and
// that the bit-resolved estimator's residual against injection is
// strictly tighter than the legacy scalar estimator's on at least half
// of the workloads — the acceptance bar for carrying per-bit ACE
// vectors instead of scalars.
func TestCrossValidateAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("nine 400-fault campaigns; skipped in -short (the race tier)")
	}
	dev := device.K40c()
	cfg := Config{Tool: NVBitFI, TotalFaults: 400, Seed: 7}
	tightened, total := 0, 0
	for _, name := range CrossValKernels {
		e, err := suite.Find(suite.Kepler(), name)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := CrossValidate(cfg, e.Name, e.Build, dev)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !cv.Agrees() {
			t.Errorf("%s: static unmasked %.3f vs dynamic %.3f (delta %+.3f) outside tolerance %.2f",
				name, cv.StaticUnmasked(), cv.DynamicUnmasked(), cv.Delta(), CrossValTolerance)
		}
		if cv.Static.Sites == 0 || cv.Dynamic.Injected == 0 {
			t.Errorf("%s: degenerate cross-validation: %d static sites, %d injections",
				name, cv.Static.Sites, cv.Dynamic.Injected)
		}
		if cv.Scalar == nil {
			t.Fatalf("%s: no scalar estimate", name)
		}
		bitRes := abs(cv.Delta())
		scalRes := abs(cv.Scalar.Unmasked() - cv.DynamicUnmasked())
		total++
		if bitRes < scalRes {
			tightened++
		}
		t.Logf("%-10s dyn %.3f bit %.3f (res %.3f) scalar %.3f (res %.3f)",
			name, cv.DynamicUnmasked(), cv.StaticUnmasked(), bitRes, cv.Scalar.Unmasked(), scalRes)

		// The band table must attribute every fired value-bit trial.
		fired := 0
		for _, row := range cv.BandTable() {
			fired += row.Injected
		}
		if fired == 0 {
			t.Errorf("%s: no fired trials attributed to any bit band", name)
		}
	}
	if 2*tightened < total {
		t.Errorf("bit-resolved estimator tightened the injection residual on %d of %d workloads, want at least half",
			tightened, total)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestStaticEstimateDeterministic pins that the static path has no
// hidden dependence on campaign state: two estimates of the same
// workload are identical.
func TestStaticEstimateDeterministic(t *testing.T) {
	dev := device.K40c()
	e, err := suite.Find(suite.Kepler(), "FMXM")
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		runner, err := kernels.NewRunner(e.Name, e.Build, dev, NVBitFI.OptLevel())
		if err != nil {
			t.Fatal(err)
		}
		est, err := StaticEstimate(runner, NVBitFI)
		if err != nil {
			t.Fatal(err)
		}
		return est.Unmasked()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("static estimate not deterministic: %.6f vs %.6f", a, b)
	}
}
