// The two-level estimator (Hari et al., PAPERS.md): instead of
// re-simulating thousands of dynamically sampled faults, sample
// instruction-level fault outcomes a handful of times per *static site*
// and propagate them to a whole-application estimate with dynamic
// weights and the SDC pattern model. Level 1 is the expensive part —
// full checkpointed replays, exactly the engine the exhaustive
// campaigns use — but it runs once per static site, not once per
// dynamic sample. Level 2 is free: a site's measured outcome
// distribution and pattern mix stand in for every dynamic occurrence of
// that site, weighted by its share of the dynamic instruction stream.
//
// The estimate is unbiased for the same reason stratified sampling is:
// the exhaustive campaign draws trigger sites dynamically weighted, so
// its expected AVF is Σ_site w_site · P(outcome | site); the two-level
// estimate computes that sum directly with a per-site Monte Carlo
// estimate of P(outcome | site). What it gives up is within-site
// trigger resolution — all dynamic occurrences of a site share the
// sampled outcomes — which is exactly the approximation the pattern
// study validates (TestTwoLevelCrossVal, the patterns check.sh gate).
package faultinj

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/patterns"
	"gpurel/internal/sim"
	"gpurel/internal/stats"
)

// TwoLevelTolerance is the documented agreement band between the
// two-level SDC AVF and the exhaustive engine's: |Δ| ≤ 0.15 on every
// CrossValKernels workload. Looser than the static-estimator band would
// suggest at first glance, tighter in practice: both sides are Monte
// Carlo estimates, and the two-level side spends an order of magnitude
// fewer trials (TwoLevelConfig.TrialBudget vs TotalFaults), so the band
// must absorb both sampling noises plus the within-site approximation.
const TwoLevelTolerance = 0.15

// TwoLevelConfig sizes a two-level estimation.
type TwoLevelConfig struct {
	// Tool selects the injection-site semantics (which ops are
	// injectable). The default zero value is Sassifi; campaigns and the
	// cross-validation use NVBitFI, matching the exhaustive engine they
	// compare against.
	Tool Tool
	// TrialBudget is the approximate total number of full simulations to
	// spend across all static sites (default 64). Each site receives
	// samples proportional to its dynamic weight, at least one — so the
	// actual trial count is at most TrialBudget + #sites.
	TrialBudget int
	// Workers bounds parallelism (0: GOMAXPROCS).
	Workers int
	// Seed makes the estimate reproducible; trials are index-addressed
	// from it, so results are worker-count independent.
	Seed uint64
}

// TwoLevelResult is a propagated whole-application estimate.
type TwoLevelResult struct {
	Name   string
	Device string
	Tool   Tool

	// Sites is the number of static sites (distinct injectable opcodes
	// per distinct program) the workload exposes.
	Sites int
	// Trials is the number of full simulations actually spent.
	Trials int

	// SDCAVF / DUEAVF are the propagated point estimates (no Wilson
	// interval: the estimator's error is dominated by the per-site
	// approximation the cross-validation bounds, not by count noise).
	SDCAVF float64
	DUEAVF float64

	// Patterns is the propagated SDC pattern mix: each site's observed
	// mix weighted by that site's share of the predicted SDC mass.
	Patterns patterns.Mix
}

// Delta returns the signed SDC-AVF disagreement against an exhaustive
// campaign result.
func (t *TwoLevelResult) Delta(exact *Result) float64 {
	return t.SDCAVF - exact.SDCAVF.P
}

// Agrees reports whether the estimate lands within TwoLevelTolerance of
// the exhaustive campaign's SDC AVF.
func (t *TwoLevelResult) Agrees(exact *Result) bool {
	d := t.Delta(exact)
	if d < 0 {
		d = -d
	}
	return d <= TwoLevelTolerance
}

// Speedup returns how many times fewer simulations the estimate spent
// than the exhaustive campaign.
func (t *TwoLevelResult) Speedup(exact *Result) float64 {
	if t.Trials == 0 {
		return 0
	}
	return float64(exact.Injected) / float64(t.Trials)
}

// tlSite is one static site: an injectable opcode of one program,
// aggregated over every launch that runs the program.
type tlSite struct {
	op        isa.Op
	launches  []int    // launch indices running this program, ascending
	perLaunch []uint64 // op's dynamic lane count per those launches
	total     uint64   // dynamic occurrences of the site
	samples   int      // level-1 simulations assigned
}

// TwoLevelEstimate builds the workload and runs the two-level
// estimation against it.
func TwoLevelEstimate(cfg TwoLevelConfig, name string, build kernels.Builder, dev *device.Device) (*TwoLevelResult, error) {
	runner, err := kernels.NewRunner(name, build, dev, cfg.Tool.OptLevel())
	if err != nil {
		return nil, err
	}
	return TwoLevelEstimateWithRunner(cfg, runner)
}

// TwoLevelEstimateWithRunner runs the two-level estimation against an
// already-built runner, reusing its golden profiles and snapshots.
func TwoLevelEstimateWithRunner(cfg TwoLevelConfig, runner *kernels.Runner) (*TwoLevelResult, error) {
	budget := cfg.TrialBudget
	if budget <= 0 {
		budget = 64
	}
	sites := twoLevelSites(cfg, runner, budget)
	if len(sites) == 0 {
		return nil, fmt.Errorf("faultinj: %s has no injectable instructions under %s", runner.Name, cfg.Tool)
	}

	// Level 1: simulate each site's samples with the exact checkpointed
	// engine. Trials are index-addressed from (seed, site, sample) so
	// the outcome set is independent of worker scheduling.
	type job struct{ site, sample int }
	var jobs []job
	for si := range sites {
		for j := 0; j < sites[si].samples; j++ {
			jobs = append(jobs, job{si, j})
		}
	}
	records := make([]kernels.TrialRecord, len(jobs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s := sites[jobs[i].site]
				plan, launch := s.plan(cfg.Seed, jobs[i].site, jobs[i].sample)
				rec, err := runner.RunTrialWithFault(plan, launch)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("faultinj: two-level %s site %d sample %d: %w",
							runner.Name, jobs[i].site, jobs[i].sample, err)
					}
					mu.Unlock()
					continue
				}
				records[i] = rec
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Fold records back into per-site tallies, in job order
	// (deterministic: jobs were laid out site-major).
	tallies := make([]Tally, len(sites))
	geo := runner.Instance().Output
	for i, rec := range records {
		tallies[jobs[i].site].Count(patterns.Observe(rec, geo))
	}

	// Level 2: propagate. Each site's outcome distribution stands in
	// for all of its dynamic occurrences, weighted by the site's share
	// of the injectable stream. Site order is already deterministic, so
	// the float accumulation is byte-stable.
	var totalOps uint64
	for _, s := range sites {
		totalOps += s.total
	}
	res := &TwoLevelResult{
		Name: runner.Name, Device: runner.Dev.Name, Tool: cfg.Tool,
		Sites: len(sites), Trials: len(jobs),
	}
	var sdcMass float64
	for si, s := range sites {
		t := &tallies[si]
		w := float64(s.total) / float64(totalOps)
		pSDC := float64(t.SDC) / float64(t.Injected)
		pDUE := float64(t.DUE) / float64(t.Injected)
		res.SDCAVF += w * pSDC
		res.DUEAVF += w * pDUE
		if t.SDC > 0 {
			res.Patterns.AddScaled(t.Patterns.Mix(), w*pSDC)
			sdcMass += w * pSDC
		}
	}
	if sdcMass > 0 {
		// Normalize back to fractions of (predicted) SDCs.
		var norm patterns.Mix
		norm.AddScaled(res.Patterns, 1/sdcMass)
		res.Patterns = norm
	}
	return res, nil
}

// twoLevelSites enumerates the workload's static sites and assigns the
// trial budget proportionally to dynamic weight (at least one sample
// per site). Sites are keyed by (program name, opcode): iterative
// workloads rebuild the same kernel per step with different embedded
// constants (FGAUSSIAN's fan1/fan2, one pair per elimination step), and
// those are the same static code — keying by pointer would multiply the
// site count by the step count and destroy the trial savings.
func twoLevelSites(cfg TwoLevelConfig, runner *kernels.Runner, budget int) []*tlSite {
	launches := runner.Instance().Launches
	profiles := runner.GoldenProfiles()
	progOrder := make(map[string]int) // program name -> first-launch order
	var progs []string
	for _, l := range launches {
		if _, ok := progOrder[l.Prog.Name]; !ok {
			progOrder[l.Prog.Name] = len(progs)
			progs = append(progs, l.Prog.Name)
		}
	}
	var sites []*tlSite
	for _, prog := range progs {
		// Deterministic opcode order within the program.
		opSet := make(map[isa.Op]bool)
		for li, l := range launches {
			if l.Prog.Name != prog {
				continue
			}
			for op := range profiles[li].PerOpLane {
				if opInjectable(cfg.Tool, op) {
					opSet[op] = true
				}
			}
		}
		ops := make([]isa.Op, 0, len(opSet))
		for op := range opSet {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
		for _, op := range ops {
			s := &tlSite{op: op}
			for li, l := range launches {
				if l.Prog.Name != prog {
					continue
				}
				n := profiles[li].PerOpLane[op]
				if n == 0 {
					continue
				}
				s.launches = append(s.launches, li)
				s.perLaunch = append(s.perLaunch, n)
				s.total += n
			}
			if s.total == 0 {
				continue
			}
			sites = append(sites, s)
		}
	}
	var totalOps uint64
	for _, s := range sites {
		totalOps += s.total
	}
	for _, s := range sites {
		s.samples = int(float64(budget)*float64(s.total)/float64(totalOps) + 0.5)
		if s.samples < 1 {
			s.samples = 1
		}
	}
	return sites
}

// plan derives the site's j-th level-1 fault plan purely from (seed,
// site index, sample index), the same index-addressed determinism idiom
// as ClassSampler.Plan: identical inputs give an identical plan on any
// worker schedule.
func (s *tlSite) plan(seed uint64, site, sample int) (*sim.FaultPlan, int) {
	w1 := splitmix64(seed ^ splitmix64(uint64(s.op)+0x2c0de) ^
		splitmix64(uint64(site)<<20|uint64(sample)))
	w2 := splitmix64(w1 ^ 0x9e3779b97f4a7c15)
	rng := stats.NewRNG(w1, w2)
	// Pick one dynamic occurrence of the site, uniformly across its
	// launches, and one destination bit.
	x := uint64(rng.Int64N(int64(s.total)))
	launch, idx := s.launches[len(s.launches)-1], s.perLaunch[len(s.perLaunch)-1]-1
	for i, c := range s.perLaunch {
		if x < c {
			launch, idx = s.launches[i], x
			break
		}
		x -= c
	}
	op := s.op
	return &sim.FaultPlan{
		Kind:         sim.FaultValueBit,
		Filter:       func(o isa.Op) bool { return o == op },
		TriggerIndex: idx,
		Bit:          rng.IntN(64),
	}, launch
}
