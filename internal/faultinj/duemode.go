package faultinj

import (
	"fmt"

	"gpurel/internal/analysis"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/patterns"
)

// DUE-mode cross-validation: the static analyzer proves, per site and
// bit, which DUE mechanism a flip can reach (analysis.DUEModeVec); the
// injection campaign observes which mechanism each DUE trial actually
// hit (patterns.DUELedger, fed by the simulator's typed sim.DUEMode).
// Both sides reduce to a distribution over the same four modes —
// hang / illegal-address / sync-error / unattributed — and this file
// pairs them.

// DUEModeTolerance is the documented agreement bound between the
// static DUE-mode distribution and the injected one, as the largest
// absolute per-mode share difference (L-infinity over the four modes).
// The static router proves mechanisms from dataflow shape alone: it
// cannot see which loop iteration a flip lands in, how far an escaped
// address actually lands out of bounds, or the watchdog racing the
// illegal access, and campaign multinomial noise adds several points at
// a few hundred DUEs per campaign. Measured L-inf deltas across
// CrossValKernels on both devices at 400-fault NVBitFI campaigns sit
// inside 0.16 (see TestDUEModeCrossVal); the bound leaves headroom for
// small-sample campaigns.
const DUEModeTolerance = 0.20

// DUEModeMinDUEs is the smallest campaign DUE count the mode
// distribution is considered measurable at: below it a single trial
// moves a share by more than the tolerance, so the comparison is
// vacuous and Agrees reports true without testing it.
const DUEModeMinDUEs = 12

// StaticDUEModes computes the injection-free static DUE-mode
// distribution over the site population the tool would inject into,
// weighted by the golden dynamic profile — the mode-split companion of
// StaticEstimate, combined across launches by each launch's injectable
// site weight.
func StaticDUEModes(r *kernels.Runner, tool Tool) (*analysis.DUEModeEstimate, error) {
	filter := func(op isa.Op) bool { return opInjectable(tool, op) }
	inst := r.Instance()
	profiles := r.GoldenProfiles()
	if len(profiles) != len(inst.Launches) {
		return nil, fmt.Errorf("faultinj: %s: %d golden profiles for %d launches",
			r.Name, len(profiles), len(inst.Launches))
	}
	combined := &analysis.DUEModeEstimate{Name: r.Name}
	for i, l := range inst.Launches {
		a := analysis.AnalyzeLaunch(l.Prog, &analysis.Bounds{
			GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
		})
		e := a.DUEModeEstimate(a.OpWeights(profiles[i].PerOpLane), filter)
		if e.Weight == 0 {
			continue
		}
		combined.Sites += e.Sites
		combined.Weight += e.Weight
		combined.Hang += e.Weight * e.Hang
		combined.IllegalAddress += e.Weight * e.IllegalAddress
		combined.SyncError += e.Weight * e.SyncError
		combined.Unattributed += e.Weight * e.Unattributed
	}
	if combined.Weight == 0 {
		return nil, fmt.Errorf("faultinj: %s has no injectable lane-ops under %s", r.Name, tool)
	}
	combined.Hang /= combined.Weight
	combined.IllegalAddress /= combined.Weight
	combined.SyncError /= combined.Weight
	combined.Unattributed /= combined.Weight
	combined.DUEMass = combined.Hang + combined.IllegalAddress +
		combined.SyncError + combined.Unattributed
	return combined, nil
}

// staticDUEMix reduces a static mode estimate to the share distribution
// the dynamic ledger mixes to.
func staticDUEMix(e *analysis.DUEModeEstimate) patterns.DUEMix {
	return patterns.DUEMix{
		Hang:           e.Share(analysis.ModeHang),
		IllegalAddress: e.Share(analysis.ModeIllegalAddress),
		SyncError:      e.Share(analysis.ModeSyncError),
		Unattributed:   e.Share(analysis.ModeUnattributed),
	}
}

// DUEModeCrossVal pairs the static and injected DUE-mode views of one
// workload.
type DUEModeCrossVal struct {
	Name   string
	Tool   Tool
	Device string

	// Static is the analyzer's mode estimate; StaticMix its share
	// distribution.
	Static    *analysis.DUEModeEstimate
	StaticMix patterns.DUEMix

	// DynamicMix is the campaign ledger's distribution over DynamicDUEs
	// typed DUE trials.
	DynamicMix  patterns.DUEMix
	DynamicDUEs int
}

// Delta is the L-infinity distance between the two distributions: the
// largest absolute per-mode share difference.
func (c *DUEModeCrossVal) Delta() float64 {
	d := absf(c.StaticMix.Hang - c.DynamicMix.Hang)
	if v := absf(c.StaticMix.IllegalAddress - c.DynamicMix.IllegalAddress); v > d {
		d = v
	}
	if v := absf(c.StaticMix.SyncError - c.DynamicMix.SyncError); v > d {
		d = v
	}
	if v := absf(c.StaticMix.Unattributed - c.DynamicMix.Unattributed); v > d {
		d = v
	}
	return d
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Measurable reports whether the campaign produced enough typed DUEs
// for the distribution comparison to mean anything.
func (c *DUEModeCrossVal) Measurable() bool { return c.DynamicDUEs >= DUEModeMinDUEs }

// Agrees reports whether the two distributions agree within
// DUEModeTolerance; an unmeasurable campaign agrees vacuously.
func (c *DUEModeCrossVal) Agrees() bool {
	return !c.Measurable() || c.Delta() <= DUEModeTolerance
}

// CrossValidateDUEModes runs a dynamic campaign and the static mode
// estimator over one workload and pairs the distributions.
func CrossValidateDUEModes(cfg Config, name string, build kernels.Builder, dev *device.Device) (*DUEModeCrossVal, error) {
	runner, err := kernels.NewRunner(name, build, dev, cfg.Tool.OptLevel())
	if err != nil {
		return nil, err
	}
	dyn, err := RunWithRunner(cfg, runner)
	if err != nil {
		return nil, err
	}
	return PairDUEModes(runner, cfg.Tool, dev.Name, dyn)
}

// PairDUEModes computes the static side against an existing campaign
// result (sharing the caller's runner and golden profiles).
func PairDUEModes(runner *kernels.Runner, tool Tool, devName string, dyn *Result) (*DUEModeCrossVal, error) {
	st, err := StaticDUEModes(runner, tool)
	if err != nil {
		return nil, err
	}
	return &DUEModeCrossVal{
		Name: runner.Name, Tool: tool, Device: devName,
		Static: st, StaticMix: staticDUEMix(st),
		DynamicMix: dyn.DUEModes.Mix(), DynamicDUEs: dyn.DUEModes.DUEs(),
	}, nil
}
