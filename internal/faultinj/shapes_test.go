package faultinj

import (
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

// Figure-4 shape tests: the AVF orderings the paper reports (§VI) must
// emerge from the injection campaigns.

func avfOf(t *testing.T, tool Tool, name string, b kernels.Builder, dev *device.Device, n int) *Result {
	t.Helper()
	res, err := Run(Config{
		Tool: tool, FaultsPerClass: n / 4, TotalFaults: n, Seed: 77,
	}, name, b, dev)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFig4ShapeFloatVsIntegerAVF(t *testing.T) {
	if testing.Short() {
		t.Skip("injection shape test")
	}
	dev := device.K40c()
	// §VI: "Gaussian, LUD, MxM, and Lava have the highest AVF ... the
	// smaller AVFs come from integer applications: Quicksort, Mergesort,
	// CCL, and NW."
	fp := []struct {
		name string
		b    kernels.Builder
	}{
		{"FMXM", kernels.MxMBuilder(isa.F32)},
		{"FLAVA", kernels.LavaBuilder(isa.F32)},
	}
	intc := []struct {
		name string
		b    kernels.Builder
	}{
		{"CCL", kernels.CCLBuilder()},
		{"MERGESORT", kernels.MergesortBuilder()},
	}
	var fpSum, intSum float64
	for _, c := range fp {
		fpSum += avfOf(t, NVBitFI, c.name, c.b, dev, 250).SDCAVF.P
	}
	for _, c := range intc {
		intSum += avfOf(t, NVBitFI, c.name, c.b, dev, 250).SDCAVF.P
	}
	if fpSum/2 <= intSum/2 {
		t.Errorf("floating-point codes should out-AVF integer codes: fp %.3f vs int %.3f",
			fpSum/2, intSum/2)
	}
}

func TestFig4ShapeNVBitFIAboveSassifi(t *testing.T) {
	if testing.Short() {
		t.Skip("injection shape test")
	}
	dev := device.K40c()
	// §VI: averaged over the benchmarks, the NVBitFI AVF (modern
	// compiler, optimized SASS) is ~18% above SASSIFI's. Check the
	// direction over a small panel.
	panel := []struct {
		name string
		b    kernels.Builder
	}{
		{"FMXM", kernels.MxMBuilder(isa.F32)},
		{"FLAVA", kernels.LavaBuilder(isa.F32)},
		{"QUICKSORT", kernels.QuicksortBuilder()},
	}
	var sassifi, nvbitfi float64
	for _, c := range panel {
		sassifi += avfOf(t, Sassifi, c.name, c.b, dev, 280).SDCAVF.P
		nvbitfi += avfOf(t, NVBitFI, c.name, c.b, dev, 280).SDCAVF.P
	}
	if nvbitfi <= sassifi {
		t.Errorf("NVBitFI panel AVF %.3f should exceed SASSIFI's %.3f (optimized code has higher AVF)",
			nvbitfi/3, sassifi/3)
	}
}

func TestFig4ShapeCNNAVFIsLow(t *testing.T) {
	if testing.Short() {
		t.Skip("injection shape test")
	}
	dev := device.K40c()
	// §VI: CNN AVFs are extremely low (tolerance-aware SDC criterion);
	// matrix multiplication's is the highest.
	yolo := avfOf(t, NVBitFI, "FYOLOV3", kernels.YOLOBuilder(true, isa.F32), dev, 200)
	mxm := avfOf(t, NVBitFI, "FMXM", kernels.MxMBuilder(isa.F32), dev, 200)
	if yolo.SDCAVF.P >= mxm.SDCAVF.P/2 {
		t.Errorf("CNN AVF %.3f should be far below MxM's %.3f", yolo.SDCAVF.P, mxm.SDCAVF.P)
	}
}

func TestFig4ShapePrecisionIndependentAVF(t *testing.T) {
	if testing.Short() {
		t.Skip("injection shape test")
	}
	dev := device.V100()
	// §VI: Hotspot/Lava/MxM run the same kernel at all precisions, so
	// their SDC AVFs barely move between float and double (<4% in the
	// paper; allow sampling slack here).
	f := avfOf(t, NVBitFI, "FMXM", kernels.MxMBuilder(isa.F32), dev, 300).SDCAVF.P
	d := avfOf(t, NVBitFI, "DMXM", kernels.MxMBuilder(isa.F64), dev, 300).SDCAVF.P
	diff := f - d
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.15 {
		t.Errorf("MxM AVF should be precision-independent: F %.3f vs D %.3f", f, d)
	}
}
