package faultinj

import (
	"reflect"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/suite"
)

// TestTwoLevelCrossVal is the estimator's acceptance gate: on every
// cross-validation workload, the two-level SDC AVF must land within
// TwoLevelTolerance of an exhaustive NVBitFI campaign's while spending
// at least five times fewer simulations. Both sides share one runner,
// so the comparison isolates the estimator, not the build.
func TestTwoLevelCrossVal(t *testing.T) {
	if testing.Short() {
		t.Skip("nine exhaustive 500-fault campaigns plus the two-level runs")
	}
	dev := device.K40c()
	for _, name := range CrossValKernels {
		e, err := suite.Find(suite.Kepler(), name)
		if err != nil {
			t.Fatal(err)
		}
		runner, err := kernels.NewRunner(e.Name, e.Build, dev, NVBitFI.OptLevel())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exact, err := RunWithRunner(Config{Tool: NVBitFI, TotalFaults: 500, Seed: 7}, runner)
		if err != nil {
			t.Fatalf("%s: exhaustive campaign: %v", name, err)
		}
		tl, err := TwoLevelEstimateWithRunner(TwoLevelConfig{Tool: NVBitFI, Seed: 7}, runner)
		if err != nil {
			t.Fatalf("%s: two-level estimate: %v", name, err)
		}
		if !tl.Agrees(exact) {
			t.Errorf("%s: two-level SDC %.3f vs exhaustive %.3f (delta %+.3f) outside ±%.2f",
				name, tl.SDCAVF, exact.SDCAVF.P, tl.Delta(exact), TwoLevelTolerance)
		}
		if sp := tl.Speedup(exact); sp < 5 {
			t.Errorf("%s: speedup %.1fx below 5x (%d two-level vs %d exhaustive trials)",
				name, sp, tl.Trials, exact.Injected)
		}
		if tl.Sites == 0 || tl.Trials == 0 {
			t.Errorf("%s: degenerate estimate: %d sites, %d trials", name, tl.Sites, tl.Trials)
		}
		t.Logf("%-10s exact %.3f two-level %.3f (delta %+.3f) %d sites, %d vs %d trials (%.1fx)",
			name, exact.SDCAVF.P, tl.SDCAVF, tl.Delta(exact), tl.Sites,
			tl.Trials, exact.Injected, tl.Speedup(exact))
	}
}

// TestTwoLevelDeterministicAcrossWorkers pins the index-addressed trial
// scheme: the estimate — AVFs, trial count, and propagated pattern mix —
// is bit-identical on one worker and eight.
func TestTwoLevelDeterministicAcrossWorkers(t *testing.T) {
	dev := device.K40c()
	run := func(workers int) *TwoLevelResult {
		res, err := TwoLevelEstimate(TwoLevelConfig{
			Tool: NVBitFI, Workers: workers, Seed: 11, TrialBudget: 48,
		}, "FMXM", kernels.MxMBuilder(isa.F32), dev)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two-level estimate differs across worker counts:\n1: %+v\n8: %+v", a, b)
	}
}
