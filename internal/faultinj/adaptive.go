// Adaptive campaign support: deterministic, index-addressable per-class
// fault sampling for the gpurel-serve daemon (internal/serve).
//
// The batch campaigns in this package draw every plan from one
// sequential RNG stream, which ties the sampled sequence to the exact
// order plans are built. An adaptively-stopped campaign cannot afford
// that coupling: trials are sharded across a worker pool, classes stop
// at different times, and the trial count is unknown up front. The
// ClassSampler instead derives trial i of a class from (seed, class, i)
// alone — the split-RNG determinism scheme of the PR-2 engine taken to
// its limit — so any subset of indices, executed in any order on any
// number of workers, yields the same plans, and a campaign resumed from
// a checkpoint continues the exact sequence it would have run.
package faultinj

import (
	"fmt"

	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
	"gpurel/internal/stats"
)

// ClassSampler draws the adaptive campaign's injection plans for one
// instruction class of one runner: IOV value-bit faults (the NVBitFI
// site semantics) dynamically weighted over the class's lane-ops.
// It is immutable after construction and safe for concurrent use.
type ClassSampler struct {
	Class isa.Class
	Tool  Tool

	filter    func(isa.Op) bool
	perLaunch []uint64
	total     uint64
}

// NewClassSampler prepares the sampler for one class, returning ok =
// false when the tool has no injectable dynamic population in that
// class (nothing to sample).
func NewClassSampler(r *kernels.Runner, tool Tool, class isa.Class) (*ClassSampler, bool) {
	filter := classFilter(tool, class)
	perLaunch := r.LaunchLaneOps(filter)
	var total uint64
	for _, c := range perLaunch {
		total += c
	}
	if total == 0 {
		return nil, false
	}
	return &ClassSampler{
		Class: class, Tool: tool,
		filter: filter, perLaunch: perLaunch, total: total,
	}, true
}

// Population returns the class's injectable dynamic lane-op count.
func (s *ClassSampler) Population() uint64 { return s.total }

// Plan returns the index-th injection plan of the campaign identified
// by seed: a pure function of (seed, class, index), independent of how
// many plans were drawn before it or on which worker it runs.
func (s *ClassSampler) Plan(seed, index uint64) (*sim.FaultPlan, int) {
	// Two independent seed words from (seed, class, index). splitmix64
	// decorrelates consecutive indices; the class and a distinct salt
	// per word keep streams disjoint across classes and campaigns.
	w1 := splitmix64(seed ^ splitmix64(uint64(s.Class)+0x51a3) ^ splitmix64(index))
	w2 := splitmix64(w1 ^ 0x9e3779b97f4a7c15)
	rng := stats.NewRNG(w1, w2)
	launch, idx := sampleSite(rng, s.perLaunch, s.total)
	return &sim.FaultPlan{
		Kind: sim.FaultValueBit, Filter: s.filter,
		TriggerIndex: idx, Bit: rng.IntN(64),
	}, launch
}

// AdaptiveClasses returns the instruction classes with a nonzero
// injectable population for the tool on this runner, in deterministic
// (class-value) order — the per-class campaigns an adaptive run
// stratifies over, mirroring the paper's per-class sampling discipline.
func AdaptiveClasses(r *kernels.Runner, tool Tool) []isa.Class {
	var out []isa.Class
	for c := isa.Class(0); c < isa.ClassCount; c++ {
		if _, ok := NewClassSampler(r, tool, c); ok {
			out = append(out, c)
		}
	}
	return out
}

// ClassByName resolves a Figure-1 class label ("FMA", "LDST", ...)
// back to its isa.Class, the inverse of Class.String for checkpoint
// round-trips.
func ClassByName(name string) (isa.Class, error) {
	for c := isa.Class(0); c < isa.ClassCount; c++ {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("faultinj: unknown instruction class %q", name)
}

// splitmix64 is the SplitMix64 finalizer: a bijective mixer whose
// output sequence over consecutive inputs passes BigCrush, which makes
// it safe to derive per-index RNG seeds from small integers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
