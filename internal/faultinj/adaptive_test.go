package faultinj

import (
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

func adaptiveTestRunner(t *testing.T) *kernels.Runner {
	t.Helper()
	r, err := kernels.NewRunner("FMXM", kernels.MxMBuilder(isa.F32),
		device.V100(), NVBitFI.OptLevel())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The sampler's whole contract: Plan(seed, i) is a pure function, so
// drawing indices in any order, or re-drawing them after a resume,
// reproduces the same plans.
func TestClassSamplerPure(t *testing.T) {
	r := adaptiveTestRunner(t)
	classes := AdaptiveClasses(r, NVBitFI)
	if len(classes) == 0 {
		t.Fatal("FMXM has no injectable classes under NVBitFI")
	}
	for _, class := range classes {
		s, ok := NewClassSampler(r, NVBitFI, class)
		if !ok {
			t.Fatalf("class %s vanished between AdaptiveClasses and NewClassSampler", class)
		}
		// Forward pass, then the same indices in reverse on a fresh
		// sampler.
		s2, _ := NewClassSampler(r, NVBitFI, class)
		type drawn struct {
			trigger uint64
			bit     int
			launch  int
		}
		fwd := make([]drawn, 64)
		for i := range fwd {
			p, l := s.Plan(7, uint64(i))
			fwd[i] = drawn{p.TriggerIndex, p.Bit, l}
		}
		for i := len(fwd) - 1; i >= 0; i-- {
			p, l := s2.Plan(7, uint64(i))
			if p.TriggerIndex != fwd[i].trigger || p.Bit != fwd[i].bit || l != fwd[i].launch {
				t.Fatalf("%s plan %d not reproducible: (%d,%d,%d) then (%d,%d,%d)",
					class, i, fwd[i].trigger, fwd[i].bit, fwd[i].launch,
					p.TriggerIndex, p.Bit, l)
			}
		}
	}
}

func TestClassSamplerSeedsDisjoint(t *testing.T) {
	r := adaptiveTestRunner(t)
	class := AdaptiveClasses(r, NVBitFI)[0]
	s, _ := NewClassSampler(r, NVBitFI, class)
	same := 0
	const n = 128
	for i := uint64(0); i < n; i++ {
		a, _ := s.Plan(1, i)
		b, _ := s.Plan(2, i)
		if a.TriggerIndex == b.TriggerIndex && a.Bit == b.Bit {
			same++
		}
	}
	// Two seeds agreeing on more than a stray coincidence means the
	// seed word is not actually reaching the stream.
	if same > n/16 {
		t.Fatalf("seeds 1 and 2 produced %d/%d identical plans", same, n)
	}
}

func TestClassSamplerSitesInPopulation(t *testing.T) {
	r := adaptiveTestRunner(t)
	for _, class := range AdaptiveClasses(r, NVBitFI) {
		s, _ := NewClassSampler(r, NVBitFI, class)
		perLaunch := r.LaunchLaneOps(classFilter(NVBitFI, class))
		for i := uint64(0); i < 256; i++ {
			p, l := s.Plan(3, i)
			if l < 0 || l >= len(perLaunch) {
				t.Fatalf("%s plan %d: launch %d out of range", class, i, l)
			}
			if p.TriggerIndex >= perLaunch[l] {
				t.Fatalf("%s plan %d: trigger %d beyond launch %d population %d",
					class, i, p.TriggerIndex, l, perLaunch[l])
			}
			if p.Bit < 0 || p.Bit > 63 {
				t.Fatalf("%s plan %d: bit %d", class, i, p.Bit)
			}
		}
	}
}

func TestAdaptiveClassesMatchPopulation(t *testing.T) {
	r := adaptiveTestRunner(t)
	listed := make(map[isa.Class]bool)
	for _, c := range AdaptiveClasses(r, NVBitFI) {
		listed[c] = true
	}
	for c := isa.Class(0); c < isa.ClassCount; c++ {
		var total uint64
		for _, n := range r.LaunchLaneOps(classFilter(NVBitFI, c)) {
			total += n
		}
		if (total > 0) != listed[c] {
			t.Fatalf("class %s: population %d but listed=%v", c, total, listed[c])
		}
	}
}

func TestClassByNameRoundTrip(t *testing.T) {
	for c := isa.Class(0); c < isa.ClassCount; c++ {
		got, err := ClassByName(c.String())
		if err != nil || got != c {
			t.Fatalf("ClassByName(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ClassByName("NOSUCH"); err == nil {
		t.Fatal("ClassByName accepted an unknown label")
	}
}
