package patterns

import (
	"errors"
	"math"
	"testing"

	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

// geoF32 is a 4x4 FP32 output grid at a non-zero base.
func geoF32() *kernels.OutputRegion {
	return &kernels.OutputRegion{Base: 0x1000, Rows: 4, Cols: 4, DType: isa.F32}
}

// f32Word builds one corrupt FP32 word at (row, col).
func f32Word(geo *kernels.OutputRegion, row, col int, golden, observed float32) kernels.CorruptWord {
	return kernels.CorruptWord{
		Addr:     geo.Base + uint32((row*geo.Cols+col)*4),
		Golden:   math.Float32bits(golden),
		Observed: math.Float32bits(observed),
	}
}

func sdc(diff ...kernels.CorruptWord) kernels.TrialRecord {
	return kernels.TrialRecord{Outcome: kernels.SDC, Diff: diff, CorruptWords: len(diff)}
}

func classify(t *testing.T, rec kernels.TrialRecord, geo *kernels.OutputRegion) Class {
	t.Helper()
	cls, err := Classify(rec, geo)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	return cls
}

// TestSpatialClasses builds one hand-made diff per spatial class and
// checks the precedence order, including the row/column/block ties.
func TestSpatialClasses(t *testing.T) {
	geo := geoF32()
	cases := []struct {
		name string
		at   [][2]int
		want Spatial
	}{
		{"single element", [][2]int{{1, 2}}, Single},
		{"two in one row", [][2]int{{1, 0}, {1, 3}}, SameRow},
		{"full row (1xN box is a row, not a block)",
			[][2]int{{1, 0}, {1, 1}, {1, 2}, {1, 3}}, SameRow},
		{"two in one column", [][2]int{{0, 2}, {3, 2}}, SameCol},
		{"full column (Nx1 box is a column, not a block)",
			[][2]int{{0, 1}, {1, 1}, {2, 1}, {3, 1}}, SameCol},
		{"2x2 aligned block", [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}}, Block},
		{"2x3 aligned block",
			[][2]int{{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {2, 3}}, Block},
		{"diagonal pair (partially covered box)", [][2]int{{0, 0}, {1, 1}}, Scattered},
		{"three scattered", [][2]int{{0, 0}, {1, 1}, {3, 3}}, Scattered},
		{"block minus one corner", [][2]int{{1, 1}, {1, 2}, {2, 1}}, Scattered},
	}
	for _, tc := range cases {
		var diff []kernels.CorruptWord
		for _, rc := range tc.at {
			diff = append(diff, f32Word(geo, rc[0], rc[1], 1.0, 8.0))
		}
		cls := classify(t, sdc(diff...), geo)
		if cls.Spatial != tc.want {
			t.Errorf("%s: got %s, want %s", tc.name, cls.Spatial, tc.want)
		}
	}
}

// TestMagnitudeBands checks the critical/tolerable split: the relative
// threshold, the NaN/Inf override, and the strict-inequality boundary.
func TestMagnitudeBands(t *testing.T) {
	geo := geoF32()
	cases := []struct {
		name             string
		golden, observed float32
		want             Magnitude
	}{
		{"small deviation", 2.0, 2.1, Tolerable}, // 5% < 10%
		{"large deviation", 2.0, 2.5, Critical},  // 25% > 10%
		{"NaN is always critical", 2.0, float32(math.NaN()), Critical},
		{"+Inf is always critical", 2.0, float32(math.Inf(1)), Critical},
		{"near-zero golden uses the epsilon floor", 0, 1e-8, Tolerable},
		{"near-zero golden, visible corruption", 0, 1.0, Critical},
	}
	for _, tc := range cases {
		cls := classify(t, sdc(f32Word(geo, 0, 0, tc.golden, tc.observed)), geo)
		if cls.Magnitude != tc.want {
			t.Errorf("%s: got %s, want %s", tc.name, cls.Magnitude, tc.want)
		}
	}

	// I32 boundary: exactly CriticalRel*|golden| is tolerable (strict >),
	// one past it is critical.
	igeo := &kernels.OutputRegion{Base: 0x2000, Rows: 2, Cols: 2, DType: isa.I32}
	iword := func(golden, observed int32) kernels.CorruptWord {
		return kernels.CorruptWord{Addr: igeo.Base, Golden: uint32(golden), Observed: uint32(observed)}
	}
	if cls := classify(t, sdc(iword(100, 110)), igeo); cls.Magnitude != Tolerable {
		t.Errorf("I32 deviation exactly at the band edge: got %s, want tolerable", cls.Magnitude)
	}
	if cls := classify(t, sdc(iword(100, 111)), igeo); cls.Magnitude != Critical {
		t.Errorf("I32 deviation past the band edge: got %s, want critical", cls.Magnitude)
	}

	// One critical element among tolerable ones marks the trial critical.
	cls := classify(t, sdc(
		f32Word(geo, 0, 0, 2.0, 2.01),
		f32Word(geo, 0, 3, 2.0, 9.0)), geo)
	if cls.Magnitude != Critical {
		t.Errorf("mixed magnitudes: got %s, want critical", cls.Magnitude)
	}
}

// TestF64Elements checks multi-word element handling: the two words of
// one F64 element group into a single corrupt element, and the value
// decodes from both words.
func TestF64Elements(t *testing.T) {
	geo := &kernels.OutputRegion{Base: 0x4000, Rows: 2, Cols: 2, DType: isa.F64}
	words := func(row, col int, golden, observed float64) []kernels.CorruptWord {
		addr := geo.Base + uint32((row*geo.Cols+col)*8)
		g, o := math.Float64bits(golden), math.Float64bits(observed)
		return []kernels.CorruptWord{
			{Addr: addr, Golden: uint32(g), Observed: uint32(o)},
			{Addr: addr + 4, Golden: uint32(g >> 32), Observed: uint32(o >> 32)},
		}
	}
	cls := classify(t, sdc(words(1, 0, 3.0, 3.05)...), geo)
	if cls.Spatial != Single || cls.Magnitude != Tolerable {
		t.Errorf("F64 single tolerable element: got %s", cls)
	}
	cls = classify(t, sdc(words(1, 0, 3.0, math.NaN())...), geo)
	if cls.Spatial != Single || cls.Magnitude != Critical {
		t.Errorf("F64 NaN element: got %s", cls)
	}
}

// TestClassifyErrors pins the three rejection paths.
func TestClassifyErrors(t *testing.T) {
	geo := geoF32()
	if _, err := Classify(sdc(f32Word(geo, 0, 0, 1, 2)), nil); !errors.Is(err, ErrNoGeometry) {
		t.Errorf("nil geometry: got %v, want ErrNoGeometry", err)
	}
	if _, err := Classify(kernels.TrialRecord{Outcome: kernels.SDC}, geo); !errors.Is(err, ErrEmptyDiff) {
		t.Errorf("empty diff: got %v, want ErrEmptyDiff", err)
	}
	outside := kernels.CorruptWord{Addr: geo.Base + uint32(geo.WordCount()*4), Golden: 1, Observed: 2}
	if _, err := Classify(sdc(outside), geo); !errors.Is(err, ErrOutsideOutput) {
		t.Errorf("corruption past the region: got %v, want ErrOutsideOutput", err)
	}
	below := kernels.CorruptWord{Addr: geo.Base - 4, Golden: 1, Observed: 2}
	if _, err := Classify(sdc(below), geo); !errors.Is(err, ErrOutsideOutput) {
		t.Errorf("corruption below the region: got %v, want ErrOutsideOutput", err)
	}
}

// TestObserveAndLedger covers the aggregation layer: non-SDC outcomes
// stay unclassified and uncounted, unclassifiable SDCs land in the
// Unclassified bucket, and Mix normalizes to fractions.
func TestObserveAndLedger(t *testing.T) {
	geo := geoF32()
	var l Ledger

	l.Count(Observe(kernels.TrialRecord{Outcome: kernels.Masked}, geo))
	l.Count(Observe(kernels.TrialRecord{Outcome: kernels.DUE}, geo))
	if l.SDCs() != 0 {
		t.Fatalf("non-SDC outcomes counted: %+v", l)
	}

	l.Count(Observe(kernels.TrialRecord{Outcome: kernels.SDC}, geo)) // no diff
	l.Count(Observe(sdc(f32Word(geo, 0, 0, 1, 9)), nil))             // no geometry
	if l.Unclassified != 2 {
		t.Fatalf("unclassifiable SDCs: got %d, want 2", l.Unclassified)
	}

	l.Count(Observe(sdc(f32Word(geo, 0, 0, 2.0, 2.01)), geo))
	l.Count(Observe(sdc(f32Word(geo, 1, 0, 2.0, 9), f32Word(geo, 1, 2, 2.0, 9)), geo))
	if l.Single != 1 || l.SameRow != 1 || l.Tolerable != 1 || l.Critical != 1 {
		t.Fatalf("classified counts wrong: %+v", l)
	}
	if l.SDCs() != 4 {
		t.Fatalf("SDCs() = %d, want 4", l.SDCs())
	}

	var m Ledger
	m.Merge(l)
	m.Merge(l)
	if m.SDCs() != 8 || m.Single != 2 {
		t.Fatalf("Merge: %+v", m)
	}

	mix := l.Mix()
	spatial := mix.Single + mix.SameRow + mix.SameCol + mix.Block + mix.Scattered + mix.Unclassified
	if math.Abs(spatial-1) > 1e-12 {
		t.Fatalf("spatial mix sums to %f, want 1", spatial)
	}
	if (Ledger{}).Mix() != (Mix{}) {
		t.Fatalf("empty ledger must give the zero mix")
	}
}
