package patterns

import (
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// DUELedger aggregates typed DUE mechanisms over a campaign — the DUE
// counterpart of the SDC pattern Ledger. Integer counters keep it
// byte-stable under JSON round-trips and mergeable across shards; every
// DUE observation lands in exactly one bucket, with records that carry
// no typed mode (pre-taxonomy records, synthetic never-simulated DUEs
// like ECC-intercepted beam strikes) folded into Unattributed.
type DUELedger struct {
	Hang           int `json:"hang"`
	IllegalAddress int `json:"illegal_address"`
	SyncError      int `json:"sync_error"`
	Unattributed   int `json:"unattributed"`
}

// Count folds one observation into the ledger. Masked/SDC observations
// are ignored — the ledger is a DUE taxonomy, not an outcome tally.
func (l *DUELedger) Count(ob Observation) {
	if ob.Outcome != kernels.DUE {
		return
	}
	switch ob.DUEMode {
	case sim.DUEHang:
		l.Hang++
	case sim.DUEIllegalAddress:
		l.IllegalAddress++
	case sim.DUESyncError:
		l.SyncError++
	default:
		l.Unattributed++
	}
}

// Merge adds another ledger's counts into l.
func (l *DUELedger) Merge(o DUELedger) {
	l.Hang += o.Hang
	l.IllegalAddress += o.IllegalAddress
	l.SyncError += o.SyncError
	l.Unattributed += o.Unattributed
}

// DUEs returns the total DUE count the ledger has absorbed.
func (l DUELedger) DUEs() int {
	return l.Hang + l.IllegalAddress + l.SyncError + l.Unattributed
}

// DUEMix is a DUE ledger normalized to fractions — the distribution the
// static analyzer's estimate is cross-validated against. The four
// fields sum to 1 for a non-empty source ledger.
type DUEMix struct {
	Hang           float64 `json:"hang"`
	IllegalAddress float64 `json:"illegal_address"`
	SyncError      float64 `json:"sync_error"`
	Unattributed   float64 `json:"unattributed"`
}

// Mix normalizes the ledger. An empty ledger yields the zero DUEMix.
func (l DUELedger) Mix() DUEMix {
	n := l.DUEs()
	if n == 0 {
		return DUEMix{}
	}
	d := float64(n)
	return DUEMix{
		Hang:           float64(l.Hang) / d,
		IllegalAddress: float64(l.IllegalAddress) / d,
		SyncError:      float64(l.SyncError) / d,
		Unattributed:   float64(l.Unattributed) / d,
	}
}
