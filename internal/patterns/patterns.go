// Package patterns classifies SDC output corruptions by spatial pattern
// and value magnitude — the "Anatomy of SDC" taxonomy the paper's
// combination argument leans on. A trial's structured record
// (kernels.TrialRecord) carries the word-level output diff; this package
// maps it onto the workload's declared output grid
// (kernels.OutputRegion) and aggregates the classes into per-campaign
// ledgers that the study persists as patterns_* artifacts.
//
// Spatial classes follow the taxonomy's precedence: a single corrupted
// element beats any multi-element explanation; one shared row beats one
// shared column (the tie, a fully corrupted 1×N box, is a row by
// convention); a fully covered bounding box of at least 2×2 elements is
// an aligned block; everything else is scattered. Magnitude splits
// critical corruptions (NaN/Inf, or a relative deviation above
// CriticalRel) from tolerable ones, the DNN fault-model paper's bands.
package patterns

import (
	"errors"
	"math"

	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

// Spatial is the corruption's footprint on the output grid.
type Spatial uint8

// Spatial classes, in precedence order.
const (
	Single    Spatial = iota // exactly one corrupted element
	SameRow                  // several elements, all in one row
	SameCol                  // several elements, all in one column
	Block                    // a fully corrupted aligned block, ≥2×2
	Scattered                // multiple elements with none of the above
)

// String names the spatial class.
func (s Spatial) String() string {
	switch s {
	case Single:
		return "single"
	case SameRow:
		return "same-row"
	case SameCol:
		return "same-col"
	case Block:
		return "block"
	case Scattered:
		return "scattered"
	default:
		return "spatial(?)"
	}
}

// Magnitude is the corruption's value band.
type Magnitude uint8

// Magnitude bands.
const (
	Tolerable Magnitude = iota // every corrupted value stays near golden
	Critical                   // some value is NaN/Inf or far off golden
)

// String names the magnitude band.
func (m Magnitude) String() string {
	if m == Critical {
		return "critical"
	}
	return "tolerable"
}

// CriticalRel is the relative-deviation threshold separating tolerable
// from critical corrupted values: |observed−golden| / max(|golden|, ε)
// above it — or any non-finite observed value — marks the trial
// critical. 0.10 is the DNN taxonomy's band edge (a 10% activation
// perturbation is where detection outcomes start flipping).
const CriticalRel = 0.10

// Class is one SDC's pattern classification.
type Class struct {
	Spatial   Spatial
	Magnitude Magnitude
}

// String renders the class as "spatial/magnitude".
func (c Class) String() string { return c.Spatial.String() + "/" + c.Magnitude.String() }

// Classification errors. Campaigns fold all of them into the ledger's
// Unclassified bucket; they are distinguished for tests.
var (
	// ErrNoGeometry: the instance declares no output grid.
	ErrNoGeometry = errors.New("patterns: no output geometry declared")
	// ErrEmptyDiff: the record carries no corrupted words (a Masked/DUE
	// record, or a capture that recorded nothing).
	ErrEmptyDiff = errors.New("patterns: empty diff")
	// ErrOutsideOutput: every corrupted word lies outside the output
	// region (the fault corrupted scratch state the comparator happens
	// to cover).
	ErrOutsideOutput = errors.New("patterns: corruption outside the output region")
)

// elemDiff is one output element touched by the diff: its grid
// coordinates and its (up to two) memory words.
type elemDiff struct {
	row, col         int
	golden, observed [2]uint32
	corrupt          bool
}

// Classify maps one SDC record's diff onto the output grid and returns
// its pattern class. Corrupted words outside the region are ignored;
// if none land inside, ErrOutsideOutput is returned.
func Classify(rec kernels.TrialRecord, geo *kernels.OutputRegion) (Class, error) {
	if geo == nil {
		return Class{}, ErrNoGeometry
	}
	if len(rec.Diff) == 0 {
		return Class{}, ErrEmptyDiff
	}
	// Group the corrupt words by element. The capture emits whole
	// elements (a multi-word element's still-golden words included), so
	// magnitude decoding sees complete values; only words that actually
	// differ define the corrupt-element set.
	ew := geo.ElemWords()
	elems := make(map[int]*elemDiff)
	order := make([]int, 0, len(rec.Diff))
	for _, w := range rec.Diff {
		row, col, ok := geo.Locate(w.Addr)
		if !ok {
			continue
		}
		idx := row*geo.Cols + col
		e := elems[idx]
		if e == nil {
			e = &elemDiff{row: row, col: col}
			elems[idx] = e
			order = append(order, idx)
		}
		slot := int(w.Addr-geo.Base) / 4 % ew
		e.golden[slot], e.observed[slot] = w.Golden, w.Observed
		if w.Golden != w.Observed {
			e.corrupt = true
		}
	}
	corrupt := make([]*elemDiff, 0, len(order))
	for _, idx := range order {
		if elems[idx].corrupt {
			corrupt = append(corrupt, elems[idx])
		}
	}
	if len(corrupt) == 0 {
		return Class{}, ErrOutsideOutput
	}

	cls := Class{Spatial: spatialOf(corrupt), Magnitude: Tolerable}
	for _, e := range corrupt {
		if critical(geo.DType, e.golden, e.observed) {
			cls.Magnitude = Critical
			break
		}
	}
	return cls, nil
}

// spatialOf applies the precedence order to the corrupt-element set.
func spatialOf(corrupt []*elemDiff) Spatial {
	if len(corrupt) == 1 {
		return Single
	}
	minR, maxR := corrupt[0].row, corrupt[0].row
	minC, maxC := corrupt[0].col, corrupt[0].col
	for _, e := range corrupt[1:] {
		minR, maxR = min(minR, e.row), max(maxR, e.row)
		minC, maxC = min(minC, e.col), max(maxC, e.col)
	}
	if minR == maxR {
		return SameRow
	}
	if minC == maxC {
		return SameCol
	}
	// Aligned block: the bounding box is fully corrupted and at least
	// 2×2. (A fully covered 1×N or N×1 box was already a row/column.)
	if len(corrupt) == (maxR-minR+1)*(maxC-minC+1) {
		return Block
	}
	return Scattered
}

// critical reports whether one corrupted element's value deviation
// crosses the band edge.
func critical(dt isa.DType, golden, observed [2]uint32) bool {
	switch dt {
	case isa.F16:
		return criticalFloat(float64(isa.F16ToF32(isa.Float16(golden[0]&0xffff))),
			float64(isa.F16ToF32(isa.Float16(observed[0]&0xffff))))
	case isa.F64:
		return criticalFloat(
			math.Float64frombits(uint64(golden[0])|uint64(golden[1])<<32),
			math.Float64frombits(uint64(observed[0])|uint64(observed[1])<<32))
	case isa.F32:
		return criticalFloat(float64(math.Float32frombits(golden[0])),
			float64(math.Float32frombits(observed[0])))
	case isa.I32:
		g, o := float64(int32(golden[0])), float64(int32(observed[0]))
		return math.Abs(o-g) > CriticalRel*math.Max(math.Abs(g), 1)
	default: // U32 and anything unrecognized: raw word distance
		g, o := float64(golden[0]), float64(observed[0])
		return math.Abs(o-g) > CriticalRel*math.Max(math.Abs(g), 1)
	}
}

// criticalFloat applies the band edge to a floating-point element.
func criticalFloat(g, o float64) bool {
	if math.IsNaN(o) || math.IsInf(o, 0) {
		return true
	}
	const eps = 1e-6 // floor for near-zero golden values
	return math.Abs(o-g) > CriticalRel*math.Max(math.Abs(g), eps)
}
