package patterns

import (
	"testing"

	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

func dueOb(m sim.DUEMode) Observation {
	return Observe(kernels.TrialRecord{Outcome: kernels.DUE, DUEMode: m}, nil)
}

// TestDUELedgerCounting drives every mode through Observe+Count and
// checks the bucket math, the untyped-record fallback, and that non-DUE
// outcomes never land in the ledger.
func TestDUELedgerCounting(t *testing.T) {
	var l DUELedger
	l.Count(dueOb(sim.DUEHang))
	l.Count(dueOb(sim.DUEHang))
	l.Count(dueOb(sim.DUEIllegalAddress))
	l.Count(dueOb(sim.DUESyncError))
	l.Count(dueOb(sim.DUEUnattributed))
	// A pre-taxonomy or never-simulated DUE record carries DUENone; the
	// ledger folds it into Unattributed rather than dropping it.
	l.Count(dueOb(sim.DUENone))
	// Masked and SDC observations are outside the taxonomy.
	l.Count(Observe(kernels.TrialRecord{Outcome: kernels.Masked}, nil))
	l.Count(Observe(sdc(f32Word(geoF32(), 0, 0, 1, 2)), geoF32()))

	want := DUELedger{Hang: 2, IllegalAddress: 1, SyncError: 1, Unattributed: 2}
	if l != want {
		t.Fatalf("ledger = %+v, want %+v", l, want)
	}
	if l.DUEs() != 6 {
		t.Fatalf("DUEs() = %d, want 6", l.DUEs())
	}
}

func TestDUELedgerMergeAndMix(t *testing.T) {
	a := DUELedger{Hang: 3, IllegalAddress: 1}
	b := DUELedger{Hang: 1, SyncError: 2, Unattributed: 1}
	a.Merge(b)
	if want := (DUELedger{Hang: 4, IllegalAddress: 1, SyncError: 2, Unattributed: 1}); a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
	m := a.Mix()
	if got := m.Hang + m.IllegalAddress + m.SyncError + m.Unattributed; got < 0.999 || got > 1.001 {
		t.Fatalf("mix does not sum to 1: %+v", m)
	}
	if m.Hang != 0.5 {
		t.Fatalf("Hang share = %v, want 0.5", m.Hang)
	}
	if (DUELedger{}).Mix() != (DUEMix{}) {
		t.Fatal("empty ledger must yield the zero mix")
	}
}
