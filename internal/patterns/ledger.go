package patterns

import (
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// Observation is one trial classified for aggregation: the ternary
// outcome plus, for SDCs, the pattern class and, for DUEs, the typed
// mechanism. Classified is false for SDCs whose diff could not be
// mapped onto an output grid (no declared geometry, corruption outside
// the region, or a synthetic outcome that was never simulated, like an
// ECC-intercepted beam strike).
type Observation struct {
	Outcome    kernels.Outcome
	Class      Class
	Classified bool
	DUEMode    sim.DUEMode
}

// Observe classifies a trial record against an output geometry. Non-SDC
// outcomes and unclassifiable diffs yield Classified=false; DUE
// outcomes carry the record's typed mode through for DUELedger.
func Observe(rec kernels.TrialRecord, geo *kernels.OutputRegion) Observation {
	ob := Observation{Outcome: rec.Outcome, DUEMode: rec.DUEMode}
	if rec.Outcome != kernels.SDC {
		return ob
	}
	cls, err := Classify(rec, geo)
	if err != nil {
		return ob
	}
	ob.Class, ob.Classified = cls, true
	return ob
}

// Ledger aggregates SDC pattern classes over a campaign. The integer
// counters make it byte-stable under JSON round-trips and mergeable
// across shards; every SDC lands in exactly one spatial bucket
// (Unclassified included) and classified SDCs additionally land in one
// magnitude bucket.
type Ledger struct {
	Single    int `json:"single"`
	SameRow   int `json:"same_row"`
	SameCol   int `json:"same_col"`
	Block     int `json:"block"`
	Scattered int `json:"scattered"`

	Critical  int `json:"critical"`
	Tolerable int `json:"tolerable"`

	// Unclassified counts SDCs that carry no classifiable diff.
	Unclassified int `json:"unclassified"`
}

// Count folds one observation into the ledger. Masked/DUE observations
// are ignored — the ledger is an SDC taxonomy, not an outcome tally.
func (l *Ledger) Count(ob Observation) {
	if ob.Outcome != kernels.SDC {
		return
	}
	if !ob.Classified {
		l.Unclassified++
		return
	}
	switch ob.Class.Spatial {
	case Single:
		l.Single++
	case SameRow:
		l.SameRow++
	case SameCol:
		l.SameCol++
	case Block:
		l.Block++
	default:
		l.Scattered++
	}
	if ob.Class.Magnitude == Critical {
		l.Critical++
	} else {
		l.Tolerable++
	}
}

// Merge adds another ledger's counts into l.
func (l *Ledger) Merge(o Ledger) {
	l.Single += o.Single
	l.SameRow += o.SameRow
	l.SameCol += o.SameCol
	l.Block += o.Block
	l.Scattered += o.Scattered
	l.Critical += o.Critical
	l.Tolerable += o.Tolerable
	l.Unclassified += o.Unclassified
}

// SDCs returns the total SDC count the ledger has absorbed.
func (l Ledger) SDCs() int {
	return l.Single + l.SameRow + l.SameCol + l.Block + l.Scattered + l.Unclassified
}

// Mix is a ledger normalized to fractions of SDCs — the form the
// two-level estimator propagates, since dynamically weighted
// combinations of per-site ledgers are no longer integer counts. All
// fields are fractions in [0,1]; the spatial fields (Unclassified
// included) sum to 1 for a non-empty source ledger.
type Mix struct {
	Single    float64 `json:"single"`
	SameRow   float64 `json:"same_row"`
	SameCol   float64 `json:"same_col"`
	Block     float64 `json:"block"`
	Scattered float64 `json:"scattered"`

	Critical  float64 `json:"critical"`
	Tolerable float64 `json:"tolerable"`

	Unclassified float64 `json:"unclassified"`
}

// Mix normalizes the ledger. An empty ledger yields the zero Mix.
func (l Ledger) Mix() Mix {
	n := l.SDCs()
	if n == 0 {
		return Mix{}
	}
	d := float64(n)
	return Mix{
		Single:       float64(l.Single) / d,
		SameRow:      float64(l.SameRow) / d,
		SameCol:      float64(l.SameCol) / d,
		Block:        float64(l.Block) / d,
		Scattered:    float64(l.Scattered) / d,
		Critical:     float64(l.Critical) / d,
		Tolerable:    float64(l.Tolerable) / d,
		Unclassified: float64(l.Unclassified) / d,
	}
}

// AddScaled accumulates w·o into m (the two-level propagation step).
func (m *Mix) AddScaled(o Mix, w float64) {
	m.Single += w * o.Single
	m.SameRow += w * o.SameRow
	m.SameCol += w * o.SameCol
	m.Block += w * o.Block
	m.Scattered += w * o.Scattered
	m.Critical += w * o.Critical
	m.Tolerable += w * o.Tolerable
	m.Unclassified += w * o.Unclassified
}
