package microbench

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

func TestCatalogsGoldenRuns(t *testing.T) {
	for _, dev := range []*device.Device{device.K40c(), device.V100()} {
		for _, m := range Catalog(dev) {
			r, err := kernels.NewRunner(m.Name, m.Build, dev, asm.O2)
			if err != nil {
				t.Fatalf("%s on %s: %v", m.Name, dev.Name, err)
			}
			p := r.GoldenProfiles()[0]
			if p.LaneOps == 0 {
				t.Fatalf("%s: empty profile", m.Name)
			}
		}
	}
}

func TestCatalogSizes(t *testing.T) {
	if n := len(Catalog(device.K40c())); n != 8 {
		t.Fatalf("Kepler catalog has %d micros, want 8 (6 arith + LDST + RF)", n)
	}
	if n := len(Catalog(device.V100())); n != 16 {
		t.Fatalf("Volta catalog has %d micros, want 16", n)
	}
}

func TestArithMicroExercisesItsUnit(t *testing.T) {
	dev := device.V100()
	for _, op := range []isa.Op{isa.OpDFMA, isa.OpHADD, isa.OpIMAD} {
		r, err := kernels.NewRunner(op.String(), ArithBuilder(op), dev, asm.O2)
		if err != nil {
			t.Fatal(err)
		}
		p := r.GoldenProfiles()[0]
		target := p.PerOpLane[op]
		if float64(target) < 0.5*float64(p.LaneOps) {
			t.Errorf("%s micro: only %d/%d lane-ops are %s", op, target, p.LaneOps, op)
		}
	}
}

func TestRFMicroSaturatesRegisterFile(t *testing.T) {
	dev := device.K40c()
	r, err := kernels.NewRunner("RF", RFBuilder(), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	regs := r.Instance().Launches[0].Prog.NumRegs
	if regs < rfRegsUsed {
		t.Fatalf("RF micro uses %d regs, want >= %d", regs, rfRegsUsed)
	}
	// One warp at ~240+ registers should claim nearly the whole scaled RF.
	occ, err := dev.OccupancyFor(32, regs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 1 {
		t.Fatalf("RF micro residency = %d blocks/SM, want 1", occ.BlocksPerSM)
	}
}

func TestUnitForMapping(t *testing.T) {
	if UnitFor(isa.OpFFMA) != "FFMA" || UnitFor(isa.OpLDS) != "LDST" ||
		UnitFor(isa.OpLOP) != "IADD" || UnitFor(isa.OpHMMA) != "HMMA" {
		t.Fatal("UnitFor mapping wrong")
	}
	if UnitFor(isa.OpMOV) != "" || UnitFor(isa.OpBRA) != "" {
		t.Fatal("OTHERS-class ops must map to no micro")
	}
}

func TestMMARejectsKepler(t *testing.T) {
	if _, err := kernels.NewRunner("HMMA", MMABuilder(true), device.K40c(), asm.O2); err == nil {
		t.Fatal("MMA micro must reject Kepler")
	}
}
