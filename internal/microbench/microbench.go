// Package microbench implements the seven classes of synthetic
// micro-benchmarks of §V: RF (register-file storage), LDST (global
// memory movement), and the arithmetic units FMA / ADD / MUL / MAD (plus
// MMA tensor cores on Volta), each in the precisions the device
// supports. Beam campaigns over these micro-benchmarks measure the
// per-unit FIT rates of Figure 3, which the FIT prediction model of §IV
// combines with application AVFs and profiling.
package microbench

import (
	"fmt"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/mem"
	"gpurel/internal/stats"
)

// Micro describes one micro-benchmark.
type Micro struct {
	Name  string
	Op    isa.Op // representative opcode (the unit under test)
	Build kernels.Builder
}

// Catalog returns the device's micro-benchmark set, in Figure-3 order.
func Catalog(dev *device.Device) []Micro {
	if dev.Arch == device.Kepler {
		return []Micro{
			{"FADD", isa.OpFADD, ArithBuilder(isa.OpFADD)},
			{"FMUL", isa.OpFMUL, ArithBuilder(isa.OpFMUL)},
			{"FFMA", isa.OpFFMA, ArithBuilder(isa.OpFFMA)},
			{"IADD", isa.OpIADD, ArithBuilder(isa.OpIADD)},
			{"IMUL", isa.OpIMUL, ArithBuilder(isa.OpIMUL)},
			{"IMAD", isa.OpIMAD, ArithBuilder(isa.OpIMAD)},
			{"LDST", isa.OpLDG, LDSTBuilder()},
			{"RF", isa.OpNOP, RFBuilder()},
		}
	}
	return []Micro{
		{"HADD", isa.OpHADD, ArithBuilder(isa.OpHADD)},
		{"HMUL", isa.OpHMUL, ArithBuilder(isa.OpHMUL)},
		{"HFMA", isa.OpHFMA, ArithBuilder(isa.OpHFMA)},
		{"FADD", isa.OpFADD, ArithBuilder(isa.OpFADD)},
		{"FMUL", isa.OpFMUL, ArithBuilder(isa.OpFMUL)},
		{"FFMA", isa.OpFFMA, ArithBuilder(isa.OpFFMA)},
		{"DADD", isa.OpDADD, ArithBuilder(isa.OpDADD)},
		{"DMUL", isa.OpDMUL, ArithBuilder(isa.OpDMUL)},
		{"DFMA", isa.OpDFMA, ArithBuilder(isa.OpDFMA)},
		{"IADD", isa.OpIADD, ArithBuilder(isa.OpIADD)},
		{"IMUL", isa.OpIMUL, ArithBuilder(isa.OpIMUL)},
		{"IMAD", isa.OpIMAD, ArithBuilder(isa.OpIMAD)},
		{"HMMA", isa.OpHMMA, MMABuilder(true)},
		{"FMMA", isa.OpFMMA, MMABuilder(false)},
		{"LDST", isa.OpLDG, LDSTBuilder()},
		{"RF", isa.OpNOP, RFBuilder()},
	}
}

// UnitFor maps an application opcode to the micro-benchmark that
// measured its functional unit, or "" when the unit was not
// characterized (the OTHERS class the prediction cannot cover, §VII-A).
func UnitFor(op isa.Op) string {
	switch op {
	case isa.OpFADD:
		return "FADD"
	case isa.OpFMUL:
		return "FMUL"
	case isa.OpFFMA:
		return "FFMA"
	case isa.OpHADD:
		return "HADD"
	case isa.OpHMUL:
		return "HMUL"
	case isa.OpHFMA:
		return "HFMA"
	case isa.OpDADD:
		return "DADD"
	case isa.OpDMUL:
		return "DMUL"
	case isa.OpDFMA:
		return "DFMA"
	case isa.OpIADD, isa.OpLOP, isa.OpSHF, isa.OpIMNMX, isa.OpISETP:
		return "IADD" // simple integer ops share the IADD-class datapath
	case isa.OpIMUL:
		return "IMUL"
	case isa.OpIMAD:
		return "IMAD"
	case isa.OpHMMA:
		return "HMMA"
	case isa.OpFMMA:
		return "FMMA"
	case isa.OpLDG, isa.OpSTG, isa.OpLDS, isa.OpSTS, isa.OpRED:
		return "LDST"
	default:
		return ""
	}
}

const (
	arithBlocks  = 32
	arithThreads = 64
	arithTrip    = 48 // loop iterations; 4 operations per iteration
)

// ArithBuilder builds the FMA/ADD/MUL/MAD micro-benchmark for one
// opcode: every thread streams operations through four independent
// accumulators to saturate its functional unit, then stores the
// accumulators for the host check. Inputs are chosen to avoid overflow
// (§V-A).
func ArithBuilder(op isa.Op) kernels.Builder {
	return func(dev *device.Device, opt asm.OptLevel) (*kernels.Instance, error) {
		return buildArith(dev, opt, op)
	}
}

func buildArith(dev *device.Device, opt asm.OptLevel, op isa.Op) (*kernels.Instance, error) {
	dt := op.TypeOf()
	if dt == isa.F16 && !dev.HasFP16 {
		return nil, fmt.Errorf("microbench: %s requires FP16 units", op)
	}
	// Integer micro-benchmarks use the 32-bit container element.
	et := dt
	if dt == isa.I32 || dt == isa.U32 {
		et = isa.F32
	}
	e := kernels.ElemFor(et)
	g := mem.NewGlobal(1 << 22)
	n := arithBlocks * arithThreads
	es := int(e.Size())
	xBase, err := g.Alloc(n * es)
	if err != nil {
		return nil, err
	}
	yBase, _ := g.Alloc(n * es)
	outBase, _ := g.Alloc(n * 4 * es)

	r := stats.NewRNG(0x5eed, uint64(op))
	isInt := dt == isa.I32 || dt == isa.U32
	X := make([]uint64, n)
	Y := make([]uint64, n)
	for i := range X {
		if isInt {
			// Odd multiplicands: odd values are invertible mod 2^32, so a
			// corrupted accumulator never collapses to zero and the
			// integer micro-benchmarks keep their AVF ~ 1.0 (§V-A).
			X[i] = uint64(r.Uint32()&0xffff | 1)
			Y[i] = uint64(r.Uint32()&0xff | 1)
		} else {
			// Multiplicands hug 1.0 so long product chains stay finite.
			X[i] = e.EncodeFloat(1 + (r.Float64()-0.5)*1e-3)
			Y[i] = e.EncodeFloat((r.Float64() - 0.5) * 1e-3)
		}
	}
	for i := range X {
		e.StoreRaw(g, xBase+uint32(i*es), X[i])
		e.StoreRaw(g, yBase+uint32(i*es), Y[i])
	}

	// Host mirror of the accumulator streams.
	want := make([]uint64, n*4)
	for t := 0; t < n; t++ {
		accs := hostArithRun(e, op, X[t], Y[t])
		copy(want[t*4:], accs[:])
	}

	prog, err := buildArithKernel(opt, e, op, xBase, yBase, outBase)
	if err != nil {
		return nil, err
	}
	return &kernels.Instance{
		Name:   op.String(),
		Dev:    dev,
		Global: g,
		Launches: []kernels.Launch{{
			Prog: prog, GridX: arithBlocks, GridY: 1, BlockThreads: arithThreads,
		}},
		Check: func(gm *mem.Global) bool {
			for i, w := range want {
				if e.LoadRaw(gm, outBase+uint32(i*es)) != w {
					return false
				}
			}
			return true
		},
	}, nil
}

// hostArithRun mirrors one thread's accumulator streams bit-exactly.
func hostArithRun(e kernels.Elem, op isa.Op, x, y uint64) [4]uint64 {
	var accs [4]uint64
	if op.TypeOf() == isa.I32 || op.TypeOf() == isa.U32 {
		xi, yi := int32(uint32(x)), int32(uint32(y))
		for j := 0; j < 4; j++ {
			var acc int32
			if op == isa.OpIMUL {
				acc = 1
			}
			for it := 0; it < arithTrip; it++ {
				switch op {
				case isa.OpIADD:
					acc += xi
				case isa.OpIMUL:
					acc *= xi
				case isa.OpIMAD:
					acc = xi*yi + acc
				}
			}
			accs[j] = uint64(uint32(acc))
		}
		return accs
	}
	xv := e.DecodeFloat(x)
	yv := e.DecodeFloat(y)
	for j := 0; j < 4; j++ {
		acc := e.DecodeFloat(e.EncodeFloat(0))
		if op == isa.OpFMUL || op == isa.OpDMUL || op == isa.OpHMUL {
			acc = e.DecodeFloat(e.EncodeFloat(1))
		}
		for it := 0; it < arithTrip; it++ {
			switch op {
			case isa.OpFADD, isa.OpDADD, isa.OpHADD:
				acc = e.HostAdd(acc, yv)
			case isa.OpFMUL, isa.OpDMUL, isa.OpHMUL:
				acc = e.HostMul(acc, xv)
			case isa.OpFFMA, isa.OpDFMA, isa.OpHFMA:
				acc = e.HostFMA(xv, yv, acc)
			}
		}
		accs[j] = e.EncodeFloat(acc)
	}
	return accs
}

func buildArithKernel(opt asm.OptLevel, e kernels.Elem, op isa.Op, xBase, yBase, outBase uint32) (*isa.Program, error) {
	b := asm.New("micro_"+op.String(), opt)
	es := int32(e.Size())
	gid := kernels.EmitGID(b)
	xAddr := kernels.EmitAddr(b, gid, xBase, es)
	yAddr := kernels.EmitAddr(b, gid, yBase, es)
	x := e.Val(b)
	y := e.Val(b)
	e.Load(b, x, xAddr, 0)
	e.Load(b, y, yAddr, 0)

	isInt := op.TypeOf() == isa.I32 || op.TypeOf() == isa.U32
	isMul := op == isa.OpFMUL || op == isa.OpDMUL || op == isa.OpHMUL || op == isa.OpIMUL
	var accs [4]isa.Reg
	for j := range accs {
		accs[j] = e.Val(b)
		switch {
		case isInt && isMul:
			b.MovImm(accs[j], 1)
		case isInt:
			b.MovImm(accs[j], 0)
		case isMul:
			e.Imm(b, accs[j], 1)
		default:
			e.Imm(b, accs[j], 0)
		}
	}

	k := b.R()
	b.ForCounter(k, 0, arithTrip, asm.LoopOpts{Unroll: 4}, func() {
		for j := 0; j < 4; j++ {
			switch op {
			case isa.OpFADD, isa.OpDADD, isa.OpHADD:
				e.Add(b, accs[j], accs[j], y)
			case isa.OpFMUL, isa.OpDMUL, isa.OpHMUL:
				e.Mul(b, accs[j], accs[j], x)
			case isa.OpFFMA, isa.OpDFMA, isa.OpHFMA:
				e.FMA(b, accs[j], x, y, accs[j])
			case isa.OpIADD:
				b.IAdd(accs[j], isa.R(accs[j]), isa.R(x))
			case isa.OpIMUL:
				b.IMul(accs[j], isa.R(accs[j]), isa.R(x))
			case isa.OpIMAD:
				b.IMad(accs[j], isa.R(x), isa.R(y), isa.R(accs[j]))
			}
		}
	})

	oAddr := kernels.EmitAddr(b, gid, outBase, 4*es)
	for j := 0; j < 4; j++ {
		e.Store(b, oAddr, uint32(int32(j)*es), accs[j])
	}
	b.Exit()
	return b.Build()
}
