package microbench

import (
	"fmt"
	"math"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/mem"
	"gpurel/internal/stats"
)

// LDSTBuilder builds the LDST micro-benchmark of §V-A: every thread
// performs a sequence of global-memory movements (load followed by
// store) over a uniquely patterned region; the host verifies the copied
// pattern. Its failures are dominated by corrupted addresses, which is
// why the paper measures a DUE rate ~7x its SDC rate.
func LDSTBuilder() kernels.Builder {
	return buildLDST
}

const (
	ldstBlocks  = 32
	ldstThreads = 64
	ldstMoves   = 32
	ldstGroup   = 8 // moves per address update: the loop is all LDG/STG
)

func buildLDST(dev *device.Device, opt asm.OptLevel) (*kernels.Instance, error) {
	n := ldstBlocks * ldstThreads * ldstMoves
	g := mem.NewGlobal(1 << 23)
	srcBase, err := g.Alloc(n * 4)
	if err != nil {
		return nil, err
	}
	dstBase, _ := g.Alloc(n * 4)
	r := stats.NewRNG(0x1d57, 1)
	want := make([]uint32, n)
	for i := range want {
		want[i] = r.Uint32()
		g.SetWord(srcBase+uint32(i*4), want[i])
	}

	b := asm.New("micro_LDST", opt)
	gid := kernels.EmitGID(b)
	// Thread t copies elements [t*moves, (t+1)*moves), eight moves per
	// address update so the dynamic stream is dominated by LDG/STG and
	// the micro-benchmark measures the LDST unit, not loop overhead.
	src := b.R()
	dst := b.R()
	b.IMul(src, isa.R(gid), isa.ImmInt(ldstMoves*4))
	b.IAdd(dst, isa.R(src), isa.ImmInt(int32(dstBase)))
	b.IAdd(src, isa.R(src), isa.ImmInt(int32(srcBase)))
	v := b.R()
	i := b.R()
	b.ForCounter(i, 0, ldstMoves/ldstGroup, asm.LoopOpts{}, func() {
		for m := 0; m < ldstGroup; m++ {
			b.Ldg(v, src, uint32(m*4))
			b.Stg(dst, uint32(m*4), v)
		}
		b.IAdd(src, isa.R(src), isa.ImmInt(ldstGroup*4))
		b.IAdd(dst, isa.R(dst), isa.ImmInt(ldstGroup*4))
	})
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &kernels.Instance{
		Name:   "LDST",
		Dev:    dev,
		Global: g,
		Launches: []kernels.Launch{{
			Prog: prog, GridX: ldstBlocks, GridY: 1, BlockThreads: ldstThreads,
		}},
		Check: func(gm *mem.Global) bool {
			for i, w := range want {
				if gm.Word(dstBase+uint32(i*4)) != w {
					return false
				}
			}
			return true
		},
	}, nil
}

// RFBuilder builds the register-file micro-benchmark of §V-A: each
// thread fills every register it can claim with a known pattern, idles
// through an exposure window, folds the registers into a checksum, and
// stores it. The launch uses the smallest thread count that saturates
// the register file (one 32-thread warp per SM at 240 registers each).
func RFBuilder() kernels.Builder {
	return buildRF
}

const (
	rfRegsUsed = 240
	rfExposure = 400 // idle-loop iterations between write and read-back
)

func buildRF(dev *device.Device, opt asm.OptLevel) (*kernels.Instance, error) {
	g := mem.NewGlobal(1 << 22)
	blocks := dev.NumSMs
	threads := 32
	outBase, err := g.Alloc(blocks * threads * 4)
	if err != nil {
		return nil, err
	}

	pattern := func(i int) uint32 { return 0xa5a50000 ^ uint32(i*0x9e37) }
	var checksum uint32
	for i := 0; i < rfRegsUsed; i++ {
		checksum ^= pattern(i)
	}

	b := asm.New("micro_RF", opt)
	gid := kernels.EmitGID(b)
	var regs []isa.Reg
	for i := 0; i < rfRegsUsed; i++ {
		r := b.R()
		b.MovImm(r, pattern(i))
		regs = append(regs, r)
	}
	// Exposure window: an idle loop long enough that the write/read-back
	// time is negligible next to it (§V-A).
	cnt := b.R()
	b.ForCounter(cnt, 0, rfExposure, asm.LoopOpts{}, func() {
		b.Nop()
	})
	sum := b.R()
	b.MovImm(sum, 0)
	for _, r := range regs {
		b.Xor(sum, isa.R(sum), isa.R(r))
	}
	oAddr := kernels.EmitAddr(b, gid, outBase, 4)
	b.Stg(oAddr, 0, sum)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	if prog.NumRegs < rfRegsUsed {
		return nil, fmt.Errorf("microbench: RF kernel uses %d registers, want >= %d", prog.NumRegs, rfRegsUsed)
	}
	total := blocks * threads
	return &kernels.Instance{
		Name:   "RF",
		Dev:    dev,
		Global: g,
		Launches: []kernels.Launch{{
			Prog: prog, GridX: blocks, GridY: 1, BlockThreads: threads,
		}},
		Check: func(gm *mem.Global) bool {
			for i := 0; i < total; i++ {
				if gm.Word(outBase+uint32(i*4)) != checksum {
					return false
				}
			}
			return true
		},
	}, nil
}

// MMABuilder builds the tensor-core micro-benchmark: each warp chains
// matrix-multiply-accumulate operations over register fragments (HMMA:
// FP16 inputs; FMMA: FP32 inputs cast on the core), then stores the
// accumulator fragments.
func MMABuilder(half bool) kernels.Builder {
	return func(dev *device.Device, opt asm.OptLevel) (*kernels.Instance, error) {
		return buildMMAMicro(dev, opt, half)
	}
}

const (
	mmaBlocks = 32
	mmaChain  = 24
)

func buildMMAMicro(dev *device.Device, opt asm.OptLevel, half bool) (*kernels.Instance, error) {
	if !dev.HasTensor {
		return nil, fmt.Errorf("microbench: %s has no tensor cores", dev.Name)
	}
	g := mem.NewGlobal(1 << 22)
	fragRegs := 4
	if !half {
		fragRegs = 8
	}
	// One shared A/B fragment set, loaded by every warp.
	abBase, err := g.Alloc(32 * fragRegs * 4 * 2)
	if err != nil {
		return nil, err
	}
	outBase, _ := g.Alloc(mmaBlocks * 32 * 8 * 4)

	r := stats.NewRNG(0x3a3a, 5)
	// A and B matrices, f16-exact values small enough that a chain of
	// accumulations stays finite.
	var A, B [16][16]float32
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			A[i][j] = float32(isa.F16ToF32(isa.F32ToF16(float32(r.Float64()*0.25 - 0.125))))
			B[i][j] = float32(isa.F16ToF32(isa.F32ToF16(float32(r.Float64()*0.25 - 0.125))))
		}
	}
	// Device layout: lane L holds row L/2, cols (L%2)*8..+7.
	packHalf := func(m *[16][16]float32, lane, slot int) uint32 {
		row, col0 := lane/2, (lane%2)*8
		lo := isa.F32ToF16(m[row][col0+2*slot])
		hi := isa.F32ToF16(m[row][col0+2*slot+1])
		return uint32(lo) | uint32(hi)<<16
	}
	packFloat := func(m *[16][16]float32, lane, slot int) uint32 {
		row, col0 := lane/2, (lane%2)*8
		return math.Float32bits(m[row][col0+slot])
	}
	for lane := 0; lane < 32; lane++ {
		for s := 0; s < fragRegs; s++ {
			var aw, bw uint32
			if half {
				aw, bw = packHalf(&A, lane, s), packHalf(&B, lane, s)
			} else {
				aw, bw = packFloat(&A, lane, s), packFloat(&B, lane, s)
			}
			g.SetWord(abBase+uint32((lane*fragRegs+s)*4), aw)
			g.SetWord(abBase+uint32((32*fragRegs+lane*fragRegs+s)*4), bw)
		}
	}

	// Host mirror: D = 0; repeat chain times: D = A*B + D (fp32 adds in
	// ascending k within each MMA).
	var D [16][16]float32
	for c := 0; c < mmaChain; c++ {
		var next [16][16]float32
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				acc := D[i][j]
				for k := 0; k < 16; k++ {
					acc += A[i][k] * B[k][j]
				}
				next[i][j] = acc
			}
		}
		D = next
	}
	want := make([]uint32, 32*8)
	for lane := 0; lane < 32; lane++ {
		row, col0 := lane/2, (lane%2)*8
		for s := 0; s < 8; s++ {
			want[lane*8+s] = math.Float32bits(D[row][col0+s])
		}
	}

	name := "HMMA"
	if !half {
		name = "FMMA"
	}
	b := asm.New("micro_"+name, opt)
	lane := b.R()
	blk := b.R()
	b.S2R(lane, isa.SrLaneID)
	b.S2R(blk, isa.SrCtaidX)
	aF := b.RVec(fragRegs, 4)
	bF := b.RVec(fragRegs, 4)
	cF := b.RVec(8, 8)
	addr := b.R()
	b.IMad(addr, isa.R(lane), isa.ImmInt(int32(fragRegs)*4), isa.ImmInt(int32(abBase)))
	for s := 0; s < fragRegs; s++ {
		b.Ldg(aF+isa.Reg(s), addr, uint32(s*4))
	}
	b.IAdd(addr, isa.R(addr), isa.ImmInt(int32(32*fragRegs)*4))
	for s := 0; s < fragRegs; s++ {
		b.Ldg(bF+isa.Reg(s), addr, uint32(s*4))
	}
	for i := 0; i < 8; i++ {
		b.MovImmF32(cF+isa.Reg(i), 0)
	}
	k := b.R()
	b.ForCounter(k, 0, mmaChain, asm.LoopOpts{}, func() {
		if half {
			b.HMMA(cF, aF, bF, cF)
		} else {
			b.FMMA(cF, aF, bF, cF)
		}
	})
	out := b.R()
	b.IMad(out, isa.R(blk), isa.ImmInt(32*8*4), isa.ImmInt(int32(outBase)))
	b.IMad(out, isa.R(lane), isa.ImmInt(8*4), isa.R(out))
	for s := 0; s < 8; s++ {
		b.Stg(out, uint32(s*4), cF+isa.Reg(s))
	}
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &kernels.Instance{
		Name:   name,
		Dev:    dev,
		Global: g,
		Launches: []kernels.Launch{{
			Prog: prog, GridX: mmaBlocks, GridY: 1, BlockThreads: 32,
		}},
		Check: func(gm *mem.Global) bool {
			for blk := 0; blk < mmaBlocks; blk++ {
				base := outBase + uint32(blk*32*8*4)
				for i, w := range want {
					if gm.Word(base+uint32(i*4)) != w {
						return false
					}
				}
			}
			return true
		},
	}, nil
}
