package mem

import "testing"

func buildTestGlobal(t *testing.T) (*Global, uint32) {
	t.Helper()
	g := NewGlobal(1 << 16)
	base, err := g.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		g.SetWord(base+uint32(i*4), uint32(i)*0x9e3779b9)
	}
	return g, base
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	g, base := buildTestGlobal(t)
	snap := g.Snapshot()
	if !g.EqualSnapshot(snap) {
		t.Fatal("global does not equal its own snapshot")
	}

	// Corrupt state, then restore.
	g.FlipBit(12345)
	if err := g.Store32(base+40, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if g.EqualSnapshot(snap) {
		t.Fatal("corrupted global still equals snapshot")
	}
	g.Restore(snap)
	if !g.EqualSnapshot(snap) {
		t.Fatal("restore did not rewind the corruption")
	}
	for i := 0; i < 1024; i++ {
		if got := g.Word(base + uint32(i*4)); got != uint32(i)*0x9e3779b9 {
			t.Fatalf("word %d = %#x after restore", i, got)
		}
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	g, base := buildTestGlobal(t)
	snap := g.Snapshot()
	want := g.Word(base)
	g.SetWord(base, ^want)
	g2 := NewGlobal(g.CapacityBytes())
	g2.Restore(snap)
	if got := g2.Word(base); got != want {
		t.Fatalf("snapshot changed with its source: got %#x want %#x", got, want)
	}
}

func TestRestoreRewindsAllocator(t *testing.T) {
	g, _ := buildTestGlobal(t)
	snap := g.Snapshot()
	allocated := g.AllocatedBytes()
	if _, err := g.Alloc(512); err != nil {
		t.Fatal(err)
	}
	g.Restore(snap)
	if g.AllocatedBytes() != allocated {
		t.Fatalf("restore left %d allocated bytes, want %d", g.AllocatedBytes(), allocated)
	}
	// The invariant words-above-hwm-are-zero must survive a shrinking
	// restore, or a later Alloc would hand out dirty memory.
	base, err := g.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if got := g.Word(base + uint32(i*4)); got != 0 {
			t.Fatalf("fresh allocation word %d = %#x, want 0", i, got)
		}
	}
}

func TestEqualSnapshotFindsSingleBitDiff(t *testing.T) {
	g, _ := buildTestGlobal(t)
	snap := g.Snapshot()
	total := uint64(g.AllocatedBytes()) * 8
	// Probe bits across the region, including the unrolled-loop tail.
	for _, bit := range []uint64{0, 1, 31, 32, 255, 256*8 + 3, total - 1} {
		g.FlipBit(bit)
		if g.EqualSnapshot(snap) {
			t.Fatalf("EqualSnapshot missed flipped bit %d", bit)
		}
		g.FlipBit(bit)
		if !g.EqualSnapshot(snap) {
			t.Fatalf("double flip of bit %d is not the identity", bit)
		}
	}
}

func TestPoolRecyclesMatchingCapacity(t *testing.T) {
	p := NewPool(1 << 16)
	g := p.Get()
	if g.CapacityBytes() != 1<<16 {
		t.Fatalf("pool Global capacity = %d", g.CapacityBytes())
	}
	if _, err := g.Alloc(128); err != nil {
		t.Fatal(err)
	}
	p.Put(g)
	// A foreign-capacity Global must be rejected, not poison the pool.
	p.Put(NewGlobal(1 << 10))
	g2 := p.Get()
	if g2.CapacityBytes() != 1<<16 {
		t.Fatalf("recycled Global capacity = %d", g2.CapacityBytes())
	}
}
