// Snapshot support for checkpointed execution: a Snapshot is an
// immutable copy of the allocated region of a Global, cheap to restore
// and to compare against. The fault-injection runner records one
// snapshot per launch boundary of the golden run, restores the
// pre-launch snapshot instead of re-simulating earlier launches, and
// uses the post-launch comparison to detect architecturally masked
// faults without replaying the rest of the program.
package mem

import "sync"

// Snapshot is a frozen copy of the allocated region of a Global. It is
// safe for concurrent use once created.
type Snapshot struct {
	words    []uint32 // copy of the allocated words (including the null guard)
	hwm      uint32   // allocation high-water mark at capture time, bytes
	capacity int      // capacity of the source Global, bytes
}

// CapacityBytes returns the total capacity of the Global in bytes.
func (g *Global) CapacityBytes() int { return len(g.words) * 4 }

// SizeBytes returns the snapshot's retained memory, the term a cache
// holding many runners' snapshots budgets against.
func (s *Snapshot) SizeBytes() int { return len(s.words) * 4 }

// Word returns the snapshot word at byte address addr. The address must
// lie below the snapshot's allocation high-water mark; like Global.Word
// it is a trusted accessor for diffing, not a bounds-checked load.
func (s *Snapshot) Word(addr uint32) uint32 { return s.words[addr/4] }

// AllocatedBytes returns the allocation high-water mark captured with
// the snapshot — the extent of the region Word may address.
func (s *Snapshot) AllocatedBytes() int { return int(s.hwm) }

// Snapshot captures the allocated region (null guard included, so word
// indices line up) and the allocator state.
func (g *Global) Snapshot() *Snapshot {
	n := int(g.hwm) / 4
	s := &Snapshot{
		words:    make([]uint32, n),
		hwm:      g.hwm,
		capacity: g.CapacityBytes(),
	}
	copy(s.words, g.words[:n])
	return s
}

// Restore rewinds the Global to the snapshot's state. The Global must
// have at least the snapshot's allocated capacity; words beyond the
// restored high-water mark are untouched (kernel stores are bounds-
// checked against hwm, so they are never dirtied by a simulation).
func (g *Global) Restore(s *Snapshot) {
	copy(g.words[:len(s.words)], s.words)
	if g.hwm > s.hwm {
		// Shrinking restore: re-zero the region the previous state had
		// allocated beyond the snapshot, keeping the invariant that
		// words above hwm are zero.
		for i := len(s.words); i < int(g.hwm)/4; i++ {
			g.words[i] = 0
		}
	}
	g.hwm = s.hwm
}

// EqualSnapshot reports whether the allocated region is bit-identical
// to the snapshot. The word-granular compare is the masked-fault test
// of the checkpointed runner: equality at a launch boundary means the
// remaining launches would replay the golden execution exactly.
func (g *Global) EqualSnapshot(s *Snapshot) bool {
	if g.hwm != s.hwm {
		return false
	}
	w := g.words[:len(s.words)]
	// Compare eight words at a time; campaigns spend a measurable share
	// of their time in this diff, and the unrolled loop lets the
	// compiler keep the bounds checks out of the hot path.
	i := 0
	for ; i+8 <= len(w); i += 8 {
		a, b := w[i:i+8], s.words[i:i+8]
		if a[0] != b[0] || a[1] != b[1] || a[2] != b[2] || a[3] != b[3] ||
			a[4] != b[4] || a[5] != b[5] || a[6] != b[6] || a[7] != b[7] {
			return false
		}
	}
	for ; i < len(w); i++ {
		if w[i] != s.words[i] {
			return false
		}
	}
	return true
}

// Pool recycles Global instances of one capacity so that per-fault
// setup does not allocate (and zero) the whole device memory. Pooled
// instances keep the invariant that words above hwm are zero.
type Pool struct {
	capacity int
	p        sync.Pool
}

// NewPool creates a pool of Globals with the given capacity in bytes.
func NewPool(capacity int) *Pool {
	pl := &Pool{capacity: capacity}
	pl.p.New = func() any { return NewGlobal(pl.capacity) }
	return pl
}

// Get returns a Global from the pool (or a fresh one). Its contents are
// unspecified below its hwm; restore a Snapshot before use.
func (p *Pool) Get() *Global { return p.p.Get().(*Global) }

// Put returns a Global to the pool. Only Globals obtained from Get (or
// with the pool's capacity) may be returned.
func (p *Pool) Put(g *Global) {
	if g == nil || g.CapacityBytes() != p.capacity {
		return
	}
	p.p.Put(g)
}
