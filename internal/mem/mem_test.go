package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocAndAccess(t *testing.T) {
	g := NewGlobal(1 << 16)
	a, err := g.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if a < nullGuard {
		t.Fatalf("allocation landed in the null guard: 0x%x", a)
	}
	if err := g.Store32(a, 0xcafebabe); err != nil {
		t.Fatal(err)
	}
	v, err := g.Load32(a)
	if err != nil || v != 0xcafebabe {
		t.Fatalf("load = 0x%x, %v", v, err)
	}
}

func TestAllocAlignment(t *testing.T) {
	g := NewGlobal(1 << 16)
	a1, _ := g.Alloc(5)
	a2, _ := g.Alloc(4)
	if a1%8 != 0 || a2%8 != 0 {
		t.Fatalf("allocations not 8-byte aligned: 0x%x 0x%x", a1, a2)
	}
	if a2-a1 != 8 {
		t.Fatalf("5-byte alloc should occupy 8 bytes, got %d", a2-a1)
	}
}

func TestNullAndOOBFault(t *testing.T) {
	g := NewGlobal(1 << 16)
	a, _ := g.Alloc(16)
	var ae *AccessError

	if _, err := g.Load32(0); !errors.As(err, &ae) || ae.Kind != "null" {
		t.Errorf("null load: %v", err)
	}
	if _, err := g.Load32(a + 1<<20); !errors.As(err, &ae) || ae.Kind != "out of bounds" {
		t.Errorf("oob load: %v", err)
	}
	if err := g.Store32(a+2, 1); !errors.As(err, &ae) || ae.Kind != "unaligned" {
		t.Errorf("unaligned store: %v", err)
	}
	if _, _, err := g.Load64(a + 4); !errors.As(err, &ae) || ae.Kind != "unaligned" {
		t.Errorf("unaligned load64 (8-byte alignment required): %v", err)
	}
}

func TestAccessJustPastHWMFaults(t *testing.T) {
	g := NewGlobal(1 << 16)
	a, _ := g.Alloc(16)
	if _, err := g.Load32(a + 12); err != nil {
		t.Fatalf("last word should be readable: %v", err)
	}
	if _, err := g.Load32(a + 16); err == nil {
		t.Fatal("first word past the allocation must fault")
	}
}

func TestLoad64Store64RoundTrip(t *testing.T) {
	g := NewGlobal(1 << 16)
	a, _ := g.Alloc(32)
	if err := g.Store64(a+8, 0x11111111, 0x22222222); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := g.Load64(a + 8)
	if err != nil || lo != 0x11111111 || hi != 0x22222222 {
		t.Fatalf("load64 = %x,%x,%v", lo, hi, err)
	}
}

func TestAtomicAdd(t *testing.T) {
	g := NewGlobal(1 << 16)
	a, _ := g.Alloc(8)
	g.SetWord(a, 5)
	old, err := g.AtomicAdd32(a, 3)
	if err != nil || old != 5 {
		t.Fatalf("atomic add old = %d, %v", old, err)
	}
	if v, _ := g.Load32(a); v != 8 {
		t.Fatalf("after atomic add: %d", v)
	}
}

func TestFlipBitStaysInAllocation(t *testing.T) {
	g := NewGlobal(1 << 16)
	a, _ := g.Alloc(8)
	before := g.ReadWords(a, 2)
	g.FlipBit(0)
	after := g.ReadWords(a, 2)
	diff := (before[0] ^ after[0]) | (before[1] ^ after[1])
	if popcount(diff) != 1 {
		t.Fatalf("FlipBit must flip exactly one allocated bit, diff=%x", diff)
	}
	// Bit index far beyond the allocation wraps instead of escaping.
	g.FlipBit(1 << 40)
	if g.AllocatedBytes() != 8 {
		t.Fatal("allocation bookkeeping corrupted")
	}
}

func TestFlipBitRoundTrips(t *testing.T) {
	f := func(bit uint16) bool {
		g := NewGlobal(1 << 16)
		a, _ := g.Alloc(256)
		g.FlipBit(uint64(bit) % 2048)
		g.FlipBit(uint64(bit) % 2048)
		for i, w := range g.ReadWords(a, 64) {
			if w != 0 {
				t.Logf("word %d nonzero after double flip", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	g := NewGlobal(1 << 16)
	a, _ := g.Alloc(16)
	g.SetWord(a, 7)
	g.Reset()
	if g.AllocatedBytes() != 0 {
		t.Fatal("reset should drop allocations")
	}
	b, _ := g.Alloc(16)
	if v := g.Word(b); v != 0 {
		t.Fatalf("memory not zeroed after reset: %d", v)
	}
}

func TestOutOfMemory(t *testing.T) {
	g := NewGlobal(1024)
	if _, err := g.Alloc(1 << 20); err == nil {
		t.Fatal("huge allocation should fail")
	}
	if _, err := g.Alloc(0); err == nil {
		t.Fatal("zero-size allocation should fail")
	}
}

func TestSharedMemory(t *testing.T) {
	s := NewShared(1024)
	if s.Size() != 1024 {
		t.Fatalf("size = %d", s.Size())
	}
	if err := s.Store32(100, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Load32(100); v != 42 {
		t.Fatalf("load = %d", v)
	}
	if _, err := s.Load32(1024); err == nil {
		t.Fatal("oob shared load must fault")
	}
	if err := s.Store32(2, 1); err == nil {
		t.Fatal("unaligned shared store must fault")
	}
	if err := s.Store64(8, 1, 2); err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := s.Load64(8)
	if lo != 1 || hi != 2 {
		t.Fatal("shared 64-bit round trip failed")
	}
}

func TestSharedFlipBit(t *testing.T) {
	s := NewShared(64)
	s.FlipBit(37)
	v, _ := s.Load32(4)
	if v != 1<<5 {
		t.Fatalf("bit 37 should be word 1 bit 5, got %x", v)
	}
	// Zero-size region: no-op, no panic.
	NewShared(0).FlipBit(3)
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
