// Package mem provides the addressable storage of the simulated GPU:
// global (device) memory with a bump allocator, per-block shared memory,
// and helpers shared with the per-thread register file. All storage is
// word-granular (32-bit), matching the ISA's access widths; 64-bit
// accesses use aligned word pairs.
//
// Every access is bounds- and alignment-checked: a corrupted address that
// escapes the allocated region raises an AccessError, the architectural
// origin of most detected unrecoverable errors (DUEs) in the LDST
// micro-benchmark (§V-B).
package mem

import (
	"fmt"
)

// AccessError reports an invalid memory access. The simulator converts it
// into a DUE, like the CUDA runtime converting an illegal address into an
// API error.
type AccessError struct {
	Space string
	Addr  uint32
	Kind  string // "out of bounds", "unaligned", "null"
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: %s access at %s address 0x%x", e.Kind, e.Space, e.Addr)
}

// nullGuard reserves the first bytes of global memory so that address 0
// (and small offsets from it) always fault, like a null page.
const nullGuard = 256

// Global is the device memory of one simulated GPU context.
type Global struct {
	words []uint32
	hwm   uint32 // allocation high-water mark, bytes
}

// NewGlobal creates a device memory of the given capacity in bytes
// (rounded down to a word multiple).
func NewGlobal(capacity int) *Global {
	if capacity < nullGuard*2 {
		capacity = nullGuard * 2
	}
	return &Global{
		words: make([]uint32, capacity/4),
		hwm:   nullGuard,
	}
}

// Alloc reserves size bytes (rounded up to 8-byte alignment) and returns
// the base address.
func (g *Global) Alloc(size int) (uint32, error) {
	if size <= 0 {
		return 0, fmt.Errorf("mem: invalid allocation size %d", size)
	}
	aligned := (size + 7) &^ 7
	base := g.hwm
	if int(base)+aligned > len(g.words)*4 {
		return 0, fmt.Errorf("mem: out of device memory (%d bytes requested, %d free)",
			aligned, len(g.words)*4-int(base))
	}
	g.hwm += uint32(aligned)
	return base, nil
}

// AllocatedBytes returns the bytes currently reserved (excluding the null
// guard); this is the storage surface the beam campaign exposes.
func (g *Global) AllocatedBytes() int { return int(g.hwm) - nullGuard }

// Reset drops all allocations and zeroes the allocated region, returning
// the context to its post-boot state.
func (g *Global) Reset() {
	for i := 0; i < int(g.hwm)/4; i++ {
		g.words[i] = 0
	}
	g.hwm = nullGuard
}

func (g *Global) check(addr uint32, bytes uint32) error {
	if addr%bytes != 0 {
		return &AccessError{Space: "global", Addr: addr, Kind: "unaligned"}
	}
	if addr < nullGuard {
		return &AccessError{Space: "global", Addr: addr, Kind: "null"}
	}
	if addr+bytes > g.hwm || addr+bytes < addr {
		return &AccessError{Space: "global", Addr: addr, Kind: "out of bounds"}
	}
	return nil
}

// Load32 reads a 32-bit word.
func (g *Global) Load32(addr uint32) (uint32, error) {
	if err := g.check(addr, 4); err != nil {
		return 0, err
	}
	return g.words[addr/4], nil
}

// Store32 writes a 32-bit word.
func (g *Global) Store32(addr uint32, v uint32) error {
	if err := g.check(addr, 4); err != nil {
		return err
	}
	g.words[addr/4] = v
	return nil
}

// LoadRow32 reads len(dst) consecutive words starting at addr — the
// coalesced-warp fast path: one combined check, one copy. When the
// combined check cannot pass it falls back to word-by-word loads so the
// first failing word yields exactly the error a per-word caller sees.
func (g *Global) LoadRow32(addr uint32, dst []uint32) error {
	end := addr + uint32(len(dst))*4
	if addr%4 == 0 && addr >= nullGuard && end >= addr && end <= g.hwm {
		copy(dst, g.words[addr/4:end/4])
		return nil
	}
	for i := range dst {
		v, err := g.Load32(addr + uint32(4*i))
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// StoreRow32 writes len(src) consecutive words starting at addr; the
// store analogue of LoadRow32. The fallback preserves the partial-write
// semantics of a per-word loop that faults midway.
func (g *Global) StoreRow32(addr uint32, src []uint32) error {
	end := addr + uint32(len(src))*4
	if addr%4 == 0 && addr >= nullGuard && end >= addr && end <= g.hwm {
		copy(g.words[addr/4:end/4], src)
		return nil
	}
	for i, v := range src {
		if err := g.Store32(addr+uint32(4*i), v); err != nil {
			return err
		}
	}
	return nil
}

// Load64 reads an aligned 64-bit value as (lo, hi) words.
func (g *Global) Load64(addr uint32) (lo, hi uint32, err error) {
	if err := g.check(addr, 8); err != nil {
		return 0, 0, err
	}
	return g.words[addr/4], g.words[addr/4+1], nil
}

// Store64 writes an aligned 64-bit value given as (lo, hi) words.
func (g *Global) Store64(addr uint32, lo, hi uint32) error {
	if err := g.check(addr, 8); err != nil {
		return err
	}
	g.words[addr/4] = lo
	g.words[addr/4+1] = hi
	return nil
}

// AtomicAdd32 performs an integer atomic add and returns the old value.
func (g *Global) AtomicAdd32(addr uint32, v uint32) (uint32, error) {
	if err := g.check(addr, 4); err != nil {
		return 0, err
	}
	old := g.words[addr/4]
	g.words[addr/4] = old + v
	return old, nil
}

// FlipBit flips one bit of allocated storage. The bit index ranges over
// AllocatedBytes()*8 and is relative to the first allocated byte.
func (g *Global) FlipBit(bit uint64) {
	total := uint64(g.AllocatedBytes()) * 8
	if total == 0 {
		return
	}
	bit %= total
	byteAddr := uint64(nullGuard) + bit/8
	g.words[byteAddr/4] ^= 1 << ((byteAddr%4)*8 + bit%8)
}

// Word returns the raw word at the given byte address without checks,
// for golden-output capture by host-side code.
func (g *Global) Word(addr uint32) uint32 { return g.words[addr/4] }

// SetWord writes the raw word at the given byte address without checks,
// for host-side initialization.
func (g *Global) SetWord(addr uint32, v uint32) { g.words[addr/4] = v }

// ReadWords copies n words starting at the given byte address, for
// host-side output comparison.
func (g *Global) ReadWords(addr uint32, n int) []uint32 {
	out := make([]uint32, n)
	copy(out, g.words[addr/4:addr/4+uint32(n)])
	return out
}

// WriteWords copies host data into device memory at the given address.
func (g *Global) WriteWords(addr uint32, data []uint32) {
	copy(g.words[addr/4:], data)
}

// Shared is the per-block shared memory (scratchpad).
type Shared struct {
	words []uint32
	size  uint32 // bytes
}

// NewShared creates a shared-memory region of the given size in bytes.
func NewShared(size int) *Shared {
	return &Shared{words: make([]uint32, (size+3)/4), size: uint32(size)}
}

// Size returns the region size in bytes.
func (s *Shared) Size() int { return int(s.size) }

func (s *Shared) check(addr uint32, bytes uint32) error {
	if addr%bytes != 0 {
		return &AccessError{Space: "shared", Addr: addr, Kind: "unaligned"}
	}
	if addr+bytes > s.size || addr+bytes < addr {
		return &AccessError{Space: "shared", Addr: addr, Kind: "out of bounds"}
	}
	return nil
}

// Load32 reads a 32-bit word of shared memory.
func (s *Shared) Load32(addr uint32) (uint32, error) {
	if err := s.check(addr, 4); err != nil {
		return 0, err
	}
	return s.words[addr/4], nil
}

// Store32 writes a 32-bit word of shared memory.
func (s *Shared) Store32(addr uint32, v uint32) error {
	if err := s.check(addr, 4); err != nil {
		return err
	}
	s.words[addr/4] = v
	return nil
}

// Load64 reads an aligned 64-bit value as (lo, hi) words.
func (s *Shared) Load64(addr uint32) (lo, hi uint32, err error) {
	if err := s.check(addr, 8); err != nil {
		return 0, 0, err
	}
	return s.words[addr/4], s.words[addr/4+1], nil
}

// Store64 writes an aligned 64-bit value given as (lo, hi) words.
func (s *Shared) Store64(addr uint32, lo, hi uint32) error {
	if err := s.check(addr, 8); err != nil {
		return err
	}
	s.words[addr/4] = lo
	s.words[addr/4+1] = hi
	return nil
}

// FlipBit flips one bit of the region.
func (s *Shared) FlipBit(bit uint64) {
	if s.size == 0 {
		return
	}
	bit %= uint64(s.size) * 8
	s.words[bit/32] ^= 1 << (bit % 32)
}

// SnapshotWords returns a frozen copy of the region's words, the
// shared-memory half of a sub-launch checkpoint image.
func (s *Shared) SnapshotWords() []uint32 {
	return append([]uint32(nil), s.words...)
}

// RestoreWords rewinds the region to a SnapshotWords copy taken from a
// region of the same size.
func (s *Shared) RestoreWords(words []uint32) {
	copy(s.words, words)
}

// EqualWords reports whether the region is bit-identical to a
// SnapshotWords copy.
func (s *Shared) EqualWords(words []uint32) bool {
	if len(s.words) != len(words) {
		return false
	}
	for i := range s.words {
		if s.words[i] != words[i] {
			return false
		}
	}
	return true
}
