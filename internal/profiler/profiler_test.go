package profiler

import (
	"math"
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

func profileOf(t *testing.T, name string, b kernels.Builder, dev *device.Device) *CodeProfile {
	t.Helper()
	r, err := kernels.NewRunner(name, b, dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Profile(r)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestMixSumsToOne(t *testing.T) {
	cp := profileOf(t, "FMXM", kernels.MxMBuilder(isa.F32), device.K40c())
	var sum float64
	for _, f := range cp.Mix {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mix sums to %g", sum)
	}
}

func TestGEMMSignature(t *testing.T) {
	// Table I: GEMM pairs the highest IPC with among the lowest
	// occupancies; the naive MxM has the higher occupancy.
	dev := device.K40c()
	gemm := profileOf(t, "FGEMM", kernels.GEMMBuilder(isa.F32), dev)
	mxm := profileOf(t, "FMXM", kernels.MxMBuilder(isa.F32), dev)
	if gemm.Occupancy >= mxm.Occupancy {
		t.Fatalf("GEMM occupancy %.2f should be below MxM's %.2f", gemm.Occupancy, mxm.Occupancy)
	}
	if gemm.IPC <= mxm.IPC {
		t.Fatalf("GEMM IPC %.2f should exceed MxM's %.2f", gemm.IPC, mxm.IPC)
	}
	if gemm.RegsPerThread <= mxm.RegsPerThread {
		t.Fatal("GEMM must be the register-hungry kernel")
	}
}

func TestNWIsUnderUtilized(t *testing.T) {
	// Table I: NW has the suite's lowest occupancy and a very low IPC.
	dev := device.K40c()
	nw := profileOf(t, "NW", kernels.NWBuilder(), dev)
	hotspot := profileOf(t, "FHOTSPOT", kernels.HotspotBuilder(isa.F32), dev)
	if nw.Occupancy >= hotspot.Occupancy {
		t.Fatalf("NW occupancy %.3f should be below Hotspot's %.3f", nw.Occupancy, hotspot.Occupancy)
	}
	if nw.Phi() >= hotspot.Phi() {
		t.Fatalf("NW phi %.3f should be below Hotspot's %.3f", nw.Phi(), hotspot.Phi())
	}
}

func TestMMAMixContainsMMAClass(t *testing.T) {
	cp := profileOf(t, "HGEMM-MMA", kernels.GEMMMMABuilder(true), device.V100())
	if cp.Mix[isa.ClassMMA] <= 0 {
		t.Fatal("tensor-core GEMM must show MMA instructions in Figure 1")
	}
}

func TestFMADominatedCodes(t *testing.T) {
	cp := profileOf(t, "FGEMM", kernels.GEMMBuilder(isa.F32), device.K40c())
	if cp.Mix[isa.ClassFMA] < 0.3 {
		t.Fatalf("GEMM FMA fraction %.2f too low", cp.Mix[isa.ClassFMA])
	}
	ccl := profileOf(t, "CCL", kernels.CCLBuilder(), device.K40c())
	if ccl.Mix[isa.ClassINT] < 0.3 {
		t.Fatalf("CCL INT fraction %.2f too low", ccl.Mix[isa.ClassINT])
	}
	if ccl.Mix[isa.ClassFMA] > 0.01 {
		t.Fatal("CCL is integer-only")
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	cp := profileOf(t, "NW", kernels.NWBuilder(), device.K40c())
	if cp.MemoryBytes <= 0 {
		t.Fatal("memory footprint must be positive")
	}
	if cp.SharedBytes <= 0 {
		t.Fatal("NW uses shared memory")
	}
}

func TestResidencyAndTimelines(t *testing.T) {
	cp := profileOf(t, "QUICKSORT", kernels.QuicksortBuilder(), device.K40c())
	r := cp.Residency
	if r.SchedUtil <= 0 || r.SchedUtil > 1 {
		t.Fatalf("scheduler utilization %.3f outside (0,1]", r.SchedUtil)
	}
	if r.WarpsPerSMCycle <= 0 || r.SMCyclesPerCycle <= 0 {
		t.Fatalf("occupancy residencies must be positive: %.3f warps, %.3f SMs",
			r.WarpsPerSMCycle, r.SMCyclesPerCycle)
	}
	if r.DivDepth <= 0 {
		t.Fatal("quicksort diverges; divergence-stack residency must be positive")
	}
	tls := cp.Timelines()
	if len(tls) != len(cp.Launches) {
		t.Fatalf("%d timelines for %d launches", len(tls), len(cp.Launches))
	}
	for i, tl := range tls {
		if len(tl.Buckets) == 0 || tl.BucketWidth <= 0 {
			t.Fatalf("launch %d: golden profile carries no timeline", i)
		}
	}
}

// TestAggregatesFiniteAcrossSuite pins the zero-cycle guard at the
// profiler layer: every aggregate a consumer reads must be finite even
// if some launch contributed empty counters.
func TestAggregatesFiniteAcrossSuite(t *testing.T) {
	cp := profileOf(t, "NW", kernels.NWBuilder(), device.K40c())
	for name, v := range map[string]float64{
		"IPC":       cp.IPC,
		"occupancy": cp.Occupancy,
		"sched":     cp.Residency.SchedUtil,
		"fetch":     cp.Residency.FetchRate,
		"div":       cp.Residency.DivDepth,
		"load":      cp.Residency.LoadDepth,
		"warps":     cp.Residency.WarpsPerSMCycle,
		"sms":       cp.Residency.SMCyclesPerCycle,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is %v", name, v)
		}
	}
}

func TestProfileSuite(t *testing.T) {
	out, err := ProfileSuite(device.K40c(), asm.O2, []NamedBuilder{
		{Name: "CCL", Build: kernels.CCLBuilder()},
		{Name: "BFS", Build: kernels.BFSBuilder()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "BFS" {
		t.Fatalf("suite profiling wrong: %d entries", len(out))
	}
}
