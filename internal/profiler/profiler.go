// Package profiler computes the kernel characterization the paper gets
// from NVPROF / Nsight Compute: per-code instruction mix (Figure 1),
// issued IPC, achieved occupancy, registers per thread, and shared
// memory per block (Table I). The FIT prediction model of §IV consumes
// exactly these metrics.
package profiler

import (
	"sort"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// CodeProfile is the Table-I row plus Figure-1 mix of one workload.
type CodeProfile struct {
	Name string

	SharedBytes   int // max shared memory per block over all kernels
	RegsPerThread int // max registers per thread over all kernels
	IPC           float64
	Occupancy     float64

	// MemoryBytes is the storage footprint f(MEM) of Equation 3 sums
	// over: the register file and shared memory claimed by the largest
	// launch plus the allocated device memory.
	MemoryBytes int

	// Mix is the dynamic instruction-class composition (fractions of
	// executed lane-operations), the Figure-1 bars.
	Mix map[isa.Class]float64

	// PerOpLane is the dynamic lane-op count per opcode, summed over
	// launches; the beam exposure model and the predictor's f(INST)
	// terms derive from it.
	PerOpLane map[isa.Op]uint64

	// Residency is the execution-weighted mean hidden-structure
	// occupancy over all launches (counters summed before dividing, so
	// long launches dominate exactly by their execution share). The
	// per-launch residency timelines stay on Launches; see Timelines.
	Residency sim.Residency

	// Launch-level totals.
	TotalLaneOps uint64
	TotalCycles  int64
	Launches     []sim.Profile
}

// Timelines returns the per-launch residency timelines recorded by the
// golden run, in launch order.
func (cp *CodeProfile) Timelines() []sim.Timeline {
	out := make([]sim.Timeline, len(cp.Launches))
	for i := range cp.Launches {
		out[i] = cp.Launches[i].Timeline
	}
	return out
}

// Profile characterizes a workload from its golden runner and the
// runner's cached build (for the static kernel footprints).
func Profile(r *kernels.Runner) (*CodeProfile, error) {
	inst := r.Instance()
	cp := &CodeProfile{
		Name: r.Name,
		Mix:  make(map[isa.Class]float64),
	}
	maxOnChip := 0
	for _, l := range inst.Launches {
		if l.Prog.SharedMem > cp.SharedBytes {
			cp.SharedBytes = l.Prog.SharedMem
		}
		if l.Prog.NumRegs > cp.RegsPerThread {
			cp.RegsPerThread = l.Prog.NumRegs
		}
		blocks := l.GridX * l.GridY
		onChip := l.Prog.NumRegs*l.BlockThreads*blocks*4 + l.Prog.SharedMem*blocks
		if onChip > maxOnChip {
			maxOnChip = onChip
		}
	}
	cp.MemoryBytes = maxOnChip + inst.Global.AllocatedBytes()

	// Workload metrics come from the summed launch counters through the
	// same sim.Profile accessors a single launch uses — one formula,
	// zero-guarded there, instead of a re-derivation here.
	cp.Launches = append(cp.Launches, r.GoldenProfiles()...)
	agg := sim.Aggregate(cp.Launches)
	cp.TotalCycles = agg.Cycles
	cp.TotalLaneOps = agg.LaneOps
	cp.PerOpLane = agg.PerOpLane
	cp.IPC = agg.IPC()
	cp.Occupancy = agg.AchievedOccupancy(r.Dev)
	cp.Residency = agg.Residency(r.Dev)
	if cp.TotalLaneOps > 0 {
		for op, n := range cp.PerOpLane {
			cp.Mix[op.ClassOf()] += float64(n)
		}
		for c := range cp.Mix {
			cp.Mix[c] /= float64(cp.TotalLaneOps)
		}
	}
	return cp, nil
}

// Phi is the parallelism-management factor of Equation 4:
// AchievedOccupancy * IPC. High values mean many functional units are
// simultaneously exposed to strikes.
func (cp *CodeProfile) Phi() float64 { return cp.Occupancy * cp.IPC }

// ClassLaneOps aggregates lane-ops by class.
func (cp *CodeProfile) ClassLaneOps() map[isa.Class]uint64 {
	out := make(map[isa.Class]uint64)
	for op, n := range cp.PerOpLane {
		out[op.ClassOf()] += n
	}
	return out
}

// ClassFraction returns f(INST) for one class: the fraction of executed
// lane-ops in that class.
func (cp *CodeProfile) ClassFraction(c isa.Class) float64 { return cp.Mix[c] }

// ProfileSuite profiles a list of workloads on one device and compiler
// pipeline; it is the data behind cmd/gpurel-profile.
func ProfileSuite(dev *device.Device, opt asm.OptLevel, entries []NamedBuilder) ([]*CodeProfile, error) {
	var out []*CodeProfile
	for _, e := range entries {
		r, err := kernels.NewRunner(e.Name, e.Build, dev, opt)
		if err != nil {
			return nil, err
		}
		cp, err := Profile(r)
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// NamedBuilder pairs a workload name with its builder (kept minimal to
// avoid a dependency on the suite package).
type NamedBuilder struct {
	Name  string
	Build kernels.Builder
}
