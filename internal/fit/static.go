package fit

import (
	"gpurel/internal/analysis"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/profiler"
	"gpurel/internal/stats"
)

// Static AVF path: the predictor's AVF(INST_i) and AVF(MEM) terms can
// come from the injection-free static estimator (internal/analysis)
// instead of a fault-injection campaign. StaticAVFResult reshapes an
// analysis.Estimate into the faultinj.Result form Predict consumes, so
// the two AVF sources are drop-in interchangeable and their predictions
// directly comparable (the faultinj cross-validation quantifies how far
// the sources themselves diverge). An estimate from Result.Estimate or
// faultinj.StaticEstimate is bit-resolved — its SDC/DUE are the
// destination-width means of the per-bit ACE vectors, matching an
// injector that flips a uniformly random destination bit — so the
// prediction inherits the bit-level masking proofs with no change here;
// pass a ScalarEstimate to predict from the legacy scalar model.

// StaticAVFResult converts a static estimate into a synthetic campaign
// result. The proportions carry only point estimates: no faults were
// injected, so there are no trials and no Wilson intervals (Trials is 0
// to make the synthetic origin visible to any consumer that looks).
func StaticAVFResult(est *analysis.Estimate, tool faultinj.Tool, device string) *faultinj.Result {
	res := &faultinj.Result{
		Name:   est.Name,
		Tool:   tool,
		Device: device,
		Tally: faultinj.Tally{
			SDCAVF: stats.Proportion{P: est.SDC},
			DUEAVF: stats.Proportion{P: est.DUE},
		},
		PerClass: make(map[isa.Class]*faultinj.ClassAVF, len(est.PerClass)),
		PerMode:  map[faultinj.Mode]int{},
		ByMode:   map[faultinj.Mode]*faultinj.ModeAVF{},
	}
	for class, ce := range est.PerClass {
		res.PerClass[class] = &faultinj.ClassAVF{
			Class: class,
			Tally: faultinj.Tally{
				SDCAVF: stats.Proportion{P: ce.SDC},
				DUEAVF: stats.Proportion{P: ce.DUE},
			},
		}
	}
	return res
}

// PredictStatic applies Equations 1-4 with the static AVF estimate in
// place of a campaign result.
func PredictStatic(cp *profiler.CodeProfile, est *analysis.Estimate, tool faultinj.Tool, device string, units *UnitFITs, ecc bool) Prediction {
	return Predict(cp, StaticAVFResult(est, tool, device), units, ecc)
}
