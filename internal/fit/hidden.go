package fit

import (
	"math"
	"sort"

	"gpurel/internal/analysis"
)

// Hidden-resource DUE correction (§VII-B). The Eq. 1-4 DUE prediction
// inherits the injectors' blind spot: AVF(INST_i) only sees faults in
// architectural dataflow, so the predicted DUE FIT misses every strike
// in the scheduler, instruction pipe, and MMU/LDST path — the
// population that dominates the beam DUE rate. The correction below
// adds that population back from two sources the model does have: a
// device-level hidden DUE rate extracted from the micro-benchmark beam
// measurements, and the per-workload static hidden-resource estimate of
// internal/analysis, which modulates the device rate by how hard the
// code drives the hidden structures.

// HiddenDUEBase extracts the device's hidden-resource DUE FIT per unit
// of phi from the micro-benchmark beam data. Micros run with ECC on, so
// storage strikes are corrected or converted; their measured DUE rate is
// then dominated by hidden-resource and functional-unit strikes. The
// minimum rate across micros (normalized by each micro's own phi) is
// the floor every kernel pays regardless of which units it exercises —
// the hidden-resource contribution. RF is excluded: it is measured with
// ECC off, so uncorrected storage DUEs pollute its rate.
func (u *UnitFITs) HiddenDUEBase() float64 {
	names := make([]string, 0, len(u.DUE))
	for name := range u.DUE {
		if name == "RF" {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	base := math.Inf(1)
	for _, name := range names {
		phi := u.MicroPhi[name]
		if phi <= 0 {
			continue
		}
		if rate := u.DUE[name] / phi; rate > 0 && rate < base {
			base = rate
		}
	}
	if math.IsInf(base, 1) {
		return 0
	}
	return base
}

// ApplyStaticDUE folds the static hidden-resource DUE estimate into a
// prediction: the device's hidden DUE floor, scaled to the workload's
// parallelism (hidden structures are per-warp state, so exposure tracks
// phi like the instruction term), and modulated by the ratio of the
// workload's static P(DUE | hidden strike) to the suite-neutral prior.
// The original Eq. 1-4 fields are untouched so both views stay
// reportable side by side.
func (p Prediction) ApplyStaticDUE(units *UnitFITs, hid *analysis.HiddenEstimate) Prediction {
	if units == nil || hid == nil {
		return p
	}
	p.StaticHiddenDUE = hid.DUE
	p.DUECorrection = units.HiddenDUEBase() * p.Phi * hid.DUE / analysis.NominalHiddenDUE
	p.DUEFITCorrected = p.DUEFIT + p.DUECorrection
	return p
}
