package fit

import (
	"math"
	"sort"

	"gpurel/internal/analysis"
)

// Hidden-resource DUE correction (§VII-B). The Eq. 1-4 DUE prediction
// inherits the injectors' blind spot: AVF(INST_i) only sees faults in
// architectural dataflow, so the predicted DUE FIT misses every strike
// in the scheduler, instruction pipe, and MMU/LDST path — the
// population that dominates the beam DUE rate. The correction below
// adds that population back from two sources the model does have: a
// device-level hidden DUE rate extracted from the micro-benchmark beam
// measurements, and the per-workload static hidden-resource estimate of
// internal/analysis, which modulates the device rate by how hard the
// code drives the hidden structures.

// HiddenDUEBase extracts the device's hidden-resource DUE FIT per unit
// of phi from the micro-benchmark beam data. Micros run with ECC on, so
// storage strikes are corrected or converted; their measured DUE rate is
// then dominated by hidden-resource and functional-unit strikes. The
// minimum rate across micros (normalized by each micro's own phi) is
// the floor every kernel pays regardless of which units it exercises —
// the hidden-resource contribution. RF is excluded: it is measured with
// ECC off, so uncorrected storage DUEs pollute its rate.
func (u *UnitFITs) HiddenDUEBase() float64 {
	names := make([]string, 0, len(u.DUE))
	for name := range u.DUE {
		if name == "RF" {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	base := math.Inf(1)
	for _, name := range names {
		phi := u.MicroPhi[name]
		if phi <= 0 {
			continue
		}
		if rate := u.DUE[name] / phi; rate > 0 && rate < base {
			base = rate
		}
	}
	if math.IsInf(base, 1) {
		return 0
	}
	return base
}

// ApplyStaticDUE folds the static hidden-resource DUE estimate into a
// prediction: the device's hidden DUE floor, scaled to the workload's
// parallelism (hidden structures are per-warp state, so exposure tracks
// phi like the instruction term), and modulated by the ratio of the
// workload's static P(DUE | hidden strike) to the suite-neutral prior.
// The original Eq. 1-4 fields are untouched so both views stay
// reportable side by side.
func (p Prediction) ApplyStaticDUE(units *UnitFITs, hid *analysis.HiddenEstimate) Prediction {
	if units == nil || hid == nil {
		return p
	}
	p.StaticHiddenDUE = hid.DUE
	p.DUECorrection = units.HiddenDUEBase() * p.Phi * hid.DUE / analysis.NominalHiddenDUE
	p.DUEFITCorrected = p.DUEFIT + p.DUECorrection
	return p
}

// MeasuredHiddenDUEBase extracts the device's hidden DUE FIT per unit
// of measured hidden exposure: the minimum, over the ECC-on micros, of
// the measured DUE rate divided by the micro's own DUE-weighted hidden
// exposure (from its golden-run residency telemetry). Where
// HiddenDUEBase normalizes by phi — a proxy that conflates functional-
// unit utilization with hidden-structure residency — this normalizes by
// the same exposure functional the correction multiplies back in, so
// the calibration cancels exactly for a workload whose telemetry
// matches a micro's. Returns 0 when no micro carries telemetry.
func (u *UnitFITs) MeasuredHiddenDUEBase() float64 {
	if u.MicroHiddenExposure == nil {
		return 0
	}
	names := make([]string, 0, len(u.DUE))
	for name := range u.DUE {
		if name == "RF" {
			continue // measured with ECC off; storage DUEs pollute the rate
		}
		names = append(names, name)
	}
	sort.Strings(names)
	base := math.Inf(1)
	for _, name := range names {
		exp := u.MicroHiddenExposure[name]
		if exp <= 0 {
			continue
		}
		if rate := u.DUE[name] / exp; rate > 0 && rate < base {
			base = rate
		}
	}
	if math.IsInf(base, 1) {
		return 0
	}
	return base
}

// ApplyMeasuredDUE is the measured-residency sibling of ApplyStaticDUE:
// the hidden DUE floor calibrated per unit of measured exposure, times
// the workload's own DUE-weighted exposure from the golden telemetry.
// Both corrections coexist on the prediction so the static-vs-measured
// gap stays reportable side by side. A nil or non-measured estimate is
// a no-op: the static path remains the fallback.
func (p Prediction) ApplyMeasuredDUE(units *UnitFITs, hid *analysis.HiddenEstimate) Prediction {
	if units == nil || hid == nil || !hid.Measured {
		return p
	}
	p.MeasuredHiddenDUE = hid.DUE
	p.DUECorrectionMeasured = units.MeasuredHiddenDUEBase() * hid.DUEExposure()
	p.DUEFITCorrectedMeasured = p.DUEFIT + p.DUECorrectionMeasured
	return p
}
