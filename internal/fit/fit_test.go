package fit

import (
	"math"
	"testing"

	"gpurel/internal/beam"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/profiler"
	"gpurel/internal/stats"
)

func fakeUnits() *UnitFITs {
	return &UnitFITs{
		Device: "test",
		SDC: map[string]float64{
			"FADD": 5, "FMUL": 5.2, "FFMA": 6, "IADD": 20, "IMUL": 26,
			"IMAD": 29, "LDST": 2, "RF": 160,
		},
		DUE: map[string]float64{
			"FADD": 1, "FMUL": 1, "FFMA": 1.2, "IADD": 3, "IMUL": 3.5,
			"IMAD": 4, "LDST": 14, "RF": 8,
		},
		MicroAVF: map[string]float64{
			"FADD": 0.9, "FMUL": 0.9, "FFMA": 0.9, "IADD": 1, "IMUL": 1,
			"IMAD": 1, "LDST": 0.95, "RF": 1,
		},
		MicroPhi: map[string]float64{
			"FADD": 1, "FMUL": 1, "FFMA": 1, "IADD": 1, "IMUL": 1,
			"IMAD": 1, "LDST": 1, "RF": 1,
		},
		RFPerByteSDC: 160.0 / (1 << 20),
		RFPerByteDUE: 8.0 / (1 << 20),
	}
}

func fakeProfile() *profiler.CodeProfile {
	return &profiler.CodeProfile{
		Name:      "FAKE",
		IPC:       2.0,
		Occupancy: 0.5,
		PerOpLane: map[isa.Op]uint64{
			isa.OpFFMA: 600,
			isa.OpLDG:  200,
			isa.OpIADD: 100,
			isa.OpMOV:  100, // OTHERS: not covered by any micro
		},
		TotalLaneOps: 1000,
		MemoryBytes:  1 << 18, // 256 KB
	}
}

func fakeAVF() *faultinj.Result {
	mk := func(sdc, due float64) *faultinj.ClassAVF {
		n := 100
		return &faultinj.ClassAVF{
			Tally: faultinj.Tally{
				Injected: n,
				SDCAVF:   stats.NewProportion(int(sdc*float64(n)), n),
				DUEAVF:   stats.NewProportion(int(due*float64(n)), n),
			},
		}
	}
	return &faultinj.Result{
		Name: "FAKE",
		Tally: faultinj.Tally{
			Injected: 300,
			SDCAVF:   stats.NewProportion(90, 300),
			DUEAVF:   stats.NewProportion(30, 300),
		},
		PerClass: map[isa.Class]*faultinj.ClassAVF{
			isa.ClassFMA:  mk(0.4, 0.05),
			isa.ClassLDST: mk(0.2, 0.3),
			isa.ClassINT:  mk(0.5, 0.2),
		},
		ByMode: map[faultinj.Mode]*faultinj.ModeAVF{
			faultinj.ModeGPR: {
				Tally: faultinj.Tally{
					Injected: 100,
					SDCAVF:   stats.NewProportion(15, 100),
					DUEAVF:   stats.NewProportion(5, 100),
				},
			},
		},
	}
}

func TestPredictHandComputed(t *testing.T) {
	cp, avf, units := fakeProfile(), fakeAVF(), fakeUnits()
	p := Predict(cp, avf, units, true) // ECC on: no memory term
	phi := 1.0                         // 2.0 * 0.5

	wantFFMA := 0.6 * 0.4 * (6.0 / 0.9) * phi
	wantLDST := 0.2 * 0.2 * (2.0 / 0.95) * phi
	wantIADD := 0.1 * 0.5 * (20.0 / 1.0) * phi
	want := wantFFMA + wantLDST + wantIADD
	if math.Abs(p.SDCFIT-want) > 1e-9 {
		t.Fatalf("SDC prediction %g, want %g", p.SDCFIT, want)
	}
	if p.MemSDC != 0 {
		t.Fatal("ECC on must zero the memory term")
	}
	// 10% of lane-ops are MOV (OTHERS): coverage 0.9.
	if math.Abs(p.Covered-0.9) > 1e-9 {
		t.Fatalf("coverage %g, want 0.9", p.Covered)
	}
}

func TestPredictMemoryTermECCOff(t *testing.T) {
	cp, avf, units := fakeProfile(), fakeAVF(), fakeUnits()
	on := Predict(cp, avf, units, true)
	off := Predict(cp, avf, units, false)
	if off.SDCFIT <= on.SDCFIT {
		t.Fatal("disabling ECC must add the memory term")
	}
	wantMem := units.RFPerByteSDC * float64(cp.MemoryBytes) * 0.15
	if math.Abs(off.MemSDC-wantMem) > 1e-9 {
		t.Fatalf("memory term %g, want %g", off.MemSDC, wantMem)
	}
}

func TestPredictPhiScaling(t *testing.T) {
	cp, avf, units := fakeProfile(), fakeAVF(), fakeUnits()
	base := Predict(cp, avf, units, true)
	cp2 := *cp
	cp2.IPC = 4.0 // doubled phi
	doubled := Predict(&cp2, avf, units, true)
	if math.Abs(doubled.SDCFIT-2*base.SDCFIT) > 1e-9 {
		t.Fatalf("phi must scale the instruction term linearly: %g vs %g", doubled.SDCFIT, base.SDCFIT)
	}
}

func TestPredictMicroPhiNormalization(t *testing.T) {
	cp, avf, units := fakeProfile(), fakeAVF(), fakeUnits()
	base := Predict(cp, avf, units, true)
	units.MicroPhi["FFMA"] = 0.5 // the micro only ran at half utilization
	boosted := Predict(cp, avf, units, true)
	if boosted.SDCFIT <= base.SDCFIT {
		t.Fatal("lower micro phi must raise the inferred unit FIT")
	}
}

func TestFromMicroResults(t *testing.T) {
	mk := func(sdc, due int) *beam.Result {
		r := &beam.Result{Trials: 100}
		r.SDCFIT = statsRate(sdc, 100)
		r.DUEFIT = statsRate(due, 100)
		return r
	}
	results := map[string]*beam.Result{
		"FADD": mk(10, 2),
		"RF":   mk(80, 4),
	}
	u, err := FromMicroResults("dev", results, map[string]float64{"FADD": 0.9},
		map[string]float64{"FADD": 0.8}, map[string]float64{"FADD": 12.5}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if u.MicroAVF["FADD"] != 0.9 || u.MicroPhi["FADD"] != 0.8 {
		t.Fatal("micro AVF/phi lost")
	}
	if u.MicroAVF["RF"] != 0.85 {
		t.Fatalf("missing micro AVF should default to 0.85, got %g", u.MicroAVF["RF"])
	}
	if u.RFPerByteSDC <= 0 {
		t.Fatal("RF per-byte rate must be positive")
	}
	if u.MicroHiddenExposure["FADD"] != 12.5 {
		t.Fatalf("micro hidden exposure lost, got %g", u.MicroHiddenExposure["FADD"])
	}
	if _, err := FromMicroResults("dev", map[string]*beam.Result{"FADD": mk(1, 1)}, nil, nil, nil, 100); err == nil {
		t.Fatal("missing RF micro must error")
	}
}

func TestCompareConvention(t *testing.T) {
	c := Compare("X", true, faultinj.NVBitFI, 12, 1)
	if c.Ratio != 12 {
		t.Fatalf("ratio %g, want +12", c.Ratio)
	}
	c = Compare("X", true, faultinj.NVBitFI, 1, 7)
	if c.Ratio != -7 {
		t.Fatalf("ratio %g, want -7", c.Ratio)
	}
}

func statsRate(events, trials int) (r statsRateT) {
	return statsRateFromCounts(events, trials)
}

type statsRateT = stats.RateEstimate

func statsRateFromCounts(events, trials int) stats.RateEstimate {
	return stats.NewRateEstimate(events, float64(trials))
}

func TestAblationZeroValueMatchesPredict(t *testing.T) {
	cp, avf, units := fakeProfile(), fakeAVF(), fakeUnits()
	for _, ecc := range []bool{false, true} {
		a := Predict(cp, avf, units, ecc)
		b := PredictAblated(cp, avf, units, ecc, Ablation{})
		if math.Abs(a.SDCFIT-b.SDCFIT) > 1e-12 || math.Abs(a.DUEFIT-b.DUEFIT) > 1e-12 {
			t.Fatalf("zero ablation must match Predict: %g vs %g", a.SDCFIT, b.SDCFIT)
		}
	}
}

func TestAblationNoPhi(t *testing.T) {
	cp, avf, units := fakeProfile(), fakeAVF(), fakeUnits()
	cp.IPC = 0.2 // phi = 0.1
	base := PredictAblated(cp, avf, units, true, Ablation{})
	noPhi := PredictAblated(cp, avf, units, true, Ablation{NoPhi: true})
	if noPhi.SDCFIT <= base.SDCFIT {
		t.Fatal("dropping phi for a low-utilization code must inflate the prediction")
	}
	if math.Abs(noPhi.SDCFIT-base.SDCFIT/0.1) > 1e-9 {
		t.Fatalf("NoPhi should divide out phi exactly: %g vs %g", noPhi.SDCFIT, base.SDCFIT/0.1)
	}
}

func TestAblationNoDemask(t *testing.T) {
	cp, avf, units := fakeProfile(), fakeAVF(), fakeUnits()
	base := PredictAblated(cp, avf, units, true, Ablation{})
	raw := PredictAblated(cp, avf, units, true, Ablation{NoDemask: true})
	if raw.SDCFIT >= base.SDCFIT {
		t.Fatal("skipping the de-masking must lower the prediction (micro AVFs < 1)")
	}
}

func TestAblationNoMemTerm(t *testing.T) {
	cp, avf, units := fakeProfile(), fakeAVF(), fakeUnits()
	with := PredictAblated(cp, avf, units, false, Ablation{})
	without := PredictAblated(cp, avf, units, false, Ablation{NoMemTerm: true})
	if without.MemSDC != 0 || without.SDCFIT >= with.SDCFIT {
		t.Fatal("NoMemTerm must drop the Eq. 3 contribution")
	}
}
