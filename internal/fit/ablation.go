package fit

import (
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/microbench"
	"gpurel/internal/profiler"
)

// Ablation switches individual terms of the prediction model off, to
// quantify what each contributes — the "which assumptions matter"
// analysis behind DESIGN.md §5 and the ablation benchmarks.
type Ablation struct {
	// NoPhi drops Equation 4 entirely: no occupancy*IPC scaling. The
	// paper introduces phi precisely because predictions without it are
	// unusable (§IV-B).
	NoPhi bool
	// NoMicroPhiNorm applies the application's phi but does not express
	// the micro-benchmark FITs at full utilization first (the paper's
	// literal Eq. 2 reading).
	NoMicroPhiNorm bool
	// NoDemask uses the micro-benchmark FITs as measured instead of
	// dividing out their own AVFs (§V-A).
	NoDemask bool
	// NoMemTerm drops Equation 3's memory summation even with ECC off.
	NoMemTerm bool
}

// PredictAblated applies Equations 1-4 with the chosen terms disabled.
// PredictAblated with the zero Ablation is identical to Predict.
func PredictAblated(cp *profiler.CodeProfile, avf *faultinj.Result, units *UnitFITs, ecc bool, ab Ablation) Prediction {
	p := Prediction{
		Name:    cp.Name,
		ECC:     ecc,
		Phi:     cp.Phi(),
		PerUnit: make(map[string]float64),
	}
	phi := p.Phi
	if ab.NoPhi {
		phi = 1
	}
	var covered uint64
	for op := isa.Op(0); int(op) < isa.OpCount; op++ {
		n, ok := cp.PerOpLane[op]
		if !ok {
			continue
		}
		unit := microbench.UnitFor(op)
		if unit == "" {
			continue
		}
		fitSDC, ok := units.SDC[unit]
		if !ok {
			continue
		}
		covered += n
		f := float64(n) / float64(cp.TotalLaneOps)
		classAVF, ok := avf.PerClass[op.ClassOf()]
		if !ok {
			continue
		}
		scale := phi
		if !ab.NoPhi && !ab.NoMicroPhiNorm {
			scale = phi / units.MicroPhi[unit]
		}
		demask := units.MicroAVF[unit]
		if ab.NoDemask {
			demask = 1
		}
		sdc := f * classAVF.SDCAVF.P * (fitSDC / demask) * scale
		p.InstSDC += sdc
		p.PerUnit[unit] += sdc
		p.InstDUE += f * classAVF.DUEAVF.P * (units.DUE[unit] / demask) * scale
	}
	p.Covered = float64(covered) / float64(cp.TotalLaneOps)

	if !ecc && !ab.NoMemTerm {
		memAVFSDC := avf.SDCAVF.P
		memAVFDUE := avf.DUEAVF.P
		if gpr, ok := avf.ByMode[faultinj.ModeGPR]; ok && gpr.Injected > 0 {
			memAVFSDC = gpr.SDCAVF.P
			memAVFDUE = gpr.DUEAVF.P
		}
		mem := float64(cp.MemoryBytes)
		p.MemSDC = units.RFPerByteSDC * mem * memAVFSDC
		p.MemDUE = units.RFPerByteDUE * mem * memAVFDUE
	}
	p.SDCFIT = p.InstSDC + p.MemSDC
	p.DUEFIT = p.InstDUE + p.MemDUE
	return p
}
