package fit

import (
	"math"
	"testing"

	"gpurel/internal/analysis"
)

// TestHiddenDUEBase pins the floor extraction: minimum phi-normalized
// micro DUE rate, with the ECC-off RF measurement excluded.
func TestHiddenDUEBase(t *testing.T) {
	u := &UnitFITs{
		DUE:      map[string]float64{"IADD": 0.8, "FADD": 1.2, "LDST": 0.9, "RF": 0.01},
		MicroPhi: map[string]float64{"IADD": 4, "FADD": 2, "LDST": 9, "RF": 1},
	}
	// IADD 0.2, FADD 0.6, LDST 0.1; RF (0.01) must not win.
	if got := u.HiddenDUEBase(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("HiddenDUEBase = %.4f, want 0.1 (LDST)", got)
	}
	empty := &UnitFITs{DUE: map[string]float64{"RF": 5}, MicroPhi: map[string]float64{"RF": 1}}
	if got := empty.HiddenDUEBase(); got != 0 {
		t.Fatalf("RF-only HiddenDUEBase = %.4f, want 0", got)
	}
}

// TestApplyStaticDUE pins the correction arithmetic and that the
// original Eq. 1-4 fields stay untouched.
func TestApplyStaticDUE(t *testing.T) {
	u := &UnitFITs{
		DUE:      map[string]float64{"IADD": 0.5},
		MicroPhi: map[string]float64{"IADD": 2},
	}
	hid := &analysis.HiddenEstimate{DUE: analysis.NominalHiddenDUE}
	p := Prediction{DUEFIT: 0.02, Phi: 3}
	c := p.ApplyStaticDUE(u, hid)
	// base 0.25 x phi 3 x (hid.DUE / nominal = 1) = 0.75.
	if math.Abs(c.DUECorrection-0.75) > 1e-12 {
		t.Fatalf("DUECorrection = %.4f, want 0.75", c.DUECorrection)
	}
	if math.Abs(c.DUEFITCorrected-0.77) > 1e-12 {
		t.Fatalf("DUEFITCorrected = %.4f, want 0.77", c.DUEFITCorrected)
	}
	if c.DUEFIT != p.DUEFIT || c.StaticHiddenDUE != hid.DUE {
		t.Fatal("uncorrected fields must be preserved alongside the correction")
	}
	// A more DUE-prone workload scales the correction up linearly.
	prone := &analysis.HiddenEstimate{DUE: analysis.NominalHiddenDUE * 1.05}
	if c2 := p.ApplyStaticDUE(u, prone); c2.DUECorrection <= c.DUECorrection {
		t.Fatal("higher static hidden DUE must raise the correction")
	}
	// Missing inputs leave the prediction unchanged.
	if n := p.ApplyStaticDUE(nil, hid); n.DUECorrection != 0 || n.DUEFITCorrected != 0 {
		t.Fatal("nil units must be a no-op")
	}
	if n := p.ApplyStaticDUE(u, nil); n.DUECorrection != 0 || n.DUEFITCorrected != 0 {
		t.Fatal("nil hidden estimate must be a no-op")
	}
}

// TestMeasuredHiddenDUEBase pins the measured floor extraction: minimum
// exposure-normalized micro DUE rate, RF excluded, zero without
// telemetry.
func TestMeasuredHiddenDUEBase(t *testing.T) {
	u := &UnitFITs{
		DUE:                 map[string]float64{"IADD": 0.8, "FADD": 1.2, "LDST": 0.9, "RF": 0.01},
		MicroHiddenExposure: map[string]float64{"IADD": 4, "FADD": 2, "LDST": 30, "RF": 1},
	}
	// IADD 0.2, FADD 0.6, LDST 0.03; RF (0.01) must not win.
	if got := u.MeasuredHiddenDUEBase(); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("MeasuredHiddenDUEBase = %.4f, want 0.03 (LDST)", got)
	}
	bare := &UnitFITs{DUE: map[string]float64{"IADD": 0.8}}
	if got := bare.MeasuredHiddenDUEBase(); got != 0 {
		t.Fatalf("no telemetry must disable the measured base, got %.4f", got)
	}
	rfOnly := &UnitFITs{
		DUE:                 map[string]float64{"RF": 5},
		MicroHiddenExposure: map[string]float64{"RF": 1},
	}
	if got := rfOnly.MeasuredHiddenDUEBase(); got != 0 {
		t.Fatalf("RF-only MeasuredHiddenDUEBase = %.4f, want 0", got)
	}
}

// TestApplyMeasuredDUE pins the measured correction arithmetic and its
// no-op conditions, including a static (non-measured) estimate.
func TestApplyMeasuredDUE(t *testing.T) {
	u := &UnitFITs{
		DUE:                 map[string]float64{"IADD": 0.5},
		MicroHiddenExposure: map[string]float64{"IADD": 2},
	}
	hid := &analysis.HiddenEstimate{Measured: true, DUE: 0.8, Exposure: 10}
	p := Prediction{DUEFIT: 0.02}
	c := p.ApplyMeasuredDUE(u, hid)
	// base 0.25 x DUEExposure (10 x 0.8 = 8) = 2.
	if math.Abs(c.DUECorrectionMeasured-2) > 1e-12 {
		t.Fatalf("DUECorrectionMeasured = %.4f, want 2", c.DUECorrectionMeasured)
	}
	if math.Abs(c.DUEFITCorrectedMeasured-2.02) > 1e-12 {
		t.Fatalf("DUEFITCorrectedMeasured = %.4f, want 2.02", c.DUEFITCorrectedMeasured)
	}
	if c.DUEFIT != p.DUEFIT || c.MeasuredHiddenDUE != hid.DUE {
		t.Fatal("uncorrected fields must be preserved alongside the correction")
	}
	if n := p.ApplyMeasuredDUE(nil, hid); n.DUECorrectionMeasured != 0 {
		t.Fatal("nil units must be a no-op")
	}
	if n := p.ApplyMeasuredDUE(u, nil); n.DUECorrectionMeasured != 0 {
		t.Fatal("nil hidden estimate must be a no-op")
	}
	static := &analysis.HiddenEstimate{DUE: 0.8, Exposure: 10}
	if n := p.ApplyMeasuredDUE(u, static); n.DUECorrectionMeasured != 0 {
		t.Fatal("a static estimate must not feed the measured correction")
	}
}
