// Package fit implements the paper's FIT-rate prediction model (§IV) and
// the beam-versus-simulation comparison of §VII:
//
//	FIT† = Σ_i f(INST_i)·AVF(INST_i)·FIT(INST_i)·φ  +  Σ_j f(MEM_j)·AVF(MEM_j)·FIT(MEM_j)
//	φ    = AchievedOccupancy · IPC                                   (Eq. 1–4)
//
// The instruction frequencies f come from profiling (Figure 1 / Table I),
// the per-unit FIT rates from beam campaigns over the §V micro-benchmarks
// (Figure 3), and the AVFs from the fault injectors (Figure 4). The
// memory summation only applies with ECC disabled (§IV-A). Comparisons
// use the paper's signed-ratio convention: positive when the beam
// measured more than the prediction, negative inverse otherwise.
package fit

import (
	"fmt"

	"gpurel/internal/beam"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/microbench"
	"gpurel/internal/profiler"
	"gpurel/internal/stats"
)

// UnitFITs collects the micro-benchmark beam measurements of one device:
// the Figure-3 data feeding the predictor.
type UnitFITs struct {
	Device string
	// SDC and DUE map micro-benchmark names to FIT rates (a.u.).
	SDC map[string]float64
	DUE map[string]float64
	// MicroAVF is each micro-benchmark's own SDC AVF, used to undo the
	// logical masking in its measured FIT (§V-A: always above 70%, 1.0
	// for the integer versions).
	MicroAVF map[string]float64
	// MicroPhi is each micro-benchmark's own parallelism factor
	// (occupancy x IPC). FIT(INST_i) in Equation 2 is the rate of a
	// fully exercised unit; since the micro-benchmark itself ran at
	// MicroPhi, the predictor normalizes by it before applying the
	// application's phi (Eq. 4).
	MicroPhi map[string]float64
	// MicroHiddenExposure is each micro-benchmark's DUE-weighted hidden
	// exposure from the measured-residency model (analysis.HiddenEstimate
	// .DUEExposure over the micro's golden telemetry). It is the
	// denominator MeasuredHiddenDUEBase calibrates the device's hidden
	// DUE rate against; absent (nil) when the study ran without
	// telemetry, in which case only the static correction is available.
	MicroHiddenExposure map[string]float64
	// RFPerByteSDC / RFPerByteDUE are the register-file storage FIT per
	// byte, derived from the RF micro-benchmark (reported per MB in
	// Figure 3); they are the FIT(MEM) term of Equation 3.
	RFPerByteSDC float64
	RFPerByteDUE float64
}

// FromMicroResults assembles UnitFITs from beam results over the §V
// micro-benchmark catalog. rfExposedBytes is the register-file storage
// the RF micro-benchmark exposed (threads x registers x 4).
// microHidden optionally carries each micro's measured hidden DUE
// exposure (analysis.HiddenEstimate.DUEExposure); nil disables the
// measured DUE correction.
func FromMicroResults(device string, results map[string]*beam.Result, microAVF, microPhi, microHidden map[string]float64, rfExposedBytes int) (*UnitFITs, error) {
	u := &UnitFITs{
		Device:   device,
		SDC:      make(map[string]float64),
		DUE:      make(map[string]float64),
		MicroAVF: make(map[string]float64),
		MicroPhi: make(map[string]float64),
	}
	if microHidden != nil {
		u.MicroHiddenExposure = make(map[string]float64)
	}
	for name, r := range results {
		u.SDC[name] = r.SDCFIT.Rate
		u.DUE[name] = r.DUEFIT.Rate
		avf := microAVF[name]
		if avf <= 0 {
			avf = 0.85 // the paper's floor: micro AVFs are >= 70%
		}
		if avf > 1 {
			avf = 1
		}
		u.MicroAVF[name] = avf
		phi := microPhi[name]
		if phi <= 0 {
			phi = 1
		}
		u.MicroPhi[name] = phi
		if u.MicroHiddenExposure != nil {
			if e := microHidden[name]; e > 0 {
				u.MicroHiddenExposure[name] = e
			}
		}
	}
	rf, ok := results["RF"]
	if !ok {
		return nil, fmt.Errorf("fit: micro results lack the RF benchmark")
	}
	if rfExposedBytes <= 0 {
		return nil, fmt.Errorf("fit: invalid RF exposure %d bytes", rfExposedBytes)
	}
	u.RFPerByteSDC = rf.SDCFIT.Rate / float64(rfExposedBytes)
	u.RFPerByteDUE = rf.DUEFIT.Rate / float64(rfExposedBytes)
	return u, nil
}

// Prediction is the model's output for one workload configuration.
type Prediction struct {
	Name   string
	ECC    bool
	SDCFIT float64
	DUEFIT float64

	// Breakdown.
	InstSDC float64
	InstDUE float64
	MemSDC  float64
	MemDUE  float64
	Phi     float64

	// Covered is the fraction of dynamic lane-ops whose functional unit
	// has a micro-benchmark FIT (the paper covers >70%; the remainder is
	// one of the acknowledged underestimation sources, §VII-A).
	Covered float64

	// Static hidden-resource DUE correction (§VII-B), filled by
	// ApplyStaticDUE; all three stay zero when no correction applied.
	StaticHiddenDUE float64 // static P(DUE | hidden strike) of the workload
	DUECorrection   float64 // additive hidden-resource DUE FIT (a.u.)
	DUEFITCorrected float64 // DUEFIT + DUECorrection

	// Measured-residency DUE correction, filled by ApplyMeasuredDUE from
	// the golden run's residency telemetry; zero when no telemetry-based
	// correction was applied.
	MeasuredHiddenDUE       float64 // measured P(DUE | hidden strike)
	DUECorrectionMeasured   float64 // additive hidden-resource DUE FIT (a.u.)
	DUEFITCorrectedMeasured float64 // DUEFIT + DUECorrectionMeasured

	// PerUnit attributes the instruction-term SDC FIT to units.
	PerUnit map[string]float64

	// DUEByMode splits the (uncorrected) DUEFIT across the typed DUE
	// mechanisms, in the proportions of the feeding campaign's typed-DUE
	// ledger (sim.DUEMode spellings as keys). Campaigns with no typed
	// DUEs leave every mode at zero.
	DUEByMode map[string]float64
}

// Predict applies Equations 1-4 to one workload.
//
// The AVF result may come from a proxy campaign when the paper's tooling
// cannot instrument the code directly (proprietary libraries on Kepler,
// FP16 anywhere); the caller selects the proxy, as the paper does
// (§III-D, §VI).
func Predict(cp *profiler.CodeProfile, avf *faultinj.Result, units *UnitFITs, ecc bool) Prediction {
	p := Prediction{
		Name:    cp.Name,
		ECC:     ecc,
		Phi:     cp.Phi(),
		PerUnit: make(map[string]float64),
	}
	var covered uint64
	// Numeric op order keeps the Eq. 2 accumulation deterministic (map
	// order would shift the sums by a ULP between runs).
	for op := isa.Op(0); int(op) < isa.OpCount; op++ {
		n, ok := cp.PerOpLane[op]
		if !ok {
			continue
		}
		unit := microbench.UnitFor(op)
		if unit == "" {
			continue // OTHERS: no measured unit FIT
		}
		fitSDC, ok := units.SDC[unit]
		if !ok {
			continue // unit not characterized on this device
		}
		covered += n
		f := float64(n) / float64(cp.TotalLaneOps)
		classAVF, ok := avf.PerClass[op.ClassOf()]
		if !ok {
			continue // injector never reached this class
		}
		// De-mask the micro-benchmark FIT by its own AVF (§V-A) and
		// express it at full utilization by dividing out the micro's
		// own phi before applying the application's (Eq. 4).
		scale := p.Phi / units.MicroPhi[unit]
		unitSDC := fitSDC / units.MicroAVF[unit]
		sdc := f * classAVF.SDCAVF.P * unitSDC * scale
		p.InstSDC += sdc
		p.PerUnit[unit] += sdc
		p.InstDUE += f * classAVF.DUEAVF.P * (units.DUE[unit] / units.MicroAVF[unit]) * scale
	}
	p.Covered = float64(covered) / float64(cp.TotalLaneOps)

	if !ecc {
		memAVFSDC := avf.SDCAVF.P
		memAVFDUE := avf.DUEAVF.P
		if gpr, ok := avf.ByMode[faultinj.ModeGPR]; ok && gpr.Injected > 0 {
			memAVFSDC = gpr.SDCAVF.P
			memAVFDUE = gpr.DUEAVF.P
		}
		mem := float64(cp.MemoryBytes)
		p.MemSDC = units.RFPerByteSDC * mem * memAVFSDC
		p.MemDUE = units.RFPerByteDUE * mem * memAVFDUE
	}
	p.SDCFIT = p.InstSDC + p.MemSDC
	p.DUEFIT = p.InstDUE + p.MemDUE
	mix := avf.DUEModes.Mix()
	p.DUEByMode = map[string]float64{
		"hang":            p.DUEFIT * mix.Hang,
		"illegal-address": p.DUEFIT * mix.IllegalAddress,
		"sync-error":      p.DUEFIT * mix.SyncError,
		"unattributed":    p.DUEFIT * mix.Unattributed,
	}
	return p
}

// Comparison pairs a beam measurement with its prediction, in the
// Figure-6 signed-ratio convention.
type Comparison struct {
	Name     string
	ECC      bool
	Tool     faultinj.Tool
	Measured float64
	Predict  float64
	Ratio    float64 // signed: +x beam is x times higher, -x prediction is
}

// Compare builds the Figure-6 data point for the SDC channel.
func Compare(name string, ecc bool, tool faultinj.Tool, beamFIT, predicted float64) Comparison {
	return Comparison{
		Name: name, ECC: ecc, Tool: tool,
		Measured: beamFIT, Predict: predicted,
		Ratio: stats.SignedRatio(beamFIT, predicted),
	}
}

// ClassMix sanity-checks that a profile's class fractions sum to one.
func ClassMix(cp *profiler.CodeProfile) map[isa.Class]float64 { return cp.Mix }
