package fit

import (
	"gpurel/internal/faultinj"
	"gpurel/internal/profiler"
)

// Optimization-matrix predictions: each matrix cell gets its own
// Equation 1-4 FIT prediction, driven by the cell's own code profile
// (the instruction mix changes with the configuration — that is the
// point of the matrix) and the cell's campaign AVFs. The cross-section-
// vs-optimization table then pairs, per configuration, the measured AVF
// movement with the modeled FIT movement and the static explainer
// columns that account for both.

// PredictOptCell applies Equations 1-4 to one matrix cell and records
// the FIT pair on the cell. With ECC on the memory term drops, which is
// the matrix's natural operating point: the knobs vary logic codegen,
// and the logic AVF is what the instruction term sees.
func PredictOptCell(cp *profiler.CodeProfile, cell *faultinj.OptCell, units *UnitFITs, ecc bool) Prediction {
	p := Predict(cp, cell.Dynamic, units, ecc)
	cell.PredSDCFIT = p.SDCFIT
	cell.PredDUEFIT = p.DUEFIT
	return p
}
