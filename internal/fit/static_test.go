package fit

import (
	"math"
	"testing"

	"gpurel/internal/analysis"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/profiler"
	"gpurel/internal/suite"
)

func TestStaticAVFResultShape(t *testing.T) {
	est := &analysis.Estimate{
		Name: "k", Sites: 3, SDC: 0.4, DUE: 0.1,
		PerClass: map[isa.Class]*analysis.ClassEstimate{
			isa.ClassFMA: {Class: isa.ClassFMA, Sites: 2, Weight: 10, SDC: 0.5, DUE: 0.2},
		},
	}
	res := StaticAVFResult(est, faultinj.NVBitFI, "K40c")
	if res.SDCAVF.P != 0.4 || res.DUEAVF.P != 0.1 {
		t.Fatalf("whole-program AVFs %v/%v, want 0.4/0.1", res.SDCAVF.P, res.DUEAVF.P)
	}
	ca := res.PerClass[isa.ClassFMA]
	if ca == nil || ca.SDCAVF.P != 0.5 || ca.DUEAVF.P != 0.2 {
		t.Fatalf("FMA class AVF = %+v, want 0.5/0.2", ca)
	}
	if res.SDCAVF.Trials != 0 || res.Injected != 0 {
		t.Fatal("synthetic result must carry zero trials/injections")
	}
	if _, ok := res.ByMode[faultinj.ModeGPR]; ok {
		t.Fatal("synthetic result must not fake a GPR-mode campaign")
	}
}

// TestPredictStaticTracksDynamic runs the full static path on a real
// kernel and checks the resulting FIT prediction lands in the same
// range as the injection-driven prediction — the drop-in property the
// static estimator exists for.
func TestPredictStaticTracksDynamic(t *testing.T) {
	dev := device.K40c()
	e, err := suite.Find(suite.Kepler(), "FMXM")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := kernels.NewRunner(e.Name, e.Build, dev, faultinj.NVBitFI.OptLevel())
	if err != nil {
		t.Fatal(err)
	}
	cp, err := profiler.Profile(runner)
	if err != nil {
		t.Fatal(err)
	}
	est, err := faultinj.StaticEstimate(runner, faultinj.NVBitFI)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := faultinj.Run(faultinj.Config{Tool: faultinj.NVBitFI, TotalFaults: 300, Seed: 11},
		e.Name, e.Build, dev)
	if err != nil {
		t.Fatal(err)
	}

	units := fakeUnits()
	stat := PredictStatic(cp, est, faultinj.NVBitFI, dev.Name, units, true)
	inj := Predict(cp, dyn, units, true)

	if stat.SDCFIT <= 0 || math.IsNaN(stat.SDCFIT) {
		t.Fatalf("static SDC FIT = %g, want positive", stat.SDCFIT)
	}
	if stat.Phi != inj.Phi || stat.Covered != inj.Covered {
		t.Fatalf("static path changed profile terms: phi %g/%g covered %g/%g",
			stat.Phi, inj.Phi, stat.Covered, inj.Covered)
	}
	// The AVF sources agree within faultinj.CrossValTolerance in
	// absolute AVF terms, so the predictions must agree within a small
	// multiplicative band.
	if ratio := stat.SDCFIT / inj.SDCFIT; ratio < 1.0/3 || ratio > 3 {
		t.Fatalf("static SDC FIT %g vs dynamic %g (ratio %.2f) diverge beyond 3x",
			stat.SDCFIT, inj.SDCFIT, ratio)
	}
}
