package report

import (
	"strings"
	"testing"

	"gpurel/internal/beam"
	"gpurel/internal/core"
	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/fit"
	"gpurel/internal/isa"
	"gpurel/internal/profiler"
	"gpurel/internal/stats"
)

// fakeStudy builds a minimal synthetic DeviceStudy covering every
// renderer path without running any campaign.
func fakeStudy() *core.DeviceStudy {
	dev := device.K40c()
	mkBeam := func(sdc, due int) *beam.Result {
		return &beam.Result{
			Name: "FMXM", Device: dev.Name, Trials: 100,
			SDC: sdc, DUE: due,
			SDCFIT: stats.NewRateEstimate(sdc, 100),
			DUEFIT: stats.NewRateEstimate(due, 100),
		}
	}
	ds := &core.DeviceStudy{
		Dev: dev,
		Profiles: map[string]*profiler.CodeProfile{
			"FMXM": {
				Name: "FMXM", SharedBytes: 0, RegsPerThread: 13,
				IPC: 0.45, Occupancy: 0.8,
				Mix:          map[isa.Class]float64{isa.ClassFMA: 0.2, isa.ClassLDST: 0.4, isa.ClassINT: 0.3, isa.ClassOTHERS: 0.1},
				PerOpLane:    map[isa.Op]uint64{isa.OpFFMA: 200},
				TotalLaneOps: 1000,
			},
			"NW": {
				Name: "NW", SharedBytes: 2268, RegsPerThread: 20,
				IPC: 0.1, Occupancy: 0.12,
				Mix:          map[isa.Class]float64{isa.ClassINT: 0.7, isa.ClassLDST: 0.2, isa.ClassOTHERS: 0.1},
				PerOpLane:    map[isa.Op]uint64{isa.OpIADD: 700},
				TotalLaneOps: 1000,
			},
		},
		MicroBeam: map[string]*beam.Result{
			"FADD": mkBeam(20, 4),
			"IADD": mkBeam(60, 9),
			"RF":   mkBeam(90, 6),
		},
		AVF: map[faultinj.Tool]map[string]*faultinj.Result{
			faultinj.Sassifi: {
				"FMXM": {
					Name: "FMXM", Tool: faultinj.Sassifi,
					Tally: faultinj.Tally{
						Injected: 100, SDC: 40, DUE: 10, Masked: 50,
						SDCAVF: stats.NewProportion(40, 100),
						DUEAVF: stats.NewProportion(10, 100),
					},
				},
			},
			faultinj.NVBitFI: {},
		},
		Beam: map[core.BeamKey]*beam.Result{
			{Code: "FMXM", ECC: false}: mkBeam(70, 30),
			{Code: "FMXM", ECC: true}:  mkBeam(15, 35),
		},
		Comparisons: []fit.Comparison{
			fit.Compare("FMXM", false, faultinj.Sassifi, 0.7, 0.5),
			fit.Compare("NW", true, faultinj.Sassifi, 0.0, 0.1), // zero events
		},
		DUEUnderestimate: map[bool]float64{false: 120, true: 629},
	}
	return ds
}

func TestTableIRendering(t *testing.T) {
	out := TableI(fakeStudy(), false)
	for _, want := range []string{"Table I", "FMXM", "0.45", "0.80", "NW", "2.2KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Rendering(t *testing.T) {
	out := Figure1(fakeStudy(), false)
	if !strings.Contains(out, "FMA") || !strings.Contains(out, "70.0%") {
		t.Errorf("Figure 1 rendering wrong:\n%s", out)
	}
}

func TestFigure3Normalization(t *testing.T) {
	out := Figure3(fakeStudy(), false)
	// Lowest DUE is FADD's 0.04; its own DUE renders as 1.00.
	if !strings.Contains(out, "1.00") {
		t.Errorf("Figure 3 should normalize to the lowest DUE:\n%s", out)
	}
	if !strings.Contains(out, "RF") {
		t.Errorf("Figure 3 missing RF row:\n%s", out)
	}
}

func TestFigure4Rendering(t *testing.T) {
	out := Figure4(fakeStudy(), false)
	if !strings.Contains(out, "SASSIFI") || !strings.Contains(out, "0.400") {
		t.Errorf("Figure 4 wrong:\n%s", out)
	}
}

func TestFigure5Rendering(t *testing.T) {
	out := Figure5(fakeStudy(), false)
	if !strings.Contains(out, "OFF") || !strings.Contains(out, "ON") {
		t.Errorf("Figure 5 must show both ECC states:\n%s", out)
	}
}

func TestFigure6ZeroEventHandling(t *testing.T) {
	out := Figure6(fakeStudy(), false)
	if !strings.Contains(out, "n/a (0 events)") {
		t.Errorf("zero-event comparisons must render as n/a:\n%s", out)
	}
	if !strings.Contains(out, "+1.4x") {
		t.Errorf("FMXM ratio missing:\n%s", out)
	}
	if !strings.Contains(out, "average difference") {
		t.Errorf("group averages missing:\n%s", out)
	}
}

func TestDUETableRendering(t *testing.T) {
	out := DUETable(fakeStudy(), false)
	if !strings.Contains(out, "120x") || !strings.Contains(out, "629x") {
		t.Errorf("DUE table wrong:\n%s", out)
	}
}

func TestCSVMode(t *testing.T) {
	out := TableI(fakeStudy(), true)
	if !strings.HasPrefix(out, "code,shared,regs,IPC,occupancy") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
	if strings.Contains(out, "—") || strings.Contains(out, "Table I") {
		t.Error("CSV must not contain decoration")
	}
}

func TestFullIncludesEverything(t *testing.T) {
	out := Full(fakeStudy(), false)
	for _, sec := range []string{"Table I", "Figure 1", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "§VII-B"} {
		if !strings.Contains(out, sec) {
			t.Errorf("Full output missing %q", sec)
		}
	}
}
