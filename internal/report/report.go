// Package report renders the study's artifacts — Table I and Figures 1,
// 3, 4, 5, 6 of the paper plus the §VII-B DUE analysis — as aligned
// ASCII tables and as CSV for external plotting.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gpurel/internal/analysis"
	"gpurel/internal/core"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/microbench"
	"gpurel/internal/patterns"
	"gpurel/internal/stats"
	"gpurel/internal/suite"
)

// table accumulates an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(b *strings.Builder) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func (t *table) csv(b *strings.Builder) {
	b.WriteString(strings.Join(t.header, ",") + "\n")
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ",") + "\n")
	}
}

// suiteOrder returns Table I's workload ordering for a device.
func suiteOrder(ds *core.DeviceStudy) []string {
	var names []string
	for _, e := range suite.ForDevice(ds.Dev) {
		names = append(names, e.Name)
	}
	return names
}

// TableI renders the workload characterization (shared memory, register
// file, IPC, occupancy) of one device.
func TableI(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "shared", "regs", "IPC", "occupancy"}}
	for _, name := range suiteOrder(ds) {
		cp, ok := ds.Profiles[name]
		if !ok {
			continue
		}
		t.add(name, fmtBytes(cp.SharedBytes), fmt.Sprintf("%d", cp.RegsPerThread),
			fmt.Sprintf("%.2f", cp.IPC), fmt.Sprintf("%.2f", cp.Occupancy))
	}
	return finish(t, csv, fmt.Sprintf("Table I — code characteristics on %s", ds.Dev.Name))
}

// Figure1 renders the per-code instruction-class mix.
func Figure1(ds *core.DeviceStudy, csv bool) string {
	classes := isa.AllClasses()
	header := []string{"code"}
	for _, c := range classes {
		header = append(header, c.String())
	}
	t := &table{header: header}
	for _, name := range suiteOrder(ds) {
		cp, ok := ds.Profiles[name]
		if !ok {
			continue
		}
		row := []string{name}
		for _, c := range classes {
			row = append(row, fmt.Sprintf("%.1f%%", 100*cp.Mix[c]))
		}
		t.add(row...)
	}
	return finish(t, csv, fmt.Sprintf("Figure 1 — instruction mix on %s", ds.Dev.Name))
}

// Figure3 renders the micro-benchmark FIT rates, normalized to the
// device's lowest measured DUE rate, as in the paper.
func Figure3(ds *core.DeviceStudy, csv bool) string {
	ref := math.Inf(1)
	for _, r := range ds.MicroBeam {
		if r.DUEFIT.Rate > 0 && r.DUEFIT.Rate < ref {
			ref = r.DUEFIT.Rate
		}
	}
	if math.IsInf(ref, 1) {
		ref = 1
	}
	t := &table{header: []string{"micro", "SDC [a.u.]", "DUE [a.u.]", "SDC CI95"}}
	for _, m := range microbench.Catalog(ds.Dev) {
		r, ok := ds.MicroBeam[m.Name]
		if !ok {
			continue
		}
		t.add(m.Name,
			fmt.Sprintf("%.2f", r.SDCFIT.Rate/ref),
			fmt.Sprintf("%.2f", r.DUEFIT.Rate/ref),
			fmt.Sprintf("[%.2f,%.2f]", r.SDCFIT.CI.Lower/ref, r.SDCFIT.CI.Upper/ref))
	}
	return finish(t, csv, fmt.Sprintf(
		"Figure 3 — micro-benchmark FIT on %s (normalized to lowest DUE; RF measured with ECC off)", ds.Dev.Name))
}

// Figure4 renders the per-code AVFs per injector.
func Figure4(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "tool", "SDC AVF", "DUE AVF", "masked", "n"}}
	tools := []faultinj.Tool{faultinj.Sassifi, faultinj.NVBitFI}
	for _, name := range suiteOrder(ds) {
		for _, tool := range tools {
			r, ok := ds.AVF[tool][name]
			if !ok {
				continue
			}
			t.add(name, tool.String(),
				fmt.Sprintf("%.3f±%.3f", r.SDCAVF.P, r.SDCAVF.HalfWidth()),
				fmt.Sprintf("%.3f±%.3f", r.DUEAVF.P, r.DUEAVF.HalfWidth()),
				fmt.Sprintf("%.3f", float64(r.Masked)/float64(r.Injected)),
				fmt.Sprintf("%d", r.Injected))
		}
	}
	return finish(t, csv, fmt.Sprintf("Figure 4 — AVF on %s", ds.Dev.Name))
}

// Figure5 renders the beam-measured code FIT rates, normalized to the
// lowest micro-benchmark DUE as in Figure 3.
func Figure5(ds *core.DeviceStudy, csv bool) string {
	ref := math.Inf(1)
	for _, r := range ds.MicroBeam {
		if r.DUEFIT.Rate > 0 && r.DUEFIT.Rate < ref {
			ref = r.DUEFIT.Rate
		}
	}
	if math.IsInf(ref, 1) {
		ref = 1
	}
	t := &table{header: []string{"code", "ECC", "SDC [a.u.]", "DUE [a.u.]", "SDC events", "trials"}}
	for _, ecc := range []bool{false, true} {
		for _, name := range suiteOrder(ds) {
			r, ok := ds.Beam[core.BeamKey{Code: name, ECC: ecc}]
			if !ok {
				continue
			}
			t.add(name, eccLabel(ecc),
				fmt.Sprintf("%.3f", r.SDCFIT.Rate/ref),
				fmt.Sprintf("%.3f", r.DUEFIT.Rate/ref),
				fmt.Sprintf("%d", r.SDC), fmt.Sprintf("%d", r.Trials))
		}
	}
	return finish(t, csv, fmt.Sprintf("Figure 5 — beam FIT rates on %s (a.u.)", ds.Dev.Name))
}

// Figure6 renders the signed beam/prediction SDC ratios plus the
// per-group averages the paper quotes in §VII-A.
func Figure6(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "ECC", "tool", "beam SDC", "predicted", "ratio"}}
	cs := aliasComparisons(ds)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].ECC != cs[j].ECC {
			return !cs[i].ECC
		}
		if cs[i].Tool != cs[j].Tool {
			return cs[i].Tool < cs[j].Tool
		}
		return cs[i].Name < cs[j].Name
	})
	groups := map[string][]float64{}
	for _, c := range cs {
		ratio := "n/a (0 events)"
		if !math.IsInf(c.Ratio, 0) && c.Ratio != 0 {
			ratio = fmt.Sprintf("%+.1fx", c.Ratio)
			key := fmt.Sprintf("%s ECC %s", c.Tool, eccLabel(c.ECC))
			groups[key] = append(groups[key], c.Ratio)
		}
		t.add(c.Name, eccLabel(c.ECC), c.Tool.String(),
			fmt.Sprintf("%.4f", c.Measured), fmt.Sprintf("%.4f", c.Predict), ratio)
	}
	var b strings.Builder
	b.WriteString(finish(t, csv, fmt.Sprintf("Figure 6 — beam vs fault-simulation SDC prediction on %s", ds.Dev.Name)))
	if !csv {
		var keys []string
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(fmt.Sprintf("  average difference, %s: %+.1fx (geometric, %d codes)\n",
				k, stats.GeomMeanAbsSigned(groups[k]), len(groups[k])))
		}
	}
	return b.String()
}

// ComparisonAlias re-exports fit.Comparison fields for sorting.
type ComparisonAlias struct {
	Name     string
	ECC      bool
	Tool     faultinj.Tool
	Measured float64
	Predict  float64
	Ratio    float64
}

func aliasComparisons(ds *core.DeviceStudy) []ComparisonAlias {
	out := make([]ComparisonAlias, 0, len(ds.Comparisons))
	for _, c := range ds.Comparisons {
		out = append(out, ComparisonAlias{
			Name: c.Name, ECC: c.ECC, Tool: c.Tool,
			Measured: c.Measured, Predict: c.Predict, Ratio: c.Ratio,
		})
	}
	return out
}

// DUETable renders the §VII-B DUE underestimation analysis: the
// uncorrected Eq. 1-4 factor next to the factors after the static and
// the measured-residency hidden-resource corrections.
func DUETable(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"device", "ECC", "beam DUE / predicted DUE",
		"after static correction", "after measured correction"}}
	for _, ecc := range []bool{false, true} {
		v, ok := ds.DUEUnderestimate[ecc]
		if !ok {
			continue
		}
		corr := "n/a"
		if c, ok := ds.DUECorrectedUnderestimate[ecc]; ok {
			corr = fmt.Sprintf("%.1fx", c)
		}
		meas := "n/a"
		if m, ok := ds.DUEMeasuredUnderestimate[ecc]; ok {
			meas = fmt.Sprintf("%.1fx", m)
		}
		t.add(ds.Dev.Name, eccLabel(ecc), fmt.Sprintf("%.0fx", v), corr, meas)
	}
	return finish(t, csv,
		"§VII-B — beam DUE rate vs prediction (faults in hidden resources dominate DUEs)")
}

// DUEGapTable renders the per-code DUE channel: beam measurement,
// uncorrected Eq. 1-4 prediction, static- and measured-residency-
// corrected predictions, and the underestimation factor under each.
// The corrected factors being consistently smaller is the tentpole
// claim of the hidden-resource model; rows where no hidden estimate
// exists show the uncorrected numbers only.
func DUEGapTable(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "ECC", "beam DUE", "predicted",
		"corrected", "corrected (meas)",
		"under (pred)", "under (corr)", "under (meas)"}}
	for _, ecc := range []bool{false, true} {
		for _, name := range suiteOrder(ds) {
			beamRes, ok := ds.Beam[core.BeamKey{Code: name, ECC: ecc}]
			if !ok {
				continue
			}
			pred, ok := ds.Predictions[core.PredKey{Code: name, ECC: ecc, Tool: faultinj.NVBitFI}]
			if !ok {
				continue
			}
			under := func(p float64) string {
				if p <= 0 || beamRes.DUEFIT.Rate <= 0 {
					return "n/a"
				}
				return fmt.Sprintf("%.0fx", beamRes.DUEFIT.Rate/p)
			}
			corrected := "n/a"
			if pred.DUEFITCorrected > 0 {
				corrected = fmt.Sprintf("%.4f", pred.DUEFITCorrected)
			}
			measured := "n/a"
			if pred.DUEFITCorrectedMeasured > 0 {
				measured = fmt.Sprintf("%.4f", pred.DUEFITCorrectedMeasured)
			}
			t.add(name, eccLabel(ecc),
				fmt.Sprintf("%.4f", beamRes.DUEFIT.Rate),
				fmt.Sprintf("%.4f", pred.DUEFIT),
				corrected, measured,
				under(pred.DUEFIT), under(pred.DUEFITCorrected),
				under(pred.DUEFITCorrectedMeasured))
		}
	}
	return finish(t, csv, fmt.Sprintf(
		"§VII-B per code — DUE underestimation before/after the hidden-resource corrections (%s, NVBitFI)",
		ds.Dev.Name))
}

// ResidencyTable renders the measured-residency telemetry per code: the
// golden run's execution-weighted occupancy signals next to the strike
// shares and conditional DUE the measured hidden-resource model derives
// from them.
func ResidencyTable(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "sched util", "fetch", "div depth",
		"load depth", "warps/SMcyc", "SMcyc/cyc",
		"sched", "pipe", "mem", "host", "P(DUE|hidden)", "exposure"}}
	for _, name := range suiteOrder(ds) {
		cp, ok := ds.Profiles[name]
		if !ok {
			continue
		}
		h, ok := ds.MeasuredHidden[name]
		if !ok {
			continue
		}
		r := cp.Residency
		t.add(name,
			fmt.Sprintf("%.3f", r.SchedUtil),
			fmt.Sprintf("%.3f", r.FetchRate),
			fmt.Sprintf("%.3f", r.DivDepth),
			fmt.Sprintf("%.3f", r.LoadDepth),
			fmt.Sprintf("%.2f", r.WarpsPerSMCycle),
			fmt.Sprintf("%.3f", r.SMCyclesPerCycle),
			fmt.Sprintf("%.3f", h.SchedulerShare),
			fmt.Sprintf("%.3f", h.InstrPipeShare),
			fmt.Sprintf("%.3f", h.MemPathShare),
			fmt.Sprintf("%.3f", h.HostIfaceShare),
			fmt.Sprintf("%.3f", h.DUE),
			fmt.Sprintf("%.2f", h.Exposure))
	}
	return finish(t, csv, fmt.Sprintf(
		"Measured residency telemetry on %s (golden-run occupancies, measured strike shares, conditional DUE)",
		ds.Dev.Name))
}

// HiddenDUE renders the static hidden-resource model per code: the
// three structural proxies, the implied strike shares, and the combined
// static P(DUE | hidden strike).
func HiddenDUE(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "fetch", "div depth", "load",
		"sched", "pipe", "mem", "host", "P(DUE|hidden)"}}
	for _, name := range suiteOrder(ds) {
		h, ok := ds.StaticHidden[name]
		if !ok {
			continue
		}
		t.add(name,
			fmt.Sprintf("%.3f", h.FetchExposure),
			fmt.Sprintf("%.3f", h.DivergenceDepth),
			fmt.Sprintf("%.3f", h.LoadPressure),
			fmt.Sprintf("%.3f", h.SchedulerShare),
			fmt.Sprintf("%.3f", h.InstrPipeShare),
			fmt.Sprintf("%.3f", h.MemPathShare),
			fmt.Sprintf("%.3f", h.HostIfaceShare),
			fmt.Sprintf("%.3f", h.DUE))
	}
	return finish(t, csv, fmt.Sprintf(
		"Static hidden-resource DUE model on %s (proxies, strike shares, conditional DUE)", ds.Dev.Name))
}

// Full renders every artifact of a device study.
func Full(ds *core.DeviceStudy, csv bool) string {
	var b strings.Builder
	b.WriteString(TableI(ds, csv))
	b.WriteString("\n")
	b.WriteString(Figure1(ds, csv))
	b.WriteString("\n")
	b.WriteString(Figure3(ds, csv))
	b.WriteString("\n")
	b.WriteString(Figure4(ds, csv))
	b.WriteString("\n")
	b.WriteString(Figure5(ds, csv))
	b.WriteString("\n")
	b.WriteString(Figure6(ds, csv))
	b.WriteString("\n")
	b.WriteString(HiddenDUE(ds, csv))
	b.WriteString("\n")
	b.WriteString(ResidencyTable(ds, csv))
	b.WriteString("\n")
	b.WriteString(DUEGapTable(ds, csv))
	b.WriteString("\n")
	b.WriteString(DUETable(ds, csv))
	b.WriteString("\n")
	b.WriteString(CrossValTable(ds, csv))
	b.WriteString("\n")
	b.WriteString(StudyBitBand(ds, csv))
	b.WriteString("\n")
	b.WriteString(OptTable(ds, csv))
	b.WriteString("\n")
	b.WriteString(OptPressureTable(ds, csv))
	b.WriteString("\n")
	b.WriteString(PatternsTable(ds, csv))
	b.WriteString("\n")
	b.WriteString(TwoLevelTable(ds, csv))
	b.WriteString("\n")
	b.WriteString(DUEModesTable(ds, csv))
	return b.String()
}

// dueModesRow appends one typed-DUE ledger row: the DUE count and the
// normalized mode shares. Ledgers with no DUEs are omitted.
func dueModesRow(t *table, code, model string, l patterns.DUELedger) {
	n := l.DUEs()
	if n == 0 {
		return
	}
	mix := l.Mix()
	t.add(code, model,
		fmt.Sprintf("%d", n),
		fmt.Sprintf("%.3f", mix.Hang),
		fmt.Sprintf("%.3f", mix.IllegalAddress),
		fmt.Sprintf("%.3f", mix.SyncError),
		fmt.Sprintf("%.3f", mix.Unattributed))
}

// DUEModesTable renders the DUE-mode taxonomy per workload: the static
// analyzer's proven mode shares (model column "static"; the dues column
// shows its site count) next to each campaign's typed-DUE ledger
// normalized over its DUE trials. Rows with no DUEs are omitted; beam
// rows carry the ECC state in the model column.
func DUEModesTable(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "model", "dues", "hang",
		"illegal-addr", "sync-err", "unattr"}}
	tools := []faultinj.Tool{faultinj.Sassifi, faultinj.NVBitFI}
	for _, name := range suiteOrder(ds) {
		if e, ok := ds.StaticDUEModes[name]; ok && e != nil && e.DUEMass > 0 {
			t.add(name, "static",
				fmt.Sprintf("%d", e.Sites),
				fmt.Sprintf("%.3f", e.Share(analysis.ModeHang)),
				fmt.Sprintf("%.3f", e.Share(analysis.ModeIllegalAddress)),
				fmt.Sprintf("%.3f", e.Share(analysis.ModeSyncError)),
				fmt.Sprintf("%.3f", e.Share(analysis.ModeUnattributed)))
		}
		for _, tool := range tools {
			if r, ok := ds.AVF[tool][name]; ok {
				dueModesRow(t, name, tool.String(), r.DUEModes)
			}
		}
		for _, ecc := range []bool{false, true} {
			if r, ok := ds.Beam[core.BeamKey{Code: name, ECC: ecc}]; ok {
				dueModesRow(t, name, "beam ECC "+eccLabel(ecc), r.DUEModes)
			}
		}
	}
	return finish(t, csv, fmt.Sprintf(
		"DUE-mode taxonomy on %s (static proven shares vs typed campaign DUEs; dues column is sites for the static rows)", ds.Dev.Name))
}

// DUEModeCrossValidation renders the static-vs-injection DUE-mode
// agreement table: both share distributions side by side, the
// L-infinity delta, and the tolerance verdict. Campaigns below
// faultinj.DUEModeMinDUEs typed DUEs are marked unmeasurable and agree
// vacuously.
func DUEModeCrossValidation(cvs []*faultinj.DUEModeCrossVal, csv bool) string {
	t := &table{header: []string{"code", "device",
		"st hang", "st ill", "st sync", "st unattr",
		"dyn hang", "dyn ill", "dyn sync", "dyn unattr",
		"delta", "dues", "within tol"}}
	for _, cv := range cvs {
		agree := "yes"
		switch {
		case !cv.Measurable():
			agree = "n/a"
		case !cv.Agrees():
			agree = "NO"
		}
		t.add(cv.Name, cv.Device,
			fmt.Sprintf("%.3f", cv.StaticMix.Hang),
			fmt.Sprintf("%.3f", cv.StaticMix.IllegalAddress),
			fmt.Sprintf("%.3f", cv.StaticMix.SyncError),
			fmt.Sprintf("%.3f", cv.StaticMix.Unattributed),
			fmt.Sprintf("%.3f", cv.DynamicMix.Hang),
			fmt.Sprintf("%.3f", cv.DynamicMix.IllegalAddress),
			fmt.Sprintf("%.3f", cv.DynamicMix.SyncError),
			fmt.Sprintf("%.3f", cv.DynamicMix.Unattributed),
			fmt.Sprintf("%.3f", cv.Delta()),
			fmt.Sprintf("%d", cv.DynamicDUEs),
			agree)
	}
	return finish(t, csv, fmt.Sprintf(
		"Static vs injection DUE-mode shares (L-inf tolerance %.2f, measurable at >= %d typed DUEs)",
		faultinj.DUEModeTolerance, faultinj.DUEModeMinDUEs))
}

// patternsRow appends one ledger row to the patterns table.
func patternsRow(t *table, code, model string, l patterns.Ledger) {
	if l.SDCs() == 0 {
		return
	}
	t.add(code, model,
		fmt.Sprintf("%d", l.SDCs()),
		fmt.Sprintf("%d", l.Single),
		fmt.Sprintf("%d", l.SameRow),
		fmt.Sprintf("%d", l.SameCol),
		fmt.Sprintf("%d", l.Block),
		fmt.Sprintf("%d", l.Scattered),
		fmt.Sprintf("%d", l.Critical),
		fmt.Sprintf("%d", l.Tolerable),
		fmt.Sprintf("%d", l.Unclassified))
}

// PatternsTable renders the SDC pattern taxonomy per workload and fault
// model: the spatial footprint (single element, same row, same column,
// aligned block, scattered) and the magnitude band (critical vs
// tolerable) of every SDC each campaign produced. Rows with no SDCs are
// omitted; beam rows carry the ECC state in the model column.
func PatternsTable(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "model", "sdc", "single", "same-row",
		"same-col", "block", "scattered", "critical", "tolerable", "uncls"}}
	tools := []faultinj.Tool{faultinj.Sassifi, faultinj.NVBitFI}
	for _, name := range suiteOrder(ds) {
		for _, tool := range tools {
			if r, ok := ds.AVF[tool][name]; ok {
				patternsRow(t, name, tool.String(), r.Patterns)
			}
		}
		for _, ecc := range []bool{false, true} {
			if r, ok := ds.Beam[core.BeamKey{Code: name, ECC: ecc}]; ok {
				patternsRow(t, name, "beam ECC "+eccLabel(ecc), r.Patterns)
			}
		}
	}
	return finish(t, csv, fmt.Sprintf(
		"SDC pattern taxonomy on %s (spatial footprint and magnitude per fault model)", ds.Dev.Name))
}

// TwoLevelTable renders the two-level estimator against the exhaustive
// NVBitFI campaigns: the propagated SDC/DUE AVFs, the signed SDC delta,
// trials spent on each side, the resulting speedup, and whether the
// delta sits inside the documented tolerance.
func TwoLevelTable(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{"code", "exact SDC", "2-level SDC", "delta",
		"exact DUE", "2-level DUE", "sites", "trials", "exact n", "speedup",
		"critical frac", "within tol"}}
	for _, name := range suiteOrder(ds) {
		tl, ok := ds.TwoLevel[name]
		if !ok {
			continue
		}
		exact, ok := ds.AVF[faultinj.NVBitFI][name]
		if !ok {
			continue
		}
		agree := "yes"
		if !tl.Agrees(exact) {
			agree = "NO"
		}
		t.add(name,
			fmt.Sprintf("%.3f", exact.SDCAVF.P),
			fmt.Sprintf("%.3f", tl.SDCAVF),
			fmt.Sprintf("%+.3f", tl.Delta(exact)),
			fmt.Sprintf("%.3f", exact.DUEAVF.P),
			fmt.Sprintf("%.3f", tl.DUEAVF),
			fmt.Sprintf("%d", tl.Sites),
			fmt.Sprintf("%d", tl.Trials),
			fmt.Sprintf("%d", exact.Injected),
			fmt.Sprintf("%.1fx", tl.Speedup(exact)),
			fmt.Sprintf("%.3f", tl.Patterns.Critical),
			agree)
	}
	return finish(t, csv, fmt.Sprintf(
		"Two-level propagation vs exhaustive NVBitFI on %s (tolerance ±%.2f)",
		ds.Dev.Name, faultinj.TwoLevelTolerance))
}

// OptTable renders the cross-section-vs-optimization matrix of one
// device: per (code, configuration), the measured and static unmasked
// AVFs, the per-configuration Eq. 1-4 FIT predictions, and the static
// explanation columns — mean live-range length, spill exposure, ACE
// mass — that account for the movement. The ordering column carries the
// matrix-level static-vs-injection agreement (concordant/discordant
// pairs at the documented tie width), repeated per row for CSV use.
func OptTable(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{
		"code", "config", "instrs", "dyn unmasked", "static unmasked",
		"pred SDC FIT", "pred DUE FIT", "mean live-range", "spill exposure",
		"ACE mass", "ordering"}}
	for _, name := range suiteOrder(ds) {
		m, ok := ds.OptMatrix[name]
		if !ok {
			continue
		}
		c, d := m.OrderingAgreement(faultinj.OptOrderingEps)
		ord := fmt.Sprintf("%dc/%dd", c, d)
		if d > 0 {
			ord += " DISAGREE"
		}
		for _, cell := range m.Cells {
			t.add(name, cell.Opt.String(),
				fmt.Sprintf("%d", cell.Explain.Instrs),
				fmt.Sprintf("%.3f", cell.DynamicUnmasked()),
				fmt.Sprintf("%.3f", cell.StaticUnmasked()),
				fmt.Sprintf("%.4g", cell.PredSDCFIT),
				fmt.Sprintf("%.4g", cell.PredDUEFIT),
				fmt.Sprintf("%.1f", cell.Explain.MeanLiveRange),
				fmt.Sprintf("%d", cell.Explain.SpillExposure),
				fmt.Sprintf("%.0f", cell.Explain.ACEMass),
				ord)
		}
	}
	return finish(t, csv, fmt.Sprintf("Cross section vs optimization — %s", ds.Dev.Name))
}

// OptPressureTable renders the AVF-vs-register-pressure view of the
// same matrix: per (code, configuration), register demand, live-
// register pressure, and the spill-window statistics, against both AVF
// views — the table behind the spill variant's residency story.
func OptPressureTable(ds *core.DeviceStudy, csv bool) string {
	t := &table{header: []string{
		"code", "config", "regs", "mean pressure", "max pressure",
		"spill pairs", "spill exposure", "mean spill gap",
		"dyn unmasked", "static unmasked"}}
	for _, name := range suiteOrder(ds) {
		m, ok := ds.OptMatrix[name]
		if !ok {
			continue
		}
		for _, cell := range m.Cells {
			t.add(name, cell.Opt.String(),
				fmt.Sprintf("%d", cell.Explain.Regs),
				fmt.Sprintf("%.2f", cell.Explain.MeanPressure),
				fmt.Sprintf("%d", cell.Explain.MaxPressure),
				fmt.Sprintf("%d", cell.Explain.SpillPairs),
				fmt.Sprintf("%d", cell.Explain.SpillExposure),
				fmt.Sprintf("%.1f", cell.Explain.MeanSpillGap),
				fmt.Sprintf("%.3f", cell.DynamicUnmasked()),
				fmt.Sprintf("%.3f", cell.StaticUnmasked()))
		}
	}
	return finish(t, csv, fmt.Sprintf("AVF vs register pressure — %s", ds.Dev.Name))
}

// OptMatrixSweep renders standalone matrices (cmd/gpurel-ablate's
// -opt-matrix mode) without a full device study: AVF views plus the
// full explainer per cell.
func OptMatrixSweep(ms []*faultinj.OptMatrix, csv bool) string {
	t := &table{header: []string{
		"device", "code", "config", "instrs", "regs", "dyn unmasked",
		"static unmasked", "mean live-range", "max live-range",
		"mean pressure", "spill exposure", "ACE mass", "dead-bit mass", "tau"}}
	for _, m := range ms {
		tau := m.OrderingTau(faultinj.OptOrderingEps)
		for _, cell := range m.Cells {
			t.add(m.Device, m.Name, cell.Opt.String(),
				fmt.Sprintf("%d", cell.Explain.Instrs),
				fmt.Sprintf("%d", cell.Explain.Regs),
				fmt.Sprintf("%.3f", cell.DynamicUnmasked()),
				fmt.Sprintf("%.3f", cell.StaticUnmasked()),
				fmt.Sprintf("%.1f", cell.Explain.MeanLiveRange),
				fmt.Sprintf("%d", cell.Explain.MaxLiveRange),
				fmt.Sprintf("%.2f", cell.Explain.MeanPressure),
				fmt.Sprintf("%d", cell.Explain.SpillExposure),
				fmt.Sprintf("%.0f", cell.Explain.ACEMass),
				fmt.Sprintf("%.0f", cell.Explain.DeadBitMass),
				fmt.Sprintf("%.2f", tau))
		}
	}
	return finish(t, csv, "Optimization-matrix sweep")
}

func finish(t *table, csv bool, title string) string {
	var b strings.Builder
	if csv {
		t.csv(&b)
		return b.String()
	}
	b.WriteString(title + "\n")
	t.render(&b)
	return b.String()
}

func fmtBytes(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%.1fKB", float64(n)/1024)
	}
	return fmt.Sprintf("%dB", n)
}

func eccLabel(ecc bool) string {
	if ecc {
		return "ON"
	}
	return "OFF"
}

// Devices returns the display devices in paper order.
func Devices(s *core.Study) []*core.DeviceStudy {
	return []*core.DeviceStudy{s.Kepler, s.Volta}
}

// CrossValidation renders the static-versus-injection AVF comparison
// emitted by `gpurel-lint --cross-validate`: one row per workload with
// both unmasked AVF views (bit-resolved and, when present, the legacy
// scalar estimator), the deltas, and whether the bit-resolved view sits
// inside the documented tolerance.
func CrossValidation(cvs []*faultinj.CrossValidation, csv bool) string {
	t := &table{header: []string{
		"code", "tool", "static SDC", "static DUE", "static unmasked",
		"scalar unmasked", "dyn SDC", "dyn DUE", "dyn unmasked",
		"delta", "scalar delta", "within tol", "faults"}}
	for _, cv := range cvs {
		agree := "yes"
		if !cv.Agrees() {
			agree = "NO"
		}
		scalarUn, scalarDelta := "-", "-"
		if cv.Scalar != nil {
			scalarUn = fmt.Sprintf("%.3f", cv.Scalar.Unmasked())
			scalarDelta = fmt.Sprintf("%+.3f", cv.Scalar.Unmasked()-cv.DynamicUnmasked())
		}
		t.add(cv.Name, cv.Tool.String(),
			fmt.Sprintf("%.3f", cv.Static.SDC),
			fmt.Sprintf("%.3f", cv.Static.DUE),
			fmt.Sprintf("%.3f", cv.StaticUnmasked()),
			scalarUn,
			fmt.Sprintf("%.3f", cv.Dynamic.SDCAVF.P),
			fmt.Sprintf("%.3f", cv.Dynamic.DUEAVF.P),
			fmt.Sprintf("%.3f", cv.DynamicUnmasked()),
			fmt.Sprintf("%+.3f", cv.Delta()),
			scalarDelta,
			agree,
			fmt.Sprintf("%d", cv.Dynamic.Injected))
	}
	return finish(t, csv, fmt.Sprintf(
		"Static vs injection AVF (tolerance ±%.2f)", faultinj.CrossValTolerance))
}

// BitBandTable renders the per-bit-band agreement tables: for each
// workload, the bit-resolved static unmasked estimate per width-
// relative band against the measured unmasked AVF of the fired
// value-bit trials landing in that band.
func BitBandTable(cvs []*faultinj.CrossValidation, csv bool) string {
	t := &table{header: []string{
		"code", "tool", "band", "static unmasked", "dyn unmasked", "delta", "faults"}}
	for _, cv := range cvs {
		for _, row := range cv.BandTable() {
			t.add(cv.Name, cv.Tool.String(), row.Band.String(),
				fmt.Sprintf("%.3f", row.Static),
				fmt.Sprintf("%.3f", row.Dynamic),
				fmt.Sprintf("%+.3f", row.Delta()),
				fmt.Sprintf("%d", row.Injected))
		}
	}
	return finish(t, csv,
		"Static vs injection AVF by bit band (low/mid/high thirds + sign of the destination window)")
}

// studyCrossVals pairs each NVBitFI campaign stored in a device study
// with its persisted static estimates, in sorted code order so the
// rendered artifact is byte-stable.
func studyCrossVals(ds *core.DeviceStudy) []*faultinj.CrossValidation {
	byCode := ds.AVF[faultinj.NVBitFI]
	var names []string
	for name := range byCode {
		if ds.StaticAVF[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	cvs := make([]*faultinj.CrossValidation, 0, len(names))
	for _, name := range names {
		cvs = append(cvs, &faultinj.CrossValidation{
			Name: name, Tool: faultinj.NVBitFI, Device: ds.Dev.Name,
			Static: ds.StaticAVF[name], Scalar: ds.ScalarAVF[name],
			Dynamic: byCode[name],
		})
	}
	return cvs
}

// CrossValTable renders the study's static-vs-injection table from the
// estimates and campaigns the study already holds (no extra runs).
func CrossValTable(ds *core.DeviceStudy, csv bool) string {
	return CrossValidation(studyCrossVals(ds), csv)
}

// StudyBitBand renders the study's per-bit-band agreement table.
func StudyBitBand(ds *core.DeviceStudy, csv bool) string {
	return BitBandTable(studyCrossVals(ds), csv)
}

// HiddenCrossValidation renders the static- and measured-versus-beam
// hidden-resource DUE comparison: each model's P(DUE | hidden strike)
// against the beam campaign's measured hidden DUE fraction, per
// workload. The measured model is held to the tighter tolerance.
func HiddenCrossValidation(cvs []*faultinj.HiddenCrossValidation, csv bool) string {
	t := &table{header: []string{"code", "device", "static P(DUE|h)", "meas P(DUE|h)",
		"beam P(DUE|h)", "delta (static)", "delta (meas)", "within tol", "hidden strikes"}}
	for _, cv := range cvs {
		agree := "yes"
		if !cv.Agrees() || !cv.MeasuredAgrees() {
			agree = "NO"
		}
		t.add(cv.Name, cv.Device,
			fmt.Sprintf("%.3f", cv.StaticDUEGivenStrike()),
			fmt.Sprintf("%.3f", cv.MeasuredDUEGivenStrike()),
			fmt.Sprintf("%.3f", cv.BeamDUEGivenStrike()),
			fmt.Sprintf("%+.3f", cv.Delta()),
			fmt.Sprintf("%+.3f", cv.MeasuredDelta()),
			agree,
			fmt.Sprintf("%d", cv.Beam.HiddenStrikes()))
	}
	return finish(t, csv, fmt.Sprintf(
		"Static/measured vs beam hidden-resource DUE (tolerance ±%.2f static, ±%.2f measured)",
		faultinj.HiddenCrossValTolerance, faultinj.MeasuredCrossValTolerance))
}
