package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if RZ.String() != "RZ" {
		t.Errorf("RZ spelled %q", RZ.String())
	}
	if Reg(17).String() != "R17" {
		t.Errorf("R17 spelled %q", Reg(17).String())
	}
	if PT.String() != "PT" {
		t.Errorf("PT spelled %q", PT.String())
	}
	if PredReg(3).String() != "P3" {
		t.Errorf("P3 spelled %q", PredReg(3).String())
	}
}

func TestOpClassMapping(t *testing.T) {
	cases := []struct {
		op Op
		cl Class
	}{
		{OpFADD, ClassADD}, {OpDADD, ClassADD}, {OpHADD, ClassADD},
		{OpFMUL, ClassMUL}, {OpDMUL, ClassMUL}, {OpHMUL, ClassMUL},
		{OpFFMA, ClassFMA}, {OpDFMA, ClassFMA}, {OpHFMA, ClassFMA},
		{OpIADD, ClassINT}, {OpIMUL, ClassINT}, {OpIMAD, ClassINT},
		{OpLOP, ClassINT}, {OpSHF, ClassINT}, {OpISETP, ClassINT},
		{OpHMMA, ClassMMA}, {OpFMMA, ClassMMA},
		{OpLDG, ClassLDST}, {OpSTG, ClassLDST}, {OpLDS, ClassLDST}, {OpSTS, ClassLDST},
		{OpMOV, ClassOTHERS}, {OpBRA, ClassOTHERS}, {OpBAR, ClassOTHERS},
		{OpMUFU, ClassOTHERS}, {OpEXIT, ClassOTHERS},
	}
	for _, c := range cases {
		if got := c.op.ClassOf(); got != c.cl {
			t.Errorf("%s class = %s, want %s", c.op, got, c.cl)
		}
	}
}

func TestEveryOpHasNameAndClass(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if op.ClassOf() >= ClassCount {
			t.Errorf("opcode %s has invalid class", op)
		}
	}
}

func TestWritesGPRCriterion(t *testing.T) {
	writers := []Op{OpFADD, OpIMAD, OpLDG, OpMOV, OpS2R, OpHMMA, OpF2F, OpSEL, OpMUFU}
	nonWriters := []Op{OpSTG, OpSTS, OpISETP, OpFSETP, OpBRA, OpBAR, OpEXIT, OpNOP, OpRED}
	for _, op := range writers {
		if !op.WritesGPR() {
			t.Errorf("%s should report WritesGPR", op)
		}
	}
	for _, op := range nonWriters {
		if op.WritesGPR() {
			t.Errorf("%s should not report WritesGPR", op)
		}
	}
}

func TestDTypeWidths(t *testing.T) {
	if F16.Bits() != 16 || F32.Bits() != 32 || F64.Bits() != 64 || I32.Bits() != 32 {
		t.Error("wrong type widths")
	}
	if F64.Regs() != 2 || F32.Regs() != 1 {
		t.Error("wrong register counts")
	}
}

func TestDstRegs(t *testing.T) {
	cases := []struct {
		in   Instr
		want int
	}{
		{Instr{Op: OpFADD, Dst: 4}, 1},
		{Instr{Op: OpDFMA, Dst: 4}, 2},
		{Instr{Op: OpLDG, Dst: 4, Wide: true}, 2},
		{Instr{Op: OpLDG, Dst: 4}, 1},
		{Instr{Op: OpSTG}, 0},
		{Instr{Op: OpISETP, Dst: RZ, DstP: 0}, 0},
		{Instr{Op: OpHMMA, Dst: 8}, 8},
		{Instr{Op: OpFADD, Dst: RZ}, 0},
		{Instr{Op: OpF2F, Dst: 4, CvtFrom: F32, CvtTo: F64}, 2},
	}
	for i, c := range cases {
		if got := c.in.DstRegs(); got != c.want {
			t.Errorf("case %d (%s): DstRegs = %d, want %d", i, c.in.Op, got, c.want)
		}
	}
}

func TestSrcRegSpans(t *testing.T) {
	in := Instr{Op: OpSTG, Srcs: [3]Operand{R(2), Imm(0), R(9)}, Wide: true}
	spans := in.SrcRegSpans()
	if len(spans) != 2 || spans[0] != [2]Reg{2, 1} || spans[1] != [2]Reg{9, 2} {
		t.Fatalf("STG.64 spans = %v", spans)
	}
	mma := Instr{Op: OpHMMA, Dst: 24, Srcs: [3]Operand{R(0), R(4), R(8)}}
	spans = mma.SrcRegSpans()
	if len(spans) != 3 || spans[0] != [2]Reg{0, 4} || spans[1] != [2]Reg{4, 4} || spans[2] != [2]Reg{8, 8} {
		t.Fatalf("HMMA spans = %v", spans)
	}
	dbl := Instr{Op: OpDADD, Dst: 6, Srcs: [3]Operand{R(2), R(4)}}
	spans = dbl.SrcRegSpans()
	if len(spans) != 2 || spans[0][1] != 2 || spans[1][1] != 2 {
		t.Fatalf("DADD spans = %v", spans)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpFFMA, Pred: PT, Dst: 10, Srcs: [3]Operand{R(4), R(5), R(10)}},
			"FFMA R10, R4, R5, R10;"},
		{Instr{Op: OpIADD, Pred: 2, PredNeg: true, Dst: 3, Srcs: [3]Operand{R(3), ImmInt(1)}},
			"@!P2 IADD R3, R3, 0x1;"},
		{Instr{Op: OpLDG, Pred: PT, Dst: 8, Srcs: [3]Operand{R(2), Imm(16)}},
			"LDG.E R8, [R2+0x10];"},
		{Instr{Op: OpSTS, Pred: PT, Srcs: [3]Operand{R(1), Imm(0), R(7)}},
			"STS [R1+0x0], R7;"},
		{Instr{Op: OpISETP, Pred: PT, Dst: RZ, DstP: 0, Cmp: CmpLT, Srcs: [3]Operand{R(1), R(2)}},
			"ISETP.LT.AND P0, R1, R2;"},
		{Instr{Op: OpBRA, Pred: 0, Target: 12},
			"@P0 BRA `(12);"},
		{Instr{Op: OpEXIT, Pred: PT}, "EXIT;"},
		{Instr{Op: OpMUFU, Pred: PT, Dst: 5, Mufu: MufuRCP, Srcs: [3]Operand{R(4)}},
			"MUFU.RCP R5, R4;"},
		{Instr{Op: OpFADD, Pred: PT, Dst: 2, Srcs: [3]Operand{R(3), R(4)}, Neg: [3]bool{false, true}},
			"FADD R2, R3, -R4;"},
	}
	for i, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("case %d: got %q, want %q", i, got, c.want)
		}
	}
}

func TestProgramDisassembleAndMaxReg(t *testing.T) {
	p := &Program{
		Name: "k",
		Instrs: []Instr{
			{Op: OpS2R, Pred: PT, Dst: 0, SReg: SrTidX},
			{Op: OpDFMA, Pred: PT, Dst: 10, Srcs: [3]Operand{R(2), R(4), R(10)}},
			{Op: OpEXIT, Pred: PT},
		},
	}
	d := p.Disassemble()
	if !strings.Contains(d, "S2R R0, SR_TID.X;") || !strings.Contains(d, "/*0002*/") {
		t.Fatalf("bad disassembly:\n%s", d)
	}
	if got := p.MaxReg(); got != 12 {
		t.Fatalf("MaxReg = %d, want 12 (DFMA writes R10..R11)", got)
	}
}

func TestHalfRoundTrip(t *testing.T) {
	// Every finite half value must round-trip f16 -> f32 -> f16 exactly.
	for bits := 0; bits < 1<<16; bits++ {
		h := Float16(bits)
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 {
			continue // NaN: payload not preserved bit-exactly
		}
		f := F16ToF32(h)
		back := F32ToF16(f)
		if back != h {
			t.Fatalf("round-trip failed for 0x%04x: f32=%g back=0x%04x", bits, f, back)
		}
	}
}

func TestHalfConversionKnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h Float16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-2, 0xc000},
		{0.5, 0x3800},
		{65504, 0x7bff},         // max finite half
		{65536, 0x7c00},         // overflow -> +inf
		{5.9604645e-08, 0x0001}, // smallest subnormal
		{float32(math.Inf(1)), 0x7c00},
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.h {
			t.Errorf("F32ToF16(%g) = 0x%04x, want 0x%04x", c.f, got, c.h)
		}
	}
	if !math.IsNaN(float64(F16ToF32(0x7e00))) {
		t.Error("half NaN should convert to float NaN")
	}
}

func TestHalfArithmetic(t *testing.T) {
	one := F32ToF16(1)
	two := F32ToF16(2)
	three := F32ToF16(3)
	if HalfAdd(one, two) != three {
		t.Error("1+2 != 3 in half")
	}
	if HalfMul(two, three) != F32ToF16(6) {
		t.Error("2*3 != 6 in half")
	}
	if HalfFMA(two, three, one) != F32ToF16(7) {
		t.Error("2*3+1 != 7 in half")
	}
}

func TestHalfMonotoneNearOne(t *testing.T) {
	f := func(v uint16) bool {
		// For any positive finite half, converting to f32 and comparing
		// preserves order against its successor.
		h := Float16(v & 0x7bff)
		if h&0x7c00 == 0x7c00 {
			return true
		}
		return F16ToF32(h) <= F16ToF32(h+1) || (h+1)&0x7c00 == 0x7c00
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllClassesOrder(t *testing.T) {
	cls := AllClasses()
	if len(cls) != int(ClassCount) {
		t.Fatalf("AllClasses returned %d entries, want %d", len(cls), ClassCount)
	}
	if cls[0] != ClassFMA || cls[len(cls)-1] != ClassOTHERS {
		t.Fatal("AllClasses not in Figure-1 plotting order")
	}
}

func TestSELDisassemblyShowsPredicate(t *testing.T) {
	in := Instr{Op: OpSEL, Pred: PT, Dst: 3, DstP: 2, Srcs: [3]Operand{R(4), R(5)}}
	if got := in.String(); got != "SEL R3, R4, R5, P2;" {
		t.Fatalf("SEL disassembly = %q", got)
	}
}

func TestF2FDisassembly(t *testing.T) {
	in := Instr{Op: OpF2F, Pred: PT, Dst: 6, CvtFrom: F32, CvtTo: F64, Srcs: [3]Operand{R(2)}}
	if got := in.String(); got != "F2F.f64.f32 R6, R2;" {
		t.Fatalf("F2F disassembly = %q", got)
	}
}

func TestWideMemoryDisassembly(t *testing.T) {
	in := Instr{Op: OpLDG, Pred: PT, Dst: 8, Wide: true, Srcs: [3]Operand{R(2), Imm(8)}}
	if got := in.String(); got != "LDG.E.64 R8, [R2+0x8];" {
		t.Fatalf("wide load disassembly = %q", got)
	}
}
