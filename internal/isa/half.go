package isa

import "math"

// Float16 is an IEEE754 binary16 value stored in its raw bit pattern.
// Volta's half-precision units and the tensor cores operate on this
// format; the simulator keeps halves in the low 16 bits of a GPR.
type Float16 uint16

// F32ToF16 converts a float32 to binary16 with round-to-nearest-even,
// handling overflow to infinity, subnormals, and NaN payload squashing.
func F32ToF16(f float32) Float16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	man := bits & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow or inf/nan
		if bits&0x7fffffff > 0x7f800000 { // NaN
			return Float16(sign | 0x7e00)
		}
		return Float16(sign | 0x7c00)
	case exp <= 0: // subnormal or underflow to zero
		if exp < -10 {
			return Float16(sign)
		}
		man |= 0x800000 // implicit leading one
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := man + half
		// Round to nearest even.
		if man&(half*2-1) == half && rounded&(1<<shift) == 0 {
			rounded--
		}
		return Float16(sign | uint16(rounded>>shift))
	default:
		half := uint32(0x1000)
		rounded := man + half
		if man&0x1fff == half && rounded&0x2000 == 0 {
			rounded--
		}
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return Float16(sign | 0x7c00)
			}
		}
		return Float16(sign | uint16(exp)<<10 | uint16(rounded>>13))
	}
}

// F16ToF32 converts a binary16 bit pattern to float32 exactly.
func F16ToF32(h Float16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	case 0x1f:
		if man == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7f800000 | man<<13 | 1)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

// HalfAdd adds two binary16 values with binary16 result rounding.
func HalfAdd(a, b Float16) Float16 { return F32ToF16(F16ToF32(a) + F16ToF32(b)) }

// HalfMul multiplies two binary16 values with binary16 result rounding.
func HalfMul(a, b Float16) Float16 { return F32ToF16(F16ToF32(a) * F16ToF32(b)) }

// HalfFMA computes a*b+c rounded once to binary16, as the HFMA2 unit does
// per lane.
func HalfFMA(a, b, c Float16) Float16 {
	return F32ToF16(float32(math.FMA(float64(F16ToF32(a)), float64(F16ToF32(b)), float64(F16ToF32(c)))))
}
