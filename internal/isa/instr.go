package isa

import (
	"fmt"
	"strings"
)

// Operand is an instruction source: a register or a 32-bit immediate.
type Operand struct {
	IsImm bool
	Reg   Reg
	Imm   uint32
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Reg: r} }

// Imm makes an immediate operand from raw 32-bit contents.
func Imm(v uint32) Operand { return Operand{IsImm: true, Imm: v} }

// ImmInt makes an immediate operand from a signed integer.
func ImmInt(v int32) Operand { return Operand{IsImm: true, Imm: uint32(v)} }

// String renders the operand in SASS style.
func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("0x%x", o.Imm)
	}
	return o.Reg.String()
}

// Instr is one SASS-like instruction. Fields beyond Op are interpreted
// per-opcode; the assembler (internal/asm) is the only producer, and it
// validates every combination it emits.
type Instr struct {
	Op Op

	// Guard predicate: the instruction executes in threads where
	// Pred (xor PredNeg) holds. PT means unconditional.
	Pred    PredReg
	PredNeg bool

	// Dst is the destination GPR (RZ when the op writes none).
	// F64 results occupy the pair Dst, Dst+1. MMA results occupy
	// Dst .. Dst+7 (eight FP32 accumulator fragments).
	Dst Reg

	// DstP is the destination predicate for SETP ops (PT when unused).
	DstP PredReg

	// Srcs are up to three sources. For memory ops Srcs[0] is the address
	// register and Srcs[1] an immediate byte offset. For MMA ops
	// Srcs[0]/Srcs[1] are the A/B fragment base registers and Srcs[2] the
	// C accumulator base register.
	Srcs [3]Operand

	// Neg negates the corresponding floating-point source.
	Neg [3]bool

	// Modifiers, interpreted per-opcode.
	Cmp   CmpOp
	Logic LogicOp
	Shift ShiftDir
	Mufu  MufuFunc
	SReg  SpecialReg

	// Wide marks 64-bit memory accesses (register pairs).
	Wide bool

	// Target is the absolute instruction index for BRA and SSY,
	// resolved by the assembler from labels.
	Target int

	// CvtFrom/CvtTo give the conversion pair for F2F/F2I/I2F.
	CvtFrom, CvtTo DType
}

// DstRegs returns how many consecutive GPRs the instruction writes
// starting at Dst (0 when it writes none).
func (in *Instr) DstRegs() int {
	switch {
	case in.Op == OpHMMA || in.Op == OpFMMA:
		return 8
	case in.Op == OpSTG || in.Op == OpSTS || !in.Op.WritesGPR():
		return 0
	case in.Dst == RZ:
		return 0
	case in.Op == OpDADD || in.Op == OpDMUL || in.Op == OpDFMA:
		return 2
	case (in.Op == OpLDG || in.Op == OpLDS) && in.Wide:
		return 2
	case in.Op == OpF2F && in.CvtTo == F64:
		return 2
	case in.Op == OpI2F && in.CvtTo == F64:
		return 2
	default:
		return 1
	}
}

// DstBits returns the architectural width in bits of the GPR span the
// instruction writes (0 when it writes none). F16 results occupy a full
// 32-bit register — the high half is forced to zero, not unwritten — so
// half-precision producers still report 32.
func (in *Instr) DstBits() int { return 32 * in.DstRegs() }

// SrcValueBits returns how many low-order bits of each source register
// the instruction reads as value input for the given operand slot: 16
// for the packed-half family and F16-sourced conversions (the execution
// units read only the low half of the register), 32 otherwise. Spans
// wider than one register (F64 pairs, MMA fragments) read 32 bits of
// every register in the span.
func (in *Instr) SrcValueBits(slot int) int {
	switch in.Op {
	case OpHADD, OpHMUL, OpHFMA, OpHSETP:
		return 16
	case OpF2F:
		if slot == 0 && in.CvtFrom == F16 {
			return 16
		}
	}
	return 32
}

// SrcRegSpans returns the (base, count) register spans the instruction
// reads. It accounts for F64 pairs, wide stores, and MMA fragments.
func (in *Instr) SrcRegSpans() [][2]Reg {
	var spans [][2]Reg
	add := func(r Reg, n int) {
		if r != RZ {
			spans = append(spans, [2]Reg{r, Reg(n)})
		}
	}
	switch in.Op {
	case OpHMMA:
		add(in.Srcs[0].Reg, 4)
		add(in.Srcs[1].Reg, 4)
		add(in.Srcs[2].Reg, 8)
	case OpFMMA:
		add(in.Srcs[0].Reg, 8)
		add(in.Srcs[1].Reg, 8)
		add(in.Srcs[2].Reg, 8)
	case OpDADD, OpDMUL, OpDFMA, OpDSETP:
		for i, s := range in.Srcs {
			if !s.IsImm && (i < 2 || in.Op == OpDFMA) {
				add(s.Reg, 2)
			}
		}
	case OpSTG, OpSTS:
		add(in.Srcs[0].Reg, 1) // address
		n := 1
		if in.Wide {
			n = 2
		}
		add(in.Srcs[2].Reg, n) // value
	case OpLDG, OpLDS, OpRED:
		add(in.Srcs[0].Reg, 1) // address
		if in.Op == OpRED {
			add(in.Srcs[2].Reg, 1) // value
		}
	case OpF2F:
		n := 1
		if in.CvtFrom == F64 {
			n = 2
		}
		if !in.Srcs[0].IsImm {
			add(in.Srcs[0].Reg, n)
		}
	default:
		for i := 0; i < numSrcs(in.Op); i++ {
			if !in.Srcs[i].IsImm {
				add(in.Srcs[i].Reg, 1)
			}
		}
	}
	return spans
}

// String disassembles the instruction in SASS-like syntax.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Pred != PT {
		if in.PredNeg {
			fmt.Fprintf(&b, "@!%s ", in.Pred)
		} else {
			fmt.Fprintf(&b, "@%s ", in.Pred)
		}
	}
	op := in.Op.String()
	switch in.Op {
	case OpLOP:
		op = "LOP." + in.Logic.String()
	case OpSHF:
		if in.Shift == ShiftL {
			op = "SHF.L"
		} else {
			op = "SHF.R"
		}
	case OpMUFU:
		op = "MUFU." + in.Mufu.String()
	case OpISETP, OpFSETP, OpDSETP, OpHSETP:
		op += "." + in.Cmp.String() + ".AND"
	case OpIMNMX:
		op += "." + in.Cmp.String()
	case OpF2F, OpF2I, OpI2F:
		op += fmt.Sprintf(".%s.%s", in.CvtTo, in.CvtFrom)
	case OpLDG, OpSTG, OpLDS, OpSTS:
		if in.Wide {
			op += ".64"
		}
	}
	b.WriteString(op)

	var args []string
	switch in.Op {
	case OpNOP, OpEXIT, OpSYNC, OpBAR:
	case OpBRA, OpSSY:
		args = append(args, fmt.Sprintf("`(%d)", in.Target))
	case OpS2R:
		args = append(args, in.Dst.String(), in.SReg.String())
	case OpMOV32I:
		args = append(args, in.Dst.String(), in.Srcs[0].String())
	case OpISETP, OpFSETP, OpDSETP, OpHSETP:
		args = append(args, in.DstP.String(), in.Srcs[0].String(), in.Srcs[1].String())
	case OpLDG, OpLDS:
		args = append(args, in.Dst.String(),
			fmt.Sprintf("[%s+0x%x]", in.Srcs[0], in.Srcs[1].Imm))
	case OpSTG, OpSTS, OpRED:
		args = append(args,
			fmt.Sprintf("[%s+0x%x]", in.Srcs[0], in.Srcs[1].Imm),
			in.Srcs[2].String())
	case OpHMMA, OpFMMA:
		args = append(args, in.Dst.String(), in.Srcs[0].String(),
			in.Srcs[1].String(), in.Srcs[2].String())
	case OpSEL:
		args = append(args, in.Dst.String(), in.Srcs[0].String(),
			in.Srcs[1].String(), in.DstP.String())
	default:
		args = append(args, in.Dst.String())
		n := numSrcs(in.Op)
		for i := 0; i < n; i++ {
			s := in.Srcs[i].String()
			if in.Neg[i] {
				s = "-" + s
			}
			args = append(args, s)
		}
	}
	if len(args) > 0 {
		b.WriteString(" ")
		b.WriteString(strings.Join(args, ", "))
	}
	b.WriteString(";")
	return b.String()
}

func numSrcs(op Op) int {
	switch op {
	case OpFFMA, OpDFMA, OpHFMA, OpIMAD:
		return 3
	case OpFADD, OpDADD, OpHADD, OpFMUL, OpDMUL, OpHMUL,
		OpIADD, OpIMUL, OpIMNMX, OpLOP, OpSHF, OpSEL,
		OpISETP, OpFSETP, OpDSETP, OpHSETP:
		return 2
	case OpMOV, OpMOV32I, OpMUFU, OpF2F, OpF2I, OpI2F:
		return 1
	default:
		return 0
	}
}

// NumSrcs returns how many value sources the opcode consumes in the
// generic (non-memory, non-MMA) encoding.
func NumSrcs(op Op) int { return numSrcs(op) }

// Program is a fully resolved instruction sequence plus the static
// resource footprint the occupancy calculator needs.
type Program struct {
	Name      string
	Instrs    []Instr
	NumRegs   int // registers per thread actually referenced
	SharedMem int // bytes of shared memory per block
}

// Disassemble renders the whole program, one instruction per line with
// absolute indices, in the style of nvdisasm output.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t.text.%s:\n", p.Name)
	for i := range p.Instrs {
		fmt.Fprintf(&b, "  /*%04d*/  %s\n", i, p.Instrs[i].String())
	}
	return b.String()
}

// MaxReg recomputes the highest register referenced by the program plus
// one; the assembler stores it in NumRegs.
func (p *Program) MaxReg() int {
	max := 0
	touch := func(r Reg, n int) {
		if r == RZ {
			return
		}
		if v := int(r) + n; v > max {
			max = v
		}
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if n := in.DstRegs(); n > 0 {
			touch(in.Dst, n)
		}
		for _, s := range in.SrcRegSpans() {
			touch(s[0], int(s[1]))
		}
	}
	return max
}
