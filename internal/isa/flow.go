package isa

// Control-flow helpers shared by the static analyzer (internal/analysis),
// the assembler's whole-program verifier (internal/asm), and the
// disassembler. They encode the same SSY/BRA/SYNC/EXIT semantics the
// SIMT engine executes, so the static CFG matches what actually runs.

// Unconditional reports whether the instruction's guard is the constant
// true predicate (it executes in every active lane).
func (in *Instr) Unconditional() bool {
	return in.Pred == PT && !in.PredNeg
}

// EndsBlock reports whether the instruction terminates a basic block:
// control continues somewhere other than (or in addition to) the next
// instruction. SSY and BAR fall through unconditionally and do not end a
// block; a predicated BRA/EXIT ends one because the warp may split.
func (in *Instr) EndsBlock() bool {
	switch in.Op {
	case OpBRA, OpSYNC, OpEXIT:
		return true
	}
	return false
}

// FallsThrough reports whether control can continue to the next
// instruction. An unconditional BRA always leaves; an unconditional EXIT
// retires every active lane; SYNC always jumps to the reconvergence
// point. Everything else can reach the next instruction.
func (in *Instr) FallsThrough() bool {
	switch in.Op {
	case OpBRA, OpEXIT:
		return !in.Unconditional()
	case OpSYNC:
		return false
	}
	return true
}

// HasTarget reports whether Target carries a resolved instruction index
// (BRA jumps there; SSY declares it as the reconvergence point).
func (in *Instr) HasTarget() bool {
	return in.Op == OpBRA || in.Op == OpSSY
}

// WritesPredReg returns the predicate register the instruction defines
// and true, or PT and false when it defines none. Only the SETP family
// writes predicates.
func (in *Instr) WritesPredReg() (PredReg, bool) {
	switch in.Op {
	case OpISETP, OpFSETP, OpHSETP, OpDSETP:
		if in.DstP != PT {
			return in.DstP, true
		}
	}
	return PT, false
}

// ReadsPredRegs appends the predicate registers the instruction reads to
// dst and returns it: the guard predicate when conditional, plus SEL's
// select condition (SEL repurposes DstP as a source).
func (in *Instr) ReadsPredRegs(dst []PredReg) []PredReg {
	if in.Pred != PT {
		dst = append(dst, in.Pred)
	}
	if in.Op == OpSEL && in.DstP != PT {
		dst = append(dst, in.DstP)
	}
	return dst
}
