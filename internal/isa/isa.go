// Package isa defines the SASS-like instruction set architecture executed
// by the SIMT simulator. It mirrors the portion of NVIDIA's native ISA that
// the paper's tooling operates on: general-purpose registers R0..R254 plus
// the always-zero RZ, predicate registers P0..P6 plus the always-true PT,
// typed arithmetic in INT32 / FP16 / FP32 / FP64, warp-wide tensor-core
// MMA operations, shared/global memory accesses, and the SSY/SYNC
// divergence-management instructions.
//
// Instructions are represented structurally (not bit-encoded); the fault
// injectors operate on architectural values (destination registers,
// predicate registers, addresses), exactly like SASSIFI and NVBitFI.
package isa

import "fmt"

// Reg names a 32-bit general-purpose register. R0..R254 are allocatable;
// RZ (255) reads as zero and ignores writes, as on real SASS.
type Reg uint8

// RZ is the hardwired zero register.
const RZ Reg = 255

// NumGPR is the number of allocatable general-purpose registers per thread
// (255, matching the paper's register-file micro-benchmark, §V-A).
const NumGPR = 255

// String returns the SASS spelling of the register.
func (r Reg) String() string {
	if r == RZ {
		return "RZ"
	}
	return fmt.Sprintf("R%d", r)
}

// PredReg names a 1-bit predicate register. P0..P6 are allocatable;
// PT (7) reads as true and ignores writes.
type PredReg uint8

// PT is the hardwired true predicate.
const PT PredReg = 7

// NumPred is the number of allocatable predicate registers per thread.
const NumPred = 7

// String returns the SASS spelling of the predicate register.
func (p PredReg) String() string {
	if p == PT {
		return "PT"
	}
	return fmt.Sprintf("P%d", p)
}

// DType is the data type an instruction operates on.
type DType uint8

// Data types supported by the ISA.
const (
	U32  DType = iota // untyped 32-bit (moves, logic)
	I32               // signed 32-bit integer
	F16               // IEEE754 binary16 (kept in the low half of a register)
	F32               // IEEE754 binary32
	F64               // IEEE754 binary64 (even-aligned register pair)
	PRED              // 1-bit predicate
)

// String returns a short type name.
func (d DType) String() string {
	switch d {
	case U32:
		return "u32"
	case I32:
		return "i32"
	case F16:
		return "f16"
	case F32:
		return "f32"
	case F64:
		return "f64"
	case PRED:
		return "pred"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// Bits returns the width of the type in bits.
func (d DType) Bits() int {
	switch d {
	case F16:
		return 16
	case F64:
		return 64
	case PRED:
		return 1
	default:
		return 32
	}
}

// Regs returns how many 32-bit registers a value of this type occupies.
func (d DType) Regs() int {
	if d == F64 {
		return 2
	}
	return 1
}

// Op is an opcode.
type Op uint8

// Opcodes. The grouping comments give the Figure-1 instruction class each
// opcode reports to the profiler.
const (
	OpNOP Op = iota

	// ADD class
	OpFADD
	OpDADD
	OpHADD

	// MUL class
	OpFMUL
	OpDMUL
	OpHMUL

	// FMA class
	OpFFMA
	OpDFMA
	OpHFMA

	// INT class
	OpIADD
	OpIMUL
	OpIMAD
	OpIMNMX
	OpISETP
	OpLOP // bitwise and/or/xor, selected by LogicOp
	OpSHF // funnel shift left/right, selected by ShiftDir

	// MMA class (warp-wide tensor core)
	OpHMMA // 16x16x16, FP16 inputs, FP32 accumulate
	OpFMMA // 16x16x16, FP32 inputs cast to FP16 on the tensor core

	// LDST class
	OpLDG // load global
	OpSTG // store global
	OpLDS // load shared
	OpSTS // store shared

	// OTHERS class
	OpMOV
	OpMOV32I
	OpSEL
	OpS2R
	OpFSETP
	OpHSETP
	OpDSETP
	OpF2F // precision conversion (width pair in CvtFrom/CvtTo)
	OpF2I
	OpI2F
	OpMUFU // transcendental: rcp, sqrt, ex2, lg2 (selected by MufuFunc)
	OpBRA
	OpSSY
	OpSYNC
	OpBAR
	OpEXIT
	OpRED // atomic reduction to global memory (add)

	opCount
)

// OpCount is the number of defined opcodes, for dense per-op tables.
const OpCount = int(opCount)

// Class is the Figure-1 instruction category used by the profiler, the
// beam micro-benchmarks, and the FIT prediction model.
type Class uint8

// Instruction classes as plotted in Figure 1 of the paper.
const (
	ClassADD Class = iota
	ClassMUL
	ClassFMA
	ClassINT
	ClassMMA
	ClassLDST
	ClassOTHERS
	ClassCount
)

// String returns the Figure-1 label for the class.
func (c Class) String() string {
	switch c {
	case ClassADD:
		return "ADD"
	case ClassMUL:
		return "MUL"
	case ClassFMA:
		return "FMA"
	case ClassINT:
		return "INT"
	case ClassMMA:
		return "MMA"
	case ClassLDST:
		return "LDST"
	case ClassOTHERS:
		return "OTHERS"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// AllClasses lists the classes in Figure-1 plotting order.
func AllClasses() []Class {
	return []Class{ClassFMA, ClassMUL, ClassADD, ClassINT, ClassMMA, ClassLDST, ClassOTHERS}
}

var opInfo = [opCount]struct {
	name  string
	class Class
	dtype DType
}{
	OpNOP:    {"NOP", ClassOTHERS, U32},
	OpFADD:   {"FADD", ClassADD, F32},
	OpDADD:   {"DADD", ClassADD, F64},
	OpHADD:   {"HADD2", ClassADD, F16},
	OpFMUL:   {"FMUL", ClassMUL, F32},
	OpDMUL:   {"DMUL", ClassMUL, F64},
	OpHMUL:   {"HMUL2", ClassMUL, F16},
	OpFFMA:   {"FFMA", ClassFMA, F32},
	OpDFMA:   {"DFMA", ClassFMA, F64},
	OpHFMA:   {"HFMA2", ClassFMA, F16},
	OpIADD:   {"IADD", ClassINT, I32},
	OpIMUL:   {"IMUL", ClassINT, I32},
	OpIMAD:   {"IMAD", ClassINT, I32},
	OpIMNMX:  {"IMNMX", ClassINT, I32},
	OpISETP:  {"ISETP", ClassINT, PRED},
	OpLOP:    {"LOP", ClassINT, U32},
	OpSHF:    {"SHF", ClassINT, U32},
	OpHMMA:   {"HMMA.1688.F32", ClassMMA, F16},
	OpFMMA:   {"FMMA.1688.F32", ClassMMA, F32},
	OpLDG:    {"LDG.E", ClassLDST, U32},
	OpSTG:    {"STG.E", ClassLDST, U32},
	OpLDS:    {"LDS", ClassLDST, U32},
	OpSTS:    {"STS", ClassLDST, U32},
	OpMOV:    {"MOV", ClassOTHERS, U32},
	OpMOV32I: {"MOV32I", ClassOTHERS, U32},
	OpSEL:    {"SEL", ClassOTHERS, U32},
	OpS2R:    {"S2R", ClassOTHERS, U32},
	OpFSETP:  {"FSETP", ClassOTHERS, PRED},
	OpHSETP:  {"HSETP2", ClassOTHERS, PRED},
	OpDSETP:  {"DSETP", ClassOTHERS, PRED},
	OpF2F:    {"F2F", ClassOTHERS, F32},
	OpF2I:    {"F2I", ClassOTHERS, I32},
	OpI2F:    {"I2F", ClassOTHERS, F32},
	OpMUFU:   {"MUFU", ClassOTHERS, F32},
	OpBRA:    {"BRA", ClassOTHERS, U32},
	OpSSY:    {"SSY", ClassOTHERS, U32},
	OpSYNC:   {"SYNC", ClassOTHERS, U32},
	OpBAR:    {"BAR.SYNC", ClassOTHERS, U32},
	OpEXIT:   {"EXIT", ClassOTHERS, U32},
	OpRED:    {"RED.E.ADD", ClassLDST, U32},
}

// String returns the SASS mnemonic.
func (o Op) String() string {
	if int(o) < len(opInfo) && opInfo[o].name != "" {
		return opInfo[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ClassOf returns the Figure-1 class of the opcode.
func (o Op) ClassOf() Class { return opInfo[o].class }

// TypeOf returns the natural data type of the opcode.
func (o Op) TypeOf() DType { return opInfo[o].dtype }

// IsMemory reports whether the opcode accesses memory.
func (o Op) IsMemory() bool {
	switch o {
	case OpLDG, OpSTG, OpLDS, OpSTS, OpRED:
		return true
	}
	return false
}

// IsLoad reports whether the opcode allocates outstanding-load state in
// the LDST/MMU path while its result is in flight (the population the
// load-pressure proxies and the LDST-queue residency telemetry track).
func (o Op) IsLoad() bool {
	return o == OpLDG || o == OpLDS
}

// IsControl reports whether the opcode affects control flow.
func (o Op) IsControl() bool {
	switch o {
	case OpBRA, OpSSY, OpSYNC, OpBAR, OpEXIT:
		return true
	}
	return false
}

// WritesGPR reports whether the opcode writes a general-purpose register.
// This is the NVBitFI injection criterion (the tool "can inject faults
// only at ... instructions that write in the general-purpose registers").
func (o Op) WritesGPR() bool {
	switch o {
	case OpNOP, OpISETP, OpFSETP, OpHSETP, OpDSETP, OpSTG, OpSTS,
		OpBRA, OpSSY, OpSYNC, OpBAR, OpEXIT, OpRED:
		return false
	}
	return true
}

// CmpOp is a comparison operator for SETP instructions.
type CmpOp uint8

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpEQ
	CmpNE
	CmpGE
	CmpGT
)

// String returns the SASS suffix of the comparison.
func (c CmpOp) String() string {
	return [...]string{"LT", "LE", "EQ", "NE", "GE", "GT"}[c]
}

// LogicOp selects the LOP function.
type LogicOp uint8

// Logic functions.
const (
	LopAND LogicOp = iota
	LopOR
	LopXOR
)

// String returns the SASS suffix of the logic function.
func (l LogicOp) String() string { return [...]string{"AND", "OR", "XOR"}[l] }

// ShiftDir selects the SHF direction.
type ShiftDir uint8

// Shift directions.
const (
	ShiftL ShiftDir = iota
	ShiftR
)

// MufuFunc selects the MUFU transcendental function.
type MufuFunc uint8

// MUFU functions.
const (
	MufuRCP MufuFunc = iota
	MufuSQRT
	MufuRSQ
	MufuEX2
	MufuLG2
	MufuSIN
	MufuCOS
)

// String returns the SASS suffix of the MUFU function.
func (m MufuFunc) String() string {
	return [...]string{"RCP", "SQRT", "RSQ", "EX2", "LG2", "SIN", "COS"}[m]
}

// SpecialReg is a source for S2R.
type SpecialReg uint8

// Special registers.
const (
	SrTidX SpecialReg = iota
	SrTidY
	SrCtaidX
	SrCtaidY
	SrNtidX
	SrNtidY
	SrNctaidX
	SrNctaidY
	SrLaneID
	SrWarpID
)

// String returns the SASS spelling of the special register.
func (s SpecialReg) String() string {
	return [...]string{
		"SR_TID.X", "SR_TID.Y", "SR_CTAID.X", "SR_CTAID.Y",
		"SR_NTID.X", "SR_NTID.Y", "SR_NCTAID.X", "SR_NCTAID.Y",
		"SR_LANEID", "SR_WARPID",
	}[s]
}

// MemSpace distinguishes the address spaces of memory operations.
type MemSpace uint8

// Address spaces.
const (
	SpaceGlobal MemSpace = iota
	SpaceShared
)
