package lintgo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module from path->content pairs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestSeededViolation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"bad.go": `package fixture

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`,
	})
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Message, "nondeterministic") || !strings.Contains(fs[0].Message, "Printf") {
		t.Errorf("message %q should name the hazard and the sink", fs[0].Message)
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("finding at line %d, want 6 (the range statement)", fs[0].Pos.Line)
	}
}

// Deterministic uses of maps must not be flagged: slice iteration that
// prints, key collection without output, and the collect-sort-iterate
// idiom the check exists to steer people toward.
func TestCleanPatterns(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"ok.go": `package fixture

import (
	"fmt"
	"sort"
)

func sliceLoop(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

func collectOnly(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedDump(m map[string]int) {
	for _, k := range collectOnly(m) {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}
`,
	})
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("clean patterns flagged: %v", fs)
	}
}

// A map whose type is declared in a sibling intra-module package must
// still be recognized — this exercises the recursive source loader.
func TestCrossPackageMapType(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"store/store.go": `package store

type Table struct {
	Rows map[string]float64
}
`,
		"render/render.go": `package render

import (
	"fmt"

	"fixture/store"
)

func Dump(t *store.Table) {
	for name, v := range t.Rows {
		fmt.Printf("%s %g\n", name, v)
	}
}
`,
	})
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1 (cross-package map type): %v", len(fs), fs)
	}
	if !strings.HasSuffix(fs[0].Pos.Filename, "render.go") {
		t.Errorf("finding in %s, want render.go", fs[0].Pos.Filename)
	}
}

// Nondeterminism sources inside the deterministic campaign packages
// must be flagged: time.Now and math/rand (either version) in
// internal/faultinj, and math/rand in internal/serve.
func TestNondetViolations(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"internal/faultinj/bad.go": `package faultinj

import (
	"math/rand/v2"
	"time"
)

func Jitter() int64 {
	r := rand.New(rand.NewPCG(1, uint64(time.Now().UnixNano())))
	return r.Int64()
}
`,
		"internal/serve/bad.go": `package serve

import "math/rand"

func Pick(n int) int { return rand.Intn(n) }
`,
	})
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("got %d findings, want 3 (rand import + time.Now in faultinj, rand import in serve): %v", len(fs), fs)
	}
	var randHits, clockHits int
	for _, f := range fs {
		switch {
		case strings.Contains(f.Message, "math/rand"):
			randHits++
			if !strings.Contains(f.Message, "stats.RNG") {
				t.Errorf("rand finding %q should point at stats.RNG", f.Message)
			}
		case strings.Contains(f.Message, "time.Now"):
			clockHits++
		default:
			t.Errorf("unexpected finding %q", f.Message)
		}
	}
	if randHits != 2 || clockHits != 1 {
		t.Errorf("got %d rand + %d clock findings, want 2 + 1", randHits, clockHits)
	}
}

// The sanctioned exemptions must hold: internal/stats may wrap
// math/rand/v2 (it is the seeded RNG's home), internal/serve may read
// the clock for elapsed-time bookkeeping, and packages outside the ban
// list are untouched.
func TestNondetExemptions(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"internal/stats/rng.go": `package stats

import "math/rand/v2"

type RNG struct{ src *rand.Rand }
`,
		"internal/serve/clock.go": `package serve

import "time"

func Started() time.Time { return time.Now() }
`,
		"cmd/tool/main.go": `package main

import (
	"math/rand"
	"time"
)

func main() { _ = rand.Intn(int(time.Now().Unix())) }
`,
	})
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("sanctioned uses flagged: %v", fs)
	}
}

// The repository itself must stay clean — this is the same gate the
// full check tier runs via tools/gomaplint.
func TestRepoClean(t *testing.T) {
	fs, err := CheckTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("repository has nondeterministic map iterations feeding writers:\n%v", fs)
	}
}
