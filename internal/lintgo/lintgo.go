// Package lintgo is a small, dependency-free static analyzer for the
// repository's own Go source. Its checks guard the determinism
// contract behind the golden-artifact pipeline.
//
// The map-iteration check: a `for ... range` over a map whose body
// feeds an output writer is nondeterministic (Go randomizes map
// iteration order), so any table, JSON file, or log line produced that
// way will drift from run to run and trip the artifact diff gate for
// no semantic reason. The fix is always the same — collect the keys,
// sort, iterate the slice — and the writers in internal/core/persist.go
// are the model.
//
// The nondeterminism-source check (nondet.go): the deterministic
// campaign packages must not read the wall clock or sample from an
// ambient math/rand generator; all randomness goes through stats.RNG.
//
// The analyzer is built on go/parser and go/types only (the module has
// no external dependencies, so golang.org/x/tools is off the table).
// Packages inside this module are type-checked from source, recursively
// through their intra-module imports; imports from outside the module
// (the standard library included) resolve to empty stub packages.
// Stubbed names type-check to invalid types, which the check treats
// conservatively: a range expression whose type cannot be resolved is
// never flagged. Sink calls are matched syntactically by method or
// function name, so `fmt.Fprintf` is recognized even though the fmt
// package is a stub.
package lintgo

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one nondeterministic-iteration diagnostic.
type Finding struct {
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
}

// sinkNames are the function/method names whose call inside a map-range
// body marks the loop as feeding an artifact writer. Matching is by
// name only: the analyzer cannot resolve stub-imported callees, and a
// same-named local function writing output is just as much of a hazard.
var sinkNames = map[string]bool{
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
	"WriteString": true, "Write": true, "WriteByte": true, "WriteRune": true,
	"WriteFile": true, "Encode": true,
}

// CheckTree analyzes every package under root (a module root containing
// go.mod) and returns the findings in deterministic file/line order.
// testdata, vendor, out, and dot-directories are skipped; _test.go
// files are not analyzed.
func CheckTree(root string) ([]Finding, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	c := newChecker(root, modPath)
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "out") {
			return filepath.SkipDir
		}
		hasGo, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if hasGo {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, dir := range dirs {
		fs, err := c.checkDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out, nil
}

// checker loads and type-checks packages, acting as its own
// types.Importer: intra-module paths are resolved from source (with
// caching), everything else becomes an empty stub package.
type checker struct {
	fset    *token.FileSet
	root    string
	modPath string
	pkgs    map[string]*types.Package // by import path; stubs included
	loaded  map[string]*loadedPkg     // by directory
}

type loadedPkg struct {
	files []*ast.File
	info  *types.Info
}

func newChecker(root, modPath string) *checker {
	return &checker{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		pkgs:    map[string]*types.Package{},
		loaded:  map[string]*loadedPkg{},
	}
}

// Import implements types.Importer.
func (c *checker) Import(path string) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok {
		return p, nil
	}
	if path == c.modPath || strings.HasPrefix(path, c.modPath+"/") {
		dir := filepath.Join(c.root, filepath.FromSlash(strings.TrimPrefix(path, c.modPath)))
		if _, err := c.load(dir, path); err != nil {
			return nil, err
		}
		return c.pkgs[path], nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	c.pkgs[path] = p
	return p, nil
}

// load parses and type-checks the package in dir under the given import
// path, tolerating (and discarding) type errors from stubbed imports.
func (c *checker) load(dir, path string) (*loadedPkg, error) {
	if lp, ok := c.loaded[dir]; ok {
		return lp, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(c.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer:    c,
		Error:       func(error) {}, // stubbed imports guarantee errors; keep going
		FakeImportC: true,
	}
	pkg, _ := conf.Check(path, c.fset, files, info)
	if pkg != nil {
		c.pkgs[path] = pkg
	}
	lp := &loadedPkg{files: files, info: info}
	c.loaded[dir] = lp
	return lp, nil
}

// checkDir loads the package in dir and scans it.
func (c *checker) checkDir(dir string) ([]Finding, error) {
	rel, err := filepath.Rel(c.root, dir)
	if err != nil {
		return nil, err
	}
	path := c.modPath
	if rel != "." {
		path = c.modPath + "/" + filepath.ToSlash(rel)
	}
	lp, err := c.load(dir, path)
	if err != nil {
		return nil, err
	}
	var out []Finding
	ban, banned := nondetBanFor(filepath.ToSlash(rel))
	for _, f := range lp.files {
		out = append(out, c.scanFile(lp.info, f)...)
		if banned {
			out = append(out, c.scanNondet(f, ban)...)
		}
	}
	return out, nil
}

// scanFile flags every range-over-map statement whose body calls an
// output sink.
func (c *checker) scanFile(info *types.Info, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink := firstSink(rs.Body); sink != "" {
			out = append(out, Finding{
				Pos: c.fset.Position(rs.Pos()),
				Message: fmt.Sprintf("map iteration order is nondeterministic but the loop body writes output via %s; collect and sort the keys first (see internal/core/persist.go)",
					sink),
			})
		}
		return true
	})
	return out
}

// firstSink returns the name of the first sink call in the body, or "".
func firstSink(body *ast.BlockStmt) string {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fn.Sel.Name
		case *ast.Ident:
			name = fn.Name
		}
		if sinkNames[name] {
			found = name
			return false
		}
		return true
	})
	return found
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lintgo: no module directive in %s/go.mod", root)
}
