package lintgo

// Nondeterminism-source check. The campaign pipeline promises bitwise
// reproducibility from a seed: every stochastic draw goes through
// stats.RNG and every artifact byte is a pure function of the study
// inputs. A stray time.Now() feeding a decision, or an ambient
// math/rand generator, silently breaks that promise in ways the unit
// tests rarely catch (they pass; the artifact drift gate fails a week
// later). This check bans the two ambient sources from the packages
// that carry the determinism contract.
//
// Matching is syntactic, like the sink matching of the map-iteration
// check: an import of a banned path is flagged at the import line, and
// a `time.Now` selector call is flagged at the call site. Packages may
// be granted partial exemptions — internal/stats owns the sanctioned
// math/rand/v2 wrapper, and internal/serve legitimately reads the
// clock for elapsed-time bookkeeping that never feeds a sampling
// decision or a persisted artifact.

import (
	"fmt"
	"go/ast"
	"strings"
)

// nondetBan describes which ambient nondeterminism sources are banned
// in one package subtree.
type nondetBan struct {
	timeNow  bool // ban time.Now call sites
	mathRand bool // ban math/rand and math/rand/v2 imports
}

// nondetBans maps module-relative package directories (prefix-matched,
// so subpackages inherit the ban) to the sources banned there.
var nondetBans = map[string]nondetBan{
	// The simulator, injectors, classifiers, and beam campaigns are the
	// deterministic replay core: all randomness must come through
	// stats.RNG, and nothing in them may consult the wall clock.
	"internal/sim":      {timeNow: true, mathRand: true},
	"internal/faultinj": {timeNow: true, mathRand: true},
	"internal/patterns": {timeNow: true, mathRand: true},
	"internal/beam":     {timeNow: true, mathRand: true},
	// stats owns the sanctioned math/rand/v2 wrapper (stats.RNG), so
	// only the clock is banned there.
	"internal/stats": {timeNow: true},
	// The campaign daemon reads the clock for elapsed-time bookkeeping
	// (progress, metrics) but must never sample from an ambient
	// generator: its trial sharding is seed-derived.
	"internal/serve": {mathRand: true},
}

// nondetBanFor returns the ban covering a module-relative package
// directory, if any.
func nondetBanFor(rel string) (nondetBan, bool) {
	for prefix, ban := range nondetBans {
		if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			return ban, true
		}
	}
	return nondetBan{}, false
}

// scanNondet flags banned nondeterminism sources in one file.
func (c *checker) scanNondet(f *ast.File, ban nondetBan) []Finding {
	var out []Finding
	if ban.mathRand {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, Finding{
					Pos: c.fset.Position(imp.Pos()),
					Message: fmt.Sprintf("deterministic package imports %s; draw from *stats.RNG instead (seeded, splittable)",
						path),
				})
			}
		}
	}
	if ban.timeNow {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "time" || sel.Sel.Name != "Now" {
				return true
			}
			out = append(out, Finding{
				Pos: c.fset.Position(call.Pos()),
				Message: "deterministic package calls time.Now; campaign behavior must be a pure function of the seed" +
					" (clock reads belong in the daemon/CLI layers)",
			})
			return true
		})
	}
	return out
}
