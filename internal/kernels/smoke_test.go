package kernels

import (
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"testing"
)

func TestSmokeMxMHotspot(t *testing.T) {
	for _, dt := range []isa.DType{isa.F32, isa.F64} {
		for _, opt := range []asm.OptLevel{asm.O1, asm.O2} {
			r, err := NewRunner("mxm", MxMBuilder(dt), device.K40c(), opt)
			if err != nil {
				t.Fatalf("mxm %v %v: %v", dt, opt, err)
			}
			p := r.GoldenProfiles()[0]
			t.Logf("MxM %v %v: cycles=%d laneops=%d ipc=%.2f occ=%.2f regs=?", dt, opt, p.Cycles, p.LaneOps, p.IPC(), p.AchievedOccupancy(device.K40c()))
		}
	}
	r, err := NewRunner("hotspot", HotspotBuilder(isa.F16), device.V100(), asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	var tot uint64
	for _, p := range r.GoldenProfiles() {
		tot += p.LaneOps
	}
	t.Logf("HHotspot total laneops=%d", tot)
}

func TestSmokeGEMM(t *testing.T) {
	for _, dt := range []isa.DType{isa.F16, isa.F32, isa.F64} {
		dev := device.V100()
		r, err := NewRunner("gemm", GEMMBuilder(dt), dev, asm.O2)
		if err != nil {
			t.Fatalf("gemm %v: %v", dt, err)
		}
		p := r.GoldenProfiles()[0]
		t.Logf("GEMM %v: cycles=%d laneops=%d ipc=%.2f occ=%.3f regs=%d", dt, p.Cycles, p.LaneOps, p.IPC(), p.AchievedOccupancy(dev), 0)
	}
	r, err := NewRunner("gemm", GEMMBuilder(isa.F32), device.K40c(), asm.O1)
	if err != nil {
		t.Fatal(err)
	}
	p := r.GoldenProfiles()[0]
	t.Logf("Kepler FGEMM: cycles=%d laneops=%d ipc=%.2f occ=%.3f", p.Cycles, p.LaneOps, p.IPC(), p.AchievedOccupancy(device.K40c()))
}

func TestSmokeGEMMMMA(t *testing.T) {
	for _, half := range []bool{true, false} {
		dev := device.V100()
		r, err := NewRunner("mma", GEMMMMABuilder(half), dev, asm.O2)
		if err != nil {
			t.Fatalf("mma half=%v: %v", half, err)
		}
		p := r.GoldenProfiles()[0]
		t.Logf("GEMM-MMA half=%v: cycles=%d laneops=%d ipc=%.2f occ=%.3f", half, p.Cycles, p.LaneOps, p.IPC(), p.AchievedOccupancy(dev))
	}
	if _, err := NewRunner("mma", GEMMMMABuilder(true), device.K40c(), asm.O1); err == nil {
		t.Fatal("MMA on Kepler should fail")
	}
}

func TestSmokeRemaining(t *testing.T) {
	dev := device.K40c()
	cases := []struct {
		name string
		b    Builder
	}{
		{"FLAVA", LavaBuilder(isa.F32)},
		{"FGAUSSIAN", GaussianBuilder()},
		{"FLUD", LUDBuilder()},
		{"NW", NWBuilder()},
		{"BFS", BFSBuilder()},
		{"CCL", CCLBuilder()},
		{"MERGESORT", MergesortBuilder()},
		{"QUICKSORT", QuicksortBuilder()},
	}
	for _, c := range cases {
		for _, opt := range []asm.OptLevel{asm.O1, asm.O2} {
			r, err := NewRunner(c.name, c.b, dev, opt)
			if err != nil {
				t.Fatalf("%s %v: %v", c.name, opt, err)
			}
			var lane uint64
			var cyc int64
			for _, p := range r.GoldenProfiles() {
				lane += p.LaneOps
				cyc += p.Cycles
			}
			p0 := r.GoldenProfiles()[0]
			t.Logf("%s %v: launches=%d cycles=%d laneops=%d ipc=%.2f occ=%.3f",
				c.name, opt, len(r.GoldenProfiles()), cyc, lane, p0.IPC(), p0.AchievedOccupancy(dev))
		}
	}
}

func TestSmokeYOLO(t *testing.T) {
	cases := []struct {
		name string
		v3   bool
		dt   isa.DType
		dev  *device.Device
	}{
		{"FYOLOV2", false, isa.F32, device.K40c()},
		{"FYOLOV3", true, isa.F32, device.K40c()},
		{"HYOLOV3", true, isa.F16, device.V100()},
	}
	for _, c := range cases {
		r, err := NewRunner(c.name, YOLOBuilder(c.v3, c.dt), c.dev, asm.O2)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var lane uint64
		var cyc int64
		var fma uint64
		for _, p := range r.GoldenProfiles() {
			lane += p.LaneOps
			cyc += p.Cycles
			fma += p.ClassLaneOps()[isa.ClassFMA]
		}
		t.Logf("%s: launches=%d cycles=%d laneops=%d fma%%=%.0f", c.name, len(r.GoldenProfiles()), cyc, lane, 100*float64(fma)/float64(lane))
	}
}
