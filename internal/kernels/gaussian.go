package kernels

import (
	"math"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Gaussian is the Rodinia Gaussian-elimination benchmark: for each pivot
// column k, the Fan1 kernel computes the multiplier column and the Fan2
// kernel updates the trailing augmented matrix. The grids are tiny and
// shrink as elimination proceeds, which is why Table I reports a low
// occupancy (0.34) for this code. FP32 only, with the division realized
// as MUFU.RCP + multiply, the GPU fast-math idiom.
const gaussN = 24

// GaussianBuilder returns the Gaussian-elimination builder.
func GaussianBuilder() Builder {
	return buildGaussian
}

func buildGaussian(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
	const n = gaussN
	const cols = n + 1 // augmented with the RHS vector
	g := mem.NewGlobal(1 << 22)
	aBase, err := g.Alloc(n * cols * 4)
	if err != nil {
		return nil, err
	}
	mBase, _ := g.Alloc(n * n * 4) // multiplier matrix

	r := dataRNG(0x9a55)
	A := make([]float32, n*cols)
	for i := 0; i < n; i++ {
		for j := 0; j < cols; j++ {
			A[i*cols+j] = float32(randUnit(r, 0.5, 2))
		}
		A[i*cols+i] += 8 // diagonally dominant: no pivoting needed
	}
	for i, v := range A {
		g.SetWord(aBase+uint32(i*4), math.Float32bits(v))
	}

	// Host reference with identical fast-math operations.
	ref := append([]float32(nil), A...)
	rcp := func(x float32) float32 { return float32(1 / float64(x)) }
	for k := 0; k < n-1; k++ {
		inv := rcp(ref[k*cols+k])
		m := make([]float32, n)
		for i := k + 1; i < n; i++ {
			m[i] = ref[i*cols+k] * inv
		}
		for i := k + 1; i < n; i++ {
			for j := k; j < cols; j++ {
				ref[i*cols+j] = float32(math.FMA(float64(-m[i]), float64(ref[k*cols+j]), float64(ref[i*cols+j])))
			}
		}
	}

	var launches []Launch
	for k := 0; k < n-1; k++ {
		fan1, err := buildFan1(opt, k, n, cols, aBase, mBase)
		if err != nil {
			return nil, err
		}
		fan2, err := buildFan2(opt, k, n, cols, aBase, mBase)
		if err != nil {
			return nil, err
		}
		launches = append(launches,
			Launch{Prog: fan1, GridX: 1, GridY: 1, BlockThreads: 32},
			Launch{Prog: fan2, GridX: 1, GridY: n, BlockThreads: 32},
		)
	}
	want := make([]uint32, n*cols)
	for i, v := range ref {
		want[i] = math.Float32bits(v)
	}
	return &Instance{
		Name:     "FGAUSSIAN",
		Dev:      dev,
		Global:   g,
		Launches: launches,
		Check:    checkWords(aBase, want),
		Output:   &OutputRegion{Base: aBase, Rows: n, Cols: cols, DType: isa.F32},
	}, nil
}

// buildFan1 computes m[i] = A[i][k] / A[k][k] for i in (k, n).
func buildFan1(opt asm.OptLevel, k, n, cols int, aBase, mBase uint32) (*isa.Program, error) {
	b := asm.New("fan1", opt)
	tid := b.R()
	b.S2R(tid, isa.SrTidX)
	i := b.R()
	b.IAdd(i, isa.R(tid), isa.ImmInt(int32(k+1)))
	p := b.P()
	b.ISetp(p, isa.CmpLT, isa.R(i), isa.ImmInt(int32(n)))
	b.Guarded(p, false, func() {
		akk := b.R()
		pv := b.R()
		b.MovImm(pv, aBase+uint32((k*cols+k)*4))
		b.Ldg(akk, pv, 0)
		inv := b.R()
		b.Mufu(isa.MufuRCP, inv, akk)
		aik := b.R()
		addr := b.R()
		b.IMad(addr, isa.R(i), isa.ImmInt(int32(cols)*4), isa.ImmInt(int32(aBase)+int32(k*4)))
		b.Ldg(aik, addr, 0)
		m := b.R()
		b.FMul(m, isa.R(aik), isa.R(inv))
		mAddr := b.R()
		b.IMad(mAddr, isa.R(i), isa.ImmInt(int32(n)*4), isa.ImmInt(int32(mBase)+int32(k*4)))
		b.Stg(mAddr, 0, m)
	})
	b.Exit()
	return b.Build()
}

// buildFan2 computes A[i][j] -= m[i] * A[k][j] for i in (k, n), j in [k, cols).
// One block per row i (CTAID.Y); threads stride across the columns.
func buildFan2(opt asm.OptLevel, k, n, cols int, aBase, mBase uint32) (*isa.Program, error) {
	b := asm.New("fan2", opt)
	tid := b.R()
	i := b.R()
	b.S2R(tid, isa.SrTidX)
	b.S2R(i, isa.SrCtaidY)

	pRow := b.P()
	b.ISetp(pRow, isa.CmpGT, isa.R(i), isa.ImmInt(int32(k)))
	b.If(pRow, false, func() {
		m := b.R()
		mAddr := b.R()
		b.IMad(mAddr, isa.R(i), isa.ImmInt(int32(n)*4), isa.ImmInt(int32(mBase)+int32(k*4)))
		b.Ldg(m, mAddr, 0)
		// Each thread walks j = k + tid, k + tid + 32, ...
		j := b.R()
		b.IAdd(j, isa.R(tid), isa.ImmInt(int32(k)))
		pj := b.P()
		kv := b.R()
		av := b.R()
		kAddr := b.R()
		aAddr := b.R()
		b.Label("fan2_loop")
		b.ISetp(pj, isa.CmpLT, isa.R(j), isa.ImmInt(int32(cols)))
		b.Guarded(pj, false, func() {
			b.IMad(kAddr, isa.R(j), isa.ImmInt(4), isa.ImmInt(int32(aBase)+int32(k*cols*4)))
			b.Ldg(kv, kAddr, 0)
			b.IMad(aAddr, isa.R(i), isa.ImmInt(int32(cols)*4), isa.ImmInt(int32(aBase)))
			b.IMad(aAddr, isa.R(j), isa.ImmInt(4), isa.R(aAddr))
			b.Ldg(av, aAddr, 0)
			neg := b.R()
			b.FMul(neg, isa.R(m), isa.ImmInt(int32(math.Float32bits(-1))))
			b.FFma(av, isa.R(neg), isa.R(kv), isa.R(av))
			b.Stg(aAddr, 0, av)
		})
		b.IAdd(j, isa.R(j), isa.ImmInt(32))
		b.ISetp(pj, isa.CmpLT, isa.R(j), isa.ImmInt(int32(cols)))
		b.BraIf(pj, false, "fan2_loop")
	})
	b.Exit()
	return b.Build()
}
