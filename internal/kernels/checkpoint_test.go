package kernels

import (
	"sync"
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/sim"
	"gpurel/internal/stats"
)

// runWithFaultFull is the pre-checkpointing reference engine: rebuild
// the workload from scratch and re-simulate every launch, with the
// fault plan applied to faultLaunch. The checkpointed RunWithFault must
// classify identically for every plan.
func runWithFaultFull(t *testing.T, r *Runner, plan *sim.FaultPlan, faultLaunch int) Outcome {
	t.Helper()
	inst, err := r.Build(r.Dev, r.Opt)
	if err != nil {
		t.Fatalf("full re-sim build: %v", err)
	}
	for i, l := range inst.Launches {
		cfg := sim.Config{
			Device: r.Dev, Program: l.Prog,
			GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
			MaxCycles: r.goldenCycles[i]*10 + 20_000,
		}
		if i == faultLaunch {
			cfg.Fault = plan
		}
		res, err := sim.Run(cfg, inst.Global)
		if err != nil {
			t.Fatalf("full re-sim launch %d: %v", i, err)
		}
		if res.Outcome == sim.OutcomeDUE {
			return DUE
		}
	}
	if !inst.Check(inst.Global) {
		return SDC
	}
	return Masked
}

// clonePlan copies the schedulable part of a fault plan (the engine
// mutates Fired/Landed, so the two engines under comparison each need a
// fresh one).
func clonePlan(p *sim.FaultPlan) *sim.FaultPlan {
	c := *p
	c.Fired = false
	c.Landed = false
	return &c
}

// TestCheckpointedRunMatchesFullResimulation is the golden-equivalence
// gate of the checkpointed engine: over a spread of fault kinds, launch
// indices, trigger points, and bits, snapshot-restore plus early masked
// cutoff must classify exactly like rebuilding and re-simulating the
// whole program. Covers one single-launch kernel and two multi-launch
// kernels so both the skip-prefix and cutoff-suffix paths are exercised.
func TestCheckpointedRunMatchesFullResimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is heavy")
	}
	dev := device.K40c()
	cases := []struct {
		name  string
		build Builder
	}{
		{"FMXM", MxMBuilder(isa.F32)},         // single launch
		{"FHOTSPOT", HotspotBuilder(isa.F32)}, // multi-launch, iterative stencil
		{"MERGESORT", MergesortBuilder()},     // multi-launch, pass hierarchy
	}
	const perKernel = 40
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRunner(c.name, c.build, dev, asm.O2)
			if err != nil {
				t.Fatal(err)
			}
			if c.name != "FMXM" && len(r.Instance().Launches) < 2 {
				t.Fatalf("%s is not multi-launch", c.name)
			}
			rng := stats.NewRNG(0xc4ec, 0x9001)
			launches := r.GoldenProfiles()
			gprFilter := func(op isa.Op) bool { return op.WritesGPR() }
			for i := 0; i < perKernel; i++ {
				launch := rng.IntN(len(launches))
				ops := launches[launch].LaneOps
				kind := sim.FaultKind(rng.IntN(8))
				plan := &sim.FaultPlan{
					Kind:         kind,
					TriggerIndex: uint64(rng.Int64N(int64(ops + 1))),
					Bit:          rng.IntN(64),
					Block:        rng.IntN(4),
					Thread:       rng.IntN(64),
					Reg:          rng.IntN(8),
					BitIdx:       rng.Uint64() % 4096,
				}
				if kind == sim.FaultValueBit && rng.Bool(0.5) {
					plan.Filter = gprFilter
				}
				fast, err := r.RunWithFault(clonePlan(plan), launch)
				if err != nil {
					t.Fatalf("checkpointed run: %v", err)
				}
				full := runWithFaultFull(t, r, clonePlan(plan), launch)
				if fast != full {
					t.Fatalf("case %d: kind %v launch %d trigger %d bit %d: checkpointed %v, full re-sim %v",
						i, plan.Kind, launch, plan.TriggerIndex, plan.Bit, fast, full)
				}
			}
		})
	}
}

// TestRunnerReusableAfterFaults locks in that faulted replays never
// leak corruption into the runner's cached state: a campaign of faults
// followed by a clean replay still classifies the clean replay as
// Masked, and the cached instance still passes its own comparator.
func TestRunnerReusableAfterFaults(t *testing.T) {
	dev := device.K40c()
	r, err := NewRunner("NW", NWBuilder(), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		plan := &sim.FaultPlan{
			Kind:         sim.FaultValueBit,
			TriggerIndex: uint64(i * 37),
			Bit:          i % 32,
		}
		if _, err := r.RunWithFault(plan, i%len(r.Instance().Launches)); err != nil {
			t.Fatal(err)
		}
	}
	// A never-firing plan replays the golden execution.
	out, err := r.RunWithFault(&sim.FaultPlan{Kind: sim.FaultValueBit, TriggerIndex: 1 << 60}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != Masked {
		t.Fatalf("clean replay after faults gave %v, want Masked", out)
	}
	if !r.Instance().Check(r.Instance().Global) {
		t.Fatal("faulted replays corrupted the cached golden memory")
	}
}

// TestSubLaunchReplayAcrossFaultKinds is the golden-equivalence gate of
// the sub-launch machinery specifically: on a single-launch kernel the
// launch-boundary snapshots alone never help, so every saving — mid-
// launch restores before the trigger and rejoin cutoffs after the fault
// washes out — comes from the recorded LaunchImages. Every fault kind
// gets triggers spread across the whole launch, and the checkpointed
// verdict must match full re-simulation for each. The test also asserts
// the machinery actually engaged (images recorded, restores used);
// equivalence proven only on replays that bypassed the images would
// prove nothing.
func TestSubLaunchReplayAcrossFaultKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is heavy")
	}
	dev := device.K40c()
	r, err := NewRunner("FMXM", MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Instance().Launches) != 1 {
		t.Fatalf("FMXM should be single-launch, has %d launches", len(r.Instance().Launches))
	}
	if len(r.images[0]) < 2 {
		t.Fatalf("expected sub-launch images on FMXM, got %d", len(r.images[0]))
	}
	ops := r.GoldenProfiles()[0].LaneOps
	rng := stats.NewRNG(0x5b1a, 0x7002)
	gprFilter := func(op isa.Op) bool { return op.WritesGPR() }
	for kind := sim.FaultKind(0); kind < 8; kind++ {
		for i := 0; i < 5; i++ {
			// Five triggers per kind, spread from the launch's first
			// fifth to its end so plans land on both sides of the
			// recorded images.
			lo := ops * uint64(i) / 5
			plan := &sim.FaultPlan{
				Kind:         kind,
				TriggerIndex: lo + rng.Uint64()%(ops/5+1),
				Bit:          rng.IntN(64),
				Block:        rng.IntN(4),
				Thread:       rng.IntN(64),
				Reg:          rng.IntN(8),
				BitIdx:       rng.Uint64() % 4096,
			}
			if kind == sim.FaultValueBit && rng.Bool(0.5) {
				plan.Filter = gprFilter
			}
			fast, err := r.RunWithFault(clonePlan(plan), 0)
			if err != nil {
				t.Fatalf("checkpointed run: %v", err)
			}
			full := runWithFaultFull(t, r, clonePlan(plan), 0)
			if fast != full {
				t.Fatalf("kind %v trigger %d bit %d: checkpointed %v, full re-sim %v",
					plan.Kind, plan.TriggerIndex, plan.Bit, fast, full)
			}
		}
	}
	restores, rejoins := r.ReplayStats()
	t.Logf("sub-launch replay: %d restores, %d rejoins over 40 faults", restores, rejoins)
	if restores == 0 {
		t.Error("no replay started from a sub-launch image; the spread should have hit late triggers")
	}
}

// TestReplayDeterminismAcrossWorkers locks in that a Runner shared by
// concurrent campaign workers classifies exactly like a sequential one:
// the same plan set run one-at-a-time and under 8 goroutines must give
// identical per-plan outcomes. This is the property campaigns rely on
// when they fan RunWithFault out over a worker pool — the engine's
// pooled memories, image restores, and rejoin compares must not couple
// replays to each other.
func TestReplayDeterminismAcrossWorkers(t *testing.T) {
	dev := device.K40c()
	r, err := NewRunner("FMXM", MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	ops := r.GoldenProfiles()[0].LaneOps
	rng := stats.NewRNG(0xd00d, 0x7003)
	const n = 64
	plans := make([]*sim.FaultPlan, n)
	for i := range plans {
		plans[i] = &sim.FaultPlan{
			Kind:         sim.FaultKind(rng.IntN(8)),
			TriggerIndex: rng.Uint64() % (ops + 1),
			Bit:          rng.IntN(64),
			Block:        rng.IntN(4),
			Thread:       rng.IntN(64),
			Reg:          rng.IntN(8),
			BitIdx:       rng.Uint64() % 4096,
		}
	}
	seq := make([]Outcome, n)
	for i, p := range plans {
		out, err := r.RunWithFault(clonePlan(p), 0)
		if err != nil {
			t.Fatalf("sequential plan %d: %v", i, err)
		}
		seq[i] = out
	}
	par := make([]Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				par[i], errs[i] = r.RunWithFault(clonePlan(plans[i]), 0)
			}
		}()
	}
	for i := range plans {
		work <- i
	}
	close(work)
	wg.Wait()
	for i := range plans {
		if errs[i] != nil {
			t.Fatalf("parallel plan %d: %v", i, errs[i])
		}
		if par[i] != seq[i] {
			t.Errorf("plan %d (kind %v trigger %d): sequential %v, 8-worker %v",
				i, plans[i].Kind, plans[i].TriggerIndex, seq[i], par[i])
		}
	}
}

// TestEarlyCutoffMatchesComparator spot-checks the cutoff logic
// directly: for faults injected into the first launch of a multi-launch
// kernel, a Masked verdict must mean the full pipeline agrees (the
// comparator would also have passed).
func TestEarlyCutoffMatchesComparator(t *testing.T) {
	dev := device.K40c()
	r, err := NewRunner("GAUSSIAN", GaussianBuilder(), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(0xcafe, 7)
	for i := 0; i < 25; i++ {
		plan := &sim.FaultPlan{
			Kind:         sim.FaultValueBit,
			TriggerIndex: uint64(rng.Int64N(int64(r.GoldenProfiles()[0].LaneOps))),
			Bit:          rng.IntN(64),
		}
		fast, err := r.RunWithFault(clonePlan(plan), 0)
		if err != nil {
			t.Fatal(err)
		}
		full := runWithFaultFull(t, r, clonePlan(plan), 0)
		if fast != full {
			t.Fatalf("trigger %d bit %d: cutoff %v vs comparator %v",
				plan.TriggerIndex, plan.Bit, fast, full)
		}
	}
}
