package kernels

import (
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// GEMM is the optimized, library-style matrix multiplication: shared-
// memory k-tiles plus per-thread register micro-tiles, "tuned for
// selected input size, precision, and device configuration" (§III-B).
// Like CUBLAS, each precision instantiates a different kernel: the FP16
// and FP32 variants use an 8x8 register tile, the FP64 variant a 4x4
// tile (half the register budget per value). The register appetite pins
// occupancy near the bottom of Table I while the shared-memory inner
// loop keeps issue IPC among the highest — exactly the GEMM signature
// the paper's prediction model leans on.
const gemmN = 64

type gemmShape struct {
	microM, microN int // per-thread micro-tile
	thrM, thrN     int // thread grid within a block
	kt             int // k-tile depth
}

func gemmShapeFor(dt isa.DType) gemmShape {
	if dt == isa.F64 {
		return gemmShape{microM: 4, microN: 4, thrM: 4, thrN: 8, kt: 8}
	}
	return gemmShape{microM: 8, microN: 8, thrM: 4, thrN: 8, kt: 8}
}

// GEMMBuilder returns the builder for the given precision.
func GEMMBuilder(dt isa.DType) Builder {
	return func(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
		return buildGEMM(dev, opt, ElemFor(dt))
	}
}

func buildGEMM(dev *device.Device, opt asm.OptLevel, e Elem) (*Instance, error) {
	const n = gemmN
	sh := gemmShapeFor(e.dt)
	tileM := sh.microM * sh.thrM // block tile rows
	tileN := sh.microN * sh.thrN // block tile cols

	g := mem.NewGlobal(1 << 22)
	aBase, err := g.Alloc(n * n * int(e.size))
	if err != nil {
		return nil, err
	}
	bBase, _ := g.Alloc(n * n * int(e.size))
	cBase, _ := g.Alloc(n * n * int(e.size))

	r := dataRNG(0x6e33 + uint64(e.dt))
	A := make([]hval, n*n)
	B := make([]hval, n*n)
	for i := range A {
		A[i] = e.round(randUnit(r, -1, 1))
		B[i] = e.round(randUnit(r, -1, 1))
	}
	e.writeSlice(g, aBase, A)
	e.writeSlice(g, bBase, B)

	C := make([]hval, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc hval
			for k := 0; k < n; k++ {
				acc = e.hFMA(A[i*n+k], B[k*n+j], acc)
			}
			C[i*n+j] = acc
		}
	}

	prog, err := buildGEMMKernel(opt, e, sh, n, aBase, bBase, cBase)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:   e.Letter() + "GEMM",
		Dev:    dev,
		Global: g,
		Launches: []Launch{{
			Prog:         prog,
			GridX:        n / tileN,
			GridY:        n / tileM,
			BlockThreads: sh.thrM * sh.thrN,
		}},
		Check:  checkWords(cBase, e.expectWords(C)),
		Output: &OutputRegion{Base: cBase, Rows: n, Cols: n, DType: e.dt},
	}, nil
}

func buildGEMMKernel(opt asm.OptLevel, e Elem, sh gemmShape, n int, aBase, bBase, cBase uint32) (*isa.Program, error) {
	tileM := sh.microM * sh.thrM
	tileN := sh.microN * sh.thrN
	threads := sh.thrM * sh.thrN
	es := int32(e.size)

	b := asm.New(e.Letter()+"gemm_"+map[bool]string{true: "nn4x4", false: "nn8x8"}[e.dt == isa.F64], opt)
	shA := b.AllocShared(tileM * sh.kt * int(e.size))
	shB := b.AllocShared(sh.kt * tileN * int(e.size))

	tid := b.R()
	btx := b.R()
	bty := b.R()
	b.S2R(tid, isa.SrTidX)
	b.S2R(btx, isa.SrCtaidX)
	b.S2R(bty, isa.SrCtaidY)

	// Thread grid coordinates: tr = tid / thrN, tc = tid % thrN
	// (thrN is 8, a power of two).
	tr := b.R()
	tc := b.R()
	b.Shr(tr, isa.R(tid), isa.ImmInt(3))
	b.And(tc, isa.R(tid), isa.ImmInt(7))

	// Global load cursors, advanced per k-tile.
	// A tile: tileM rows x kt cols, row-major; each thread stages
	// aPerThr consecutive elements starting at linear index tid*aPerThr.
	aPerThr := tileM * sh.kt / threads
	bPerThr := sh.kt * tileN / threads
	tmp := b.R()
	aRow := b.R()
	aCol := b.R()
	b.IMul(tmp, isa.R(tid), isa.ImmInt(int32(aPerThr)))
	b.Shr(aRow, isa.R(tmp), isa.ImmInt(shiftFor(sh.kt)))
	b.And(aCol, isa.R(tmp), isa.ImmInt(int32(sh.kt-1)))
	aG := b.R()
	b.IMad(aG, isa.R(bty), isa.ImmInt(int32(tileM)), isa.R(aRow))
	b.IMad(aG, isa.R(aG), isa.ImmInt(int32(n)), isa.R(aCol))
	b.IMad(aG, isa.R(aG), isa.ImmInt(es), isa.ImmInt(int32(aBase)))
	// Shared store cursor for A (tmp still holds tid*aPerThr).
	aS := b.R()
	b.IMad(aS, isa.R(tmp), isa.ImmInt(es), isa.ImmInt(int32(shA)))
	// B tile: kt rows x tileN cols; thread loads bPerThr consecutive
	// elements of one row: bRow = (tid*bPerThr)/tileN, bCol offset.
	bRow := b.R()
	bCol := b.R()
	b.IMul(tmp, isa.R(tid), isa.ImmInt(int32(bPerThr)))
	b.Shr(bRow, isa.R(tmp), isa.ImmInt(shiftFor(tileN)))
	b.And(bCol, isa.R(tmp), isa.ImmInt(int32(tileN-1)))
	bG := b.R()
	b.IMad(tmp, isa.R(bRow), isa.ImmInt(int32(n)), isa.R(bCol))
	b.IMad(bG, isa.R(tmp), isa.ImmInt(es), isa.ImmInt(int32(bBase)))
	b.IMad(bG, isa.R(btx), isa.ImmInt(int32(tileN)*es), isa.R(bG))

	// Shared store cursor for B (constant per thread).
	bS := b.R()
	b.IMad(tmp, isa.R(bRow), isa.ImmInt(int32(tileN)), isa.R(bCol))
	b.IMad(bS, isa.R(tmp), isa.ImmInt(es), isa.ImmInt(int32(shB)))

	// Shared read bases: aRd = shA + tr*microM*kt*es ; bRd = shB + tc*microN*es.
	aRd := b.R()
	b.IMad(aRd, isa.R(tr), isa.ImmInt(int32(sh.microM*sh.kt)*es), isa.ImmInt(int32(shA)))
	bRd := b.R()
	b.IMad(bRd, isa.R(tc), isa.ImmInt(int32(sh.microN)*es), isa.ImmInt(int32(shB)))

	// Accumulators and fragments.
	accRegs := sh.microM * sh.microN
	var acc []isa.Reg
	for i := 0; i < accRegs; i++ {
		v := e.Val(b)
		e.Imm(b, v, 0)
		acc = append(acc, v)
	}
	var aF, bF []isa.Reg
	for i := 0; i < sh.microM; i++ {
		aF = append(aF, e.Val(b))
	}
	for j := 0; j < sh.microN; j++ {
		bF = append(bF, e.Val(b))
	}
	// Rotating staging registers keep the global->shared copies pipelined
	// instead of serializing on one register.
	var stage []isa.Reg
	for i := 0; i < 4; i++ {
		stage = append(stage, e.Val(b))
	}

	kt := b.R()
	b.ForCounter(kt, 0, int32(n/sh.kt), asm.LoopOpts{}, func() {
		// Stage tiles into shared memory: issue a batch of loads, then
		// the matching stores.
		for i := 0; i < aPerThr; i += len(stage) {
			for s := 0; s < len(stage) && i+s < aPerThr; s++ {
				e.Load(b, stage[s], aG, uint32(i+s)*uint32(es))
			}
			for s := 0; s < len(stage) && i+s < aPerThr; s++ {
				e.StoreShared(b, aS, uint32(i+s)*uint32(es), stage[s])
			}
		}
		for i := 0; i < bPerThr; i += len(stage) {
			for s := 0; s < len(stage) && i+s < bPerThr; s++ {
				e.Load(b, stage[s], bG, uint32(i+s)*uint32(es))
			}
			for s := 0; s < len(stage) && i+s < bPerThr; s++ {
				e.StoreShared(b, bS, uint32(i+s)*uint32(es), stage[s])
			}
		}
		b.IAdd(aG, isa.R(aG), isa.ImmInt(int32(sh.kt)*es))
		b.IAdd(bG, isa.R(bG), isa.ImmInt(int32(sh.kt*n)*es))
		b.Bar()
		// Inner product over the k-tile, fully unrolled so the shared
		// loads use immediate offsets.
		for kk := 0; kk < sh.kt; kk++ {
			for i := 0; i < sh.microM; i++ {
				e.LoadShared(b, aF[i], aRd, uint32((i*sh.kt+kk)*int(e.size)))
			}
			for j := 0; j < sh.microN; j++ {
				e.LoadShared(b, bF[j], bRd, uint32((kk*tileN+j)*int(e.size)))
			}
			for i := 0; i < sh.microM; i++ {
				for j := 0; j < sh.microN; j++ {
					e.FMA(b, acc[i*sh.microN+j], aF[i], bF[j], acc[i*sh.microN+j])
				}
			}
		}
		b.Bar()
	})

	// Store the micro-tile: row = bty*tileM + tr*microM + i,
	// col = btx*tileN + tc*microN + j.
	rowBase := b.R()
	b.IMad(rowBase, isa.R(bty), isa.ImmInt(int32(tileM)), isa.R(isa.RZ))
	b.IMad(rowBase, isa.R(tr), isa.ImmInt(int32(sh.microM)), isa.R(rowBase))
	colBase := b.R()
	b.IMad(colBase, isa.R(btx), isa.ImmInt(int32(tileN)), isa.R(isa.RZ))
	b.IMad(colBase, isa.R(tc), isa.ImmInt(int32(sh.microN)), isa.R(colBase))
	cAddr := b.R()
	rr := b.R()
	for i := 0; i < sh.microM; i++ {
		b.IAdd(rr, isa.R(rowBase), isa.ImmInt(int32(i)))
		b.IMad(cAddr, isa.R(rr), isa.ImmInt(int32(n)), isa.R(colBase))
		b.IMad(cAddr, isa.R(cAddr), isa.ImmInt(es), isa.ImmInt(int32(cBase)))
		for j := 0; j < sh.microN; j++ {
			e.Store(b, cAddr, uint32(j*int(e.size)), acc[i*sh.microN+j])
		}
	}
	b.Exit()
	return b.Build()
}

// shiftFor returns log2(v) for the power-of-two tile widths used here.
func shiftFor(v int) int32 {
	s := int32(0)
	for 1<<s < v {
		s++
	}
	return s
}
