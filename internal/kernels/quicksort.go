package kernels

import (
	"sort"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Quicksort sorts independent chunks, one per thread, with an iterative
// Lomuto quicksort driven by an explicit per-thread range stack kept in
// a global-memory scratch area (the workstack idiom of pre-dynamic-
// parallelism GPU quicksorts). Every loop is data-dependent, making this
// the most divergence-heavy integer workload in the suite; its shared-
// memory footprint is nearly zero, matching Table I (328 B).
const (
	qsortThreads = 128
	qsortChunk   = 16
	qsortStackE  = 24 // stack entries per thread (lo, hi pairs)
)

// QuicksortBuilder returns the quicksort builder.
func QuicksortBuilder() Builder {
	return buildQuicksort
}

func buildQuicksort(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
	const (
		nThr  = qsortThreads
		chunk = qsortChunk
		n     = nThr * chunk
	)
	r := dataRNG(0x9507)
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(r.Uint32() & 0xffffff)
	}
	ref := append([]int32(nil), data...)
	for t := 0; t < nThr; t++ {
		c := ref[t*chunk : (t+1)*chunk]
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}

	g := mem.NewGlobal(1 << 22)
	dataBase, err := g.Alloc(n * 4)
	if err != nil {
		return nil, err
	}
	stackBase, _ := g.Alloc(nThr * qsortStackE * 2 * 4)
	for i, v := range data {
		g.SetWord(dataBase+uint32(i*4), uint32(v))
	}

	prog, err := buildQuicksortKernel(opt, chunk, dataBase, stackBase)
	if err != nil {
		return nil, err
	}
	want := make([]uint32, n)
	for i, v := range ref {
		want[i] = uint32(v)
	}
	return &Instance{
		Name:   "QUICKSORT",
		Dev:    dev,
		Global: g,
		Launches: []Launch{{
			Prog: prog, GridX: nThr / 32, GridY: 1, BlockThreads: 32,
		}},
		Check: checkWords(dataBase, want),
		// Each thread's sorted chunk is one row of the output grid.
		Output: &OutputRegion{Base: dataBase, Rows: nThr, Cols: chunk, DType: isa.I32},
	}, nil
}

func buildQuicksortKernel(opt asm.OptLevel, chunk int, dataBase, stackBase uint32) (*isa.Program, error) {
	b := asm.New("quicksort", opt)
	t := emitGID(b)

	// Per-thread stack cursor (entries of two words each).
	stk := b.R()
	b.IMad(stk, isa.R(t), isa.ImmInt(int32(qsortStackE*8)), isa.ImmInt(int32(stackBase)))
	sp := b.R()

	// Push the whole chunk: [t*chunk, t*chunk+chunk-1].
	lo := b.R()
	hi := b.R()
	b.IMul(lo, isa.R(t), isa.ImmInt(int32(chunk)))
	b.IAdd(hi, isa.R(lo), isa.ImmInt(int32(chunk-1)))
	b.Stg(stk, 0, lo)
	b.Stg(stk, 4, hi)
	b.MovImm(sp, 1)

	pSp := b.P()
	pBody := b.P()
	pLE := b.P()
	pJ := b.P()
	sAddr := b.R()
	pivot := b.R()
	i := b.R()
	j := b.R()
	aj := b.R()
	ai := b.R()
	aAddr := b.R()
	bAddr := b.R()
	im1 := b.R()
	ip1 := b.R()

	b.Label("qs_loop")
	b.ISetp(pSp, isa.CmpGT, isa.R(sp), isa.ImmInt(0))
	b.Guarded(pSp, false, func() {
		b.IAdd(sp, isa.R(sp), isa.ImmInt(-1))
		b.IMad(sAddr, isa.R(sp), isa.ImmInt(8), isa.R(stk))
		b.Ldg(lo, sAddr, 0)
		b.Ldg(hi, sAddr, 4)
	})
	// Threads with an empty stack process the inert range (1, 0).
	b.Sel(lo, pSp, isa.R(lo), isa.ImmInt(1))
	b.Sel(hi, pSp, isa.R(hi), isa.ImmInt(0))
	b.ISetp(pBody, isa.CmpLT, isa.R(lo), isa.R(hi))

	// Lomuto partition around pivot = a[hi]. Inert ranges may carry
	// hi = -1, so the (dead) pivot load clamps its index to zero.
	hClamp := b.R()
	b.IMax(hClamp, isa.R(hi), isa.ImmInt(0))
	b.IMad(aAddr, isa.R(hClamp), isa.ImmInt(4), isa.ImmInt(int32(dataBase)))
	b.Ldg(pivot, aAddr, 0)
	b.Mov(i, isa.R(lo))
	b.Mov(j, isa.R(lo))
	b.Label("qs_part")
	b.ISetp(pJ, isa.CmpLT, isa.R(j), isa.R(hi))
	b.Guarded(pJ, false, func() {
		b.IMad(aAddr, isa.R(j), isa.ImmInt(4), isa.ImmInt(int32(dataBase)))
		b.Ldg(aj, aAddr, 0)
	})
	// Threads past their range see a sentinel above any data value
	// (inputs are masked to 24 bits), folding pJ into pLE.
	b.Sel(aj, pJ, isa.R(aj), isa.ImmInt(0x7fffffff))
	b.ISetp(pLE, isa.CmpLE, isa.R(aj), isa.R(pivot))
	b.Guarded(pLE, false, func() {
		b.IMad(bAddr, isa.R(i), isa.ImmInt(4), isa.ImmInt(int32(dataBase)))
		b.Ldg(ai, bAddr, 0)
		b.Stg(bAddr, 0, aj)
		b.Stg(aAddr, 0, ai)
		b.IAdd(i, isa.R(i), isa.ImmInt(1))
	})
	b.IAdd(j, isa.R(j), isa.ImmInt(1))
	b.ISetp(pJ, isa.CmpLT, isa.R(j), isa.R(hi))
	b.BraIf(pJ, false, "qs_part")

	b.Guarded(pBody, false, func() {
		// Place the pivot: swap a[i] <-> a[hi].
		b.IMad(bAddr, isa.R(i), isa.ImmInt(4), isa.ImmInt(int32(dataBase)))
		b.IMad(aAddr, isa.R(hi), isa.ImmInt(4), isa.ImmInt(int32(dataBase)))
		b.Ldg(ai, bAddr, 0)
		b.Stg(bAddr, 0, pivot)
		b.Stg(aAddr, 0, ai)
		// Push (lo, i-1), (i+1, hi).
		b.IAdd(im1, isa.R(i), isa.ImmInt(-1))
		b.IAdd(ip1, isa.R(i), isa.ImmInt(1))
		b.IMad(sAddr, isa.R(sp), isa.ImmInt(8), isa.R(stk))
		b.Stg(sAddr, 0, lo)
		b.Stg(sAddr, 4, im1)
		b.Stg(sAddr, 8, ip1)
		b.Stg(sAddr, 12, hi)
		b.IAdd(sp, isa.R(sp), isa.ImmInt(2))
	})
	b.ISetp(pSp, isa.CmpGT, isa.R(sp), isa.ImmInt(0))
	b.BraIf(pSp, false, "qs_loop")
	b.Exit()
	return b.Build()
}
