package kernels

import (
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/sim"
)

// TestOutcomeStringRoundTrip pins the stringer: the three real outcomes
// have distinct stable names that map back to the value, and anything
// out of range renders as a guarded placeholder instead of garbage (or
// a panic on a corrupted byte read back from a checkpoint).
func TestOutcomeStringRoundTrip(t *testing.T) {
	want := map[Outcome]string{Masked: "Masked", SDC: "SDC", DUE: "DUE"}
	seen := map[string]Outcome{}
	for o, name := range want {
		if got := o.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", uint8(o), got, name)
		}
		if prev, dup := seen[o.String()]; dup {
			t.Errorf("outcomes %d and %d share the name %q", uint8(prev), uint8(o), o.String())
		}
		seen[o.String()] = o
	}
	// Round trip: name -> value -> name.
	for o, name := range want {
		if seen[name] != o {
			t.Errorf("round trip lost %q", name)
		}
	}
	for _, raw := range []uint8{3, 7, 200, 255} {
		got := Outcome(raw).String()
		if _, clash := seen[got]; clash {
			t.Errorf("Outcome(%d).String() = %q collides with a real outcome", raw, got)
		}
		if got == "" {
			t.Errorf("Outcome(%d).String() is empty", raw)
		}
	}
}

// TestTrialRecordDiffInvariants drives real value-bit faults through a
// workload with a declared output region and checks the structured
// record's contract on every outcome:
//
//   - Masked/DUE records carry no diff;
//   - every SDC record counts at least one corrupt word, records at most
//     DiffBudgetWords, and emits addresses in ascending order;
//   - recorded words that differ land inside the declared output region
//     (the capture is element-coalesced, so equal-valued companion words
//     of a corrupt element may also appear);
//   - DiffTruncated is set exactly when corrupt words were dropped.
func TestTrialRecordDiffInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("injects a few hundred faults")
	}
	dev := device.K40c()
	r, err := NewRunner("FMXM", MxMBuilder(isa.F32), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	geo := r.Instance().Output
	if geo == nil {
		t.Fatal("FMXM must declare an output region")
	}
	laneOps := r.GoldenProfiles()[0].LaneOps
	sdcs := 0
	for i := 0; i < 300; i++ {
		plan := &sim.FaultPlan{
			Kind:         sim.FaultValueBit,
			TriggerIndex: uint64(i) * 37 % laneOps,
			Bit:          i % 32,
		}
		rec, err := r.RunTrialWithFault(plan, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Outcome != SDC {
			if len(rec.Diff) != 0 || rec.CorruptWords != 0 || rec.DiffTruncated {
				t.Fatalf("trial %d: %s record carries a diff: %+v", i, rec.Outcome, rec)
			}
			continue
		}
		sdcs++
		if rec.CorruptWords == 0 {
			t.Fatalf("trial %d: SDC with zero corrupt words", i)
		}
		if len(rec.Diff) > DiffBudgetWords {
			t.Fatalf("trial %d: recorded %d words, budget is %d", i, len(rec.Diff), DiffBudgetWords)
		}
		recordedCorrupt := 0
		for j, w := range rec.Diff {
			if j > 0 && rec.Diff[j-1].Addr >= w.Addr {
				t.Fatalf("trial %d: diff addresses not ascending: %#x then %#x",
					i, rec.Diff[j-1].Addr, w.Addr)
			}
			if w.Golden == w.Observed {
				continue // still-golden companion word of a corrupt element
			}
			recordedCorrupt++
			if _, _, ok := geo.Locate(w.Addr); !ok {
				t.Fatalf("trial %d: corrupt word at %#x outside the output region", i, w.Addr)
			}
		}
		if rec.DiffTruncated && rec.CorruptWords <= recordedCorrupt {
			t.Fatalf("trial %d: truncated but all %d corrupt words recorded", i, rec.CorruptWords)
		}
		if !rec.DiffTruncated && rec.CorruptWords != recordedCorrupt {
			t.Fatalf("trial %d: not truncated but recorded %d of %d corrupt words",
				i, recordedCorrupt, rec.CorruptWords)
		}
	}
	if sdcs == 0 {
		t.Fatal("no SDC produced; the invariant run needs at least one")
	}
	t.Logf("checked %d SDC records", sdcs)
}
