package kernels

import (
	"fmt"
	"math"

	"gpurel/internal/asm"
	"gpurel/internal/cnn"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// YOLO lowers the cnn package's YOLOv2-mini / YOLOv3-mini networks onto
// the simulator: every convolution becomes an im2col kernel (for 3x3)
// followed by a GEMM-formulated convolution kernel with fused bias and
// leaky ReLU, plus max-pool and residual kernels. As the paper notes,
// the bulk of the dynamic work is matrix multiplication (§VI), and the
// SDC criterion is detection-equivalence, not bitwise equality.

// YOLOBuilder returns the builder for one network and precision.
// v3 selects YOLOv3-mini; dt must be F16 or F32.
func YOLOBuilder(v3 bool, dt isa.DType) Builder {
	return func(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
		spec := cnn.V2Mini()
		if v3 {
			spec = cnn.V3Mini()
		}
		if dt != isa.F16 && dt != isa.F32 {
			return nil, fmt.Errorf("kernels: YOLO supports F16/F32, not %v", dt)
		}
		return buildYOLO(dev, opt, ElemFor(dt), spec)
	}
}

func buildYOLO(dev *device.Device, opt asm.OptLevel, e Elem, spec cnn.Spec) (*Instance, error) {
	round := func(v float64) float64 { return float64(e.round(hval(v))) }
	weights := cnn.GenerateWeights(spec, round)
	input := cnn.GenerateInput(spec, round)
	ar := cnn.Arith{
		FMA:   func(a, b, c float64) float64 { return float64(e.hFMA(hval(a), hval(b), hval(c))) },
		Add:   func(a, b float64) float64 { return float64(e.hAdd(hval(a), hval(b))) },
		Mul:   func(a, b float64) float64 { return float64(e.hMul(hval(a), hval(b))) },
		Round: round,
	}
	outs, err := cnn.Forward(spec, weights, input, ar)
	if err != nil {
		return nil, err
	}
	dims := spec.Dims()
	headDims := dims[len(dims)-1]
	cells := headDims[1] * headDims[2]
	golden := cnn.Decode(outs[len(outs)-1], spec.Classes, cells)

	g := mem.NewGlobal(1 << 23)
	es := int(e.size)
	toH := func(vs []float64) []hval {
		out := make([]hval, len(vs))
		for i, v := range vs {
			out[i] = hval(v)
		}
		return out
	}

	inBase, err := g.Alloc(len(input) * es)
	if err != nil {
		return nil, err
	}
	e.writeSlice(g, inBase, toH(input))

	// Per-layer output buffers, plus parameter and scratch buffers.
	layerBase := make([]uint32, len(spec.Layers))
	for i, d := range dims {
		layerBase[i], _ = g.Alloc(d[0] * d[1] * d[2] * es)
	}
	wBase := make([]uint32, len(spec.Layers))
	bBase := make([]uint32, len(spec.Layers))
	maxCol := 0
	curH, curW := spec.InH, spec.InW
	for i, l := range spec.Layers {
		if l.Kind == cnn.MaxPool {
			curH, curW = curH/2, curW/2
		}
		if l.Kind != cnn.Conv {
			continue
		}
		wBase[i], _ = g.Alloc(len(weights.Filters[i]) * es)
		e.writeSlice(g, wBase[i], toH(weights.Filters[i]))
		bBase[i], _ = g.Alloc(len(weights.Biases[i]) * es)
		e.writeSlice(g, bBase[i], toH(weights.Biases[i]))
		if l.K == 3 {
			if sz := l.InC * 9 * curH * curW; sz > maxCol {
				maxCol = sz
			}
		}
	}
	colBase, _ := g.Alloc(maxCol * es)

	var launches []Launch
	curH, curW = spec.InH, spec.InW
	curBase := inBase
	curC := spec.InC
	for li, l := range spec.Layers {
		switch l.Kind {
		case cnn.Conv:
			src := curBase
			k := l.InC * l.K * l.K
			n := curH * curW
			if l.K == 3 {
				im, err := buildIm2Col(opt, e, li, l.InC, curH, curW, curBase, colBase)
				if err != nil {
					return nil, err
				}
				launches = append(launches, Launch{Prog: im, GridX: 1, GridY: curH, BlockThreads: curW})
				src = colBase
			}
			conv, err := buildConvGEMM(opt, e, li, k, n, l.Leaky, src, wBase[li], bBase[li], layerBase[li])
			if err != nil {
				return nil, err
			}
			launches = append(launches, Launch{Prog: conv, GridX: 1, GridY: l.OutC, BlockThreads: n})
			curBase, curC = layerBase[li], l.OutC
		case cnn.MaxPool:
			pool, err := buildMaxPool(opt, e, li, curH, curW, curBase, layerBase[li])
			if err != nil {
				return nil, err
			}
			launches = append(launches, Launch{Prog: pool, GridX: curH / 2, GridY: curC, BlockThreads: curW / 2})
			curBase = layerBase[li]
			curH, curW = curH/2, curW/2
		case cnn.Residual:
			res, err := buildResidual(opt, e, li, curH*curW, curBase, layerBase[l.From], layerBase[li])
			if err != nil {
				return nil, err
			}
			launches = append(launches, Launch{Prog: res, GridX: 1, GridY: curC, BlockThreads: curH * curW})
			curBase = layerBase[li]
		}
	}

	headBase := layerBase[len(layerBase)-1]
	classes := spec.Classes
	tol := spec.Tol
	headWords := headDims[0] * cells
	name := e.Letter() + spec.Name
	return &Instance{
		Name:     name,
		Dev:      dev,
		Global:   g,
		Launches: launches,
		Check: func(gm *mem.Global) bool {
			head := make([]float64, headWords)
			for i := range head {
				w := gm.Word(headBase + uint32(i*es))
				if e.dt == isa.F16 {
					head[i] = float64(isa.F16ToF32(isa.Float16(w & 0xffff)))
				} else {
					head[i] = float64(math.Float32frombits(w))
				}
			}
			return cnn.SameDetections(golden, cnn.Decode(head, classes, cells), tol)
		},
		// The detection head: one channel per row, one cell per column.
		Output: &OutputRegion{Base: headBase, Rows: headDims[0], Cols: cells, DType: e.dt},
	}, nil
}

// buildIm2Col lowers one CHW feature map into the (C*9) x (H*W) GEMM
// operand with zero padding, one thread per pixel column.
func buildIm2Col(opt asm.OptLevel, e Elem, li, c, h, w int, src, dst uint32) (*isa.Program, error) {
	es := int32(e.size)
	b := asm.New(fmt.Sprintf("%sim2col_l%d", e.Letter(), li), opt)
	x := b.R()
	y := b.R()
	b.S2R(x, isa.SrTidX)
	b.S2R(y, isa.SrCtaidY)
	n := int32(h * w)
	pix := b.R()
	b.IMad(pix, isa.R(y), isa.ImmInt(int32(w)), isa.R(x))

	// Destination cursor walks kidx rows of the column matrix.
	dAddr := b.R()
	b.IMad(dAddr, isa.R(pix), isa.ImmInt(es), isa.ImmInt(int32(dst)))

	sy := b.R()
	sx := b.R()
	guard := b.R()
	tmp := b.R()
	ok := b.P()
	v := e.Val(b)
	sAddr := b.R()
	ci := b.R()
	dy := b.R()
	dx := b.R()
	b.ForCounter(ci, 0, int32(c), asm.LoopOpts{}, func() {
		b.ForCounter(dy, 0, 3, asm.LoopOpts{}, func() {
			b.ForCounter(dx, 0, 3, asm.LoopOpts{}, func() {
				b.IAdd(sy, isa.R(y), isa.R(dy))
				b.IAdd(sy, isa.R(sy), isa.ImmInt(-1))
				b.IAdd(sx, isa.R(x), isa.R(dx))
				b.IAdd(sx, isa.R(sx), isa.ImmInt(-1))
				// In-bounds iff (sy | h-1-sy | sx | w-1-sx) >= 0.
				b.ISub(guard, isa.ImmInt(int32(h-1)), isa.R(sy))
				b.Or(guard, isa.R(guard), isa.R(sy))
				b.ISub(tmp, isa.ImmInt(int32(w-1)), isa.R(sx))
				b.Or(guard, isa.R(guard), isa.R(tmp))
				b.Or(guard, isa.R(guard), isa.R(sx))
				b.ISetp(ok, isa.CmpGE, isa.R(guard), isa.ImmInt(0))
				e.Imm(b, v, 0)
				b.Guarded(ok, false, func() {
					b.IMad(sAddr, isa.R(ci), isa.ImmInt(n), isa.R(isa.RZ))
					b.IMad(sAddr, isa.R(sy), isa.ImmInt(int32(w)), isa.R(sAddr))
					b.IAdd(sAddr, isa.R(sAddr), isa.R(sx))
					b.IMad(sAddr, isa.R(sAddr), isa.ImmInt(es), isa.ImmInt(int32(src)))
					e.Load(b, v, sAddr, 0)
				})
				e.Store(b, dAddr, 0, v)
				b.IAdd(dAddr, isa.R(dAddr), isa.ImmInt(n*es))
			})
		})
	})
	b.Exit()
	return b.Build()
}

// buildConvGEMM emits the GEMM-formulated convolution with fused bias
// and optional leaky ReLU: out[m][x] = leaky(sum_k W[m][k]*col[k][x] + b[m]).
func buildConvGEMM(opt asm.OptLevel, e Elem, li, k, n int, leaky bool, colB, wB, bB, outB uint32) (*isa.Program, error) {
	es := int32(e.size)
	b := asm.New(fmt.Sprintf("%sconv_l%d", e.Letter(), li), opt)
	x := b.R()
	m := b.R()
	b.S2R(x, isa.SrTidX)
	b.S2R(m, isa.SrCtaidY)

	wAddr := b.R()
	b.IMad(wAddr, isa.R(m), isa.ImmInt(int32(k)*es), isa.ImmInt(int32(wB)))
	cAddr := b.R()
	b.IMad(cAddr, isa.R(x), isa.ImmInt(es), isa.ImmInt(int32(colB)))

	acc := e.Val(b)
	wv := e.Val(b)
	cv := e.Val(b)
	e.Imm(b, acc, 0)
	kk := b.R()
	// Group k-iterations so the loads use immediate offsets and the
	// address arithmetic amortizes, as a tuned GEMM inner loop does.
	group := 1
	if k%3 == 0 {
		group = 3
	}
	b.ForCounter(kk, 0, int32(k/group), asm.LoopOpts{}, func() {
		for u := 0; u < group; u++ {
			e.Load(b, wv, wAddr, uint32(int32(u)*es))
			e.Load(b, cv, cAddr, uint32(int32(u*n)*es))
			e.FMA(b, acc, wv, cv, acc)
		}
		b.IAdd(wAddr, isa.R(wAddr), isa.ImmInt(int32(group)*es))
		b.IAdd(cAddr, isa.R(cAddr), isa.ImmInt(int32(group*n)*es))
	})

	bAddr := b.R()
	b.IMad(bAddr, isa.R(m), isa.ImmInt(es), isa.ImmInt(int32(bB)))
	bv := e.Val(b)
	e.Load(b, bv, bAddr, 0)
	e.Add(b, acc, acc, bv)
	if leaky {
		zero := e.Val(b)
		e.Imm(b, zero, 0)
		slope := e.Val(b)
		e.Imm(b, slope, 0.1)
		neg := e.Val(b)
		e.Mul(b, neg, acc, slope)
		p := b.P()
		if e.dt == isa.F16 {
			b.HSetp(p, isa.CmpLT, isa.R(acc), isa.R(zero))
		} else {
			b.FSetp(p, isa.CmpLT, isa.R(acc), isa.R(zero))
		}
		b.Sel(acc, p, isa.R(neg), isa.R(acc))
	}
	oAddr := b.R()
	b.IMad(oAddr, isa.R(m), isa.ImmInt(int32(n)), isa.R(x))
	b.IMad(oAddr, isa.R(oAddr), isa.ImmInt(es), isa.ImmInt(int32(outB)))
	e.Store(b, oAddr, 0, acc)
	b.Exit()
	return b.Build()
}

// buildMaxPool emits the 2x2/stride-2 max pooling: CTAID.Y is the
// channel, CTAID.X the output row, threads the output columns.
func buildMaxPool(opt asm.OptLevel, e Elem, li, h, w int, src, dst uint32) (*isa.Program, error) {
	es := int32(e.size)
	oh, ow := h/2, w/2
	b := asm.New(fmt.Sprintf("%spool_l%d", e.Letter(), li), opt)
	ox := b.R()
	oy := b.R()
	c := b.R()
	b.S2R(ox, isa.SrTidX)
	b.S2R(oy, isa.SrCtaidX)
	b.S2R(c, isa.SrCtaidY)

	// base = src + (c*h*w + 2*oy*w + 2*ox) * es
	addr := b.R()
	b.IMad(addr, isa.R(c), isa.ImmInt(int32(h*w)), isa.R(isa.RZ))
	tmp := b.R()
	b.IMul(tmp, isa.R(oy), isa.ImmInt(int32(2*w)))
	b.IAdd(addr, isa.R(addr), isa.R(tmp))
	b.IMad(addr, isa.R(ox), isa.ImmInt(2), isa.R(addr))
	b.IMad(addr, isa.R(addr), isa.ImmInt(es), isa.ImmInt(int32(src)))

	v0, v1 := e.Val(b), e.Val(b)
	p := b.P()
	max := func(a, s isa.Reg) {
		if e.dt == isa.F16 {
			b.HSetp(p, isa.CmpGT, isa.R(s), isa.R(a))
		} else {
			b.FSetp(p, isa.CmpGT, isa.R(s), isa.R(a))
		}
		b.Sel(a, p, isa.R(s), isa.R(a))
	}
	e.Load(b, v0, addr, 0)
	e.Load(b, v1, addr, uint32(es))
	max(v0, v1)
	e.Load(b, v1, addr, uint32(int32(w)*es))
	max(v0, v1)
	e.Load(b, v1, addr, uint32((int32(w)+1)*es))
	max(v0, v1)

	out := b.R()
	b.IMad(out, isa.R(c), isa.ImmInt(int32(oh*ow)), isa.R(isa.RZ))
	b.IMad(out, isa.R(oy), isa.ImmInt(int32(ow)), isa.R(out))
	b.IAdd(out, isa.R(out), isa.R(ox))
	b.IMad(out, isa.R(out), isa.ImmInt(es), isa.ImmInt(int32(dst)))
	e.Store(b, out, 0, v0)
	b.Exit()
	return b.Build()
}

// buildResidual emits the elementwise residual addition of two feature
// maps: CTAID.Y is the channel, threads the pixels.
func buildResidual(opt asm.OptLevel, e Elem, li, n int, aB, bB2, outB uint32) (*isa.Program, error) {
	es := int32(e.size)
	b := asm.New(fmt.Sprintf("%sres_l%d", e.Letter(), li), opt)
	x := b.R()
	c := b.R()
	b.S2R(x, isa.SrTidX)
	b.S2R(c, isa.SrCtaidY)
	idx := b.R()
	b.IMad(idx, isa.R(c), isa.ImmInt(int32(n)), isa.R(x))
	a1 := b.R()
	b.IMad(a1, isa.R(idx), isa.ImmInt(es), isa.ImmInt(int32(aB)))
	a2 := b.R()
	b.IMad(a2, isa.R(idx), isa.ImmInt(es), isa.ImmInt(int32(bB2)))
	a3 := b.R()
	b.IMad(a3, isa.R(idx), isa.ImmInt(es), isa.ImmInt(int32(outB)))
	u, v := e.Val(b), e.Val(b)
	e.Load(b, u, a1, 0)
	e.Load(b, v, a2, 0)
	e.Add(b, u, u, v)
	e.Store(b, a3, 0, u)
	b.Exit()
	return b.Build()
}
