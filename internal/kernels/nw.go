package kernels

import (
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// NW is the Needleman-Wunsch sequence-alignment benchmark: an integer
// dynamic program over a (N+1)x(N+1) score matrix, processed as a
// wavefront of TxT tiles. Each launch handles one anti-diagonal of
// tiles; inside a tile, T threads sweep its 2T-1 cell anti-diagonals
// with a barrier per step. The tiny tile blocks and barrier-serialized
// inner loop reproduce the paper's observation that NW under-utilizes
// the GPU (Table I: occupancy 0.08, IPC 0.2), which is exactly where
// the FIT prediction underestimates the beam the most (§VII-A).
const (
	nwN       = 48
	nwTile    = 16
	nwPenalty = 1
)

// NWBuilder returns the Needleman-Wunsch builder.
func NWBuilder() Builder {
	return buildNW
}

func buildNW(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
	const (
		n = nwN
		t = nwTile
	)
	rows := n + 1
	g := mem.NewGlobal(1 << 22)
	scoreBase, err := g.Alloc(rows * rows * 4)
	if err != nil {
		return nil, err
	}
	wBase, _ := g.Alloc(n * n * 4)

	r := dataRNG(0x5e9)
	W := make([]int32, n*n)
	for i := range W {
		W[i] = int32(r.IntN(7)) - 3
	}
	score := make([]int32, rows*rows)
	for i := 0; i < rows; i++ {
		score[i*rows] = int32(-i * nwPenalty)
		score[i] = int32(-i * nwPenalty)
	}
	for i, v := range W {
		g.SetWord(wBase+uint32(i*4), uint32(v))
	}
	for i, v := range score {
		g.SetWord(scoreBase+uint32(i*4), uint32(v))
	}

	// Host reference.
	ref := append([]int32(nil), score...)
	maxI := func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	}
	for i := 1; i < rows; i++ {
		for j := 1; j < rows; j++ {
			d := ref[(i-1)*rows+(j-1)] + W[(i-1)*n+(j-1)]
			u := ref[(i-1)*rows+j] - nwPenalty
			l := ref[i*rows+(j-1)] - nwPenalty
			ref[i*rows+j] = maxI(d, maxI(u, l))
		}
	}

	nt := n / t
	var launches []Launch
	for wave := 0; wave < 2*nt-1; wave++ {
		prog, err := buildNWTileKernel(opt, wave, n, t, scoreBase, wBase)
		if err != nil {
			return nil, err
		}
		// Tiles (ti, tj) with ti+tj == wave, 0 <= ti,tj < nt.
		lo := 0
		if wave > nt-1 {
			lo = wave - (nt - 1)
		}
		hi := wave
		if hi > nt-1 {
			hi = nt - 1
		}
		blocks := hi - lo + 1
		launches = append(launches, Launch{
			Prog: prog, GridX: blocks, GridY: 1, BlockThreads: t,
		})
	}
	want := make([]uint32, len(ref))
	for i, v := range ref {
		want[i] = uint32(v)
	}
	return &Instance{
		Name:     "NW",
		Dev:      dev,
		Global:   g,
		Launches: launches,
		Check:    checkWords(scoreBase, want),
		Output:   &OutputRegion{Base: scoreBase, Rows: rows, Cols: rows, DType: isa.I32},
	}, nil
}

// buildNWTileKernel processes the tiles of one wavefront. CTAID.X picks
// the tile along the anti-diagonal. The tile's (T+1)x(T+1) score halo is
// staged in shared memory, swept diagonally with a barrier per step, and
// written back.
func buildNWTileKernel(opt asm.OptLevel, wave, n, t int, scoreBase, wBase uint32) (*isa.Program, error) {
	rows := n + 1
	nt := n / t
	b := asm.New("nw_tile", opt)
	shScore := b.AllocShared((t + 1) * (t + 1) * 4)
	shW := b.AllocShared(t * t * 4)

	tid := b.R()
	blk := b.R()
	b.S2R(tid, isa.SrTidX)
	b.S2R(blk, isa.SrCtaidX)

	// Tile coordinates: ti = lo + blk, tj = wave - ti.
	lo := 0
	if wave > nt-1 {
		lo = wave - (nt - 1)
	}
	ti := b.R()
	tj := b.R()
	b.IAdd(ti, isa.R(blk), isa.ImmInt(int32(lo)))
	b.ISub(tj, isa.ImmInt(int32(wave)), isa.R(ti))

	// Global origin of the tile in the score matrix: (ti*t, tj*t);
	// cell (1,1) of the tile maps to score[orow+1][ocol+1].
	orow := b.R()
	ocol := b.R()
	b.IMul(orow, isa.R(ti), isa.ImmInt(int32(t)))
	b.IMul(ocol, isa.R(tj), isa.ImmInt(int32(t)))

	gAddr := b.R()
	sAddr := b.R()
	v := b.R()
	rr := b.R()

	// Stage the (t+1)x(t+1) score halo: on halo row r, thread tx loads
	// column tx and thread 0 additionally loads column t.
	rloop := b.R()
	b.ForCounter(rloop, 0, int32(t+1), asm.LoopOpts{}, func() {
		b.IAdd(rr, isa.R(orow), isa.R(rloop))
		b.IMad(gAddr, isa.R(rr), isa.ImmInt(int32(rows)), isa.R(ocol))
		b.IMad(gAddr, isa.R(gAddr), isa.ImmInt(4), isa.ImmInt(int32(scoreBase)))
		b.IMad(gAddr, isa.R(tid), isa.ImmInt(4), isa.R(gAddr))
		b.Ldg(v, gAddr, 0)
		b.IMul(sAddr, isa.R(rloop), isa.ImmInt(int32(t+1)*4))
		b.IMad(sAddr, isa.R(tid), isa.ImmInt(4), isa.R(sAddr))
		b.IAdd(sAddr, isa.R(sAddr), isa.ImmInt(int32(shScore)))
		b.Sts(sAddr, 0, v)
		p0 := b.P()
		b.ISetp(p0, isa.CmpEQ, isa.R(tid), isa.ImmInt(0))
		b.Guarded(p0, false, func() {
			b.Ldg(v, gAddr, uint32(t*4))
			b.Sts(sAddr, uint32(t*4), v)
		})
		b.ReleaseP(p0)
	})
	// Stage the t x t similarity tile.
	b.ForCounter(rloop, 0, int32(t), asm.LoopOpts{}, func() {
		b.IAdd(rr, isa.R(orow), isa.R(rloop))
		b.IMad(gAddr, isa.R(rr), isa.ImmInt(int32(n)), isa.R(ocol))
		b.IMad(gAddr, isa.R(gAddr), isa.ImmInt(4), isa.ImmInt(int32(wBase)))
		b.IMad(gAddr, isa.R(tid), isa.ImmInt(4), isa.R(gAddr))
		b.Ldg(v, gAddr, 0)
		b.IMul(sAddr, isa.R(rloop), isa.ImmInt(int32(t)*4))
		b.IMad(sAddr, isa.R(tid), isa.ImmInt(4), isa.R(sAddr))
		b.IAdd(sAddr, isa.R(sAddr), isa.ImmInt(int32(shW)))
		b.Sts(sAddr, 0, v)
	})
	b.Bar()

	// Diagonal sweep: at step s, thread tx owns cell (rowIdx+1, tx+1)
	// with rowIdx = s - tx, valid while 0 <= rowIdx < t.
	s := b.R()
	rowIdx := b.R()
	guard := b.R()
	inRange := b.P()
	dAddr := b.R()
	wAddr := b.R()
	diag := b.R()
	up := b.R()
	left := b.R()
	wv := b.R()
	best := b.R()
	b.ForCounter(s, 0, int32(2*t-1), asm.LoopOpts{}, func() {
		b.ISub(rowIdx, isa.R(s), isa.R(tid))
		// Sign trick: rowIdx | (t-1-rowIdx) is negative iff out of range.
		b.ISub(guard, isa.ImmInt(int32(t-1)), isa.R(rowIdx))
		b.Or(guard, isa.R(guard), isa.R(rowIdx))
		b.ISetp(inRange, isa.CmpGE, isa.R(guard), isa.ImmInt(0))
		b.Guarded(inRange, false, func() {
			// dAddr points at the diagonal neighbour sh[rowIdx][tx];
			// up, left, and the cell itself are at fixed offsets.
			b.IMul(dAddr, isa.R(rowIdx), isa.ImmInt(int32(t+1)*4))
			b.IMad(dAddr, isa.R(tid), isa.ImmInt(4), isa.R(dAddr))
			b.IAdd(dAddr, isa.R(dAddr), isa.ImmInt(int32(shScore)))
			b.Lds(diag, dAddr, 0)
			b.Lds(up, dAddr, 4)
			b.Lds(left, dAddr, uint32((t+1)*4))
			b.IMad(wAddr, isa.R(rowIdx), isa.ImmInt(int32(t)*4), isa.ImmInt(int32(shW)))
			b.IMad(wAddr, isa.R(tid), isa.ImmInt(4), isa.R(wAddr))
			b.Lds(wv, wAddr, 0)
			b.IAdd(diag, isa.R(diag), isa.R(wv))
			b.IAdd(up, isa.R(up), isa.ImmInt(-nwPenalty))
			b.IAdd(left, isa.R(left), isa.ImmInt(-nwPenalty))
			b.IMax(best, isa.R(up), isa.R(left))
			b.IMax(best, isa.R(best), isa.R(diag))
			b.Sts(dAddr, uint32((t+2)*4), best)
		})
		b.Bar()
	})

	// Write the interior back: thread tx owns column tx+1.
	b.ForCounter(rloop, 1, int32(t+1), asm.LoopOpts{}, func() {
		b.IMul(sAddr, isa.R(rloop), isa.ImmInt(int32(t+1)*4))
		b.IMad(sAddr, isa.R(tid), isa.ImmInt(4), isa.R(sAddr))
		b.IAdd(sAddr, isa.R(sAddr), isa.ImmInt(int32(shScore)+4))
		b.Lds(v, sAddr, 0)
		b.IAdd(rr, isa.R(orow), isa.R(rloop))
		b.IMad(gAddr, isa.R(rr), isa.ImmInt(int32(rows)), isa.R(ocol))
		b.IMad(gAddr, isa.R(gAddr), isa.ImmInt(4), isa.ImmInt(int32(scoreBase)+4))
		b.IMad(gAddr, isa.R(tid), isa.ImmInt(4), isa.R(gAddr))
		b.Stg(gAddr, 0, v)
	})
	b.Exit()
	return b.Build()
}
