package kernels

import (
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// BFS is the Rodinia level-synchronous breadth-first search: one thread
// per vertex, one launch per frontier level. Threads in the frontier
// walk their CSR adjacency list (a data-dependent, divergent loop),
// label unvisited neighbours with the level, and populate the next
// frontier. Integer-only, high occupancy, low IPC (Table I).
const (
	bfsNodes  = 1024
	bfsDegree = 4
	bfsBlock  = 256
)

// BFSBuilder returns the BFS builder.
func BFSBuilder() Builder {
	return buildBFS
}

// bfsGraph generates the deterministic test graph in CSR form: each
// vertex points at its successor (guaranteeing connectivity) plus three
// pseudo-random targets.
func bfsGraph() (rowPtr []int32, cols []int32) {
	n := bfsNodes
	rowPtr = make([]int32, n+1)
	for v := 0; v < n; v++ {
		rowPtr[v] = int32(v * bfsDegree)
		cols = append(cols,
			int32((v+1)%n),
			int32((v*7+1)%n),
			int32((v*13+5)%n),
			int32((v*29+11)%n),
		)
	}
	rowPtr[n] = int32(n * bfsDegree)
	return rowPtr, cols
}

func buildBFS(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
	n := bfsNodes
	rowPtr, cols := bfsGraph()

	// Host BFS for the reference distances and the level count.
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	frontier := []int32{0}
	levels := 0
	for len(frontier) > 0 {
		levels++
		var next []int32
		for _, v := range frontier {
			for e := rowPtr[v]; e < rowPtr[v+1]; e++ {
				nb := cols[e]
				if dist[nb] < 0 {
					dist[nb] = int32(levels)
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}

	g := mem.NewGlobal(1 << 22)
	rpBase, err := g.Alloc((n + 1) * 4)
	if err != nil {
		return nil, err
	}
	colBase, _ := g.Alloc(len(cols) * 4)
	distBase, _ := g.Alloc(n * 4)
	visBase, _ := g.Alloc(n * 4)
	fABase, _ := g.Alloc(n * 4)
	fBBase, _ := g.Alloc(n * 4)

	for i, v := range rowPtr {
		g.SetWord(rpBase+uint32(i*4), uint32(v))
	}
	for i, v := range cols {
		g.SetWord(colBase+uint32(i*4), uint32(v))
	}
	for i := 0; i < n; i++ {
		g.SetWord(distBase+uint32(i*4), ^uint32(0)) // -1
	}
	g.SetWord(distBase, 0)
	g.SetWord(visBase, 1)
	g.SetWord(fABase, 1)

	var launches []Launch
	for l := 1; l <= levels; l++ {
		cur, next := fABase, fBBase
		if l%2 == 0 {
			cur, next = fBBase, fABase
		}
		prog, err := buildBFSLevel(opt, l, n, rpBase, colBase, distBase, visBase, cur, next)
		if err != nil {
			return nil, err
		}
		launches = append(launches, Launch{
			Prog: prog, GridX: n / bfsBlock, GridY: 1, BlockThreads: bfsBlock,
		})
	}
	want := make([]uint32, n)
	for i, v := range dist {
		want[i] = uint32(v)
	}
	return &Instance{
		Name:     "BFS",
		Dev:      dev,
		Global:   g,
		Launches: launches,
		Check:    checkWords(distBase, want),
		Output:   &OutputRegion{Base: distBase, Rows: 1, Cols: n, DType: isa.I32},
	}, nil
}

// buildBFSLevel emits one frontier-expansion kernel for the given level.
func buildBFSLevel(opt asm.OptLevel, level, n int, rpBase, colBase, distBase, visBase, curBase, nextBase uint32) (*isa.Program, error) {
	b := asm.New("bfs_level", opt)
	v := emitGID(b)

	fAddr := emitAddr(b, v, curBase, 4)
	inF := b.R()
	b.Ldg(inF, fAddr, 0)
	pF := b.P()
	b.ISetp(pF, isa.CmpNE, isa.R(inF), isa.ImmInt(0))
	b.If(pF, false, func() {
		// Clear our frontier flag so the ping-pong buffer is reusable.
		zero := b.R()
		b.MovImm(zero, 0)
		b.Stg(fAddr, 0, zero)

		rpAddr := emitAddr(b, v, rpBase, 4)
		e := b.R()
		eEnd := b.R()
		b.Ldg(e, rpAddr, 0)
		b.Ldg(eEnd, rpAddr, 4)

		pEdge := b.P()
		pVis := b.P()
		nb := b.R()
		nbVis := b.R()
		colAddr := b.R()
		visAddr := b.R()
		distAddr := b.R()
		nxtAddr := b.R()
		one := b.R()
		lvl := b.R()
		b.MovImm(one, 1)
		b.MovImmInt(lvl, int32(level))

		b.Label("edges")
		b.IMad(colAddr, isa.R(e), isa.ImmInt(4), isa.ImmInt(int32(colBase)))
		b.Ldg(nb, colAddr, 0)
		b.IMad(visAddr, isa.R(nb), isa.ImmInt(4), isa.ImmInt(int32(visBase)))
		b.Ldg(nbVis, visAddr, 0)
		b.ISetp(pVis, isa.CmpEQ, isa.R(nbVis), isa.ImmInt(0))
		b.Guarded(pVis, false, func() {
			b.Stg(visAddr, 0, one)
			b.IMad(distAddr, isa.R(nb), isa.ImmInt(4), isa.ImmInt(int32(distBase)))
			b.Stg(distAddr, 0, lvl)
			b.IMad(nxtAddr, isa.R(nb), isa.ImmInt(4), isa.ImmInt(int32(nextBase)))
			b.Stg(nxtAddr, 0, one)
		})
		b.IAdd(e, isa.R(e), isa.ImmInt(1))
		b.ISetp(pEdge, isa.CmpLT, isa.R(e), isa.R(eEnd))
		b.BraIf(pEdge, false, "edges")
	})
	b.Exit()
	return b.Build()
}
