package kernels

import (
	"fmt"
	"math"

	"gpurel/internal/asm"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
	"gpurel/internal/stats"
)

// emitGID emits the global-thread-id computation (ctaid.x*ntid.x + tid.x)
// into a fresh register.
func emitGID(b *asm.Builder) isa.Reg {
	tid, cta, ntid, g := b.R(), b.R(), b.R(), b.R()
	b.S2R(tid, isa.SrTidX)
	b.S2R(cta, isa.SrCtaidX)
	b.S2R(ntid, isa.SrNtidX)
	b.IMad(g, isa.R(cta), isa.R(ntid), isa.R(tid))
	return g
}

// emitAddr emits base + idx*scale into a fresh register.
func emitAddr(b *asm.Builder, idx isa.Reg, base uint32, scale int32) isa.Reg {
	a := b.R()
	b.IMad(a, isa.R(idx), isa.ImmInt(scale), isa.ImmInt(int32(base)))
	return a
}

// Elem abstracts the three floating-point precisions so one kernel source
// serves the H/F/D variants of Table I. FP16 values are stored one per
// 32-bit word (low half); FP64 uses 8-byte elements and register pairs.
type Elem struct {
	dt   isa.DType
	size int32 // bytes per element in memory
}

// ElemFor returns the precision abstraction for a data type.
func ElemFor(dt isa.DType) Elem {
	switch dt {
	case isa.F16:
		return Elem{dt: isa.F16, size: 4}
	case isa.F32:
		return Elem{dt: isa.F32, size: 4}
	case isa.F64:
		return Elem{dt: isa.F64, size: 8}
	default:
		panic(fmt.Sprintf("kernels: unsupported element type %v", dt))
	}
}

// Letter returns the paper's precision prefix: H, F, or D.
func (e Elem) Letter() string {
	switch e.dt {
	case isa.F16:
		return "H"
	case isa.F64:
		return "D"
	default:
		return "F"
	}
}

// Val allocates a value register (pair for FP64).
func (e Elem) Val(b *asm.Builder) isa.Reg {
	if e.dt == isa.F64 {
		return b.RPair()
	}
	return b.R()
}

// Load emits the element load (wide pair for FP64).
func (e Elem) Load(b *asm.Builder, dst, addr isa.Reg, off uint32) {
	if e.dt == isa.F64 {
		b.LdgWide(dst, addr, off)
	} else {
		b.Ldg(dst, addr, off)
	}
}

// Store emits the element store (wide pair for FP64).
func (e Elem) Store(b *asm.Builder, addr isa.Reg, off uint32, val isa.Reg) {
	if e.dt == isa.F64 {
		b.StgWide(addr, off, val)
	} else {
		b.Stg(addr, off, val)
	}
}

// LoadShared emits the shared-memory element load.
func (e Elem) LoadShared(b *asm.Builder, dst, addr isa.Reg, off uint32) {
	if e.dt == isa.F64 {
		b.LdsWide(dst, addr, off)
	} else {
		b.Lds(dst, addr, off)
	}
}

// StoreShared emits the shared-memory element store.
func (e Elem) StoreShared(b *asm.Builder, addr isa.Reg, off uint32, val isa.Reg) {
	if e.dt == isa.F64 {
		b.StsWide(addr, off, val)
	} else {
		b.Sts(addr, off, val)
	}
}

// FMA emits the fused multiply-add in the working precision.
func (e Elem) FMA(b *asm.Builder, d, a, s, c isa.Reg) {
	switch e.dt {
	case isa.F16:
		b.HFma(d, isa.R(a), isa.R(s), isa.R(c))
	case isa.F64:
		b.DFma(d, a, s, c)
	default:
		b.FFma(d, isa.R(a), isa.R(s), isa.R(c))
	}
}

// Add emits the addition in the working precision.
func (e Elem) Add(b *asm.Builder, d, a, s isa.Reg) {
	switch e.dt {
	case isa.F16:
		b.HAdd(d, isa.R(a), isa.R(s))
	case isa.F64:
		b.DAdd(d, a, s)
	default:
		b.FAdd(d, isa.R(a), isa.R(s))
	}
}

// Sub emits the subtraction in the working precision.
func (e Elem) Sub(b *asm.Builder, d, a, s isa.Reg) {
	switch e.dt {
	case isa.F16:
		b.HSub(d, isa.R(a), isa.R(s))
	case isa.F64:
		b.DSub(d, a, s)
	default:
		b.FSub(d, isa.R(a), isa.R(s))
	}
}

// Mul emits the multiplication in the working precision.
func (e Elem) Mul(b *asm.Builder, d, a, s isa.Reg) {
	switch e.dt {
	case isa.F16:
		b.HMul(d, isa.R(a), isa.R(s))
	case isa.F64:
		b.DMul(d, a, s)
	default:
		b.FMul(d, isa.R(a), isa.R(s))
	}
}

// Imm loads an immediate constant in the working precision.
func (e Elem) Imm(b *asm.Builder, dst isa.Reg, v float64) {
	switch e.dt {
	case isa.F16:
		b.MovImmF16(dst, float32(v))
	case isa.F64:
		b.MovImmF64(dst, v)
	default:
		b.MovImmF32(dst, float32(v))
	}
}

// --- host-side bit-exact arithmetic mirrors of the simulator ---

// hval is a host value in the kernel's working precision, stored wide.
type hval float64

func (e Elem) hFMA(a, s, c hval) hval {
	switch e.dt {
	case isa.F16:
		return hval(isa.F16ToF32(isa.HalfFMA(f16(a), f16(s), f16(c))))
	case isa.F64:
		return hval(math.FMA(float64(a), float64(s), float64(c)))
	default:
		return hval(float32(math.FMA(float64(float32(a)), float64(float32(s)), float64(float32(c)))))
	}
}

func (e Elem) hAdd(a, s hval) hval {
	switch e.dt {
	case isa.F16:
		return hval(isa.F16ToF32(isa.HalfAdd(f16(a), f16(s))))
	case isa.F64:
		return hval(float64(a) + float64(s))
	default:
		return hval(float32(a) + float32(s))
	}
}

func (e Elem) hSub(a, s hval) hval { return e.hAdd(a, -s) }

func (e Elem) hMul(a, s hval) hval {
	switch e.dt {
	case isa.F16:
		return hval(isa.F16ToF32(isa.HalfMul(f16(a), f16(s))))
	case isa.F64:
		return hval(float64(a) * float64(s))
	default:
		return hval(float32(a) * float32(s))
	}
}

// round quantizes a host value to the working precision.
func (e Elem) round(v hval) hval {
	switch e.dt {
	case isa.F16:
		return hval(isa.F16ToF32(f16(v)))
	case isa.F64:
		return v
	default:
		return hval(float32(v))
	}
}

func f16(v hval) isa.Float16 { return isa.F32ToF16(float32(v)) }

// words encodes a host value into its memory representation.
func (e Elem) words(v hval) []uint32 {
	switch e.dt {
	case isa.F16:
		return []uint32{uint32(isa.F32ToF16(float32(v)))}
	case isa.F64:
		b := math.Float64bits(float64(v))
		return []uint32{uint32(b), uint32(b >> 32)}
	default:
		return []uint32{math.Float32bits(float32(v))}
	}
}

// writeSlice stores a host slice into global memory at base.
func (e Elem) writeSlice(g *mem.Global, base uint32, vals []hval) {
	off := base
	for _, v := range vals {
		for _, w := range e.words(v) {
			g.SetWord(off, w)
			off += 4
		}
	}
}

// expectWords encodes a host slice into the words Check will compare.
func (e Elem) expectWords(vals []hval) []uint32 {
	out := make([]uint32, 0, len(vals)*int(e.size)/4)
	for _, v := range vals {
		out = append(out, e.words(v)...)
	}
	return out
}

// checkWords builds a comparator for an exact region match.
func checkWords(base uint32, want []uint32) func(g *mem.Global) bool {
	return func(g *mem.Global) bool {
		for i, w := range want {
			if g.Word(base+uint32(i*4)) != w {
				return false
			}
		}
		return true
	}
}

// checkAll combines comparators.
func checkAll(checks ...func(g *mem.Global) bool) func(g *mem.Global) bool {
	return func(g *mem.Global) bool {
		for _, c := range checks {
			if !c(g) {
				return false
			}
		}
		return true
	}
}

// dataRNG returns the fixed-seed generator used for workload inputs, so
// every build of a workload sees identical data.
func dataRNG(salt uint64) *stats.RNG { return stats.NewRNG(0xda7a, salt) }

// randUnit returns a deterministic value in [lo, hi).
func randUnit(r *stats.RNG, lo, hi float64) hval {
	return hval(lo + r.Float64()*(hi-lo))
}
