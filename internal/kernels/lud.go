package kernels

import (
	"math"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// LUD is the Rodinia LU-decomposition benchmark: an in-place Doolittle
// factorization (no pivoting; the input is made diagonally dominant).
// Per pivot k, one kernel scales the L column and a second updates the
// trailing submatrix with the pivot row staged in shared memory. The
// result overwrites A with the combined L\U factors.
const ludN = 24

// LUDBuilder returns the LU-decomposition builder.
func LUDBuilder() Builder {
	return buildLUD
}

func buildLUD(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
	const n = ludN
	g := mem.NewGlobal(1 << 22)
	aBase, err := g.Alloc(n * n * 4)
	if err != nil {
		return nil, err
	}
	r := dataRNG(0x10d)
	A := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			A[i*n+j] = float32(randUnit(r, 0.5, 2))
		}
		A[i*n+i] += 8
	}
	for i, v := range A {
		g.SetWord(aBase+uint32(i*4), math.Float32bits(v))
	}

	ref := append([]float32(nil), A...)
	rcp := func(x float32) float32 { return float32(1 / float64(x)) }
	for k := 0; k < n-1; k++ {
		inv := rcp(ref[k*n+k])
		for i := k + 1; i < n; i++ {
			ref[i*n+k] = ref[i*n+k] * inv
		}
		for i := k + 1; i < n; i++ {
			l := ref[i*n+k]
			for j := k + 1; j < n; j++ {
				ref[i*n+j] = float32(math.FMA(float64(-l), float64(ref[k*n+j]), float64(ref[i*n+j])))
			}
		}
	}

	var launches []Launch
	for k := 0; k < n-1; k++ {
		col, err := buildLUDScale(opt, k, n, aBase)
		if err != nil {
			return nil, err
		}
		upd, err := buildLUDUpdate(opt, k, n, aBase)
		if err != nil {
			return nil, err
		}
		launches = append(launches,
			Launch{Prog: col, GridX: 1, GridY: 1, BlockThreads: 32},
			Launch{Prog: upd, GridX: 1, GridY: n, BlockThreads: 32},
		)
	}
	want := make([]uint32, n*n)
	for i, v := range ref {
		want[i] = math.Float32bits(v)
	}
	return &Instance{
		Name:     "FLUD",
		Dev:      dev,
		Global:   g,
		Launches: launches,
		Check:    checkWords(aBase, want),
		Output:   &OutputRegion{Base: aBase, Rows: n, Cols: n, DType: isa.F32},
	}, nil
}

// buildLUDScale divides the pivot column below the diagonal in place.
func buildLUDScale(opt asm.OptLevel, k, n int, aBase uint32) (*isa.Program, error) {
	b := asm.New("lud_scale", opt)
	tid := b.R()
	b.S2R(tid, isa.SrTidX)
	i := b.R()
	b.IAdd(i, isa.R(tid), isa.ImmInt(int32(k+1)))
	p := b.P()
	b.ISetp(p, isa.CmpLT, isa.R(i), isa.ImmInt(int32(n)))
	b.Guarded(p, false, func() {
		pvAddr := b.R()
		b.MovImm(pvAddr, aBase+uint32((k*n+k)*4))
		akk := b.R()
		b.Ldg(akk, pvAddr, 0)
		inv := b.R()
		b.Mufu(isa.MufuRCP, inv, akk)
		addr := b.R()
		b.IMad(addr, isa.R(i), isa.ImmInt(int32(n)*4), isa.ImmInt(int32(aBase)+int32(k*4)))
		v := b.R()
		b.Ldg(v, addr, 0)
		b.FMul(v, isa.R(v), isa.R(inv))
		b.Stg(addr, 0, v)
	})
	b.Exit()
	return b.Build()
}

// buildLUDUpdate subtracts l*pivotRow from each trailing row, with the
// pivot row staged in shared memory by the block.
func buildLUDUpdate(opt asm.OptLevel, k, n int, aBase uint32) (*isa.Program, error) {
	b := asm.New("lud_update", opt)
	shRow := b.AllocShared(n * 4)

	tid := b.R()
	i := b.R()
	b.S2R(tid, isa.SrTidX)
	b.S2R(i, isa.SrCtaidY)

	// Stage pivot row columns (k+1..n) into shared, one column per thread.
	j0 := b.R()
	b.IAdd(j0, isa.R(tid), isa.ImmInt(int32(k+1)))
	pLd := b.P()
	b.ISetp(pLd, isa.CmpLT, isa.R(j0), isa.ImmInt(int32(n)))
	b.Guarded(pLd, false, func() {
		src := b.R()
		b.IMad(src, isa.R(j0), isa.ImmInt(4), isa.ImmInt(int32(aBase)+int32(k*n*4)))
		v := b.R()
		b.Ldg(v, src, 0)
		dst := b.R()
		b.IMad(dst, isa.R(j0), isa.ImmInt(4), isa.ImmInt(int32(shRow)))
		b.Sts(dst, 0, v)
	})
	b.Bar()

	pRow := b.P()
	b.ISetp(pRow, isa.CmpGT, isa.R(i), isa.ImmInt(int32(k)))
	b.If(pRow, false, func() {
		l := b.R()
		lAddr := b.R()
		b.IMad(lAddr, isa.R(i), isa.ImmInt(int32(n)*4), isa.ImmInt(int32(aBase)+int32(k*4)))
		b.Ldg(l, lAddr, 0)
		negl := b.R()
		b.FMul(negl, isa.R(l), isa.Imm(math.Float32bits(-1)))
		j := b.R()
		b.IAdd(j, isa.R(tid), isa.ImmInt(int32(k+1)))
		pj := b.P()
		pv := b.R()
		av := b.R()
		sAddr := b.R()
		aAddr := b.R()
		b.Label("lud_loop")
		b.ISetp(pj, isa.CmpLT, isa.R(j), isa.ImmInt(int32(n)))
		b.Guarded(pj, false, func() {
			b.IMad(sAddr, isa.R(j), isa.ImmInt(4), isa.ImmInt(int32(shRow)))
			b.Lds(pv, sAddr, 0)
			b.IMad(aAddr, isa.R(i), isa.ImmInt(int32(n)*4), isa.ImmInt(int32(aBase)))
			b.IMad(aAddr, isa.R(j), isa.ImmInt(4), isa.R(aAddr))
			b.Ldg(av, aAddr, 0)
			b.FFma(av, isa.R(negl), isa.R(pv), isa.R(av))
			b.Stg(aAddr, 0, av)
		})
		b.IAdd(j, isa.R(j), isa.ImmInt(32))
		b.ISetp(pj, isa.CmpLT, isa.R(j), isa.ImmInt(int32(n)))
		b.BraIf(pj, false, "lud_loop")
	})
	b.Exit()
	return b.Build()
}
