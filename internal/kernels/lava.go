package kernels

import (
	"math"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Lava is the LavaMD molecular-dynamics kernel: particles live in boxes
// and accumulate pairwise forces against every particle in their own and
// neighbouring boxes, with an exponential cutoff evaluated on the SFU.
// One block per box, one thread per particle. As in the paper's Table I,
// the same kernel serves every precision (the SDC AVF is therefore
// precision-independent, §VI); the exponential always runs on the FP32
// special-function unit with conversions around it for FP16/FP64.
const (
	lavaBoxes = 8
	lavaPPB   = 16 // particles per box
)

// LavaBuilder returns the builder for the given precision.
func LavaBuilder(dt isa.DType) Builder {
	return func(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
		return buildLava(dev, opt, ElemFor(dt))
	}
}

func buildLava(dev *device.Device, opt asm.OptLevel, e Elem) (*Instance, error) {
	const (
		nb  = lavaBoxes
		ppb = lavaPPB
		n   = nb * ppb
	)
	g := mem.NewGlobal(1 << 22)
	// Particle i: x, y, z, q at stride 4 elements.
	pBase, err := g.Alloc(n * 4 * int(e.size))
	if err != nil {
		return nil, err
	}
	fBase, _ := g.Alloc(n * 4 * int(e.size)) // fx, fy, fz, pad

	r := dataRNG(0x1aba + uint64(e.dt))
	P := make([]hval, n*4)
	for i := 0; i < n; i++ {
		P[i*4+0] = e.round(randUnit(r, 0, 2))
		P[i*4+1] = e.round(randUnit(r, 0, 2))
		P[i*4+2] = e.round(randUnit(r, 0, 2))
		P[i*4+3] = e.round(randUnit(r, 0.1, 1))
	}
	e.writeSlice(g, pBase, P)

	// Host reference: exact mirror, including the FP32 SFU rounding.
	ex2 := func(x hval) hval {
		// The SFU computes exp2 on an FP32 operand regardless of the
		// kernel's working precision.
		x32 := float32(x)
		w := float32(math.Exp2(float64(x32)))
		return e.round(hval(w))
	}
	F := make([]hval, n*4)
	for box := 0; box < nb; box++ {
		for p := 0; p < ppb; p++ {
			me := box*ppb + p
			xi, yi, zi := P[me*4], P[me*4+1], P[me*4+2]
			var fx, fy, fz hval
			for d := 0; d < 3; d++ {
				ob := box + d - 1
				if ob < 0 {
					ob = 0
				}
				if ob > nb-1 {
					ob = nb - 1
				}
				for q := 0; q < ppb; q++ {
					o := ob*ppb + q
					dx := e.hSub(P[o*4], xi)
					dy := e.hSub(P[o*4+1], yi)
					dz := e.hSub(P[o*4+2], zi)
					r2 := e.hMul(dx, dx)
					r2 = e.hFMA(dy, dy, r2)
					r2 = e.hFMA(dz, dz, r2)
					w := ex2(e.hSub(0, r2))
					qw := e.hMul(w, P[o*4+3])
					fx = e.hFMA(qw, dx, fx)
					fy = e.hFMA(qw, dy, fy)
					fz = e.hFMA(qw, dz, fz)
				}
			}
			F[me*4], F[me*4+1], F[me*4+2] = fx, fy, fz
		}
	}

	prog, err := buildLavaKernel(opt, e, pBase, fBase)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:   e.Letter() + "LAVA",
		Dev:    dev,
		Global: g,
		Launches: []Launch{{
			Prog: prog, GridX: nb, GridY: 1, BlockThreads: ppb,
		}},
		Check: checkWords(fBase, e.expectWords(F)),
		// One particle's force vector (fx, fy, fz, pad) per row.
		Output: &OutputRegion{Base: fBase, Rows: n, Cols: 4, DType: e.dt},
	}, nil
}

func buildLavaKernel(opt asm.OptLevel, e Elem, pBase, fBase uint32) (*isa.Program, error) {
	const (
		nb  = lavaBoxes
		ppb = lavaPPB
	)
	es := int32(e.size)
	b := asm.New(e.Letter()+"lava", opt)

	tid := b.R()
	box := b.R()
	b.S2R(tid, isa.SrTidX)
	b.S2R(box, isa.SrCtaidX)

	me := b.R()
	b.IMad(me, isa.R(box), isa.ImmInt(ppb), isa.R(tid))
	myAddr := b.R()
	b.IMad(myAddr, isa.R(me), isa.ImmInt(4*es), isa.ImmInt(int32(pBase)))

	xi, yi, zi := e.Val(b), e.Val(b), e.Val(b)
	e.Load(b, xi, myAddr, 0)
	e.Load(b, yi, myAddr, uint32(es))
	e.Load(b, zi, myAddr, uint32(2*es))

	fx, fy, fz := e.Val(b), e.Val(b), e.Val(b)
	e.Imm(b, fx, 0)
	e.Imm(b, fy, 0)
	e.Imm(b, fz, 0)

	dx, dy, dz := e.Val(b), e.Val(b), e.Val(b)
	r2 := e.Val(b)
	zero := e.Val(b)
	e.Imm(b, zero, 0)
	w := e.Val(b)
	qv := e.Val(b)
	qw := e.Val(b)
	// FP32 scratch for the SFU path.
	s32 := b.R()

	d := b.R()
	ob := b.R()
	oAddr := b.R()
	b.ForCounter(d, 0, 3, asm.LoopOpts{}, func() {
		// Neighbour box index, clamped to [0, nb-1].
		b.IAdd(ob, isa.R(box), isa.R(d))
		b.IAdd(ob, isa.R(ob), isa.ImmInt(-1))
		b.IMax(ob, isa.R(ob), isa.ImmInt(0))
		b.IMin(ob, isa.R(ob), isa.ImmInt(nb-1))
		b.IMul(oAddr, isa.R(ob), isa.ImmInt(ppb*4)) // element index of box start
		b.IMad(oAddr, isa.R(oAddr), isa.ImmInt(es), isa.ImmInt(int32(pBase)))

		q := b.R()
		b.ForCounter(q, 0, ppb, asm.LoopOpts{Unroll: 2}, func() {
			e.Load(b, dx, oAddr, 0)
			e.Load(b, dy, oAddr, uint32(es))
			e.Load(b, dz, oAddr, uint32(2*es))
			e.Load(b, qv, oAddr, uint32(3*es))
			e.Sub(b, dx, dx, xi)
			e.Sub(b, dy, dy, yi)
			e.Sub(b, dz, dz, zi)
			e.Mul(b, r2, dx, dx)
			e.FMA(b, r2, dy, dy, r2)
			e.FMA(b, r2, dz, dz, r2)
			e.Sub(b, r2, zero, r2) // -r2
			switch e.dt {
			case isa.F32:
				b.Mufu(isa.MufuEX2, w, r2)
			case isa.F16:
				b.F2F(s32, r2, isa.F16, isa.F32)
				b.Mufu(isa.MufuEX2, s32, s32)
				b.F2F(w, s32, isa.F32, isa.F16)
			case isa.F64:
				b.F2F(s32, r2, isa.F64, isa.F32)
				b.Mufu(isa.MufuEX2, s32, s32)
				b.F2F(w, s32, isa.F32, isa.F64)
			}
			e.Mul(b, qw, w, qv)
			e.FMA(b, fx, qw, dx, fx)
			e.FMA(b, fy, qw, dy, fy)
			e.FMA(b, fz, qw, dz, fz)
			b.IAdd(oAddr, isa.R(oAddr), isa.ImmInt(4*es))
		})
	})

	out := b.R()
	b.IMad(out, isa.R(me), isa.ImmInt(4*es), isa.ImmInt(int32(fBase)))
	e.Store(b, out, 0, fx)
	e.Store(b, out, uint32(es), fy)
	e.Store(b, out, uint32(2*es), fz)
	b.Exit()
	return b.Build()
}
