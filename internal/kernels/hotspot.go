package kernels

import (
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Hotspot is the Rodinia thermal stencil: each cell relaxes toward the
// average of its four neighbours plus a power term, iterated over the
// grid with ping-pong buffers. One block processes one row, staging the
// row in shared memory so east/west neighbours come from the scratchpad.
//
// The iterative structure matters for the reproduction: the paper blames
// HHotspot's 27x prediction overestimate on iteration "smoothing" faulty
// half-precision values (§VII-A), so the kernel must actually iterate.
const (
	hotspotW     = 64
	hotspotH     = 32
	hotspotIters = 4
	hotspotK     = 0.2
	hotspotPw    = 0.1
)

// HotspotBuilder returns the builder for the given precision.
func HotspotBuilder(dt isa.DType) Builder {
	return func(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
		return buildHotspot(dev, opt, ElemFor(dt))
	}
}

func buildHotspot(dev *device.Device, opt asm.OptLevel, e Elem) (*Instance, error) {
	const w, h = hotspotW, hotspotH
	g := mem.NewGlobal(1 << 22)
	tA, err := g.Alloc(w * h * int(e.size))
	if err != nil {
		return nil, err
	}
	tB, _ := g.Alloc(w * h * int(e.size))
	pBase, _ := g.Alloc(w * h * int(e.size))

	r := dataRNG(0x407 + uint64(e.dt))
	T := make([]hval, w*h)
	P := make([]hval, w*h)
	for i := range T {
		T[i] = e.round(randUnit(r, 20, 80))
		P[i] = e.round(randUnit(r, 0, 1))
	}
	e.writeSlice(g, tA, T)
	e.writeSlice(g, pBase, P)

	// Host reference, same operation order as the kernel.
	cur := append([]hval(nil), T...)
	next := make([]hval, w*h)
	kc := e.round(hotspotK)
	pw := e.round(hotspotPw)
	four := e.round(4)
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for it := 0; it < hotspotIters; it++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				n := cur[clamp(y-1, 0, h-1)*w+x]
				s := cur[clamp(y+1, 0, h-1)*w+x]
				eV := cur[y*w+clamp(x+1, 0, w-1)]
				wV := cur[y*w+clamp(x-1, 0, w-1)]
				t := cur[y*w+x]
				sum := e.hAdd(e.hAdd(n, s), e.hAdd(eV, wV))
				diff := e.hSub(sum, e.hMul(t, four))
				out := e.hFMA(diff, kc, t)
				out = e.hFMA(P[y*w+x], pw, out)
				next[y*w+x] = out
			}
		}
		cur, next = next, cur
	}

	prog, err := buildHotspotKernel(opt, e, tA, tB, pBase)
	if err != nil {
		return nil, err
	}
	prog2, err := buildHotspotKernel(opt, e, tB, tA, pBase)
	if err != nil {
		return nil, err
	}

	var launches []Launch
	for it := 0; it < hotspotIters; it++ {
		p := prog
		if it%2 == 1 {
			p = prog2
		}
		launches = append(launches, Launch{Prog: p, GridX: 1, GridY: h, BlockThreads: w})
	}
	outBase := tA
	if hotspotIters%2 == 1 {
		outBase = tB
	}
	return &Instance{
		Name:     e.Letter() + "HOTSPOT",
		Dev:      dev,
		Global:   g,
		Launches: launches,
		Check:    checkWords(outBase, e.expectWords(cur)),
		Output:   &OutputRegion{Base: outBase, Rows: h, Cols: w, DType: e.dt},
	}, nil
}

// buildHotspotKernel emits one relaxation step from src to dst.
func buildHotspotKernel(opt asm.OptLevel, e Elem, src, dst, pBase uint32) (*isa.Program, error) {
	const w, h = hotspotW, hotspotH
	b := asm.New(e.Letter()+"hotspot_step", opt)
	shRow := b.AllocShared(w * int(e.size))

	col := b.R()
	row := b.R()
	b.S2R(col, isa.SrTidX)
	b.S2R(row, isa.SrCtaidY)

	// idx = row*w + col; own temperature -> shared
	idx := b.R()
	b.IMad(idx, isa.R(row), isa.ImmInt(w), isa.R(col))
	tAddr := emitAddr(b, idx, src, e.size)
	t := e.Val(b)
	e.Load(b, t, tAddr, 0)
	shAddr := emitAddr(b, col, shRow, e.size)
	e.StoreShared(b, shAddr, 0, t)
	b.Bar()

	// North/south rows from global, clamped at the boundary.
	rn := b.R()
	rs := b.R()
	b.IAdd(rn, isa.R(row), isa.ImmInt(-1))
	b.IMax(rn, isa.R(rn), isa.ImmInt(0))
	b.IAdd(rs, isa.R(row), isa.ImmInt(1))
	b.IMin(rs, isa.R(rs), isa.ImmInt(h-1))
	nIdx := b.R()
	b.IMad(nIdx, isa.R(rn), isa.ImmInt(w), isa.R(col))
	nAddr := emitAddr(b, nIdx, src, e.size)
	nV := e.Val(b)
	e.Load(b, nV, nAddr, 0)
	sIdx := b.R()
	b.IMad(sIdx, isa.R(rs), isa.ImmInt(w), isa.R(col))
	sAddr := emitAddr(b, sIdx, src, e.size)
	sV := e.Val(b)
	e.Load(b, sV, sAddr, 0)

	// East/west from shared, clamped.
	ce := b.R()
	cw := b.R()
	b.IAdd(ce, isa.R(col), isa.ImmInt(1))
	b.IMin(ce, isa.R(ce), isa.ImmInt(w-1))
	b.IAdd(cw, isa.R(col), isa.ImmInt(-1))
	b.IMax(cw, isa.R(cw), isa.ImmInt(0))
	eAddr := emitAddr(b, ce, shRow, e.size)
	wAddr := emitAddr(b, cw, shRow, e.size)
	eV := e.Val(b)
	wV := e.Val(b)
	e.LoadShared(b, eV, eAddr, 0)
	e.LoadShared(b, wV, wAddr, 0)

	// out = T + K*((N+S+E+W) - 4T) + Pw*P
	sum := e.Val(b)
	tmp := e.Val(b)
	e.Add(b, sum, nV, sV)
	e.Add(b, tmp, eV, wV)
	e.Add(b, sum, sum, tmp)
	four := e.Val(b)
	e.Imm(b, four, 4)
	t4 := e.Val(b)
	e.Mul(b, t4, t, four)
	diff := e.Val(b)
	e.Sub(b, diff, sum, t4)
	kc := e.Val(b)
	e.Imm(b, kc, hotspotK)
	out := e.Val(b)
	e.FMA(b, out, diff, kc, t)
	pAddr := emitAddr(b, idx, pBase, e.size)
	pV := e.Val(b)
	e.Load(b, pV, pAddr, 0)
	pc := e.Val(b)
	e.Imm(b, pc, hotspotPw)
	e.FMA(b, out, pV, pc, out)

	dAddr := emitAddr(b, idx, dst, e.size)
	e.Store(b, dAddr, 0, out)
	b.Exit()
	return b.Build()
}
