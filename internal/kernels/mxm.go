package kernels

import (
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// MxM is the naive matrix multiplication of the paper (§III-B): one
// thread per output element, row from CTAID.Y, column from the global x
// index, a straight k-loop of loads and FMAs with no tiling. It is
// "easily parallelizable [and] most GPU functional units are used for
// computation" (§VI), which gives it the highest SDC FIT in Figure 5.
const mxmN = 48

// MxMBuilder returns the builder for the given precision.
func MxMBuilder(dt isa.DType) Builder {
	return func(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
		return buildMxM(dev, opt, ElemFor(dt))
	}
}

func buildMxM(dev *device.Device, opt asm.OptLevel, e Elem) (*Instance, error) {
	const n = mxmN
	g := mem.NewGlobal(1 << 22)
	aBase, err := g.Alloc(n * n * int(e.size))
	if err != nil {
		return nil, err
	}
	bBase, _ := g.Alloc(n * n * int(e.size))
	cBase, _ := g.Alloc(n * n * int(e.size))

	r := dataRNG(uint64(e.dt))
	A := make([]hval, n*n)
	B := make([]hval, n*n)
	for i := range A {
		A[i] = e.round(randUnit(r, -1, 1))
		B[i] = e.round(randUnit(r, -1, 1))
	}
	e.writeSlice(g, aBase, A)
	e.writeSlice(g, bBase, B)

	// Host reference with the same FMA order as the kernel.
	C := make([]hval, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc hval
			for k := 0; k < n; k++ {
				acc = e.hFMA(A[i*n+k], B[k*n+j], acc)
			}
			C[i*n+j] = acc
		}
	}

	b := asm.New(e.Letter()+"MxM", opt)
	col := emitGID(b) // column index; row comes from CTAID.Y
	row := b.R()
	b.S2R(row, isa.SrCtaidY)

	// Address registers: aAddr walks row i (stride = elem size),
	// bAddr walks column j (stride = n * elem size).
	aAddr := b.R()
	bAddr := b.R()
	b.IMad(aAddr, isa.R(row), isa.ImmInt(int32(n)*e.size), isa.ImmInt(int32(aBase)))
	b.IMad(bAddr, isa.R(col), isa.ImmInt(e.size), isa.ImmInt(int32(bBase)))

	acc := e.Val(b)
	av := e.Val(b)
	bv := e.Val(b)
	e.Imm(b, acc, 0)
	k := b.R()
	b.ForCounter(k, 0, n, asm.LoopOpts{Unroll: 4}, func() {
		e.Load(b, av, aAddr, 0)
		e.Load(b, bv, bAddr, 0)
		e.FMA(b, acc, av, bv, acc)
		b.IAdd(aAddr, isa.R(aAddr), isa.ImmInt(e.size))
		b.IAdd(bAddr, isa.R(bAddr), isa.ImmInt(int32(n)*e.size))
	})

	cIdx := b.R()
	b.IMad(cIdx, isa.R(row), isa.ImmInt(int32(n)), isa.R(col))
	cAddr := emitAddr(b, cIdx, cBase, e.size)
	e.Store(b, cAddr, 0, acc)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:   e.Letter() + "MXM",
		Dev:    dev,
		Global: g,
		Launches: []Launch{{
			Prog: prog, GridX: 1, GridY: n, BlockThreads: n,
		}},
		Check:  checkWords(cBase, e.expectWords(C)),
		Output: &OutputRegion{Base: cBase, Rows: n, Cols: n, DType: e.dt},
	}, nil
}
