package kernels

import (
	"math"

	"gpurel/internal/asm"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Exported helpers for sibling packages (internal/microbench) that
// author kernels with the same precision abstraction the workloads use.

// EmitGID emits the global-thread-id computation.
func EmitGID(b *asm.Builder) isa.Reg { return emitGID(b) }

// EmitAddr emits base + idx*scale into a fresh register.
func EmitAddr(b *asm.Builder, idx isa.Reg, base uint32, scale int32) isa.Reg {
	return emitAddr(b, idx, base, scale)
}

// Size returns the element size in bytes.
func (e Elem) Size() int32 { return e.size }

// DType returns the element's data type.
func (e Elem) DType() isa.DType { return e.dt }

// EncodeFloat quantizes a float64 to the working precision and returns
// its raw memory representation (one or two 32-bit words, little end
// first in the low bits).
func (e Elem) EncodeFloat(v float64) uint64 {
	switch e.dt {
	case isa.F16:
		return uint64(isa.F32ToF16(float32(v)))
	case isa.F64:
		return math.Float64bits(v)
	default:
		return uint64(math.Float32bits(float32(v)))
	}
}

// DecodeFloat converts a raw representation back to float64 exactly.
func (e Elem) DecodeFloat(raw uint64) float64 {
	switch e.dt {
	case isa.F16:
		return float64(isa.F16ToF32(isa.Float16(raw & 0xffff)))
	case isa.F64:
		return math.Float64frombits(raw)
	default:
		return float64(math.Float32frombits(uint32(raw)))
	}
}

// StoreRaw writes a raw element representation into global memory.
func (e Elem) StoreRaw(g *mem.Global, addr uint32, raw uint64) {
	g.SetWord(addr, uint32(raw))
	if e.dt == isa.F64 {
		g.SetWord(addr+4, uint32(raw>>32))
	}
}

// LoadRaw reads a raw element representation from global memory.
func (e Elem) LoadRaw(g *mem.Global, addr uint32) uint64 {
	raw := uint64(g.Word(addr))
	if e.dt == isa.F64 {
		raw |= uint64(g.Word(addr+4)) << 32
	}
	if e.dt == isa.F16 {
		raw &= 0xffff
	}
	return raw
}

// HostAdd mirrors the device addition in the working precision.
func (e Elem) HostAdd(a, b float64) float64 { return float64(e.hAdd(hval(a), hval(b))) }

// HostMul mirrors the device multiplication.
func (e Elem) HostMul(a, b float64) float64 { return float64(e.hMul(hval(a), hval(b))) }

// HostFMA mirrors the device fused multiply-add.
func (e Elem) HostFMA(a, b, c float64) float64 {
	return float64(e.hFMA(hval(a), hval(b), hval(c)))
}

// HostRound quantizes to the working precision.
func (e Elem) HostRound(v float64) float64 { return float64(e.round(hval(v))) }
