package kernels

import (
	"math"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// GEMM-MMA is the tensor-core GEMM of §V-B: each block is one warp that
// owns a 16x16 output tile and sweeps the K dimension with warp-wide
// HMMA (FP16 inputs) or FMMA (FP32 inputs cast to FP16 on the core)
// instructions, accumulating in FP32. HGEMM-MMA stores A and B as packed
// half2 words; FGEMM-MMA stores them as FP32.
const mmaN = 64

// GEMMMMABuilder returns the builder for the tensor-core GEMM. half
// selects HGEMM-MMA (true) versus FGEMM-MMA (false).
func GEMMMMABuilder(half bool) Builder {
	return func(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
		return buildGEMMMMA(dev, opt, half)
	}
}

func buildGEMMMMA(dev *device.Device, opt asm.OptLevel, half bool) (*Instance, error) {
	const n = mmaN
	if !dev.HasTensor {
		return nil, errNoTensor(dev)
	}
	g := mem.NewGlobal(1 << 22)
	elSize := 4
	if half {
		elSize = 2
	}
	aBase, err := g.Alloc(n * n * elSize)
	if err != nil {
		return nil, err
	}
	bBase, _ := g.Alloc(n * n * elSize)
	cBase, _ := g.Alloc(n * n * 4)

	r := dataRNG(0x3344)
	A := make([]float32, n*n)
	B := make([]float32, n*n)
	for i := range A {
		A[i] = float32(isa.F16ToF32(isa.F32ToF16(float32(randUnit(r, -1, 1)))))
		B[i] = float32(isa.F16ToF32(isa.F32ToF16(float32(randUnit(r, -1, 1)))))
	}
	if half {
		for i := 0; i < n*n; i += 2 {
			w := uint32(isa.F32ToF16(A[i])) | uint32(isa.F32ToF16(A[i+1]))<<16
			g.SetWord(aBase+uint32(i*2), w)
			w = uint32(isa.F32ToF16(B[i])) | uint32(isa.F32ToF16(B[i+1]))<<16
			g.SetWord(bBase+uint32(i*2), w)
		}
	} else {
		for i := range A {
			g.SetWord(aBase+uint32(i*4), math.Float32bits(A[i]))
			g.SetWord(bBase+uint32(i*4), math.Float32bits(B[i]))
		}
	}

	// Host reference with tensor-core semantics: FP16 products (inputs
	// are f16-exact already), FP32 accumulation in ascending-k order.
	C := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += A[i*n+k] * B[k*n+j]
			}
			C[i*n+j] = acc
		}
	}
	want := make([]uint32, n*n)
	for i, v := range C {
		want[i] = math.Float32bits(v)
	}

	name := "HGEMM-MMA"
	if !half {
		name = "FGEMM-MMA"
	}
	b := asm.New(name, opt)
	lane := b.R()
	btx := b.R()
	bty := b.R()
	b.S2R(lane, isa.SrLaneID)
	b.S2R(btx, isa.SrCtaidX)
	b.S2R(bty, isa.SrCtaidY)

	// Fragment geometry: lane owns row=lane/2 of its 16x16 tile,
	// columns (lane%2)*8 .. +7.
	row := b.R()
	col0 := b.R()
	b.Shr(row, isa.R(lane), isa.ImmInt(1))
	b.And(col0, isa.R(lane), isa.ImmInt(1))
	b.Shl(col0, isa.R(col0), isa.ImmInt(3))

	es := int32(elSize)
	// aAddr = aBase + ((bty*16+row)*n + col0) * es, advanced 16*es per tile.
	aAddr := b.R()
	b.IMad(aAddr, isa.R(bty), isa.ImmInt(16), isa.R(row))
	b.IMad(aAddr, isa.R(aAddr), isa.ImmInt(int32(n)), isa.R(col0))
	b.IMad(aAddr, isa.R(aAddr), isa.ImmInt(es), isa.ImmInt(int32(aBase)))
	// bAddr = bBase + (row*n + btx*16 + col0) * es, advanced 16*n*es per tile.
	bAddr := b.R()
	b.IMad(bAddr, isa.R(btx), isa.ImmInt(16), isa.R(col0))
	b.IMad(bAddr, isa.R(row), isa.ImmInt(int32(n)), isa.R(bAddr))
	b.IMad(bAddr, isa.R(bAddr), isa.ImmInt(es), isa.ImmInt(int32(bBase)))

	fragRegs := 4 // packed half2 words per lane
	if !half {
		fragRegs = 8 // FP32 words per lane
	}
	aF := b.RVec(fragRegs, 4)
	bF := b.RVec(fragRegs, 4)
	cF := b.RVec(8, 8)
	for i := 0; i < 8; i++ {
		b.MovImmF32(cF+isa.Reg(i), 0)
	}

	kt := b.R()
	b.ForCounter(kt, 0, int32(n/16), asm.LoopOpts{}, func() {
		for i := 0; i < fragRegs; i++ {
			b.Ldg(aF+isa.Reg(i), aAddr, uint32(i*4))
		}
		for i := 0; i < fragRegs; i++ {
			b.Ldg(bF+isa.Reg(i), bAddr, uint32(i*4))
		}
		if half {
			b.HMMA(cF, aF, bF, cF)
		} else {
			b.FMMA(cF, aF, bF, cF)
		}
		b.IAdd(aAddr, isa.R(aAddr), isa.ImmInt(16*es))
		b.IAdd(bAddr, isa.R(bAddr), isa.ImmInt(16*int32(n)*es))
	})

	// Store the FP32 accumulator tile.
	cAddr := b.R()
	b.IMad(cAddr, isa.R(bty), isa.ImmInt(16), isa.R(row))
	b.IMad(cAddr, isa.R(cAddr), isa.ImmInt(int32(n)), isa.R(col0))
	b.IMad(cAddr, isa.R(cAddr), isa.ImmInt(4), isa.ImmInt(int32(cBase)))
	tmp := b.R()
	b.IMad(tmp, isa.R(btx), isa.ImmInt(16*4), isa.R(cAddr))
	for i := 0; i < 8; i++ {
		b.Stg(tmp, uint32(i*4), cF+isa.Reg(i))
	}
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:   name,
		Dev:    dev,
		Global: g,
		Launches: []Launch{{
			Prog: prog, GridX: n / 16, GridY: n / 16, BlockThreads: 32,
		}},
		Check: checkWords(cBase, want),
		// The accumulator tile is stored in FP32 for both precisions.
		Output: &OutputRegion{Base: cBase, Rows: n, Cols: n, DType: isa.F32},
	}, nil
}

func errNoTensor(dev *device.Device) error {
	return &noTensorError{dev: dev.Name}
}

type noTensorError struct{ dev string }

func (e *noTensorError) Error() string {
	return "kernels: " + e.dev + " has no tensor cores (MMA requires Volta)"
}
