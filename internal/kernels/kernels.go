// Package kernels implements the fifteen workloads of the paper's Table I
// as SASS-like programs for the SIMT simulator, together with host-side
// reference implementations, golden-output comparators, and the Runner
// used by the profiler, the fault injectors, and the beam campaign.
//
// Problem sizes are scaled down from the paper's (DESIGN.md §5): FIT and
// AVF are per-fault propagation statistics that do not depend on input
// size for these regular kernels, and the paper itself argues (§III-C)
// that FIT rates depend on resources used, not execution time.
package kernels

import (
	"fmt"
	"sync/atomic"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
	"gpurel/internal/sim"
)

// Launch is one kernel invocation of a workload.
type Launch struct {
	Prog         *isa.Program
	GridX, GridY int
	BlockThreads int
}

// Instance is a configured, single-use workload: device memory is
// initialized, launches are ready, and Check knows the expected output.
type Instance struct {
	Name     string
	Dev      *device.Device
	Global   *mem.Global
	Launches []Launch

	// Check compares device memory against the host-computed golden
	// output; it returns true when the output is correct. CNN workloads
	// implement the paper's tolerance-aware criterion here (faults that
	// do not change the detection are not errors, §VI).
	Check func(g *mem.Global) bool

	// Output declares the geometry of the workload's primary output
	// buffer so SDC diffs can be classified by spatial pattern
	// (internal/patterns). Workloads without a natural output grid (the
	// micro-benchmarks) leave it nil; their SDCs stay unclassified.
	Output *OutputRegion
}

// OutputRegion is a dense Rows×Cols grid of elements of type DType
// starting at byte address Base. It is declarative only — comparators
// keep their own golden data — and exists so a corrupt word's byte
// address can be mapped onto the output grid.
type OutputRegion struct {
	Base  uint32
	Rows  int
	Cols  int
	DType isa.DType
}

// ElemWords returns the 32-bit words one element occupies (2 for F64;
// F16 elements are stored one per word, low half).
func (o *OutputRegion) ElemWords() int { return o.DType.Regs() }

// WordCount returns the region size in 32-bit words.
func (o *OutputRegion) WordCount() int { return o.Rows * o.Cols * o.ElemWords() }

// Locate maps a byte address to its (row, col) element coordinates.
// ok is false when the address falls outside the region.
func (o *OutputRegion) Locate(addr uint32) (row, col int, ok bool) {
	if addr < o.Base {
		return 0, 0, false
	}
	elem := int(addr-o.Base) / 4 / o.ElemWords()
	if elem >= o.Rows*o.Cols {
		return 0, 0, false
	}
	return elem / o.Cols, elem % o.Cols, true
}

// Builder constructs a fresh Instance for a device and compiler pipeline.
// Builders are deterministic: inputs come from fixed-seed generators.
type Builder func(dev *device.Device, opt asm.OptLevel) (*Instance, error)

// Outcome classifies one workload run, in the paper's taxonomy.
type Outcome uint8

// Outcomes of a (possibly fault-injected) run.
const (
	Masked Outcome = iota // completed, output correct
	SDC                   // completed, output silently corrupted
	DUE                   // crashed or hung
)

// String names the outcome. Out-of-range values (a corrupted or
// uninitialized Outcome) render as Outcome(n) instead of panicking.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "Masked"
	case SDC:
		return "SDC"
	case DUE:
		return "DUE"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// CorruptWord is one corrupted 32-bit word of a trial's output diff:
// its byte address and the golden and observed values.
type CorruptWord struct {
	Addr     uint32 `json:"addr"`
	Golden   uint32 `json:"golden"`
	Observed uint32 `json:"observed"`
}

// DiffBudgetWords caps the per-trial recorded diff. The cap bounds the
// record's footprint on campaigns with massive corruptions (a scattered
// strike can dirty a whole matrix); CorruptWords keeps the uncapped
// count so truncation loses only addresses, not magnitude.
const DiffBudgetWords = 64

// TrialRecord is the structured result of one faulted trial: the
// ternary outcome plus, for SDCs, a compact diff of the output region
// against the golden image. The diff is captured only after the
// comparator has already failed, so the Masked fast path (snapshot
// equality at a launch boundary, sub-launch rejoin) pays nothing.
type TrialRecord struct {
	Outcome Outcome

	// DUEMode is the typed mechanism of a DUE outcome (sim.DUENone for
	// non-DUE records, and for synthetic DUEs that were never simulated,
	// such as ECC-intercepted beam strikes).
	DUEMode sim.DUEMode

	// Diff holds the corrupted output words in ascending address order,
	// capped at DiffBudgetWords. When the instance declares an Output
	// region, whole elements are emitted — every word of an element with
	// at least one corrupt word, including its still-golden words — so
	// multi-word (F64) values stay decodable. Empty for Masked/DUE, and
	// for SDCs whose corruption lies entirely outside the scanned
	// region.
	Diff []CorruptWord

	// DiffTruncated reports that the budget cut the recorded diff short.
	DiffTruncated bool

	// CorruptWords counts every corrupt word in the scanned region,
	// regardless of the recording budget.
	CorruptWords int
}

// Runner executes a workload repeatedly: once golden (capturing per-launch
// profiles, timing, and a memory snapshot at every launch boundary), then
// any number of times with fault plans.
//
// The golden run checkpoints device memory before each launch, so a
// faulted replay restores the pre-launch snapshot instead of re-simulating
// the launches before the fault, runs only the fault launch, and — when
// its post-launch memory is bit-identical to the golden snapshot —
// classifies the fault as architecturally masked without simulating the
// remaining launches or the output comparator. Device memory is the only
// state that crosses a launch boundary (registers, shared memory, and the
// divergence stacks die with the grid), so boundary equality is exact,
// not heuristic: campaign outcomes are bit-identical to full
// re-simulation for the same seed.
type Runner struct {
	Name  string
	Build Builder
	Dev   *device.Device
	Opt   asm.OptLevel

	inst           *Instance       // cached build: programs, geometry, comparator
	snaps          []*mem.Snapshot // snaps[i] = memory before launch i; snaps[n] = final
	pool           *mem.Pool       // recycled working memories for faulted replays
	goldenProfiles []sim.Profile
	goldenCycles   []int64

	// images[i] holds the sub-launch golden images of launch i (nil when
	// the memory budget made recording not worthwhile). A faulted replay
	// restores the nearest image preceding its trigger and, once the
	// fault fires, cuts off at the first golden image its state rejoins.
	images [][]*sim.LaunchImage

	// Replay accounting (read via ReplayStats; atomic because campaigns
	// call RunWithFault from many goroutines).
	subRestores atomic.Uint64 // replays started from a sub-launch image
	subRejoins  atomic.Uint64 // replays cut off at a sub-launch rejoin
}

// ImageBudgetBytes caps the approximate memory spent on sub-launch
// images per Runner; the per-launch image count is scaled down to fit.
// The serve-layer runner cache reuses it as the unit its own budget is
// expressed in: one budget's worth of cache holds roughly one
// image-saturated runner.
const ImageBudgetBytes = 64 << 20

// NewRunner builds the workload once, performs the golden run, and
// records the launch-boundary snapshots that make faulted replays cheap.
func NewRunner(name string, build Builder, dev *device.Device, opt asm.OptLevel) (*Runner, error) {
	r := &Runner{Name: name, Build: build, Dev: dev, Opt: opt}
	inst, err := build(dev, opt)
	if err != nil {
		return nil, fmt.Errorf("kernels: building %s: %w", name, err)
	}
	r.inst = inst
	r.pool = mem.NewPool(inst.Global.CapacityBytes())
	// Sub-launch images cost roughly one global snapshot plus resident
	// block state apiece; divide the budget across launches and skip
	// recording where fewer than two images would fit.
	maxImgs := ImageBudgetBytes / len(inst.Launches) /
		(inst.Global.AllocatedBytes() + 64*1024)
	if maxImgs > sim.DefaultMaxImages {
		maxImgs = sim.DefaultMaxImages
	}
	for i, l := range inst.Launches {
		r.snaps = append(r.snaps, inst.Global.Snapshot())
		var rec *sim.ImageRecorder
		if maxImgs >= 2 {
			rec = sim.NewImageRecorder(sim.DefaultImageInterval, maxImgs)
		}
		res, err := sim.Run(sim.Config{
			Device: dev, Program: l.Prog,
			GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
			// The golden run is where residency telemetry comes from;
			// faulted replays skip the sampling (resumeWithFault).
			SampleTimeline: true,
			Record:         rec,
		}, inst.Global)
		if err != nil {
			return nil, fmt.Errorf("kernels: golden run of %s launch %d: %w", name, i, err)
		}
		if res.Outcome != sim.OutcomeOK {
			return nil, fmt.Errorf("kernels: golden run of %s launch %d crashed: %s",
				name, i, res.DUEReason)
		}
		r.goldenProfiles = append(r.goldenProfiles, res.Profile)
		r.goldenCycles = append(r.goldenCycles, res.Profile.Cycles)
		if rec != nil {
			r.images = append(r.images, rec.Images)
		} else {
			r.images = append(r.images, nil)
		}
	}
	r.snaps = append(r.snaps, inst.Global.Snapshot())
	if !inst.Check(inst.Global) {
		return nil, fmt.Errorf("kernels: golden run of %s fails its own check", name)
	}
	return r, nil
}

// MemoryFootprint approximates the bytes the runner retains for the
// life of the cache entry: the instance's device memory, the launch-
// boundary snapshots, and the sub-launch golden images. The replay
// scratch pool is excluded — it grows with concurrent replays, not with
// cache residency. Cache layers (internal/serve) charge this against
// their byte budget when deciding evictions.
func (r *Runner) MemoryFootprint() int {
	total := r.inst.Global.CapacityBytes()
	for _, s := range r.snaps {
		total += s.SizeBytes()
	}
	for _, imgs := range r.images {
		for _, img := range imgs {
			total += img.FootprintBytes()
		}
	}
	return total
}

// Instance returns the cached build artifacts: assembled programs,
// launch geometry, the post-golden-run memory, and the comparator.
// Callers must treat it as read-only; faulted replays never touch it.
func (r *Runner) Instance() *Instance { return r.inst }

// GoldenProfiles returns the per-launch golden profiles.
func (r *Runner) GoldenProfiles() []sim.Profile { return r.goldenProfiles }

// TotalLaneOps sums lane-ops over all launches, optionally filtered.
func (r *Runner) TotalLaneOps(filter func(op isa.Op) bool) uint64 {
	var total uint64
	for i := range r.goldenProfiles {
		for op, n := range r.goldenProfiles[i].PerOpLane {
			if filter == nil || filter(op) {
				total += n
			}
		}
	}
	return total
}

// LaunchLaneOps returns per-launch lane-op counts, optionally filtered,
// used to pick the launch a sampled fault lands in.
func (r *Runner) LaunchLaneOps(filter func(op isa.Op) bool) []uint64 {
	out := make([]uint64, len(r.goldenProfiles))
	for i := range r.goldenProfiles {
		for op, n := range r.goldenProfiles[i].PerOpLane {
			if filter == nil || filter(op) {
				out[i] += n
			}
		}
	}
	return out
}

// RunWithFault executes the workload with the fault plan applied to the
// given launch and collapses the trial to its ternary outcome. It is
// RunTrialWithFault without the structured record, kept for callers
// that only tally outcomes.
//
// On an infrastructure error the returned Outcome is DUE, but callers
// must treat the error as fatal to the trial, not as a classification:
// an errored trial is neither Masked nor a DUE observation.
func (r *Runner) RunWithFault(plan *sim.FaultPlan, faultLaunch int) (Outcome, error) {
	rec, err := r.RunTrialWithFault(plan, faultLaunch)
	return rec.Outcome, err
}

// RunTrialWithFault executes the workload with the fault plan applied to
// the given launch, using the checkpointed engine: launches before the
// fault are skipped by restoring the pre-launch snapshot, and a fault
// launch whose memory matches the golden post-launch snapshot is masked
// without simulating the rest of the program. The watchdog is set to a
// small multiple of the golden cycle count so hangs resolve quickly.
// SDC trials additionally carry a budget-capped diff of the output
// region against the final golden snapshot (TrialRecord).
//
// On an infrastructure error the record's Outcome is DUE, but callers
// must treat the error as fatal to the trial, not as a classification:
// an errored trial is neither Masked nor a DUE observation.
func (r *Runner) RunTrialWithFault(plan *sim.FaultPlan, faultLaunch int) (TrialRecord, error) {
	if faultLaunch < 0 || faultLaunch >= len(r.inst.Launches) {
		return TrialRecord{Outcome: DUE}, fmt.Errorf("kernels: %s has no launch %d", r.Name, faultLaunch)
	}
	g := r.pool.Get()
	defer r.pool.Put(g)
	// Start the fault launch from the latest sub-launch image that
	// provably precedes the plan's trigger; fall back to the launch
	// boundary when none does (or none were recorded).
	img := sim.PickImage(r.images[faultLaunch], plan)
	if img != nil {
		g.Restore(img.Mem)
		r.subRestores.Add(1)
	} else {
		g.Restore(r.snaps[faultLaunch])
	}

	rec, err := r.resumeWithFault(g, plan, faultLaunch, img)
	if err != nil {
		return TrialRecord{Outcome: DUE}, err
	}
	return rec, nil
}

// ReplayStats reports how often faulted replays used the sub-launch
// machinery: restores counts replays that started from a mid-launch
// golden image, rejoins counts replays cut off early because their
// state rejoined a golden image before the launch ended.
func (r *Runner) ReplayStats() (restores, rejoins uint64) {
	return r.subRestores.Load(), r.subRejoins.Load()
}

// resumeWithFault runs launches faultLaunch.. on the working memory g
// (already holding the pre-fault-launch state), injecting the plan into
// the first of them and cutting off as soon as the state rejoins golden.
func (r *Runner) resumeWithFault(g *mem.Global, plan *sim.FaultPlan, faultLaunch int, img *sim.LaunchImage) (TrialRecord, error) {
	launches := r.inst.Launches
	for i := faultLaunch; i < len(launches); i++ {
		l := launches[i]
		cfg := sim.Config{
			Device: r.Dev, Program: l.Prog,
			GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
			MaxCycles: r.goldenCycles[i]*10 + 20_000,
			// Replays are classified by outcome alone; skip the
			// profile-only accounting on the issue path.
			LeanProfile: true,
		}
		var res *sim.Result
		var err error
		if i == faultLaunch {
			cfg.Fault = plan
			cfg.Golden = r.images[i]
			if img != nil {
				res, err = sim.RunFrom(cfg, g, img)
			} else {
				res, err = sim.Run(cfg, g)
			}
		} else {
			res, err = sim.Run(cfg, g)
		}
		if err != nil {
			return TrialRecord{Outcome: DUE}, fmt.Errorf("kernels: %s launch %d: %w", r.Name, i, err)
		}
		if res.Outcome == sim.OutcomeDUE {
			return TrialRecord{Outcome: DUE, DUEMode: res.DUEMode}, nil
		}
		// Sub-launch rejoin cutoff: the replay's full state matched a
		// golden mid-launch image after the fault fired, so the rest of
		// the launch — and the remaining launches — replay golden.
		if res.RejoinedGolden {
			r.subRejoins.Add(1)
			return TrialRecord{Outcome: Masked}, nil
		}
		// Early masked-fault cutoff: if memory at this launch boundary is
		// bit-identical to golden, the remaining launches replay the
		// golden execution exactly and the comparator must pass.
		if g.EqualSnapshot(r.snaps[i+1]) {
			return TrialRecord{Outcome: Masked}, nil
		}
	}
	if !r.inst.Check(g) {
		rec := TrialRecord{Outcome: SDC}
		r.captureDiff(g, &rec)
		return rec, nil
	}
	return TrialRecord{Outcome: Masked}, nil
}

// captureDiff fills rec with the word-level diff between g and the
// final golden snapshot. With a declared Output region the scan walks
// the grid element-wise and emits whole elements; without one it walks
// the entire allocated region word-wise (the count still sizes the
// corruption, but nothing downstream can classify it).
func (r *Runner) captureDiff(g *mem.Global, rec *TrialRecord) {
	golden := r.snaps[len(r.inst.Launches)]
	out := r.inst.Output
	if out == nil {
		for addr := uint32(0); int(addr) < golden.AllocatedBytes(); addr += 4 {
			gw, ow := golden.Word(addr), g.Word(addr)
			if gw == ow {
				continue
			}
			rec.CorruptWords++
			if len(rec.Diff) < DiffBudgetWords {
				rec.Diff = append(rec.Diff, CorruptWord{Addr: addr, Golden: gw, Observed: ow})
			} else {
				rec.DiffTruncated = true
			}
		}
		return
	}
	ew := uint32(out.ElemWords())
	for elem := 0; elem < out.Rows*out.Cols; elem++ {
		base := out.Base + uint32(elem)*ew*4
		corrupt := false
		for w := uint32(0); w < ew; w++ {
			if golden.Word(base+w*4) != g.Word(base+w*4) {
				corrupt = true
				rec.CorruptWords++
			}
		}
		if !corrupt {
			continue
		}
		if len(rec.Diff)+int(ew) > DiffBudgetWords {
			rec.DiffTruncated = true
			continue
		}
		for w := uint32(0); w < ew; w++ {
			addr := base + w*4
			rec.Diff = append(rec.Diff, CorruptWord{
				Addr: addr, Golden: golden.Word(addr), Observed: g.Word(addr),
			})
		}
	}
}
