// Package kernels implements the fifteen workloads of the paper's Table I
// as SASS-like programs for the SIMT simulator, together with host-side
// reference implementations, golden-output comparators, and the Runner
// used by the profiler, the fault injectors, and the beam campaign.
//
// Problem sizes are scaled down from the paper's (DESIGN.md §5): FIT and
// AVF are per-fault propagation statistics that do not depend on input
// size for these regular kernels, and the paper itself argues (§III-C)
// that FIT rates depend on resources used, not execution time.
package kernels

import (
	"fmt"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
	"gpurel/internal/sim"
)

// Launch is one kernel invocation of a workload.
type Launch struct {
	Prog         *isa.Program
	GridX, GridY int
	BlockThreads int
}

// Instance is a configured, single-use workload: device memory is
// initialized, launches are ready, and Check knows the expected output.
type Instance struct {
	Name     string
	Dev      *device.Device
	Global   *mem.Global
	Launches []Launch

	// Check compares device memory against the host-computed golden
	// output; it returns true when the output is correct. CNN workloads
	// implement the paper's tolerance-aware criterion here (faults that
	// do not change the detection are not errors, §VI).
	Check func(g *mem.Global) bool
}

// Builder constructs a fresh Instance for a device and compiler pipeline.
// Builders are deterministic: inputs come from fixed-seed generators.
type Builder func(dev *device.Device, opt asm.OptLevel) (*Instance, error)

// Outcome classifies one workload run, in the paper's taxonomy.
type Outcome uint8

// Outcomes of a (possibly fault-injected) run.
const (
	Masked Outcome = iota // completed, output correct
	SDC                   // completed, output silently corrupted
	DUE                   // crashed or hung
)

// String names the outcome.
func (o Outcome) String() string {
	return [...]string{"Masked", "SDC", "DUE"}[o]
}

// Runner executes a workload repeatedly: once golden (capturing per-launch
// profiles and timing), then any number of times with fault plans.
type Runner struct {
	Name  string
	Build Builder
	Dev   *device.Device
	Opt   asm.OptLevel

	goldenProfiles []sim.Profile
	goldenCycles   []int64
}

// NewRunner builds the workload once and performs the golden run.
func NewRunner(name string, build Builder, dev *device.Device, opt asm.OptLevel) (*Runner, error) {
	r := &Runner{Name: name, Build: build, Dev: dev, Opt: opt}
	inst, err := build(dev, opt)
	if err != nil {
		return nil, fmt.Errorf("kernels: building %s: %w", name, err)
	}
	for i, l := range inst.Launches {
		res, err := sim.Run(sim.Config{
			Device: dev, Program: l.Prog,
			GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
		}, inst.Global)
		if err != nil {
			return nil, fmt.Errorf("kernels: golden run of %s launch %d: %w", name, i, err)
		}
		if res.Outcome != sim.OutcomeOK {
			return nil, fmt.Errorf("kernels: golden run of %s launch %d crashed: %s",
				name, i, res.DUEReason)
		}
		r.goldenProfiles = append(r.goldenProfiles, res.Profile)
		r.goldenCycles = append(r.goldenCycles, res.Profile.Cycles)
	}
	if !inst.Check(inst.Global) {
		return nil, fmt.Errorf("kernels: golden run of %s fails its own check", name)
	}
	return r, nil
}

// GoldenProfiles returns the per-launch golden profiles.
func (r *Runner) GoldenProfiles() []sim.Profile { return r.goldenProfiles }

// TotalLaneOps sums lane-ops over all launches, optionally filtered.
func (r *Runner) TotalLaneOps(filter func(op isa.Op) bool) uint64 {
	var total uint64
	for i := range r.goldenProfiles {
		for op, n := range r.goldenProfiles[i].PerOpLane {
			if filter == nil || filter(op) {
				total += n
			}
		}
	}
	return total
}

// LaunchLaneOps returns per-launch lane-op counts, optionally filtered,
// used to pick the launch a sampled fault lands in.
func (r *Runner) LaunchLaneOps(filter func(op isa.Op) bool) []uint64 {
	out := make([]uint64, len(r.goldenProfiles))
	for i := range r.goldenProfiles {
		for op, n := range r.goldenProfiles[i].PerOpLane {
			if filter == nil || filter(op) {
				out[i] += n
			}
		}
	}
	return out
}

// RunWithFault rebuilds the workload and executes it with the fault plan
// applied to the given launch. The watchdog is set to a small multiple of
// the golden cycle count so hangs resolve quickly.
func (r *Runner) RunWithFault(plan *sim.FaultPlan, faultLaunch int) (Outcome, error) {
	inst, err := r.Build(r.Dev, r.Opt)
	if err != nil {
		return Masked, err
	}
	for i, l := range inst.Launches {
		cfg := sim.Config{
			Device: r.Dev, Program: l.Prog,
			GridX: l.GridX, GridY: l.GridY, BlockThreads: l.BlockThreads,
			MaxCycles: r.goldenCycles[i]*10 + 20_000,
		}
		if i == faultLaunch {
			cfg.Fault = plan
		}
		res, err := sim.Run(cfg, inst.Global)
		if err != nil {
			return Masked, fmt.Errorf("kernels: %s launch %d: %w", r.Name, i, err)
		}
		if res.Outcome == sim.OutcomeDUE {
			return DUE, nil
		}
	}
	if !inst.Check(inst.Global) {
		return SDC, nil
	}
	return Masked, nil
}
