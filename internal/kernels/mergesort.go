package kernels

import (
	"sort"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Mergesort is a bottom-up GPU merge sort: pass p merges sorted runs of
// width 2^p pairwise, one thread per merge, ping-ponging between two
// buffers. Late passes leave most threads idle while a few long merges
// run — integer-heavy, divergent control flow.
const (
	msortN     = 512
	msortBlock = 256
)

// MergesortBuilder returns the merge-sort builder.
func MergesortBuilder() Builder {
	return buildMergesort
}

func buildMergesort(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
	const n = msortN
	r := dataRNG(0x3e96)
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(r.Uint32() & 0xffff)
	}
	ref := append([]int32(nil), data...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })

	g := mem.NewGlobal(1 << 22)
	bufA, err := g.Alloc(n * 4)
	if err != nil {
		return nil, err
	}
	bufB, _ := g.Alloc(n * 4)
	for i, v := range data {
		g.SetWord(bufA+uint32(i*4), uint32(v))
	}

	var launches []Launch
	passes := 0
	for w := 1; w < n; w *= 2 {
		src, dst := bufA, bufB
		if passes%2 == 1 {
			src, dst = bufB, bufA
		}
		prog, err := buildMergePass(opt, n, w, src, dst)
		if err != nil {
			return nil, err
		}
		threads := n / (2 * w)
		block := msortBlock
		if threads < block {
			block = threads
		}
		launches = append(launches, Launch{
			Prog: prog, GridX: (threads + block - 1) / block, GridY: 1, BlockThreads: block,
		})
		passes++
	}
	out := bufA
	if passes%2 == 1 {
		out = bufB
	}
	want := make([]uint32, n)
	for i, v := range ref {
		want[i] = uint32(v)
	}
	return &Instance{
		Name:     "MERGESORT",
		Dev:      dev,
		Global:   g,
		Launches: launches,
		Check:    checkWords(out, want),
		Output:   &OutputRegion{Base: out, Rows: 1, Cols: n, DType: isa.I32},
	}, nil
}

// buildMergePass merges run pairs of the given width. Thread t owns the
// runs at [t*2w, t*2w+w) and [t*2w+w, t*2w+2w). Exhausted runs feed the
// comparison a sentinel so the merge loop body stays branch-free.
func buildMergePass(opt asm.OptLevel, n, w int, src, dst uint32) (*isa.Program, error) {
	b := asm.New("merge_pass", opt)
	t := emitGID(b)

	base := b.R()
	b.IMul(base, isa.R(t), isa.ImmInt(int32(2*w)))
	// i, j are absolute indices into the two runs; k writes the output.
	i := b.R()
	j := b.R()
	k := b.R()
	iEnd := b.R()
	jEnd := b.R()
	b.Mov(i, isa.R(base))
	b.IAdd(iEnd, isa.R(base), isa.ImmInt(int32(w)))
	b.Mov(j, isa.R(iEnd))
	b.IAdd(jEnd, isa.R(base), isa.ImmInt(int32(2*w)))
	b.Mov(k, isa.R(base))

	pi := b.P()
	pj := b.P()
	pTake := b.P()
	av := b.R()
	bv := b.R()
	addr := b.R()
	sentinel := b.R()
	b.MovImm(sentinel, 0x7fffffff)

	kLoop := b.R()
	b.ForCounter(kLoop, 0, int32(2*w), asm.LoopOpts{}, func() {
		b.ISetp(pi, isa.CmpLT, isa.R(i), isa.R(iEnd))
		b.ISetp(pj, isa.CmpLT, isa.R(j), isa.R(jEnd))
		// Guarded loads; exhausted runs read as +inf.
		b.Mov(av, isa.R(sentinel))
		b.Guarded(pi, false, func() {
			b.IMad(addr, isa.R(i), isa.ImmInt(4), isa.ImmInt(int32(src)))
			b.Ldg(av, addr, 0)
		})
		b.Mov(bv, isa.R(sentinel))
		b.Guarded(pj, false, func() {
			b.IMad(addr, isa.R(j), isa.ImmInt(4), isa.ImmInt(int32(src)))
			b.Ldg(bv, addr, 0)
		})
		b.ISetp(pTake, isa.CmpLE, isa.R(av), isa.R(bv))
		out := b.R()
		b.Sel(out, pTake, isa.R(av), isa.R(bv))
		b.IMad(addr, isa.R(k), isa.ImmInt(4), isa.ImmInt(int32(dst)))
		b.Stg(addr, 0, out)
		b.IAdd(k, isa.R(k), isa.ImmInt(1))
		// Advance the source whose value was taken.
		b.Guarded(pTake, false, func() { b.IAdd(i, isa.R(i), isa.ImmInt(1)) })
		b.Guarded(pTake, true, func() { b.IAdd(j, isa.R(j), isa.ImmInt(1)) })
	})
	b.Exit()
	return b.Build()
}
