package kernels

import (
	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// CCL is connected-component labeling on a binary image by iterative
// label propagation: every foreground pixel repeatedly takes the minimum
// label among itself and its 4-connected foreground neighbours (Jacobi
// iterations over ping-pong buffers). Background pixels keep the
// sentinel label. Integer-only, one thread per pixel of one image row
// per block — a small, poorly parallelized kernel, matching its Table I
// profile (occupancy 0.11, IPC 0.14) and its role as a code whose beam
// FIT the prediction model badly underestimates (§VII-A).
const (
	cclW     = 24
	cclH     = 24
	cclIters = 12
	cclBG    = 0x7fffffff
)

// CCLBuilder returns the CCL builder.
func CCLBuilder() Builder {
	return buildCCL
}

func buildCCL(dev *device.Device, opt asm.OptLevel) (*Instance, error) {
	const (
		w = cclW
		h = cclH
	)
	r := dataRNG(0xcc1)
	img := make([]bool, w*h)
	for i := range img {
		img[i] = r.Float64() < 0.62
	}

	// Initial labels: pixel index for foreground, sentinel for background.
	init := make([]int32, w*h)
	for i := range init {
		if img[i] {
			init[i] = int32(i)
		} else {
			init[i] = cclBG
		}
	}

	// Host reference: the same Jacobi iterations.
	cur := append([]int32(nil), init...)
	next := make([]int32, w*h)
	for it := 0; it < cclIters; it++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				if !img[i] {
					next[i] = cclBG
					continue
				}
				best := cur[i]
				if y > 0 && cur[i-w] < best {
					best = cur[i-w]
				}
				if y < h-1 && cur[i+w] < best {
					best = cur[i+w]
				}
				if x > 0 && cur[i-1] < best {
					best = cur[i-1]
				}
				if x < w-1 && cur[i+1] < best {
					best = cur[i+1]
				}
				next[i] = best
			}
		}
		cur, next = next, cur
	}

	g := mem.NewGlobal(1 << 22)
	lA, err := g.Alloc(w * h * 4)
	if err != nil {
		return nil, err
	}
	lB, _ := g.Alloc(w * h * 4)
	for i, v := range init {
		g.SetWord(lA+uint32(i*4), uint32(v))
	}

	progAB, err := buildCCLStep(opt, w, h, lA, lB)
	if err != nil {
		return nil, err
	}
	progBA, err := buildCCLStep(opt, w, h, lB, lA)
	if err != nil {
		return nil, err
	}
	var launches []Launch
	for it := 0; it < cclIters; it++ {
		p := progAB
		if it%2 == 1 {
			p = progBA
		}
		launches = append(launches, Launch{Prog: p, GridX: 1, GridY: h, BlockThreads: w})
	}
	out := lA
	if cclIters%2 == 1 {
		out = lB
	}
	want := make([]uint32, w*h)
	for i, v := range cur {
		want[i] = uint32(v)
	}
	return &Instance{
		Name:     "CCL",
		Dev:      dev,
		Global:   g,
		Launches: launches,
		Check:    checkWords(out, want),
		Output:   &OutputRegion{Base: out, Rows: h, Cols: w, DType: isa.I32},
	}, nil
}

// buildCCLStep emits one label-propagation step from src to dst. The
// boundary handling clamps the neighbour index and relies on the clamped
// neighbour being the pixel itself (min with self is the identity).
func buildCCLStep(opt asm.OptLevel, w, h int, src, dst uint32) (*isa.Program, error) {
	b := asm.New("ccl_step", opt)
	x := b.R()
	y := b.R()
	b.S2R(x, isa.SrTidX)
	b.S2R(y, isa.SrCtaidY)

	i := b.R()
	b.IMad(i, isa.R(y), isa.ImmInt(int32(w)), isa.R(x))
	addr := emitAddr(b, i, src, 4)
	me := b.R()
	b.Ldg(me, addr, 0)

	dAddr := emitAddr(b, i, dst, 4)
	pBG := b.P()
	b.ISetp(pBG, isa.CmpEQ, isa.R(me), isa.ImmInt(cclBG))
	b.IfElse(pBG, false, func() {
		bg := b.R()
		b.MovImm(bg, cclBG)
		b.Stg(dAddr, 0, bg)
	}, func() {
		// Clamped neighbour coordinates.
		best := b.R()
		b.Mov(best, isa.R(me))
		nv := b.R()
		nIdx := b.R()
		nAddr := b.R()
		coord := b.R()
		load := func(setup func()) {
			setup()
			b.IMad(nAddr, isa.R(nIdx), isa.ImmInt(4), isa.ImmInt(int32(src)))
			b.Ldg(nv, nAddr, 0)
			b.IMin(best, isa.R(best), isa.R(nv))
		}
		load(func() { // north: y-1 clamped
			b.IAdd(coord, isa.R(y), isa.ImmInt(-1))
			b.IMax(coord, isa.R(coord), isa.ImmInt(0))
			b.IMad(nIdx, isa.R(coord), isa.ImmInt(int32(w)), isa.R(x))
		})
		load(func() { // south
			b.IAdd(coord, isa.R(y), isa.ImmInt(1))
			b.IMin(coord, isa.R(coord), isa.ImmInt(int32(h-1)))
			b.IMad(nIdx, isa.R(coord), isa.ImmInt(int32(w)), isa.R(x))
		})
		load(func() { // west
			b.IAdd(coord, isa.R(x), isa.ImmInt(-1))
			b.IMax(coord, isa.R(coord), isa.ImmInt(0))
			b.IMad(nIdx, isa.R(y), isa.ImmInt(int32(w)), isa.R(coord))
		})
		load(func() { // east
			b.IAdd(coord, isa.R(x), isa.ImmInt(1))
			b.IMin(coord, isa.R(coord), isa.ImmInt(int32(w-1)))
			b.IMad(nIdx, isa.R(y), isa.ImmInt(int32(w)), isa.R(coord))
		})
		b.Stg(dAddr, 0, best)
	})
	b.Exit()
	return b.Build()
}
