package kernels

import (
	"testing"
	"testing/quick"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/sim"
	"gpurel/internal/stats"
)

// Property: any single fault, of any kind, at any site, injected into any
// workload run either completes (Masked or SDC) or crashes cleanly (DUE).
// No panic, no infrastructure error, and the runner stays reusable. This
// is the safety property every campaign relies on.
func TestAnyFaultYieldsClassifiedOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over fault space")
	}
	dev := device.K40c()
	runners := []*Runner{}
	for _, w := range []struct {
		name string
		b    Builder
	}{
		{"FHOTSPOT", HotspotBuilder(isa.F32)},
		{"QUICKSORT", QuicksortBuilder()},
		{"NW", NWBuilder()},
	} {
		r, err := NewRunner(w.name, w.b, dev, asm.O1)
		if err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
	}
	rng := stats.NewRNG(0xfeed, 0xbeef)

	prop := func(kindRaw, bit uint8, trigger uint32, blk, thr, reg uint16) bool {
		r := runners[rng.IntN(len(runners))]
		kind := sim.FaultKind(kindRaw % 8)
		launches := r.GoldenProfiles()
		launch := rng.IntN(len(launches))
		plan := &sim.FaultPlan{
			Kind:         kind,
			TriggerIndex: uint64(trigger) % (launches[launch].LaneOps + 1),
			Bit:          int(bit),
			Block:        int(blk),
			Thread:       int(thr)%512 + 1,
			Reg:          int(reg),
			BitIdx:       uint64(trigger),
		}
		out, err := r.RunWithFault(plan, launch)
		if err != nil {
			t.Logf("infrastructure error for %v on %s: %v", kind, r.Name, err)
			return false
		}
		switch out {
		case Masked, SDC, DUE:
			return true
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fault plan whose trigger lies beyond the dynamic stream is
// always Masked (the strike missed the execution window).
func TestLateTriggerAlwaysMasked(t *testing.T) {
	dev := device.K40c()
	r, err := NewRunner("CCL", CCLBuilder(), dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	for kind := sim.FaultKind(0); kind < 5; kind++ {
		plan := &sim.FaultPlan{Kind: kind, TriggerIndex: 1 << 60, Bit: 7}
		out, err := r.RunWithFault(plan, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out != Masked {
			t.Fatalf("kind %v with late trigger gave %v, want Masked", kind, out)
		}
	}
}
