package pprofutil

import (
	"net/http"
	"net/http/pprof"
)

// RegisterHTTP wires the standard /debug/pprof handlers onto mux, the
// long-lived-process counterpart of the -cpuprofile/-memprofile flags:
// gpurel-serve mounts it behind -pprof so a soaking daemon can be
// profiled live with
//
//	go tool pprof http://localhost:8397/debug/pprof/profile
//
// It registers explicit routes instead of importing net/http/pprof for
// its init side effect, which would silently expose the handlers on
// http.DefaultServeMux in every binary linking this package.
func RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
