// Package pprofutil wires runtime/pprof CPU and heap profiling into the
// campaign CLIs behind -cpuprofile/-memprofile flags. The profiles are
// the standard pprof protobuf format:
//
//	gpurel-inject -code FMXM -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	go tool pprof cpu.pb.gz
package pprofutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuPath *string
	memPath *string
	cpuFile *os.File
)

// AddFlags registers -cpuprofile and -memprofile on the default flag
// set; call before flag.Parse.
func AddFlags() {
	cpuPath = flag.String("cpuprofile", "", "write a CPU profile (pprof format) to this file")
	memPath = flag.String("memprofile", "", "write a heap profile (pprof format) to this file on exit")
}

// Start begins CPU profiling when -cpuprofile was given. Call right
// after flag.Parse and pair with a deferred Stop.
func Start() error {
	if cpuPath == nil || *cpuPath == "" {
		return nil
	}
	f, err := os.Create(*cpuPath)
	if err != nil {
		return fmt.Errorf("pprofutil: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("pprofutil: %w", err)
	}
	cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, when the
// respective flags were given. Idempotent, so error paths that exit via
// os.Exit can call it in addition to the deferred call.
func Stop() {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
		cpuFile = nil
	}
	if memPath != nil && *memPath != "" {
		f, err := os.Create(*memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprofutil:", err)
			*memPath = ""
			return
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pprofutil:", err)
		}
		f.Close()
		*memPath = ""
	}
}
