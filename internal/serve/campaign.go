package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gpurel/internal/core"
	"gpurel/internal/faultinj"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/patterns"
	"gpurel/internal/stats"
)

// Request is a campaign submission: which workload on which device,
// under which injector semantics, and how tight each instruction
// class's 95% Wilson interval must be before that class stops.
//
// TargetWidth is the full interval width (Upper - Lower) applied to
// both the SDC and the DUE AVF of every class; a class keeps sampling
// until both are at least that tight (or MaxTrials caps it). This is
// the paper's per-class sampling discipline (§III-D sizes campaigns so
// intervals stay below 5%) made adaptive: classes whose AVFs sit near 0
// or 1 — most of them — reach the target with a fraction of the
// worst-case fixed count (stats.WorstCaseTrials).
type Request struct {
	Code        string  `json:"code"`
	Device      string  `json:"device"`         // kepler|k40c|volta|v100 (default volta)
	Tool        string  `json:"tool,omitempty"` // sassifi|nvbitfi (default nvbitfi)
	TargetWidth float64 `json:"target_width"`   // full Wilson width target (default 0.25)
	Seed        uint64  `json:"seed"`

	// MaxTrials caps each class (default 4096); MinTrials floors it so
	// a lucky first batch cannot stop a class on noise (default 16).
	// Batch is the per-class round size, the granularity at which the
	// engine re-evaluates the stop rule (default 16).
	MaxTrials int `json:"max_trials,omitempty"`
	MinTrials int `json:"min_trials,omitempty"`
	Batch     int `json:"batch,omitempty"`

	// Workers bounds this campaign's shard parallelism (default 4). It
	// affects scheduling only: final counts are byte-identical across
	// worker counts, because every trial's plan is a pure function of
	// (Seed, class, trial index) and the set of indices run is decided
	// at deterministic round boundaries.
	Workers int `json:"workers,omitempty"`
}

func (r *Request) defaults() {
	if r.TargetWidth <= 0 {
		r.TargetWidth = 0.25
	}
	if r.MaxTrials <= 0 {
		r.MaxTrials = 4096
	}
	if r.MinTrials <= 0 {
		r.MinTrials = 16
	}
	if r.Batch <= 0 {
		r.Batch = 16
	}
	if r.Workers <= 0 {
		r.Workers = 4
	}
}

// Campaign states.
const (
	StateBuilding = "building" // runner golden run in progress
	StateRunning  = "running"
	StatePaused   = "paused"
	StateDone     = "done"
	StateFailed   = "failed"
)

// ClassStatus is the per-instruction-class view of a campaign.
type ClassStatus struct {
	Class    string  `json:"class"`
	Trials   int     `json:"trials"`
	SDC      int     `json:"sdc"`
	DUE      int     `json:"due"`
	Masked   int     `json:"masked"`
	SDCLower float64 `json:"sdc_lower"`
	SDCUpper float64 `json:"sdc_upper"`
	DUELower float64 `json:"due_lower"`
	DUEUpper float64 `json:"due_upper"`
	SDCWidth float64 `json:"sdc_width"`
	DUEWidth float64 `json:"due_width"`
	Stopped  bool    `json:"stopped"`
	CapHit   bool    `json:"cap_hit"`
}

// Status is a point-in-time campaign snapshot, the payload of
// GET /campaigns/{id} and of every SSE stream event.
type Status struct {
	ID          string        `json:"id"`
	Code        string        `json:"code"`
	Device      string        `json:"device"`
	Tool        string        `json:"tool"`
	Seed        uint64        `json:"seed"`
	TargetWidth float64       `json:"target_width"`
	State       string        `json:"state"`
	Error       string        `json:"error,omitempty"`
	Trials      int           `json:"trials"`
	SDC         int           `json:"sdc"`
	DUE         int           `json:"due"`
	Masked      int           `json:"masked"`
	Classes     []ClassStatus `json:"classes"`

	// BaselineTrials is what a fixed-count campaign sized for the same
	// per-class width guarantee would cost: classes x
	// stats.WorstCaseTrials(TargetWidth). The savings the adaptive stop
	// buys is 1 - Trials/BaselineTrials.
	BaselineTrials int `json:"baseline_trials"`

	ElapsedMS    int64   `json:"elapsed_ms"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// Counts is the deterministic subset of a campaign's final state: no
// timing, no derived floats — only what the fault model produced. Two
// runs of the same request agree on these bytes regardless of worker
// count, pause/resume history, or daemon restarts; the loadgen's
// determinism assertion and the serve tests compare them directly.
type Counts struct {
	Code    string        `json:"code"`
	Device  string        `json:"device"`
	Tool    string        `json:"tool"`
	Seed    uint64        `json:"seed"`
	Classes []ClassCounts `json:"classes"`
}

// ClassCounts is one class's deterministic outcome tallies. Patterns
// breaks the class's SDCs down by spatial/magnitude pattern; like the
// outcome counts it is a pure function of (Seed, class, index) and so
// byte-identical across worker counts and pause/resume histories.
type ClassCounts struct {
	Class    string             `json:"class"`
	Trials   int                `json:"trials"`
	SDC      int                `json:"sdc"`
	DUE      int                `json:"due"`
	Masked   int                `json:"masked"`
	Patterns patterns.Ledger    `json:"patterns"`
	DUEModes patterns.DUELedger `json:"due_modes"`
}

// classProgress is the engine's per-class accumulator.
type classProgress struct {
	class    isa.Class
	sampler  *faultinj.ClassSampler // nil while paused / before build
	trials   int
	sdc      int
	due      int
	masked   int
	patterns patterns.Ledger
	dueModes patterns.DUELedger
	stopped  bool
	capHit   bool
}

// Campaign is one adaptively-stopped injection campaign owned by a
// Server. All mutable state is guarded by mu; the run loop is the only
// writer of counts, handlers are readers.
type Campaign struct {
	ID  string
	req Request
	srv *Server

	tool faultinj.Tool

	mu      sync.Mutex
	state   string
	errMsg  string
	classes []*classProgress
	notify  chan struct{} // closed and replaced on every state change
	started time.Time
	elapsed time.Duration // accumulated across pause/resume

	pauseReq  bool
	resumeCh  chan struct{}
	runnerRef *kernels.Runner // held only while running
}

func newCampaign(id string, req Request, tool faultinj.Tool, srv *Server) *Campaign {
	return &Campaign{
		ID: id, req: req, srv: srv, tool: tool,
		state:    StateBuilding,
		notify:   make(chan struct{}),
		resumeCh: make(chan struct{}, 1),
	}
}

// signalLocked wakes every status watcher. Callers hold c.mu.
func (c *Campaign) signalLocked() {
	close(c.notify)
	c.notify = make(chan struct{})
}

// Updated returns a channel that is closed at the campaign's next state
// change, the SSE stream's wait primitive.
func (c *Campaign) Updated() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.notify
}

// Status snapshots the campaign.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID: c.ID, Code: c.req.Code, Device: c.req.Device,
		Tool: c.tool.String(), Seed: c.req.Seed,
		TargetWidth: c.req.TargetWidth,
		State:       c.state, Error: c.errMsg,
	}
	for _, cp := range c.classes {
		sdcIv := stats.Wilson(cp.sdc, cp.trials)
		dueIv := stats.Wilson(cp.due, cp.trials)
		st.Classes = append(st.Classes, ClassStatus{
			Class:  cp.class.String(),
			Trials: cp.trials, SDC: cp.sdc, DUE: cp.due, Masked: cp.masked,
			SDCLower: sdcIv.Lower, SDCUpper: sdcIv.Upper,
			DUELower: dueIv.Lower, DUEUpper: dueIv.Upper,
			SDCWidth: sdcIv.Width(), DUEWidth: dueIv.Width(),
			Stopped: cp.stopped, CapHit: cp.capHit,
		})
		st.Trials += cp.trials
		st.SDC += cp.sdc
		st.DUE += cp.due
		st.Masked += cp.masked
	}
	st.BaselineTrials = len(c.classes) * stats.WorstCaseTrials(c.req.TargetWidth)
	el := c.elapsed
	// started is zero until run() begins, e.g. in the status snapshot
	// returned by the create handler.
	if (c.state == StateRunning || c.state == StateBuilding) && !c.started.IsZero() {
		el += time.Since(c.started)
	}
	st.ElapsedMS = el.Milliseconds()
	if el > 0 {
		st.TrialsPerSec = float64(st.Trials) / el.Seconds()
	}
	return st
}

// Counts snapshots the deterministic outcome tallies.
func (c *Campaign) Counts() Counts {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Counts{
		Code: c.req.Code, Device: c.req.Device,
		Tool: c.tool.String(), Seed: c.req.Seed,
	}
	for _, cp := range c.classes {
		out.Classes = append(out.Classes, ClassCounts{
			Class: cp.class.String(), Trials: cp.trials,
			SDC: cp.sdc, DUE: cp.due, Masked: cp.masked,
			Patterns: cp.patterns, DUEModes: cp.dueModes,
		})
	}
	return out
}

// Pause asks the engine to checkpoint and halt at the next round
// boundary. Idempotent while running; an error if the campaign already
// finished.
func (c *Campaign) Pause() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StateDone, StateFailed:
		return fmt.Errorf("serve: campaign %s already %s", c.ID, c.state)
	case StatePaused:
		return nil
	}
	c.pauseReq = true
	return nil
}

// Resume restarts a paused campaign. Idempotent while running.
func (c *Campaign) Resume() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StateDone, StateFailed:
		return fmt.Errorf("serve: campaign %s already %s", c.ID, c.state)
	case StateRunning, StateBuilding:
		c.pauseReq = false // cancel a not-yet-honored pause
		return nil
	}
	select {
	case c.resumeCh <- struct{}{}:
	default:
	}
	return nil
}

// Done reports whether the campaign reached a terminal state.
func (s Status) Done() bool { return s.State == StateDone || s.State == StateFailed }

// checkpointJSON is the persisted campaign state. Counts are all the
// engine needs: the next trial of class k is always index trials(k),
// and the sampler regenerates any index from the seed, so a resumed
// campaign continues the exact sequence the uninterrupted one runs.
type checkpointJSON struct {
	ID      string        `json:"id"`
	Request Request       `json:"request"`
	Tool    string        `json:"tool"`
	Classes []ClassCounts `json:"classes"`
	Stopped []string      `json:"stopped,omitempty"`
	CapHit  []string      `json:"cap_hit,omitempty"`
}

func (c *Campaign) checkpointPath() string {
	return filepath.Join(c.srv.opts.SpoolDir, c.ID+".json")
}

// checkpoint persists the campaign via the core persistence layer's
// atomic writer. Callers hold c.mu.
func (c *Campaign) checkpointLocked() error {
	ck := checkpointJSON{ID: c.ID, Request: c.req, Tool: c.tool.String()}
	for _, cp := range c.classes {
		ck.Classes = append(ck.Classes, ClassCounts{
			Class: cp.class.String(), Trials: cp.trials,
			SDC: cp.sdc, DUE: cp.due, Masked: cp.masked,
			Patterns: cp.patterns, DUEModes: cp.dueModes,
		})
		if cp.stopped {
			ck.Stopped = append(ck.Stopped, cp.class.String())
		}
		if cp.capHit {
			ck.CapHit = append(ck.CapHit, cp.class.String())
		}
	}
	return core.WriteJSONAtomic(c.checkpointPath(), ck)
}

// loadCheckpoint reads a checkpoint back into a fresh Campaign in the
// paused state.
func (s *Server) loadCheckpoint(id string) (*Campaign, error) {
	var ck checkpointJSON
	if err := core.ReadJSON(filepath.Join(s.opts.SpoolDir, id+".json"), &ck); err != nil {
		return nil, err
	}
	tool, err := parseTool(ck.Tool)
	if err != nil {
		return nil, err
	}
	c := newCampaign(ck.ID, ck.Request, tool, s)
	stopped := make(map[string]bool)
	for _, n := range ck.Stopped {
		stopped[n] = true
	}
	capHit := make(map[string]bool)
	for _, n := range ck.CapHit {
		capHit[n] = true
	}
	for _, cc := range ck.Classes {
		class, err := faultinj.ClassByName(cc.Class)
		if err != nil {
			return nil, fmt.Errorf("serve: checkpoint %s: %w", id, err)
		}
		c.classes = append(c.classes, &classProgress{
			class: class, trials: cc.Trials,
			sdc: cc.SDC, due: cc.DUE, masked: cc.Masked,
			patterns: cc.Patterns, dueModes: cc.DUEModes,
			stopped: stopped[cc.Class], capHit: capHit[cc.Class],
		})
	}
	c.state = StatePaused
	return c, nil
}

// run is the campaign engine: acquire the (cached) runner, shard
// batches of deterministically-indexed trials across the worker pool,
// and stop each class once its Wilson intervals are tight enough.
// Determinism does not depend on execution order anywhere: the set of
// indices run is fixed at round boundaries by counts alone, each index
// maps to one plan, and outcome tallies are order-free sums.
func (c *Campaign) run() {
	c.srv.metrics.campaignsActive.Add(1)
	defer c.srv.metrics.campaignsActive.Add(-1)

	c.mu.Lock()
	c.started = time.Now()
	resume := c.state == StatePaused
	c.mu.Unlock()
	if resume {
		// A checkpoint-loaded campaign starts its goroutine paused and
		// waits for the resume signal before touching the runner.
		c.srv.metrics.campaignsPaused.Add(1)
		<-c.resumeCh
		c.srv.metrics.campaignsPaused.Add(-1)
		c.mu.Lock()
		c.state = StateBuilding
		c.started = time.Now()
		c.signalLocked()
		c.mu.Unlock()
	}

	if err := c.acquireRunner(); err != nil {
		c.fail(err)
		return
	}

	for {
		// Honor a pause at the round boundary: checkpoint, drop the
		// runner reference (the cache may evict it), and block.
		c.mu.Lock()
		if c.pauseReq {
			c.pauseReq = false
			c.elapsed += time.Since(c.started)
			if err := c.checkpointLocked(); err != nil {
				c.mu.Unlock()
				c.fail(fmt.Errorf("serve: checkpointing %s: %w", c.ID, err))
				return
			}
			c.state = StatePaused
			c.runnerRef = nil
			for _, cp := range c.classes {
				cp.sampler = nil
			}
			c.signalLocked()
			c.mu.Unlock()

			c.srv.metrics.campaignsPaused.Add(1)
			<-c.resumeCh
			c.srv.metrics.campaignsPaused.Add(-1)

			c.mu.Lock()
			c.state = StateBuilding
			c.started = time.Now()
			c.signalLocked()
			c.mu.Unlock()
			if err := c.acquireRunner(); err != nil {
				c.fail(err)
				return
			}
			continue
		}
		jobs := c.scheduleRound()
		c.mu.Unlock()

		if len(jobs) == 0 {
			break
		}
		if err := c.runRound(jobs); err != nil {
			c.fail(err)
			return
		}

		c.mu.Lock()
		c.settleRound(jobs)
		c.signalLocked()
		c.mu.Unlock()
	}

	c.mu.Lock()
	c.elapsed += time.Since(c.started)
	c.state = StateDone
	c.runnerRef = nil
	// The checkpoint of a finished campaign is stale; remove it so the
	// spool only holds resumable state.
	os.Remove(c.checkpointPath())
	c.signalLocked()
	c.mu.Unlock()
	c.srv.metrics.campaignsCompleted.Add(1)
}

// acquireRunner gets the shared runner from the cache (building it and
// paying the golden run if cold), then (re)builds the per-class
// samplers. On a fresh campaign it also discovers the class set; on a
// resumed one the checkpointed classes must all still exist — the
// build is deterministic, so a mismatch is a corrupted checkpoint.
func (c *Campaign) acquireRunner() error {
	runner, err := c.srv.runnerFor(c.req, c.tool)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runnerRef = runner
	if len(c.classes) == 0 {
		for _, class := range faultinj.AdaptiveClasses(runner, c.tool) {
			c.classes = append(c.classes, &classProgress{class: class})
		}
		if len(c.classes) == 0 {
			return fmt.Errorf("serve: %s has no injectable instructions under %s",
				c.req.Code, c.tool)
		}
	}
	for _, cp := range c.classes {
		s, ok := faultinj.NewClassSampler(runner, c.tool, cp.class)
		if !ok {
			return fmt.Errorf("serve: campaign %s: class %s has no population (corrupt checkpoint?)",
				c.ID, cp.class)
		}
		cp.sampler = s
	}
	c.state = StateRunning
	c.signalLocked()
	return nil
}

// trialJob addresses one trial: class slot and deterministic index.
type trialJob struct {
	ci    int
	index uint64
	rec   kernels.TrialRecord
}

// scheduleRound fixes the next round's trial set: for every class that
// has not stopped, indices [trials, trials+batch), capped at MaxTrials.
// Callers hold c.mu; the schedule depends only on counts, which is what
// makes it — and everything downstream — worker-count-independent.
func (c *Campaign) scheduleRound() []*trialJob {
	var jobs []*trialJob
	for ci, cp := range c.classes {
		if cp.stopped {
			continue
		}
		end := cp.trials + c.req.Batch
		if end > c.req.MaxTrials {
			end = c.req.MaxTrials
		}
		for i := cp.trials; i < end; i++ {
			jobs = append(jobs, &trialJob{ci: ci, index: uint64(i)})
		}
		if end >= c.req.MaxTrials && cp.trials >= c.req.MaxTrials {
			// Defensive: a class at cap should have been marked stopped
			// by settleRound already.
			cp.stopped, cp.capHit = true, true
		}
	}
	return jobs
}

// runRound executes the scheduled trials across the worker pool,
// bounded by the campaign's Workers and the server's global simulation
// semaphore. The first infrastructure error aborts the campaign —
// a failed trial is not an outcome.
func (c *Campaign) runRound(jobs []*trialJob) error {
	c.mu.Lock()
	runner := c.runnerRef
	seed := c.req.Seed
	samplers := make([]*faultinj.ClassSampler, len(c.classes))
	for i, cp := range c.classes {
		samplers[i] = cp.sampler
	}
	c.mu.Unlock()

	sem := make(chan struct{}, c.req.Workers)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, job := range jobs {
		wg.Add(1)
		go func(job *trialJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c.srv.simSem <- struct{}{}
			defer func() { <-c.srv.simSem }()
			plan, launch := samplers[job.ci].Plan(seed, job.index)
			rec, err := runner.RunTrialWithFault(plan, launch)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("serve: campaign %s trial %d: %w", c.ID, job.index, err)
				}
				errMu.Unlock()
				return
			}
			job.rec = rec
			c.srv.metrics.TrialDone()
		}(job)
	}
	wg.Wait()
	return firstErr
}

// settleRound folds the round's outcomes into the class tallies and
// re-evaluates the stop rule. Callers hold c.mu.
func (c *Campaign) settleRound(jobs []*trialJob) {
	var geo *kernels.OutputRegion
	if c.runnerRef != nil {
		geo = c.runnerRef.Instance().Output
	}
	for _, job := range jobs {
		cp := c.classes[job.ci]
		cp.trials++
		ob := patterns.Observe(job.rec, geo)
		cp.patterns.Count(ob)
		cp.dueModes.Count(ob)
		switch job.rec.Outcome {
		case kernels.SDC:
			cp.sdc++
		case kernels.DUE:
			cp.due++
		default:
			cp.masked++
		}
	}
	for _, cp := range c.classes {
		if cp.stopped {
			continue
		}
		if cp.trials >= c.req.MinTrials {
			sdcW := stats.Wilson(cp.sdc, cp.trials).Width()
			dueW := stats.Wilson(cp.due, cp.trials).Width()
			if sdcW <= c.req.TargetWidth && dueW <= c.req.TargetWidth {
				cp.stopped = true
				continue
			}
		}
		if cp.trials >= c.req.MaxTrials {
			cp.stopped, cp.capHit = true, true
		}
	}
}

func (c *Campaign) fail(err error) {
	c.mu.Lock()
	c.elapsed += time.Since(c.started)
	c.state = StateFailed
	c.errMsg = err.Error()
	c.runnerRef = nil
	c.signalLocked()
	c.mu.Unlock()
	c.srv.metrics.campaignsFailed.Add(1)
	c.srv.logf("campaign %s failed: %v", c.ID, err)
}
