// Package serve is the campaign daemon behind cmd/gpurel-serve: a
// long-lived HTTP/JSON service that turns the repository's batch
// injection pipeline into adaptively-stopped, sharded campaigns.
//
// A campaign request names a workload, device, fault model (injector
// semantics), and a target Wilson 95% interval width. The engine shards
// trials across a worker pool using index-addressed split-RNG sampling
// (faultinj.ClassSampler), streams incremental Masked/SDC/DUE counts
// with their confidence intervals over SSE, and stops each instruction
// class as soon as its intervals are tight enough — replacing the fixed
// trial counts of the batch CLIs with the statistical budget the paper
// actually cares about. Built runners are shared across campaigns
// through a byte-budgeted LRU; long campaigns checkpoint on pause and
// resume across daemon restarts. See DESIGN.md §14.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"

	"gpurel/internal/device"
	"gpurel/internal/faultinj"
	"gpurel/internal/kernels"
	"gpurel/internal/pprofutil"
	"gpurel/internal/suite"
)

// Options configures a Server.
type Options struct {
	// SimWorkers bounds concurrent injection trials across all
	// campaigns (0: GOMAXPROCS). Per-campaign Request.Workers shares
	// this global budget.
	SimWorkers int
	// CacheBytes is the runner-cache budget (0: DefaultCacheBytes).
	CacheBytes int64
	// SpoolDir holds campaign checkpoints ("": a fresh temp dir).
	SpoolDir string
	// EnablePprof mounts /debug/pprof (off by default: the profiling
	// surface is for operators, not tenants).
	EnablePprof bool
	// Logf receives one line per campaign lifecycle event (nil: silent).
	Logf func(format string, args ...any)
}

// Server owns the campaign set, the runner cache, and the HTTP surface.
type Server struct {
	opts    Options
	cache   *RunnerCache
	metrics *Metrics
	simSem  chan struct{}
	mux     *http.ServeMux

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // creation order, for GET /campaigns
	nextID    int
}

// New builds a Server.
func New(opts Options) (*Server, error) {
	if opts.SimWorkers <= 0 {
		opts.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.SpoolDir == "" {
		dir, err := os.MkdirTemp("", "gpurel-serve-spool-")
		if err != nil {
			return nil, err
		}
		opts.SpoolDir = dir
	} else if err := os.MkdirAll(opts.SpoolDir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		opts:      opts,
		cache:     NewRunnerCache(opts.CacheBytes),
		metrics:   newMetrics(),
		simSem:    make(chan struct{}, opts.SimWorkers),
		campaigns: make(map[string]*Campaign),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /campaigns", s.handleCreate)
	s.mux.HandleFunc("GET /campaigns", s.handleList)
	s.mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /campaigns/{id}/counts", s.handleCounts)
	s.mux.HandleFunc("GET /campaigns/{id}/stream", s.handleStream)
	s.mux.HandleFunc("POST /campaigns/{id}/pause", s.handlePause)
	s.mux.HandleFunc("POST /campaigns/{id}/resume", s.handleResume)
	if opts.EnablePprof {
		pprofutil.RegisterHTTP(s.mux)
	}
	return s, nil
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// SpoolDir returns the checkpoint directory in use.
func (s *Server) SpoolDir() string { return s.opts.SpoolDir }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// parseDevice resolves a request's device label.
func parseDevice(name string) (*device.Device, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "volta", "v100", "tesla v100":
		return device.V100(), nil
	case "kepler", "k40c", "tesla k40c":
		return device.K40c(), nil
	}
	return nil, fmt.Errorf("serve: unknown device %q (want kepler or volta)", name)
}

// parseTool resolves a request's injector label.
func parseTool(name string) (faultinj.Tool, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "nvbitfi":
		return faultinj.NVBitFI, nil
	case "sassifi":
		return faultinj.Sassifi, nil
	}
	return 0, fmt.Errorf("serve: unknown tool %q (want sassifi or nvbitfi)", name)
}

// validate resolves and checks a request against the workload matrix:
// the suite must carry the code on that device, and the injector must
// be able to instrument it (§III-D, §VI restrictions).
func validate(req *Request) (faultinj.Tool, error) {
	req.defaults()
	dev, err := parseDevice(req.Device)
	if err != nil {
		return 0, err
	}
	tool, err := parseTool(req.Tool)
	if err != nil {
		return 0, err
	}
	if tool == faultinj.Sassifi && dev.Arch != device.Kepler {
		return 0, fmt.Errorf("serve: SASSIFI instruments Kepler only, not %s", dev.Name)
	}
	e, err := suite.Find(suite.ForDevice(dev), req.Code)
	if err != nil {
		return 0, err
	}
	if dev.Arch == device.Kepler && e.Library {
		return 0, fmt.Errorf("serve: no injector instruments proprietary-library code %s on Kepler", e.Name)
	}
	if tool == faultinj.NVBitFI && e.FP16 {
		return 0, fmt.Errorf("serve: NVBitFI cannot inject into half-precision code %s", e.Name)
	}
	if req.TargetWidth > 1 {
		return 0, fmt.Errorf("serve: target_width %g out of (0, 1]", req.TargetWidth)
	}
	return tool, nil
}

// runnerFor fetches the campaign's runner from the shared cache.
func (s *Server) runnerFor(req Request, tool faultinj.Tool) (*kernels.Runner, error) {
	dev, err := parseDevice(req.Device)
	if err != nil {
		return nil, err
	}
	e, err := suite.Find(suite.ForDevice(dev), req.Code)
	if err != nil {
		return nil, err
	}
	return s.cache.Get(e, dev, tool.OptLevel())
}

// Create validates a request, registers a campaign, and starts its
// engine goroutine. The in-process entry point behind POST /campaigns.
func (s *Server) Create(req Request) (*Campaign, error) {
	tool, err := validate(&req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("c%06d", s.nextID)
	c := newCampaign(id, req, tool, s)
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.logf("campaign %s: %s on %s, tool %s, width %.3g, seed %d",
		id, req.Code, req.Device, tool, req.TargetWidth, req.Seed)
	go c.run()
	return c, nil
}

// Get returns a live campaign by ID.
func (s *Server) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// ResumeFromCheckpoint revives a checkpointed campaign that is not in
// memory — the daemon-restart half of pause/resume. The revived engine
// continues the trial sequence exactly where the checkpoint left it.
func (s *Server) ResumeFromCheckpoint(id string) (*Campaign, error) {
	s.mu.Lock()
	if _, ok := s.campaigns[id]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: campaign %s is live; use its resume endpoint", id)
	}
	s.mu.Unlock()
	c, err := s.loadCheckpoint(id)
	if err != nil {
		return nil, err
	}
	if _, err := validate(&c.req); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", id, err)
	}
	s.mu.Lock()
	if _, ok := s.campaigns[id]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: campaign %s is live; use its resume endpoint", id)
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()
	go c.run()
	if err := c.Resume(); err != nil {
		return nil, err
	}
	s.logf("campaign %s: resumed from checkpoint", id)
	return c, nil
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: parsing request: %w", err))
		return
	}
	c, err := s.Create(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, c.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.Get(id); ok {
			out = append(out, c.Status())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) campaignFromPath(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no campaign %q", id))
		return nil, false
	}
	return c, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.campaignFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, c.Status())
	}
}

func (s *Server) handleCounts(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFromPath(w, r)
	if !ok {
		return
	}
	// Counts are the determinism-bearing artifact: emit them compactly
	// and canonically (struct field order, class-value order) so two
	// campaigns' bodies can be compared byte for byte.
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(c.Counts())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Write(data)
	w.Write([]byte("\n"))
}

// handleStream serves the campaign as a server-sent-event stream: one
// `data:` line per engine round (and per lifecycle transition), closing
// after the terminal event. Clients that reconnect just get the current
// snapshot first — every event is a full status, not a delta.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFromPath(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	for {
		upd := c.Updated() // grab before snapshotting: no lost wakeups
		st := c.Status()
		data, err := json.Marshal(st)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return
		}
		if canFlush {
			flusher.Flush()
		}
		if st.Done() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-upd:
		}
	}
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFromPath(w, r)
	if !ok {
		return
	}
	if err := c.Pause(); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if c, ok := s.Get(id); ok {
		if err := c.Resume(); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, c.Status())
		return
	}
	// Not live: try the spool — this is how a restarted daemon picks a
	// long campaign back up.
	c, err := s.ResumeFromCheckpoint(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.Render(w, s.cache)
}
