package serve

import (
	"container/list"
	"sync"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/kernels"
	"gpurel/internal/suite"
)

// RunnerKey identifies a cached runner: the same triple the study-level
// runnerCache (internal/core) keys on, plus the device, because one
// daemon serves campaigns against both architectures.
type RunnerKey struct {
	Code   string
	Device string
	Opt    asm.OptLevel
}

// RunnerCache is a byte-budgeted LRU over built kernels.Runner
// instances. A runner is expensive twice over — the golden run that
// builds it costs more than most campaigns' injection work, and its
// snapshots and sub-launch images hold tens of megabytes — so the
// daemon shares runners across requests and evicts least-recently-used
// entries once their MemoryFootprint sum exceeds the budget
// (a multiple of the PR-7 per-runner image budget,
// kernels.ImageBudgetBytes).
//
// Eviction only drops the cache's reference: campaigns already holding
// the runner keep using it (runners are immutable after the golden
// run), and the memory is reclaimed when they finish.
type RunnerCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	lru     *list.List // of *cacheEntry; front = most recently used
	entries map[RunnerKey]*cacheEntry

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  RunnerKey
	elem *list.Element
	size int64 // 0 until the build completes

	once sync.Once
	r    *kernels.Runner
	err  error
}

// NewRunnerCache returns a cache with the given byte budget
// (<= 0: DefaultCacheBytes).
func NewRunnerCache(budget int64) *RunnerCache {
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	return &RunnerCache{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[RunnerKey]*cacheEntry),
	}
}

// DefaultCacheBytes is the default runner-cache budget: four
// image-saturated runners' worth. The PR-7 budget bounds one runner's
// sub-launch images; the cache bounds how many such runners stay warm.
const DefaultCacheBytes = 4 * kernels.ImageBudgetBytes

// Get returns the runner for (entry, dev, opt), building it — golden
// run included — at most once per residency no matter how many
// campaigns request it concurrently (they block on the one build).
func (c *RunnerCache) Get(e suite.Entry, dev *device.Device, opt asm.OptLevel) (*kernels.Runner, error) {
	key := RunnerKey{Code: e.Name, Device: dev.Name, Opt: opt}
	c.mu.Lock()
	ent := c.entries[key]
	if ent != nil {
		c.lru.MoveToFront(ent.elem)
		c.hits++
	} else {
		ent = &cacheEntry{key: key}
		ent.elem = c.lru.PushFront(ent)
		c.entries[key] = ent
		c.misses++
	}
	c.mu.Unlock()

	ent.once.Do(func() {
		ent.r, ent.err = kernels.NewRunner(e.Name, e.Build, dev, opt)
		c.mu.Lock()
		defer c.mu.Unlock()
		if ent.err != nil {
			// A failed build must not pin a dead entry (or poison
			// retries after a transient failure).
			c.drop(ent)
			return
		}
		ent.size = int64(ent.r.MemoryFootprint())
		c.used += ent.size
		c.evictLocked()
	})
	return ent.r, ent.err
}

// evictLocked removes entries from the cold end until the budget holds,
// never evicting entries whose build is still in flight (size 0) and
// always keeping at least one finished entry resident.
func (c *RunnerCache) evictLocked() {
	for c.used > c.budget {
		var victim *cacheEntry
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			if e.size > 0 {
				victim = e
				break
			}
		}
		if victim == nil || c.lru.Len() <= 1 {
			return
		}
		c.drop(victim)
		c.evictions++
	}
}

// drop unlinks an entry. Callers hold c.mu.
func (c *RunnerCache) drop(e *cacheEntry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	c.lru.Remove(e.elem)
	c.used -= e.size
}

// Stats returns the cache counters for /metrics.
func (c *RunnerCache) Stats() (hits, misses, evictions uint64, usedBytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.used, len(c.entries)
}
