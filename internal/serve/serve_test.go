package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/suite"
)

func testHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) Status {
	t.Helper()
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	s, ts := testHTTPServer(t)
	resp := postJSON(t, ts.URL+"/campaigns", Request{
		Code: "FMXM", Device: "volta", TargetWidth: 0.25, Seed: 3, Workers: 8,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /campaigns: %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" || st.Tool != "NVBitFI" {
		t.Fatalf("unexpected create status: %+v", st)
	}

	c, ok := s.Get(st.ID)
	if !ok {
		t.Fatalf("campaign %s not registered", st.ID)
	}
	waitDone(t, c)

	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	final := decodeStatus(t, resp)
	if final.State != StateDone || final.Trials == 0 {
		t.Fatalf("final status: %+v", final)
	}
	if final.Trials >= final.BaselineTrials {
		t.Fatalf("adaptive run used %d trials >= baseline %d", final.Trials, final.BaselineTrials)
	}

	// Counts endpoint must be canonical: two fetches, identical bytes.
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/counts")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		bodies = append(bodies, buf.Bytes())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("counts endpoint not stable:\n%s\n%s", bodies[0], bodies[1])
	}

	// List view includes the campaign.
	resp, err = http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("GET /campaigns: %+v", list)
	}
}

func TestHTTPStream(t *testing.T) {
	_, ts := testHTTPServer(t)
	st := decodeStatus(t, postJSON(t, ts.URL+"/campaigns", Request{
		Code: "FMXM", Device: "volta", TargetWidth: 0.25, Seed: 11, Workers: 8,
	}))
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []Status
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Status
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	// A fast campaign can reach StateDone before the stream attaches, in
	// which case the handler legitimately delivers only the final
	// snapshot; otherwise incremental progress events must precede it.
	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}
	if len(events) < 2 && events[0].State != StateDone {
		t.Fatalf("stream delivered %d events, want incremental progress", len(events))
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("stream ended in state %q (%s)", last.State, last.Error)
	}
	// Trials are monotonically nondecreasing across events.
	for i := 1; i < len(events); i++ {
		if events[i].Trials < events[i-1].Trials {
			t.Fatalf("stream went backwards: %d then %d trials", events[i-1].Trials, events[i].Trials)
		}
	}
}

func TestHTTPRejectsBadRequests(t *testing.T) {
	_, ts := testHTTPServer(t)
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown code", Request{Code: "NOSUCH", Device: "volta"}},
		{"unknown device", Request{Code: "FMXM", Device: "pascal"}},
		{"sassifi on volta", Request{Code: "FMXM", Device: "volta", Tool: "sassifi"}},
		{"kepler library code", Request{Code: "FGEMM", Device: "kepler"}},
		{"fp16 under nvbitfi", Request{Code: "HMXM", Device: "volta"}},
		{"width over 1", Request{Code: "FMXM", Device: "volta", TargetWidth: 1.5}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/campaigns", tc.req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	for _, path := range []string{"/campaigns/c999999", "/campaigns/c999999/counts"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHTTPMetrics(t *testing.T) {
	s, ts := testHTTPServer(t)
	c, err := s.Create(Request{Code: "FMXM", Device: "volta", TargetWidth: 0.3, Seed: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"gpurel_campaigns_completed 1",
		"gpurel_trials_total",
		"gpurel_trials_per_sec",
		"gpurel_runner_cache_misses 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHTTPPprofGate(t *testing.T) {
	// Off by default.
	_, ts := testHTTPServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without the flag: %d", resp.StatusCode)
	}
	// On when asked.
	s2, err := New(Options{SpoolDir: t.TempDir(), EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not served with the flag: %d", resp.StatusCode)
	}
}

func TestRunnerCacheSharingAndEviction(t *testing.T) {
	dev := device.V100()
	entries := suite.ForDevice(dev)
	fm, err := suite.Find(entries, "FMXM")
	if err != nil {
		t.Fatal(err)
	}
	// Generous budget: the second Get must hit.
	cache := NewRunnerCache(DefaultCacheBytes)
	r1, err := cache.Get(fm, dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cache.Get(fm, dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("cache rebuilt a hot runner")
	}
	hits, misses, _, used, n := cache.Stats()
	if hits != 1 || misses != 1 || n != 1 {
		t.Fatalf("stats after two Gets: hits %d misses %d entries %d", hits, misses, n)
	}
	if used <= 0 || used != int64(r1.MemoryFootprint()) {
		t.Fatalf("cache charges %d bytes, runner footprint %d", used, r1.MemoryFootprint())
	}

	// A budget smaller than one runner: each new key evicts the old,
	// but the in-hand runner stays usable.
	tiny := NewRunnerCache(1)
	la, err := suite.Find(entries, "FLAVA")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := tiny.Get(fm, dev, asm.O2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Get(la, dev, asm.O2); err != nil {
		t.Fatal(err)
	}
	_, _, evictions, _, n := tiny.Stats()
	if evictions == 0 || n != 1 {
		t.Fatalf("tiny cache: evictions %d entries %d", evictions, n)
	}
	// Eviction drops only the cache's reference; the in-hand runner
	// still works (golden outcome on a clean replay).
	if got := ra.GoldenProfiles(); len(got) == 0 {
		t.Fatal("evicted runner lost its golden profiles")
	}
}

// TestCheckScriptUnknownTier covers the CI entry point's argument
// guard: an unrecognized tier must fail loudly with the tier list, not
// silently run tier 1.
func TestCheckScriptUnknownTier(t *testing.T) {
	out, err := exec.Command("sh", "../../scripts/check.sh", "no-such-tier").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("check.sh no-such-tier: err %v (output %q), want a nonzero exit", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("check.sh no-such-tier exited %d, want 1", code)
	}
	text := string(out)
	if !strings.Contains(text, "unknown tier") {
		t.Fatalf("guard output does not name the problem:\n%s", text)
	}
	for _, tier := range []string{"full", "bench", "crossval", "opt", "artifacts", "serve"} {
		if !strings.Contains(text, tier) {
			t.Fatalf("guard output does not list tier %q:\n%s", tier, text)
		}
	}
}

// TestCheckScriptKnownTiersStillParse ensures the guard recognizes the
// documented tiers — it must reject only unknown ones. Tier execution
// is too heavy for a unit test, so this exercises the dispatcher alone
// via a dry-run marker the script honors before doing any work.
func TestCheckScriptKnownTiersStillParse(t *testing.T) {
	for _, tier := range []string{"", "full", "bench", "crossval", "opt", "artifacts", "serve", "patterns", "duemode"} {
		cmd := exec.Command("sh", "../../scripts/check.sh", tier)
		cmd.Env = append(cmd.Environ(), "CHECK_SH_PARSE_ONLY=1")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("tier %q rejected by the dispatcher: %v\n%s", tier, err, out)
		}
		if !strings.Contains(string(out), "tier ok") {
			t.Fatalf("tier %q: parse-only run produced %q", tier, out)
		}
	}
}
