package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's counter set, exported at /metrics as one
// plain-text `name value` line per counter so the CI soak job can grep
// a line straight into its artifact. The format is Prometheus-
// compatible exposition minus the type annotations.
type Metrics struct {
	start time.Time

	campaignsActive    atomic.Int64
	campaignsCompleted atomic.Uint64
	campaignsFailed    atomic.Uint64
	campaignsPaused    atomic.Int64
	trials             atomic.Uint64
}

func newMetrics() *Metrics { return &Metrics{start: time.Now()} }

// TrialDone counts one completed injection trial.
func (m *Metrics) TrialDone() { m.trials.Add(1) }

// Trials returns the number of injection trials completed since start.
func (m *Metrics) Trials() uint64 { return m.trials.Load() }

// Render writes the counter lines.
func (m *Metrics) Render(w io.Writer, cache *RunnerCache) {
	uptime := time.Since(m.start).Seconds()
	trials := m.trials.Load()
	perSec := 0.0
	if uptime > 0 {
		perSec = float64(trials) / uptime
	}
	hits, misses, evictions, usedBytes, entries := cache.Stats()
	fmt.Fprintf(w, "gpurel_uptime_seconds %.1f\n", uptime)
	fmt.Fprintf(w, "gpurel_campaigns_active %d\n", m.campaignsActive.Load())
	fmt.Fprintf(w, "gpurel_campaigns_paused %d\n", m.campaignsPaused.Load())
	fmt.Fprintf(w, "gpurel_campaigns_completed %d\n", m.campaignsCompleted.Load())
	fmt.Fprintf(w, "gpurel_campaigns_failed %d\n", m.campaignsFailed.Load())
	fmt.Fprintf(w, "gpurel_trials_total %d\n", trials)
	fmt.Fprintf(w, "gpurel_trials_per_sec %.1f\n", perSec)
	fmt.Fprintf(w, "gpurel_runner_cache_hits %d\n", hits)
	fmt.Fprintf(w, "gpurel_runner_cache_misses %d\n", misses)
	fmt.Fprintf(w, "gpurel_runner_cache_evictions %d\n", evictions)
	fmt.Fprintf(w, "gpurel_runner_cache_bytes %d\n", usedBytes)
	fmt.Fprintf(w, "gpurel_runner_cache_entries %d\n", entries)
}
