package serve

import (
	"encoding/json"
	"testing"
	"time"
)

// waitFor blocks until the campaign satisfies pred (or the test times
// out), re-checking at every engine state change.
func waitFor(t *testing.T, c *Campaign, what string, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.After(120 * time.Second)
	for {
		upd := c.Updated()
		st := c.Status()
		if pred(st) {
			return st
		}
		if st.Done() && !pred(c.Status()) {
			t.Fatalf("campaign %s reached terminal state %q (err %q) before %s",
				c.ID, st.State, st.Error, what)
		}
		select {
		case <-upd:
		case <-deadline:
			t.Fatalf("campaign %s: timed out waiting for %s (state %q, %d trials)",
				c.ID, what, st.State, st.Trials)
		}
	}
}

func waitDone(t *testing.T, c *Campaign) Status {
	t.Helper()
	st := waitFor(t, c, "completion", func(s Status) bool { return s.Done() })
	if st.State != StateDone {
		t.Fatalf("campaign %s failed: %s", c.ID, st.Error)
	}
	return st
}

func countsBytes(t *testing.T, c *Campaign) []byte {
	t.Helper()
	data, err := json.Marshal(c.Counts())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Options{SpoolDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDeterminismAcrossWorkers pins the service's core guarantee: the
// same request produces byte-identical final counts whether its trials
// run sequentially or sharded eight ways.
func TestDeterminismAcrossWorkers(t *testing.T) {
	s := testServer(t)
	base := Request{
		Code: "FMXM", Device: "volta",
		TargetWidth: 0.2, Seed: 41, Batch: 8, MinTrials: 8,
	}
	var got [][]byte
	for _, workers := range []int{1, 8} {
		req := base
		req.Workers = workers
		c, err := s.Create(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, c)
		got = append(got, countsBytes(t, c))
	}
	if string(got[0]) != string(got[1]) {
		t.Fatalf("final counts differ between 1 and 8 workers:\n%s\n%s", got[0], got[1])
	}
	// The byte comparison above already covers the pattern ledgers (they
	// ride the counts body); additionally pin that they are populated and
	// consistent — every SDC a class counted landed in its ledger.
	var counts Counts
	if err := json.Unmarshal(got[0], &counts); err != nil {
		t.Fatal(err)
	}
	sdc, ledger := 0, 0
	for _, cc := range counts.Classes {
		sdc += cc.SDC
		ledger += cc.Patterns.SDCs()
	}
	if sdc == 0 {
		t.Fatal("campaign produced no SDCs; the pattern assertion needs at least one")
	}
	if ledger != sdc {
		t.Fatalf("pattern ledgers absorbed %d SDCs, classes counted %d", ledger, sdc)
	}
}

// TestDeterminismAcrossPauseResume extends the guarantee over the
// checkpoint machinery: a campaign paused mid-flight and resumed — in
// the same process, and in a fresh "restarted daemon" process sharing
// only the spool directory — still lands on the same bytes.
func TestDeterminismAcrossPauseResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign pause/resume soak; run without -short")
	}
	spool := t.TempDir()
	req := Request{
		Code: "FMXM", Device: "volta",
		TargetWidth: 0.12, Seed: 97, Batch: 8, MinTrials: 8, Workers: 8,
	}

	// Reference: uninterrupted.
	s1 := testServer(t)
	ref, err := s1.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ref)
	want := countsBytes(t, ref)

	// Same-process pause/resume.
	s2 := testServer(t)
	c2, err := s2.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, c2, "first trials", func(st Status) bool {
		return st.State == StateRunning && st.Trials > 0
	})
	if err := c2.Pause(); err != nil {
		t.Fatal(err)
	}
	st := waitFor(t, c2, "pause", func(st Status) bool { return st.State == StatePaused })
	if st.Trials == 0 || st.Trials >= st.BaselineTrials {
		t.Logf("note: paused at %d trials (baseline %d)", st.Trials, st.BaselineTrials)
	}
	if err := c2.Resume(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, c2)
	if got := countsBytes(t, c2); string(got) != string(want) {
		t.Fatalf("pause/resume changed final counts:\nwant %s\ngot  %s", want, got)
	}

	// Cross-process resume: pause in one server, revive the checkpoint
	// in another sharing the spool (a daemon restart).
	s3, err := New(Options{SpoolDir: spool, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := s3.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, c3, "first trials", func(st Status) bool {
		return st.State == StateRunning && st.Trials > 0
	})
	if err := c3.Pause(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, c3, "pause", func(st Status) bool { return st.State == StatePaused })

	s4, err := New(Options{SpoolDir: spool, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	c4, err := s4.ResumeFromCheckpoint(c3.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c4)
	if got := countsBytes(t, c4); string(got) != string(want) {
		t.Fatalf("daemon-restart resume changed final counts:\nwant %s\ngot  %s", want, got)
	}
}

// TestAdaptiveStopBeatsFixedBaseline pins the point of the adaptive
// engine: the campaign reaches the target width on every class with
// fewer total trials than the fixed-count baseline sized for the same
// guarantee.
func TestAdaptiveStopBeatsFixedBaseline(t *testing.T) {
	s := testServer(t)
	c, err := s.Create(Request{
		Code: "NW", Device: "kepler",
		TargetWidth: 0.2, Seed: 5, Workers: 8, Batch: 8, MinTrials: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, c)
	if st.Trials >= st.BaselineTrials {
		t.Fatalf("adaptive campaign used %d trials, fixed baseline is %d", st.Trials, st.BaselineTrials)
	}
	for _, cs := range st.Classes {
		if cs.CapHit {
			t.Fatalf("class %s hit the trial cap before reaching width %g", cs.Class, c.req.TargetWidth)
		}
		if cs.SDCWidth > c.req.TargetWidth || cs.DUEWidth > c.req.TargetWidth {
			t.Fatalf("class %s stopped with widths %.3f/%.3f above target %g",
				cs.Class, cs.SDCWidth, cs.DUEWidth, c.req.TargetWidth)
		}
	}
}
