package sim

import (
	"math"
	"testing"

	"gpurel/internal/asm"
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// gid emits the global-thread-id computation into a fresh register.
func gid(b *asm.Builder) isa.Reg {
	tid := b.R()
	cta := b.R()
	ntid := b.R()
	g := b.R()
	b.S2R(tid, isa.SrTidX)
	b.S2R(cta, isa.SrCtaidX)
	b.S2R(ntid, isa.SrNtidX)
	b.IMad(g, isa.R(cta), isa.R(ntid), isa.R(tid))
	return g
}

// elemAddr emits address = base + g*scale into a fresh register.
func elemAddr(b *asm.Builder, g isa.Reg, base uint32, scale int32) isa.Reg {
	a := b.R()
	b.IMad(a, isa.R(g), isa.ImmInt(scale), isa.ImmInt(int32(base)))
	return a
}

// buildVecAdd builds out[i] = a[i] + b[i] over n float32 elements.
func buildVecAdd(t *testing.T, aBase, bBase, outBase uint32) *isa.Program {
	t.Helper()
	b := asm.New("vecadd", asm.O1)
	g := gid(b)
	aAddr := elemAddr(b, g, aBase, 4)
	bAddr := elemAddr(b, g, bBase, 4)
	oAddr := elemAddr(b, g, outBase, 4)
	av, bv, ov := b.R(), b.R(), b.R()
	b.Ldg(av, aAddr, 0)
	b.Ldg(bv, bAddr, 0)
	b.FAdd(ov, isa.R(av), isa.R(bv))
	b.Stg(oAddr, 0, ov)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVecAddMultiBlock(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	const n = 256
	aBase, _ := g.Alloc(n * 4)
	bBase, _ := g.Alloc(n * 4)
	oBase, _ := g.Alloc(n * 4)
	for i := 0; i < n; i++ {
		g.SetWord(aBase+uint32(i*4), math.Float32bits(float32(i)))
		g.SetWord(bBase+uint32(i*4), math.Float32bits(float32(2*i)))
	}
	prog := buildVecAdd(t, aBase, bBase, oBase)
	res, err := Run(Config{
		Device: device.K40c(), Program: prog,
		GridX: 4, GridY: 1, BlockThreads: 64,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeOK {
		t.Fatalf("run failed: %s", res.DUEReason)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(g.Word(oBase + uint32(i*4)))
		if got != float32(3*i) {
			t.Fatalf("out[%d] = %g, want %g", i, got, float32(3*i))
		}
	}
}

func TestDivergentIfElse(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	const n = 64
	oBase, _ := g.Alloc(n * 4)

	b := asm.New("diverge", asm.O1)
	gr := gid(b)
	p := b.P()
	out := b.R()
	b.ISetp(p, isa.CmpLT, isa.R(gr), isa.ImmInt(n/2)) // lower half vs upper
	b.IfElse(p, false,
		func() { b.MovImm(out, 111) },
		func() { b.MovImm(out, 222) })
	oAddr := elemAddr(b, gr, oBase, 4)
	b.Stg(oAddr, 0, out)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: n}, g)
	if err != nil || res.Outcome != OutcomeOK {
		t.Fatalf("run: %v %v", err, res)
	}
	for i := 0; i < n; i++ {
		want := uint32(111)
		if i >= n/2 {
			want = 222
		}
		if got := g.Word(oBase + uint32(i*4)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestIntraWarpDivergence(t *testing.T) {
	// Odd/even lanes diverge inside a single warp.
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(32 * 4)
	b := asm.New("intra", asm.O1)
	gr := gid(b)
	par := b.R()
	b.And(par, isa.R(gr), isa.ImmInt(1))
	p := b.P()
	b.ISetp(p, isa.CmpEQ, isa.R(par), isa.ImmInt(0))
	out := b.R()
	b.IfElse(p, false,
		func() {
			b.MovImm(out, 5)
			b.IAdd(out, isa.R(out), isa.ImmInt(5)) // even: 10
		},
		func() { b.MovImm(out, 7) }) // odd: 7
	oAddr := elemAddr(b, gr, oBase, 4)
	b.Stg(oAddr, 0, out)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	for i := 0; i < 32; i++ {
		want := uint32(10)
		if i%2 == 1 {
			want = 7
		}
		if got := g.Word(oBase + uint32(i*4)); got != want {
			t.Fatalf("lane %d = %d, want %d", i, got, want)
		}
	}
}

func TestNestedDivergence(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(32 * 4)
	b := asm.New("nested", asm.O1)
	gr := gid(b)
	out := b.R()
	b.MovImm(out, 0)
	p1 := b.P()
	b.ISetp(p1, isa.CmpLT, isa.R(gr), isa.ImmInt(16))
	b.If(p1, false, func() {
		p2 := b.P()
		b.ISetp(p2, isa.CmpLT, isa.R(gr), isa.ImmInt(8))
		b.IfElse(p2, false,
			func() { b.MovImm(out, 1) },
			func() { b.MovImm(out, 2) })
		b.ReleaseP(p2)
	})
	oAddr := elemAddr(b, gr, oBase, 4)
	b.Stg(oAddr, 0, out)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	for i := 0; i < 32; i++ {
		var want uint32
		switch {
		case i < 8:
			want = 1
		case i < 16:
			want = 2
		}
		if got := g.Word(oBase + uint32(i*4)); got != want {
			t.Fatalf("lane %d = %d, want %d", i, got, want)
		}
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Each lane iterates gid+1 times: divergent backward branch.
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(64 * 4)
	b := asm.New("divloop", asm.O1)
	gr := gid(b)
	acc := b.R()
	i := b.R()
	bound := b.R()
	b.MovImm(acc, 0)
	b.MovImm(i, 0)
	b.IAdd(bound, isa.R(gr), isa.ImmInt(1))
	b.Label("loop")
	b.IAdd(acc, isa.R(acc), isa.ImmInt(3))
	b.IAdd(i, isa.R(i), isa.ImmInt(1))
	p := b.P()
	b.ISetp(p, isa.CmpLT, isa.R(i), isa.R(bound))
	b.BraIf(p, false, "loop")
	oAddr := elemAddr(b, gr, oBase, 4)
	b.Stg(oAddr, 0, acc)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 2, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	for i := 0; i < 64; i++ {
		if got := g.Word(oBase + uint32(i*4)); got != uint32(3*(i+1)) {
			t.Fatalf("lane %d = %d, want %d", i, got, 3*(i+1))
		}
	}
}

func TestBarrierSharedReduction(t *testing.T) {
	// Block-wide tree reduction in shared memory.
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(4 * 4) // one word per block
	const threads = 64
	b := asm.New("reduce", asm.O1)
	sBase := b.AllocShared(threads * 4)
	tid := b.R()
	b.S2R(tid, isa.SrTidX)
	sAddr := b.R()
	b.IMad(sAddr, isa.R(tid), isa.ImmInt(4), isa.ImmInt(int32(sBase)))
	one := b.R()
	b.IAdd(one, isa.R(tid), isa.ImmInt(1)) // value = tid+1
	b.Sts(sAddr, 0, one)
	b.Bar()
	// Tree reduction: stride from threads/2 down to 1.
	for stride := int32(threads / 2); stride >= 1; stride /= 2 {
		p := b.P()
		b.ISetp(p, isa.CmpLT, isa.R(tid), isa.ImmInt(stride))
		b.Guarded(p, false, func() {
			peer := b.R()
			pv := b.R()
			mine := b.R()
			b.IMad(peer, isa.R(tid), isa.ImmInt(4), isa.ImmInt(int32(sBase)+stride*4))
			b.Lds(pv, peer, 0)
			b.Lds(mine, sAddr, 0)
			b.IAdd(mine, isa.R(mine), isa.R(pv))
			b.Sts(sAddr, 0, mine)
		})
		b.ReleaseP(p)
		b.Bar()
	}
	p := b.P()
	b.ISetp(p, isa.CmpEQ, isa.R(tid), isa.ImmInt(0))
	b.Guarded(p, false, func() {
		cta := b.R()
		res := b.R()
		oAddr := b.R()
		b.S2R(cta, isa.SrCtaidX)
		b.Lds(res, sAddr, 0)
		b.IMad(oAddr, isa.R(cta), isa.ImmInt(4), isa.ImmInt(int32(oBase)))
		b.Stg(oAddr, 0, res)
	})
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.V100(), Program: prog, GridX: 4, GridY: 1, BlockThreads: threads}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	want := uint32(threads * (threads + 1) / 2)
	for blk := 0; blk < 4; blk++ {
		if got := g.Word(oBase + uint32(blk*4)); got != want {
			t.Fatalf("block %d sum = %d, want %d", blk, got, want)
		}
	}
}

func TestPartialWarp(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(40 * 4)
	b := asm.New("partial", asm.O1)
	gr := gid(b)
	oAddr := elemAddr(b, gr, oBase, 4)
	b.Stg(oAddr, 0, gr)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 40}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	for i := 0; i < 40; i++ {
		if got := g.Word(oBase + uint32(i*4)); got != uint32(i) {
			t.Fatalf("out[%d] = %d", i, got)
		}
	}
}

func TestFP64Arithmetic(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(32 * 8)
	b := asm.New("f64", asm.O1)
	gr := gid(b)
	x := b.RPair()
	y := b.RPair()
	z := b.RPair()
	xf := b.R()
	b.I2F(xf, gr)
	b.F2F(x, xf, isa.F32, isa.F64) // x = float64(gid)
	b.MovImmF64(y, 1.5)
	b.DFma(z, x, y, y) // z = 1.5*gid + 1.5
	oAddr := elemAddr(b, gr, oBase, 8)
	b.StgWide(oAddr, 0, z)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.V100(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	for i := 0; i < 32; i++ {
		lo := g.Word(oBase + uint32(i*8))
		hi := g.Word(oBase + uint32(i*8+4))
		got := math.Float64frombits(uint64(lo) | uint64(hi)<<32)
		want := 1.5*float64(i) + 1.5
		if got != want {
			t.Fatalf("out[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestFP16Arithmetic(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(32 * 4)
	b := asm.New("f16", asm.O1)
	gr := gid(b)
	h := b.R()
	one := b.R()
	xf := b.R()
	b.I2F(xf, gr)
	b.F2F(h, xf, isa.F32, isa.F16)
	b.MovImmF16(one, 1)
	b.HFma(h, isa.R(h), isa.R(one), isa.R(one)) // h = gid*1 + 1
	out := b.R()
	b.F2F(out, h, isa.F16, isa.F32)
	oAddr := elemAddr(b, gr, oBase, 4)
	b.Stg(oAddr, 0, out)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.V100(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	for i := 0; i < 32; i++ {
		got := math.Float32frombits(g.Word(oBase + uint32(i*4)))
		if got != float32(i+1) {
			t.Fatalf("out[%d] = %g, want %d", i, got, i+1)
		}
	}
}

func TestAtomicRED(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(8)
	b := asm.New("atomic", asm.O1)
	one := b.R()
	addr := b.R()
	b.MovImm(one, 1)
	b.MovImm(addr, oBase)
	b.RedAdd(addr, 0, one)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 3, GridY: 1, BlockThreads: 64}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	if got := g.Word(oBase); got != 192 {
		t.Fatalf("atomic sum = %d, want 192", got)
	}
}

func TestWatchdogHangIsDUE(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	b := asm.New("hang", asm.O1)
	b.Label("forever")
	b.Nop()
	b.Bra("forever")
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32, MaxCycles: 10000}, g)
	if res.Outcome != OutcomeDUE {
		t.Fatal("infinite loop must be a DUE")
	}
}

func TestInvalidAccessIsDUE(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	b := asm.New("oob", asm.O1)
	addr := b.R()
	v := b.R()
	b.MovImm(addr, 0) // null
	b.Ldg(v, addr, 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeDUE {
		t.Fatal("null dereference must be a DUE")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (*Result, []uint32) {
		g := mem.NewGlobal(1 << 20)
		a, _ := g.Alloc(128 * 4)
		bb, _ := g.Alloc(128 * 4)
		o, _ := g.Alloc(128 * 4)
		for i := 0; i < 128; i++ {
			g.SetWord(a+uint32(i*4), math.Float32bits(float32(i)*0.5))
			g.SetWord(bb+uint32(i*4), math.Float32bits(float32(i)*0.25))
		}
		prog := buildVecAdd(t, a, bb, o)
		res, err := Run(Config{Device: device.V100(), Program: prog, GridX: 2, GridY: 1, BlockThreads: 64}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res, g.ReadWords(o, 128)
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1.Profile.Cycles != r2.Profile.Cycles || r1.Profile.WarpInstrs != r2.Profile.WarpInstrs {
		t.Fatal("timing not deterministic")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("output not deterministic")
		}
	}
}

func TestProfileMetrics(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	a, _ := g.Alloc(256 * 4)
	bb, _ := g.Alloc(256 * 4)
	o, _ := g.Alloc(256 * 4)
	prog := buildVecAdd(t, a, bb, o)
	dev := device.K40c()
	res, err := Run(Config{Device: dev, Program: prog, GridX: 4, GridY: 1, BlockThreads: 64}, g)
	if err != nil {
		t.Fatal(err)
	}
	p := &res.Profile
	if p.Cycles <= 0 || p.WarpInstrs == 0 || p.LaneOps == 0 {
		t.Fatalf("empty profile: %+v", p)
	}
	if got := p.PerOpLane[isa.OpFADD]; got != 256 {
		t.Fatalf("FADD lane ops = %d, want 256", got)
	}
	if got := p.PerOpLane[isa.OpLDG]; got != 512 {
		t.Fatalf("LDG lane ops = %d, want 512", got)
	}
	if got := p.PerOpLane[isa.OpSTG]; got != 256 {
		t.Fatalf("STG lane ops = %d, want 256", got)
	}
	occ := p.AchievedOccupancy(dev)
	if occ <= 0 || occ > 1 {
		t.Fatalf("achieved occupancy = %g", occ)
	}
	if ipc := p.IPC(); ipc <= 0 || ipc > float64(dev.SchedulersPerSM*dev.IssuePerScheduler) {
		t.Fatalf("IPC = %g out of range", ipc)
	}
	if p.SMsUsed != 4 {
		t.Fatalf("SMs used = %d, want 4 (one per block)", p.SMsUsed)
	}
}

func TestMoreParallelWorkRaisesOccupancy(t *testing.T) {
	run := func(blocks int) float64 {
		g := mem.NewGlobal(1 << 22)
		n := blocks * 64
		a, _ := g.Alloc(n * 4)
		bb, _ := g.Alloc(n * 4)
		o, _ := g.Alloc(n * 4)
		prog := buildVecAdd(t, a, bb, o)
		dev := device.K40c()
		res, err := Run(Config{Device: dev, Program: prog, GridX: blocks, GridY: 1, BlockThreads: 64}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile.AchievedOccupancy(dev)
	}
	small, big := run(1), run(120)
	if big <= small {
		t.Fatalf("occupancy should grow with grid size: %g vs %g", small, big)
	}
}

func TestMMAMatchesSoftware(t *testing.T) {
	// One warp loads A, B (f16) and C (f32) fragments from global memory,
	// performs HMMA, and stores D. Compare against a software reference.
	g := mem.NewGlobal(1 << 20)
	aBase, _ := g.Alloc(256 * 2) // 256 halves
	bBase, _ := g.Alloc(256 * 2)
	cBase, _ := g.Alloc(256 * 4)
	dBase, _ := g.Alloc(256 * 4)

	var aM, bM [16][16]float32
	var cM [16][16]float32
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			aM[i][j] = float32(i+j%5) * 0.25
			bM[i][j] = float32(i%3) * 0.5
			cM[i][j] = float32(j) * 0.125
		}
	}
	// Pack halves two per word using the fragment layout.
	for flat := 0; flat < 256; flat += 2 {
		i0, j0 := flat/16, flat%16
		i1, j1 := (flat+1)/16, (flat+1)%16
		pack := func(x, y float32) uint32 {
			return uint32(isa.F32ToF16(x)) | uint32(isa.F32ToF16(y))<<16
		}
		g.SetWord(aBase+uint32(flat*2), pack(aM[i0][j0], aM[i1][j1]))
		g.SetWord(bBase+uint32(flat*2), pack(bM[i0][j0], bM[i1][j1]))
	}
	for flat := 0; flat < 256; flat++ {
		g.SetWord(cBase+uint32(flat*4), math.Float32bits(cM[flat/16][flat%16]))
	}

	b := asm.New("mma", asm.O1)
	lane := b.R()
	b.S2R(lane, isa.SrLaneID)
	aF := b.RVec(4, 4)
	bF := b.RVec(4, 4)
	cF := b.RVec(8, 8)
	dF := b.RVec(8, 8)
	// Each lane owns 8 consecutive flat elements: halves at
	// aBase + lane*16 bytes, floats at cBase + lane*32 bytes.
	hAddr := b.R()
	b.IMad(hAddr, isa.R(lane), isa.ImmInt(16), isa.ImmInt(int32(aBase)))
	for r := 0; r < 4; r++ {
		b.Ldg(aF+isa.Reg(r), hAddr, uint32(r*4))
	}
	b.IMad(hAddr, isa.R(lane), isa.ImmInt(16), isa.ImmInt(int32(bBase)))
	for r := 0; r < 4; r++ {
		b.Ldg(bF+isa.Reg(r), hAddr, uint32(r*4))
	}
	fAddr := b.R()
	b.IMad(fAddr, isa.R(lane), isa.ImmInt(32), isa.ImmInt(int32(cBase)))
	for r := 0; r < 8; r++ {
		b.Ldg(cF+isa.Reg(r), fAddr, uint32(r*4))
	}
	b.HMMA(dF, aF, bF, cF)
	b.IMad(fAddr, isa.R(lane), isa.ImmInt(32), isa.ImmInt(int32(dBase)))
	for r := 0; r < 8; r++ {
		b.Stg(fAddr, uint32(r*4), dF+isa.Reg(r))
	}
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(Config{Device: device.V100(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g)
	if res.Outcome != OutcomeOK {
		t.Fatalf("DUE: %s", res.DUEReason)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			want := cM[i][j]
			for k := 0; k < 16; k++ {
				a16 := isa.F16ToF32(isa.F32ToF16(aM[i][k]))
				b16 := isa.F16ToF32(isa.F32ToF16(bM[k][j]))
				want += a16 * b16
			}
			got := math.Float32frombits(g.Word(dBase + uint32((i*16+j)*4)))
			if math.Abs(float64(got-want)) > 1e-3*math.Abs(float64(want))+1e-4 {
				t.Fatalf("D[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	if res.Profile.PerOpLane[isa.OpHMMA] != 32 {
		t.Fatalf("HMMA lane ops = %d, want 32", res.Profile.PerOpLane[isa.OpHMMA])
	}
}

func TestFaultValueBitCorruptsOutput(t *testing.T) {
	golden := func(fault *FaultPlan) (Outcome, []uint32) {
		g := mem.NewGlobal(1 << 20)
		a, _ := g.Alloc(64 * 4)
		bb, _ := g.Alloc(64 * 4)
		o, _ := g.Alloc(64 * 4)
		for i := 0; i < 64; i++ {
			g.SetWord(a+uint32(i*4), math.Float32bits(1))
			g.SetWord(bb+uint32(i*4), math.Float32bits(2))
		}
		prog := buildVecAdd(t, a, bb, o)
		res, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 64, Fault: fault}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res.Outcome, g.ReadWords(o, 64)
	}
	_, ref := golden(nil)
	fp := &FaultPlan{
		Kind:         FaultValueBit,
		Filter:       func(op isa.Op) bool { return op == isa.OpFADD },
		TriggerIndex: 10,
		Bit:          30, // exponent bit: guaranteed visible
	}
	out, faulty := golden(fp)
	if !fp.Fired {
		t.Fatal("fault plan did not fire")
	}
	if out != OutcomeOK {
		t.Fatal("value fault should not crash this kernel")
	}
	diff := 0
	for i := range ref {
		if ref[i] != faulty[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("exactly one output should differ, got %d", diff)
	}
}

func TestFaultBeyondStreamIsMasked(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	a, _ := g.Alloc(64 * 4)
	bb, _ := g.Alloc(64 * 4)
	o, _ := g.Alloc(64 * 4)
	prog := buildVecAdd(t, a, bb, o)
	fp := &FaultPlan{Kind: FaultValueBit, TriggerIndex: 1 << 40, Bit: 3}
	res, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 64, Fault: fp}, g)
	if err != nil || res.Outcome != OutcomeOK {
		t.Fatalf("%v %v", err, res)
	}
	if fp.Fired {
		t.Fatal("plan beyond the dynamic stream must not fire")
	}
}

func TestFaultAddrBitHighBitIsDUE(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	a, _ := g.Alloc(64 * 4)
	bb, _ := g.Alloc(64 * 4)
	o, _ := g.Alloc(64 * 4)
	prog := buildVecAdd(t, a, bb, o)
	fp := &FaultPlan{
		Kind:         FaultAddrBit,
		Filter:       func(op isa.Op) bool { return op == isa.OpLDG },
		TriggerIndex: 5,
		Bit:          28, // far beyond the allocation
	}
	res, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 64, Fault: fp}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeDUE {
		t.Fatal("high address-bit corruption must fault")
	}
}

func TestFaultSkipChangesOutput(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	a, _ := g.Alloc(64 * 4)
	bb, _ := g.Alloc(64 * 4)
	o, _ := g.Alloc(64 * 4)
	for i := 0; i < 64; i++ {
		g.SetWord(a+uint32(i*4), math.Float32bits(5))
		g.SetWord(bb+uint32(i*4), math.Float32bits(6))
	}
	prog := buildVecAdd(t, a, bb, o)
	fp := &FaultPlan{
		Kind:         FaultSkip,
		Filter:       func(op isa.Op) bool { return op == isa.OpSTG },
		TriggerIndex: 0,
	}
	res, _ := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 64, Fault: fp}, g)
	if res.Outcome != OutcomeOK || !fp.Fired {
		t.Fatalf("skip fault: %+v fired=%v", res, fp.Fired)
	}
	// The first warp's STG was suppressed: 32 outputs missing.
	missing := 0
	for i := 0; i < 64; i++ {
		if g.Word(o+uint32(i*4)) == 0 {
			missing++
		}
	}
	if missing != 32 {
		t.Fatalf("%d outputs missing, want 32 (one suppressed warp store)", missing)
	}
}

func TestFaultRFBit(t *testing.T) {
	g := mem.NewGlobal(1 << 20)
	a, _ := g.Alloc(64 * 4)
	bb, _ := g.Alloc(64 * 4)
	o, _ := g.Alloc(64 * 4)
	prog := buildVecAdd(t, a, bb, o)
	fp := &FaultPlan{
		Kind:         FaultRFBit,
		TriggerIndex: 0, // as early as possible
		Block:        0,
		Thread:       3,
		Reg:          0,
		Bit:          31,
	}
	res, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 64, Fault: fp}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Fired {
		t.Fatal("RF fault should fire while the block is resident")
	}
	_ = res
}

func TestPredFault(t *testing.T) {
	// Flipping the SETP result of one lane sends it down the wrong path.
	g := mem.NewGlobal(1 << 20)
	oBase, _ := g.Alloc(32 * 4)
	build := func() *isa.Program {
		b := asm.New("pred", asm.O1)
		gr := gid(b)
		p := b.P()
		out := b.R()
		b.ISetp(p, isa.CmpLT, isa.R(gr), isa.ImmInt(16))
		b.Sel(out, p, isa.ImmInt(1), isa.ImmInt(2))
		oAddr := elemAddr(b, gr, oBase, 4)
		b.Stg(oAddr, 0, out)
		b.Exit()
		pr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	fp := &FaultPlan{
		Kind:         FaultPredBit,
		Filter:       func(op isa.Op) bool { return op == isa.OpISETP },
		TriggerIndex: 7,
	}
	res, _ := Run(Config{Device: device.K40c(), Program: build(), GridX: 1, GridY: 1, BlockThreads: 32, Fault: fp}, g)
	if res.Outcome != OutcomeOK || !fp.Fired {
		t.Fatalf("pred fault: %+v fired=%v", res, fp.Fired)
	}
	if got := g.Word(oBase + 7*4); got != 2 {
		t.Fatalf("lane 7 should have taken the wrong path, got %d", got)
	}
	if got := g.Word(oBase + 6*4); got != 1 {
		t.Fatalf("lane 6 should be unaffected, got %d", got)
	}
}

func TestLaunchValidation(t *testing.T) {
	g := mem.NewGlobal(1 << 16)
	prog := buildVecAdd(t, 256, 512, 768)
	if _, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 0, GridY: 1, BlockThreads: 32}, g); err == nil {
		t.Error("zero grid must fail")
	}
	if _, err := Run(Config{Device: device.K40c(), Program: prog, GridX: 1, GridY: 1, BlockThreads: 2000}, g); err == nil {
		t.Error("oversized block must fail")
	}
	if _, err := Run(Config{Device: nil, Program: prog, GridX: 1, GridY: 1, BlockThreads: 32}, g); err == nil {
		t.Error("nil device must fail")
	}
}
