package sim

import "fmt"

// DUEMode is the typed taxonomy of detected-unrecoverable-error
// mechanisms the simulator can reach — the NSREC'21 decomposition
// (hangs, illegal memory accesses, synchronization faults) that PR 10
// promotes from the free-form DUEReason string to a first-class enum so
// campaigns can aggregate per-mode ledgers and the static analyzer has
// a ground truth to cross-validate against.
type DUEMode uint8

// The DUE modes. DUENone is the zero value of a trial that did not DUE
// (or of a record predating the taxonomy); it never counts in a ledger.
const (
	DUENone DUEMode = iota
	// DUEHang: the program stopped making forward progress — watchdog
	// timeout, scheduler deadlock, or an instruction fetch that ran
	// beyond the program (a corrupted trip count or branch target).
	DUEHang
	// DUEIllegalAddress: a memory operation's effective address left
	// the valid range of its backing allocation.
	DUEIllegalAddress
	// DUESyncError: the reconvergence or barrier machinery was
	// corrupted — SYNC without a divergent region, a barrier reached by
	// a divergent warp, divergence-stack overflow, or an MMA issued
	// from a divergent warp.
	DUESyncError
	// DUEUnattributed: a detected error none of the mechanism buckets
	// claims (unimplemented opcode, unsupported conversion, unhandled
	// control op).
	DUEUnattributed

	DUEModeCount
)

var dueModeNames = [...]string{
	DUENone:           "none",
	DUEHang:           "hang",
	DUEIllegalAddress: "illegal-address",
	DUESyncError:      "sync-error",
	DUEUnattributed:   "unattributed",
}

// String names the mode.
func (m DUEMode) String() string {
	if int(m) < len(dueModeNames) {
		return dueModeNames[m]
	}
	return fmt.Sprintf("duemode(%d)", uint8(m))
}

// ParseDUEMode is the inverse of String.
func ParseDUEMode(s string) (DUEMode, error) {
	for m, name := range dueModeNames {
		if s == name {
			return DUEMode(m), nil
		}
	}
	return DUENone, fmt.Errorf("sim: unknown DUE mode %q", s)
}

// MarshalText lets DUEMode serve as a JSON map key or value with the
// stable String spelling instead of a bare integer.
func (m DUEMode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText is the inverse of MarshalText.
func (m *DUEMode) UnmarshalText(b []byte) error {
	v, err := ParseDUEMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// DUEModes lists the countable modes in display order (DUENone
// excluded), for renderers that iterate the taxonomy.
func DUEModes() []DUEMode {
	return []DUEMode{DUEHang, DUEIllegalAddress, DUESyncError, DUEUnattributed}
}
