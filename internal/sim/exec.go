package sim

import (
	"fmt"
	"math"

	"gpurel/internal/isa"
)

// exec functionally executes one warp-instruction over the active lanes.
// faultLane >= 0 selects the lane whose result the armed fault corrupts.
func (e *engine) exec(w *warpState, d *decoded, active uint32, faultLane int) {
	in := d.in
	switch in.Op {
	case isa.OpHMMA, isa.OpFMMA:
		e.execMMA(w, d, active, faultLane)
		return
	case isa.OpLDG, isa.OpSTG, isa.OpLDS, isa.OpSTS, isa.OpRED:
		e.execMem(w, d, active, faultLane)
		return
	}
	base := w.widx * 32
	for lane := 0; lane < 32; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		t := base + lane
		regs := w.block.regs[t]
		faulted := lane == faultLane
		e.execLane(w, in, t, regs, faulted)
	}
}

// src reads a 32-bit source operand for a lane.
func src(regs []uint32, o isa.Operand) uint32 {
	if o.IsImm {
		return o.Imm
	}
	if o.Reg == isa.RZ {
		return 0
	}
	return regs[o.Reg]
}

func src64(regs []uint32, o isa.Operand) uint64 {
	if o.IsImm {
		return uint64(o.Imm)
	}
	if o.Reg == isa.RZ {
		return 0
	}
	return uint64(regs[o.Reg]) | uint64(regs[o.Reg+1])<<32
}

func f32src(regs []uint32, o isa.Operand, neg bool) float32 {
	v := math.Float32frombits(src(regs, o))
	if neg {
		return -v
	}
	return v
}

func f64src(regs []uint32, o isa.Operand, neg bool) float64 {
	v := math.Float64frombits(src64(regs, o))
	if neg {
		return -v
	}
	return v
}

func h16src(regs []uint32, o isa.Operand, neg bool) float32 {
	v := isa.F16ToF32(isa.Float16(src(regs, o) & 0xffff))
	if neg {
		return -v
	}
	return v
}

// writeReg writes a 32-bit destination, applying a value-bit or
// register-index fault when this lane is the fault target.
func (e *engine) writeReg(regs []uint32, dst isa.Reg, v uint32, faulted bool) {
	if faulted && e.fault != nil {
		switch e.fault.Kind {
		case FaultValueBit:
			v ^= 1 << (e.fault.Bit & 31)
			e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&31, 32
		case FaultRegIndex:
			// The result lands in a corrupted destination register.
			alt := (int(dst) ^ (1 << (e.fault.Bit % 5))) % len(regs)
			if isa.Reg(alt) != isa.RZ {
				regs[alt] = v
			}
			return
		}
	}
	if dst != isa.RZ {
		regs[dst] = v
	}
}

func (e *engine) writeReg64(regs []uint32, dst isa.Reg, v uint64, faulted bool) {
	if faulted && e.fault != nil && e.fault.Kind == FaultValueBit {
		v ^= 1 << (e.fault.Bit & 63)
		e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&63, 64
	}
	regs[dst] = uint32(v)
	regs[dst+1] = uint32(v >> 32)
}

// execLane executes one generic (non-memory, non-MMA) op for one lane.
func (e *engine) execLane(w *warpState, in *isa.Instr, t int, regs []uint32, faulted bool) {
	preds := &w.block.preds[t]
	switch in.Op {
	case isa.OpNOP:

	case isa.OpMOV, isa.OpMOV32I:
		e.writeReg(regs, in.Dst, src(regs, in.Srcs[0]), faulted)

	case isa.OpSEL:
		v := src(regs, in.Srcs[1])
		if preds[in.DstP] {
			v = src(regs, in.Srcs[0])
		}
		e.writeReg(regs, in.Dst, v, faulted)

	case isa.OpS2R:
		e.writeReg(regs, in.Dst, e.special(w, t, in.SReg), faulted)

	case isa.OpFADD:
		v := f32src(regs, in.Srcs[0], in.Neg[0]) + f32src(regs, in.Srcs[1], in.Neg[1])
		e.writeReg(regs, in.Dst, math.Float32bits(v), faulted)
	case isa.OpFMUL:
		v := f32src(regs, in.Srcs[0], in.Neg[0]) * f32src(regs, in.Srcs[1], in.Neg[1])
		e.writeReg(regs, in.Dst, math.Float32bits(v), faulted)
	case isa.OpFFMA:
		v := float32(math.FMA(
			float64(f32src(regs, in.Srcs[0], in.Neg[0])),
			float64(f32src(regs, in.Srcs[1], in.Neg[1])),
			float64(f32src(regs, in.Srcs[2], in.Neg[2]))))
		e.writeReg(regs, in.Dst, math.Float32bits(v), faulted)

	case isa.OpDADD:
		v := f64src(regs, in.Srcs[0], in.Neg[0]) + f64src(regs, in.Srcs[1], in.Neg[1])
		e.writeReg64(regs, in.Dst, math.Float64bits(v), faulted)
	case isa.OpDMUL:
		v := f64src(regs, in.Srcs[0], in.Neg[0]) * f64src(regs, in.Srcs[1], in.Neg[1])
		e.writeReg64(regs, in.Dst, math.Float64bits(v), faulted)
	case isa.OpDFMA:
		v := math.FMA(
			f64src(regs, in.Srcs[0], in.Neg[0]),
			f64src(regs, in.Srcs[1], in.Neg[1]),
			f64src(regs, in.Srcs[2], in.Neg[2]))
		e.writeReg64(regs, in.Dst, math.Float64bits(v), faulted)

	case isa.OpHADD:
		v := h16src(regs, in.Srcs[0], in.Neg[0]) + h16src(regs, in.Srcs[1], in.Neg[1])
		e.writeReg(regs, in.Dst, uint32(isa.F32ToF16(v)), faulted)
	case isa.OpHMUL:
		v := h16src(regs, in.Srcs[0], in.Neg[0]) * h16src(regs, in.Srcs[1], in.Neg[1])
		e.writeReg(regs, in.Dst, uint32(isa.F32ToF16(v)), faulted)
	case isa.OpHFMA:
		v := float32(math.FMA(
			float64(h16src(regs, in.Srcs[0], in.Neg[0])),
			float64(h16src(regs, in.Srcs[1], in.Neg[1])),
			float64(h16src(regs, in.Srcs[2], in.Neg[2]))))
		e.writeReg(regs, in.Dst, uint32(isa.F32ToF16(v)), faulted)

	case isa.OpIADD:
		v := isrc(regs, in.Srcs[0], in.Neg[0]) + isrc(regs, in.Srcs[1], in.Neg[1])
		e.writeReg(regs, in.Dst, uint32(v), faulted)
	case isa.OpIMUL:
		v := isrc(regs, in.Srcs[0], in.Neg[0]) * isrc(regs, in.Srcs[1], in.Neg[1])
		e.writeReg(regs, in.Dst, uint32(v), faulted)
	case isa.OpIMAD:
		v := isrc(regs, in.Srcs[0], in.Neg[0])*isrc(regs, in.Srcs[1], in.Neg[1]) +
			isrc(regs, in.Srcs[2], in.Neg[2])
		e.writeReg(regs, in.Dst, uint32(v), faulted)
	case isa.OpIMNMX:
		a, b := isrc(regs, in.Srcs[0], false), isrc(regs, in.Srcs[1], false)
		v := a
		if (in.Cmp == isa.CmpLT) == (b < a) {
			v = b
		}
		e.writeReg(regs, in.Dst, uint32(v), faulted)
	case isa.OpLOP:
		a, b := src(regs, in.Srcs[0]), src(regs, in.Srcs[1])
		var v uint32
		switch in.Logic {
		case isa.LopAND:
			v = a & b
		case isa.LopOR:
			v = a | b
		case isa.LopXOR:
			v = a ^ b
		}
		e.writeReg(regs, in.Dst, v, faulted)
	case isa.OpSHF:
		a, b := src(regs, in.Srcs[0]), src(regs, in.Srcs[1])&31
		var v uint32
		if in.Shift == isa.ShiftL {
			v = a << b
		} else {
			v = a >> b
		}
		e.writeReg(regs, in.Dst, v, faulted)

	case isa.OpISETP:
		a, b := isrc(regs, in.Srcs[0], false), isrc(regs, in.Srcs[1], false)
		e.writePred(preds, in, compareI(in.Cmp, a, b), faulted)
	case isa.OpFSETP:
		e.writePred(preds, in, compareF(in.Cmp,
			float64(f32src(regs, in.Srcs[0], false)), float64(f32src(regs, in.Srcs[1], false))), faulted)
	case isa.OpDSETP:
		e.writePred(preds, in, compareF(in.Cmp,
			f64src(regs, in.Srcs[0], false), f64src(regs, in.Srcs[1], false)), faulted)
	case isa.OpHSETP:
		e.writePred(preds, in, compareF(in.Cmp,
			float64(h16src(regs, in.Srcs[0], false)), float64(h16src(regs, in.Srcs[1], false))), faulted)

	case isa.OpF2F:
		e.convertF2F(regs, in, faulted)
	case isa.OpF2I:
		f := f32src(regs, in.Srcs[0], false)
		e.writeReg(regs, in.Dst, uint32(clampI32(f)), faulted)
	case isa.OpI2F:
		v := float32(isrc(regs, in.Srcs[0], false))
		e.writeReg(regs, in.Dst, math.Float32bits(v), faulted)

	case isa.OpMUFU:
		x := float64(f32src(regs, in.Srcs[0], false))
		var v float64
		switch in.Mufu {
		case isa.MufuRCP:
			v = 1 / x
		case isa.MufuSQRT:
			v = math.Sqrt(x)
		case isa.MufuRSQ:
			v = 1 / math.Sqrt(x)
		case isa.MufuEX2:
			v = math.Exp2(x)
		case isa.MufuLG2:
			v = math.Log2(x)
		case isa.MufuSIN:
			v = math.Sin(x)
		case isa.MufuCOS:
			v = math.Cos(x)
		}
		e.writeReg(regs, in.Dst, math.Float32bits(float32(v)), faulted)

	default:
		e.due = fmt.Sprintf("unimplemented opcode %s", in.Op)
	}
}

// writePred writes a SETP result, modeling predicate-register faults.
func (e *engine) writePred(preds *[8]bool, in *isa.Instr, v bool, faulted bool) {
	if faulted && e.fault != nil && e.fault.Kind == FaultPredBit {
		v = !v
	}
	if in.DstP != isa.PT {
		preds[in.DstP] = v
	}
}

func isrc(regs []uint32, o isa.Operand, neg bool) int32 {
	v := int32(src(regs, o))
	if neg {
		return -v
	}
	return v
}

func compareI(c isa.CmpOp, a, b int32) bool {
	switch c {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpGE:
		return a >= b
	default:
		return a > b
	}
}

func compareF(c isa.CmpOp, a, b float64) bool {
	switch c {
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpGE:
		return a >= b
	default:
		return a > b
	}
}

func clampI32(f float32) int32 {
	switch {
	case f != f: // NaN
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(f)
	}
}

func (e *engine) convertF2F(regs []uint32, in *isa.Instr, faulted bool) {
	switch {
	case in.CvtFrom == isa.F32 && in.CvtTo == isa.F64:
		v := float64(f32src(regs, in.Srcs[0], false))
		e.writeReg64(regs, in.Dst, math.Float64bits(v), faulted)
	case in.CvtFrom == isa.F64 && in.CvtTo == isa.F32:
		v := float32(f64src(regs, in.Srcs[0], false))
		e.writeReg(regs, in.Dst, math.Float32bits(v), faulted)
	case in.CvtFrom == isa.F32 && in.CvtTo == isa.F16:
		e.writeReg(regs, in.Dst, uint32(isa.F32ToF16(f32src(regs, in.Srcs[0], false))), faulted)
	case in.CvtFrom == isa.F16 && in.CvtTo == isa.F32:
		e.writeReg(regs, in.Dst, math.Float32bits(h16src(regs, in.Srcs[0], false)), faulted)
	case in.CvtFrom == isa.F64 && in.CvtTo == isa.F16:
		e.writeReg(regs, in.Dst, uint32(isa.F32ToF16(float32(f64src(regs, in.Srcs[0], false)))), faulted)
	case in.CvtFrom == isa.F16 && in.CvtTo == isa.F64:
		e.writeReg64(regs, in.Dst, math.Float64bits(float64(h16src(regs, in.Srcs[0], false))), faulted)
	default:
		e.due = fmt.Sprintf("unsupported F2F conversion %s->%s", in.CvtFrom, in.CvtTo)
	}
}

func (e *engine) special(w *warpState, t int, sr isa.SpecialReg) uint32 {
	blk := w.block
	switch sr {
	case isa.SrTidX:
		return uint32(t)
	case isa.SrTidY:
		return 0
	case isa.SrCtaidX:
		return uint32(blk.ctaX)
	case isa.SrCtaidY:
		return uint32(blk.ctaY)
	case isa.SrNtidX:
		return uint32(blk.threads)
	case isa.SrNtidY:
		return 1
	case isa.SrNctaidX:
		return uint32(e.cfg.GridX)
	case isa.SrNctaidY:
		return uint32(e.cfg.GridY)
	case isa.SrLaneID:
		return uint32(t % 32)
	case isa.SrWarpID:
		return uint32(w.widx)
	default:
		return 0
	}
}

// execMem executes a memory warp-instruction. Address faults and invalid
// accesses surface here.
func (e *engine) execMem(w *warpState, d *decoded, active uint32, faultLane int) {
	in := d.in
	base := w.widx * 32
	for lane := 0; lane < 32; lane++ {
		if active&(1<<lane) == 0 {
			continue
		}
		t := base + lane
		regs := w.block.regs[t]
		addr := src(regs, in.Srcs[0]) + in.Srcs[1].Imm
		faulted := lane == faultLane
		if faulted && e.fault.Kind == FaultAddrBit {
			// SASS addresses are 64-bit; the simulated arena lives in the
			// low 32. A flip in the high word always leaves the valid
			// range, like a strike pushing a pointer out of the VA space.
			if b := e.fault.Bit & 63; b >= 32 {
				addr |= 0x8000_0000
			} else {
				addr ^= 1 << b
			}
		}
		var err error
		switch in.Op {
		case isa.OpLDG:
			if in.Wide {
				var lo, hi uint32
				lo, hi, err = e.glob.Load64(addr)
				if err == nil {
					e.writeReg64(regs, in.Dst, uint64(lo)|uint64(hi)<<32, faulted)
				}
			} else {
				var v uint32
				v, err = e.glob.Load32(addr)
				if err == nil {
					e.writeReg(regs, in.Dst, v, faulted)
				}
			}
		case isa.OpSTG:
			v := in.Srcs[2].Reg
			sv := uint32(0)
			if v != isa.RZ {
				sv = regs[v]
			}
			if faulted && e.fault.Kind == FaultValueBit {
				sv ^= 1 << (e.fault.Bit & 31)
				e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&31, 32
			}
			if in.Wide {
				err = e.glob.Store64(addr, sv, regs[v+1])
			} else {
				err = e.glob.Store32(addr, sv)
			}
		case isa.OpLDS:
			if in.Wide {
				var lo, hi uint32
				lo, hi, err = w.block.shared.Load64(addr)
				if err == nil {
					e.writeReg64(regs, in.Dst, uint64(lo)|uint64(hi)<<32, faulted)
				}
			} else {
				var v uint32
				v, err = w.block.shared.Load32(addr)
				if err == nil {
					e.writeReg(regs, in.Dst, v, faulted)
				}
			}
		case isa.OpSTS:
			v := in.Srcs[2].Reg
			sv := uint32(0)
			if v != isa.RZ {
				sv = regs[v]
			}
			if faulted && e.fault.Kind == FaultValueBit {
				sv ^= 1 << (e.fault.Bit & 31)
				e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&31, 32
			}
			if in.Wide {
				err = w.block.shared.Store64(addr, sv, regs[v+1])
			} else {
				err = w.block.shared.Store32(addr, sv)
			}
		case isa.OpRED:
			v := in.Srcs[2].Reg
			sv := uint32(0)
			if v != isa.RZ {
				sv = regs[v]
			}
			_, err = e.glob.AtomicAdd32(addr, sv)
		}
		if err != nil {
			e.due = err.Error()
			return
		}
	}
}

// MMA fragment layout (16x16 tiles distributed over 32 lanes):
// element (i,j), flat = i*16+j:
//
//	A/B half fragments: lane = flat/8, slot = flat%8, register = base +
//	  slot/2, half = slot%2 (low/high 16 bits);
//	FP32 fragments (FMMA inputs and all accumulators): lane = flat/8,
//	  register = base + flat%8.
func (e *engine) execMMA(w *warpState, d *decoded, active uint32, faultLane int) {
	in := d.in
	if active != w.fullMask || w.fullMask != ^uint32(0) {
		e.due = "MMA issued by divergent or partial warp"
		return
	}
	base := w.widx * 32
	regAt := func(lane int, r isa.Reg) uint32 { return w.block.regs[base+lane][r] }

	var a, b [16][16]float32
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			flat := i*16 + j
			lane, slot := flat/8, flat%8
			if in.Op == isa.OpHMMA {
				av := regAt(lane, in.Srcs[0].Reg+isa.Reg(slot/2))
				bv := regAt(lane, in.Srcs[1].Reg+isa.Reg(slot/2))
				sh := uint32(slot%2) * 16
				a[i][j] = isa.F16ToF32(isa.Float16(av >> sh & 0xffff))
				b[i][j] = isa.F16ToF32(isa.Float16(bv >> sh & 0xffff))
			} else {
				// FMMA: FP32 fragments cast to FP16 on the tensor core.
				av := math.Float32frombits(regAt(lane, in.Srcs[0].Reg+isa.Reg(slot)))
				bv := math.Float32frombits(regAt(lane, in.Srcs[1].Reg+isa.Reg(slot)))
				a[i][j] = isa.F16ToF32(isa.F32ToF16(av))
				b[i][j] = isa.F16ToF32(isa.F32ToF16(bv))
			}
		}
	}
	// D = A*B + C with FP32 accumulation.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			flat := i*16 + j
			lane, slot := flat/8, flat%8
			acc := math.Float32frombits(regAt(lane, in.Srcs[2].Reg+isa.Reg(slot)))
			for k := 0; k < 16; k++ {
				acc += a[i][k] * b[k][j]
			}
			out := math.Float32bits(acc)
			if lane == faultLane && e.fault != nil && e.fault.Kind == FaultValueBit &&
				slot == e.fault.Bit/32%8 {
				out ^= 1 << (e.fault.Bit & 31)
				// Bit is drawn from [0,64), so the flip lands in the
				// first two fragment slots: a 64-bit window.
				e.fault.FiredBit, e.fault.FiredWidth = e.fault.Bit&63, 64
			}
			w.block.regs[base+lane][in.Dst+isa.Reg(slot)] = out
		}
	}
}
